module github.com/tgsim/tgmod

go 1.22
