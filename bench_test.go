// Package tgmod's root benchmark harness regenerates every table and
// figure in the evaluation (EXPERIMENTS.md) under `go test -bench`. Each
// benchmark wraps one experiment from internal/experiments at Quick scale;
// run cmd/benchtab -scale full for the published numbers.
package tgmod

import (
	"testing"

	"github.com/tgsim/tgmod/internal/experiments"
)

const benchSeed = 7

// benchErr fails the benchmark on experiment error.
func benchErr(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkT1Taxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.T1Taxonomy(); t.Rows() == 0 {
			b.Fatal("empty taxonomy")
		}
	}
}

func BenchmarkT2Mechanism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.T2Mechanism(benchSeed, experiments.Quick)
		benchErr(b, err)
	}
}

func BenchmarkT3ModalityUsage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.T3ModalityUsage(benchSeed, experiments.Quick)
		benchErr(b, err)
	}
}

func BenchmarkT4Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.T4Coverage(benchSeed, experiments.Quick)
		benchErr(b, err)
	}
}

func BenchmarkF1JobSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.F1JobSize(benchSeed, experiments.Quick)
		benchErr(b, err)
	}
}

func BenchmarkF2GatewayGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.F2GatewayGrowth(benchSeed, experiments.Quick)
		benchErr(b, err)
	}
}

func BenchmarkF3WaitBySize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.F3WaitBySize(benchSeed, experiments.Quick)
		benchErr(b, err)
	}
}

func BenchmarkF4Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.F4Utilization(benchSeed, experiments.Quick)
		benchErr(b, err)
	}
}

func BenchmarkF5Urgent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.F5Urgent(benchSeed, experiments.Quick)
		benchErr(b, err)
	}
}

func BenchmarkF6Transfers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.F6Transfers(benchSeed, experiments.Quick)
		benchErr(b, err)
	}
}

func BenchmarkF7Kernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.F7Kernel(experiments.Quick); t.Rows() == 0 {
			b.Fatal("empty kernel table")
		}
	}
}

func BenchmarkF8Inference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.F8Inference(benchSeed, experiments.Quick)
		benchErr(b, err)
	}
}

func BenchmarkF9Prediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.F9Prediction(benchSeed, experiments.Quick)
		benchErr(b, err)
	}
}
