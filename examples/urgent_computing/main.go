// Urgent computing: a hurricane-landfall forecasting campaign needs
// guaranteed immediate access on an urgent-capable machine while routine
// batch work continues. This example drives a storm sequence against a
// loaded machine and reports what on-demand access costs the rest of the
// community — the trade the on-demand modality forces operators to weigh.
//
// Run with:
//
//	go run ./examples/urgent_computing
package main

import (
	"fmt"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/metrics"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/simrand"
)

func main() {
	k := des.New()
	machine := &grid.Machine{
		ID: "mesa-ranger", Site: "mesa", Nodes: 512, CoresPerNode: 16, // 8192 cores
		GFlopsPerCore: 2.3, NUPerCoreHour: 1.9, UrgentCapable: true,
	}
	s := sched.MustNamed(k, machine, "easy")
	rng := simrand.New(99)

	// Background batch load at ~85% of capacity for two weeks.
	var background []*job.Job
	id := job.ID(0)
	at := des.Time(0)
	for at < 14*des.Day {
		id++
		run := des.Time(rng.LogNormal(8.3, 1.0)) // median ~1.1h
		j := &job.Job{
			ID: id, Name: "batch", User: fmt.Sprintf("u%d", int(id)%40), Project: "p",
			Cores:   rng.PowerOfTwo(4, 10),
			RunTime: run, ReqWalltime: des.Time(float64(run) * 1.7),
		}
		background = append(background, j)
		jj := j
		k.At(at, func(*des.Kernel) { s.Submit(jj) })
		at += des.Time(rng.Exp(0.012)) // ~1000 jobs/day
	}

	// The storm: six forecast cycles, every 6 hours from day 5, each a
	// 2048-core urgent run that must start NOW.
	var forecasts []*job.Job
	for cycle := 0; cycle < 6; cycle++ {
		id++
		j := &job.Job{
			ID: id, Name: "wrf-landfall", User: "noaa-urgent", Project: "TG-URGENT",
			Cores: 2048, RunTime: 2 * des.Hour, ReqWalltime: 3 * des.Hour,
			QOS: job.QOSUrgent,
		}
		forecasts = append(forecasts, j)
		jj := j
		k.At(5*des.Day+des.Time(cycle)*6*des.Hour, func(*des.Kernel) { s.Submit(jj) })
	}

	k.Run()

	t := report.NewTable("Forecast cycles", "cycle", "wait (s)", "state")
	for i, f := range forecasts {
		t.AddRowf(i+1, float64(f.WaitTime()), f.State.String())
	}
	fmt.Println(t)

	var waits metrics.Sample
	preempted := 0
	for _, j := range background {
		waits.Add(float64(j.WaitTime()) / 3600)
		if j.Preemptions > 0 {
			preempted++
		}
	}
	fmt.Printf("background jobs: %d, preempted: %d (%.2f%%), total preemption events: %d\n",
		len(background), preempted, 100*float64(preempted)/float64(len(background)),
		s.Stats().Preemptions)
	fmt.Printf("background median wait %.2fh, P95 %.2fh\n",
		waits.Median(), waits.Percentile(95))
	fmt.Printf("machine utilization over the fortnight: %s\n",
		report.Percent(s.Utilization()))
}
