// Workflow campaign: a CyberShake-style hazard study — for each of 20
// sites, a preprocessing stage, a fan-out of post-processing workers, and a
// merge — executed through the workflow engine against a real scheduler.
// Half the campaigns run under an instrumented engine that tags jobs; half
// are homegrown scripts. The example shows what the modality measurement
// framework recovers in each case.
//
// Run with:
//
//	go run ./examples/workflow_campaign
package main

import (
	"fmt"
	"log"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/simrand"
	"github.com/tgsim/tgmod/internal/workflow"
)

type schedSubmitter struct {
	s *sched.Scheduler
	w *workflow.Instance
	// seen maps released jobs to their instance for finish routing.
	seen map[job.ID]*workflow.Instance
}

func (ss *schedSubmitter) SubmitJob(j *job.Job) {
	ss.seen[j.ID] = ss.w
	ss.s.Submit(j)
}

func main() {
	k := des.New()
	m := &grid.Machine{ID: "hpc", Site: "s", Nodes: 256, CoresPerNode: 8,
		GFlopsPerCore: 4, NUPerCoreHour: 1.4}
	s := sched.MustNamed(k, m, "easy")
	rng := simrand.New(7)
	ledger := accounting.NewLedger("s")
	central := accounting.NewCentral()

	seen := make(map[job.ID]*workflow.Instance)
	s.Subscribe(func(e sched.Event) {
		if e.Kind != sched.EventFinished {
			return
		}
		ledger.AddJob(accounting.RecordOf(e.Job, m))
		if w, ok := seen[e.Job.ID]; ok {
			w.TaskFinished(e.Job)
		}
	})

	var instances []*workflow.Instance
	nextID := job.ID(0)
	mkJob := func(cores int, run des.Time) *job.Job {
		nextID++
		return &job.Job{
			ID: nextID, Name: "cybershake-task", User: "scec", Project: "TG-SCEC",
			Cores: cores, RunTime: run, ReqWalltime: run * 2,
		}
	}
	for site := 0; site < 20; site++ {
		tagged := site%2 == 0
		engine := "homegrown-script"
		if tagged {
			engine = "pegasus"
		}
		workers := make([]*job.Job, 12)
		for i := range workers {
			workers[i] = mkJob(8, des.Time(600+rng.Intn(1800)))
		}
		// The submitter needs the instance for finish routing and the
		// instance needs the submitter at construction; bind after build.
		sub := &schedSubmitter{s: s, seen: seen}
		w, err := workflow.FanOutFanIn(fmt.Sprintf("hazard-site-%02d", site), engine,
			tagged, k, sub, mkJob(32, 900), workers, mkJob(16, 600))
		if err != nil {
			log.Fatal(err)
		}
		sub.w = w
		instances = append(instances, w)
		start := des.Time(site) * 2 * des.Hour
		k.At(start, func(*des.Kernel) {
			if err := w.Start(); err != nil {
				log.Fatal(err)
			}
		})
	}
	k.Run()

	if p := ledger.Flush(k.Now()); p != nil {
		if err := central.Ingest(p); err != nil {
			log.Fatal(err)
		}
	}

	t := report.NewTable("Campaign outcomes", "workflow", "engine", "tasks", "makespan", "critical path")
	for _, w := range instances {
		t.AddRowf(w.ID, w.Engine, w.Completed(), w.Makespan().String(),
			w.CriticalPathLength().String())
	}
	fmt.Println(t)

	cl := core.NewClassifier(core.Config{LargestCores: m.BatchCores()})
	conf := core.Validate(central, cl.Classify(central))
	fmt.Printf("workflow recall overall: %.3f\n", conf.Recall(string(job.ModWorkflow)))
	fmt.Println("Tagged (pegasus) campaigns are measured directly from attributes;")
	fmt.Println("homegrown scripts are only recovered when their submission pattern")
	fmt.Println("looks dependency-driven — the gap motivates attribute deployment.")
}
