// Replication fleet: turn single-seed point estimates into interval
// estimates. One seeded run of the simulator gives one draw of every
// output; this example runs eight independent replications in parallel
// and reports the per-modality usage breakdown as mean ± 95% CI, which is
// the form simulator-backed claims should take.
//
// The Build function is called once per replication with that
// replication's seed — it must construct a fresh Config (in particular
// fresh workload generators, which are stateful) every time. Results are
// merged in seed order after all workers finish, so running this on 1
// worker or 8 produces byte-identical output.
//
// Run with:
//
//	go run ./examples/replication_fleet
package main

import (
	"fmt"
	"log"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/fleet"
	"github.com/tgsim/tgmod/internal/scenario"
)

func main() {
	res, err := fleet.Run(fleet.Spec{
		Reps:     8,
		Parallel: 0, // 0 = GOMAXPROCS
		BaseSeed: 42,
		Build: func(seed uint64) scenario.Config {
			return scenario.New(seed,
				scenario.WithHorizon(7*des.Day),
				scenario.WithDrain(2*des.Day),
			)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.SummaryTable())
	fmt.Println(res.ModalityTable())

	// Any per-replication scalar reduces to a cross-replication Stat.
	finished := res.Stat(func(r *fleet.Rep) float64 { return float64(r.Finished) })
	fmt.Printf("finished jobs: %.0f ± %.0f (95%% CI over %d seeds)\n",
		finished.Mean, finished.CI95, finished.N)
}
