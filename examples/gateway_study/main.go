// Gateway study: how much instrumentation coverage do science gateways
// need before their real user community becomes visible to the accounting
// system? This example sweeps the AAAA attribute-coverage knob and shows
// the recovered-end-user count and classifier quality at each level —
// the measurement-deployment question the modality program raises.
//
// Run with:
//
//	go run ./examples/gateway_study
package main

import (
	"fmt"
	"log"

	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/scenario"
)

func main() {
	t := report.NewTable("Gateway visibility vs attribute coverage",
		"coverage", "gateway jobs", "attributed", "accounts", "recovered users", "gateway F1")
	for _, coverage := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		cfg := scenario.New(1234,
			scenario.WithHorizon(10*des.Day),
			scenario.WithDrain(2*des.Day),
			scenario.WithGatewayCoverage(coverage),
		)
		res, err := scenario.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cl := core.NewClassifier(core.Config{LargestCores: res.LargestCores})
		results := cl.Classify(res.Central)
		conf := core.Validate(res.Central, results)
		v := core.MeasureGatewayVisibility(res.Central)
		t.AddRowf(report.Percent(coverage), v.GatewayJobs, v.AttributedJobs,
			v.CommunityAccounts, v.RecoveredEndUsers,
			fmt.Sprintf("%.3f", conf.F1(string(job.ModGateway))))
	}
	fmt.Println(t)
	fmt.Println("Even partial attribute deployment recovers most of the hidden")
	fmt.Println("population; with zero coverage the community is invisible —")
	fmt.Println("the accounting system sees three 'users'.")
}
