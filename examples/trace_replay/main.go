// Trace replay: the trace-driven evaluation loop. A month of usage on a
// mid-size machine is recorded, exported to the Standard Workload Format,
// re-parsed, and replayed onto a machine half the size under two policies —
// answering the capacity-planning question "what would our recorded
// workload have experienced elsewhere?" entirely through the public trace
// interchange path.
//
// Run with:
//
//	go run ./examples/trace_replay
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/metrics"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/simrand"
	"github.com/tgsim/tgmod/internal/trace"
	"github.com/tgsim/tgmod/internal/users"
	"github.com/tgsim/tgmod/internal/workload"
)

func main() {
	// Phase 1: record a month on a 4096-core machine under EASY.
	original := record()
	fmt.Printf("recorded %d jobs on the original machine\n", len(original))

	// Phase 2: round-trip through SWF (the archive interchange format).
	var buf bytes.Buffer
	if err := trace.WriteSWF(&buf, original); err != nil {
		log.Fatal(err)
	}
	parsed, err := trace.ReadSWF(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SWF round trip: %d entries\n\n", len(parsed))

	// Phase 3: replay onto a machine half the size, both policies.
	t := report.NewTable("Replay on a half-size machine",
		"policy", "finished", "mean wait (h)", "P95 wait (h)", "utilization")
	for _, pol := range []string{"fcfs", "easy"} {
		finished, waits, util := replay(parsed, pol)
		t.AddRowf(pol, finished, waits.Mean(), waits.Percentile(95),
			report.Percent(util))
	}
	fmt.Println(t)
	fmt.Println("The recorded workload saturates the smaller machine; backfill")
	fmt.Println("absorbs part of the squeeze that strict FIFO turns into queue time.")
}

// record simulates the original machine and returns its accounting records.
func record() []accounting.JobRecord {
	k := des.New()
	m := &grid.Machine{ID: "orig", Site: "s", Nodes: 512, CoresPerNode: 8,
		GFlopsPerCore: 4, NUPerCoreHour: 1.5}
	s := sched.MustNamed(k, m, "easy")
	var recs []accounting.JobRecord
	s.Subscribe(func(e sched.Event) {
		if e.Kind == sched.EventFinished {
			recs = append(recs, accounting.RecordOf(e.Job, m))
		}
	})
	pop, err := users.Synthesize(users.Config{Projects: 20, UsersPerProjMu: 0.5,
		UsersPerProjSd: 0.5, ActivityAlpha: 1.5}, simrand.New(5))
	if err != nil {
		log.Fatal(err)
	}
	env := &workload.Env{
		K: k, Seed: 5, Horizon: 30 * des.Day, Pop: pop,
		Sched: map[string]*sched.Scheduler{"orig": s},
	}
	(&workload.BatchGen{JobsPerDay: 300, CapabilityFrac: 0.005,
		MedianRuntime: 2 * 3600}).Start(env)
	k.Run()
	return recs
}

// replay runs the parsed trace against a half-size machine.
func replay(parsed []trace.Job, pol string) (int, *metrics.Sample, float64) {
	k := des.New()
	m := &grid.Machine{ID: "half", Site: "s", Nodes: 256, CoresPerNode: 8,
		GFlopsPerCore: 4, NUPerCoreHour: 1.5}
	s := sched.MustNamed(k, m, pol)
	waits := &metrics.Sample{}
	finished := 0
	s.Subscribe(func(e sched.Event) {
		if e.Kind == sched.EventFinished {
			finished++
			waits.Add(float64(e.Job.WaitTime()) / 3600)
		}
	})
	env := &workload.Env{K: k, Horizon: 60 * des.Day,
		Sched: map[string]*sched.Scheduler{"half": s}}
	(&workload.ReplayGen{Jobs: parsed, Machine: "half"}).Start(env)
	k.Run()
	return finished, waits, s.Utilization()
}
