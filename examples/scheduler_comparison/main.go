// Scheduler comparison: the substrate ablation. Replays the identical
// workload against FCFS, EASY, and conservative backfill and reports
// utilization, waits, and bounded slowdown — the numbers that justified
// backfilling on production machines and that make the simulated substrate
// credible for the measurement experiments built on it.
//
// Run with:
//
//	go run ./examples/scheduler_comparison
package main

import (
	"fmt"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/metrics"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/simrand"
)

// workloadSpec is one job request; regenerated identically per policy.
type workloadSpec struct {
	at    des.Time
	cores int
	run   des.Time
	wall  des.Time
}

func buildWorkload(n int) []workloadSpec {
	rng := simrand.New(2024)
	specs := make([]workloadSpec, 0, n)
	at := des.Time(0)
	for i := 0; i < n; i++ {
		run := des.Time(rng.LogNormal(8.0, 1.1))
		specs = append(specs, workloadSpec{
			at:    at,
			cores: rng.PowerOfTwo(3, 10),
			run:   run,
			wall:  des.Time(float64(run) * (1.2 + 2.5*rng.Float64())),
		})
		at += des.Time(rng.Exp(0.011))
	}
	return specs
}

func main() {
	const n = 8000
	specs := buildWorkload(n)
	t := report.NewTable("Policy comparison on an identical 8,000-job stream",
		"policy", "utilization", "mean wait (h)", "P95 wait (h)", "mean bounded slowdown")
	for _, pol := range []string{"fcfs", "easy", "conservative"} {
		k := des.New()
		m := &grid.Machine{ID: "bench", Site: "s", Nodes: 512, CoresPerNode: 8,
			GFlopsPerCore: 4, NUPerCoreHour: 1}
		s := sched.MustNamed(k, m, pol)
		jobs := make([]*job.Job, n)
		for i, spec := range specs {
			jobs[i] = &job.Job{
				ID: job.ID(i + 1), Name: "j", User: fmt.Sprintf("u%d", i%64),
				Project: "p", Cores: spec.cores, RunTime: spec.run, ReqWalltime: spec.wall,
			}
			jj := jobs[i]
			k.At(spec.at, func(*des.Kernel) { s.Submit(jj) })
		}
		k.Run()
		var wait, slow metrics.Sample
		for _, j := range jobs {
			wait.Add(float64(j.WaitTime()) / 3600)
			slow.Add(j.BoundedSlowdown())
		}
		t.AddRowf(pol, report.Percent(s.Utilization()),
			wait.Mean(), wait.Percentile(95), slow.Mean())
	}
	fmt.Println(t)
	fmt.Println("EASY and conservative backfill fill the holes FCFS leaves;")
	fmt.Println("the utilization gap is the 'free' capacity backfilling recovers.")
}
