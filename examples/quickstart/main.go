// Quickstart: run a two-week simulation of the standard federation, measure
// usage modalities, and print the headline numbers. This is the smallest
// complete tour of the public pipeline:
//
//	scenario.Run → core.Classify → core.BuildReport / core.Validate
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/scenario"
)

func main() {
	// 1. Configure a scenario: the TG9 federation, default workload mix.
	cfg := scenario.New(42,
		scenario.WithHorizon(14*des.Day),
		scenario.WithDrain(3*des.Day),
	)

	// 2. Run the simulation.
	res, err := scenario.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d machines, %d finished jobs, %s NUs\n\n",
		len(res.Schedulers), res.Finished, report.FormatFloat(res.Central.TotalNUs()))

	// 3. Classify observed usage into modalities.
	cl := core.NewClassifier(core.Config{LargestCores: res.LargestCores})
	results := cl.Classify(res.Central)

	// 4. The measurement the paper wants: who uses the CI, and how?
	rep := core.BuildReport(res.Central, results)
	t := report.NewTable("Usage by modality", "modality", "jobs", "NU share", "end users")
	for _, row := range rep.Rows {
		t.AddRowf(string(row.Modality), row.Jobs,
			report.Percent(row.NUs/rep.TotalNUs), row.EndUsers)
	}
	fmt.Println(t)

	// 5. Because the workload is synthetic, the measurement can be graded.
	conf := core.Validate(res.Central, results)
	fmt.Printf("classification accuracy vs ground truth: %.1f%%\n", conf.Accuracy()*100)

	v := core.MeasureGatewayVisibility(res.Central)
	fmt.Printf("gateways: %d community accounts actually served %d people\n",
		v.CommunityAccounts, v.RecoveredEndUsers)
}
