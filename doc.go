// Package tgmod is a from-scratch Go reproduction of the measurement
// program in "Cyberinfrastructure Usage Modalities on the TeraGrid"
// (IPPS/IPDPS Workshops 2011): a deterministic discrete-event simulation
// of a nine-site federated cyberinfrastructure plus the usage-modality
// measurement framework that classifies and reports what its users are
// actually doing.
//
// The root package hosts the benchmark harness (bench_test.go), one
// benchmark per evaluation table and figure; the implementation lives in
// internal/ (see README.md for the architecture map) and the runnable
// entry points in cmd/ and examples/.
package tgmod
