package fleet

import (
	"fmt"
	"sort"

	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/report"
)

// meanCI renders a "mean ± ci95" table cell.
func meanCI(s Stat) string {
	if s.N < 2 {
		return report.FormatFloat(s.Mean)
	}
	return report.FormatFloat(s.Mean) + " ± " + report.FormatFloat(s.CI95)
}

// SummaryTable reports the fleet itself: replication count, worker width,
// wall-clock, aggregate throughput, and cross-rep spread of the headline
// per-replication scalars.
func (r *Result) SummaryTable() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Replication fleet: %d reps x %d workers (base seed %d)",
			len(r.Reps), r.Workers, r.Spec.BaseSeed),
		"metric", "value")
	t.AddRow("replications ok", fmt.Sprintf("%d / %d", r.Succeeded(), len(r.Reps)))
	t.AddRow("fleet wall clock", report.FormatFloat(r.Wall)+" s")
	t.AddRow("kernel events (total)", report.GroupInt(int64(r.TotalEvents())))
	t.AddRow("aggregate throughput", report.GroupInt(int64(r.EventsPerSec()))+" events/s")
	t.AddRow("finished jobs", meanCI(r.Stat(func(rep *Rep) float64 { return float64(rep.Finished) })))
	t.AddRow("total NUs", meanCI(r.Stat(func(rep *Rep) float64 { return rep.Report.TotalNUs })))
	t.AddRow("peak FEL", meanCI(r.Stat(func(rep *Rep) float64 { return float64(rep.PeakFEL) })))
	// Failed replications stay visible in the merged report — one row per
	// bad seed with its error — instead of silently shrinking the CI count
	// or aborting the fleet.
	for i := range r.Reps {
		if err := r.Reps[i].Err; err != nil {
			t.AddRow(fmt.Sprintf("rep %d (seed %d)", r.Reps[i].Index, r.Reps[i].Seed),
				"FAILED: "+err.Error())
		}
	}
	return t
}

// ModalityTable reports per-modality usage with 95% confidence intervals
// across replications, in the canonical modality order.
func (r *Result) ModalityTable() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Usage by modality, mean ± 95%% CI over %d replications", r.Succeeded()),
		"modality", "jobs", "NUs", "acct users", "end users")
	for _, m := range job.AllModalities {
		m := m
		jobs := r.Stat(func(rep *Rep) float64 { return float64(rep.Report.Row(m).Jobs) })
		nus := r.Stat(func(rep *Rep) float64 { return rep.Report.Row(m).NUs })
		acct := r.Stat(func(rep *Rep) float64 { return float64(rep.Report.Row(m).AccountUsers) })
		end := r.Stat(func(rep *Rep) float64 { return float64(rep.Report.Row(m).EndUsers) })
		if jobs.N == 0 || jobs.Max == 0 && nus.Max == 0 {
			continue
		}
		t.AddRow(string(m), meanCI(jobs), meanCI(nus), meanCI(acct), meanCI(end))
	}
	return t
}

// MechanismTable reports per-submission-mechanism usage with 95%
// confidence intervals across replications. Mechanisms are the union over
// replications, sorted by mean NUs descending.
func (r *Result) MechanismTable() *report.Table {
	mechs := map[string]bool{}
	for i := range r.Reps {
		if r.Reps[i].Err != nil {
			continue
		}
		for _, row := range r.Reps[i].Mechanisms {
			mechs[row.Mechanism] = true
		}
	}
	type entry struct {
		name             string
		jobs, nus, users Stat
	}
	rows := make([]entry, 0, len(mechs))
	for name := range mechs {
		name := name
		pick := func(rep *Rep) (row struct {
			jobs, users int
			nus         float64
		}) {
			for _, mr := range rep.Mechanisms {
				if mr.Mechanism == name {
					row.jobs, row.nus, row.users = mr.Jobs, mr.NUs, mr.AccountUsers
					return
				}
			}
			return
		}
		rows = append(rows, entry{
			name: name,
			jobs: r.Stat(func(rep *Rep) float64 { return float64(pick(rep).jobs) }),
			nus:  r.Stat(func(rep *Rep) float64 { return pick(rep).nus }),
			users: r.Stat(func(rep *Rep) float64 {
				return float64(pick(rep).users)
			}),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].nus.Mean != rows[j].nus.Mean {
			return rows[i].nus.Mean > rows[j].nus.Mean
		}
		return rows[i].name < rows[j].name
	})
	t := report.NewTable(
		fmt.Sprintf("Usage by submission mechanism, mean ± 95%% CI over %d replications", r.Succeeded()),
		"mechanism", "jobs", "NUs", "acct users")
	for _, e := range rows {
		t.AddRow(e.name, meanCI(e.jobs), meanCI(e.nus), meanCI(e.users))
	}
	return t
}
