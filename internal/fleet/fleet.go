// Package fleet runs replication fleets: N same-scenario, different-seed
// replications executed across parallel workers, merged deterministically
// into cross-replication statistics.
//
// One seeded run of the simulator yields point estimates; the modality
// shares, recovered-user counts, and service-quality figures the analysis
// reports are all functions of one pseudorandom draw. A fleet turns them
// into interval estimates — mean, standard deviation, and 95% confidence
// bounds over independent seeds — which is what makes simulator-backed
// claims defensible.
//
// The design exploits the des kernel's isolation guarantee: each
// replication gets its own Kernel, its own simrand streams derived from
// its own seed, and its own private telemetry registry, so replications
// share no mutable state and run on plain goroutines with no locks in the
// simulation path. Determinism is preserved by construction: results are
// collected by replication index and merged in seed order after all
// workers finish, so the merged OpenMetrics exposition and every
// statistic are byte-identical whether the fleet ran on one worker or
// sixteen.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// Spec describes a fleet: how many replications, how wide to run them,
// and how to build each replication's scenario.
type Spec struct {
	// Reps is the number of replications; values below 1 are treated as 1.
	Reps int
	// Parallel is the worker count; 0 or less means GOMAXPROCS. Workers
	// never exceed Reps.
	Parallel int
	// BaseSeed seeds the fleet: replication i runs with seed BaseSeed+i.
	// The simulator derives all of a run's streams from its seed by name,
	// so consecutive seeds give independent replications.
	BaseSeed uint64
	// Build constructs the scenario for one replication. It MUST return a
	// config private to that replication — workload generators are
	// stateful, so sharing a Generators slice (or any other mutable
	// pointer) across replications is a data race. Build receives the
	// replication's seed; the fleet also forces cfg.Seed to it, so a Build
	// that ignores the argument still gets per-seed behavior.
	//
	// The fleet attaches its own private telemetry registry to every
	// replication (appended last, so it wins the attachment's
	// last-writer rule); Build should not attach one.
	Build func(seed uint64) scenario.Config
	// Classify configures the modality classifier applied to each
	// replication. A zero LargestCores is filled from the replication's
	// federation.
	Classify core.Config
	// KeepResults retains each replication's full *scenario.Result
	// (kernel, accounting database, schedulers — hundreds of MB at full
	// scale). Off by default: per-rep reports and registries are kept,
	// the heavyweight state is released as soon as a rep is classified.
	KeepResults bool
	// Inspect, when non-nil, runs on each successful replication's full
	// result before the heavyweight state is released; its return value is
	// kept in Rep.Custom. Experiments use it to extract small per-rep
	// scalars (fault stats, goodput) without paying for KeepResults.
	// Inspect runs on the worker goroutine and must not touch shared state.
	Inspect func(seed uint64, res *scenario.Result) any
	// Observe, when non-nil, supplies extra per-replication observers —
	// live progress taps, observatory pushers. It runs on the worker
	// goroutine before the replication starts; the observers it returns
	// are attached before the fleet's own LiveTelemetry registry (which
	// must stay last to win the attachment's last-writer rule). reg is
	// the replication's private registry. Observers must mount only on
	// zero-perturbation seams so fleets stay byte-identical with or
	// without observation.
	Observe func(rep int, seed uint64, reg *telemetry.Registry) []scenario.Observer
}

// Rep is the outcome of one replication.
type Rep struct {
	Index int
	Seed  uint64
	// Result is the full simulation result; nil unless Spec.KeepResults.
	Result *scenario.Result
	// Registry is the replication's private telemetry registry.
	Registry *telemetry.Registry
	// Report is the classified per-modality usage report.
	Report *core.Report
	// Mechanisms is the per-submission-mechanism usage breakdown.
	Mechanisms []core.MechanismRow
	// Finished counts jobs that reached a terminal state.
	Finished int
	// Events is the kernel event count; PeakFEL the future-event-list
	// high-water mark; Wall the replication's wall-clock seconds.
	Events  uint64
	PeakFEL int
	Wall    float64
	// Custom holds Spec.Inspect's return value (nil without Inspect).
	Custom any
	// Err is the replication's failure, if any (a panicking replication
	// is captured here too, so one bad seed cannot take down the fleet).
	Err error
}

// Result is a finished fleet.
type Result struct {
	Spec Spec
	// Workers is the resolved parallel width the fleet actually used.
	Workers int
	// Reps holds every replication in seed order.
	Reps []Rep
	// Merged is the seed-order merge of all successful replications'
	// registries; counters and histograms sum, gauges sum (divide by
	// Succeeded() for a mean).
	Merged *telemetry.Registry
	// Wall is the fleet's total wall-clock seconds, launch to merge.
	Wall float64
}

// Run executes the fleet described by spec.
//
// All replications are attempted even when some fail; a non-nil error
// (joining every per-rep failure, matchable with errors.Is — e.g.
// des.ErrEventBacklog) is returned alongside the partial Result.
func Run(spec Spec) (*Result, error) {
	if spec.Build == nil {
		return nil, errors.New("fleet: Spec.Build is required")
	}
	reps := spec.Reps
	if reps < 1 {
		reps = 1
	}
	workers := spec.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > reps {
		workers = reps
	}

	start := time.Now()
	out := make([]Rep, reps)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runRep(&spec, i, &out[i])
			}
		}()
	}
	for i := 0; i < reps; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	// Merge in seed order, on this goroutine, after every worker is done:
	// the float64 additions happen in one fixed sequence regardless of how
	// the reps were scheduled, which is what makes parallel and sequential
	// fleets byte-identical.
	res := &Result{Spec: spec, Workers: workers, Reps: out}
	merged := telemetry.New()
	var errs []error
	for i := range out {
		if out[i].Err != nil {
			errs = append(errs, fmt.Errorf("fleet: rep %d (seed %d): %w", i, out[i].Seed, out[i].Err))
			continue
		}
		merged.Merge(out[i].Registry)
	}
	res.Merged = merged
	res.Wall = time.Since(start).Seconds()
	return res, errors.Join(errs...)
}

// runRep executes replication i into *rep, converting panics to errors so
// a single bad seed reports cleanly instead of crashing the fleet.
func runRep(spec *Spec, i int, rep *Rep) {
	rep.Index = i
	rep.Seed = spec.BaseSeed + uint64(i)
	defer func() {
		if r := recover(); r != nil {
			rep.Err = fmt.Errorf("replication panicked: %v", r)
		}
	}()

	cfg := spec.Build(rep.Seed)
	cfg.Seed = rep.Seed
	reg := telemetry.New()
	if spec.Observe != nil {
		cfg.Observers = append(cfg.Observers, spec.Observe(i, rep.Seed, reg)...)
	}
	cfg.Observers = append(cfg.Observers, scenario.LiveTelemetry(reg))

	start := time.Now()
	res, err := scenario.Run(cfg)
	rep.Wall = time.Since(start).Seconds()
	if err != nil {
		rep.Err = err
		return
	}

	rep.Registry = reg
	rep.Finished = res.Finished
	rep.Events = res.Kernel.Executed()
	rep.PeakFEL = res.Kernel.MaxPending()

	ccfg := spec.Classify
	if ccfg.LargestCores == 0 {
		ccfg.LargestCores = res.LargestCores
	}
	cl := core.NewClassifier(ccfg)
	rep.Report = core.BuildReport(res.Central, cl.Classify(res.Central))
	rep.Mechanisms = core.MechanismReport(res.Central)
	if spec.Inspect != nil {
		rep.Custom = spec.Inspect(rep.Seed, res)
	}
	if spec.KeepResults {
		rep.Result = res
	}
}

// Succeeded returns the number of replications that completed without error.
func (r *Result) Succeeded() int {
	n := 0
	for i := range r.Reps {
		if r.Reps[i].Err == nil {
			n++
		}
	}
	return n
}

// TotalEvents sums kernel events across successful replications.
func (r *Result) TotalEvents() uint64 {
	var n uint64
	for i := range r.Reps {
		if r.Reps[i].Err == nil {
			n += r.Reps[i].Events
		}
	}
	return n
}

// EventsPerSec is the fleet's aggregate throughput: total kernel events
// executed divided by total wall-clock time. With W workers and
// negligible merge cost this approaches W times the single-replication
// rate — the fleet-scaling figure benchtab's FL experiment reports.
func (r *Result) EventsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.TotalEvents()) / r.Wall
}
