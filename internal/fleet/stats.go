package fleet

import (
	"math"

	"github.com/tgsim/tgmod/internal/metrics"
)

// Stat is a cross-replication summary of one scalar output: the sample
// mean over N independent seeds, the sample standard deviation, and the
// half-width of the two-sided 95% confidence interval on the mean
// (Student's t, n-1 degrees of freedom). CI95 is zero when N < 2.
type Stat struct {
	N      int
	Mean   float64
	Stddev float64
	CI95   float64
	Min    float64
	Max    float64
}

// tCrit95 is the two-sided 95% Student-t critical value for small degrees
// of freedom; beyond the table the normal approximation is within 2%.
var tCrit95 = [...]float64{
	1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
	6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
	11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
	16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
	21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
	26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}

func tValue(df int) float64 {
	if df < 1 {
		return 0
	}
	if df < len(tCrit95) {
		return tCrit95[df]
	}
	return 1.96
}

// Summarize reduces one sample per successful replication to a Stat.
func Summarize(samples []float64) Stat {
	var s metrics.Summary
	for _, v := range samples {
		s.Add(v)
	}
	st := Stat{N: s.N(), Mean: s.Mean(), Stddev: s.Stddev(), Min: s.Min(), Max: s.Max()}
	if st.N >= 2 {
		st.CI95 = tValue(st.N-1) * st.Stddev / math.Sqrt(float64(st.N))
	}
	return st
}

// Sample extracts one scalar per successful replication.
func (r *Result) Sample(f func(*Rep) float64) []float64 {
	out := make([]float64, 0, len(r.Reps))
	for i := range r.Reps {
		if r.Reps[i].Err != nil {
			continue
		}
		out = append(out, f(&r.Reps[i]))
	}
	return out
}

// Stat reduces one scalar per successful replication to its
// cross-replication summary.
func (r *Result) Stat(f func(*Rep) float64) Stat {
	return Summarize(r.Sample(f))
}
