package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/regress"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/users"
	"github.com/tgsim/tgmod/internal/workload"
)

// testBuild returns a Build function producing a small, fast scenario.
// Every call constructs fresh generators — generators are stateful, so a
// shared slice across concurrent replications would be a data race (and
// the -race run of this test is what proves the fleet holds the rule).
func testBuild(seed uint64) scenario.Config {
	return scenario.New(seed,
		scenario.WithHorizon(2*des.Day),
		scenario.WithDrain(1*des.Day),
		scenario.WithUsers(users.Config{
			Projects: 20, UsersPerProjMu: 0.7, UsersPerProjSd: 0.6, ActivityAlpha: 1.5,
		}),
		scenario.WithGenerators(
			&workload.BatchGen{JobsPerDay: 60, CapabilityFrac: 0.02, MedianRuntime: 3600},
			&workload.EnsembleGen{CampaignsPerDay: 2, JobsPerCampaign: 8, TagCoverage: 0.5, MedianRuntime: 900},
			&workload.GatewayGen{Gateway: "nanohub", RequestsPerDay: 40, EndUsers: 120, MedianRuntime: 300},
			&workload.MetaschedGen{JobsPerDay: 8, CoAllocFrac: 0.05, MedianRuntime: 1800},
		),
	)
}

func runFleet(t *testing.T, parallel int) *Result {
	t.Helper()
	res, err := Run(Spec{
		Reps:        4,
		Parallel:    parallel,
		BaseSeed:    42,
		Build:       testBuild,
		KeepResults: true,
	})
	if err != nil {
		t.Fatalf("fleet (parallel=%d): %v", parallel, err)
	}
	if got := res.Succeeded(); got != 4 {
		t.Fatalf("fleet (parallel=%d): %d/4 reps succeeded", parallel, got)
	}
	return res
}

func exposition(t *testing.T, res *Result) string {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Merged.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFleetDeterminism is the PR's core guarantee: a 4-rep fleet run on 4
// workers and the same fleet run sequentially must be indistinguishable —
// byte-identical merged expositions, and an empty regression diff for
// every replication's run dir. Run under -race this also proves the
// replications share no mutable state.
func TestFleetDeterminism(t *testing.T) {
	seq := runFleet(t, 1)
	par := runFleet(t, 4)

	if seq.Workers != 1 || par.Workers != 4 {
		t.Fatalf("workers = %d/%d, want 1/4", seq.Workers, par.Workers)
	}

	seqOM, parOM := exposition(t, seq), exposition(t, par)
	if seqOM != parOM {
		t.Errorf("merged expositions differ between sequential and parallel fleets:\nseq %d bytes, par %d bytes", len(seqOM), len(parOM))
	}
	if !strings.Contains(seqOM, "tg_jobs_finished") {
		t.Errorf("merged exposition is missing expected series; got:\n%.400s", seqOM)
	}

	dir := t.TempDir()
	for i := 0; i < 4; i++ {
		sr, pr := &seq.Reps[i], &par.Reps[i]
		if sr.Seed != pr.Seed {
			t.Fatalf("rep %d: seed %d vs %d", i, sr.Seed, pr.Seed)
		}
		sd := filepath.Join(dir, fmt.Sprintf("seq-%d", i))
		pd := filepath.Join(dir, fmt.Sprintf("par-%d", i))
		if err := regress.WriteRunDir(sd, sr.Registry, nil, sr.Result.Central, nil); err != nil {
			t.Fatal(err)
		}
		if err := regress.WriteRunDir(pd, pr.Registry, nil, pr.Result.Central, nil); err != nil {
			t.Fatal(err)
		}
		sRun, err := regress.LoadRunDir(sd)
		if err != nil {
			t.Fatal(err)
		}
		pRun, err := regress.LoadRunDir(pd)
		if err != nil {
			t.Fatal(err)
		}
		sSeries, err := sRun.Series()
		if err != nil {
			t.Fatal(err)
		}
		pSeries, err := pRun.Series()
		if err != nil {
			t.Fatal(err)
		}
		if d := regress.Diff(sSeries, pSeries, regress.Tolerance{}); !d.Empty() {
			var b bytes.Buffer
			d.WriteText(&b)
			t.Errorf("rep %d (seed %d): sequential vs parallel run dirs differ:\n%s", i, sr.Seed, b.String())
		}
	}

	// The per-rep scalars must agree too.
	for i := 0; i < 4; i++ {
		if seq.Reps[i].Events != par.Reps[i].Events {
			t.Errorf("rep %d: events %d vs %d", i, seq.Reps[i].Events, par.Reps[i].Events)
		}
		if seq.Reps[i].Finished != par.Reps[i].Finished {
			t.Errorf("rep %d: finished %d vs %d", i, seq.Reps[i].Finished, par.Reps[i].Finished)
		}
	}
}

// TestFleetSeedsDiffer guards against accidentally running the same seed
// N times: distinct seeds must produce distinct trajectories.
func TestFleetSeedsDiffer(t *testing.T) {
	res := runFleet(t, 2)
	same := true
	for i := 1; i < len(res.Reps); i++ {
		if res.Reps[i].Events != res.Reps[0].Events || res.Reps[i].Finished != res.Reps[0].Finished {
			same = false
		}
	}
	if same {
		t.Error("all replications produced identical event/job counts; seeds are not being varied")
	}
}

// TestFleetBacklogFailure: a replication whose kernel trips the pending
// limit must fail cleanly with des.ErrEventBacklog, without poisoning the
// rest of the fleet.
func TestFleetBacklogFailure(t *testing.T) {
	res, err := Run(Spec{
		Reps:     2,
		Parallel: 2,
		BaseSeed: 7,
		Build: func(seed uint64) scenario.Config {
			cfg := testBuild(seed)
			if seed == 7 { // first rep only: absurdly small FEL bound
				cfg.EventLimit = 8
			}
			return cfg
		},
	})
	if err == nil {
		t.Fatal("expected fleet error from backlogged replication")
	}
	if !errors.Is(err, des.ErrEventBacklog) {
		t.Fatalf("error does not unwrap to ErrEventBacklog: %v", err)
	}
	if res == nil {
		t.Fatal("partial result should still be returned")
	}
	if res.Reps[0].Err == nil || res.Reps[1].Err != nil {
		t.Fatalf("rep errors: [0]=%v [1]=%v; want only rep 0 failed", res.Reps[0].Err, res.Reps[1].Err)
	}
	if res.Succeeded() != 1 {
		t.Fatalf("Succeeded() = %d, want 1", res.Succeeded())
	}
}

// TestFleetPoisonedSeedReporting: a failed replication must surface in the
// merged summary table as its own row — seed and error visible — while the
// healthy reps still produce statistics, instead of the fleet aborting.
func TestFleetPoisonedSeedReporting(t *testing.T) {
	res, err := Run(Spec{
		Reps:     3,
		Parallel: 3,
		BaseSeed: 7,
		Build: func(seed uint64) scenario.Config {
			cfg := testBuild(seed)
			if seed == 8 { // poison the middle rep
				cfg.EventLimit = 8
			}
			return cfg
		},
	})
	if !errors.Is(err, des.ErrEventBacklog) {
		t.Fatalf("fleet error = %v, want ErrEventBacklog", err)
	}
	if res.Succeeded() != 2 {
		t.Fatalf("Succeeded() = %d, want 2", res.Succeeded())
	}
	sum := res.SummaryTable().String()
	if !strings.Contains(sum, "2 / 3") {
		t.Errorf("summary missing success ratio:\n%s", sum)
	}
	if !strings.Contains(sum, "rep 1 (seed 8)") || !strings.Contains(sum, "FAILED:") {
		t.Errorf("summary table does not report the poisoned seed:\n%s", sum)
	}
	if strings.Contains(sum, "rep 0 (seed 7)") || strings.Contains(sum, "rep 2 (seed 9)") {
		t.Errorf("summary table flags healthy reps as failed:\n%s", sum)
	}
	// The modality table still carries statistics from the healthy reps.
	if mod := res.ModalityTable().String(); !strings.Contains(mod, "±") {
		t.Errorf("modality table lost its CIs with one failed rep:\n%s", mod)
	}
}

// TestFleetInspect: Spec.Inspect extracts per-rep values from the full
// result without KeepResults retaining it.
func TestFleetInspect(t *testing.T) {
	res, err := Run(Spec{
		Reps:     2,
		Parallel: 2,
		BaseSeed: 42,
		Build:    testBuild,
		Inspect: func(seed uint64, r *scenario.Result) any {
			return r.Finished
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Reps {
		rep := &res.Reps[i]
		if rep.Result != nil {
			t.Errorf("rep %d retained its Result without KeepResults", i)
		}
		got, ok := rep.Custom.(int)
		if !ok || got != rep.Finished {
			t.Errorf("rep %d Custom = %v, want Finished=%d", i, rep.Custom, rep.Finished)
		}
	}
}

// TestFleetSpecValidation covers the defaults and the required Build.
func TestFleetSpecValidation(t *testing.T) {
	if _, err := Run(Spec{Reps: 1}); err == nil {
		t.Error("Run without Build should fail")
	}
	res, err := Run(Spec{Reps: 0, Parallel: 99, BaseSeed: 5, Build: testBuild})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reps) != 1 || res.Workers != 1 {
		t.Errorf("reps=%d workers=%d, want 1/1 (workers capped at reps)", len(res.Reps), res.Workers)
	}
}

func TestStatSummarize(t *testing.T) {
	s := Summarize([]float64{10, 12, 14, 16})
	if s.N != 4 || s.Mean != 13 {
		t.Fatalf("N=%d Mean=%g, want 4/13", s.N, s.Mean)
	}
	// stddev = sqrt(20/3) ≈ 2.582; t(3) = 3.182 → CI ≈ 3.182*2.582/2 ≈ 4.108
	if s.CI95 < 4.0 || s.CI95 > 4.2 {
		t.Errorf("CI95 = %g, want ≈4.11", s.CI95)
	}
	one := Summarize([]float64{5})
	if one.CI95 != 0 || one.Mean != 5 {
		t.Errorf("single sample: Mean=%g CI95=%g, want 5/0", one.Mean, one.CI95)
	}
}

func TestFleetTables(t *testing.T) {
	res := runFleet(t, 2)
	sum := res.SummaryTable().String()
	if !strings.Contains(sum, "replications ok") || !strings.Contains(sum, "4 / 4") {
		t.Errorf("summary table missing fleet status:\n%s", sum)
	}
	mod := res.ModalityTable().String()
	if !strings.Contains(mod, "±") {
		t.Errorf("modality table has no confidence intervals:\n%s", mod)
	}
	mech := res.MechanismTable().String()
	if !strings.Contains(mech, "gateway") {
		t.Errorf("mechanism table missing gateway row:\n%s", mech)
	}
}
