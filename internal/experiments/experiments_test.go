package experiments

import (
	"strconv"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/job"
)

const testSeed = 11

func TestT1Taxonomy(t *testing.T) {
	tab := T1Taxonomy()
	if tab.Rows() != len(job.AllModalities) {
		t.Errorf("taxonomy rows = %d, want %d", tab.Rows(), len(job.AllModalities))
	}
	if !strings.Contains(tab.String(), "gateway") {
		t.Error("taxonomy table missing gateway row")
	}
}

func TestT2Mechanism(t *testing.T) {
	tab, err := T2Mechanism(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, mech := range []string{"login", "gram", "gateway", "metasched"} {
		if !strings.Contains(s, mech) {
			t.Errorf("mechanism table missing %q:\n%s", mech, s)
		}
	}
	// Expected shape: command-line (login+gram) NUs dominate gateway NUs.
	var loginNUs, gatewayNUs float64
	for i := 0; i < tab.Rows(); i++ {
		v, _ := strconv.ParseFloat(strings.ReplaceAll(tab.Cell(i, 2), ",", ""), 64)
		switch tab.Cell(i, 0) {
		case "login":
			loginNUs = v
		case "gateway":
			gatewayNUs = v
		}
	}
	if loginNUs <= gatewayNUs {
		t.Errorf("shape violation: login NUs (%v) should dominate gateway NUs (%v)",
			loginNUs, gatewayNUs)
	}
}

func TestT3ModalityUsage(t *testing.T) {
	tab, err := T3ModalityUsage(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() < 8 {
		t.Errorf("modality table rows = %d, want ≥ 8:\n%s", tab.Rows(), tab.String())
	}
	// Gateway end users exceed gateway accounts (the headline asymmetry).
	for i := 0; i < tab.Rows(); i++ {
		if tab.Cell(i, 0) == string(job.ModGateway) {
			accounts, _ := strconv.Atoi(strings.ReplaceAll(tab.Cell(i, 4), ",", ""))
			people, _ := strconv.Atoi(strings.ReplaceAll(tab.Cell(i, 5), ",", ""))
			if people <= accounts*5 {
				t.Errorf("gateway end users (%d) should dwarf accounts (%d)", people, accounts)
			}
		}
	}
}

func TestT4Coverage(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage sweep runs five scenarios")
	}
	tab, err := T4Coverage(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 5 {
		t.Fatalf("coverage rows = %d, want 5", tab.Rows())
	}
	// Shape: accuracy at full coverage beats zero coverage.
	acc0, _ := strconv.ParseFloat(tab.Cell(0, 1), 64)
	acc100, _ := strconv.ParseFloat(tab.Cell(4, 1), 64)
	if acc100 <= acc0 {
		t.Errorf("full-coverage accuracy (%v) should beat zero coverage (%v)", acc100, acc0)
	}
	// Gateway F1 at full coverage is ~1 (direct attribute).
	gwF1, _ := strconv.ParseFloat(tab.Cell(4, 2), 64)
	if gwF1 < 0.99 {
		t.Errorf("gateway F1 at full coverage = %v, want ~1", gwF1)
	}
}

func TestF1JobSize(t *testing.T) {
	fig, err := F1JobSize(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatal("F1 needs jobs and NUs series")
	}
	jobs, nus := fig.Series[0], fig.Series[1]
	// Shape: job count concentrates in the small bins, NUs in large bins.
	smallJobs := jobs.Y[0] + jobs.Y[1]
	largeJobs := jobs.Y[len(jobs.Y)-1] + jobs.Y[len(jobs.Y)-2]
	if smallJobs <= largeJobs {
		t.Errorf("job counts should concentrate small: small=%v large=%v", smallJobs, largeJobs)
	}
	var totalNUs float64
	for _, v := range nus.Y {
		totalNUs += v
	}
	largeNUs := nus.Y[len(nus.Y)-1] + nus.Y[len(nus.Y)-2] + nus.Y[len(nus.Y)-3]
	if largeNUs < totalNUs/2 {
		t.Errorf("NUs should concentrate large: large=%v of %v", largeNUs, totalNUs)
	}
}

func TestF2GatewayGrowth(t *testing.T) {
	fig, err := F2GatewayGrowth(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	us := fig.Series[0]
	if len(us.Y) < 2 {
		t.Fatalf("growth series too short: %v", us.Y)
	}
	// Shape: adoption ramp — the last period has more users than the first.
	if us.Y[len(us.Y)-1] <= us.Y[0] {
		t.Errorf("no growth: first=%v last=%v", us.Y[0], us.Y[len(us.Y)-1])
	}
}

func TestF3WaitBySize(t *testing.T) {
	fig, err := F3WaitBySize(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("want 4 policies, got %d", len(fig.Series))
	}
}

func TestF4Utilization(t *testing.T) {
	fig, err := F4Utilization(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	var fcfs, easy *float64
	for _, s := range fig.Series {
		if len(s.Y) == 0 {
			t.Fatal("empty series")
		}
		last := s.Y[len(s.Y)-1] // highest offered load
		switch s.Name {
		case "fcfs":
			fcfs = &last
		case "easy":
			easy = &last
		}
		for _, u := range s.Y {
			if u < 0 || u > 1.01 {
				t.Errorf("utilization out of range: %v", u)
			}
		}
	}
	if fcfs == nil || easy == nil {
		t.Fatal("missing policy series")
	}
	// Shape: backfill beats FCFS at saturation.
	if *easy <= *fcfs {
		t.Errorf("EASY (%v) should beat FCFS (%v) at high load", *easy, *fcfs)
	}
}

func TestF5Urgent(t *testing.T) {
	tab, err := F5Urgent(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 5 {
		t.Fatalf("urgent rows = %d, want 5", tab.Rows())
	}
	// Shape: zero urgent rate → zero preemptions; positive rate → some.
	if tab.Cell(0, 4) != "0" {
		t.Errorf("baseline preemptions = %s, want 0", tab.Cell(0, 4))
	}
	preempts, _ := strconv.Atoi(strings.ReplaceAll(tab.Cell(3, 4), ",", ""))
	if preempts == 0 {
		t.Error("no preemptions at 24 urgent/day; preemption path untested")
	}
	// Urgent waits stay small (seconds-to-minutes, not hours).
	wait, _ := strconv.ParseFloat(strings.ReplaceAll(tab.Cell(3, 3), ",", ""), 64)
	if wait > 600 {
		t.Errorf("mean urgent wait = %vs; urgent computing is not urgent", wait)
	}
	// Checkpointing slashes the victim cost at the same urgent rate.
	lostRestart, _ := strconv.ParseFloat(strings.ReplaceAll(tab.Cell(3, 5), ",", ""), 64)
	lostCkpt, _ := strconv.ParseFloat(strings.ReplaceAll(tab.Cell(4, 5), ",", ""), 64)
	if lostCkpt >= lostRestart {
		t.Errorf("checkpoint lost work (%v) should be below restart lost work (%v)",
			lostCkpt, lostRestart)
	}
}

func TestF6Transfers(t *testing.T) {
	tab, err := F6Transfers(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "data-centric") {
		t.Errorf("transfer table missing data-centric row:\n%s", tab.String())
	}
}

func TestF7Kernel(t *testing.T) {
	tab := F7Kernel(Quick)
	if tab.Rows() != 3 {
		t.Fatalf("kernel rows = %d", tab.Rows())
	}
	for i := 0; i < tab.Rows(); i++ {
		v, _ := strconv.ParseFloat(strings.ReplaceAll(tab.Cell(i, 1), ",", ""), 64)
		if v < 100000 {
			t.Errorf("kernel throughput %v events/s is implausibly slow", v)
		}
	}
}

func TestF8Inference(t *testing.T) {
	tab, err := F8Inference(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 12 {
		t.Fatalf("ablation rows = %d, want 12", tab.Rows())
	}
}

func TestGatewayVisibilityTable(t *testing.T) {
	tab, err := GatewayVisibilityTable(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "hidden-user multiplier") {
		t.Errorf("visibility table incomplete:\n%s", tab.String())
	}
}

func TestConcentrationTable(t *testing.T) {
	tab, err := ConcentrationTable(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 4 {
		t.Errorf("concentration rows = %d, want 4", tab.Rows())
	}
}

func TestF9Prediction(t *testing.T) {
	tab, err := F9Prediction(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 3 {
		t.Fatalf("prediction rows = %d, want 3", tab.Rows())
	}
	// Shape: under EASY the estimate is conservative — far more probes
	// start earlier than predicted than later.
	for i := 0; i < tab.Rows(); i++ {
		early, _ := strconv.Atoi(strings.ReplaceAll(tab.Cell(i, 4), ",", ""))
		late, _ := strconv.Atoi(strings.ReplaceAll(tab.Cell(i, 5), ",", ""))
		if late > early {
			t.Errorf("load %s: late starts (%d) exceed early starts (%d); estimate not conservative",
				tab.Cell(i, 0), late, early)
		}
	}
}

func TestServiceTable(t *testing.T) {
	tab, err := ServiceTable(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() < 8 {
		t.Errorf("service rows = %d, want ≥ 8:\n%s", tab.Rows(), tab.String())
	}
	// Urgent jobs must show near-zero waits; find the row.
	for i := 0; i < tab.Rows(); i++ {
		if tab.Cell(i, 0) == "urgent" {
			mean, _ := strconv.ParseFloat(strings.ReplaceAll(tab.Cell(i, 2), ",", ""), 64)
			if mean > 0.1 {
				t.Errorf("urgent mean wait = %vh, want ~0", mean)
			}
		}
	}
}

func TestFieldTable(t *testing.T) {
	tab, err := FieldTable(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() < 5 {
		t.Errorf("field rows = %d, want several:\n%s", tab.Rows(), tab.String())
	}
}

func TestCampaignTable(t *testing.T) {
	tab, err := CampaignTable(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 2 {
		t.Fatalf("campaign rows = %d, want 2 (ensemble, workflow)", tab.Rows())
	}
	// Ensemble campaigns are tagged or burst-inferred: most recovered.
	trueC, _ := strconv.Atoi(strings.ReplaceAll(tab.Cell(0, 1), ",", ""))
	recovered, _ := strconv.Atoi(strings.ReplaceAll(tab.Cell(0, 3), ",", ""))
	if trueC == 0 {
		t.Fatal("no true ensemble campaigns in the shared run")
	}
	if float64(recovered) < 0.8*float64(trueC) {
		t.Errorf("ensemble campaign recovery %d/%d, want ≥ 80%%", recovered, trueC)
	}
}

func TestOverlapTable(t *testing.T) {
	tab, err := OverlapTable(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() < 1 {
		t.Fatal("overlap table empty")
	}
	// Most users are single-modality; the single-modality row must
	// dominate the second row when one exists.
	one, _ := strconv.Atoi(strings.ReplaceAll(tab.Cell(0, 1), ",", ""))
	if one < 100 {
		t.Errorf("single-modality users = %d, want many", one)
	}
	if tab.Rows() > 1 {
		two, _ := strconv.Atoi(strings.ReplaceAll(tab.Cell(1, 1), ",", ""))
		if two >= one {
			t.Errorf("multi-modality users (%d) should be fewer than single (%d)", two, one)
		}
	}
}

func TestMaintenanceTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three scenarios")
	}
	tab, err := MaintenanceTable(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 3 {
		t.Fatalf("maintenance rows = %d, want 3", tab.Rows())
	}
	// Shape: more maintenance → fewer NUs delivered.
	none, _ := strconv.ParseFloat(strings.ReplaceAll(tab.Cell(0, 2), ",", ""), 64)
	heavy, _ := strconv.ParseFloat(strings.ReplaceAll(tab.Cell(2, 2), ",", ""), 64)
	if heavy >= none {
		t.Errorf("NUs with heavy maintenance (%v) should trail no-maintenance (%v)", heavy, none)
	}
}

func TestFLFleetScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet scaling runs multiple full replications")
	}
	tab, rows, err := FLFleetScaling(404, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || tab.Rows() != len(rows) {
		t.Fatalf("rows = %d, table rows = %d", len(rows), tab.Rows())
	}
	if rows[0].Workers != 1 || rows[0].Speedup != 1 {
		t.Errorf("first row must be the sequential baseline: %+v", rows[0])
	}
	for _, r := range rows {
		if r.Wall <= 0 || r.EventsSec <= 0 {
			t.Errorf("non-positive measurement: %+v", r)
		}
	}
}

func TestDRDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full scenario with a tapped stream processor")
	}
	tab, rows, err := DRDrift(7, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want pre/post rows, got %d", len(rows))
	}
	pre, post := rows[0], rows[1]
	if pre.Scored == 0 || post.Scored == 0 {
		t.Fatalf("empty period: pre=%+v post=%+v", pre, post)
	}
	// The untagged surge must register: drift steps up after the shift.
	if post.Rate <= pre.Rate {
		t.Errorf("no drift step: pre %.4f, post %.4f", pre.Rate, post.Rate)
	}
	out := tab.String()
	for _, want := range []string{"pre-shift", "post-shift", "lifetime", "peak trailing window"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
