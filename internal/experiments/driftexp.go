package experiments

import (
	"fmt"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/stream"
	"github.com/tgsim/tgmod/internal/workload"
)

// DriftRow is one aggregated period of classifier-agreement history.
type DriftRow struct {
	Period   string
	Scored   int64
	Disagree int64
	Rate     float64
}

// DRDrift measures how fast the streaming observatory notices a workload
// shift it was not told about. The standard scenario runs with one
// addition: at half-horizon a workload.DelayedGen switches on a surge of
// fully untagged ensemble campaigns (TagCoverage 0), so the online
// classifier gets no attribute evidence and must infer campaign
// membership from burst similarity — with the inference lag showing up
// as disagreement against the trailing ground truth. The experiment
// reads the tapped processor's hourly drift history back and reports the
// pre-shift period, the post-shift period, and the peak trailing-window
// drift: a visible pre/post step is the expected signature, and its
// absence would mean either the surge never ran or the drift monitor is
// not wired to the live stream.
func DRDrift(seed uint64, sc Scale) (*report.Table, []DriftRow, error) {
	cfg := scenario.New(seed, StandardOptions(sc)...)
	shift := cfg.Horizon / 2
	cfg.Generators = append(cfg.Generators, &workload.DelayedGen{
		After: shift,
		Gen: &workload.EnsembleGen{
			CampaignsPerDay: 18,
			JobsPerCampaign: 15,
			TagCoverage:     0, // the shift the classifier must infer
			MedianRuntime:   900,
		},
	})

	largest, err := largestBatchCores(cfg)
	if err != nil {
		return nil, nil, err
	}
	proc := stream.New(stream.Config{LargestCores: largest})
	cfg.Observers = append(cfg.Observers, stream.Tap(proc))

	if _, err := scenario.Run(cfg); err != nil {
		return nil, nil, fmt.Errorf("drift scenario: %w", err)
	}
	proc.Advance(cfg.Horizon + cfg.DrainTime)

	// Aggregate the hourly history into pre-shift and post-shift periods.
	// History cells are absolute virtual-hour indexed; the boundary hour
	// counts as post-shift (the surge switches on at its start).
	shiftHour := int64(shift / des.Hour)
	var pre, post DriftRow
	pre.Period = fmt.Sprintf("pre-shift (hour 0-%d)", shiftHour-1)
	post.Period = fmt.Sprintf("post-shift (hour %d-)", shiftHour)
	for _, c := range proc.DriftHistory() {
		row := &pre
		if c.Hour >= shiftHour {
			row = &post
		}
		row.Scored += c.Agree + c.Disagree
		row.Disagree += c.Disagree
	}
	rows := []DriftRow{pre, post}
	for i := range rows {
		if rows[i].Scored > 0 {
			rows[i].Rate = float64(rows[i].Disagree) / float64(rows[i].Scored)
		}
	}

	dr := proc.Drift()
	peak := 0.0
	for _, w := range dr.Windows {
		if w.Peak > peak {
			peak = w.Peak
		}
	}
	t := report.NewTable(
		fmt.Sprintf("DR: online drift under an untagged ensemble surge at hour %d", shiftHour),
		"period", "scored", "disagree", "drift")
	for _, r := range rows {
		t.AddRowf(r.Period, r.Scored, r.Disagree, report.Percent(r.Rate))
	}
	t.AddRowf("lifetime", dr.Events, dr.Disagree, report.Percent(dr.Rate))
	t.AddRowf("peak trailing window", "", "", report.Percent(peak))
	return t, rows, nil
}

// largestBatchCores resolves the classifier capability threshold from
// the config's federation (nil means the TG9 default, matching Run).
func largestBatchCores(cfg scenario.Config) (int, error) {
	fed := cfg.Federation
	if fed == nil {
		var err error
		if fed, err = scenario.TG9(); err != nil {
			return 0, err
		}
	}
	largest := 0
	for _, m := range fed.Machines() {
		if m.BatchCores() > largest {
			largest = m.BatchCores()
		}
	}
	return largest, nil
}
