// Package experiments regenerates every table and figure in the evaluation
// (EXPERIMENTS.md). Each experiment is a function returning renderable
// report structures; cmd/benchtab prints them all and bench_test.go wraps
// each in a testing.B benchmark.
//
// The standard scenario (one simulated quarter of the TG9 federation at the
// default workload mix) is shared by the usage-measurement experiments;
// scheduler and kernel experiments build their own focused setups.
package experiments

import (
	"fmt"
	"sync"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/metrics"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/users"
	"github.com/tgsim/tgmod/internal/workload"
)

// Scale selects experiment sizing: Quick for CI/benchmarks, Full for the
// published numbers in EXPERIMENTS.md.
type Scale int

// Experiment scales.
const (
	Quick Scale = iota
	Full
)

// StandardConfig returns the shared measurement scenario at a scale.
// Built via the options API so callers (and fleet.Spec.Build closures) can
// re-derive it per seed; generators are constructed fresh on every call.
func StandardConfig(seed uint64, sc Scale) scenario.Config {
	return scenario.New(seed, StandardOptions(sc)...)
}

// StandardOptions returns the option list behind StandardConfig, for
// callers that want to compose further options on top of the standard
// scenario (an observer, a different horizon).
func StandardOptions(sc Scale) []scenario.Option {
	if sc != Quick {
		return nil
	}
	return []scenario.Option{
		scenario.WithHorizon(14 * des.Day),
		scenario.WithDrain(4 * des.Day),
		scenario.WithUsers(users.Config{Projects: 60, UsersPerProjMu: 0.8, UsersPerProjSd: 0.7, ActivityAlpha: 1.5}),
		scenario.WithGenerators(quickGenerators(1.0, 0.5, 0.6, 0.9)...),
	}
}

// quickGenerators builds the reduced-rate mix with adjustable attribute
// coverages: broker handled via config, ensemble/workflow/gateway here.
func quickGenerators(scale, ensembleCov, workflowTagged, gatewayCov float64) []workload.Generator {
	_ = gatewayCov // gateway coverage is set on the gateway configs
	return []workload.Generator{
		&workload.BatchGen{JobsPerDay: 250 * scale, CapabilityFrac: 0.006, MedianRuntime: 3600},
		&workload.EnsembleGen{CampaignsPerDay: 6 * scale, JobsPerCampaign: 15, TagCoverage: ensembleCov, MedianRuntime: 900},
		&workload.WorkflowGen{CampaignsPerDay: 5 * scale, TaggedFrac: workflowTagged, Workers: 6, MedianTask: 900},
		&workload.GatewayGen{Gateway: "nanohub", RequestsPerDay: 150 * scale, EndUsers: 800, MedianRuntime: 400},
		&workload.GatewayGen{Gateway: "cipres", RequestsPerDay: 60 * scale, EndUsers: 300, MedianRuntime: 900},
		&workload.GatewayGen{Gateway: "climate-portal", RequestsPerDay: 25 * scale, EndUsers: 120, MedianRuntime: 1800},
		&workload.UrgentGen{EventsPerWeek: 4 * scale, MedianRuntime: 2700},
		&workload.InteractiveGen{SessionsPerDay: 25 * scale, MedianSession: 1500},
		&workload.DataCentricGen{JobsPerDay: 15 * scale, MedianInputGB: 30, MedianRuntime: 2700},
		&workload.MetaschedGen{JobsPerDay: 30 * scale, CoAllocFrac: 0.05, MedianRuntime: 2700},
	}
}

// standardRun caches the shared scenario per (seed, scale).
var (
	runMu    sync.Mutex
	runCache = map[string]*scenario.Result{}
)

// standard returns the shared run, executing it on first use.
func standard(seed uint64, sc Scale) (*scenario.Result, error) {
	key := fmt.Sprintf("%d-%d", seed, sc)
	runMu.Lock()
	defer runMu.Unlock()
	if r, ok := runCache[key]; ok {
		return r, nil
	}
	r, err := scenario.Run(StandardConfig(seed, sc))
	if err != nil {
		return nil, err
	}
	runCache[key] = r
	return r, nil
}

// classifyStandard runs the classifier over a finished run.
func classifyStandard(res *scenario.Result) []core.Result {
	cl := core.NewClassifier(core.Config{LargestCores: res.LargestCores})
	return cl.Classify(res.Central)
}

// T1Taxonomy renders the modality taxonomy table (paper Table 1 analogue).
func T1Taxonomy() *report.Table {
	t := report.NewTable("T1: Usage-modality taxonomy and measurement sources",
		"id", "modality", "objective", "measured from", "fallback")
	for _, info := range core.Taxonomy() {
		fb := "-"
		if info.HasFallback {
			fb = info.Fallback.String()
		}
		t.AddRow(string(info.ID), info.Title, info.Objective, info.Source.String(), fb)
	}
	return t
}

// T2Mechanism renders usage by submission mechanism.
func T2Mechanism(seed uint64, sc Scale) (*report.Table, error) {
	res, err := standard(seed, sc)
	if err != nil {
		return nil, err
	}
	rows := core.MechanismReport(res.Central)
	total := res.Central.TotalNUs()
	t := report.NewTable("T2: Usage and users by submission mechanism",
		"mechanism", "jobs", "NUs", "NU share", "accounts")
	for _, r := range rows {
		t.AddRowf(r.Mechanism, r.Jobs, r.NUs, report.Percent(r.NUs/total), r.AccountUsers)
	}
	return t, nil
}

// T3ModalityUsage renders the central result: measured usage per modality
// with ground truth alongside.
func T3ModalityUsage(seed uint64, sc Scale) (*report.Table, error) {
	res, err := standard(seed, sc)
	if err != nil {
		return nil, err
	}
	results := classifyStandard(res)
	rep := core.BuildReport(res.Central, results)
	// Ground-truth NUs per modality for the comparison column.
	truthNUs := map[string]float64{}
	truthJobs := map[string]int{}
	for _, r := range res.Central.Jobs() {
		truthNUs[r.TruthModality] += r.NUs
		truthJobs[r.TruthModality]++
	}
	t := report.NewTable("T3: NUs and users by usage modality (measured vs ground truth)",
		"modality", "jobs", "NUs", "NU share", "accounts", "end users", "truth jobs", "truth NUs")
	for _, row := range rep.Rows {
		t.AddRowf(string(row.Modality), row.Jobs, row.NUs,
			report.Percent(row.NUs/rep.TotalNUs), row.AccountUsers, row.EndUsers,
			truthJobs[string(row.Modality)], truthNUs[string(row.Modality)])
	}
	return t, nil
}

// T4Coverage sweeps attribute coverage and reports per-modality F1 — the
// "what does more instrumentation buy" experiment motivating the paper's
// measurement program.
func T4Coverage(seed uint64, sc Scale) (*report.Table, error) {
	coverages := []float64{0, 0.25, 0.5, 0.75, 1.0}
	t := report.NewTable("T4: Classifier F1 vs instrumentation attribute coverage",
		"coverage", "accuracy", "gateway F1", "ensemble F1", "workflow F1", "metasched F1")
	for _, cov := range coverages {
		cfg := scenario.New(seed, append(StandardOptions(sc),
			scenario.WithBrokerTagCoverage(cov),
			scenario.WithGatewayCoverage(cov),
		)...)
		if sc == Quick {
			cfg.Generators = quickGenerators(1.0, cov, cov, cov)
		} else {
			gens := scenario.DefaultGenerators()
			for _, g := range gens {
				switch gg := g.(type) {
				case *workload.EnsembleGen:
					gg.TagCoverage = cov
				case *workload.WorkflowGen:
					gg.TaggedFrac = cov
				}
			}
			cfg.Generators = gens
		}
		res, err := scenario.Run(cfg)
		if err != nil {
			return nil, err
		}
		conf := core.Validate(res.Central, classifyStandard(res))
		t.AddRowf(report.Percent(cov), fmt.Sprintf("%.3f", conf.Accuracy()),
			fmt.Sprintf("%.3f", conf.F1(string(job.ModGateway))),
			fmt.Sprintf("%.3f", conf.F1(string(job.ModEnsemble))),
			fmt.Sprintf("%.3f", conf.F1(string(job.ModWorkflow))),
			fmt.Sprintf("%.3f", conf.F1(string(job.ModMetascheduled))))
	}
	return t, nil
}

// F1JobSize renders the job-size distribution: counts concentrate at small
// sizes while NUs concentrate at large sizes.
func F1JobSize(seed uint64, sc Scale) (*report.Figure, error) {
	res, err := standard(seed, sc)
	if err != nil {
		return nil, err
	}
	jobsBySize := map[string]float64{}
	nusBySize := map[string]float64{}
	for _, r := range res.Central.Jobs() {
		b := accounting.SizeBin(r.Cores)
		jobsBySize[b]++
		nusBySize[b] += r.NUs
	}
	f := report.NewFigure("F1: Jobs and NUs by job size (cores)", "size bin")
	js := f.AddSeries("jobs")
	ns := f.AddSeries("NUs")
	for _, b := range accounting.SizeBins {
		js.Add(b, jobsBySize[b])
		ns.Add(b, nusBySize[b])
	}
	return f, nil
}

// F2GatewayGrowth renders gateway end users and jobs per period over the
// horizon — community adoption growth.
func F2GatewayGrowth(seed uint64, sc Scale) (*report.Figure, error) {
	res, err := standard(seed, sc)
	if err != nil {
		return nil, err
	}
	// Quick scale has a short horizon; bucket weekly there, quarterly at
	// full scale.
	period := 91.25 * 24 * 3600 / 13 // weekly
	label := "week"
	if sc == Full {
		period = 91.25 * 24 * 3600
		label = "quarter"
	}
	type bucketSet map[int]map[string]bool
	usersPer := bucketSet{}
	jobsPer := map[int]int{}
	for _, a := range res.Central.GatewayAttrs() {
		b := int(a.At / period)
		if usersPer[b] == nil {
			usersPer[b] = map[string]bool{}
		}
		usersPer[b][a.GatewayID+"/"+a.GatewayUser] = true
	}
	for _, r := range res.Central.Jobs() {
		if r.GatewayID != "" {
			jobsPer[int(r.SubmitTime/period)]++
		}
	}
	maxB := 0
	for b := range jobsPer {
		if b > maxB {
			maxB = b
		}
	}
	f := report.NewFigure("F2: Gateway adoption over time", label)
	us := f.AddSeries("distinct end users")
	js := f.AddSeries("gateway jobs")
	for b := 0; b <= maxB; b++ {
		us.Add(fmt.Sprintf("%d", b+1), float64(len(usersPer[b])))
		js.Add(fmt.Sprintf("%d", b+1), float64(jobsPer[b]))
	}
	return f, nil
}

// F6Transfers renders WAN usage: bytes moved by ground-truth modality and
// per-site egress utilization.
func F6Transfers(seed uint64, sc Scale) (*report.Table, error) {
	res, err := standard(seed, sc)
	if err != nil {
		return nil, err
	}
	// Transfer records reference jobs; group bytes by the job's truth.
	byMod := map[string]float64{}
	count := map[string]int{}
	for _, tr := range res.Central.Transfers() {
		mod := "unattributed"
		if r, ok := res.Central.Job(tr.JobID); ok {
			mod = r.TruthModality
		}
		byMod[mod] += float64(tr.Bytes)
		count[mod]++
	}
	t := report.NewTable("F6: WAN transfer volume by modality",
		"modality", "transfers", "bytes")
	for _, m := range append([]string{"unattributed"}, modalityStrings()...) {
		if count[m] == 0 && byMod[m] == 0 {
			continue
		}
		t.AddRowf(m, count[m], report.Bytes(byMod[m]))
	}
	t.AddRowf("total moved (incl. in-flight accounting)", int(res.Fabric.Completed()),
		report.Bytes(res.Fabric.BytesMoved()))
	return t, nil
}

func modalityStrings() []string {
	out := make([]string, len(job.AllModalities))
	for i, m := range job.AllModalities {
		out[i] = string(m)
	}
	return out
}

// F8Inference ablates the ensemble-inference window: too small splits
// campaigns, too large merges unrelated jobs.
func F8Inference(seed uint64, sc Scale) (*report.Table, error) {
	res, err := standard(seed, sc)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("F8: Inference ablation — ensemble window & chain slack",
		"window (s)", "chain slack (s)", "accuracy", "ensemble F1", "workflow F1")
	for _, w := range []float64{300, 1800, 3600, 14400} {
		for _, slack := range []float64{60, 300, 1800} {
			cl := core.NewClassifier(core.Config{
				LargestCores:   res.LargestCores,
				EnsembleWindow: w,
				ChainSlack:     slack,
			})
			conf := core.Validate(res.Central, cl.Classify(res.Central))
			t.AddRowf(w, slack, fmt.Sprintf("%.3f", conf.Accuracy()),
				fmt.Sprintf("%.3f", conf.F1(string(job.ModEnsemble))),
				fmt.Sprintf("%.3f", conf.F1(string(job.ModWorkflow))))
		}
	}
	return t, nil
}

// GatewayVisibilityTable summarizes the community-account measurement gap.
func GatewayVisibilityTable(seed uint64, sc Scale) (*report.Table, error) {
	res, err := standard(seed, sc)
	if err != nil {
		return nil, err
	}
	v := core.MeasureGatewayVisibility(res.Central)
	t := report.NewTable("Gateway end-user visibility (AAAA attributes)",
		"metric", "value")
	t.AddRowf("gateway jobs", v.GatewayJobs)
	t.AddRowf("jobs with end-user attribute", v.AttributedJobs)
	t.AddRowf("community accounts (what TGCDB sees)", v.CommunityAccounts)
	t.AddRowf("recovered end users", v.RecoveredEndUsers)
	if v.CommunityAccounts > 0 {
		t.AddRowf("hidden-user multiplier",
			fmt.Sprintf("%.1fx", float64(v.RecoveredEndUsers)/float64(v.CommunityAccounts)))
	}
	return t, nil
}

// ServiceTable reports per-modality queueing outcomes from the shared run.
func ServiceTable(seed uint64, sc Scale) (*report.Table, error) {
	res, err := standard(seed, sc)
	if err != nil {
		return nil, err
	}
	rows := core.ServiceReport(res.Central, classifyStandard(res))
	t := report.NewTable("Service quality by modality",
		"modality", "jobs", "mean wait (h)", "median wait (h)", "P95 wait (h)", "walltime-killed")
	for _, r := range rows {
		t.AddRowf(string(r.Modality), r.Jobs, r.MeanWaitS/3600, r.MedianWaitS/3600,
			r.P95WaitS/3600, report.Percent(r.KilledFrac))
	}
	return t, nil
}

// FieldTable reports usage by field of science from the shared run.
func FieldTable(seed uint64, sc Scale) (*report.Table, error) {
	res, err := standard(seed, sc)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Usage by field of science", "field", "jobs", "NUs", "projects")
	for _, r := range core.FieldReport(res.Central) {
		t.AddRowf(r.Field, r.Jobs, r.NUs, r.Projects)
	}
	return t, nil
}

// CampaignTable grades campaign-level recovery (did the framework
// reconstruct the sweeps and workflow instances, not just label jobs?).
func CampaignTable(seed uint64, sc Scale) (*report.Table, error) {
	res, err := standard(seed, sc)
	if err != nil {
		return nil, err
	}
	stats := core.CampaignReport(res.Central, classifyStandard(res))
	t := report.NewTable("Campaign recovery (groups, not just jobs)",
		"modality", "true campaigns", "measured groups", "recovered", "fragmentation")
	for _, s := range stats {
		t.AddRowf(string(s.Modality), s.TrueCampaigns, s.MeasuredCampaigns,
			s.RecoveredCampaigns, fmt.Sprintf("%.2f", s.Fragmentation))
	}
	return t, nil
}

// OverlapTable reports how many users span multiple modalities.
func OverlapTable(seed uint64, sc Scale) (*report.Table, error) {
	res, err := standard(seed, sc)
	if err != nil {
		return nil, err
	}
	ov := core.MeasureOverlap(res.Central, classifyStandard(res))
	t := report.NewTable("Users by number of modalities engaged",
		"modalities used", "users")
	maxK := 0
	for k := range ov.ByModalityCount {
		if k > maxK {
			maxK = k
		}
	}
	for k := 1; k <= maxK; k++ {
		if n := ov.ByModalityCount[k]; n > 0 {
			t.AddRowf(k, n)
		}
	}
	return t, nil
}

// MaintenanceTable quantifies what preventive-maintenance cadence costs in
// delivered NUs and queueing: the operational trade every resource
// provider makes.
func MaintenanceTable(seed uint64, sc Scale) (*report.Table, error) {
	t := report.NewTable("Maintenance cadence ablation",
		"cadence", "jobs finished", "NUs delivered", "mean wait (h)", "preempted jobs")
	type variant struct {
		label string
		every des.Time
		hours des.Time
	}
	variants := []variant{
		{"none", 0, 0},
		{"weekly 8h", 7 * des.Day, 8 * des.Hour},
		{"every 3d 8h", 3 * des.Day, 8 * des.Hour},
	}
	for _, v := range variants {
		cfg := scenario.New(seed, append(StandardOptions(sc),
			scenario.WithMaintenance(v.every, v.hours),
		)...)
		res, err := scenario.Run(cfg)
		if err != nil {
			return nil, err
		}
		var wait metrics.Summary
		preempted := 0
		for _, r := range res.Central.Jobs() {
			wait.Add(r.WaitSeconds() / 3600)
			if r.Preemptions > 0 {
				preempted++
			}
		}
		t.AddRowf(v.label, len(res.Central.Jobs()), res.Central.TotalNUs(),
			wait.Mean(), preempted)
	}
	return t, nil
}

// usageSample collects per-user NU totals for concentration stats.
func usageSample(res *scenario.Result) *metrics.Sample {
	per := map[string]float64{}
	for _, r := range res.Central.Jobs() {
		per[r.User] += r.NUs
	}
	var s metrics.Sample
	for _, v := range per {
		s.Add(v)
	}
	return &s
}

// ConcentrationTable reports usage concentration (Gini, top-k shares).
func ConcentrationTable(seed uint64, sc Scale) (*report.Table, error) {
	res, err := standard(seed, sc)
	if err != nil {
		return nil, err
	}
	s := usageSample(res)
	t := report.NewTable("Usage concentration across accounts", "metric", "value")
	t.AddRowf("accounts with usage", s.N())
	t.AddRowf("Gini coefficient", fmt.Sprintf("%.3f", s.Gini()))
	t.AddRowf("median NUs per account", s.Median())
	t.AddRowf("P95 NUs per account", s.Percentile(95))
	return t, nil
}
