package experiments

import (
	"strings"

	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/slo"
)

// pxWaitModalities are the per-modality wait columns in PX: the modalities
// whose queueing behavior the engines treat differently. The remaining
// modalities (interactive, data-centric, metascheduled) ride the overall
// mean.
var pxWaitModalities = []job.Modality{
	job.ModBatchCapability, job.ModBatchCapacity, job.ModEnsemble,
	job.ModWorkflow, job.ModGateway, job.ModUrgent,
}

// PXPolicyEngines runs every registered policy engine against the identical
// high-load workload at one seed and reports utilization, the per-modality
// wait decomposition, and SLO conformance side by side. Expected shape
// (EXPERIMENTS.md): the backfill family clusters near the top on
// utilization while FCFS forfeits both utilization and wait; gang matches
// EASY's utilization but pays extra ensemble wait for all-or-nothing
// co-starts; priority and conservative trade throughput for their ordering
// guarantees (bounded starvation, committed start times).
func PXPolicyEngines(seed uint64, sc Scale) (*report.Table, error) {
	cols := []string{"policy", "utilization", "mean wait (h)"}
	for _, m := range pxWaitModalities {
		cols = append(cols, string(m))
	}
	cols = append(cols, "SLO met", "failed objectives")
	t := report.NewTable(
		"PX: Policy engines on the identical workload — utilization, wait by modality (h), SLO conformance",
		cols...)

	for _, name := range sched.EngineNames() {
		ev, err := slo.New()
		if err != nil {
			return nil, err
		}
		// The standard mix runs the federation light enough that backfill
		// never matters; PX raises the offered load until queues form, so
		// ordering and backfill choices actually separate the engines.
		cfg := scenario.New(seed, append(StandardOptions(sc),
			scenario.WithGenerators(quickGenerators(8.0, 0.5, 0.6, 0.9)...),
			scenario.WithPolicy(name),
			scenario.WithObserver(scenario.EvaluateSLO(ev)),
		)...)
		res, err := scenario.Run(cfg)
		if err != nil {
			return nil, err
		}

		// Core-weighted utilization across the federation.
		var busy, cores float64
		for _, m := range res.Federation.Machines() {
			busy += res.Schedulers[m.ID].Utilization() * float64(m.BatchCores())
			cores += float64(m.BatchCores())
		}

		// Wait decomposition over the accounting stream, keyed by the
		// generators' ground-truth modality.
		waitSum := make(map[job.Modality]float64)
		waitN := make(map[job.Modality]int)
		var allSum float64
		var allN int
		for _, r := range res.Central.Jobs() {
			w := r.StartTime - r.SubmitTime
			if w < 0 {
				continue
			}
			allSum += w
			allN++
			mod := job.Modality(r.TruthModality)
			waitSum[mod] += w
			waitN[mod]++
		}
		meanH := func(sum float64, n int) float64 {
			if n == 0 {
				return 0
			}
			return sum / float64(n) / 3600
		}

		met := "yes"
		if !ev.MetAll() {
			met = "no"
		}
		failed := "-"
		if f := ev.Failed(); len(f) > 0 {
			failed = strings.Join(f, " ")
		}

		row := []interface{}{name, report.Percent(busy / cores), meanH(allSum, allN)}
		for _, m := range pxWaitModalities {
			row = append(row, meanH(waitSum[m], waitN[m]))
		}
		row = append(row, met, failed)
		t.AddRowf(row...)
	}
	return t, nil
}
