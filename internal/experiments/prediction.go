package experiments

import (
	"fmt"
	"math"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/metrics"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/simrand"
)

// F9Prediction measures the queue-wait predictor that resource-selection
// tools expose: at each probe job's submission the scheduler's
// EstimateStart is recorded and later compared with the actual start.
// Under EASY the estimate is conservative (backfill can only start jobs
// earlier than planned), so the expected shape is non-negative bias with
// error growing with queue depth.
func F9Prediction(seed uint64, sc Scale) (*report.Table, error) {
	n := 2500
	if sc == Full {
		n = 15000
	}
	t := report.NewTable("F9: Queue-wait prediction error (estimate − actual, hours)",
		"offered load", "probes", "median err", "P90 err", "early starts", "late starts")
	for _, load := range []float64{0.6, 0.8, 0.95} {
		k := des.New()
		s, err := sched.NewNamed(k, schedulerMachine(), "easy")
		if err != nil {
			return nil, err
		}
		rng := simrand.Derive(seed, fmt.Sprintf("f9-%v", load))
		jobs := syntheticStream(k, s, rng, n, load)
		// Record the estimate for every 20th job the instant it queues
		// (the moment a resource-selection tool would have polled).
		type probe struct {
			j        *job.Job
			estStart des.Time
			ok       bool
		}
		probes := make([]*probe, 0, n/20+1)
		idx := make(map[job.ID]*probe, n/20+1)
		for i, j := range jobs {
			if i%20 != 0 {
				continue
			}
			pr := &probe{j: j}
			probes = append(probes, pr)
			idx[j.ID] = pr
		}
		s.Subscribe(func(e sched.Event) {
			if e.Kind != sched.EventQueued {
				return
			}
			if pr, ok := idx[e.Job.ID]; ok && !pr.ok {
				// EstimateStart plans the live queue, which already holds
				// the probe itself; the small own-footprint pessimism that
				// introduces is part of the real tool's behavior too.
				if at, ok2 := s.EstimateStart(e.Job.Cores, e.Job.ReqWalltime); ok2 {
					pr.estStart, pr.ok = at, true
				}
			}
		})
		k.Run()
		var errs metrics.Sample
		early, late := 0, 0
		for _, pr := range probes {
			if !pr.ok || !pr.j.State.Terminal() {
				continue
			}
			diff := float64(pr.estStart-pr.j.StartTime) / 3600
			errs.Add(diff)
			if diff > 0.01 {
				early++ // started earlier than predicted (backfill win)
			} else if diff < -0.01 {
				late++
			}
		}
		t.AddRowf(fmt.Sprintf("%.2f", load), errs.N(),
			round2(errs.Median()), round2(errs.Percentile(90)), early, late)
	}
	return t, nil
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
