package experiments

import (
	"strconv"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/sched"
)

func TestPXPolicyEngines(t *testing.T) {
	tab, err := PXPolicyEngines(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	engines := sched.EngineNames()
	if tab.Rows() != len(engines) {
		t.Fatalf("PX rows = %d, want one per engine (%d)", tab.Rows(), len(engines))
	}
	cell := func(r, c int) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(
			strings.ReplaceAll(tab.Cell(r, c), ",", ""), "%"), 64)
		return v
	}
	for r, name := range engines {
		if got := tab.Cell(r, 0); got != name {
			t.Fatalf("row %d policy = %q, want %q", r, got, name)
		}
		util := cell(r, 1)
		if util <= 0 || util > 100 {
			t.Errorf("%s utilization = %v%%, want (0,100]", name, util)
		}
		if w := cell(r, 2); w < 0 {
			t.Errorf("%s mean wait = %v, want >= 0", name, w)
		}
		met := tab.Cell(r, 9)
		if met != "yes" && met != "no" {
			t.Errorf("%s SLO met = %q, want yes/no", name, met)
		}
		if met == "yes" && tab.Cell(r, 10) != "-" {
			t.Errorf("%s met all SLOs but lists failures %q", name, tab.Cell(r, 10))
		}
	}
	// The engines run the same workload: wait profiles must not be all
	// identical (that would mean the policy knob is dead).
	base := tab.Cell(0, 2)
	same := true
	for r := 1; r < tab.Rows(); r++ {
		if tab.Cell(r, 2) != base {
			same = false
			break
		}
	}
	if same {
		t.Error("all engines report the identical mean wait; PX comparison is vacuous")
	}
}
