package experiments

import (
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/slo"
)

// SLOTable runs the standard scenario with the default virtual-time SLO
// objectives attached and returns the end-of-run conformance table: one
// row per objective with event counts, compliance against target, and
// peak burn rates per window. Expected shape (EXPERIMENTS.md): urgent and
// interactive meet their objectives easily, while capability-class waits
// burn error budget under load.
func SLOTable(seed uint64, sc Scale) (*report.Table, error) {
	ev, err := slo.New()
	if err != nil {
		return nil, err
	}
	cfg := scenario.New(seed, append(StandardOptions(sc),
		scenario.WithObserver(scenario.EvaluateSLO(ev)),
	)...)
	if _, err := scenario.Run(cfg); err != nil {
		return nil, err
	}
	return ev.Table(), nil
}
