package experiments

import (
	"strings"
	"testing"
)

func TestSLOTable(t *testing.T) {
	tab, err := SLOTable(testSeed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 5 {
		t.Fatalf("SLO rows = %d, want one per default objective", tab.Rows())
	}
	out := tab.String()
	for _, want := range []string{"urgent-immediate", "interactive-p95-wait", "capability-wait"} {
		if !strings.Contains(out, want) {
			t.Errorf("SLO table missing %q:\n%s", want, out)
		}
	}
	// The urgent objective must hold on the standard scenario: urgent jobs
	// preempt their way onto machines, so waits near zero are structural.
	for i := 0; i < tab.Rows(); i++ {
		if tab.Cell(i, 0) == "urgent-immediate" && tab.Cell(i, 7) != "yes" {
			t.Errorf("urgent-immediate not met:\n%s", out)
		}
	}
}
