package experiments

import (
	"fmt"
	"runtime"

	"github.com/tgsim/tgmod/internal/fleet"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/scenario"
)

// FleetScalingRow is one measured fleet configuration.
type FleetScalingRow struct {
	Workers   int
	Reps      int
	Wall      float64
	EventsSec float64
	Speedup   float64
}

// fleetSpec builds the FL experiment's fleet: the standard measurement
// scenario rebuilt fresh per seed (stateful generators must never be
// shared across concurrent replications).
func fleetSpec(seed uint64, sc Scale, reps, workers int) fleet.Spec {
	return fleet.Spec{
		Reps:     reps,
		Parallel: workers,
		BaseSeed: seed,
		Build: func(s uint64) scenario.Config {
			return scenario.New(s, StandardOptions(sc)...)
		},
	}
}

// FLFleetScaling measures replication-fleet wall-clock scaling: the same
// N-replication fleet run at widths 1, 2, 4, ... up to GOMAXPROCS, with
// speedup relative to the sequential run. On an unloaded P-core host the
// expected shape is near-linear up to P (replications share no state and
// the seed-order merge is negligible), flattening past physical cores.
func FLFleetScaling(seed uint64, sc Scale) (*report.Table, []FleetScalingRow, error) {
	reps := 8
	if sc == Full {
		reps = 16
	}
	maxW := runtime.GOMAXPROCS(0)
	widths := []int{1}
	for w := 2; w <= maxW; w *= 2 {
		widths = append(widths, w)
	}
	if last := widths[len(widths)-1]; last != maxW {
		widths = append(widths, maxW)
	}

	t := report.NewTable(
		fmt.Sprintf("FL: replication-fleet scaling, %d reps of the standard %s scenario", reps, scaleName(sc)),
		"workers", "wall (s)", "events/sec", "speedup vs 1 worker")
	var rows []FleetScalingRow
	var base float64
	for _, w := range widths {
		res, err := fleet.Run(fleetSpec(seed, sc, reps, w))
		if err != nil {
			return nil, nil, fmt.Errorf("fleet scaling (workers=%d): %w", w, err)
		}
		if base == 0 {
			base = res.Wall
		}
		row := FleetScalingRow{
			Workers:   res.Workers,
			Reps:      reps,
			Wall:      res.Wall,
			EventsSec: res.EventsPerSec(),
			Speedup:   base / res.Wall,
		}
		rows = append(rows, row)
		t.AddRowf(row.Workers, row.Wall, row.EventsSec, row.Speedup)
	}
	return t, rows, nil
}

func scaleName(sc Scale) string {
	if sc == Full {
		return "full"
	}
	return "quick"
}
