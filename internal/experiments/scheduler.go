package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/metrics"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/simrand"
)

// schedulerMachine is the single-machine testbed for scheduling studies.
func schedulerMachine() *grid.Machine {
	return &grid.Machine{
		ID: "bench", Site: "bench", Nodes: 256, CoresPerNode: 8, // 2048 cores
		GFlopsPerCore: 4, NUPerCoreHour: 1, UrgentCapable: true,
	}
}

// syntheticStream submits n jobs with lognormal runtimes and power-of-two
// sizes at a Poisson rate scaled to the target offered load (fraction of
// machine capacity).
func syntheticStream(k *des.Kernel, s *sched.Scheduler, rng *simrand.Stream,
	n int, load float64) []*job.Job {
	m := s.M
	const medianRun = 3600.0
	// Mean cores of the drawn distribution ≈ 64; offered load =
	// rate * meanRun * meanCores / capacity → solve for rate.
	meanRun := medianRun * 1.5
	meanCores := 64.0
	rate := load * float64(m.BatchCores()) / (meanRun * meanCores)
	at := des.Time(0)
	jobs := make([]*job.Job, 0, n)
	for i := 0; i < n; i++ {
		at += des.Time(rng.Exp(rate))
		run := des.Time(rng.LogNormal(logOf(medianRun), 1.0))
		if run < 60 {
			run = 60
		}
		j := &job.Job{
			ID: job.ID(i + 1), Name: "synthetic", User: fmt.Sprintf("u%d", i%50),
			Project: "bench", Cores: rng.PowerOfTwo(3, 9),
			RunTime: run, ReqWalltime: des.Time(float64(run) * (1.2 + rng.Float64()*2)),
		}
		jobs = append(jobs, j)
		jj := j
		k.At(at, func(*des.Kernel) { s.Submit(jj) })
	}
	return jobs
}

func logOf(v float64) float64 { return math.Log(v) }

func nowNanos() int64 { return time.Now().UnixNano() }

// F3WaitBySize reports mean queue wait by job-size bin under each policy.
func F3WaitBySize(seed uint64, sc Scale) (*report.Figure, error) {
	n := 3000
	if sc == Full {
		n = 20000
	}
	f := report.NewFigure("F3: Mean queue wait (hours) by job size and policy", "size bin")
	for _, pol := range []string{"fcfs", "easy", "conservative", "fairshare"} {
		k := des.New()
		s, err := sched.NewNamed(k, schedulerMachine(), pol)
		if err != nil {
			return nil, err
		}
		rng := simrand.Derive(seed, "f3-"+pol)
		jobs := syntheticStream(k, s, rng, n, 0.9)
		k.Run()
		waits := map[string]*metrics.Summary{}
		for _, j := range jobs {
			if !j.State.Terminal() {
				continue
			}
			b := sizeBinOf(j.Cores)
			if waits[b] == nil {
				waits[b] = &metrics.Summary{}
			}
			waits[b].Add(float64(j.WaitTime()) / 3600)
		}
		series := f.AddSeries(pol)
		for _, b := range sizeBinsUsed() {
			if w, ok := waits[b]; ok {
				series.Add(b, w.Mean())
			} else {
				series.Add(b, 0)
			}
		}
	}
	return f, nil
}

// F4Utilization compares achieved utilization across policies at rising
// offered load — the backfill payoff curve.
func F4Utilization(seed uint64, sc Scale) (*report.Figure, error) {
	n := 2000
	if sc == Full {
		n = 15000
	}
	loads := []float64{0.5, 0.7, 0.85, 0.95, 1.1}
	f := report.NewFigure("F4: Achieved utilization vs offered load by policy", "offered load")
	for _, pol := range []string{"fcfs", "easy", "conservative", "fairshare"} {
		series := f.AddSeries(pol)
		for _, load := range loads {
			k := des.New()
			s, err := sched.NewNamed(k, schedulerMachine(), pol)
			if err != nil {
				return nil, err
			}
			rng := simrand.Derive(seed, fmt.Sprintf("f4-%s-%v", pol, load))
			jobs := syntheticStream(k, s, rng, n, load)
			k.Run()
			// Measure utilization over the span work was actually offered:
			// from t=0 to the last submit (avoids the drain tail skewing
			// comparisons between policies).
			lastSubmit := des.Time(0)
			for _, j := range jobs {
				if j.SubmitTime > lastSubmit {
					lastSubmit = j.SubmitTime
				}
			}
			busy := 0.0
			for _, j := range jobs {
				start, end := j.StartTime, j.EndTime
				if start > lastSubmit {
					continue
				}
				if end > lastSubmit {
					end = lastSubmit
				}
				busy += float64(end-start) * float64(j.Cores)
			}
			util := busy / (float64(lastSubmit) * float64(s.M.BatchCores()))
			series.Add(fmt.Sprintf("%.2f", load), util)
		}
	}
	return f, nil
}

// F5Urgent quantifies on-demand computing: urgent job wait vs the price
// paid by preempted victims, as the urgent arrival rate rises.
func F5Urgent(seed uint64, sc Scale) (*report.Table, error) {
	n := 2000
	if sc == Full {
		n = 12000
	}
	t := report.NewTable("F5: Urgent computing — responsiveness vs preemption cost",
		"urgent/day", "checkpointing", "urgent jobs", "mean urgent wait (s)", "preemptions",
		"victim lost core-hours", "normal P95 wait (h)")
	type variant struct {
		perDay float64
		ckpt   bool
	}
	variants := []variant{{0, false}, {2, false}, {8, false}, {24, false}, {24, true}}
	for _, v := range variants {
		perDay, ckpt := v.perDay, v.ckpt
		k := des.New()
		s, err := sched.NewNamed(k, schedulerMachine(), "easy")
		if err != nil {
			return nil, err
		}
		s.CheckpointRestart = ckpt
		rng := simrand.Derive(seed, fmt.Sprintf("f5-%v", perDay))
		// Exact lost work: on every preemption, the time executed since
		// the (re)start is lost under full restart; under checkpointing
		// only the tail past the last checkpoint boundary is lost.
		lostCoreHours := 0.0
		s.Subscribe(func(e sched.Event) {
			if e.Kind != sched.EventPreempted {
				return
			}
			ran := float64(k.Now() - e.Job.StartTime)
			if ckpt {
				interval := 15 * 60.0
				ran = ran - float64(int64(ran/interval))*interval
			}
			lostCoreHours += ran * float64(e.Job.Cores) / 3600
		})
		jobs := syntheticStream(k, s, rng, n, 0.85)
		// Urgent arrivals across the same span.
		span := des.Time(float64(n) / (0.85 * float64(s.M.BatchCores()) / (3600 * 1.5 * 64)))
		var urgents []*job.Job
		if perDay > 0 {
			gap := des.Time(86400 / perDay)
			id := job.ID(1000000)
			for at := gap; at < span; at += gap {
				id++
				run := des.Time(1800 + rng.Intn(3600))
				u := &job.Job{
					ID: id, Name: "urgent", User: "noaa", Project: "urgent",
					Cores: 256, RunTime: run, ReqWalltime: run + 600,
					QOS: job.QOSUrgent,
				}
				urgents = append(urgents, u)
				uu := u
				k.At(at, func(*des.Kernel) { s.Submit(uu) })
			}
		}
		k.Run()
		var uWait metrics.Summary
		for _, u := range urgents {
			uWait.Add(float64(u.WaitTime()))
		}
		var normWait metrics.Sample
		for _, j := range jobs {
			normWait.Add(float64(j.WaitTime()) / 3600)
		}
		mode := "restart"
		if ckpt {
			mode = "checkpoint"
		}
		t.AddRowf(perDay, mode, len(urgents), uWait.Mean(), int(s.Stats().Preemptions),
			lostCoreHours, normWait.Percentile(95))
	}
	return t, nil
}

// F7Kernel measures raw DES kernel throughput at increasing pending-event
// populations.
func F7Kernel(sc Scale) *report.Table {
	events := []int{1000, 10000, 100000}
	if sc == Full {
		events = append(events, 1000000)
	}
	t := report.NewTable("F7: DES kernel throughput", "pending events", "events/sec (steady churn)")
	for _, n := range events {
		k := des.New()
		rng := simrand.New(uint64(n))
		// Self-rescheduling events maintain a stable heap population.
		var handler des.Handler
		executed := 0
		target := n * 20
		handler = func(kk *des.Kernel) {
			executed++
			if executed < target {
				kk.Schedule(des.Time(rng.Float64()*100), handler)
			}
		}
		for i := 0; i < n; i++ {
			k.Schedule(des.Time(rng.Float64()*100), handler)
		}
		start := nowNanos()
		k.Run()
		elapsed := float64(nowNanos()-start) / 1e9
		if elapsed <= 0 {
			elapsed = 1e-9
		}
		t.AddRowf(n, float64(executed)/elapsed)
	}
	return t
}

func sizeBinOf(cores int) string {
	switch {
	case cores <= 16:
		return "≤16"
	case cores <= 64:
		return "17-64"
	case cores <= 256:
		return "65-256"
	default:
		return ">256"
	}
}

func sizeBinsUsed() []string { return []string{"≤16", "17-64", "65-256", ">256"} }
