// FT: the chaos experiment. Runs the standard measurement scenario under
// increasing fault intensity — unplanned machine crashes, node failures,
// link partitions, and gateway flaps, all deterministic per seed — and
// reports how each usage modality degrades: goodput (NUs charged for
// completed jobs), wasted NUs (execution lost past the last checkpoint),
// and completion rate, with fleet confidence intervals.
//
// The qualitative expectation (see EXPERIMENTS.md): gateway and
// metascheduled work degrade most gracefully — retries resubmit through
// flapping endpoints and failover reroutes crash victims — while large
// batch jobs bear most of the wasted work, since a crash forfeits the
// longest uncheckpointed runs.
package experiments

import (
	"fmt"
	"sort"

	"github.com/tgsim/tgmod/internal/fleet"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/scenario"
)

// ftModality is one modality's resilience sample from one replication.
type ftModality struct {
	Goodput   float64 // NUs charged to completed jobs
	Wasted    float64 // NUs lost to unplanned kills past the last checkpoint
	Jobs      int
	Completed int
}

// ftSample is what FT's Inspect extracts from one replication before the
// heavyweight result is released.
type ftSample struct {
	ByModality map[string]*ftModality
	Crashes    uint64
	Flaps      uint64
	Failovers  uint64
	Retries    uint64
}

func ftInspect(_ uint64, res *scenario.Result) any {
	s := &ftSample{ByModality: make(map[string]*ftModality)}
	for _, r := range res.Central.Jobs() {
		mod := r.TruthModality
		if mod == "" {
			mod = string(job.ModUnknown)
		}
		m := s.ByModality[mod]
		if m == nil {
			m = &ftModality{}
			s.ByModality[mod] = m
		}
		m.Jobs++
		m.Wasted += r.WastedNUs
		if r.ExitStatus == "completed" {
			m.Completed++
			m.Goodput += r.NUs
		}
	}
	if res.Faults != nil {
		st := res.Faults.Stats()
		s.Crashes = st.MachineCrashes
		s.Flaps = st.GatewayFlaps
		s.Failovers = st.Failovers
		s.Retries = st.GatewayRetries + st.TransferRestarts
	}
	return s
}

// ftStat summarizes one per-modality scalar across a fleet's replications.
func ftStat(reps []fleet.Rep, f func(*ftSample) float64) fleet.Stat {
	var samples []float64
	for i := range reps {
		if reps[i].Err != nil {
			continue
		}
		if s, ok := reps[i].Custom.(*ftSample); ok {
			samples = append(samples, f(s))
		}
	}
	return fleet.Summarize(samples)
}

func ftCell(s fleet.Stat) string {
	if s.N < 2 {
		return report.FormatFloat(s.Mean)
	}
	return report.FormatFloat(s.Mean) + " ± " + report.FormatFloat(s.CI95)
}

// FTChaos sweeps fault intensity over small replication fleets and reports
// per-modality goodput, wasted NUs, and completion rate. Intensity 0 is the
// fault-free baseline; 1 is the nominal MTBF mix; higher values fail
// proportionally more often. All runs checkpoint every 30 minutes, so
// wasted work measures the tail past the last checkpoint.
func FTChaos(seed uint64, sc Scale) (*report.Table, error) {
	reps := 3
	if sc == Full {
		reps = 8
	}
	intensities := []float64{0, 0.5, 1, 2}

	t := report.NewTable(
		fmt.Sprintf("FT: modality resilience under fault injection, mean ± 95%% CI over %d seeds", reps),
		"intensity", "modality", "jobs", "goodput NUs", "wasted NUs", "completion %")

	for _, x := range intensities {
		x := x
		spec := fleet.Spec{
			Reps:     reps,
			BaseSeed: seed,
			Build: func(s uint64) scenario.Config {
				opts := append(StandardOptions(sc),
					scenario.WithCheckpointRestart(1800, 0))
				if x > 0 {
					opts = append(opts, scenario.WithFaultIntensity(x))
				}
				return scenario.New(s, opts...)
			},
			Inspect: ftInspect,
		}
		res, err := fleet.Run(spec)
		if err != nil {
			return nil, fmt.Errorf("FT (intensity=%g): %w", x, err)
		}

		// Federation-wide row first, then the per-modality breakdown.
		total := func(f func(*ftModality) float64) func(*ftSample) float64 {
			return func(s *ftSample) float64 {
				var v float64
				for _, m := range s.ByModality {
					v += f(m)
				}
				return v
			}
		}
		jobs := ftStat(res.Reps, total(func(m *ftModality) float64 { return float64(m.Jobs) }))
		good := ftStat(res.Reps, total(func(m *ftModality) float64 { return m.Goodput }))
		waste := ftStat(res.Reps, total(func(m *ftModality) float64 { return m.Wasted }))
		comp := ftStat(res.Reps, func(s *ftSample) float64 {
			var done, all float64
			for _, m := range s.ByModality {
				done += float64(m.Completed)
				all += float64(m.Jobs)
			}
			if all == 0 {
				return 0
			}
			return 100 * done / all
		})
		t.AddRow(report.FormatFloat(x), "all",
			ftCell(jobs), ftCell(good), ftCell(waste), ftCell(comp))

		mods := make([]string, 0, len(job.AllModalities))
		for _, m := range job.AllModalities {
			mods = append(mods, string(m))
		}
		sort.Strings(mods)
		for _, mod := range mods {
			mod := mod
			pick := func(f func(*ftModality) float64) fleet.Stat {
				return ftStat(res.Reps, func(s *ftSample) float64 {
					if m := s.ByModality[mod]; m != nil {
						return f(m)
					}
					return 0
				})
			}
			jobs := pick(func(m *ftModality) float64 { return float64(m.Jobs) })
			if jobs.Max == 0 {
				continue
			}
			good := pick(func(m *ftModality) float64 { return m.Goodput })
			waste := pick(func(m *ftModality) float64 { return m.Wasted })
			comp := ftStat(res.Reps, func(s *ftSample) float64 {
				m := s.ByModality[mod]
				if m == nil || m.Jobs == 0 {
					return 0
				}
				return 100 * float64(m.Completed) / float64(m.Jobs)
			})
			t.AddRow("", mod, ftCell(jobs), ftCell(good), ftCell(waste), ftCell(comp))
		}
	}
	return t, nil
}
