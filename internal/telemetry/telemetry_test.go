package telemetry

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("jobs_total", "Jobs.", "machine")
	a := c.With("abe")
	a.Inc()
	a.Inc()
	c.With("abe").Add(3) // same series through a second handle
	if got := a.Value(); got != 5 {
		t.Errorf("counter = %v, want 5", got)
	}
	if got := c.With("bigben").Value(); got != 0 {
		t.Errorf("fresh series = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	a.Add(-1)
}

func TestGaugeBasics(t *testing.T) {
	r := New()
	g := r.Gauge("depth", "Depth.", "machine")
	d := g.With("abe")
	d.Set(7)
	d.Add(-2)
	if got := d.Value(); got != 5 {
		t.Errorf("gauge = %v, want 5", got)
	}
	n := 42.0
	g.Func(func() float64 { return n }, "bigben")
	if got := g.With("bigben").Value(); got != 42 {
		t.Errorf("callback gauge = %v, want 42", got)
	}
	n = 43
	if got := g.With("bigben").Value(); got != 43 {
		t.Errorf("callback gauge after update = %v, want 43", got)
	}
}

func TestSchemaConsistencyPanics(t *testing.T) {
	r := New()
	r.Counter("x_total", "X.", "a")
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"different kind", func() { r.Gauge("x_total", "X.", "a") }},
		{"different label count", func() { r.Counter("x_total", "X.", "a", "b") }},
		{"different label names", func() { r.Counter("x_total", "X.", "z") }},
		{"wrong value count", func() { r.Counter("x_total", "X.", "a").With("v1", "v2") }},
		{"empty name", func() { r.Counter("", "X.") }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	// Every handle and instrument must be callable without panicking.
	c := r.Counter("a_total", "A.", "l").With("v")
	c.Inc()
	c.Add(2)
	g := r.Gauge("b", "B.").With()
	g.Set(1)
	g.Add(1)
	r.Gauge("c", "C.").Func(func() float64 { return 1 })
	h := r.HistogramVec("d_seconds", "D.").With("extra", "ignored")
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.N() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil instruments returned nonzero values")
	}
	if r.Families() != nil {
		t.Error("nil registry has families")
	}
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "# EOF\n" {
		t.Errorf("nil exposition = %q, want EOF only", buf.String())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram nonzero")
	}
	for _, v := range []float64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.N() != 5 || h.Sum() != 110 || h.Min() != 1 || h.Max() != 100 {
		t.Errorf("stats: n=%d sum=%v min=%v max=%v", h.N(), h.Sum(), h.Min(), h.Max())
	}
	if got := h.Mean(); got != 22 {
		t.Errorf("mean = %v, want 22", got)
	}
	// Quantile extremes are exact.
	if h.Quantile(0) != 1 || h.Quantile(1) != 100 {
		t.Errorf("q0=%v q1=%v", h.Quantile(0), h.Quantile(1))
	}
	// Negative and NaN observations clamp to zero instead of corrupting state.
	h2 := NewHistogram()
	h2.Observe(-5)
	h2.Observe(math.NaN())
	if h2.N() != 2 || h2.Sum() != 0 || h2.Min() != 0 || h2.Max() != 0 {
		t.Errorf("clamped stats: %+v", h2)
	}
}

// lcg is a tiny deterministic generator so the accuracy test needs no seed
// plumbing and stays reproducible byte for byte.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(*l>>11) / float64(1<<53)
}

func TestHistogramQuantileWithinBucketResolution(t *testing.T) {
	// The acceptance bound: histogram quantiles agree with exact
	// metrics.Sample percentiles to within bucket resolution — a factor of
	// two, since buckets are powers of two.
	dists := map[string]func(u float64) float64{
		"uniform":     func(u float64) float64 { return 10000 * u },
		"exponential": func(u float64) float64 { return -3600 * math.Log(1-u) },
		"lognormal":   func(u float64) float64 { return math.Exp(4 + 2*math.Sqrt(2)*math.Erfinv(2*u-1)) },
	}
	for name, dist := range dists {
		h := NewHistogram()
		var exact metrics.Sample
		g := lcg(12345)
		for i := 0; i < 20000; i++ {
			v := dist(g.next())
			h.Observe(v)
			exact.Add(v)
		}
		for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
			est := h.Quantile(q)
			want := exact.Percentile(q * 100)
			if want <= 0 {
				continue
			}
			ratio := est / want
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("%s q%.2f: estimate %.4g vs exact %.4g (ratio %.3f) outside factor-2 bound",
					name, q, est, want, ratio)
			}
		}
	}
}

// buildSample populates a registry with one series of every kind, exercising
// label escaping, callback gauges, and histogram bucket rendering.
func buildSample(order []int) *Registry {
	r := New()
	steps := []func(){
		func() {
			c := r.Counter("tg_jobs_total", "Job lifecycle transitions.", "machine", "event")
			c.With("abe", "queued").Add(12)
			c.With("abe", "started").Add(10)
			c.With("bigben", "queued").Add(4)
		},
		func() {
			g := r.Gauge("tg_queue_depth", "Jobs waiting.", "machine")
			g.With("abe").Set(2)
			g.Func(func() float64 { return 5 }, "bigben")
		},
		func() {
			h := r.HistogramVec("tg_queue_wait_seconds", "Queue wait.", "machine")
			w := h.With("abe")
			for _, v := range []float64{0.5, 30, 30, 3600, 90000} {
				w.Observe(v)
			}
		},
		func() {
			r.Gauge("tg_label_escape", "Help with \\ backslash\nand newline.", "path").
				With(`quo"te\back` + "\nnewline").Set(1)
		},
	}
	for _, i := range order {
		steps[i]()
	}
	return r
}

func TestOpenMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample([]int{0, 1, 2, 3}).WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sample.om")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestOpenMetricsOrderIndependent(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildSample([]int{0, 1, 2, 3}).WriteOpenMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSample([]int{3, 2, 1, 0}).WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("exposition depends on registration order")
	}
}

var omLine = regexp.MustCompile(`^(# (HELP|TYPE|EOF).*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9+.eE-]+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? \+Inf)$`)

func TestOpenMetricsSyntax(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample([]int{0, 1, 2, 3}).WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatal("missing # EOF terminator")
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	for _, line := range lines {
		if !omLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
	// Histogram invariants: cumulative buckets are monotone and the +Inf
	// bucket equals _count.
	var last float64 = -1
	var inf, count float64
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "tg_queue_wait_seconds_bucket"):
			var v float64
			fields := strings.Fields(line)
			v, _ = parseFloat(fields[len(fields)-1])
			if v < last {
				t.Errorf("non-monotone bucket line: %q", line)
			}
			last = v
			if strings.Contains(line, `le="+Inf"`) {
				inf = v
			}
		case strings.HasPrefix(line, "tg_queue_wait_seconds_count"):
			fields := strings.Fields(line)
			count, _ = parseFloat(fields[len(fields)-1])
		}
	}
	if inf != count || count != 5 {
		t.Errorf("+Inf bucket %v != count %v (want 5)", inf, count)
	}
}

func parseFloat(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}
