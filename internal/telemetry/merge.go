// Registry merging for replication fleets: each replication runs with a
// private registry (the registry is deliberately unsynchronized — one
// writer, the replication's own simulation goroutine), and the fleet folds
// the finished registries together afterwards, in seed order. Because
// float64 addition is performed in that fixed order regardless of how the
// replications were scheduled across workers, the merged exposition is
// byte-identical between parallel and sequential fleet runs.
package telemetry

import "fmt"

// Merge folds src into r: counters and gauges add, histograms add
// bucket-wise (sums, counts, and exact min/max extremes combine). Callback
// gauges in src are evaluated at merge time and folded into the merged
// series' stored value, so the merged registry never retains closures over
// a replication's live state. Merged gauges are therefore sums across
// replications — divide by the replication count for a mean.
//
// Merging panics if src re-declares a family with a different kind or
// label schema, the same contract family registration itself enforces.
// A nil receiver or source is a no-op.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	for name, sf := range src.families {
		df := r.family(name, sf.help, sf.kind, sf.labels)
		for key, ss := range sf.series {
			ds := df.series[key]
			if ds == nil {
				ds = &series{labelValues: append([]string(nil), ss.labelValues...)}
				if df.kind == KindHistogram {
					ds.hist = NewHistogram()
				}
				df.series[key] = ds
			}
			switch df.kind {
			case KindHistogram:
				ds.hist.Merge(ss.hist)
			default:
				v := ss.value
				if ss.fn != nil {
					v = ss.fn()
				}
				ds.value += v
			}
		}
	}
}

// MergeRegistries merges each src, in order, into a fresh registry.
func MergeRegistries(srcs ...*Registry) *Registry {
	out := New()
	for _, s := range srcs {
		out.Merge(s)
	}
	return out
}

// Merge adds src's observations to h: bucket counts, observation count, and
// sum accumulate; min/max take the combined extremes. Histograms share one
// fixed bucket geometry, so the merge is exact. Nil-safe on both sides.
func (h *Histogram) Merge(src *Histogram) {
	if h == nil || src == nil || src.n == 0 {
		return
	}
	if h.n == 0 || src.min < h.min {
		h.min = src.min
	}
	if h.n == 0 || src.max > h.max {
		h.max = src.max
	}
	for i := range h.counts {
		h.counts[i] += src.counts[i]
	}
	h.n += src.n
	h.sum += src.sum
}

// seriesCount reports the total number of series across families — a cheap
// sanity figure for fleet summaries and tests.
func (r *Registry) seriesCount() int {
	if r == nil {
		return 0
	}
	n := 0
	for _, f := range r.families {
		n += len(f.series)
	}
	return n
}

// SeriesCount reports the total number of series across all families.
func (r *Registry) SeriesCount() int { return r.seriesCount() }

// mustSameSchema is a debugging helper used by tests to assert two
// registries declare compatible schemas before merging.
func mustSameSchema(a, b *Registry) error {
	if a == nil || b == nil {
		return nil
	}
	for name, bf := range b.families {
		af, ok := a.families[name]
		if !ok {
			continue
		}
		if af.kind != bf.kind || len(af.labels) != len(bf.labels) {
			return fmt.Errorf("telemetry: family %s schema mismatch", name)
		}
	}
	return nil
}
