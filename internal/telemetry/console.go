// The HTTP run console. The simulation loop publishes immutable snapshots
// (and pre-rendered OpenMetrics payloads) into atomic pointers; HTTP
// handlers only ever load those pointers. Serving therefore runs entirely
// off-thread: it never locks simulation state, never evaluates gauges, and
// can never perturb event ordering or determinism.
package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Console serves the live run console: /metrics (OpenMetrics), /status
// (JSON snapshot), / (a self-contained HTML dashboard), plus any extra
// JSON documents published with PublishJSON (the streaming observatory
// mounts /modalities and /drift). The zero value is not ready; use
// NewConsole.
type Console struct {
	snap    atomic.Pointer[Snapshot]
	metrics atomic.Pointer[[]byte]
	pages   sync.Map // path → *page, immutable payloads
	pprofOn atomic.Bool
	srv     *http.Server
}

// page is one published console document: immutable payload plus its
// content type.
type page struct {
	contentType string
	payload     []byte
}

// NewConsole returns a console with an empty snapshot, so endpoints are
// serviceable before the first publication.
func NewConsole() *Console {
	c := &Console{}
	c.snap.Store(&Snapshot{SimTimeHuman: "0:00:00:00"})
	empty := []byte("# EOF\n")
	c.metrics.Store(&empty)
	return c
}

// Update publishes a snapshot and its matching OpenMetrics payload. Callers
// must treat both as immutable after the call. Safe to call from the
// simulation goroutine while HTTP requests are in flight.
func (c *Console) Update(s *Snapshot, openMetrics []byte) {
	if s != nil {
		c.snap.Store(s)
	}
	if openMetrics != nil {
		c.metrics.Store(&openMetrics)
	}
}

// Snapshot returns the most recently published snapshot.
func (c *Console) Snapshot() *Snapshot { return c.snap.Load() }

// PublishJSON mounts (or refreshes) an extra JSON document at path (e.g.
// "/modalities"). The payload must be treated as immutable after the call;
// a nil payload unmounts the path. Safe to call from the simulation
// goroutine while HTTP requests are in flight.
func (c *Console) PublishJSON(path string, payload []byte) {
	c.PublishPage(path, "application/json; charset=utf-8", payload)
}

// PublishPage mounts (or refreshes) an extra document at path with an
// explicit content type (the perf layer publishes /metrics/runtime as an
// OpenMetrics exposition). A nil payload unmounts the path. Same
// immutability and concurrency contract as PublishJSON.
func (c *Console) PublishPage(path, contentType string, payload []byte) {
	if payload == nil {
		c.pages.Delete(path)
		return
	}
	c.pages.Store(path, &page{contentType: contentType, payload: payload})
}

// EnablePprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/. Off by default: profiling endpoints expose process
// internals and belong behind an explicit flag. pprof handlers only read
// Go runtime state — never the registry or the simulation — so enabling
// them cannot perturb deterministic output (golden-tested).
func (c *Console) EnablePprof() { c.pprofOn.Store(true) }

// ServeHTTP implements http.Handler, routing the three console endpoints.
func (c *Console) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/metrics":
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		w.Write(*c.metrics.Load())
	case "/status":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(c.snap.Load())
	case "/", "/index.html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(dashboardHTML))
	default:
		if strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
			if !c.pprofOn.Load() {
				http.NotFound(w, r)
				return
			}
			switch r.URL.Path {
			case "/debug/pprof/cmdline":
				pprof.Cmdline(w, r)
			case "/debug/pprof/profile":
				pprof.Profile(w, r)
			case "/debug/pprof/symbol":
				pprof.Symbol(w, r)
			case "/debug/pprof/trace":
				pprof.Trace(w, r)
			default:
				pprof.Index(w, r)
			}
			return
		}
		if p, ok := c.pages.Load(r.URL.Path); ok {
			pg := p.(*page)
			w.Header().Set("Content-Type", pg.contentType)
			w.Write(pg.payload)
			return
		}
		http.NotFound(w, r)
	}
}

// Serve starts the console's HTTP server on addr (e.g. ":8080"; ":0" picks
// a free port) in a background goroutine and returns the bound address.
// Stop it with Close; an unclosed console lives until the process exits.
func (c *Console) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	c.srv = &http.Server{Handler: c}
	go c.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close gracefully shuts the console down: the listener stops accepting,
// in-flight requests get up to timeout to finish, and stragglers are then
// cut off. No-op when Serve was never called (or already closed).
func (c *Console) Close(timeout time.Duration) error {
	if c.srv == nil {
		return nil
	}
	srv := c.srv
	c.srv = nil
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return srv.Close()
	}
	return nil
}

// dashboardHTML is the self-contained dashboard: no external assets, no
// frameworks; it polls /status and renders a progress bar plus a
// per-machine table.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>tgsim run console</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1 { font-size: 1.2rem; } code { background: #f0f0f5; padding: 0 .3em; }
#bar { height: 1.2rem; background: #e8e8f0; border-radius: .3rem; overflow: hidden; }
#fill { height: 100%; width: 0; background: #4a6fa5; transition: width .3s; }
table { border-collapse: collapse; margin-top: 1rem; width: 100%; }
th, td { text-align: left; padding: .25rem .75rem; border-bottom: 1px solid #e0e0e8; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
#stats { margin: .75rem 0; color: #555; }
.done #fill { background: #3c8c5a; }
</style>
</head>
<body>
<h1>tgsim run console</h1>
<div id="bar"><div id="fill"></div></div>
<div id="stats">waiting for first snapshot&hellip;</div>
<table id="machines"><thead>
<tr><th>machine</th><th class="num">queued</th><th class="num">running</th><th class="num">utilization</th></tr>
</thead><tbody></tbody></table>
<div id="modpanel" style="display:none">
<h1>Live modalities <span id="stream" style="font-weight:normal;color:#555"></span></h1>
<table id="modalities"><thead>
<tr><th>modality</th><th class="num">jobs 24h</th><th class="num">NUs 24h</th><th class="num">NU share</th><th class="num">confidence</th></tr>
</thead><tbody></tbody></table>
</div>
<div id="driftpanel" style="display:none">
<h1>Classifier drift</h1>
<table id="drift"><thead>
<tr><th>window</th><th class="num">events</th><th class="num">disagree</th><th class="num">drift</th><th class="num">peak</th></tr>
</thead><tbody></tbody></table>
</div>
<p>Raw endpoints: <a href="/status"><code>/status</code></a> (JSON),
<a href="/metrics"><code>/metrics</code></a> (OpenMetrics),
<a href="/modalities"><code>/modalities</code></a> and
<a href="/drift"><code>/drift</code></a> (streaming observatory, when attached).</p>
<script>
function fillRows(sel, rows) {
  const tb = document.querySelector(sel);
  tb.innerHTML = '';
  for (const cells of rows) {
    const tr = document.createElement('tr');
    for (const v of cells) {
      const td = document.createElement('td');
      td.textContent = v;
      if (typeof v === 'number' || (typeof v === 'string' && v.endsWith('%'))) td.className = 'num';
      tr.appendChild(td);
    }
    tb.appendChild(tr);
  }
}
async function tickStream() {
  try {
    const r = await fetch('/modalities');
    if (r.ok) {
      const m = await r.json();
      document.getElementById('modpanel').style.display = '';
      const total = (m.windows || []).reduce((a, w) => a + (w.window === '24h' ? w.total_nus : 0), 0);
      const w24 = (m.windows || []).find(w => w.window === '24h') || {rows: []};
      fillRows('#modalities tbody', (w24.rows || []).map(x =>
        [x.modality, x.jobs, Math.round(x.nus).toLocaleString(),
         total > 0 ? (100 * x.nus / total).toFixed(1) + '%' : '0.0%',
         (100 * x.confidence).toFixed(0) + '%']));
    }
    const d = await fetch('/drift');
    if (d.ok) {
      const dj = await d.json();
      document.getElementById('driftpanel').style.display = '';
      fillRows('#drift tbody', (dj.windows || []).map(x =>
        [x.window, x.events, x.disagree, (100 * x.rate).toFixed(2) + '%',
         (100 * x.peak).toFixed(2) + '%']));
    }
  } catch (e) { /* panels stay hidden until the endpoints exist */ }
  setTimeout(tickStream, 2000);
}
async function tick() {
  try {
    const r = await fetch('/status');
    const s = await r.json();
    document.body.classList.toggle('done', !!s.done);
    document.getElementById('fill').style.width = (100 * s.progress).toFixed(1) + '%';
    const eps = s.events_per_sec ? (s.events_per_sec / 1000).toFixed(0) + 'k ev/s' : '';
    document.getElementById('stats').textContent =
      (100 * s.progress).toFixed(1) + '%  ·  sim ' + s.sim_time +
      '  ·  ' + s.events.toLocaleString() + ' events ' + eps +
      '  ·  finished ' + s.jobs_finished.toLocaleString() +
      (s.done ? '  ·  done' : (s.eta_seconds ? '  ·  eta ' + Math.round(s.eta_seconds) + 's' : ''));
    if (s.stream) {
      document.getElementById('stream').textContent =
        '· ingested ' + s.stream.ingested.toLocaleString() +
        (s.stream.dropped ? ' · DROPPED ' + s.stream.dropped : '');
    }
    const tb = document.querySelector('#machines tbody');
    tb.innerHTML = '';
    for (const m of (s.machines || [])) {
      const tr = document.createElement('tr');
      for (const v of [m.id, m.queue_depth, m.running, (100 * m.utilization).toFixed(1) + '%']) {
        const td = document.createElement('td');
        td.textContent = v;
        if (typeof v === 'number' || v.endsWith('%')) td.className = 'num';
        tr.appendChild(td);
      }
      tb.appendChild(tr);
    }
    if (!s.done) setTimeout(tick, 1000); else setTimeout(tick, 5000);
  } catch (e) { setTimeout(tick, 2000); }
}
tick();
tickStream();
</script>
</body>
</html>
`
