package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestPprofDisabledByDefault: the profiling endpoints 404 until explicitly
// enabled — they expose process internals and must stay behind a flag.
func TestPprofDisabledByDefault(t *testing.T) {
	c := NewConsole()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline"} {
		if rec := get(t, c, path); rec.Code != 404 {
			t.Errorf("%s served %d with pprof disabled, want 404", path, rec.Code)
		}
	}
}

// TestPprofEndpointsServeWhenEnabled: after EnablePprof the index and the
// runtime profiles answer.
func TestPprofEndpointsServeWhenEnabled(t *testing.T) {
	c := NewConsole()
	c.EnablePprof()
	rec := get(t, c, "/debug/pprof/")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("/debug/pprof/ index: code %d", rec.Code)
	}
	for _, path := range []string{"/debug/pprof/heap", "/debug/pprof/goroutine", "/debug/pprof/cmdline"} {
		if rec := get(t, c, path); rec.Code != 200 || rec.Body.Len() == 0 {
			t.Errorf("%s: code %d, %d bytes", path, rec.Code, rec.Body.Len())
		}
	}
}

// TestPprofDoesNotLeakIntoMetrics is the golden satellite: the OpenMetrics
// exposition served at /metrics must be byte-identical with profiling
// enabled and disabled — mounting pprof cannot change deterministic
// output, and pprof paths must not shadow published pages.
func TestPprofDoesNotLeakIntoMetrics(t *testing.T) {
	reg := New()
	reg.Counter("tg_jobs_total", "jobs", "machine").With("abe").Add(17)
	reg.Gauge("tg_utilization", "busy", "machine").With("abe").Set(0.5)
	var om bytes.Buffer
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}

	serve := func(pprofOn bool) (metrics, status string) {
		c := NewConsole()
		if pprofOn {
			c.EnablePprof()
		}
		c.Update(&Snapshot{SimTime: 60, SimTimeHuman: "0:00:01:00"}, om.Bytes())
		c.PublishJSON("/modalities", []byte("{}\n"))
		return get(t, c, "/metrics").Body.String(), get(t, c, "/modalities").Body.String()
	}

	offM, offP := serve(false)
	onM, onP := serve(true)
	if offM != onM {
		t.Errorf("/metrics differs with pprof enabled:\noff: %q\non:  %q", offM, onM)
	}
	if offP != onP {
		t.Errorf("published page differs with pprof enabled: %q vs %q", offP, onP)
	}
	if !strings.HasSuffix(onM, "# EOF\n") {
		t.Error("exposition lost its terminator")
	}
	if strings.Contains(onM, "pprof") {
		t.Error("pprof state leaked into the exposition")
	}
}
