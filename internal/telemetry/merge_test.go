package telemetry

import (
	"bytes"
	"testing"
)

func buildRepRegistry(scale float64) *Registry {
	r := New()
	jobs := r.Counter("tg_jobs_total", "jobs", "modality")
	jobs.With("batch").Add(10 * scale)
	jobs.With("gateway").Add(3 * scale)
	g := r.Gauge("tg_util", "utilization", "machine")
	g.With("m1").Set(0.5 * scale)
	r.Gauge("tg_cb", "callback", "machine").Func(func() float64 { return 2 * scale }, "m1")
	h := r.HistogramVec("tg_wait_seconds", "wait", "modality")
	h.With("batch").Observe(1 * scale)
	h.With("batch").Observe(100 * scale)
	return r
}

func TestMergeAddsValues(t *testing.T) {
	a := buildRepRegistry(1)
	b := buildRepRegistry(2)
	if err := mustSameSchema(a, b); err != nil {
		t.Fatal(err)
	}
	m := MergeRegistries(a, b)

	if got := m.Counter("tg_jobs_total", "jobs", "modality").With("batch").Value(); got != 30 {
		t.Errorf("merged counter = %v, want 30", got)
	}
	if got := m.Gauge("tg_util", "utilization", "machine").With("m1").Value(); got != 1.5 {
		t.Errorf("merged gauge = %v, want 1.5", got)
	}
	// Callback gauges fold to stored values at merge time.
	if got := m.Gauge("tg_cb", "callback", "machine").With("m1").Value(); got != 6 {
		t.Errorf("merged callback gauge = %v, want 6", got)
	}
	hh := m.HistogramVec("tg_wait_seconds", "wait", "modality").With("batch")
	if hh.N() != 4 {
		t.Errorf("merged histogram n = %d, want 4", hh.N())
	}
	if hh.Sum() != 1+100+2+200 {
		t.Errorf("merged histogram sum = %v, want 303", hh.Sum())
	}
	if hh.Min() != 1 || hh.Max() != 200 {
		t.Errorf("merged extremes = [%v, %v], want [1, 200]", hh.Min(), hh.Max())
	}
}

func TestMergeOrderIndependentOfWorkerOrder(t *testing.T) {
	// The fleet contract: merging finished registries in seed order gives a
	// byte-identical exposition no matter how the reps were scheduled. Here
	// the same ordered merge is done twice from independently built inputs.
	expose := func() []byte {
		m := MergeRegistries(buildRepRegistry(1), buildRepRegistry(2), buildRepRegistry(3))
		var buf bytes.Buffer
		if err := m.WriteOpenMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(expose(), expose()) {
		t.Fatal("ordered merges of identical inputs differ")
	}
}

func TestMergeIntoEmptyMatchesCopy(t *testing.T) {
	src := buildRepRegistry(1)
	dst := New()
	dst.Merge(src)
	var a, b bytes.Buffer
	if err := src.WriteOpenMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := dst.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("merge into empty is not a copy:\n--- src\n%s\n--- dst\n%s", a.String(), b.String())
	}
	if src.SeriesCount() != dst.SeriesCount() {
		t.Fatalf("series count %d != %d", src.SeriesCount(), dst.SeriesCount())
	}
}

func TestMergeNilSafe(t *testing.T) {
	var nilReg *Registry
	nilReg.Merge(buildRepRegistry(1)) // must not panic
	r := New()
	r.Merge(nil)
	if r.SeriesCount() != 0 {
		t.Fatal("merge of nil added series")
	}
	var nilHist *Histogram
	nilHist.Merge(NewHistogram())
	NewHistogram().Merge(nil)
}

func TestMergeSchemaMismatchPanics(t *testing.T) {
	a := New()
	a.Counter("tg_x", "x", "l")
	a.Counter("tg_x", "x", "l").With("v").Inc()
	b := New()
	b.Gauge("tg_x", "x", "l").With("v").Set(1)
	defer func() {
		if recover() == nil {
			t.Fatal("merge with mismatched kind did not panic")
		}
	}()
	a.Merge(b)
}
