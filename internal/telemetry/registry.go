// Package telemetry is the simulator's live metrics layer: a registry of
// labeled metric families (counters, gauges, and log-bucketed histograms
// with streaming quantile estimates), an OpenMetrics/Prometheus
// text-exposition writer with fully deterministic ordering, and an HTTP
// run console that serves immutable snapshots published by the simulation
// loop through an atomic pointer.
//
// The package complements internal/obs: obs records *what happened* for
// post-hoc replay (spans, samples, profiles), telemetry aggregates *what is
// happening* into bounded state that can be read live. Histograms keep
// O(buckets) state, not O(observations), so a quarter-long full-scale run
// can be watched without retaining every sample.
//
// Like obs, the layer is strictly opt-in and nil-safe: every instrument
// method is a no-op on a nil receiver, and a nil *Registry hands out nil
// instruments, so uninstrumented runs pay a single nil comparison per
// would-be observation (benchmarked).
package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Kind is the metric family type.
type Kind int

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the OpenMetrics type name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Registry holds labeled metric families. It is not internally synchronized:
// the simulation loop is the only writer and the only direct reader —
// concurrent consumers (the HTTP console) receive pre-rendered snapshots,
// never the registry itself. That split is what keeps exposition off the
// hot path and the kernel deterministic.
type Registry struct {
	families map[string]*family
}

// family is one named metric family: a set of series sharing a name, help
// text, kind, and label-name schema.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	series map[string]*series // key: label values joined by 0xff
}

// series is one labeled time series within a family.
type series struct {
	labelValues []string
	value       float64        // counter or gauge value
	fn          func() float64 // callback gauge; nil for set-gauges
	hist        *Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family registers or fetches a family, enforcing schema consistency:
// re-registering a name with a different kind or label schema panics, which
// turns wiring bugs into immediate failures instead of corrupt exposition.
func (r *Registry) family(name, help string, kind Kind, labels []string) *family {
	f := r.families[name]
	if f == nil {
		if name == "" {
			panic("telemetry: empty metric family name")
		}
		f = &family{name: name, help: help, kind: kind,
			labels: append([]string(nil), labels...), series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("telemetry: family %s re-registered with different schema", name))
	}
	for i, l := range labels {
		if f.labels[i] != l {
			panic(fmt.Sprintf("telemetry: family %s re-registered with different labels", name))
		}
	}
	return f
}

// get fetches or creates the series for the given label values.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: family %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	s := f.series[key]
	if s == nil {
		s = &series{labelValues: append([]string(nil), values...)}
		if f.kind == KindHistogram {
			s.hist = NewHistogram()
		}
		f.series[key] = s
	}
	return s
}

// Counter declares (or fetches) a counter family. A nil registry returns a
// nil family whose instruments are all no-ops.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, KindCounter, labels)}
}

// Gauge declares (or fetches) a gauge family. A nil registry returns a nil
// family whose instruments are all no-ops.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, KindGauge, labels)}
}

// Histogram declares (or fetches) a histogram family. A nil registry
// returns a nil family whose instruments are all no-ops.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.family(name, help, KindHistogram, labels)}
}

// CounterVec is a labeled counter family handle.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it at zero.
// Call sites on hot paths should hold the returned *Counter rather than
// calling With per event. Nil-safe.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return &Counter{s: v.f.get(values)}
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds one. Nil-safe.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.s.value++
}

// Add adds v, which must be non-negative (counters are monotone; negative
// deltas panic to surface wiring bugs). Nil-safe.
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	if v < 0 {
		panic("telemetry: negative counter increment")
	}
	c.s.value += v
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.s.value
}

// GaugeVec is a labeled gauge family handle.
type GaugeVec struct{ f *family }

// With returns the settable gauge for the given label values. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return &Gauge{s: v.f.get(values)}
}

// Func registers a callback gauge: fn is evaluated at exposition time,
// always from the simulation goroutine. Nil-safe.
func (v *GaugeVec) Func(fn func() float64, values ...string) {
	if v == nil {
		return
	}
	v.f.get(values).fn = fn
}

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set assigns the gauge. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.s.value = v
}

// Add shifts the gauge by a (possibly negative) delta. Nil-safe.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.s.value += v
}

// Value returns the current value, evaluating callback gauges (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.s.fn != nil {
		return g.s.fn()
	}
	return g.s.value
}

// HistogramVec is a labeled histogram family handle.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(values).hist
}

// Families returns the registered family names, sorted. Nil-safe.
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	out := make([]string, 0, len(r.families))
	for n := range r.families {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// sortedSeries returns a family's series ordered by label-value tuple, so
// exposition is independent of map iteration and insertion order.
func (f *family) sortedSeries() []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].labelValues, out[j].labelValues
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}
