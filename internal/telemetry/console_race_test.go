package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConsoleConcurrentScrapes hammers the console's publication paths —
// Update (snapshot + OpenMetrics) and PublishJSON (mounted pages) — from
// a writer goroutine while several readers scrape every endpoint over
// HTTP. Run under -race this proves the atomic-pointer publication model
// is sound; the content checks prove no response is ever torn (half one
// publication, half another): every payload is built so all of its
// tokens carry the publication's sequence number, and every response must
// be internally consistent.
func TestConsoleConcurrentScrapes(t *testing.T) {
	c := NewConsole()
	srv := httptest.NewServer(c)
	defer srv.Close()

	const (
		writers  = 1 // the console contract: one writer (the sim goroutine)
		readers  = 4
		rounds   = 300
		perRound = 3 // endpoints hit per reader round
	)
	_ = writers

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writer: each publication i stamps every token with i, so a torn
	// response would mix two stamps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			s := &Snapshot{
				SimTime:      float64(i),
				SimTimeHuman: fmt.Sprintf("0:00:00:%02d", i%60),
				Events:       uint64(i),
				JobsFinished: i,
				Machines: []MachineSnap{
					{ID: fmt.Sprintf("m-%d", i), QueueDepth: i, Running: i},
				},
			}
			om := []byte(fmt.Sprintf(
				"# TYPE tg_seq gauge\ntg_seq{a=\"x\"} %d\ntg_seq{b=\"y\"} %d\ntg_seq{c=\"z\"} %d\n# EOF\n",
				i, i, i))
			c.Update(s, om)
			page := []byte(fmt.Sprintf(`{"seq":%d,"echo":%d,"again":%d}`, i, i, i))
			c.PublishJSON("/modalities", page)
			c.PublishJSON("/drift", page)
		}
		stop.Store(true)
	}()

	var torn atomic.Int64
	check := func(path string, verify func(body []byte) error) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Error(err)
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Error(err)
			return
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
			return
		}
		if err := verify(body); err != nil {
			torn.Add(1)
			t.Errorf("GET %s: %v\n%s", path, err, body)
		}
	}

	verifyMetrics := func(body []byte) error {
		// All three tg_seq samples must carry the same stamp.
		var stamps []string
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "tg_seq{") {
				f := strings.Fields(line)
				if len(f) != 2 {
					return fmt.Errorf("malformed sample %q", line)
				}
				stamps = append(stamps, f[1])
			}
		}
		if len(stamps) == 0 {
			return nil // initial "# EOF" payload, before the first Update
		}
		if len(stamps) != 3 {
			return fmt.Errorf("want 3 tg_seq samples, got %d", len(stamps))
		}
		if stamps[0] != stamps[1] || stamps[1] != stamps[2] {
			return fmt.Errorf("torn exposition: stamps %v", stamps)
		}
		return nil
	}
	verifyStatus := func(body []byte) error {
		var s Snapshot
		if err := json.Unmarshal(body, &s); err != nil {
			return fmt.Errorf("unparsable snapshot: %w", err)
		}
		// Events, JobsFinished, and SimTime all carry the same stamp.
		if uint64(s.JobsFinished) != s.Events || s.SimTime != float64(s.Events) {
			return fmt.Errorf("torn snapshot: events=%d finished=%d sim=%v",
				s.Events, s.JobsFinished, s.SimTime)
		}
		return nil
	}
	verifyPage := func(body []byte) error {
		var p struct {
			Seq   int64 `json:"seq"`
			Echo  int64 `json:"echo"`
			Again int64 `json:"again"`
		}
		if err := json.Unmarshal(body, &p); err != nil {
			return fmt.Errorf("unparsable page: %w", err)
		}
		if p.Echo != p.Seq || p.Again != p.Seq {
			return fmt.Errorf("torn page: %+v", p)
		}
		return nil
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				check("/metrics", verifyMetrics)
				check("/status", verifyStatus)
				check("/modalities", verifyPage)
				check("/drift", verifyPage)
				check("/", func(body []byte) error {
					if !strings.Contains(string(body), "<html") {
						return fmt.Errorf("dashboard HTML missing")
					}
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if n := torn.Load(); n > 0 {
		t.Fatalf("%d torn responses observed", n)
	}
}
