// Log-bucketed streaming histogram: O(buckets) state with cheap quantile
// estimates, replacing metrics.Sample (which retains every observation and
// cannot serve a 90-day full-scale run) for live views.
package telemetry

import "math"

// Histogram bucket geometry. Buckets are powers of two: bucket i covers
// (2^(i+minExp-1), 2^(i+minExp)], with an underflow bucket for values at or
// below 2^(minExp) and an overflow bucket above 2^(maxExp). The span
// [2^-10, 2^40] ≈ [1 ms, 34 years] in seconds or [1/1024 B, 1 TiB] in
// bytes covers every duration and size the simulation produces.
const (
	histMinExp = -10
	histMaxExp = 40
	// histBuckets: one bucket per exponent step plus the overflow bucket.
	histBuckets = histMaxExp - histMinExp + 1
)

// Histogram accumulates observations into logarithmic buckets. Quantile
// estimates are exact to within bucket resolution (a factor of two), which
// is the live-telemetry tradeoff: bounded memory for bounded error.
type Histogram struct {
	counts [histBuckets]uint64
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v <= histUpper(0) {
		return 0
	}
	e := int(math.Ceil(math.Log2(v)))
	i := e - histMinExp
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// histUpper returns the inclusive upper bound of bucket i (+Inf for the
// overflow bucket).
func histUpper(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return math.Pow(2, float64(i+histMinExp))
}

// Observe records one observation. Negative values clamp to zero (durations
// and sizes are non-negative; a tiny float underrun must not panic a run).
// Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
}

// N returns the observation count (0 on nil).
func (h *Histogram) N() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the total of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the arithmetic mean (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min and Max return the exact observed extremes (0 when empty or nil).
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observation seen.
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by locating the target
// rank's bucket and interpolating geometrically inside it (log-bucketed
// data is closer to log-uniform than uniform within a bucket). The result
// is clamped to the observed [min, max], so tail quantiles of a
// single-bucket histogram stay honest. Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			frac := (rank - cum) / float64(c)
			v := interpolate(i, frac)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// interpolate places frac ∈ [0,1] inside bucket i. Geometric interpolation
// between the bucket bounds; the underflow bucket (lower bound 0) and the
// overflow bucket (upper bound +Inf) fall back to their finite edge.
func interpolate(i int, frac float64) float64 {
	hi := histUpper(i)
	if i == 0 {
		return hi * frac // linear within the underflow bucket
	}
	if math.IsInf(hi, 1) {
		return histUpper(i - 1) // overflow bucket: report its lower edge
	}
	lo := histUpper(i - 1)
	return lo * math.Pow(hi/lo, frac)
}

// buckets returns (upperBound, cumulativeCount) pairs for every bucket up
// to and including the last non-empty one, always ending with the +Inf
// bucket — the cumulative form OpenMetrics histograms require.
func (h *Histogram) buckets() ([]float64, []uint64) {
	last := -1
	for i, c := range h.counts {
		if c > 0 {
			last = i
		}
	}
	var bounds []float64
	var cums []uint64
	var cum uint64
	for i := 0; i <= last && i < histBuckets-1; i++ {
		cum += h.counts[i]
		bounds = append(bounds, histUpper(i))
		cums = append(cums, cum)
	}
	bounds = append(bounds, math.Inf(1))
	cums = append(cums, h.n)
	return bounds, cums
}
