// OpenMetrics/Prometheus text exposition. Families are written in sorted
// name order and series in sorted label-value order, floats are rendered
// with strconv shortest-round-trip formatting, and no timestamps are
// emitted — so identical registry state produces byte-identical payloads,
// and same-seed runs therefore expose byte-identical /metrics.
package telemetry

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteOpenMetrics writes the registry in OpenMetrics text format,
// terminated by "# EOF". Histograms expose cumulative le-buckets plus
// _sum and _count. Callback gauges are evaluated here, so this must be
// called from the goroutine that owns the registry (the simulation loop);
// the HTTP console serves pre-rendered bytes instead of calling this.
// A nil registry writes just the EOF terminator.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if r != nil {
		for _, name := range r.Families() {
			f := r.families[name]
			if err := writeFamily(bw, f); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("# EOF\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func writeFamily(bw *bufio.Writer, f *family) error {
	if f.help != "" {
		if _, err := bw.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n"); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("# TYPE " + f.name + " " + f.kind.String() + "\n"); err != nil {
		return err
	}
	for _, s := range f.sortedSeries() {
		var err error
		switch f.kind {
		case KindHistogram:
			err = writeHistogramSeries(bw, f, s)
		default:
			v := s.value
			if s.fn != nil {
				v = s.fn()
			}
			err = writeSample(bw, f.name, f.labels, s.labelValues, "", "", v)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogramSeries(bw *bufio.Writer, f *family, s *series) error {
	bounds, cums := s.hist.buckets()
	for i, ub := range bounds {
		le := "+Inf"
		if !math.IsInf(ub, 1) {
			le = formatFloat(ub)
		}
		if err := writeSample(bw, f.name+"_bucket", f.labels, s.labelValues,
			"le", le, float64(cums[i])); err != nil {
			return err
		}
	}
	if err := writeSample(bw, f.name+"_sum", f.labels, s.labelValues, "", "", s.hist.Sum()); err != nil {
		return err
	}
	return writeSample(bw, f.name+"_count", f.labels, s.labelValues, "", "", float64(s.hist.N()))
}

// writeSample writes one `name{labels} value` line. extraKey/extraVal, when
// non-empty, append one more label pair (the histogram `le` bound).
func writeSample(bw *bufio.Writer, name string, labels, values []string, extraKey, extraVal string, v float64) error {
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	if len(labels) > 0 || extraKey != "" {
		if err := bw.WriteByte('{'); err != nil {
			return err
		}
		first := true
		for i, l := range labels {
			if !first {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			first = false
			if _, err := bw.WriteString(l + `="` + escapeLabel(values[i]) + `"`); err != nil {
				return err
			}
		}
		if extraKey != "" {
			if !first {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(extraKey + `="` + extraVal + `"`); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('}'); err != nil {
			return err
		}
	}
	if err := bw.WriteByte(' '); err != nil {
		return err
	}
	if _, err := bw.WriteString(formatFloat(v)); err != nil {
		return err
	}
	return bw.WriteByte('\n')
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string (backslash and newline only).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
