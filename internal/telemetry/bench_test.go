package telemetry

import (
	"testing"
	"time"

	"github.com/tgsim/tgmod/internal/des"
)

// BenchmarkTelemetry proves the disabled path is free: nil instruments cost
// one nil comparison per would-be observation, and a kernel without the
// snapshot publisher steps exactly as fast as before the telemetry layer
// existed. CI runs this with -benchtime=1x as a smoke test; run it properly
// to compare nil-vs-live overhead.
func BenchmarkTelemetry(b *testing.B) {
	b.Run("NilCounterInc", func(b *testing.B) {
		var c *Counter
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("LiveCounterInc", func(b *testing.B) {
		c := New().Counter("x_total", "X.").With()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("NilHistogramObserve", func(b *testing.B) {
		var h *Histogram
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i))
		}
	})
	b.Run("LiveHistogramObserve", func(b *testing.B) {
		h := NewHistogram()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i))
		}
	})
	b.Run("NilGaugeSet", func(b *testing.B) {
		var g *Gauge
		for i := 0; i < b.N; i++ {
			g.Set(float64(i))
		}
	})

	// The scheduler-decision shape: a probe callback that forwards to nil
	// instruments, as installed when telemetry is off but spans are on.
	b.Run("ProbePathNilInstruments", func(b *testing.B) {
		decisions := map[string]*Counter{"backfill": nil, "reservation": nil}
		probe := func(kind string) {
			if c := decisions[kind]; c != nil {
				c.Inc()
			}
		}
		for i := 0; i < b.N; i++ {
			probe("backfill")
		}
	})

	b.Run("KernelStepNoPublisher", func(b *testing.B) {
		k := des.New()
		stepping(k, b.N)
		b.ResetTimer()
		for k.Step() {
		}
	})
	b.Run("KernelStepWithPublisher", func(b *testing.B) {
		k := des.New()
		p := &Publisher{
			Build: func(at des.Time, events uint64, pending int) *Snapshot {
				return &Snapshot{SimTime: float64(at), Events: events}
			},
			Sink:    func(*Snapshot) {},
			MinWall: time.Hour, // isolate the steady-state stride cost
		}
		k.SetTracer(p)
		stepping(k, b.N)
		b.ResetTimer()
		for k.Step() {
		}
	})
}

// stepping builds a self-perpetuating event chain: each handler schedules
// the next, so every Step pops one event and pushes one (mirrors the des
// package's own Step benchmark).
func stepping(k *des.Kernel, n int) {
	var fn des.Handler
	left := n
	fn = func(k *des.Kernel) {
		left--
		if left > 0 {
			k.Schedule(1, fn)
		}
	}
	k.Schedule(1, fn)
}
