package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tgsim/tgmod/internal/des"
)

func get(t *testing.T, c *Console, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	return rec
}

func TestConsoleMetricsEndpoint(t *testing.T) {
	c := NewConsole()
	// Before any publication the endpoint serves a valid empty exposition.
	rec := get(t, c, "/metrics")
	if rec.Code != 200 || rec.Body.String() != "# EOF\n" {
		t.Errorf("initial /metrics: code %d body %q", rec.Code, rec.Body.String())
	}
	payload := []byte("# TYPE x gauge\nx 1\n# EOF\n")
	c.Update(nil, payload)
	rec = get(t, c, "/metrics")
	if rec.Body.String() != string(payload) {
		t.Errorf("/metrics body = %q, want published payload", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("/metrics content-type = %q", ct)
	}
}

func TestConsoleStatusEndpoint(t *testing.T) {
	c := NewConsole()
	c.Update(&Snapshot{
		SimTime: 3600, SimTimeHuman: "0:01:00:00", Progress: 0.25,
		Events: 1000, JobsFinished: 42, Done: false,
		Machines: []MachineSnap{{ID: "abe", QueueDepth: 3, Running: 7, Utilization: 0.5}},
	}, nil)
	rec := get(t, c, "/status")
	if rec.Code != 200 {
		t.Fatalf("/status code %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/status content-type = %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("/status is not JSON: %v", err)
	}
	if s.Progress != 0.25 || s.JobsFinished != 42 || len(s.Machines) != 1 || s.Machines[0].ID != "abe" {
		t.Errorf("/status decoded %+v", s)
	}
	// Field names are the documented wire contract.
	for _, key := range []string{`"sim_time_s"`, `"progress"`, `"events_per_sec"`, `"machines"`, `"queue_depth"`} {
		if !strings.Contains(rec.Body.String(), key) {
			t.Errorf("/status missing field %s", key)
		}
	}
}

func TestConsoleDashboardAndNotFound(t *testing.T) {
	c := NewConsole()
	for _, path := range []string{"/", "/index.html"} {
		rec := get(t, c, path)
		body := rec.Body.String()
		if rec.Code != 200 || !strings.Contains(body, "tgsim run console") ||
			!strings.Contains(body, "/status") || !strings.Contains(body, "/metrics") {
			t.Errorf("%s: code %d, dashboard markers missing", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
			t.Errorf("%s content-type = %q", path, ct)
		}
	}
	if rec := get(t, c, "/nope"); rec.Code != 404 {
		t.Errorf("/nope code %d, want 404", rec.Code)
	}
}

func TestConsolePublishJSON(t *testing.T) {
	c := NewConsole()
	// Unpublished extra pages 404 like any unknown path.
	if rec := get(t, c, "/modalities"); rec.Code != 404 {
		t.Errorf("unpublished /modalities code %d, want 404", rec.Code)
	}
	payload := []byte(`{"windows":[]}` + "\n")
	c.PublishJSON("/modalities", payload)
	rec := get(t, c, "/modalities")
	if rec.Code != 200 || rec.Body.String() != string(payload) {
		t.Errorf("/modalities: code %d body %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/modalities content-type = %q", ct)
	}
	// Republishing replaces; nil payload unmounts.
	c.PublishJSON("/modalities", []byte("{}\n"))
	if rec := get(t, c, "/modalities"); rec.Body.String() != "{}\n" {
		t.Errorf("republished body %q", rec.Body.String())
	}
	c.PublishJSON("/modalities", nil)
	if rec := get(t, c, "/modalities"); rec.Code != 404 {
		t.Errorf("unmounted /modalities code %d, want 404", rec.Code)
	}
}

func TestConsoleServeRealListener(t *testing.T) {
	c := NewConsole()
	addr, err := c.Serve("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "# EOF\n" {
		t.Errorf("served body %q", body)
	}
}

func TestPublisherThrottleAndFinal(t *testing.T) {
	var published []*Snapshot
	p := &Publisher{
		Build: func(at des.Time, events uint64, pending int) *Snapshot {
			return &Snapshot{SimTime: float64(at), Events: events, Pending: pending, Progress: float64(at) / 100}
		},
		Sink:       func(s *Snapshot) { published = append(published, s) },
		CheckEvery: 10,
		MinWall:    time.Nanosecond,
	}
	for i := 1; i <= 25; i++ {
		p.AfterEvent(des.Time(i), "ev", 25-i)
	}
	// Events 10 and 20 hit the stride; wall throttle is effectively off.
	if len(published) != 2 {
		t.Fatalf("published %d snapshots, want 2", len(published))
	}
	if published[0].Events != 10 || published[1].Events != 20 {
		t.Errorf("snapshot events = %d, %d", published[0].Events, published[1].Events)
	}
	if published[0].Done {
		t.Error("mid-run snapshot marked done")
	}
	if published[0].WallSeconds <= 0 || published[0].EventsPerSec <= 0 {
		t.Errorf("wall fields not filled: %+v", published[0])
	}
	p.Final(100, 0)
	last := published[len(published)-1]
	if !last.Done || last.Progress != 1 {
		t.Errorf("final snapshot: %+v", last)
	}
}

func TestPublisherWallThrottle(t *testing.T) {
	n := 0
	p := &Publisher{
		Build:      func(at des.Time, events uint64, pending int) *Snapshot { return &Snapshot{} },
		Sink:       func(*Snapshot) { n++ },
		CheckEvery: 1,
		MinWall:    time.Hour,
	}
	for i := 1; i <= 1000; i++ {
		p.AfterEvent(des.Time(i), "ev", 0)
	}
	// The first stride hit publishes (lastPub is zero), then the hour-long
	// minimum suppresses everything after.
	if n > 1 {
		t.Errorf("wall throttle let through %d publications", n)
	}
}

func TestSnapshotLine(t *testing.T) {
	s := &Snapshot{
		Progress: 0.5, SimTimeHuman: "0:12:00:00", Events: 1234567,
		EventsPerSec: 50000, JobsFinished: 99, ETASeconds: 30,
		Machines: []MachineSnap{{QueueDepth: 4, Running: 6}, {QueueDepth: 1, Running: 2}},
	}
	line := s.Line()
	for _, want := range []string{"50.0%", "0:12:00:00", "1.2M", "queued 5", "running 8", "finished 99", "eta 30s"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}
	s.Done = true
	if !strings.Contains(s.Line(), "done") {
		t.Errorf("done line %q", s.Line())
	}
}

func TestConsoleServeAndClose(t *testing.T) {
	c := NewConsole()
	addr, err := c.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "# EOF\n" {
		t.Errorf("served metrics = %q", body)
	}
	if err := c.Close(time.Second); err != nil {
		t.Errorf("Close: %v", err)
	}
	// The listener is gone: new connections must fail.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("connection succeeded after Close")
	}
	// Closing again (or a never-served console) is a no-op.
	if err := c.Close(time.Second); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := (&Console{}).Close(time.Second); err != nil {
		t.Errorf("unserved Close: %v", err)
	}
}
