// Run snapshots: immutable progress views of a running simulation,
// published by the simulation loop and consumed by the HTTP console and
// the stderr progress line. The publisher sits on the des.Tracer /
// des.StepObserver seam, so it adds zero kernel events and cannot perturb
// event ordering; wall-clock throttling only decides *when* a snapshot is
// taken, never what the simulation does.
package telemetry

import (
	"fmt"
	"strings"
	"time"

	"github.com/tgsim/tgmod/internal/des"
)

// MachineSnap is the per-machine slice of a snapshot.
type MachineSnap struct {
	ID          string  `json:"id"`
	QueueDepth  int     `json:"queue_depth"`
	Running     int     `json:"running"`
	Utilization float64 `json:"utilization"` // instantaneous busy fraction
}

// Snapshot is one immutable view of a running (or finished) simulation.
// Wall-clock fields (EventsPerSec, WallSeconds, ETASeconds) vary run to
// run; everything else is a pure function of deterministic state.
type Snapshot struct {
	SimTime      float64       `json:"sim_time_s"`
	SimTimeHuman string        `json:"sim_time"`
	EndTime      float64       `json:"end_time_s"` // horizon + drain
	Progress     float64       `json:"progress"`   // 0..1 of EndTime
	Events       uint64        `json:"events"`
	Pending      int           `json:"pending_events"`
	JobsFinished int           `json:"jobs_finished"`
	Machines     []MachineSnap `json:"machines"`
	WallSeconds  float64       `json:"wall_seconds"`
	EventsPerSec float64       `json:"events_per_sec"`
	ETASeconds   float64       `json:"eta_seconds"`
	Done         bool          `json:"done"`
	// ObsDropped counts span events the obs buffer overflowed and lost;
	// non-zero means every event-stream consumer below is truncated.
	ObsDropped uint64 `json:"obs_dropped,omitempty"`
	// Stream is the streaming-observatory ingest state (nil when no stream
	// processor is attached).
	Stream *StreamSnap `json:"stream,omitempty"`
	// Runtime is the Go runtime slice (nil unless a perf.RuntimeSampler is
	// attached). Wall-clock-only: it describes the host process, varies run
	// to run, and is never part of exported artifacts or determinism diffs.
	Runtime *RuntimeSnap `json:"runtime,omitempty"`
}

// RuntimeSnap is the Go-runtime slice of a snapshot: host-process state
// (heap, GC, goroutines, throughput) sampled on the snapshot cadence.
// Every field is wall-clock-dependent by nature.
type RuntimeSnap struct {
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	HeapObjects    uint64  `json:"heap_objects"`
	GCCycles       uint32  `json:"gc_cycles"`
	GCPauseMS      float64 `json:"gc_pause_ms"` // cumulative stop-the-world
	Goroutines     int     `json:"goroutines"`
	EventsPerSec   float64 `json:"events_per_sec"`
}

// StreamSnap is the stream-processor slice of a snapshot: how much the
// live ingest pipeline has consumed and whether backpressure dropped any
// records.
type StreamSnap struct {
	Ingested  uint64 `json:"ingested"`   // records accepted into the pipeline
	Dropped   uint64 `json:"dropped"`    // records lost to inbox overflow
	Depth     int    `json:"depth"`      // records currently spooled
	HighWater int    `json:"high_water"` // maximum spool depth seen
}

// Line renders the snapshot as a one-line progress report for stderr.
func (s *Snapshot) Line() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5.1f%%  sim %s", 100*s.Progress, s.SimTimeHuman)
	queued, running := 0, 0
	for _, m := range s.Machines {
		queued += m.QueueDepth
		running += m.Running
	}
	fmt.Fprintf(&b, "  events %s", compactCount(s.Events))
	if s.EventsPerSec > 0 {
		fmt.Fprintf(&b, " (%s/s)", compactCount(uint64(s.EventsPerSec)))
	}
	fmt.Fprintf(&b, "  queued %d  running %d  finished %d", queued, running, s.JobsFinished)
	if s.Done {
		b.WriteString("  done")
	} else if s.ETASeconds > 0 {
		fmt.Fprintf(&b, "  eta %s", (time.Duration(s.ETASeconds * float64(time.Second))).Round(time.Second))
	}
	return b.String()
}

// compactCount renders a count as 1.2k / 3.4M for progress lines.
func compactCount(v uint64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// Publisher drives snapshot publication from inside the kernel's event
// loop. It implements des.Tracer (no-op) and des.StepObserver: every
// CheckEvery events it consults the wall clock and, if MinWall has elapsed
// since the last publication, builds a snapshot and hands it to Sink. Both
// Build and Sink run on the simulation goroutine.
type Publisher struct {
	// Build fills the deterministic fields of a snapshot from simulation
	// state; the publisher adds the wall-clock fields.
	Build func(at des.Time, events uint64, pending int) *Snapshot
	// Sink receives every published snapshot.
	Sink func(*Snapshot)
	// CheckEvery is the event-count stride between wall-clock checks
	// (default 4096): the steady-state per-event overhead is one counter
	// increment and one modulo.
	CheckEvery uint64
	// MinWall is the minimum wall time between publications (default 250ms).
	MinWall time.Duration

	n       uint64
	started time.Time
	lastPub time.Time
}

// Event implements des.Tracer.
func (p *Publisher) Event(at des.Time, name string) {}

// AfterEvent implements des.StepObserver.
func (p *Publisher) AfterEvent(at des.Time, name string, pending int) {
	p.n++
	every := p.CheckEvery
	if every == 0 {
		every = 4096
	}
	if p.n%every != 0 {
		return
	}
	now := time.Now()
	if p.started.IsZero() {
		p.started = now.Add(-time.Millisecond) // avoid a zero wall span
	}
	minWall := p.MinWall
	if minWall == 0 {
		minWall = 250 * time.Millisecond
	}
	if now.Sub(p.lastPub) < minWall {
		return
	}
	p.lastPub = now
	p.publish(at, pending, now, false)
}

// Final publishes one last snapshot unconditionally, marked Done. The
// scenario calls it after the run loop completes so consoles and progress
// lines always end on the true final state.
func (p *Publisher) Final(at des.Time, pending int) {
	now := time.Now()
	if p.started.IsZero() {
		p.started = now
	}
	p.publish(at, pending, now, true)
}

func (p *Publisher) publish(at des.Time, pending int, now time.Time, done bool) {
	s := p.Build(at, p.n, pending)
	s.Done = done
	s.WallSeconds = now.Sub(p.started).Seconds()
	if s.WallSeconds > 0 {
		s.EventsPerSec = float64(p.n) / s.WallSeconds
	}
	if !done && s.Progress > 0 && s.Progress < 1 {
		s.ETASeconds = s.WallSeconds * (1 - s.Progress) / s.Progress
	}
	if done {
		s.Progress = 1
	}
	p.Sink(s)
}
