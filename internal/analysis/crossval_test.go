package analysis

import (
	"math"
	"testing"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/obs"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/users"
	"github.com/tgsim/tgmod/internal/workload"
)

// crossValConfig is a one-week scenario at reduced rates with enough
// urgent traffic to exercise preemption requeues.
func crossValConfig(seed uint64) scenario.Config {
	cfg := scenario.DefaultConfig(seed)
	cfg.Horizon = 7 * des.Day
	cfg.DrainTime = 3 * des.Day
	cfg.Users = users.Config{Projects: 40, UsersPerProjMu: 0.7, UsersPerProjSd: 0.6, ActivityAlpha: 1.5}
	cfg.Generators = []workload.Generator{
		&workload.BatchGen{JobsPerDay: 120, CapabilityFrac: 0.02, MedianRuntime: 3600},
		&workload.EnsembleGen{CampaignsPerDay: 4, JobsPerCampaign: 10, TagCoverage: 0.5, MedianRuntime: 900},
		&workload.WorkflowGen{CampaignsPerDay: 3, TaggedFrac: 0.5, Workers: 4, MedianTask: 600},
		&workload.GatewayGen{Gateway: "nanohub", RequestsPerDay: 80, EndUsers: 300, MedianRuntime: 300},
		&workload.UrgentGen{EventsPerWeek: 6, MedianRuntime: 1800},
		&workload.InteractiveGen{SessionsPerDay: 12, MedianSession: 1200},
		&workload.DataCentricGen{JobsPerDay: 8, MedianInputGB: 20, MedianRuntime: 1800},
	}
	return cfg
}

// TestWaitDecompositionMatchesAccounting is the layer's ground-truth
// anchor: waits reconstructed from the event stream must agree with the
// accounting database — an entirely independent pipeline — to the
// millisecond, per job and in per-modality sums.
func TestWaitDecompositionMatchesAccounting(t *testing.T) {
	const tolerance = 1e-3 // one millisecond of virtual time

	cfg := crossValConfig(41)
	buf := obs.NewBuffer()
	cfg.Observe = scenario.Observe{Recorder: buf}
	res, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Reconstruct(buf.Events())
	if err != nil {
		t.Fatal(err)
	}

	recs := res.Central.Jobs()
	if len(recs) < 500 {
		t.Fatalf("only %d accounting records; scenario too thin to validate", len(recs))
	}

	type sums struct{ analysis, accounting float64 }
	byMod := make(map[string]*sums)
	validated, preempted := 0, 0
	for i := range recs {
		r := &recs[i]
		tl := ts.Job(r.JobID)
		if tl == nil {
			t.Fatalf("job %d has an accounting record but no timeline", r.JobID)
		}
		if !tl.Complete() {
			t.Fatalf("job %d finished in accounting but its timeline is incomplete", r.JobID)
		}
		// The final start and end must match the record exactly for every
		// finished job, preempted or not.
		if d := math.Abs(float64(tl.LastStart()) - r.StartTime); d > tolerance {
			t.Fatalf("job %d: reconstructed last start %v vs record %v (Δ %v)",
				r.JobID, float64(tl.LastStart()), r.StartTime, d)
		}
		if d := math.Abs(float64(tl.End()) - r.EndTime); d > tolerance {
			t.Fatalf("job %d: reconstructed end %v vs record %v (Δ %v)",
				r.JobID, float64(tl.End()), r.EndTime, d)
		}
		if r.Preemptions > 0 {
			// Accounting's wait is last-start − submit; the timeline splits
			// that across requeues, so the whole-path identity is checked
			// instead: first-wait + requeues + lost runs = last-start − submit.
			preempted++
			path := float64(tl.FirstWait() + tl.RequeueWait() + tl.LostRun())
			if d := math.Abs(path - (r.StartTime - r.SubmitTime)); d > tolerance {
				t.Fatalf("job %d: pre-run path %v vs accounting %v (Δ %v)",
					r.JobID, path, r.StartTime-r.SubmitTime, d)
			}
			continue
		}
		validated++
		mod := r.TruthModality
		if mod == "" {
			mod = string(job.ModUnknown)
		}
		s := byMod[mod]
		if s == nil {
			s = &sums{}
			byMod[mod] = s
		}
		s.analysis += float64(tl.FirstWait())
		s.accounting += r.WaitSeconds()
	}
	if validated == 0 {
		t.Fatal("no unpreempted jobs to validate")
	}
	if preempted == 0 {
		t.Log("warning: no preempted jobs in this seed; requeue path unexercised")
	}
	for mod, s := range byMod {
		if d := math.Abs(s.analysis - s.accounting); d > tolerance {
			t.Errorf("modality %s: analysis wait sum %v vs accounting %v (Δ %v)",
				mod, s.analysis, s.accounting, d)
		}
	}

	// Decomposition internal identity over everything aggregated.
	for _, d := range Decompose(ts) {
		sum := d.WaitSeconds + d.RequeueWaitSeconds + d.LostRunSeconds + d.RunSeconds
		if diff := math.Abs(sum - d.EndToEndSeconds); diff > tolerance {
			t.Errorf("modality %s: components %v != end-to-end %v", d.Modality, sum, d.EndToEndSeconds)
		}
	}

	// Every timeline that completed must have an accounting record too.
	complete := 0
	for _, tl := range ts.Jobs {
		if tl.Complete() {
			complete++
		}
	}
	if complete != len(recs) {
		t.Errorf("%d complete timelines vs %d accounting records", complete, len(recs))
	}
}
