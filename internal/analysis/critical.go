// Critical-path extraction through workflow and ensemble campaigns. The
// accounting stream does not record explicit task dependencies, so the
// path is inferred from temporal precedence: job B can depend on job A
// only when A finished before B was submitted (the workflow engine submits
// a task when its parents complete). The longest such chain of
// submit→end intervals is the campaign's critical path; comparing it with
// makespan and sum-of-work separates "slow because serial" from "slow
// because the queue was".
package analysis

import (
	"sort"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/report"
)

// CampaignPath summarizes one multi-job campaign.
type CampaignPath struct {
	Campaign string
	Kind     string // dominant truth modality of the members ("mixed" when split)
	Jobs     int

	MakespanSeconds     float64 // first submit → last end
	CriticalPathSeconds float64 // longest precedence chain of submit→end intervals
	SumWorkSeconds      float64 // Σ wall time
	ChainJobs           int     // jobs on the critical path

	// Parallelism is sum-of-work over makespan: the campaign's average
	// concurrency. 1.0 means fully serial.
	Parallelism float64
}

// CPShare returns critical path over makespan: 1.0 means the campaign is
// dependency-bound end to end; lower values mean scheduling gaps (queue
// wait between chain links counts inside the chain, idle gaps between
// independent jobs do not).
func (p CampaignPath) CPShare() float64 {
	if p.MakespanSeconds == 0 {
		return 0
	}
	return p.CriticalPathSeconds / p.MakespanSeconds
}

// campaignKey groups a record into its campaign: ground-truth campaign
// when labeled, else the instrumented workflow/ensemble tags, so partially
// instrumented traces still group what they can.
func campaignKey(r *accounting.JobRecord) string {
	switch {
	case r.TruthCampaign != "":
		return r.TruthCampaign
	case r.WorkflowID != "":
		return r.WorkflowID
	case r.EnsembleID != "":
		return r.EnsembleID
	default:
		return ""
	}
}

// CriticalPaths extracts one CampaignPath per campaign with at least two
// member jobs, sorted by descending makespan (ties by campaign ID).
func CriticalPaths(recs []accounting.JobRecord) []CampaignPath {
	groups := make(map[string][]*accounting.JobRecord)
	for i := range recs {
		if key := campaignKey(&recs[i]); key != "" {
			groups[key] = append(groups[key], &recs[i])
		}
	}
	var out []CampaignPath
	for key, members := range groups {
		if len(members) < 2 {
			continue
		}
		out = append(out, pathOf(key, members))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MakespanSeconds != out[j].MakespanSeconds {
			return out[i].MakespanSeconds > out[j].MakespanSeconds
		}
		return out[i].Campaign < out[j].Campaign
	})
	return out
}

// pathOf computes the critical path of one campaign with an O(n²) DP over
// members sorted by end time: chain(j) = span(j) + max{chain(i) : i ended
// by j's submission}. Campaigns are tens of jobs, so quadratic is fine.
func pathOf(key string, members []*accounting.JobRecord) CampaignPath {
	sort.Slice(members, func(a, b int) bool {
		if members[a].EndTime != members[b].EndTime {
			return members[a].EndTime < members[b].EndTime
		}
		return members[a].JobID < members[b].JobID
	})
	p := CampaignPath{Campaign: key, Jobs: len(members)}

	firstSubmit, lastEnd := members[0].SubmitTime, members[0].EndTime
	kinds := make(map[string]int)
	for _, m := range members {
		if m.SubmitTime < firstSubmit {
			firstSubmit = m.SubmitTime
		}
		if m.EndTime > lastEnd {
			lastEnd = m.EndTime
		}
		p.SumWorkSeconds += m.WallSeconds
		kinds[m.TruthModality]++
	}
	p.MakespanSeconds = lastEnd - firstSubmit

	p.Kind = "mixed"
	for k, n := range kinds {
		if n == len(members) {
			p.Kind = k
		}
	}

	// chain[i]: longest submit→end chain ending at members[i]; jobs[i]: its
	// length in jobs.
	chain := make([]float64, len(members))
	jobs := make([]int, len(members))
	for i, m := range members {
		span := m.EndTime - m.SubmitTime
		chain[i], jobs[i] = span, 1
		for j := 0; j < i; j++ {
			if members[j].EndTime <= m.SubmitTime && chain[j]+span > chain[i] {
				chain[i] = chain[j] + span
				jobs[i] = jobs[j] + 1
			}
		}
		if chain[i] > p.CriticalPathSeconds {
			p.CriticalPathSeconds = chain[i]
			p.ChainJobs = jobs[i]
		}
	}

	if p.MakespanSeconds > 0 {
		p.Parallelism = p.SumWorkSeconds / p.MakespanSeconds
	}
	return p
}

// kindSummary aggregates CampaignPaths of one kind.
type kindSummary struct {
	kind      string
	campaigns int
	jobs      int
	makespan  float64
	cpShare   float64
	par       float64
}

// CriticalPathTable renders per-kind summaries followed by the topN
// longest campaigns individually.
func CriticalPathTable(paths []CampaignPath, topN int) *report.Table {
	t := report.NewTable("Campaign critical paths",
		"campaign", "kind", "jobs", "makespan s", "critical path s", "cp share", "chain jobs", "sum work s", "parallelism")

	byKind := make(map[string]*kindSummary)
	var kinds []string
	for _, p := range paths {
		s := byKind[p.Kind]
		if s == nil {
			s = &kindSummary{kind: p.Kind}
			byKind[p.Kind] = s
			kinds = append(kinds, p.Kind)
		}
		s.campaigns++
		s.jobs += p.Jobs
		s.makespan += p.MakespanSeconds
		s.cpShare += p.CPShare()
		s.par += p.Parallelism
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		s := byKind[k]
		n := float64(s.campaigns)
		t.AddRowf("ALL ("+report.GroupInt(int64(s.campaigns))+" campaigns)", k, s.jobs,
			s.makespan/n, "", report.Percent(s.cpShare/n), "", "", s.par/n)
	}
	for i, p := range paths {
		if i >= topN {
			break
		}
		t.AddRowf(p.Campaign, p.Kind, p.Jobs, p.MakespanSeconds,
			p.CriticalPathSeconds, report.Percent(p.CPShare()), p.ChainJobs,
			p.SumWorkSeconds, p.Parallelism)
	}
	return t
}
