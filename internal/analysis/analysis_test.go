package analysis

import (
	"math"
	"testing"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/obs"
)

// rec builds the canonical event stream of one job lifecycle.
type streamBuilder struct{ buf *obs.Buffer }

func newStream() *streamBuilder { return &streamBuilder{buf: obs.NewBuffer()} }

func (s *streamBuilder) queue(at float64, id int64, machine, mod string, cores int) {
	obs.Begin(s.buf, obsTime(at), "job", "wait", machine, id,
		obs.KV{Key: "user", Value: "u"},
		obs.KV{Key: "cores", Value: cores},
		obs.KV{Key: "qos", Value: "normal"},
		obs.KV{Key: "mod", Value: mod})
}

func (s *streamBuilder) start(at float64, id int64, machine string) {
	obs.End(s.buf, obsTime(at), "job", "wait", machine, id)
	obs.Begin(s.buf, obsTime(at), "job", "run", machine, id)
}

func (s *streamBuilder) finish(at float64, id int64, machine, state string) {
	obs.End(s.buf, obsTime(at), "job", "run", machine, id,
		obs.KV{Key: "state", Value: state})
}

func (s *streamBuilder) preempt(at float64, id int64, machine, mod string, cores int) {
	obs.End(s.buf, obsTime(at), "job", "run", machine, id,
		obs.KV{Key: "state", Value: "preempted"})
	obs.Begin(s.buf, obsTime(at), "job", "wait", machine, id,
		obs.KV{Key: "user", Value: "u"},
		obs.KV{Key: "cores", Value: cores},
		obs.KV{Key: "mod", Value: mod},
		obs.KV{Key: "requeued", Value: true})
}

func (s *streamBuilder) restart(at float64, id int64, machine string) { s.start(at, id, machine) }

func obsTime(at float64) des.Time { return des.Time(at) }

func TestReconstructSimpleLifecycle(t *testing.T) {
	s := newStream()
	s.queue(10, 1, "m1", "batch-capacity", 8)
	s.start(25, 1, "m1")
	s.finish(125, 1, "m1", "completed")
	ts, err := Reconstruct(s.buf.Events())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Jobs) != 1 {
		t.Fatalf("got %d jobs", len(ts.Jobs))
	}
	tl := ts.Job(1)
	if tl == nil || !tl.Complete() {
		t.Fatal("job 1 missing or incomplete")
	}
	if got := float64(tl.FirstWait()); got != 15 {
		t.Errorf("FirstWait = %v, want 15", got)
	}
	if got := float64(tl.FinalRun()); got != 100 {
		t.Errorf("FinalRun = %v, want 100", got)
	}
	if got := float64(tl.EndToEnd()); got != 115 {
		t.Errorf("EndToEnd = %v, want 115", got)
	}
	if tl.Modality != "batch-capacity" || tl.Machine != "m1" || tl.Cores != 8 {
		t.Errorf("metadata lost: %+v", tl)
	}
	if tl.Preemptions() != 0 || tl.RequeueWait() != 0 || tl.LostRun() != 0 {
		t.Error("unpreempted job has preemption components")
	}
}

func TestReconstructPreemptionRequeue(t *testing.T) {
	s := newStream()
	s.queue(0, 2, "m1", "batch-capacity", 16)
	s.start(10, 2, "m1")                         // waited 10
	s.preempt(40, 2, "m1", "batch-capacity", 16) // ran 30, lost
	s.restart(100, 2, "m1")                      // requeue-waited 60
	s.finish(250, 2, "m1", "completed")          // ran 150
	ts, err := Reconstruct(s.buf.Events())
	if err != nil {
		t.Fatal(err)
	}
	tl := ts.Job(2)
	if tl == nil || !tl.Complete() {
		t.Fatal("job 2 missing or incomplete")
	}
	if got := float64(tl.FirstWait()); got != 10 {
		t.Errorf("FirstWait = %v", got)
	}
	if got := float64(tl.RequeueWait()); got != 60 {
		t.Errorf("RequeueWait = %v", got)
	}
	if got := float64(tl.LostRun()); got != 30 {
		t.Errorf("LostRun = %v", got)
	}
	if got := float64(tl.FinalRun()); got != 150 {
		t.Errorf("FinalRun = %v", got)
	}
	if tl.Preemptions() != 1 {
		t.Errorf("Preemptions = %d", tl.Preemptions())
	}
	if got := float64(tl.LastStart()); got != 100 {
		t.Errorf("LastStart = %v", got)
	}
	// The decomposition identity: components sum exactly to end-to-end.
	sum := float64(tl.FirstWait() + tl.RequeueWait() + tl.LostRun() + tl.FinalRun())
	if e2e := float64(tl.EndToEnd()); sum != e2e {
		t.Errorf("components sum %v != end-to-end %v", sum, e2e)
	}
}

func TestReconstructTransferAttribution(t *testing.T) {
	s := newStream()
	// Stage-in completes before the job is submitted (data-centric shape).
	obs.Begin(s.buf, 5, "net", "transfer", "wan", 900,
		obs.KV{Key: "src", Value: "harbor"}, obs.KV{Key: "dst", Value: "mesa"},
		obs.KV{Key: "bytes", Value: int64(1 << 30)}, obs.KV{Key: "job", Value: int64(3)})
	obs.End(s.buf, 45, "net", "transfer", "wan", 900)
	// An unbound transfer.
	obs.Begin(s.buf, 6, "net", "transfer", "wan", 901,
		obs.KV{Key: "bytes", Value: int64(10)}, obs.KV{Key: "job", Value: int64(0)})
	obs.End(s.buf, 7, "net", "transfer", "wan", 901)
	s.queue(50, 3, "m2", "data-centric", 4)
	s.start(60, 3, "m2")
	s.finish(100, 3, "m2", "completed")

	ts, err := Reconstruct(s.buf.Events())
	if err != nil {
		t.Fatal(err)
	}
	tl := ts.Job(3)
	if tl == nil || len(tl.Transfers) != 1 {
		t.Fatalf("job 3 has %d transfers, want 1", len(tl.Transfers))
	}
	if got := tl.TransferSeconds(); got != 40 {
		t.Errorf("TransferSeconds = %v", got)
	}
	if tl.Transfers[0].Bytes != 1<<30 {
		t.Errorf("bytes = %d", tl.Transfers[0].Bytes)
	}
	if ts.UnattributedTransfers != 1 {
		t.Errorf("UnattributedTransfers = %d", ts.UnattributedTransfers)
	}
}

func TestReconstructTruncatedAndRejected(t *testing.T) {
	s := newStream()
	s.queue(0, 4, "m1", "ensemble", 1)
	s.start(5, 4, "m1")                // run never ends: truncated trace
	s.queue(1, 5, "m1", "ensemble", 1) // still waiting
	obs.Instant(s.buf, 2, "job", "reject", "m1", obs.KV{Key: "job", Value: int64(6)})
	ts, err := Reconstruct(s.buf.Events())
	if err != nil {
		t.Fatal(err)
	}
	if ts.Incomplete != 2 {
		t.Errorf("Incomplete = %d, want 2", ts.Incomplete)
	}
	if ts.Rejected != 1 {
		t.Errorf("Rejected = %d", ts.Rejected)
	}
	if ds := Decompose(ts); len(ds) != 0 {
		t.Errorf("incomplete jobs leaked into decomposition: %+v", ds)
	}
}

func TestReconstructRejectsMalformedStreams(t *testing.T) {
	// End with no begin.
	b := obs.NewBuffer()
	obs.End(b, 1, "job", "wait", "m1", 9)
	if _, err := Reconstruct(b.Events()); err == nil {
		t.Error("dangling end accepted")
	}
	// Run begin with no wait.
	b2 := obs.NewBuffer()
	obs.Begin(b2, 1, "job", "run", "m1", 9)
	if _, err := Reconstruct(b2.Events()); err == nil {
		t.Error("run-without-wait accepted")
	}
	// Nested begin inside an open segment.
	b3 := obs.NewBuffer()
	obs.Begin(b3, 1, "job", "wait", "m1", 9)
	obs.Begin(b3, 2, "job", "run", "m1", 9)
	if _, err := Reconstruct(b3.Events()); err == nil {
		t.Error("begin inside open segment accepted")
	}
}

func TestDecomposeAggregatesPerModality(t *testing.T) {
	s := newStream()
	s.queue(0, 1, "m1", "gateway", 1)
	s.start(30, 1, "m1")
	s.finish(90, 1, "m1", "completed")
	s.queue(0, 2, "m1", "gateway", 1)
	s.start(50, 2, "m1")
	s.finish(80, 2, "m1", "completed")
	s.queue(0, 3, "m1", "urgent", 64)
	s.start(0, 3, "m1")
	s.finish(600, 3, "m1", "completed")
	ts, err := Reconstruct(s.buf.Events())
	if err != nil {
		t.Fatal(err)
	}
	ds := Decompose(ts)
	if len(ds) != 2 {
		t.Fatalf("got %d modalities", len(ds))
	}
	// Canonical order puts gateway before urgent.
	if ds[0].Modality != "gateway" || ds[1].Modality != "urgent" {
		t.Fatalf("order: %s, %s", ds[0].Modality, ds[1].Modality)
	}
	gw := ds[0]
	if gw.Jobs != 2 || gw.WaitSeconds != 80 || gw.RunSeconds != 90 || gw.EndToEndSeconds != 170 {
		t.Errorf("gateway decomp: %+v", gw)
	}
	if gw.MeanWait() != 40 {
		t.Errorf("MeanWait = %v", gw.MeanWait())
	}
	if math.Abs(gw.WaitShare()-80.0/170.0) > 1e-12 {
		t.Errorf("WaitShare = %v", gw.WaitShare())
	}
	urgent := ds[1]
	if urgent.WaitSeconds != 0 || urgent.RunSeconds != 600 {
		t.Errorf("urgent decomp: %+v", urgent)
	}
	tab := DecompositionTable(ds)
	if tab.Rows() != 3 { // 2 modalities + ALL
		t.Errorf("table rows = %d", tab.Rows())
	}
}

// mkRec builds a campaign member record.
func mkRec(id int64, campaign, mod string, submit, start, end float64) accounting.JobRecord {
	return accounting.JobRecord{
		JobID: id, TruthCampaign: campaign, TruthModality: mod,
		SubmitTime: submit, StartTime: start, EndTime: end,
		WallSeconds: end - start, Cores: 1, User: "u", Project: "p",
	}
}

func TestCriticalPathChain(t *testing.T) {
	// A diamond: a → (b ∥ c) → d, plus queue gaps. Spans (submit→end):
	// a: 0→100, b: 100→250, c: 100→180, d: 250→400.
	recs := []accounting.JobRecord{
		mkRec(1, "wf-1", "workflow", 0, 10, 100),
		mkRec(2, "wf-1", "workflow", 100, 130, 250),
		mkRec(3, "wf-1", "workflow", 100, 110, 180),
		mkRec(4, "wf-1", "workflow", 250, 260, 400),
	}
	paths := CriticalPaths(recs)
	if len(paths) != 1 {
		t.Fatalf("got %d paths", len(paths))
	}
	p := paths[0]
	if p.Jobs != 4 || p.Kind != "workflow" {
		t.Errorf("path: %+v", p)
	}
	if p.MakespanSeconds != 400 {
		t.Errorf("makespan = %v", p.MakespanSeconds)
	}
	// Chain a(100) + b(150) + d(150) = 400; c's branch is shorter.
	if p.CriticalPathSeconds != 400 || p.ChainJobs != 3 {
		t.Errorf("critical path = %v over %d jobs", p.CriticalPathSeconds, p.ChainJobs)
	}
	if p.CPShare() != 1.0 {
		t.Errorf("CPShare = %v", p.CPShare())
	}
	wantWork := 90.0 + 120 + 70 + 140
	if p.SumWorkSeconds != wantWork {
		t.Errorf("sum work = %v, want %v", p.SumWorkSeconds, wantWork)
	}
}

func TestCriticalPathsGroupingAndOrder(t *testing.T) {
	recs := []accounting.JobRecord{
		// Ensemble of 3 fully parallel jobs: CP = one span.
		mkRec(10, "ens-1", "ensemble", 0, 5, 100),
		mkRec(11, "ens-1", "ensemble", 0, 6, 90),
		mkRec(12, "ens-1", "ensemble", 0, 7, 110),
		// Workflow pair via instrumented tag only (no truth campaign).
		{JobID: 20, WorkflowID: "wf-x", TruthModality: "workflow",
			SubmitTime: 0, StartTime: 1, EndTime: 50, WallSeconds: 49},
		{JobID: 21, WorkflowID: "wf-x", TruthModality: "workflow",
			SubmitTime: 50, StartTime: 52, EndTime: 90, WallSeconds: 38},
		// Singleton: excluded.
		mkRec(30, "solo", "ensemble", 0, 1, 10),
		// Untagged: excluded.
		{JobID: 31, SubmitTime: 0, StartTime: 1, EndTime: 10},
	}
	paths := CriticalPaths(recs)
	if len(paths) != 2 {
		t.Fatalf("got %d paths: %+v", len(paths), paths)
	}
	// Sorted by descending makespan: ens-1 (110) before wf-x (90).
	if paths[0].Campaign != "ens-1" || paths[1].Campaign != "wf-x" {
		t.Errorf("order: %s, %s", paths[0].Campaign, paths[1].Campaign)
	}
	if paths[0].CriticalPathSeconds != 110 || paths[0].ChainJobs != 1 {
		t.Errorf("ensemble CP: %+v", paths[0])
	}
	if paths[1].CriticalPathSeconds != 90 || paths[1].ChainJobs != 2 {
		t.Errorf("workflow CP: %+v", paths[1])
	}
	tab := CriticalPathTable(paths, 1)
	if tab.Rows() != 3 { // 2 kind summaries + top-1 campaign
		t.Errorf("table rows = %d", tab.Rows())
	}
}
