// Latency decomposition: end-to-end job latency split into its causal
// components per usage modality. The split is exact by construction —
// wait + requeue-wait + lost-run + run == end-to-end for every complete
// job — so the table's components always sum to the total, and the
// cross-validation test holds the sums against accounting-derived waits.
package analysis

import (
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/report"
)

// ModalityDecomp aggregates latency components over one modality's
// complete jobs. All sums are virtual seconds.
type ModalityDecomp struct {
	Modality  string
	Jobs      int // complete jobs aggregated
	Preempted int // of which were preempted at least once

	WaitSeconds        float64 // initial queue wait
	RequeueWaitSeconds float64 // wait re-accumulated after preemptions
	LostRunSeconds     float64 // execution discarded by preemptions
	RunSeconds         float64 // productive (terminal) execution
	EndToEndSeconds    float64 // submit → terminal state
	TransferSeconds    float64 // attributed staging (overlay, not a slice)
}

// MeanWait returns the mean initial wait.
func (d ModalityDecomp) MeanWait() float64 { return safeDiv(d.WaitSeconds, d.Jobs) }

// MeanEndToEnd returns the mean end-to-end latency.
func (d ModalityDecomp) MeanEndToEnd() float64 { return safeDiv(d.EndToEndSeconds, d.Jobs) }

// WaitShare returns the fraction of end-to-end latency spent not running
// (wait + requeue + lost work).
func (d ModalityDecomp) WaitShare() float64 {
	if d.EndToEndSeconds == 0 {
		return 0
	}
	return (d.WaitSeconds + d.RequeueWaitSeconds + d.LostRunSeconds) / d.EndToEndSeconds
}

func safeDiv(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// modalityOrder returns the canonical row order: the taxonomy order, then
// unknown, so tables are stable across runs.
func modalityOrder() []string {
	out := make([]string, 0, len(job.AllModalities)+1)
	for _, m := range job.AllModalities {
		out = append(out, string(m))
	}
	return append(out, string(job.ModUnknown))
}

// Decompose aggregates complete timelines per modality. Jobs with no
// recorded modality fall into "unknown". Incomplete timelines are excluded
// (their components are not yet defined) and reported via TraceSet.
func Decompose(ts *TraceSet) []ModalityDecomp {
	byMod := make(map[string]*ModalityDecomp)
	for _, tl := range ts.Jobs {
		if !tl.Complete() {
			continue
		}
		mod := tl.Modality
		if mod == "" {
			mod = string(job.ModUnknown)
		}
		d := byMod[mod]
		if d == nil {
			d = &ModalityDecomp{Modality: mod}
			byMod[mod] = d
		}
		d.Jobs++
		if tl.Preemptions() > 0 {
			d.Preempted++
		}
		d.WaitSeconds += float64(tl.FirstWait())
		d.RequeueWaitSeconds += float64(tl.RequeueWait())
		d.LostRunSeconds += float64(tl.LostRun())
		d.RunSeconds += float64(tl.FinalRun())
		d.EndToEndSeconds += float64(tl.EndToEnd())
		d.TransferSeconds += tl.TransferSeconds()
	}
	var out []ModalityDecomp
	for _, mod := range modalityOrder() {
		if d := byMod[mod]; d != nil {
			out = append(out, *d)
		}
	}
	return out
}

// DecompositionTable renders the per-modality latency decomposition.
// Component columns are per-job means in seconds; wait% is the non-running
// share of end-to-end latency.
func DecompositionTable(ds []ModalityDecomp) *report.Table {
	t := report.NewTable("Wait decomposition by modality (per-job mean seconds)",
		"modality", "jobs", "preempted", "wait", "requeue", "lost run", "run", "end-to-end", "wait%", "transfer")
	var total ModalityDecomp
	total.Modality = "ALL"
	for _, d := range ds {
		t.AddRowf(d.Modality, d.Jobs, d.Preempted,
			d.MeanWait(), safeDiv(d.RequeueWaitSeconds, d.Jobs),
			safeDiv(d.LostRunSeconds, d.Jobs), safeDiv(d.RunSeconds, d.Jobs),
			d.MeanEndToEnd(), report.Percent(d.WaitShare()),
			safeDiv(d.TransferSeconds, d.Jobs))
		total.Jobs += d.Jobs
		total.Preempted += d.Preempted
		total.WaitSeconds += d.WaitSeconds
		total.RequeueWaitSeconds += d.RequeueWaitSeconds
		total.LostRunSeconds += d.LostRunSeconds
		total.RunSeconds += d.RunSeconds
		total.EndToEndSeconds += d.EndToEndSeconds
		total.TransferSeconds += d.TransferSeconds
	}
	t.AddRowf(total.Modality, total.Jobs, total.Preempted,
		total.MeanWait(), safeDiv(total.RequeueWaitSeconds, total.Jobs),
		safeDiv(total.LostRunSeconds, total.Jobs), safeDiv(total.RunSeconds, total.Jobs),
		total.MeanEndToEnd(), report.Percent(total.WaitShare()),
		safeDiv(total.TransferSeconds, total.Jobs))
	return t
}
