// Package analysis is the post-hoc trace-analysis layer: it reconstructs
// per-job causal timelines from obs.Event streams (submit → queue wait →
// run, through preemption requeues, with attributed data-transfer
// segments), decomposes end-to-end latency into wait/run/preempt/transfer
// components per usage modality, and extracts critical paths through
// workflow and ensemble campaigns from accounting records.
//
// The obs layer records *what happened*; this package answers *why it took
// that long*. It consumes the same event stream whether held in memory
// (tgsim -analysis) or reloaded from a JSONL export (cmd/tgdiff), so live
// runs and archived runs analyze identically.
package analysis

import (
	"fmt"
	"sort"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/obs"
)

// SegmentKind classifies one interval of a job's timeline.
type SegmentKind int

// Timeline segment kinds.
const (
	SegWait SegmentKind = iota // queued, waiting for cores
	SegRun                     // executing
)

// String returns the lowercase kind name.
func (k SegmentKind) String() string {
	switch k {
	case SegWait:
		return "wait"
	case SegRun:
		return "run"
	default:
		return fmt.Sprintf("segment(%d)", int(k))
	}
}

// Segment is one contiguous interval of a job's lifecycle. Open segments
// (End unset) belong to jobs still queued or running when the trace ended.
type Segment struct {
	Kind  SegmentKind
	Start des.Time
	End   des.Time
	Open  bool
	// EndState is the recorded terminal state of a run segment
	// ("completed", "killed", "preempted"); empty for waits and open runs.
	EndState string
}

// Duration returns the segment length (0 for open segments).
func (s Segment) Duration() des.Time {
	if s.Open || s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// TransferSeg is one WAN transfer attributed to a job.
type TransferSeg struct {
	ID    int64
	Start des.Time
	End   des.Time
	Open  bool
	Bytes int64
}

// JobTimeline is the reconstructed causal history of one job.
type JobTimeline struct {
	ID       int64
	Machine  string
	User     string
	QOS      string
	Modality string // ground-truth modality from the span args ("" → unknown)
	Cores    int64

	Submit   des.Time
	Segments []Segment
	// Transfers attributed to this job (stage-in/stage-out); they may
	// precede Submit, since data-centric jobs stage input before submitting.
	Transfers []TransferSeg
}

// Complete reports whether the job reached a terminal state inside the
// trace: every segment closed and the last run ended completed or killed.
func (t *JobTimeline) Complete() bool {
	if len(t.Segments) == 0 {
		return false
	}
	last := t.Segments[len(t.Segments)-1]
	return !last.Open && last.Kind == SegRun &&
		(last.EndState == "completed" || last.EndState == "killed")
}

// End returns the time of the last closed segment boundary.
func (t *JobTimeline) End() des.Time {
	end := t.Submit
	for _, s := range t.Segments {
		if !s.Open && s.End > end {
			end = s.End
		}
	}
	return end
}

// FirstWait returns the initial queue wait (submission to first start).
func (t *JobTimeline) FirstWait() des.Time {
	if len(t.Segments) > 0 && t.Segments[0].Kind == SegWait {
		return t.Segments[0].Duration()
	}
	return 0
}

// RequeueWait returns wait accumulated after preemptions (all wait
// segments beyond the first).
func (t *JobTimeline) RequeueWait() des.Time {
	var sum des.Time
	first := true
	for _, s := range t.Segments {
		if s.Kind != SegWait {
			continue
		}
		if first {
			first = false
			continue
		}
		sum += s.Duration()
	}
	return sum
}

// LostRun returns execution time discarded by preemptions (run segments
// that ended preempted; without checkpointing the work restarts from
// scratch).
func (t *JobTimeline) LostRun() des.Time {
	var sum des.Time
	for _, s := range t.Segments {
		if s.Kind == SegRun && s.EndState == "preempted" {
			sum += s.Duration()
		}
	}
	return sum
}

// FinalRun returns the productive run (the terminal run segment).
func (t *JobTimeline) FinalRun() des.Time {
	if !t.Complete() {
		return 0
	}
	return t.Segments[len(t.Segments)-1].Duration()
}

// LastStart returns the start time of the final run segment (the value
// accounting records as StartTime).
func (t *JobTimeline) LastStart() des.Time {
	for i := len(t.Segments) - 1; i >= 0; i-- {
		if t.Segments[i].Kind == SegRun {
			return t.Segments[i].Start
		}
	}
	return t.Submit
}

// EndToEnd returns submission-to-termination latency for complete jobs.
func (t *JobTimeline) EndToEnd() des.Time {
	if !t.Complete() {
		return 0
	}
	return t.End() - t.Submit
}

// Preemptions counts preempted run segments.
func (t *JobTimeline) Preemptions() int {
	n := 0
	for _, s := range t.Segments {
		if s.Kind == SegRun && s.EndState == "preempted" {
			n++
		}
	}
	return n
}

// TransferSeconds returns the total attributed transfer time. Transfers
// model staging alongside (not inside) the queue/run path, so this is an
// overlay component, not a slice of end-to-end latency.
func (t *JobTimeline) TransferSeconds() float64 {
	var sum float64
	for _, tr := range t.Transfers {
		if !tr.Open && tr.End > tr.Start {
			sum += float64(tr.End - tr.Start)
		}
	}
	return sum
}

// TraceSet is the reconstruction of one run's event stream.
type TraceSet struct {
	// Jobs in order of first appearance (submission order, since the
	// kernel records events in execution order).
	Jobs []*JobTimeline

	// Rejected counts jobs turned away at submission (they never queue, so
	// they have no timeline).
	Rejected int
	// Incomplete counts timelines with open segments — jobs still queued
	// or running when the trace ended (or truncated by a buffer cap).
	Incomplete int
	// UnattributedTransfers counts transfers with no job binding.
	UnattributedTransfers int

	byID map[int64]*JobTimeline
}

// Job returns the timeline for a job ID (nil when absent).
func (ts *TraceSet) Job(id int64) *JobTimeline { return ts.byID[id] }

// pendingTransfer tracks an open transfer span during reconstruction.
type pendingTransfer struct {
	seg   TransferSeg
	jobID int64
}

// Reconstruct rebuilds per-job timelines from an event stream in recorded
// order. It is tolerant of truncated streams (a capped obs.Buffer keeps a
// contiguous prefix): spans left open are marked Open and their jobs
// counted Incomplete rather than rejected as errors. Genuinely malformed
// streams — an end with no matching begin — do error, because silently
// skipping them would make every derived number quietly wrong.
func Reconstruct(events []obs.Event) (*TraceSet, error) {
	ts := &TraceSet{byID: make(map[int64]*JobTimeline)}
	openXfer := make(map[int64]*pendingTransfer)
	// Transfers finish before their job submits when input is staged ahead
	// of submission, so attribution is resolved after the scan.
	var doneXfer []pendingTransfer

	for i, ev := range events {
		switch {
		case ev.Cat == "job" && (ev.Name == "wait" || ev.Name == "run"):
			tl := ts.byID[ev.ID]
			switch ev.Phase {
			case obs.PhaseBegin:
				if tl == nil {
					if ev.Name == "run" {
						return nil, fmt.Errorf("analysis: event %d: run began for job %d with no prior wait", i, ev.ID)
					}
					cores, _ := ev.ArgInt("cores")
					tl = &JobTimeline{
						ID:       ev.ID,
						Machine:  ev.Track,
						User:     ev.ArgString("user"),
						QOS:      ev.ArgString("qos"),
						Modality: ev.ArgString("mod"),
						Cores:    cores,
						Submit:   ev.At,
					}
					ts.byID[ev.ID] = tl
					ts.Jobs = append(ts.Jobs, tl)
				}
				kind := SegWait
				if ev.Name == "run" {
					kind = SegRun
				}
				if n := len(tl.Segments); n > 0 && tl.Segments[n-1].Open {
					return nil, fmt.Errorf("analysis: event %d: job %d began %s inside an open %s segment",
						i, ev.ID, ev.Name, tl.Segments[n-1].Kind)
				}
				tl.Segments = append(tl.Segments, Segment{Kind: kind, Start: ev.At, Open: true})
			case obs.PhaseEnd:
				if tl == nil || len(tl.Segments) == 0 {
					return nil, fmt.Errorf("analysis: event %d: %s ended for unknown job %d", i, ev.Name, ev.ID)
				}
				seg := &tl.Segments[len(tl.Segments)-1]
				wantKind := SegWait
				if ev.Name == "run" {
					wantKind = SegRun
				}
				if !seg.Open || seg.Kind != wantKind {
					return nil, fmt.Errorf("analysis: event %d: job %d ended %s without an open %s segment",
						i, ev.ID, ev.Name, ev.Name)
				}
				seg.End = ev.At
				seg.Open = false
				if seg.Kind == SegRun {
					seg.EndState = ev.ArgString("state")
					if seg.EndState == "" {
						seg.EndState = "completed"
					}
				}
			}
		case ev.Cat == "job" && ev.Name == "reject" && ev.Phase == obs.PhaseInstant:
			ts.Rejected++
		case ev.Cat == "net" && ev.Name == "transfer":
			switch ev.Phase {
			case obs.PhaseBegin:
				jobID, _ := ev.ArgInt("job")
				bytes, _ := ev.ArgInt("bytes")
				openXfer[ev.ID] = &pendingTransfer{
					seg:   TransferSeg{ID: ev.ID, Start: ev.At, Open: true, Bytes: bytes},
					jobID: jobID,
				}
			case obs.PhaseEnd:
				p := openXfer[ev.ID]
				if p == nil {
					return nil, fmt.Errorf("analysis: event %d: transfer %d ended without begin", i, ev.ID)
				}
				delete(openXfer, ev.ID)
				p.seg.End = ev.At
				p.seg.Open = false
				doneXfer = append(doneXfer, *p)
			}
		}
	}

	// Attribute transfers now that every job that will ever appear has.
	for _, p := range doneXfer {
		if tl := ts.byID[p.jobID]; p.jobID != 0 && tl != nil {
			tl.Transfers = append(tl.Transfers, p.seg)
		} else {
			ts.UnattributedTransfers++
		}
	}
	// Open transfers attach in ID order so reconstruction is deterministic
	// regardless of map iteration.
	openIDs := make([]int64, 0, len(openXfer))
	for id := range openXfer {
		openIDs = append(openIDs, id)
	}
	sort.Slice(openIDs, func(i, j int) bool { return openIDs[i] < openIDs[j] })
	for _, id := range openIDs {
		p := openXfer[id]
		if tl := ts.byID[p.jobID]; p.jobID != 0 && tl != nil {
			tl.Transfers = append(tl.Transfers, p.seg)
		} else {
			ts.UnattributedTransfers++
		}
	}

	for _, tl := range ts.Jobs {
		if !tl.Complete() {
			ts.Incomplete++
		}
	}
	return ts, nil
}
