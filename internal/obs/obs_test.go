package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/tgsim/tgmod/internal/des"
)

func sampleEvents() *Buffer {
	b := NewBuffer()
	Begin(b, 0.5, "job", "wait", "m1", 1, KV{Key: "user", Value: "alice"}, KV{Key: "cores", Value: 8})
	End(b, 2, "job", "wait", "m1", 1)
	Begin(b, 2, "job", "run", "m1", 1, KV{Key: "cores", Value: 8})
	End(b, 10.25, "job", "run", "m1", 1, KV{Key: "state", Value: "completed"})
	Begin(b, 3, "net", "transfer", "wan", 7, KV{Key: "src", Value: "a"}, KV{Key: "dst", Value: "b"}, KV{Key: "bytes", Value: int64(1 << 30)})
	End(b, 9, "net", "transfer", "wan", 7)
	Instant(b, 4, "gateway", "request", "nanohub", KV{Key: "user", Value: `quo"ted`}, KV{Key: "attributed", Value: true})
	return b
}

func TestNilRecorderIsNoOp(t *testing.T) {
	// Must not panic.
	Begin(nil, 1, "job", "wait", "m", 1)
	End(nil, 1, "job", "wait", "m", 1)
	Instant(nil, 1, "job", "x", "m")
}

func TestChromeTraceRoundTrips(t *testing.T) {
	b := sampleEvents()
	var out bytes.Buffer
	if err := b.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out.String())
	}
	// process_name + 3 thread_name metadata events + 7 payload events.
	if got, want := len(doc.TraceEvents), 1+3+7; got != want {
		t.Fatalf("trace has %d events, want %d", got, want)
	}
	var tracks []string
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "thread_name" {
			args := ev["args"].(map[string]any)
			tracks = append(tracks, args["name"].(string))
		}
	}
	if got, want := strings.Join(tracks, ","), "m1,wan,nanohub"; got != want {
		t.Errorf("track order = %q, want %q (first appearance order)", got, want)
	}
	// Timestamps are microseconds.
	first := doc.TraceEvents[4]
	if first["ts"].(float64) != 0.5e6 {
		t.Errorf("first payload ts = %v, want 5e5 µs", first["ts"])
	}
	// Async span fields present.
	if first["ph"] != "b" || first["cat"] != "job" {
		t.Errorf("span event malformed: %v", first)
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleEvents().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleEvents().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical event streams serialized to different bytes")
	}
}

func TestJSONLEveryLineValid(t *testing.T) {
	b := sampleEvents()
	var out bytes.Buffer
	if err := b.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&out)
	lines := 0
	for sc.Scan() {
		lines++
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d invalid JSON: %v: %s", lines, err, sc.Text())
		}
		for _, key := range []string{"t", "ph", "cat", "name", "track"} {
			if _, ok := obj[key]; !ok {
				t.Fatalf("line %d missing %q: %s", lines, key, sc.Text())
			}
		}
	}
	if lines != b.Len() {
		t.Errorf("JSONL lines = %d, want %d", lines, b.Len())
	}
}

func TestSampler(t *testing.T) {
	k := des.New()
	depth := 0.0
	sm := NewSampler(10)
	sm.Register("queues", "m1", func() float64 { return depth })
	sm.Register("queues", "m2", func() float64 { return depth * 2 })
	sm.Start(k)
	k.Schedule(15, func(*des.Kernel) { depth = 3 })
	k.RunUntil(40)
	if sm.Samples() != 4 {
		t.Fatalf("samples = %d, want 4", sm.Samples())
	}
	ts := sm.Series("queues", "m1")
	if ts == nil {
		t.Fatal("missing series")
	}
	// Samples at t=10 (depth 0), 20, 30, 40 (depth 3).
	if ts.Mean(1) != 0 || ts.Mean(2) != 3 {
		t.Errorf("series means = %v, %v, want 0, 3", ts.Mean(1), ts.Mean(2))
	}
	var out bytes.Buffer
	if err := sm.WriteCSV("queues", &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	want := "time_s,m1,m2\n10,0,0\n20,3,6\n30,3,6\n40,3,6\n"
	if got != want {
		t.Errorf("CSV:\n%s\nwant:\n%s", got, want)
	}
	if err := sm.WriteCSV("nope", &out); err == nil {
		t.Error("unknown group accepted")
	}
}

func TestKernelProfiler(t *testing.T) {
	k := des.New()
	p := NewKernelProfiler(k)
	p.Install()
	for i := 0; i < 50; i++ {
		k.ScheduleNamed(des.Time(i), "tick", func(*des.Kernel) {
			time.Sleep(10 * time.Microsecond)
		})
	}
	k.Schedule(100, func(*des.Kernel) {})
	k.Run()
	if p.Events() != 51 {
		t.Fatalf("profiled %d events, want 51", p.Events())
	}
	if p.FELHighWater() != 51 {
		t.Errorf("FEL high-water = %d, want 51", p.FELHighWater())
	}
	if p.EventsPerSec() <= 0 {
		t.Errorf("events/sec = %v, want > 0", p.EventsPerSec())
	}
	tab := p.Table()
	// Two event names ("tick", anonymous) plus the TOTAL row.
	if tab.Rows() != 3 {
		t.Fatalf("profile rows = %d, want 3:\n%s", tab.Rows(), tab)
	}
	// "tick" dominates wall time, so it sorts first.
	if got := tab.Cell(0, 0); got != "tick" {
		t.Errorf("heaviest event = %q, want \"tick\"", got)
	}
	if got := tab.Cell(2, 0); got != "TOTAL" {
		t.Errorf("last row = %q, want TOTAL", got)
	}
	if !strings.Contains(p.Summary(), "51 events") {
		t.Errorf("summary %q missing event count", p.Summary())
	}
}

func TestBufferCap(t *testing.T) {
	b := NewBufferCap(3)
	for i := 0; i < 10; i++ {
		Instant(b, des.Time(i), "job", "ev", "m1")
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d, want 3", b.Len())
	}
	if b.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", b.Dropped())
	}
	// The kept prefix is the first three events, in order.
	for i, ev := range b.Events() {
		if ev.At != des.Time(i) {
			t.Errorf("event %d at %v, want %v (prefix must be contiguous)", i, ev.At, des.Time(i))
		}
	}
	// Unbounded buffers never drop.
	u := NewBuffer()
	for i := 0; i < 10; i++ {
		Instant(u, des.Time(i), "job", "ev", "m1")
	}
	if u.Len() != 10 || u.Dropped() != 0 {
		t.Errorf("unbounded: Len=%d Dropped=%d", u.Len(), u.Dropped())
	}
	// NewBufferCap(0) means unbounded too.
	z := NewBufferCap(0)
	for i := 0; i < 10; i++ {
		Instant(z, des.Time(i), "job", "ev", "m1")
	}
	if z.Len() != 10 || z.Dropped() != 0 {
		t.Errorf("cap 0: Len=%d Dropped=%d", z.Len(), z.Dropped())
	}
}

func TestTypedArgAccessors(t *testing.T) {
	ev := Event{Args: []KV{
		{Key: "user", Value: "alice"},
		{Key: "cores", Value: 128},
		{Key: "id64", Value: int64(1 << 40)},
		{Key: "frac", Value: 0.25},
		{Key: "whole", Value: float64(9)},
		{Key: "requeued", Value: true},
	}}
	if got := ev.ArgString("user"); got != "alice" {
		t.Errorf("ArgString(user) = %q", got)
	}
	if got := ev.ArgString("missing"); got != "" {
		t.Errorf("ArgString(missing) = %q", got)
	}
	if v, ok := ev.ArgInt("cores"); !ok || v != 128 {
		t.Errorf("ArgInt(cores) = %d, %v", v, ok)
	}
	if v, ok := ev.ArgInt("id64"); !ok || v != 1<<40 {
		t.Errorf("ArgInt(id64) = %d, %v", v, ok)
	}
	// Integral floats (the JSONL decode path) coerce; fractional do not.
	if v, ok := ev.ArgInt("whole"); !ok || v != 9 {
		t.Errorf("ArgInt(whole) = %d, %v", v, ok)
	}
	if _, ok := ev.ArgInt("frac"); ok {
		t.Error("ArgInt(frac) should not coerce 0.25")
	}
	if v, ok := ev.ArgFloat("frac"); !ok || v != 0.25 {
		t.Errorf("ArgFloat(frac) = %v, %v", v, ok)
	}
	if v, ok := ev.ArgFloat("cores"); !ok || v != 128 {
		t.Errorf("ArgFloat(cores) = %v, %v", v, ok)
	}
	if !ev.ArgBool("requeued") {
		t.Error("ArgBool(requeued) = false")
	}
	if ev.ArgBool("user") || ev.ArgBool("missing") {
		t.Error("ArgBool must be false for non-bools and absent keys")
	}
	if _, ok := ev.Arg("nope"); ok {
		t.Error("Arg(nope) reported present")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	b := NewBuffer()
	Begin(b, 1.5, "job", "wait", "m1", 42,
		KV{Key: "user", Value: "alice"},
		KV{Key: "cores", Value: 64},
		KV{Key: "qos", Value: "normal"},
		KV{Key: "mod", Value: "workflow"})
	End(b, 2.25, "job", "wait", "m1", 42)
	Begin(b, 2.25, "job", "run", "m1", 42, KV{Key: "user", Value: "alice"})
	End(b, 10, "job", "run", "m1", 42, KV{Key: "state", Value: "completed"})
	Instant(b, 3, "gateway", "request", "nanohub",
		KV{Key: "attributed", Value: true},
		KV{Key: "job", Value: int64(7)})
	Begin(b, 4, "net", "transfer", "wan", 9,
		KV{Key: "src", Value: "harbor"}, KV{Key: "dst", Value: "mesa"},
		KV{Key: "bytes", Value: int64(1 << 33)}, KV{Key: "job", Value: int64(0)})
	End(b, 5, "net", "transfer", "wan", 9)

	var out bytes.Buffer
	if err := b.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJSONL(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != b.Len() {
		t.Fatalf("decoded %d events, wrote %d", len(events), b.Len())
	}
	// Semantic spot checks.
	if events[0].ArgString("mod") != "workflow" {
		t.Errorf("decoded mod = %q", events[0].ArgString("mod"))
	}
	if v, ok := events[0].ArgInt("cores"); !ok || v != 64 {
		t.Errorf("decoded cores = %d, %v", v, ok)
	}
	if !events[4].ArgBool("attributed") {
		t.Error("decoded attributed lost")
	}
	// Re-encoding the decoded stream must be byte-identical: tgdiff treats
	// the JSONL export as a stable interchange format.
	rt := NewBuffer()
	for _, ev := range events {
		rt.Record(ev)
	}
	var out2 bytes.Buffer
	if err := rt.WriteJSONL(&out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Fatalf("JSONL round trip not byte-identical:\n%s\nvs\n%s", out.String(), out2.String())
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"t":1,"ph":"xy","cat":"c","name":"n","track":"t"}` + "\n")); err == nil {
		t.Error("multi-byte phase accepted")
	}
	events, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(events) != 0 {
		t.Errorf("blank input: %v, %d events", err, len(events))
	}
}
