// Kernel self-profiling: wall-clock cost of the simulation itself, keyed
// by event name. The profiler sits on the des.Tracer seam (Event fires
// before each handler, AfterEvent after), so per-name wall time is the
// handler execution cost, and throughput is events per wall-clock second.
package obs

import (
	"fmt"
	"sort"
	"time"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/report"
)

// evStat accumulates one event name's cost.
type evStat struct {
	count uint64
	wall  time.Duration
}

// KernelProfiler measures where wall-clock time goes inside a kernel run.
// Install it with Install (or des.Kernel.SetTracer); it implements both
// des.Tracer and des.StepObserver.
type KernelProfiler struct {
	k         *des.Kernel
	stats     map[string]*evStat
	wallStart time.Time
	wallEnd   time.Time
	evStart   time.Time
	events    uint64
	pendingHW int
}

// NewKernelProfiler returns a profiler for kernel k. A nil kernel is
// allowed for deferred binding (Bind): callers that build the profiler
// before the kernel exists — tgsim constructs observers before scenario.Run
// creates the kernel — bind it later.
func NewKernelProfiler(k *des.Kernel) *KernelProfiler {
	return &KernelProfiler{k: k, stats: make(map[string]*evStat)}
}

// Bind attaches (or replaces) the kernel the profiler reads FEL state from.
func (p *KernelProfiler) Bind(k *des.Kernel) { p.k = k }

// Install makes the profiler the kernel's tracer.
func (p *KernelProfiler) Install() { p.k.SetTracer(p) }

// Event implements des.Tracer: stamp the handler start.
func (p *KernelProfiler) Event(at des.Time, name string) {
	now := time.Now()
	if p.events == 0 {
		p.wallStart = now
	}
	p.evStart = now
}

// AfterEvent implements des.StepObserver: charge the elapsed wall time to
// the event's name and track the future-event-list high-water mark.
func (p *KernelProfiler) AfterEvent(at des.Time, name string, pending int) {
	now := time.Now()
	p.wallEnd = now
	p.events++
	if pending > p.pendingHW {
		p.pendingHW = pending
	}
	st := p.stats[name]
	if st == nil {
		st = &evStat{}
		p.stats[name] = st
	}
	st.count++
	st.wall += now.Sub(p.evStart)
}

// Events returns the number of profiled events.
func (p *KernelProfiler) Events() uint64 { return p.events }

// WallSeconds returns the wall-clock span from the first to the last
// profiled event.
func (p *KernelProfiler) WallSeconds() float64 {
	if p.events == 0 {
		return 0
	}
	return p.wallEnd.Sub(p.wallStart).Seconds()
}

// EventsPerSec returns the wall-clock event throughput.
func (p *KernelProfiler) EventsPerSec() float64 {
	w := p.WallSeconds()
	if w <= 0 {
		return 0
	}
	return float64(p.events) / w
}

// FELHighWater returns the largest pending-event count observed at any
// event boundary.
func (p *KernelProfiler) FELHighWater() int {
	if p.k != nil {
		if hw := p.k.MaxPending(); hw > p.pendingHW {
			return hw
		}
	}
	return p.pendingHW
}

// Summary returns the one-line profile header.
func (p *KernelProfiler) Summary() string {
	return fmt.Sprintf("kernel: %d events in %.3fs wall (%s events/s), FEL high-water %s",
		p.events, p.WallSeconds(),
		report.FormatFloat(p.EventsPerSec()), report.GroupInt(int64(p.FELHighWater())))
}

// Table renders the per-event-name cost table, heaviest first, with a
// trailing TOTAL row.
func (p *KernelProfiler) Table() *report.Table {
	t := report.NewTable("Kernel self-profile (wall clock)",
		"event", "count", "wall ms", "mean µs", "share")
	names := make([]string, 0, len(p.stats))
	var total time.Duration
	for n, st := range p.stats {
		names = append(names, n)
		total += st.wall
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := p.stats[names[i]], p.stats[names[j]]
		if a.wall != b.wall {
			return a.wall > b.wall
		}
		return names[i] < names[j]
	})
	for _, n := range names {
		st := p.stats[n]
		label := n
		if label == "" {
			label = "(anonymous)"
		}
		share := 0.0
		if total > 0 {
			share = float64(st.wall) / float64(total)
		}
		t.AddRowf(label, int64(st.count),
			fmt.Sprintf("%.2f", float64(st.wall)/1e6),
			fmt.Sprintf("%.2f", float64(st.wall)/1e3/float64(st.count)),
			report.Percent(share))
	}
	t.AddRowf("TOTAL", int64(p.events),
		fmt.Sprintf("%.2f", float64(total)/1e6), "", "")
	return t
}
