// Chrome trace-event and JSONL export. The Chrome format is the JSON
// object form ({"traceEvents": [...]}) loadable in Perfetto and
// chrome://tracing; tracks map to named threads of one process via
// thread_name metadata events. Serialization is hand-rolled so the output
// bytes are a pure function of the event stream (args keep their recorded
// order; floats use one fixed formatting), which the determinism tests
// rely on.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// quoteJSON renders s as a JSON string literal. encoding/json's string
// escaping is deterministic and always valid JSON, unlike strconv.Quote.
func quoteJSON(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// appendValue renders a KV value as a JSON literal.
func appendValue(dst []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return append(dst, quoteJSON(x)...)
	case int:
		return strconv.AppendInt(dst, int64(x), 10)
	case int64:
		return strconv.AppendInt(dst, x, 10)
	case uint64:
		return strconv.AppendUint(dst, x, 10)
	case float64:
		return strconv.AppendFloat(dst, x, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(dst, x)
	default:
		return append(dst, quoteJSON(fmt.Sprintf("%v", x))...)
	}
}

// appendArgs renders an args object preserving recorded key order.
func appendArgs(dst []byte, args []KV) []byte {
	dst = append(dst, '{')
	for i, a := range args {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, quoteJSON(a.Key)...)
		dst = append(dst, ':')
		dst = appendValue(dst, a.Value)
	}
	return append(dst, '}')
}

// trackIDs assigns thread ids to tracks in order of first appearance,
// which is deterministic because events are recorded in execution order.
func trackIDs(events []Event) (order []string, ids map[string]int) {
	ids = make(map[string]int)
	for _, ev := range events {
		if _, ok := ids[ev.Track]; !ok {
			ids[ev.Track] = len(order)
			order = append(order, ev.Track)
		}
	}
	return order, ids
}

// WriteChromeTrace writes the buffer in Chrome trace-event JSON object
// format. Virtual seconds map to trace microseconds.
func (b *Buffer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n"); err != nil {
		return err
	}
	order, ids := trackIDs(b.events)
	line := make([]byte, 0, 256)
	first := true
	emit := func() error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.Write(line)
		return err
	}
	// Name the process and each track.
	line = append(line[:0], `{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"tgsim"}}`...)
	if err := emit(); err != nil {
		return err
	}
	for tid, name := range order {
		line = line[:0]
		line = append(line, `{"ph":"M","pid":1,"tid":`...)
		line = strconv.AppendInt(line, int64(tid), 10)
		line = append(line, `,"name":"thread_name","args":{"name":`...)
		line = append(line, quoteJSON(name)...)
		line = append(line, `}}`...)
		if err := emit(); err != nil {
			return err
		}
	}
	for _, ev := range b.events {
		line = line[:0]
		line = append(line, `{"ph":"`...)
		line = append(line, ev.Phase)
		line = append(line, `","pid":1,"tid":`...)
		line = strconv.AppendInt(line, int64(ids[ev.Track]), 10)
		line = append(line, `,"ts":`...)
		line = strconv.AppendFloat(line, float64(ev.At)*1e6, 'f', 3, 64)
		line = append(line, `,"cat":`...)
		line = append(line, quoteJSON(ev.Cat)...)
		line = append(line, `,"name":`...)
		line = append(line, quoteJSON(ev.Name)...)
		if ev.Phase != PhaseInstant {
			line = append(line, `,"id":`...)
			line = strconv.AppendInt(line, ev.ID, 10)
		} else {
			// Instant scope "t": the event belongs to its thread/track.
			line = append(line, `,"s":"t"`...)
		}
		if len(ev.Args) > 0 {
			line = append(line, `,"args":`...)
			line = appendArgs(line, ev.Args)
		}
		line = append(line, '}')
		if err := emit(); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteJSONL writes one JSON object per event, one per line — the format
// for ad-hoc processing with jq or a dataframe loader. Timestamps are
// virtual seconds.
func (b *Buffer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	line := make([]byte, 0, 256)
	for _, ev := range b.events {
		line = line[:0]
		line = append(line, `{"t":`...)
		line = strconv.AppendFloat(line, float64(ev.At), 'g', -1, 64)
		line = append(line, `,"ph":"`...)
		line = append(line, ev.Phase)
		line = append(line, `","cat":`...)
		line = append(line, quoteJSON(ev.Cat)...)
		line = append(line, `,"name":`...)
		line = append(line, quoteJSON(ev.Name)...)
		line = append(line, `,"track":`...)
		line = append(line, quoteJSON(ev.Track)...)
		if ev.ID != 0 {
			line = append(line, `,"id":`...)
			line = strconv.AppendInt(line, ev.ID, 10)
		}
		if len(ev.Args) > 0 {
			line = append(line, `,"args":`...)
			line = appendArgs(line, ev.Args)
		}
		line = append(line, '}', '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}
