// Package obs is the simulator's observability layer: structured span and
// instant events for job lifecycles, scheduler decisions, data transfers,
// gateway sessions and maintenance windows (exportable as Chrome
// trace-event JSON or JSONL); virtual-time metric sampling into
// metrics.TimeSeries with CSV export; and wall-clock kernel self-profiling
// over the des.Tracer seam.
//
// The layer is strictly opt-in: every hook in the simulation nil-checks its
// recorder, so a run without observability configured pays nothing.
package obs

import (
	"github.com/tgsim/tgmod/internal/des"
)

// Event phases, mirroring the Chrome trace-event format ("ph" field).
// Spans use the async begin/end pair correlated by (Cat, ID) so that
// overlapping lifecycles on one track (many jobs on one machine) render
// correctly in Perfetto.
const (
	PhaseBegin   byte = 'b' // async span begin
	PhaseEnd     byte = 'e' // async span end
	PhaseInstant byte = 'i' // instantaneous event
)

// KV is one ordered key/value argument attached to an event. Args are a
// slice, not a map, so serialization order — and therefore exported trace
// bytes — is deterministic.
type KV struct {
	Key   string
	Value any // string, int, int64, or float64
}

// Event is one observability record.
type Event struct {
	At    des.Time // virtual time
	Phase byte     // PhaseBegin, PhaseEnd, or PhaseInstant
	Cat   string   // category: "job", "sched", "net", "gateway", "maint"
	Name  string   // event or span name within the category
	Track string   // rendered as a named thread/track (machine ID, "wan", ...)
	ID    int64    // async span correlation id (job ID, transfer ID); 0 for instants
	Args  []KV     // optional ordered arguments
}

// Arg returns the value recorded under key and whether it was present.
// Linear scan: args are short (≤ 6 entries at every call site).
func (ev Event) Arg(key string) (any, bool) {
	for _, a := range ev.Args {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// ArgString returns the string recorded under key ("" when absent or not a
// string).
func (ev Event) ArgString(key string) string {
	v, ok := ev.Arg(key)
	if !ok {
		return ""
	}
	s, _ := v.(string)
	return s
}

// ArgInt returns the integer recorded under key. Events decoded from JSONL
// may carry numeric args as float64; integral floats coerce losslessly.
func (ev Event) ArgInt(key string) (int64, bool) {
	v, ok := ev.Arg(key)
	if !ok {
		return 0, false
	}
	switch x := v.(type) {
	case int:
		return int64(x), true
	case int64:
		return x, true
	case uint64:
		return int64(x), true
	case float64:
		if x == float64(int64(x)) {
			return int64(x), true
		}
	}
	return 0, false
}

// ArgFloat returns the numeric value recorded under key.
func (ev Event) ArgFloat(key string) (float64, bool) {
	v, ok := ev.Arg(key)
	if !ok {
		return 0, false
	}
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint64:
		return float64(x), true
	}
	return 0, false
}

// ArgBool returns the boolean recorded under key (false when absent or not
// a bool).
func (ev Event) ArgBool(key string) bool {
	v, ok := ev.Arg(key)
	if !ok {
		return false
	}
	b, _ := v.(bool)
	return b
}

// Recorder receives observability events. Implementations must be cheap:
// recorders run inline with kernel event execution.
type Recorder interface {
	Record(ev Event)
}

// Begin records an async span begin. A nil recorder is a no-op, so call
// sites do not need their own guards.
func Begin(r Recorder, at des.Time, cat, name, track string, id int64, args ...KV) {
	if r == nil {
		return
	}
	r.Record(Event{At: at, Phase: PhaseBegin, Cat: cat, Name: name, Track: track, ID: id, Args: args})
}

// End records an async span end matching a prior Begin with the same
// (cat, name, id).
func End(r Recorder, at des.Time, cat, name, track string, id int64, args ...KV) {
	if r == nil {
		return
	}
	r.Record(Event{At: at, Phase: PhaseEnd, Cat: cat, Name: name, Track: track, ID: id, Args: args})
}

// Instant records a zero-duration event.
func Instant(r Recorder, at des.Time, cat, name, track string, args ...KV) {
	if r == nil {
		return
	}
	r.Record(Event{At: at, Phase: PhaseInstant, Cat: cat, Name: name, Track: track, Args: args})
}

// Buffer is the standard in-memory Recorder. Events are appended in
// execution order, which the single-threaded kernel makes deterministic.
// An optional capacity bounds memory on long traced runs: once full, new
// events are counted as dropped instead of retained, so the kept prefix
// stays contiguous (a prefix truncates spans cleanly; sampling would tear
// begin/end pairs apart).
type Buffer struct {
	events  []Event
	max     int
	dropped uint64
}

// NewBuffer returns an unbounded buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// NewBufferCap returns a buffer that retains at most max events (max <= 0
// means unbounded). Events beyond the cap increment the dropped counter.
func NewBufferCap(max int) *Buffer { return &Buffer{max: max} }

// Record implements Recorder.
func (b *Buffer) Record(ev Event) {
	if b.max > 0 && len(b.events) >= b.max {
		b.dropped++
		return
	}
	b.events = append(b.events, ev)
}

// Dropped returns the number of events discarded because the buffer was at
// capacity.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// Len returns the number of recorded events.
func (b *Buffer) Len() int { return len(b.events) }

// Events returns the recorded events in execution order. The slice is the
// buffer's backing store; callers must not mutate it.
func (b *Buffer) Events() []Event { return b.events }

// Multi fans one event stream out to several recorders.
type Multi []Recorder

// Record implements Recorder.
func (m Multi) Record(ev Event) {
	for _, r := range m {
		r.Record(ev)
	}
}
