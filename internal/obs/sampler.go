// Virtual-time metric sampling: a registry of gauges polled by a single
// des.Ticker into metrics.TimeSeries, grouped into named CSV exports
// (one column per gauge, one row per sample period).
package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/metrics"
)

// Gauge reads one instantaneous metric value.
type Gauge func() float64

// samplerGroup is one CSV export: an ordered set of columns.
type samplerGroup struct {
	name   string
	cols   []string
	gauges []Gauge
	series []*metrics.TimeSeries
}

// Sampler polls registered gauges at a fixed virtual-time period.
// Registration order fixes column order, so exports are deterministic.
type Sampler struct {
	period  des.Time
	groups  []*samplerGroup
	byName  map[string]*samplerGroup
	ticker  *des.Ticker
	samples int
}

// NewSampler returns a sampler with the given sampling period (seconds of
// virtual time); the period must be positive.
func NewSampler(period des.Time) *Sampler {
	if period <= 0 {
		panic("obs: non-positive sample period")
	}
	return &Sampler{period: period, byName: make(map[string]*samplerGroup)}
}

// Period returns the sampling period.
func (s *Sampler) Period() des.Time { return s.period }

// Samples returns the number of sampling ticks taken so far.
func (s *Sampler) Samples() int { return s.samples }

// Register adds a gauge as column col of the named export group. Groups
// and columns are created on first use.
func (s *Sampler) Register(group, col string, g Gauge) {
	grp := s.byName[group]
	if grp == nil {
		grp = &samplerGroup{name: group}
		s.byName[group] = grp
		s.groups = append(s.groups, grp)
	}
	grp.cols = append(grp.cols, col)
	grp.gauges = append(grp.gauges, g)
	grp.series = append(grp.series, metrics.NewTimeSeries(float64(s.period)))
}

// Groups returns the group names in registration order.
func (s *Sampler) Groups() []string {
	out := make([]string, len(s.groups))
	for i, g := range s.groups {
		out[i] = g.name
	}
	return out
}

// Series returns the time series behind one column, or nil when unknown.
func (s *Sampler) Series(group, col string) *metrics.TimeSeries {
	grp := s.byName[group]
	if grp == nil {
		return nil
	}
	for i, c := range grp.cols {
		if c == col {
			return grp.series[i]
		}
	}
	return nil
}

// Start begins sampling on kernel k; the first sample is taken one period
// in. Start may be called once.
func (s *Sampler) Start(k *des.Kernel) {
	if s.ticker != nil {
		panic("obs: Sampler.Start called twice")
	}
	s.ticker = k.EveryNamed(s.period, "obs-sample", func(k *des.Kernel) {
		s.sample(k.Now())
	})
}

// Stop halts sampling.
func (s *Sampler) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
	}
}

func (s *Sampler) sample(at des.Time) {
	s.samples++
	for _, grp := range s.groups {
		for i, g := range grp.gauges {
			grp.series[i].Add(float64(at), g())
		}
	}
}

// WriteCSV writes one group as CSV: a time_s column followed by one column
// per registered gauge, one row per sample period. Periods in which no
// sample landed (only the zeroth, under normal ticking) are skipped.
func (s *Sampler) WriteCSV(group string, w io.Writer) error {
	grp := s.byName[group]
	if grp == nil {
		return fmt.Errorf("obs: unknown sampler group %q", group)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("time_s"); err != nil {
		return err
	}
	for _, c := range grp.cols {
		if _, err := bw.WriteString("," + csvCell(c)); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	rows := 0
	for _, ts := range grp.series {
		if ts.Len() > rows {
			rows = ts.Len()
		}
	}
	line := make([]byte, 0, 128)
	for i := 0; i < rows; i++ {
		if grp.series[0].Count(i) == 0 {
			continue
		}
		line = strconv.AppendFloat(line[:0], float64(i)*float64(s.period), 'g', -1, 64)
		for _, ts := range grp.series {
			line = append(line, ',')
			line = strconv.AppendFloat(line, ts.Mean(i), 'g', -1, 64)
		}
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// csvCell quotes a CSV cell when needed.
func csvCell(s string) string {
	for _, r := range s {
		if r == ',' || r == '"' || r == '\n' {
			return `"` + quoteEscape(s) + `"`
		}
	}
	return s
}

func quoteEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			out = append(out, '"')
		}
		out = append(out, s[i])
	}
	return string(out)
}
