// JSONL decoding: the inverse of Buffer.WriteJSONL, so exported event
// streams can be reloaded for post-hoc analysis (internal/analysis) and
// cross-run diffing (cmd/tgdiff). Args are decoded with their recorded
// order preserved and integers kept integral, so decode(encode(events))
// re-encodes byte-identically — the regression differ depends on that.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/tgsim/tgmod/internal/des"
)

// jsonlEnvelope mirrors one WriteJSONL line, args left raw so their key
// order survives.
type jsonlEnvelope struct {
	T     float64         `json:"t"`
	Ph    string          `json:"ph"`
	Cat   string          `json:"cat"`
	Name  string          `json:"name"`
	Track string          `json:"track"`
	ID    int64           `json:"id"`
	Args  json.RawMessage `json:"args"`
}

// decodeArgs walks a JSON object with a token decoder, preserving key order.
// Values are the scalar types Record accepts: string, bool, int64, float64.
func decodeArgs(raw json.RawMessage) ([]KV, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, fmt.Errorf("args is not an object")
	}
	var kvs []KV
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		key, ok := keyTok.(string)
		if !ok {
			return nil, fmt.Errorf("non-string arg key %v", keyTok)
		}
		valTok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		var v any
		switch x := valTok.(type) {
		case json.Number:
			if i, err := x.Int64(); err == nil {
				v = i
			} else if f, err := x.Float64(); err == nil {
				v = f
			} else {
				return nil, fmt.Errorf("unparsable number %q", x.String())
			}
		case string:
			v = x
		case bool:
			v = x
		case nil:
			v = ""
		default:
			return nil, fmt.Errorf("arg %q has non-scalar value", key)
		}
		kvs = append(kvs, KV{Key: key, Value: v})
	}
	return kvs, nil
}

// ReadJSONL parses an event stream previously written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var env jsonlEnvelope
		if err := json.Unmarshal(line, &env); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", lineNo, err)
		}
		if len(env.Ph) != 1 {
			return nil, fmt.Errorf("obs: jsonl line %d: bad phase %q", lineNo, env.Ph)
		}
		ev := Event{
			At:    des.Time(env.T),
			Phase: env.Ph[0],
			Cat:   env.Cat,
			Name:  env.Name,
			Track: env.Track,
			ID:    env.ID,
		}
		if len(env.Args) > 0 {
			args, err := decodeArgs(env.Args)
			if err != nil {
				return nil, fmt.Errorf("obs: jsonl line %d: %w", lineNo, err)
			}
			ev.Args = args
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: jsonl: %w", err)
	}
	return out, nil
}
