package users

import (
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/simrand"
)

func TestRoleString(t *testing.T) {
	names := map[Role]string{
		RolePI: "pi", RoleResearcher: "researcher", RoleStudent: "student",
		RoleGatewayEndUser: "gateway-end-user", Role(9): "role(9)",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("Role(%d) = %q, want %q", int(r), r.String(), want)
		}
	}
}

func TestFieldsConsistent(t *testing.T) {
	if len(Fields) != len(FieldWeights) {
		t.Fatalf("Fields (%d) and FieldWeights (%d) length mismatch", len(Fields), len(FieldWeights))
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Synthesize(cfg, simrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(cfg, simrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Users) != len(b.Users) {
		t.Fatalf("non-deterministic population size: %d vs %d", len(a.Users), len(b.Users))
	}
	for i := range a.Users {
		if a.Users[i].Name != b.Users[i].Name || a.Users[i].Activity != b.Users[i].Activity {
			t.Fatalf("user %d differs between runs", i)
		}
	}
}

func TestSynthesizeStructure(t *testing.T) {
	cfg := DefaultConfig()
	p, err := Synthesize(cfg, simrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Projects) != cfg.Projects {
		t.Errorf("projects = %d, want %d", len(p.Projects), cfg.Projects)
	}
	if len(p.Users) < cfg.Projects {
		t.Errorf("users (%d) fewer than projects (%d)", len(p.Users), cfg.Projects)
	}
	for _, proj := range p.Projects {
		if !strings.HasPrefix(proj, "TG-") {
			t.Errorf("project id %q lacks TG- prefix", proj)
		}
		team := p.Team(proj)
		if len(team) == 0 {
			t.Errorf("project %s has no team", proj)
		}
		pi, ok := p.PI(proj)
		if !ok || pi.Role != RolePI {
			t.Errorf("project %s has no PI", proj)
		}
		for _, u := range team {
			if u.Project != proj {
				t.Errorf("user %s in wrong team", u.Name)
			}
			if u.Activity < 1 {
				t.Errorf("activity %v < Pareto minimum 1", u.Activity)
			}
		}
	}
	if _, ok := p.PI("no-such-project"); ok {
		t.Error("PI of missing project found")
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := Synthesize(Config{Projects: 0, ActivityAlpha: 1}, simrand.New(1)); err == nil {
		t.Error("zero projects accepted")
	}
	if _, err := Synthesize(Config{Projects: 5, ActivityAlpha: 0}, simrand.New(1)); err == nil {
		t.Error("zero alpha accepted")
	}
}

func TestWeightedPickFavorsActive(t *testing.T) {
	heavy := &User{Name: "heavy", Activity: 100}
	light := &User{Name: "light", Activity: 1}
	w, err := NewWeightedPick([]*User{heavy, light})
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(3)
	heavyCount := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		if w.Pick(rng) == heavy {
			heavyCount++
		}
	}
	frac := float64(heavyCount) / draws
	if frac < 0.97 || frac > 1.0 {
		t.Errorf("heavy user picked %v of draws, want ~0.99", frac)
	}
	if _, err := NewWeightedPick(nil); err == nil {
		t.Error("empty user set accepted")
	}
}

func TestTopShare(t *testing.T) {
	us := []*User{
		{Activity: 70}, {Activity: 10}, {Activity: 10}, {Activity: 10},
	}
	if got := TopShare(us, 1); got != 0.7 {
		t.Errorf("TopShare(1) = %v, want 0.7", got)
	}
	if got := TopShare(us, 4); got != 1 {
		t.Errorf("TopShare(all) = %v, want 1", got)
	}
	if got := TopShare(us, 100); got != 1 {
		t.Errorf("TopShare(k>n) = %v, want 1", got)
	}
	if TopShare(nil, 1) != 0 || TopShare(us, 0) != 0 {
		t.Error("degenerate TopShare not 0")
	}
}

func TestFieldCode(t *testing.T) {
	cases := map[string]string{
		"molecular-biosciences": "MBX",
		"physics":               "PXX",
		"earth-sciences":        "ESX",
	}
	for in, want := range cases {
		if got := fieldCode(in); got != want {
			t.Errorf("fieldCode(%q) = %q, want %q", in, got, want)
		}
	}
}
