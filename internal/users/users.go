// Package users synthesizes the federation's user population: researchers
// and their projects across fields of science, plus the much larger cohort
// of gateway end users. Population parameters shape who submits what in the
// workload layer; usage concentration across users is one of the measured
// quantities.
package users

import (
	"fmt"
	"sort"

	"github.com/tgsim/tgmod/internal/simrand"
)

// Fields of science used for allocations, weighted roughly like a national
// HPC program: a few compute-heavy disciplines dominate NU consumption.
var Fields = []string{
	"molecular-biosciences",
	"physics",
	"astronomical-sciences",
	"materials-research",
	"atmospheric-sciences",
	"chemistry",
	"earth-sciences",
	"engineering",
	"computer-science",
	"social-sciences",
}

// FieldWeights gives the relative share of projects per field.
var FieldWeights = []float64{18, 16, 14, 13, 10, 10, 7, 6, 4, 2}

// Role describes how a user primarily works.
type Role int

// User roles.
const (
	RolePI Role = iota
	RoleResearcher
	RoleStudent
	RoleGatewayEndUser
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RolePI:
		return "pi"
	case RoleResearcher:
		return "researcher"
	case RoleStudent:
		return "student"
	case RoleGatewayEndUser:
		return "gateway-end-user"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// User is a member of the simulated community.
type User struct {
	Name    string
	Role    Role
	Project string
	Field   string
	// Activity scales a user's submission rate relative to the cohort
	// mean; drawn heavy-tailed so a few users dominate, as observed in
	// production accounting.
	Activity float64
}

// Population is the synthesized community.
type Population struct {
	Users    []*User
	Projects []string
	byProj   map[string][]*User
}

// Config controls population synthesis.
type Config struct {
	Projects       int     // number of funded projects
	UsersPerProjMu float64 // lognormal mu of users per project (≥0)
	UsersPerProjSd float64 // lognormal sigma
	ActivityAlpha  float64 // Pareto tail index for activity (smaller = heavier)
}

// DefaultConfig matches a mid-size federation: a few hundred projects with
// heavy-tailed team sizes.
func DefaultConfig() Config {
	return Config{Projects: 200, UsersPerProjMu: 1.0, UsersPerProjSd: 0.8, ActivityAlpha: 1.5}
}

// Synthesize builds a deterministic population from the stream.
func Synthesize(cfg Config, rng *simrand.Stream) (*Population, error) {
	if cfg.Projects <= 0 {
		return nil, fmt.Errorf("users: non-positive project count")
	}
	if cfg.ActivityAlpha <= 0 {
		return nil, fmt.Errorf("users: non-positive activity alpha")
	}
	fieldPick := simrand.NewEmpirical(FieldWeights)
	p := &Population{byProj: make(map[string][]*User)}
	for i := 0; i < cfg.Projects; i++ {
		proj := fmt.Sprintf("TG-%s%04d", fieldCode(Fields[fieldPick.Sample(rng)]), i)
		field := Fields[fieldPick.Sample(rng)]
		p.Projects = append(p.Projects, proj)
		// Team size: PI + lognormal extras.
		extras := int(rng.LogNormal(cfg.UsersPerProjMu, cfg.UsersPerProjSd))
		if extras > 50 {
			extras = 50
		}
		team := 1 + extras
		for m := 0; m < team; m++ {
			role := RoleResearcher
			if m == 0 {
				role = RolePI
			} else if rng.Bool(0.4) {
				role = RoleStudent
			}
			u := &User{
				Name:     fmt.Sprintf("u%04d_%02d", i, m),
				Role:     role,
				Project:  proj,
				Field:    field,
				Activity: rng.Pareto(1, cfg.ActivityAlpha),
			}
			p.Users = append(p.Users, u)
			p.byProj[proj] = append(p.byProj[proj], u)
		}
	}
	return p, nil
}

// fieldCode compresses a field name into a short project-prefix code.
func fieldCode(field string) string {
	code := ""
	up := func(b byte) byte {
		if b >= 'a' && b <= 'z' {
			return b - 'a' + 'A'
		}
		return b
	}
	start := true
	for i := 0; i < len(field) && len(code) < 3; i++ {
		if field[i] == '-' {
			start = true
			continue
		}
		if start {
			code += string(up(field[i]))
			start = false
		}
	}
	for len(code) < 3 {
		code += "X"
	}
	return code
}

// Team returns a project's users.
func (p *Population) Team(project string) []*User { return p.byProj[project] }

// PI returns a project's principal investigator.
func (p *Population) PI(project string) (*User, bool) {
	for _, u := range p.byProj[project] {
		if u.Role == RolePI {
			return u, true
		}
	}
	return nil, false
}

// WeightedPick draws a user with probability proportional to activity,
// using the provided stream. The cumulative weights are built once.
type WeightedPick struct {
	users []*User
	emp   *simrand.Empirical
}

// NewWeightedPick prepares an activity-weighted sampler over the users.
func NewWeightedPick(users []*User) (*WeightedPick, error) {
	if len(users) == 0 {
		return nil, fmt.Errorf("users: empty user set")
	}
	w := make([]float64, len(users))
	for i, u := range users {
		w[i] = u.Activity
	}
	return &WeightedPick{users: users, emp: simrand.NewEmpirical(w)}, nil
}

// Pick draws one user.
func (w *WeightedPick) Pick(rng *simrand.Stream) *User {
	return w.users[w.emp.Sample(rng)]
}

// TopShare returns the fraction of total activity held by the top k users —
// a quick concentration diagnostic.
func TopShare(us []*User, k int) float64 {
	if len(us) == 0 || k <= 0 {
		return 0
	}
	acts := make([]float64, len(us))
	total := 0.0
	for i, u := range us {
		acts[i] = u.Activity
		total += u.Activity
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(acts)))
	if k > len(acts) {
		k = len(acts)
	}
	top := 0.0
	for _, a := range acts[:k] {
		top += a
	}
	if total == 0 {
		return 0
	}
	return top / total
}
