package scenario

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/faults"
	"github.com/tgsim/tgmod/internal/telemetry"
)

func faultConfig(seed uint64) Config {
	cfg := smallConfig(seed)
	fc := faults.DefaultConfig()
	fc.Intensity = 3 // a week is short; fail often enough to exercise every path
	cfg.Faults = fc
	cfg.CheckpointRestart = true
	return cfg
}

// Two same-seed fault-enabled runs must agree on every observable output:
// the accounting records, the injector's stats, and the full OpenMetrics
// exposition. This is the in-process version of the CI chaos-determinism
// gate (two tgsim -faults runs diffed with tgdiff).
func TestFaultRunDeterministic(t *testing.T) {
	run := func() (*Result, []byte) {
		reg := telemetry.New()
		cfg := faultConfig(7)
		cfg.Observers = append(cfg.Observers, LiveTelemetry(reg))
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.WriteOpenMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	a, expoA := run()
	b, expoB := run()

	if sa, sb := a.Faults.Stats(), b.Faults.Stats(); sa != sb {
		t.Fatalf("fault stats differ across same-seed runs:\n%+v\n%+v", sa, sb)
	}
	ja, jb := a.Central.Jobs(), b.Central.Jobs()
	if len(ja) != len(jb) {
		t.Fatalf("job counts differ: %d vs %d", len(ja), len(jb))
	}
	for i := range ja {
		if ja[i] != jb[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, ja[i], jb[i])
		}
	}
	if !bytes.Equal(expoA, expoB) {
		t.Fatal("OpenMetrics expositions differ across same-seed fault runs")
	}
	if a.Faults.Stats().MachineCrashes == 0 {
		t.Fatal("determinism test vacuous: no crashes fired in a week at 3x intensity")
	}
}

func TestFaultsFireAndChargeWaste(t *testing.T) {
	reg := telemetry.New()
	cfg := faultConfig(11)
	cfg.Observers = append(cfg.Observers, LiveTelemetry(reg))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Faults.Stats()
	if st.MachineCrashes == 0 || st.GatewayFlaps == 0 {
		t.Fatalf("fault mix too quiet: %+v", st)
	}
	if st.CrashKills > 0 && st.Failovers+st.Requeues != st.CrashKills {
		t.Errorf("kills %d not conserved by failovers %d + requeues %d",
			st.CrashKills, st.Failovers, st.Requeues)
	}
	// Kills must surface as wasted work in the accounting stream.
	var wasted float64
	for _, r := range res.Central.Jobs() {
		if r.WastedNUs < 0 || r.WastedCoreSeconds < 0 {
			t.Fatalf("negative waste in record %+v", r)
		}
		wasted += r.WastedNUs
	}
	if st.CrashKills+st.NodeKills > 0 && wasted == 0 {
		t.Error("jobs were killed but no wasted NUs reached accounting")
	}
	// The accounting invariant holds under faults: bank charges == central NUs.
	if diff := res.Bank.TotalUsed() - res.Central.TotalNUs(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("bank/accounting mismatch under faults: %v vs %v",
			res.Bank.TotalUsed(), res.Central.TotalNUs())
	}
	// Fault families appear in the exposition on fault-enabled runs.
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	for _, fam := range []string{"tg_fault_events_total", "tg_retry_attempts_total"} {
		if !strings.Contains(expo, fam) {
			t.Errorf("exposition missing %s on a fault-enabled run", fam)
		}
	}
}

// A fault-free run must not register fault families or build an injector:
// its exposition and behavior stay byte-identical to pre-fault builds.
func TestFaultsDisabledLeaveNoTrace(t *testing.T) {
	reg := telemetry.New()
	cfg := smallConfig(5)
	cfg.Observers = append(cfg.Observers, LiveTelemetry(reg))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != nil {
		t.Error("fault-free run built an injector")
	}
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	for _, fam := range []string{"tg_fault_", "tg_retry_"} {
		if strings.Contains(expo, fam) {
			t.Errorf("fault-free exposition contains %s family", fam)
		}
	}
	for _, r := range res.Central.Jobs() {
		if r.WastedCoreSeconds != 0 || r.WastedNUs != 0 {
			t.Fatalf("fault-free run charged waste: %+v", r)
		}
	}
}

func TestWithFaultOptions(t *testing.T) {
	cfg := New(1, WithFaultIntensity(2), WithCheckpointRestart(600, 30))
	if !cfg.Faults.Enabled || cfg.Faults.Intensity != 2 {
		t.Errorf("WithFaultIntensity: %+v", cfg.Faults)
	}
	if !cfg.CheckpointRestart || cfg.CheckpointInterval != 600 || cfg.CheckpointOverhead != 30 {
		t.Errorf("WithCheckpointRestart: %+v", cfg)
	}
	fc := faults.DefaultConfig()
	fc.MachineMTBF = 123
	cfg = New(1, WithFaults(fc))
	if cfg.Faults.MachineMTBF != 123 {
		t.Errorf("WithFaults did not apply: %+v", cfg.Faults)
	}
}
