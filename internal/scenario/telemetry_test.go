package scenario

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/obs"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// telemetryRun executes a small scenario with live telemetry on and returns
// the result, the final OpenMetrics exposition, and the final snapshot.
func telemetryRun(t *testing.T, seed uint64) (*Result, []byte, *telemetry.Snapshot) {
	t.Helper()
	cfg := smallConfig(seed)
	reg := telemetry.New()
	var last *telemetry.Snapshot
	cfg.Observe = Observe{
		Recorder: obs.NewBuffer(),
		Registry: reg,
		Snapshots: func(s *telemetry.Snapshot) {
			last = s
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var om bytes.Buffer
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	return res, om.Bytes(), last
}

func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	// The acceptance bound of the telemetry layer: a same-seed run with the
	// registry and snapshot publisher installed produces a byte-identical
	// accounting database and Chrome trace.
	plain, err := Run(smallConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	instrumented, _, _ := telemetryRun(t, 21)

	var a, b bytes.Buffer
	if err := plain.Central.Export(&a); err != nil {
		t.Fatal(err)
	}
	if err := instrumented.Central.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("telemetry perturbed the accounting export (%d vs %d bytes)", a.Len(), b.Len())
	}
	if plain.Kernel.Executed() != instrumented.Kernel.Executed() {
		t.Errorf("event counts differ: plain %d, instrumented %d",
			plain.Kernel.Executed(), instrumented.Kernel.Executed())
	}
}

func TestTelemetryTraceByteIdenticalWithRegistry(t *testing.T) {
	// Span tracing composes with telemetry through the wrapped seams: the
	// Chrome trace with a registry installed matches the trace without one.
	_, noReg := observedRun(t, 13)

	cfg := smallConfig(13)
	cfg.MaintenanceEvery = 3 * des.Day
	cfg.MaintenanceLength = 4 * des.Hour
	buf := obs.NewBuffer()
	cfg.Observe = Observe{Recorder: buf, SamplePeriod: des.Hour, Profile: true,
		Registry: telemetry.New(), Snapshots: func(*telemetry.Snapshot) {}}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var withReg bytes.Buffer
	if err := buf.WriteChromeTrace(&withReg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(noReg, withReg.Bytes()) {
		t.Errorf("registry install changed the Chrome trace (%d vs %d bytes)",
			len(noReg), withReg.Len())
	}
}

func TestFinalExpositionStableAcrossRuns(t *testing.T) {
	_, a, _ := telemetryRun(t, 5)
	_, b, _ := telemetryRun(t, 5)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed final /metrics differ (%d vs %d bytes)", len(a), len(b))
	}
	if !bytes.HasSuffix(a, []byte("# EOF\n")) {
		t.Error("exposition missing # EOF terminator")
	}
}

func TestTelemetryFamiliesPopulated(t *testing.T) {
	res, om, last := telemetryRun(t, 9)
	text := string(om)
	for _, fam := range []string{
		"tg_jobs_total", "tg_queue_depth", "tg_running_jobs", "tg_utilization",
		"tg_queue_wait_seconds", "tg_sched_decisions_total",
		"tg_sched_queue_age_seconds", "tg_sched_backfill_skips",
		"tg_sched_age_escalations", "tg_sched_gang_holds", "tg_sched_gang_starts",
		"tg_jobs_by_modality_total", "tg_nus_by_modality_total",
		"tg_transfers_completed_total", "tg_transfer_duration_seconds",
		"tg_gateway_requests_total", "tg_kernel_events", "tg_jobs_finished",
		"tg_accounting_flushes_total", "tg_accounting_job_records_total",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("exposition missing family %s", fam)
		}
	}
	// The per-machine families carry one series per federation machine.
	for _, m := range res.Federation.Machines() {
		if !strings.Contains(text, `tg_queue_depth{machine="`+m.ID+`"}`) {
			t.Errorf("no tg_queue_depth series for machine %s", m.ID)
		}
	}
	// The final snapshot agrees with the run result.
	if last == nil {
		t.Fatal("no final snapshot published")
	}
	if !last.Done || last.Progress != 1 {
		t.Errorf("final snapshot not done: %+v", last)
	}
	if last.JobsFinished != res.Finished {
		t.Errorf("snapshot finished %d, result %d", last.JobsFinished, res.Finished)
	}
	if last.Events != res.Kernel.Executed() {
		t.Errorf("snapshot events %d, kernel %d", last.Events, res.Kernel.Executed())
	}
	if len(last.Machines) != len(res.Federation.Machines()) {
		t.Errorf("snapshot has %d machines, federation %d",
			len(last.Machines), len(res.Federation.Machines()))
	}
}

func TestObsBufferCapBoundsMemory(t *testing.T) {
	cfg := smallConfig(17)
	buf := obs.NewBufferCap(500)
	reg := telemetry.New()
	cfg.Observe = Observe{Recorder: buf, Registry: reg}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 500 {
		t.Errorf("capped buffer holds %d events, want exactly 500", buf.Len())
	}
	if buf.Dropped() == 0 {
		t.Error("a busy week dropped no events at cap 500")
	}
	// The drop counter is surfaced as a metric.
	var om bytes.Buffer
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(om.String(), "tg_obs_dropped_events ") {
		t.Error("tg_obs_dropped_events not exposed")
	}
	if !strings.Contains(om.String(), "tg_obs_buffer_events 500") {
		t.Errorf("tg_obs_buffer_events not 500 in exposition")
	}
}
