package scenario

import (
	"bytes"
	"testing"

	"github.com/tgsim/tgmod/internal/perf"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// TestPhaseProfilingDoesNotPerturbRun is the perf layer's zero-perturbation
// bound: a same-seed run with the phase profiler, runtime sampler, and live
// registry all installed produces a byte-identical accounting export and
// OpenMetrics exposition against a run with telemetry only — and the
// deterministic exposition never contains a tg_runtime_ series.
func TestPhaseProfilingDoesNotPerturbRun(t *testing.T) {
	run := func(profile bool) (*Result, []byte) {
		cfg := smallConfig(23)
		reg := telemetry.New()
		cfg.Observe = Observe{Registry: reg}
		if profile {
			sampler := perf.NewRuntimeSampler()
			cfg.Observers = append(cfg.Observers,
				ProfilePhases(perf.New(nil)),
				DecorateSnapshots(func(s *telemetry.Snapshot) {
					sampler.Sample(s.Events)
					snap := sampler.Snap()
					s.Runtime = &snap
				}),
			)
			cfg.Observe.Snapshots = func(*telemetry.Snapshot) {}
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var om bytes.Buffer
		if err := reg.WriteOpenMetrics(&om); err != nil {
			t.Fatal(err)
		}
		return res, om.Bytes()
	}

	plain, plainOM := run(false)
	profiled, profOM := run(true)

	if !bytes.Equal(plainOM, profOM) {
		t.Errorf("phase profiling changed the deterministic exposition (%d vs %d bytes)",
			len(plainOM), len(profOM))
	}
	if bytes.Contains(profOM, []byte("tg_runtime_")) {
		t.Error("tg_runtime_ series leaked into the deterministic registry")
	}
	if plain.Kernel.Executed() != profiled.Kernel.Executed() {
		t.Errorf("event counts differ: plain %d, profiled %d",
			plain.Kernel.Executed(), profiled.Kernel.Executed())
	}
	var a, b bytes.Buffer
	if err := plain.Central.Export(&a); err != nil {
		t.Fatal(err)
	}
	if err := profiled.Central.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("phase profiling perturbed the accounting export (%d vs %d bytes)",
			a.Len(), b.Len())
	}
}

// TestPhaseProfileAttribution: a real scenario run attributes wall time to
// every event-loop phase, charges the accounting flush, and lands the
// profiler in the Result.
func TestPhaseProfileAttribution(t *testing.T) {
	cfg := smallConfig(31)
	p := perf.New(nil)
	cfg.Observers = append(cfg.Observers, ProfilePhases(p))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases != p {
		t.Fatal("Result.Phases is not the attached profiler")
	}
	// PhaseSetup stays zero here by design: scenario assembly schedules its
	// initial events before the tracer seam is installed, so only the
	// event-loop and region phases accumulate.
	for _, ph := range []perf.Phase{perf.PhaseFEL, perf.PhaseHandler, perf.PhaseAccounting} {
		if p.PhaseSeconds(ph) <= 0 {
			t.Errorf("phase %s attributed no wall time", ph)
		}
	}
	wall, loop := p.WallSeconds(), p.LoopSeconds()
	if wall <= 0 {
		t.Fatal("no wall span measured")
	}
	// Real handlers are sub-microsecond, so clock-read overhead inflates
	// the phase sum; the identity still has to hold loosely.
	if loop < 0.5*wall || loop > 2.0*wall {
		t.Errorf("loop phase sum %.6fs wildly off wall %.6fs", loop, wall)
	}
	if p.Events() != res.Kernel.Executed() {
		t.Errorf("profiled %d events, kernel executed %d", p.Events(), res.Kernel.Executed())
	}
}
