// Live-telemetry wiring: multiplexes the existing observability seams
// (scheduler listeners and probes, fabric and gateway hooks, the
// accounting flush, kernel state) into a telemetry.Registry, and builds
// the progress snapshots the run console serves. Everything here is
// conditional on Observe.Registry / Observe.Snapshots — an unconfigured
// run installs none of it — and nothing here consumes randomness or
// mutates simulation state, which is what keeps instrumented and
// uninstrumented same-seed runs byte-identical.
package scenario

import (
	"github.com/tgsim/tgmod/internal/alloc"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/gateway"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/network"
	"github.com/tgsim/tgmod/internal/obs"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// telemetryHooks carries the counters that instrumentation points outside
// installTelemetry (the accounting flush) increment. All methods are
// nil-safe so call sites need no registry guards.
type telemetryHooks struct {
	flushes   *telemetry.Counter
	flushJobs *telemetry.Counter
	wireBytes *telemetry.Counter
}

// flushed records one accounting flush of jobs records over wireLen bytes.
func (h *telemetryHooks) flushed(jobs, wireLen int) {
	if h == nil {
		return
	}
	h.flushes.Inc()
	h.flushJobs.Add(float64(jobs))
	h.wireBytes.Add(float64(wireLen))
}

// installTelemetry registers the standard metric families and hooks them
// into the assembled simulation. Existing seam handlers (span recorders)
// are wrapped, not replaced, so tracing and telemetry compose.
func installTelemetry(reg *telemetry.Registry, k *des.Kernel, fed *grid.Federation,
	scheds map[string]*sched.Scheduler, fabric *network.Fabric,
	gateways map[string]*gateway.Gateway, bank *alloc.Bank,
	finished *int, rec obs.Recorder) *telemetryHooks {

	// Per-machine gauges read scheduler state on demand at exposition time.
	queueDepth := reg.Gauge("tg_queue_depth", "Jobs waiting in the batch queue.", "machine")
	runningJobs := reg.Gauge("tg_running_jobs", "Jobs currently executing.", "machine")
	utilization := reg.Gauge("tg_utilization", "Instantaneous fraction of batch cores busy.", "machine")

	// Lifecycle counters and queue-wait histograms, fed by the listener seam.
	jobsC := reg.Counter("tg_jobs_total", "Job lifecycle transitions.", "machine", "event")
	waitH := reg.HistogramVec("tg_queue_wait_seconds", "Queue wait from submission to start.", "machine")
	decC := reg.Counter("tg_sched_decisions_total", "Scheduler-internal decisions.", "machine", "kind")
	modJobs := reg.Counter("tg_jobs_by_modality_total", "Finished jobs by ground-truth modality.", "modality")
	modNUs := reg.Counter("tg_nus_by_modality_total", "Charged NUs by ground-truth modality.", "modality")

	// Per-job modality counters are resolved once for the whole run and
	// shared by every machine listener: With() joins and hashes its label
	// values on each call, and EventFinished fires for every job — the
	// hottest telemetry path at scale. The taxonomy is closed, so batching
	// the lookups into one map walk per job is free of missed labels.
	type modalityCounters struct{ jobs, nus *telemetry.Counter }
	modCounters := make(map[job.Modality]modalityCounters, len(job.AllModalities)+1)
	for _, mod := range append(append([]job.Modality(nil), job.AllModalities...), job.ModUnknown) {
		modCounters[mod] = modalityCounters{
			jobs: modJobs.With(string(mod)),
			nus:  modNUs.With(string(mod)),
		}
	}

	// Policy-engine state: age of the longest-waiting queued job, plus the
	// aging/gang counters engines report through Stats().Engine. Legacy
	// engines report zeros; the series exist either way so dashboards need
	// no per-policy wiring.
	queueAge := reg.Gauge("tg_sched_queue_age_seconds", "Age of the oldest queued job.", "machine")
	skipsG := reg.Gauge("tg_sched_backfill_skips", "Backfill skip charges accumulated by the priority engine.", "machine")
	escalG := reg.Gauge("tg_sched_age_escalations", "Jobs escalated past the max-skip starvation bound.", "machine")
	holdsG := reg.Gauge("tg_sched_gang_holds", "Assembly holds placed by the gang engine.", "machine")
	gangsG := reg.Gauge("tg_sched_gang_starts", "All-or-nothing gang launches.", "machine")

	for _, m := range fed.Machines() {
		m := m
		s := scheds[m.ID]
		cores := float64(m.BatchCores())
		queueDepth.Func(func() float64 { return float64(s.QueueLen()) }, m.ID)
		queueAge.Func(func() float64 { return float64(s.OldestQueuedAge()) }, m.ID)
		skipsG.Func(func() float64 { return float64(s.Stats().Engine.Skips) }, m.ID)
		escalG.Func(func() float64 { return float64(s.Stats().Engine.Escalations) }, m.ID)
		holdsG.Func(func() float64 { return float64(s.Stats().Engine.GangHolds) }, m.ID)
		gangsG.Func(func() float64 { return float64(s.Stats().Engine.GangStarts) }, m.ID)
		runningJobs.Func(func() float64 { return float64(s.RunningCount()) }, m.ID)
		utilization.Func(func() float64 {
			if cores == 0 {
				return 0
			}
			return (cores - float64(s.FreeBatchCores())) / cores
		}, m.ID)

		// Hot-path instruments are resolved once, outside the listener.
		queued := jobsC.With(m.ID, "queued")
		started := jobsC.With(m.ID, "started")
		finishedC := jobsC.With(m.ID, "finished")
		preempted := jobsC.With(m.ID, "preempted")
		rejected := jobsC.With(m.ID, "rejected")
		wait := waitH.With(m.ID)
		s.Subscribe(func(e sched.Event) {
			switch e.Kind {
			case sched.EventQueued:
				queued.Inc()
			case sched.EventStarted:
				started.Inc()
				wait.Observe(float64(e.Job.WaitTime()))
			case sched.EventFinished:
				finishedC.Inc()
				mod := e.Job.Truth.Modality
				if mod == "" {
					mod = job.ModUnknown
				}
				mc := modCounters[mod]
				mc.jobs.Inc()
				mc.nus.Add(m.NUs(e.Job.CoreSeconds()))
			case sched.EventPreempted, sched.EventKilled:
				// Unplanned kills ride the preempted series: the label set is
				// resolved eagerly for every machine, so a separate "killed"
				// label would change fault-free exposition.
				preempted.Inc()
			case sched.EventRejected:
				rejected.Inc()
			}
		})

		decisions := map[string]*telemetry.Counter{
			sched.ProbeBackfill:      decC.With(m.ID, sched.ProbeBackfill),
			sched.ProbePreemptVictim: decC.With(m.ID, sched.ProbePreemptVictim),
			sched.ProbeReservation:   decC.With(m.ID, sched.ProbeReservation),
			sched.ProbeOutageBegin:   decC.With(m.ID, sched.ProbeOutageBegin),
			sched.ProbeOutageEnd:     decC.With(m.ID, sched.ProbeOutageEnd),
		}
		prevProbe := s.Probe
		s.Probe = func(kind string, j *job.Job) {
			if prevProbe != nil {
				prevProbe(kind, j)
			}
			if c := decisions[kind]; c != nil {
				c.Inc()
				return
			}
			// Kinds outside the pre-resolved set (the fault-layer probes:
			// crash, node-fail, and their kills) register their series the
			// first time they fire, so fault-free exposition is unchanged.
			c := decC.With(m.ID, kind)
			decisions[kind] = c
			c.Inc()
		}
	}

	// WAN transfers, via the fabric hooks.
	xferStart := reg.Counter("tg_transfers_started_total", "Transfers accepted by the fabric.").With()
	xferDone := reg.Counter("tg_transfers_completed_total", "Transfers fully delivered.").With()
	xferBytes := reg.Counter("tg_transfer_bytes_total", "Bytes delivered by completed transfers.").With()
	xferDur := reg.HistogramVec("tg_transfer_duration_seconds", "Transfer duration, acceptance to last byte.").With()
	reg.Gauge("tg_active_transfers", "Transfers currently in flight.").Func(func() float64 {
		return float64(fabric.Active())
	})
	prevStart := fabric.OnStart
	fabric.OnStart = func(tr *network.Transfer) {
		if prevStart != nil {
			prevStart(tr)
		}
		xferStart.Inc()
	}
	prevDone := fabric.OnComplete
	fabric.OnComplete = func(tr *network.Transfer) {
		if prevDone != nil {
			prevDone(tr)
		}
		xferDone.Inc()
		xferBytes.Add(float64(tr.Bytes))
		xferDur.Observe(float64(tr.Duration()))
	}

	// Gateway requests, split by whether the AAAA attribute fired.
	gwReq := reg.Counter("tg_gateway_requests_total", "Gateway submissions.", "gateway", "attributed")
	for _, gw := range gateways {
		gw := gw
		withAttr := gwReq.With(gw.ID, "yes")
		without := gwReq.With(gw.ID, "no")
		prevReq := gw.OnRequest
		gw.OnRequest = func(endUser string, j *job.Job, attributed bool) {
			if prevReq != nil {
				prevReq(endUser, j, attributed)
			}
			if attributed {
				withAttr.Inc()
			} else {
				without.Inc()
			}
		}
	}

	// Kernel and federation-wide gauges.
	reg.Gauge("tg_kernel_events", "Kernel events executed.").Func(func() float64 {
		return float64(k.Executed())
	})
	reg.Gauge("tg_kernel_pending_events", "Future-event-list size.").Func(func() float64 {
		return float64(k.Pending())
	})
	reg.Gauge("tg_jobs_finished", "Jobs that reached a terminal state.").Func(func() float64 {
		return float64(*finished)
	})
	reg.Gauge("tg_alloc_balance_nus", "Awarded minus charged NUs across all allocations.").Func(func() float64 {
		return bank.TotalAwarded() - bank.TotalUsed()
	})

	// The span recorder multiplexes into the registry: buffer occupancy and
	// the dropped-event count (satellite of the obs.Buffer memory bound).
	if buf, ok := rec.(*obs.Buffer); ok {
		reg.Gauge("tg_obs_buffer_events", "Span events retained by the obs buffer.").Func(func() float64 {
			return float64(buf.Len())
		})
		reg.Gauge("tg_obs_dropped_events", "Span events dropped at the obs buffer cap.").Func(func() float64 {
			return float64(buf.Dropped())
		})
	}

	return &telemetryHooks{
		flushes:   reg.Counter("tg_accounting_flushes_total", "Site-ledger flushes into the central database.").With(),
		flushJobs: reg.Counter("tg_accounting_job_records_total", "Job records flushed to the central database.").With(),
		wireBytes: reg.Counter("tg_accounting_wire_bytes_total", "Serialized accounting bytes shipped over the wire.").With(),
	}
}

// snapshotBuilder returns the deterministic half of run snapshots: sim
// time, progress against the run's end time, and the per-machine view.
// The publisher fills the wall-clock half.
func snapshotBuilder(fed *grid.Federation, scheds map[string]*sched.Scheduler,
	finished *int, endTime des.Time) func(at des.Time, events uint64, pending int) *telemetry.Snapshot {
	machines := fed.Machines()
	return func(at des.Time, events uint64, pending int) *telemetry.Snapshot {
		s := &telemetry.Snapshot{
			SimTime:      float64(at),
			SimTimeHuman: at.String(),
			EndTime:      float64(endTime),
			Events:       events,
			Pending:      pending,
			JobsFinished: *finished,
			Machines:     make([]telemetry.MachineSnap, 0, len(machines)),
		}
		if endTime > 0 {
			s.Progress = float64(at) / float64(endTime)
			if s.Progress > 1 {
				s.Progress = 1
			}
		}
		for _, m := range machines {
			sc := scheds[m.ID]
			cores := float64(m.BatchCores())
			util := 0.0
			if cores > 0 {
				util = (cores - float64(sc.FreeBatchCores())) / cores
			}
			s.Machines = append(s.Machines, telemetry.MachineSnap{
				ID:          m.ID,
				QueueDepth:  sc.QueueLen(),
				Running:     sc.RunningCount(),
				Utilization: util,
			})
		}
		return s
	}
}
