// Fault-layer wiring: assembles the deterministic fault injector into a
// scenario and multiplexes its event stream into the observability and
// telemetry layers. Everything here is conditional on Config.Faults.Enabled
// — a fault-free run constructs no injector, derives no fault streams, and
// registers no tg_fault_*/tg_retry_* families, which is what keeps its
// randomness, event schedule, and exposition byte-identical to pre-fault
// builds.
package scenario

import (
	"sort"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/faults"
	"github.com/tgsim/tgmod/internal/gateway"
	"github.com/tgsim/tgmod/internal/metasched"
	"github.com/tgsim/tgmod/internal/network"
	"github.com/tgsim/tgmod/internal/obs"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// WithFaults enables the fault injector with the given configuration.
// Use faults.DefaultConfig() for the standard unplanned-failure mix and
// scale it with Config.Intensity.
func WithFaults(fc faults.Config) Option {
	return func(c *Config) { c.Faults = fc }
}

// WithFaultIntensity enables the default fault mix at the given intensity
// multiplier (1 = nominal MTBFs; 2 = failures twice as often). The chaos
// experiments sweep this knob.
func WithFaultIntensity(x float64) Option {
	return func(c *Config) {
		fc := faults.DefaultConfig()
		fc.Intensity = x
		c.Faults = fc
	}
}

// WithCheckpointRestart turns on checkpoint/restart at every machine:
// preempted and fault-killed jobs resume from their last completed
// checkpoint instead of from scratch. interval <= 0 keeps the scheduler
// default (15 min); overhead, when positive, dilates runtimes by one
// overhead per completed interval.
func WithCheckpointRestart(interval, overhead des.Time) Option {
	return func(c *Config) {
		c.CheckpointRestart = true
		c.CheckpointInterval = interval
		c.CheckpointOverhead = overhead
	}
}

// buildInjector constructs, wires, and arms the fault injector for an
// assembled scenario. Call only when cfg.Faults.Enabled.
func buildInjector(cfg Config, k *des.Kernel, scheds map[string]*sched.Scheduler,
	broker *metasched.Broker, fabric *network.Fabric,
	gateways map[string]*gateway.Gateway) *faults.Injector {

	inj := faults.New(k, cfg.Faults, cfg.Seed)
	inj.AddMachines(schedList(scheds)...)
	inj.SetBroker(broker)
	inj.SetFabric(fabric)
	ids := make([]string, 0, len(gateways))
	for id := range gateways {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		inj.AddGateways(gateways[id])
	}
	return inj
}

// installFaultSpans mirrors every fault and resilience event onto the
// recorder as an instant in the "fault" category, on the target's track, so
// trace views line crashes and retries up against the job spans they
// disrupt.
func installFaultSpans(rec obs.Recorder, k *des.Kernel, inj *faults.Injector) {
	prev := inj.OnEvent
	inj.OnEvent = func(ev faults.Event) {
		if prev != nil {
			prev(ev)
		}
		kvs := make([]obs.KV, 0, 2)
		if ev.Until > 0 {
			kvs = append(kvs, obs.KV{Key: "until", Value: float64(ev.Until)})
		}
		if ev.JobID != 0 {
			kvs = append(kvs, obs.KV{Key: "job", Value: int64(ev.JobID)})
		}
		obs.Instant(rec, k.Now(), "fault", ev.Kind, ev.Target, kvs...)
	}
}

// installFaultTelemetry registers the tg_fault_*/tg_retry_* families and
// feeds them from the injector's event stream. Families are only created on
// fault-enabled runs, so fault-free exposition is unchanged.
func installFaultTelemetry(reg *telemetry.Registry, inj *faults.Injector) {
	events := reg.Counter("tg_fault_events_total",
		"Injected fault and resilience events.", "kind", "target")
	retries := reg.Counter("tg_retry_attempts_total",
		"Retry attempts scheduled by the resilience layer.", "class")
	giveups := reg.Counter("tg_retry_giveups_total",
		"Operations abandoned after exhausting their retry budget.", "class")
	prev := inj.OnEvent
	inj.OnEvent = func(ev faults.Event) {
		if prev != nil {
			prev(ev)
		}
		switch ev.Kind {
		case faults.EvRetry:
			retries.With(ev.Class).Inc()
		case faults.EvGiveUp:
			giveups.With(ev.Class).Inc()
		}
		events.With(ev.Kind, ev.Target).Inc()
	}
}
