package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/metasched"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/users"
	"github.com/tgsim/tgmod/internal/workload"
)

// ConfigFile is the JSON-serializable form of a scenario configuration.
// Generators carry a type tag; durations are in seconds. It exists so
// experiments can be captured, shared, and replayed as files rather than
// code.
type ConfigFile struct {
	Seed              uint64          `json:"seed"`
	HorizonDays       float64         `json:"horizon_days"`
	DrainDays         float64         `json:"drain_days"`
	Policy            string          `json:"policy"`
	BrokerPolicy      string          `json:"broker_policy"`
	BrokerTagCoverage float64         `json:"broker_tag_coverage"`
	Users             users.Config    `json:"users"`
	AwardNUs          float64         `json:"award_nus"`
	Gateways          []GatewayConfig `json:"gateways"`
	ReportIntervalS   float64         `json:"report_interval_s"`
	MaintenanceEveryD float64         `json:"maintenance_every_days,omitempty"`
	MaintenanceHours  float64         `json:"maintenance_hours,omitempty"`
	Generators        []GeneratorSpec `json:"generators"`
}

// GeneratorSpec is one workload generator with a type tag. Params not used
// by a type are ignored.
type GeneratorSpec struct {
	Type string `json:"type"` // batch|ensemble|workflow|gateway|urgent|interactive|data|metasched

	JobsPerDay      float64 `json:"jobs_per_day,omitempty"`
	CampaignsPerDay float64 `json:"campaigns_per_day,omitempty"`
	RequestsPerDay  float64 `json:"requests_per_day,omitempty"`
	SessionsPerDay  float64 `json:"sessions_per_day,omitempty"`
	EventsPerWeek   float64 `json:"events_per_week,omitempty"`

	CapabilityFrac  float64 `json:"capability_frac,omitempty"`
	JobsPerCampaign int     `json:"jobs_per_campaign,omitempty"`
	TagCoverage     float64 `json:"tag_coverage,omitempty"`
	TaggedFrac      float64 `json:"tagged_frac,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	Gateway         string  `json:"gateway,omitempty"`
	EndUsers        int     `json:"end_users,omitempty"`
	CoAllocFrac     float64 `json:"coalloc_frac,omitempty"`
	MedianInputGB   float64 `json:"median_input_gb,omitempty"`

	MedianRuntimeS float64 `json:"median_runtime_s,omitempty"`
}

// Encode writes the config file as indented JSON.
func (cf *ConfigFile) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cf)
}

// DecodeConfigFile parses a JSON scenario configuration.
func DecodeConfigFile(r io.Reader) (*ConfigFile, error) {
	var cf ConfigFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cf); err != nil {
		return nil, fmt.Errorf("scenario: bad config file: %w", err)
	}
	return &cf, nil
}

// ToConfig materializes the runnable Config.
func (cf *ConfigFile) ToConfig() (Config, error) {
	var cfg Config
	pol, err := ParsePolicy(cf.Policy)
	if err != nil {
		return cfg, err
	}
	bpol, err := ParseBrokerPolicy(cf.BrokerPolicy)
	if err != nil {
		return cfg, err
	}
	cfg = Config{
		Seed:              cf.Seed,
		Horizon:           des.Time(cf.HorizonDays) * des.Day,
		DrainTime:         des.Time(cf.DrainDays) * des.Day,
		Policy:            pol,
		BrokerPolicy:      bpol,
		BrokerTagCoverage: cf.BrokerTagCoverage,
		Users:             cf.Users,
		AwardNUs:          cf.AwardNUs,
		Gateways:          cf.Gateways,
		ReportInterval:    des.Time(cf.ReportIntervalS),
		MaintenanceEvery:  des.Time(cf.MaintenanceEveryD) * des.Day,
		MaintenanceLength: des.Time(cf.MaintenanceHours) * des.Hour,
	}
	for i, gs := range cf.Generators {
		g, err := gs.build()
		if err != nil {
			return cfg, fmt.Errorf("scenario: generator %d: %w", i, err)
		}
		cfg.Generators = append(cfg.Generators, g)
	}
	return cfg, nil
}

func (gs *GeneratorSpec) build() (workload.Generator, error) {
	switch gs.Type {
	case "batch":
		return &workload.BatchGen{JobsPerDay: gs.JobsPerDay,
			CapabilityFrac: gs.CapabilityFrac, MedianRuntime: gs.MedianRuntimeS}, nil
	case "ensemble":
		return &workload.EnsembleGen{CampaignsPerDay: gs.CampaignsPerDay,
			JobsPerCampaign: gs.JobsPerCampaign, TagCoverage: gs.TagCoverage,
			MedianRuntime: gs.MedianRuntimeS}, nil
	case "workflow":
		return &workload.WorkflowGen{CampaignsPerDay: gs.CampaignsPerDay,
			TaggedFrac: gs.TaggedFrac, Workers: gs.Workers,
			MedianTask: gs.MedianRuntimeS}, nil
	case "gateway":
		return &workload.GatewayGen{Gateway: gs.Gateway,
			RequestsPerDay: gs.RequestsPerDay, EndUsers: gs.EndUsers,
			MedianRuntime: gs.MedianRuntimeS}, nil
	case "urgent":
		return &workload.UrgentGen{EventsPerWeek: gs.EventsPerWeek,
			MedianRuntime: gs.MedianRuntimeS}, nil
	case "interactive":
		return &workload.InteractiveGen{SessionsPerDay: gs.SessionsPerDay,
			MedianSession: gs.MedianRuntimeS}, nil
	case "data":
		return &workload.DataCentricGen{JobsPerDay: gs.JobsPerDay,
			MedianInputGB: gs.MedianInputGB, MedianRuntime: gs.MedianRuntimeS}, nil
	case "metasched":
		return &workload.MetaschedGen{JobsPerDay: gs.JobsPerDay,
			CoAllocFrac: gs.CoAllocFrac, MedianRuntime: gs.MedianRuntimeS}, nil
	default:
		return nil, fmt.Errorf("unknown generator type %q", gs.Type)
	}
}

// FromConfig captures a runnable Config back into its file form (the
// inverse of ToConfig for the generator types this package knows).
func FromConfig(cfg Config) (*ConfigFile, error) {
	cf := &ConfigFile{
		Seed:              cfg.Seed,
		HorizonDays:       float64(cfg.Horizon / des.Day),
		DrainDays:         float64(cfg.DrainTime / des.Day),
		Policy:            cfg.Policy,
		BrokerPolicy:      cfg.BrokerPolicy.String(),
		BrokerTagCoverage: cfg.BrokerTagCoverage,
		Users:             cfg.Users,
		AwardNUs:          cfg.AwardNUs,
		Gateways:          cfg.Gateways,
		ReportIntervalS:   float64(cfg.ReportInterval),
		MaintenanceEveryD: float64(cfg.MaintenanceEvery / des.Day),
		MaintenanceHours:  float64(cfg.MaintenanceLength / des.Hour),
	}
	for _, g := range cfg.Generators {
		switch gg := g.(type) {
		case *workload.BatchGen:
			cf.Generators = append(cf.Generators, GeneratorSpec{Type: "batch",
				JobsPerDay: gg.JobsPerDay, CapabilityFrac: gg.CapabilityFrac,
				MedianRuntimeS: gg.MedianRuntime})
		case *workload.EnsembleGen:
			cf.Generators = append(cf.Generators, GeneratorSpec{Type: "ensemble",
				CampaignsPerDay: gg.CampaignsPerDay, JobsPerCampaign: gg.JobsPerCampaign,
				TagCoverage: gg.TagCoverage, MedianRuntimeS: gg.MedianRuntime})
		case *workload.WorkflowGen:
			cf.Generators = append(cf.Generators, GeneratorSpec{Type: "workflow",
				CampaignsPerDay: gg.CampaignsPerDay, TaggedFrac: gg.TaggedFrac,
				Workers: gg.Workers, MedianRuntimeS: gg.MedianTask})
		case *workload.GatewayGen:
			cf.Generators = append(cf.Generators, GeneratorSpec{Type: "gateway",
				Gateway: gg.Gateway, RequestsPerDay: gg.RequestsPerDay,
				EndUsers: gg.EndUsers, MedianRuntimeS: gg.MedianRuntime})
		case *workload.UrgentGen:
			cf.Generators = append(cf.Generators, GeneratorSpec{Type: "urgent",
				EventsPerWeek: gg.EventsPerWeek, MedianRuntimeS: gg.MedianRuntime})
		case *workload.InteractiveGen:
			cf.Generators = append(cf.Generators, GeneratorSpec{Type: "interactive",
				SessionsPerDay: gg.SessionsPerDay, MedianRuntimeS: gg.MedianSession})
		case *workload.DataCentricGen:
			cf.Generators = append(cf.Generators, GeneratorSpec{Type: "data",
				JobsPerDay: gg.JobsPerDay, MedianInputGB: gg.MedianInputGB,
				MedianRuntimeS: gg.MedianRuntime})
		case *workload.MetaschedGen:
			cf.Generators = append(cf.Generators, GeneratorSpec{Type: "metasched",
				JobsPerDay: gg.JobsPerDay, CoAllocFrac: gg.CoAllocFrac,
				MedianRuntimeS: gg.MedianRuntime})
		default:
			return nil, fmt.Errorf("scenario: generator %T has no file form", g)
		}
	}
	return cf, nil
}

// ParsePolicy validates a policy engine name against the sched registry
// and returns its canonical form ("" defaults to "easy").
func ParsePolicy(s string) (string, error) {
	if s == "" {
		return "easy", nil
	}
	if _, err := sched.NewEngine(s); err != nil {
		return "", fmt.Errorf("scenario: unknown policy %q (have %v)", s, sched.EngineNames())
	}
	return s, nil
}

// ParseBrokerPolicy converts a broker policy name to its constant.
func ParseBrokerPolicy(s string) (metasched.SelectPolicy, error) {
	switch s {
	case "random":
		return metasched.Random, nil
	case "least-loaded":
		return metasched.LeastLoaded, nil
	case "best-estimated", "":
		return metasched.BestEstimated, nil
	case "data-aware":
		return metasched.DataAware, nil
	default:
		return 0, fmt.Errorf("scenario: unknown broker policy %q", s)
	}
}
