package scenario

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/faults"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// matrixConfig trims the small scenario so the full engine × faults matrix
// stays fast while still exercising queues, campaigns, and urgent starts.
func matrixConfig(seed uint64, policy string, withFaults bool) Config {
	cfg := smallConfig(seed)
	cfg.Horizon = 4 * des.Day
	cfg.DrainTime = 2 * des.Day
	cfg.Policy = policy
	if withFaults {
		fc := faults.DefaultConfig()
		fc.Intensity = 3
		cfg.Faults = fc
		cfg.CheckpointRestart = true
	}
	return cfg
}

// TestPolicyMatrixDeterministic is the in-process cross-policy determinism
// matrix (the CI policy-matrix job runs the tgsim/tgdiff version): for every
// registered engine, with and without fault injection, two same-seed runs
// must agree on every accounting record and on the full OpenMetrics
// exposition — the same byte-equality tgdiff checks over exported run dirs.
func TestPolicyMatrixDeterministic(t *testing.T) {
	engines := sched.EngineNames()
	if len(engines) < 6 {
		t.Fatalf("registry lists %d engines, want >= 6: %v", len(engines), engines)
	}
	for _, name := range engines {
		for _, withFaults := range []bool{false, true} {
			name, withFaults := name, withFaults
			label := name
			if withFaults {
				label += "+faults"
			}
			t.Run(label, func(t *testing.T) {
				t.Parallel()
				run := func() (*Result, []byte) {
					reg := telemetry.New()
					cfg := matrixConfig(23, name, withFaults)
					cfg.Observers = append(cfg.Observers, LiveTelemetry(reg))
					res, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					var buf bytes.Buffer
					if err := reg.WriteOpenMetrics(&buf); err != nil {
						t.Fatal(err)
					}
					return res, buf.Bytes()
				}
				a, expoA := run()
				b, expoB := run()
				ja, jb := a.Central.Jobs(), b.Central.Jobs()
				if len(ja) != len(jb) {
					t.Fatalf("job counts differ: %d vs %d", len(ja), len(jb))
				}
				for i := range ja {
					if ja[i] != jb[i] {
						t.Fatalf("accounting record %d differs:\n%+v\n%+v", i, ja[i], jb[i])
					}
				}
				if !bytes.Equal(expoA, expoB) {
					t.Fatal("OpenMetrics expositions differ across same-seed runs")
				}
				if len(ja) == 0 {
					t.Fatal("matrix leg vacuous: no jobs reached accounting")
				}
				if withFaults && a.Faults.Stats().MachineCrashes == 0 {
					t.Fatal("faults leg vacuous: no crashes fired")
				}
			})
		}
	}
}

// TestPolicyMatrixEnginesDiverge guards against an engine silently falling
// back to another's behavior: at this load the six engines cannot all
// produce identical accounting streams.
func TestPolicyMatrixEnginesDiverge(t *testing.T) {
	digests := make(map[string]string)
	for _, name := range sched.EngineNames() {
		res, err := Run(matrixConfig(23, name, false))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, r := range res.Central.Jobs() {
			fmt.Fprintf(&buf, "%v|", r)
		}
		digests[name] = buf.String()
	}
	distinct := make(map[string]bool)
	for _, d := range digests {
		distinct[d] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all %d engines produced identical accounting streams", len(digests))
	}
	// The legacy backfill family must differ from strict FCFS here, or the
	// workload is too light to make the matrix meaningful.
	if digests["fcfs"] == digests["easy"] {
		t.Error("fcfs and easy agree byte-for-byte: matrix workload too light")
	}
}
