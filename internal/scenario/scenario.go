// Package scenario assembles complete simulations: the standard nine-site
// federation, the network, schedulers, accounting pipeline, allocations,
// gateways, metascheduler, and the workload generators, wired together and
// run to a horizon. Experiments and examples configure a Config, call Run,
// and analyze the returned accounting database with the core package.
package scenario

import (
	"fmt"
	"math"
	"sort"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/alloc"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/faults"
	"github.com/tgsim/tgmod/internal/gateway"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/metasched"
	"github.com/tgsim/tgmod/internal/network"
	"github.com/tgsim/tgmod/internal/obs"
	"github.com/tgsim/tgmod/internal/perf"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/simrand"
	"github.com/tgsim/tgmod/internal/slo"
	"github.com/tgsim/tgmod/internal/storage"
	"github.com/tgsim/tgmod/internal/telemetry"
	"github.com/tgsim/tgmod/internal/users"
	"github.com/tgsim/tgmod/internal/workload"
)

// TG9 builds the standard simulated federation: nine sites with
// heterogeneous machines spanning three orders of magnitude in size, one
// very large capability system, viz partitions at two sites, and
// urgent-capable systems at three. Names are descriptive, not historic.
func TG9() (*grid.Federation, error) {
	mk := func(id, site string, nodes, cpn int, gf, nu float64, viz int, urgent bool) *grid.Machine {
		return &grid.Machine{
			ID: id, Site: site, Nodes: nodes, CoresPerNode: cpn,
			GFlopsPerCore: gf, NUPerCoreHour: nu, VizNodes: viz, UrgentCapable: urgent,
		}
	}
	sites := []*grid.Site{
		{ID: "ridge", WANGbps: 30, ArchivePB: 10, Machines: []*grid.Machine{
			mk("ridge-xt", "ridge", 8256, 12, 10.4, 2.9, 0, false), // ~99k cores, capability
		}},
		{ID: "mesa", WANGbps: 30, ArchivePB: 6, Machines: []*grid.Machine{
			mk("mesa-ranger", "mesa", 3936, 16, 2.3, 1.9, 0, true), // ~63k cores
		}},
		{ID: "lakeside", WANGbps: 20, ArchivePB: 4, Machines: []*grid.Machine{
			mk("lakeside-abe", "lakeside", 1200, 8, 9.3, 2.2, 0, true),
			mk("lakeside-viz", "lakeside", 96, 16, 2.2, 1.0, 64, false),
		}},
		{ID: "harbor", WANGbps: 20, ArchivePB: 25, Machines: []*grid.Machine{
			mk("harbor-db", "harbor", 512, 8, 2.8, 1.2, 0, false), // data-intensive system
		}},
		{ID: "prairie", WANGbps: 10, ArchivePB: 3, Machines: []*grid.Machine{
			mk("prairie-cluster", "prairie", 768, 8, 3.7, 1.4, 0, false),
		}},
		{ID: "foothill", WANGbps: 10, ArchivePB: 2, Machines: []*grid.Machine{
			mk("foothill-ia", "foothill", 640, 4, 3.1, 1.1, 32, false),
		}},
		{ID: "bayou", WANGbps: 10, ArchivePB: 2, Machines: []*grid.Machine{
			mk("bayou-qb", "bayou", 668, 8, 4.8, 1.6, 0, true),
		}},
		{ID: "summit", WANGbps: 10, ArchivePB: 1, Machines: []*grid.Machine{
			mk("summit-pople", "summit", 384, 8, 4.4, 1.3, 0, false),
		}},
		{ID: "campus", WANGbps: 10, ArchivePB: 1, Machines: []*grid.Machine{
			mk("campus-condor", "campus", 400, 2, 1.9, 0.6, 0, false), // HTC farm
		}},
	}
	return grid.NewFederation("tg9", sites...)
}

// GatewayConfig describes one science gateway to instantiate.
type GatewayConfig struct {
	ID           string
	Machine      string // target machine for submissions
	ScienceField string
	AttrCoverage float64 // probability of per-request end-user attributes
}

// Observe configures the optional observability layer. The zero value
// turns everything off: no recorder hooks are installed, no sampler ticks,
// and the kernel keeps a nil tracer, so an unobserved run pays nothing.
type Observe struct {
	// Recorder receives job-lifecycle spans plus scheduler-decision,
	// data-transfer, gateway-session, and maintenance events. Nil disables
	// span tracing.
	Recorder obs.Recorder
	// SamplePeriod, when positive, samples per-machine queue depth and
	// utilization plus federation-wide gauges every period of virtual time.
	SamplePeriod des.Time
	// Profile, when true, installs a wall-clock kernel self-profiler.
	Profile bool
	// Registry, when non-nil, receives live labeled metrics: per-machine
	// queue/utilization gauges, lifecycle and modality counters, queue-wait
	// and transfer-duration histograms, and accounting-flush counters. The
	// registry is only ever touched from the simulation goroutine.
	Registry *telemetry.Registry
	// Snapshots, when non-nil, receives wall-throttled progress snapshots
	// during the run (via the des tracer seam, so no kernel events are
	// added) plus one final snapshot after the run completes. The sink runs
	// on the simulation goroutine.
	Snapshots func(*telemetry.Snapshot)
	// SLO, when non-nil, scores job starts and rejections against
	// virtual-time service-level objectives on the scheduler seam. When
	// Registry is also set, the evaluator is bound to it as tg_slo_*
	// families.
	SLO *slo.Evaluator
}

// Enabled reports whether any observability feature is requested.
func (o Observe) Enabled() bool {
	return o.Recorder != nil || o.SamplePeriod > 0 || o.Profile ||
		o.Registry != nil || o.Snapshots != nil || o.SLO != nil
}

// Config parameterizes a full simulation.
type Config struct {
	Seed    uint64
	Horizon des.Time
	// DrainTime: extra time after the horizon for queues to empty.
	DrainTime des.Time
	// Policy names the batch policy engine at every site (sched.EngineNames).
	Policy string
	// BrokerPolicy is the metascheduler's selection policy.
	BrokerPolicy metasched.SelectPolicy
	// BrokerTagCoverage is the probability broker jobs carry their tag.
	BrokerTagCoverage float64
	// Population sizing.
	Users users.Config
	// AwardNUs is the mean allocation size (lognormally spread).
	AwardNUs float64
	// Gateways to instantiate.
	Gateways []GatewayConfig
	// Generators to run (constructed by the caller; the scenario injects
	// the Env).
	Generators []workload.Generator
	// ReportInterval is how often site ledgers flush to the central DB.
	ReportInterval des.Time
	// MaintenanceEvery, when positive, schedules a recurring maintenance
	// outage of MaintenanceLength on every machine (staggered by site so
	// the federation never goes fully dark), modeling the preventive-
	// maintenance windows production systems took.
	MaintenanceEvery  des.Time
	MaintenanceLength des.Time
	// Federation override; nil means TG9.
	Federation *grid.Federation
	// EventLimit, when positive, bounds the kernel's future-event list; a
	// run that exceeds it fails with des.ErrEventBacklog. Fleet workers use
	// this to fail a runaway replication cleanly.
	EventLimit int
	// Faults configures the deterministic fault injector (WithFaults /
	// WithFaultIntensity). The zero value disables it entirely: no injector
	// is built, no fault streams are derived, and the run is byte-identical
	// to a pre-fault build.
	Faults faults.Config
	// CheckpointRestart turns on checkpoint/restart at every machine:
	// preempted and fault-killed jobs resume from their last completed
	// checkpoint (losing only the tail past it) instead of from scratch.
	CheckpointRestart bool
	// CheckpointInterval is the checkpoint cadence (zero = 15 min default).
	CheckpointInterval des.Time
	// CheckpointOverhead, when positive, dilates each run by one overhead
	// per completed checkpoint interval — the cost of writing checkpoints.
	CheckpointOverhead des.Time
	// Observers contribute observability wiring through the consolidated
	// Attachment seam; register them with WithObserver.
	Observers []Observer
	// Observe configures the observability layer (zero value = off).
	//
	// Deprecated: use Observers (WithObserver with RecordSpans,
	// SampleEvery, ProfileKernel, LiveTelemetry, StreamSnapshots,
	// EvaluateSLO, TraceKernel). The field remains as a shim — Run folds it
	// into the same Attachment — but new code should not touch it.
	Observe Observe
}

// DefaultConfig returns a one-quarter simulation with the standard
// workload mix at moderate load.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:              seed,
		Horizon:           90 * des.Day,
		DrainTime:         14 * des.Day,
		Policy:            "easy",
		BrokerPolicy:      metasched.BestEstimated,
		BrokerTagCoverage: 1.0,
		Users:             users.DefaultConfig(),
		AwardNUs:          2e6,
		Gateways: []GatewayConfig{
			{ID: "nanohub", Machine: "campus-condor", ScienceField: "nanoscience", AttrCoverage: 0.9},
			{ID: "cipres", Machine: "prairie-cluster", ScienceField: "molecular-biosciences", AttrCoverage: 0.9},
			{ID: "climate-portal", Machine: "mesa-ranger", ScienceField: "atmospheric-sciences", AttrCoverage: 0.9},
		},
		Generators:     DefaultGenerators(),
		ReportInterval: des.Day,
	}
}

// DefaultGenerators returns the standard workload mix. Rates are tuned so
// the federation runs at productive-but-contended load under EASY.
func DefaultGenerators() []workload.Generator {
	return []workload.Generator{
		// CapabilityFrac is calibrated so hero jobs offer ~60% of the
		// largest machine's capacity: 700/day × 0.002 = 1.4 heroes/day at
		// a ~16h mean on ~64k mean cores ≈ 1.5M core-hours/day against
		// ridge-xt's 2.4M. Higher fractions make the hero queue unstable
		// over a quarter (offered > capacity), which is an experiment, not
		// a default.
		&workload.BatchGen{JobsPerDay: 700, CapabilityFrac: 0.002, MedianRuntime: 3 * 3600},
		&workload.EnsembleGen{CampaignsPerDay: 12, JobsPerCampaign: 30, TagCoverage: 0.5, MedianRuntime: 1800},
		&workload.WorkflowGen{CampaignsPerDay: 10, TaggedFrac: 0.6, Workers: 8, MedianTask: 1200},
		&workload.GatewayGen{Gateway: "nanohub", RequestsPerDay: 400, EndUsers: 3000, MedianRuntime: 600},
		&workload.GatewayGen{Gateway: "cipres", RequestsPerDay: 150, EndUsers: 1200, MedianRuntime: 1500},
		&workload.GatewayGen{Gateway: "climate-portal", RequestsPerDay: 60, EndUsers: 400, MedianRuntime: 3600},
		&workload.UrgentGen{EventsPerWeek: 4, MedianRuntime: 2 * 3600},
		&workload.InteractiveGen{SessionsPerDay: 50, MedianSession: 1800},
		&workload.DataCentricGen{JobsPerDay: 40, MedianInputGB: 40, MedianRuntime: 2 * 3600},
		&workload.MetaschedGen{JobsPerDay: 80, CoAllocFrac: 0.05, MedianRuntime: 2 * 3600},
	}
}

// Result is everything a finished simulation exposes for analysis.
type Result struct {
	Config     Config
	Kernel     *des.Kernel
	Federation *grid.Federation
	Central    *accounting.Central
	Bank       *alloc.Bank
	Schedulers map[string]*sched.Scheduler
	Broker     *metasched.Broker
	Gateways   map[string]*gateway.Gateway
	Fabric     *network.Fabric
	Archives   map[string]*storage.Archive
	Population *users.Population
	// Finished counts jobs that reached a terminal state.
	Finished int
	// LargestCores is the batch-core count of the biggest machine, for
	// classifier configuration.
	LargestCores int
	// Sampler holds the virtual-time metric series (nil unless
	// Observe.SamplePeriod was set).
	Sampler *obs.Sampler
	// Profiler holds the kernel self-profile (nil unless Observe.Profile).
	Profiler *obs.KernelProfiler
	// Phases holds the phase-attribution profile (nil unless a
	// ProfilePhases observer was attached).
	Phases *perf.Profiler
	// Faults is the fault injector (nil unless Config.Faults.Enabled); its
	// Stats() summarize every injected failure and resilience action.
	Faults *faults.Injector
}

// Run builds and executes the simulation described by cfg.
func Run(cfg Config) (*Result, error) {
	fed := cfg.Federation
	if fed == nil {
		var err error
		fed, err = TG9()
		if err != nil {
			return nil, err
		}
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("scenario: non-positive horizon")
	}
	k := des.New()
	if cfg.EventLimit > 0 {
		k.SetPendingLimit(cfg.EventLimit)
	}
	// Merge the deprecated Observe shim and the registered Observers into
	// the single attachment the rest of assembly wires from.
	att := cfg.attachment()
	rec := att.Recorder
	if ev := att.SLO; ev != nil {
		// The evaluator reads the kernel clock for burn-rate exposition and
		// surfaces tg_slo_* families when a registry is configured.
		ev.Now = k.Now
		ev.Bind(att.Registry)
	}
	var profiler *obs.KernelProfiler
	if att.Profile {
		// Created now, installed with the other tracers just before the run.
		profiler = obs.NewKernelProfiler(k)
	}
	if att.Phases != nil {
		// Phase profilers are built by callers before the kernel exists;
		// bind this run's kernel so FEL high-water reporting works.
		att.Phases.Bind(k)
	}

	// Network and storage.
	topo := network.NewTopology()
	for _, s := range fed.Sites {
		if err := topo.AddSite(s.ID, s.WANGbps); err != nil {
			return nil, err
		}
	}
	fabric := network.NewFabric(k, topo)
	stager := storage.NewStager(k, fabric)
	archives := make(map[string]*storage.Archive)
	for _, s := range fed.Sites {
		if s.ArchivePB > 0 {
			archives[s.ID] = storage.NewArchive(s.ID, s.ArchivePB)
		}
	}

	// Population and allocations.
	pop, err := users.Synthesize(cfg.Users, simrand.Derive(cfg.Seed, "population"))
	if err != nil {
		return nil, err
	}
	bank := alloc.NewBank()
	awardRNG := simrand.Derive(cfg.Seed, "awards")
	for _, proj := range pop.Projects {
		pi, _ := pop.PI(proj)
		field := ""
		if pi != nil {
			field = pi.Field
		}
		nus := awardRNG.LogNormal(logf(cfg.AwardNUs), 1.0)
		piName := "unknown"
		if pi != nil {
			piName = pi.Name
		}
		if _, err := bank.Award(proj, piName, field, nus, 0); err != nil {
			return nil, err
		}
		for _, u := range pop.Team(proj) {
			if err := bank.AddUser(proj, u.Name); err != nil {
				return nil, err
			}
		}
	}

	// Accounting pipeline.
	central := accounting.NewCentral()
	ledgers := make(map[string]*accounting.Ledger)
	for _, s := range fed.Sites {
		ledgers[s.ID] = accounting.NewLedger(s.ID)
	}
	stager.OnTransfer = func(tr *network.Transfer) {
		l := ledgers[tr.Src]
		if l == nil {
			return
		}
		l.AddTransfer(accounting.TransferRecord{
			TransferID: tr.ID, Src: tr.Src, Dst: tr.Dst, Bytes: tr.Bytes,
			Start: float64(tr.StartedAt), End: float64(tr.EndedAt),
			User: tr.User, Project: tr.Project, JobID: tr.JobID,
		})
	}

	// Schedulers + event wiring.
	tracker := workload.NewTracker()
	scheds := make(map[string]*sched.Scheduler)
	finished := 0
	largest := 0
	archiveRNG := simrand.Derive(cfg.Seed, "archive")
	for _, m := range fed.Machines() {
		m := m
		s, err := sched.NewNamed(k, m, cfg.Policy)
		if err != nil {
			return nil, err
		}
		if cfg.CheckpointRestart {
			s.CheckpointRestart = true
			s.CheckpointInterval = cfg.CheckpointInterval
			s.CheckpointOverhead = cfg.CheckpointOverhead
		}
		scheds[m.ID] = s
		if m.BatchCores() > largest {
			largest = m.BatchCores()
		}
		s.Subscribe(func(e sched.Event) {
			switch e.Kind {
			case sched.EventFinished:
				finished++
				rec := accounting.RecordOf(e.Job, m)
				ledgers[m.Site].AddJob(rec)
				// Charge the allocation for actual usage; overdraft errors
				// are operational noise, not simulation failures.
				_ = bank.Charge(e.Job.Project, rec.NUs)
				// Data-centric jobs archive their outputs.
				if e.Job.OutputBytes > 0 && e.Job.State == job.StateCompleted {
					if a := archives[m.Site]; a != nil {
						name := fmt.Sprintf("out-%d-%d", e.Job.ID, archiveRNG.Intn(1<<30))
						_ = a.Store(&storage.File{
							Name: name, Bytes: e.Job.OutputBytes,
							Owner: e.Job.User, Project: e.Job.Project,
							Created: k.Now(), Replicas: []string{m.Site},
						})
					}
				}
				tracker.JobFinished(e.Job)
			case sched.EventRejected:
				tracker.JobFinished(e.Job)
			}
		})
		if rec != nil {
			installJobSpans(rec, k, s)
		}
		if att.SLO != nil {
			installSLO(att.SLO, k, s)
		}
	}
	if rec != nil {
		installTransferSpans(rec, k, fabric)
	}

	// Recurring preventive maintenance, staggered per machine.
	if cfg.MaintenanceEvery > 0 && cfg.MaintenanceLength > 0 {
		offset := des.Time(0)
		for _, m := range fed.Machines() {
			s := scheds[m.ID]
			stagger := offset
			offset += cfg.MaintenanceEvery / des.Time(len(fed.Machines()))
			// Announce each window one period ahead so the machine drains
			// instead of preempting.
			var announce func(start des.Time)
			announce = func(start des.Time) {
				if start >= cfg.Horizon {
					return
				}
				if err := s.ScheduleOutage(start, start+cfg.MaintenanceLength); err == nil {
					k.AtNamed(start+cfg.MaintenanceLength, "maint-announce", func(*des.Kernel) {
						announce(start + cfg.MaintenanceEvery)
					})
				}
			}
			announce(cfg.MaintenanceEvery + stagger)
		}
	}

	// Metascheduler.
	broker := metasched.New(k, cfg.BrokerPolicy, simrand.Derive(cfg.Seed, "broker"), schedList(scheds))
	broker.TagCoverage = cfg.BrokerTagCoverage
	broker.Stage = func(from, to string, bytes int64) float64 {
		if from == to {
			return 0
		}
		// Crude planning estimate: site pair at 10 Gb/s effective.
		return float64(bytes) / (10e9 / 8)
	}

	// Gateways.
	gateways := make(map[string]*gateway.Gateway)
	for _, gc := range cfg.Gateways {
		target, ok := scheds[gc.Machine]
		if !ok {
			return nil, fmt.Errorf("scenario: gateway %s targets unknown machine %s", gc.ID, gc.Machine)
		}
		site := target.M.Site
		project := "TG-GW-" + gc.ID
		account := gc.ID + "-community"
		if _, err := bank.Award(project, account, gc.ScienceField, cfg.AwardNUs*5, 0); err != nil {
			return nil, err
		}
		gw, err := gateway.New(gc.ID, account, project, gc.ScienceField, gc.AttrCoverage,
			k, simrand.Derive(cfg.Seed, "gateway-"+gc.ID), submitterFor(target), ledgers[site])
		if err != nil {
			return nil, err
		}
		if rec != nil {
			installGatewaySpans(rec, k, gw)
		}
		gateways[gc.ID] = gw
	}

	// Fault injector, assembled after every component it disrupts exists.
	// Nothing is built on fault-free runs: the injector, its named random
	// streams, and its kernel events only exist when Faults.Enabled.
	var injector *faults.Injector
	if cfg.Faults.Enabled {
		injector = buildInjector(cfg, k, scheds, broker, fabric, gateways)
		if rec != nil {
			installFaultSpans(rec, k, injector)
		}
		if att.Registry != nil {
			installFaultTelemetry(att.Registry, injector)
		}
		injector.Start()
	}

	// Live telemetry, installed after every seam handler exists so the
	// instrument wrappers compose with (never replace) the span recorders.
	var th *telemetryHooks
	if att.Registry != nil {
		th = installTelemetry(att.Registry, k, fed, scheds, fabric,
			gateways, bank, &finished, rec)
	}

	// Periodic accounting reporting over the simulated wire. Packet taps
	// (the streaming observatory's live ingest seam) observe each packet
	// after the central ingest, in deterministic site order.
	// The phase profiler charges the ledger flush / wire encode / central
	// ingest to PhaseAccounting and the tap fan-out (live classification
	// ingest) to PhaseClassify; both Region calls are nil-safe no-ops when
	// no profiler is attached.
	phases := att.Phases
	flushAll := func() error {
		for _, s := range fed.Sites {
			endAcct := phases.Region(perf.PhaseAccounting)
			p := ledgers[s.ID].Flush(k.Now())
			if p == nil {
				endAcct()
				continue
			}
			data, err := p.Encode()
			if err != nil {
				endAcct()
				return err
			}
			err = central.IngestWire(data)
			endAcct()
			if err != nil {
				return err
			}
			th.flushed(len(p.Jobs), len(data))
			endTaps := phases.Region(perf.PhaseClassify)
			for _, tap := range att.Packets {
				tap(k.Now(), p)
			}
			endTaps()
		}
		return nil
	}
	if cfg.ReportInterval > 0 {
		k.EveryNamed(cfg.ReportInterval, "acct-flush", func(*des.Kernel) {
			if err := flushAll(); err != nil {
				panic("scenario: accounting flush: " + err.Error())
			}
		})
	}

	// Data homes: each project's reference data lives at a deterministic
	// random archive site.
	dataHomes := make(map[string]string)
	var archiveSites []string
	for _, s := range fed.Sites {
		if s.ArchivePB > 0 {
			archiveSites = append(archiveSites, s.ID)
		}
	}
	homeRNG := simrand.Derive(cfg.Seed, "data-homes")
	for _, proj := range pop.Projects {
		dataHomes[proj] = archiveSites[homeRNG.Intn(len(archiveSites))]
	}
	broker.DataHome = dataHomes

	// Workload.
	env := &workload.Env{
		K: k, Seed: cfg.Seed, Horizon: cfg.Horizon,
		Pop: pop, Sched: scheds, Broker: broker, Gateways: gateways,
		Stager: stager, Archives: archives, DataHomeSite: dataHomes,
		Tracker: tracker,
	}
	for _, g := range cfg.Generators {
		g.Start(env)
	}

	// Virtual-time metric sampling, armed last so the first tick sees the
	// fully assembled federation.
	var sampler *obs.Sampler
	if att.SamplePeriod > 0 {
		sampler = buildSampler(att.SamplePeriod, k, fed, scheds, fabric, bank, &finished)
		sampler.Start(k)
	}

	// Progress snapshots ride the tracer seam (no kernel events), combined
	// with the profiler when both are on.
	var pub *telemetry.Publisher
	if att.Snapshots != nil {
		build := snapshotBuilder(fed, scheds, &finished, cfg.Horizon+cfg.DrainTime)
		// Decorate each snapshot with span-buffer drop counts and whatever
		// observer extras are attached (stream ingest state, etc.).
		obsBuf, _ := rec.(*obs.Buffer)
		if obsBuf != nil || len(att.SnapshotExtras) > 0 {
			inner := build
			extras := att.SnapshotExtras
			build = func(at des.Time, events uint64, pending int) *telemetry.Snapshot {
				s := inner(at, events, pending)
				if obsBuf != nil {
					s.ObsDropped = obsBuf.Dropped()
				}
				for _, fn := range extras {
					fn(s)
				}
				return s
			}
		}
		pub = &telemetry.Publisher{
			Build: build,
			Sink:  att.Snapshots,
		}
	}
	// Tracer composition is folded behind the Observer seam: the profiler,
	// the snapshot publisher, and any raw TraceKernel tracers combine here,
	// invisibly to callers.
	var tracers []des.Tracer
	if profiler != nil {
		tracers = append(tracers, profiler)
	}
	if att.Phases != nil {
		tracers = append(tracers, att.Phases)
	}
	if pub != nil {
		tracers = append(tracers, pub)
	}
	tracers = append(tracers, att.Tracers...)
	if tr := des.CombineTracers(tracers...); tr != nil {
		k.SetTracer(tr)
	}

	// Run to the horizon plus drain, then final flush. A backlog breach
	// (EventLimit) surfaces here as des.ErrEventBacklog.
	if err := k.RunUntil(cfg.Horizon + cfg.DrainTime); err != nil {
		return nil, fmt.Errorf("scenario: run: %w", err)
	}
	if err := flushAll(); err != nil {
		return nil, err
	}
	if pub != nil {
		// One final snapshot so consoles and progress lines end on the true
		// final state, regardless of wall-clock throttling.
		pub.Final(k.Now(), k.Pending())
	}

	return &Result{
		Config: cfg, Kernel: k, Federation: fed, Central: central, Bank: bank,
		Schedulers: scheds, Broker: broker, Gateways: gateways, Fabric: fabric,
		Archives: archives, Population: pop, Finished: finished,
		LargestCores: largest, Sampler: sampler, Profiler: profiler,
		Phases: att.Phases, Faults: injector,
	}, nil
}

// schedList returns schedulers sorted by machine ID.
func schedList(m map[string]*sched.Scheduler) []*sched.Scheduler {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*sched.Scheduler, len(ids))
	for i, id := range ids {
		out[i] = m[id]
	}
	return out
}

type schedSubmitter struct{ s *sched.Scheduler }

func (ss schedSubmitter) SubmitJob(j *job.Job) { ss.s.Submit(j) }

func submitterFor(s *sched.Scheduler) gateway.Submitter { return schedSubmitter{s} }

func logf(v float64) float64 { return math.Log(v) }
