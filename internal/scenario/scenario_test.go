package scenario

import (
	"testing"

	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/users"
	"github.com/tgsim/tgmod/internal/workload"
)

// smallConfig keeps integration tests fast: one week at reduced rates.
func smallConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Horizon = 7 * des.Day
	cfg.DrainTime = 3 * des.Day
	cfg.Users = users.Config{Projects: 40, UsersPerProjMu: 0.7, UsersPerProjSd: 0.6, ActivityAlpha: 1.5}
	cfg.Generators = []workload.Generator{
		&workload.BatchGen{JobsPerDay: 120, CapabilityFrac: 0.02, MedianRuntime: 3600},
		&workload.EnsembleGen{CampaignsPerDay: 4, JobsPerCampaign: 10, TagCoverage: 0.5, MedianRuntime: 900},
		&workload.WorkflowGen{CampaignsPerDay: 3, TaggedFrac: 0.5, Workers: 4, MedianTask: 600},
		&workload.GatewayGen{Gateway: "nanohub", RequestsPerDay: 80, EndUsers: 300, MedianRuntime: 300},
		&workload.GatewayGen{Gateway: "cipres", RequestsPerDay: 30, EndUsers: 100, MedianRuntime: 600},
		&workload.GatewayGen{Gateway: "climate-portal", RequestsPerDay: 10, EndUsers: 50, MedianRuntime: 1200},
		&workload.UrgentGen{EventsPerWeek: 3, MedianRuntime: 1800},
		&workload.InteractiveGen{SessionsPerDay: 12, MedianSession: 1200},
		&workload.DataCentricGen{JobsPerDay: 8, MedianInputGB: 20, MedianRuntime: 1800},
		&workload.MetaschedGen{JobsPerDay: 15, CoAllocFrac: 0.05, MedianRuntime: 1800},
	}
	return cfg
}

func TestTG9Topology(t *testing.T) {
	fed, err := TG9()
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Sites) != 9 {
		t.Errorf("sites = %d, want 9", len(fed.Sites))
	}
	if fed.TotalCores() < 100000 {
		t.Errorf("TotalCores = %d, want a petascale-era federation (>100k)", fed.TotalCores())
	}
	if fed.LargestMachine().ID != "ridge-xt" {
		t.Errorf("largest machine = %s, want ridge-xt", fed.LargestMachine().ID)
	}
	// At least one viz partition and one urgent-capable machine.
	viz, urgent := false, false
	for _, m := range fed.Machines() {
		if m.VizCores() > 0 {
			viz = true
		}
		if m.UrgentCapable {
			urgent = true
		}
	}
	if !viz || !urgent {
		t.Errorf("federation lacks viz (%v) or urgent (%v) capability", viz, urgent)
	}
}

func TestRunProducesCoherentAccounting(t *testing.T) {
	res, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	jobs := res.Central.Jobs()
	if len(jobs) < 500 {
		t.Fatalf("only %d job records after a week; workload too thin", len(jobs))
	}
	if res.Finished != len(jobs) {
		t.Errorf("finished %d jobs but %d records (records must match terminal jobs)",
			res.Finished, len(jobs))
	}
	if res.Central.TotalNUs() <= 0 {
		t.Error("no NUs charged")
	}
	// Bank charges must equal accounting NUs (same charging event).
	if diff := res.Bank.TotalUsed() - res.Central.TotalNUs(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("bank charged %v but accounting has %v NUs", res.Bank.TotalUsed(), res.Central.TotalNUs())
	}
	// Every record is well-formed.
	for _, r := range jobs {
		if r.Cores <= 0 || r.EndTime < r.StartTime || r.NUs < 0 {
			t.Fatalf("malformed record: %+v", r)
		}
		if r.ExitStatus != "completed" && r.ExitStatus != "killed" {
			t.Fatalf("unexpected exit status %q", r.ExitStatus)
		}
	}
	// All ground-truth modalities appear in a mixed workload.
	seen := map[string]bool{}
	for _, r := range jobs {
		seen[r.TruthModality] = true
	}
	for _, m := range job.AllModalities {
		if !seen[string(m)] {
			t.Errorf("modality %q generated no finished jobs", m)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Central.Jobs()) != len(b.Central.Jobs()) {
		t.Fatalf("job counts differ: %d vs %d", len(a.Central.Jobs()), len(b.Central.Jobs()))
	}
	if a.Central.TotalNUs() != b.Central.TotalNUs() {
		t.Errorf("NUs differ: %v vs %v", a.Central.TotalNUs(), b.Central.TotalNUs())
	}
	ja, jb := a.Central.Jobs(), b.Central.Jobs()
	for i := range ja {
		if ja[i] != jb[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, ja[i], jb[i])
		}
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	a, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Central.TotalNUs() == b.Central.TotalNUs() {
		t.Error("different seeds produced identical usage; randomness broken")
	}
}

func TestEndToEndClassification(t *testing.T) {
	res, err := Run(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewClassifier(core.Config{LargestCores: res.LargestCores})
	results := cl.Classify(res.Central)
	conf := core.Validate(res.Central, results)
	acc := conf.Accuracy()
	if acc < 0.75 {
		t.Errorf("end-to-end classification accuracy = %v, want ≥ 0.75", acc)
	}
	// Directly instrumented modalities must be near-perfect.
	for _, m := range []job.Modality{job.ModUrgent, job.ModInteractive, job.ModGateway} {
		if r := conf.Recall(string(m)); r < 0.99 {
			t.Errorf("recall(%s) = %v, want ~1 (direct evidence)", m, r)
		}
	}
	// The usage report is internally consistent.
	rep := core.BuildReport(res.Central, results)
	totJobs := 0
	for _, row := range rep.Rows {
		totJobs += row.Jobs
	}
	if totJobs != len(res.Central.Jobs()) {
		t.Errorf("report rows sum to %d jobs, central has %d", totJobs, len(res.Central.Jobs()))
	}
	if rep.TotalNUs != res.Central.TotalNUs() {
		t.Errorf("report NUs %v != central %v", rep.TotalNUs, res.Central.TotalNUs())
	}
}

func TestGatewayVisibilityEndToEnd(t *testing.T) {
	res, err := Run(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	v := core.MeasureGatewayVisibility(res.Central)
	if v.GatewayJobs == 0 {
		t.Fatal("no gateway jobs")
	}
	// The headline asymmetry: a handful of community accounts hide a much
	// larger end-user population.
	if v.CommunityAccounts > 3 {
		t.Errorf("community accounts = %d, want ≤ 3", v.CommunityAccounts)
	}
	if v.RecoveredEndUsers < 10*v.CommunityAccounts {
		t.Errorf("recovered %d end users behind %d accounts; expected ≥10x",
			v.RecoveredEndUsers, v.CommunityAccounts)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Horizon = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero horizon accepted")
	}
	cfg = smallConfig(1)
	cfg.Gateways = []GatewayConfig{{ID: "x", Machine: "no-such-machine"}}
	if _, err := Run(cfg); err == nil {
		t.Error("gateway with unknown machine accepted")
	}
}

func TestMaintenanceWindows(t *testing.T) {
	cfg := smallConfig(9)
	cfg.MaintenanceEvery = 2 * des.Day
	cfg.MaintenanceLength = 4 * des.Hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Central.Jobs()) < 300 {
		t.Fatalf("too few jobs with maintenance: %d", len(res.Central.Jobs()))
	}
	// Usage still coherent: records match bank charges.
	if diff := res.Bank.TotalUsed() - res.Central.TotalNUs(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("bank/accounting mismatch under maintenance: %v vs %v",
			res.Bank.TotalUsed(), res.Central.TotalNUs())
	}
	// Compared to the same seed without maintenance, utilization drops.
	base, err := Run(smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Central.TotalNUs() >= base.Central.TotalNUs() {
		t.Logf("note: maintenance run charged %v vs base %v NUs (queues may absorb outages)",
			res.Central.TotalNUs(), base.Central.TotalNUs())
	}
}
