package scenario

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/metasched"
)

func TestConfigFileRoundTrip(t *testing.T) {
	orig := DefaultConfig(42)
	orig.MaintenanceEvery = 0
	cf, err := FromConfig(orig)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cf.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := DecodeConfigFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := parsed.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != orig.Seed || back.Horizon != orig.Horizon ||
		back.Policy != orig.Policy || back.BrokerPolicy != orig.BrokerPolicy {
		t.Errorf("scalar fields lost: %+v vs %+v", back.Seed, orig.Seed)
	}
	if len(back.Generators) != len(orig.Generators) {
		t.Fatalf("generators: %d vs %d", len(back.Generators), len(orig.Generators))
	}
	if len(back.Gateways) != len(orig.Gateways) {
		t.Fatalf("gateways: %d vs %d", len(back.Gateways), len(orig.Gateways))
	}
	// Generator types preserved in order.
	for i := range back.Generators {
		if back.Generators[i].Name() != orig.Generators[i].Name() {
			t.Errorf("generator %d: %s vs %s", i,
				back.Generators[i].Name(), orig.Generators[i].Name())
		}
	}
}

func TestConfigFileRunsIdenticallyToCode(t *testing.T) {
	code := smallConfig(5)
	cf, err := FromConfig(code)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cf.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := DecodeConfigFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := parsed.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(code)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fromFile)
	if err != nil {
		t.Fatal(err)
	}
	if a.Central.TotalNUs() != b.Central.TotalNUs() ||
		len(a.Central.Jobs()) != len(b.Central.Jobs()) {
		t.Errorf("file round trip changed the simulation: %v/%d vs %v/%d",
			a.Central.TotalNUs(), len(a.Central.Jobs()),
			b.Central.TotalNUs(), len(b.Central.Jobs()))
	}
}

func TestDecodeConfigFileErrors(t *testing.T) {
	if _, err := DecodeConfigFile(strings.NewReader("{bad")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodeConfigFile(strings.NewReader(`{"unknown_field": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	cf := &ConfigFile{Policy: "martian"}
	if _, err := cf.ToConfig(); err == nil {
		t.Error("unknown policy accepted")
	}
	cf = &ConfigFile{Policy: "easy", BrokerPolicy: "martian"}
	if _, err := cf.ToConfig(); err == nil {
		t.Error("unknown broker policy accepted")
	}
	cf = &ConfigFile{Policy: "easy", BrokerPolicy: "random",
		Generators: []GeneratorSpec{{Type: "martian"}}}
	if _, err := cf.ToConfig(); err == nil {
		t.Error("unknown generator type accepted")
	}
}

func TestParsePolicies(t *testing.T) {
	for name, want := range map[string]string{
		"fcfs": "fcfs", "easy": "easy", "": "easy",
		"conservative": "conservative", "fairshare": "fairshare",
		"gang": "gang", "priority": "priority",
	} {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v,%v", name, got, err)
		}
	}
	for name, want := range map[string]metasched.SelectPolicy{
		"random": metasched.Random, "least-loaded": metasched.LeastLoaded,
		"best-estimated": metasched.BestEstimated, "": metasched.BestEstimated,
		"data-aware": metasched.DataAware,
	} {
		got, err := ParseBrokerPolicy(name)
		if err != nil || got != want {
			t.Errorf("ParseBrokerPolicy(%q) = %v,%v", name, got, err)
		}
	}
}
