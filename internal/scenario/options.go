// Functional options for building a Config. scenario.New replaces the
// struct-poking construction style (take DefaultConfig, mutate fields)
// that examples and experiments accreted: options compose, document their
// intent at the call site, and give the fleet a natural way to rebuild a
// per-seed Config from one shared option list. The Config struct and
// DefaultConfig remain exported as a deprecated shim so existing callers
// keep compiling.
package scenario

import (
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/metasched"
	"github.com/tgsim/tgmod/internal/users"
	"github.com/tgsim/tgmod/internal/workload"
)

// Option mutates a Config under construction.
type Option func(*Config)

// New builds a Config: the defaults for seed, then each option in order.
// Later options override earlier ones, so call-site composition reads
// top-to-bottom:
//
//	cfg := scenario.New(1234,
//		scenario.WithHorizon(10*des.Day),
//		scenario.WithDrain(2*des.Day),
//		scenario.WithObserver(scenario.LiveTelemetry(reg)),
//	)
func New(seed uint64, opts ...Option) Config {
	cfg := DefaultConfig(seed)
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// WithSeed overrides the master seed (useful when replaying a shared
// option list across fleet replications).
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithHorizon sets the simulated horizon.
func WithHorizon(h des.Time) Option {
	return func(c *Config) { c.Horizon = h }
}

// WithDrain sets the extra post-horizon time for queues to empty.
func WithDrain(d des.Time) Option {
	return func(c *Config) { c.DrainTime = d }
}

// WithPolicy sets the batch policy engine (by name) used at every site.
func WithPolicy(name string) Option {
	return func(c *Config) { c.Policy = name }
}

// WithBrokerPolicy sets the metascheduler's selection policy.
func WithBrokerPolicy(p metasched.SelectPolicy) Option {
	return func(c *Config) { c.BrokerPolicy = p }
}

// WithBrokerTagCoverage sets the probability broker jobs carry their tag.
func WithBrokerTagCoverage(f float64) Option {
	return func(c *Config) { c.BrokerTagCoverage = f }
}

// WithUsers sets the population sizing.
func WithUsers(u users.Config) Option {
	return func(c *Config) { c.Users = u }
}

// WithAwardNUs sets the mean allocation size.
func WithAwardNUs(nus float64) Option {
	return func(c *Config) { c.AwardNUs = nus }
}

// WithGateways replaces the gateway set.
func WithGateways(gws ...GatewayConfig) Option {
	return func(c *Config) { c.Gateways = gws }
}

// WithGatewayCoverage sets AttrCoverage on every configured gateway — the
// measurement-deployment knob the gateway-visibility experiments sweep.
func WithGatewayCoverage(coverage float64) Option {
	return func(c *Config) {
		for i := range c.Gateways {
			c.Gateways[i].AttrCoverage = coverage
		}
	}
}

// WithGenerators replaces the workload generator set. Generators are
// stateful; never share one slice across concurrent replications — build
// fresh generators per Config (fleet.Spec.Build exists for exactly this).
func WithGenerators(gens ...workload.Generator) Option {
	return func(c *Config) { c.Generators = gens }
}

// WithReportInterval sets how often site ledgers flush to the central DB.
func WithReportInterval(t des.Time) Option {
	return func(c *Config) { c.ReportInterval = t }
}

// WithMaintenance schedules recurring maintenance outages of the given
// length on every machine, staggered by site.
func WithMaintenance(every, length des.Time) Option {
	return func(c *Config) {
		c.MaintenanceEvery = every
		c.MaintenanceLength = length
	}
}

// WithFederation overrides the standard TG9 federation.
func WithFederation(f *grid.Federation) Option {
	return func(c *Config) { c.Federation = f }
}

// WithEventLimit bounds the kernel's future-event list: a run whose
// pending count exceeds n fails with des.ErrEventBacklog instead of
// draining a hot loop. Zero (the default) disables the bound.
func WithEventLimit(n int) Option {
	return func(c *Config) { c.EventLimit = n }
}

// WithObserver registers observers on the consolidated observability seam
// (see Observer). Repeated use appends; observers attach in registration
// order.
func WithObserver(obs ...Observer) Option {
	return func(c *Config) { c.Observers = append(c.Observers, obs...) }
}
