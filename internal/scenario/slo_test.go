package scenario

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/slo"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// TestSLOEvaluationEndToEnd runs a full week with the default objectives
// installed and checks the evaluator saw real traffic for every modality
// it watches.
func TestSLOEvaluationEndToEnd(t *testing.T) {
	cfg := smallConfig(11)
	ev, err := slo.New()
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	cfg.Observe = Observe{SLO: ev, Registry: reg}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished == 0 {
		t.Fatal("no jobs finished")
	}

	tab := ev.Table()
	if tab.Rows() != len(slo.DefaultObjectives()) {
		t.Fatalf("conformance rows = %d, want %d", tab.Rows(), len(slo.DefaultObjectives()))
	}
	for r := 0; r < tab.Rows(); r++ {
		if tab.Cell(r, 4) == "0" {
			t.Errorf("objective %s saw no events in a full week", tab.Cell(r, 0))
		}
	}

	// The evaluator surfaces through the registry.
	var om bytes.Buffer
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	for _, fam := range []string{"tg_slo_target", "tg_slo_events_total", "tg_slo_compliance", "tg_slo_burn_rate"} {
		if !strings.Contains(out, fam) {
			t.Errorf("exposition missing %s", fam)
		}
	}
	// Urgent jobs preempt their way to near-immediate starts: the headline
	// objective of the urgent-computing modality must hold in an
	// uncontended week.
	for _, f := range ev.Failed() {
		if f == "urgent-immediate" {
			t.Error("urgent-immediate objective failed on the default small scenario")
		}
	}
}

// TestSLODeterminism: the evaluator must not perturb the simulation, and
// its own exposition must be byte-identical across same-seed runs.
func TestSLODeterminism(t *testing.T) {
	run := func(withSLO bool) (string, int) {
		cfg := smallConfig(23)
		reg := telemetry.New()
		cfg.Observe = Observe{Registry: reg}
		if withSLO {
			ev, err := slo.New()
			if err != nil {
				t.Fatal(err)
			}
			cfg.Observe.SLO = ev
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var om bytes.Buffer
		if err := reg.WriteOpenMetrics(&om); err != nil {
			t.Fatal(err)
		}
		return om.String(), res.Finished
	}

	a, fa := run(true)
	b, fb := run(true)
	if a != b {
		t.Error("same-seed runs with SLO enabled diverge in exposition")
	}
	if fa != fb {
		t.Errorf("same-seed finished counts diverge: %d vs %d", fa, fb)
	}

	// Stripping the tg_slo_* families from an SLO run must reproduce the
	// non-SLO exposition exactly: evaluation is observation-only.
	c, fc := run(false)
	if fc != fa {
		t.Errorf("SLO changed the simulation: finished %d with, %d without", fa, fc)
	}
	var kept []string
	for _, line := range strings.Split(a, "\n") {
		if !strings.Contains(line, "tg_slo_") {
			kept = append(kept, line)
		}
	}
	if strings.Join(kept, "\n") != c {
		t.Error("non-SLO families differ between SLO and non-SLO runs")
	}
}
