// Observability wiring: hooks the obs layer into the assembled simulation.
// Everything here is conditional on the Observe config — an unconfigured
// run installs no listeners, no probes, no ticker, and no tracer.
package scenario

import (
	"github.com/tgsim/tgmod/internal/alloc"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/gateway"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/network"
	"github.com/tgsim/tgmod/internal/obs"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/slo"
)

// installJobSpans emits the per-job lifecycle as async spans on the
// machine's track: a "wait" span from queue entry to start, a "run" span
// from start to a terminal state, instants for rejections, and
// scheduler-decision/maintenance instants via the Probe seam.
func installJobSpans(rec obs.Recorder, k *des.Kernel, s *sched.Scheduler) {
	track := s.M.ID
	s.Subscribe(func(e sched.Event) {
		now := k.Now()
		id := int64(e.Job.ID)
		switch e.Kind {
		case sched.EventQueued:
			obs.Begin(rec, now, "job", "wait", track, id,
				obs.KV{Key: "user", Value: e.Job.User},
				obs.KV{Key: "cores", Value: e.Job.Cores},
				obs.KV{Key: "qos", Value: e.Job.QOS.String()},
				obs.KV{Key: "mod", Value: string(e.Job.Truth.Modality)})
		case sched.EventStarted:
			obs.End(rec, now, "job", "wait", track, id)
			obs.Begin(rec, now, "job", "run", track, id,
				obs.KV{Key: "user", Value: e.Job.User},
				obs.KV{Key: "cores", Value: e.Job.Cores})
		case sched.EventFinished:
			obs.End(rec, now, "job", "run", track, id,
				obs.KV{Key: "state", Value: e.Job.State.String()})
		case sched.EventPreempted:
			// The run span ends preempted; the requeue opens a fresh wait
			// span, matching the scheduler placing the victim back at the
			// queue head.
			obs.End(rec, now, "job", "run", track, id,
				obs.KV{Key: "state", Value: "preempted"})
			obs.Begin(rec, now, "job", "wait", track, id,
				obs.KV{Key: "user", Value: e.Job.User},
				obs.KV{Key: "cores", Value: e.Job.Cores},
				obs.KV{Key: "mod", Value: string(e.Job.Truth.Modality)},
				obs.KV{Key: "requeued", Value: true})
		case sched.EventKilled:
			// An unplanned kill only closes the run span: the fault layer
			// routes the victim next, and that re-entry (Requeue here or a
			// failover Submit elsewhere) emits the EventQueued that opens
			// the new wait span — possibly on a different machine's track.
			obs.End(rec, now, "job", "run", track, id,
				obs.KV{Key: "state", Value: "killed"})
		case sched.EventRejected:
			obs.Instant(rec, now, "job", "reject", track,
				obs.KV{Key: "job", Value: id},
				obs.KV{Key: "cores", Value: e.Job.Cores})
		}
	})
	s.Probe = func(kind string, j *job.Job) {
		cat := "sched"
		if j == nil {
			// Machine-level events (maintenance windows) carry no job.
			cat = "maint"
			obs.Instant(rec, k.Now(), cat, kind, track)
			return
		}
		obs.Instant(rec, k.Now(), cat, kind, track,
			obs.KV{Key: "job", Value: int64(j.ID)},
			obs.KV{Key: "cores", Value: j.Cores})
	}
}

// installSLO scores the machine's job starts and rejections against the
// evaluator's objectives. Only first starts are scored — a job's
// Preemptions counter is still zero then — because the user-visible
// promise is about time to first execution; requeues are already punished
// through the wait they added before that first start ever happened, and
// the trace-analysis layer accounts restart costs separately.
func installSLO(ev *slo.Evaluator, k *des.Kernel, s *sched.Scheduler) {
	s.Subscribe(func(e sched.Event) {
		switch e.Kind {
		case sched.EventStarted:
			if e.Job.Preemptions == 0 {
				now := k.Now()
				ev.ObserveStart(now, e.Job.Truth.Modality, float64(now-e.Job.SubmitTime))
			}
		case sched.EventRejected:
			ev.ObserveReject(k.Now(), e.Job.Truth.Modality)
		}
	})
}

// installTransferSpans emits every WAN transfer as an async span on the
// shared "wan" track.
func installTransferSpans(rec obs.Recorder, k *des.Kernel, f *network.Fabric) {
	f.OnStart = func(tr *network.Transfer) {
		// The job id (0 when the transfer is not job-bound) lets the
		// analysis layer attribute staging time to job timelines.
		obs.Begin(rec, k.Now(), "net", "transfer", "wan", tr.ID,
			obs.KV{Key: "src", Value: tr.Src},
			obs.KV{Key: "dst", Value: tr.Dst},
			obs.KV{Key: "bytes", Value: tr.Bytes},
			obs.KV{Key: "job", Value: tr.JobID})
	}
	f.OnComplete = func(tr *network.Transfer) {
		obs.End(rec, k.Now(), "net", "transfer", "wan", tr.ID)
	}
}

// installGatewaySpans emits each gateway request as an instant on the
// gateway's own track.
func installGatewaySpans(rec obs.Recorder, k *des.Kernel, gw *gateway.Gateway) {
	gw.OnRequest = func(endUser string, j *job.Job, attributed bool) {
		obs.Instant(rec, k.Now(), "gateway", "request", gw.ID,
			obs.KV{Key: "user", Value: endUser},
			obs.KV{Key: "job", Value: int64(j.ID)},
			obs.KV{Key: "attributed", Value: attributed})
	}
}

// buildSampler registers the standard virtual-time gauges: per-machine
// queue depth and instantaneous utilization, plus federation-wide activity.
func buildSampler(period des.Time, k *des.Kernel, fed *grid.Federation,
	scheds map[string]*sched.Scheduler, fabric *network.Fabric,
	bank *alloc.Bank, finished *int) *obs.Sampler {
	sm := obs.NewSampler(period)
	for _, m := range fed.Machines() {
		s := scheds[m.ID]
		cores := float64(m.BatchCores())
		sm.Register("queue_depth", m.ID, func() float64 {
			return float64(s.QueueLen())
		})
		sm.Register("utilization", m.ID, func() float64 {
			if cores == 0 {
				return 0
			}
			return (cores - float64(s.FreeBatchCores())) / cores
		})
	}
	sm.Register("federation", "active_transfers", func() float64 {
		return float64(fabric.Active())
	})
	sm.Register("federation", "pending_events", func() float64 {
		return float64(k.Pending())
	})
	sm.Register("federation", "jobs_finished", func() float64 {
		return float64(*finished)
	})
	sm.Register("federation", "alloc_balance_nus", func() float64 {
		return bank.TotalAwarded() - bank.TotalUsed()
	})
	return sm
}
