package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/obs"
)

// observedRun executes a small scenario with the full observability stack
// on and returns the result plus the serialized Chrome trace.
func observedRun(t *testing.T, seed uint64) (*Result, []byte) {
	t.Helper()
	cfg := smallConfig(seed)
	cfg.MaintenanceEvery = 3 * des.Day
	cfg.MaintenanceLength = 4 * des.Hour
	buf := obs.NewBuffer()
	cfg.Observe = Observe{Recorder: buf, SamplePeriod: des.Hour, Profile: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := buf.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	return res, out.Bytes()
}

func TestChromeTraceByteIdenticalAcrossRuns(t *testing.T) {
	_, a := observedRun(t, 11)
	_, b := observedRun(t, 11)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed runs produced different Chrome traces (%d vs %d bytes)",
			len(a), len(b))
	}
	// And the trace must be valid JSON of the expected shape.
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 100 {
		t.Errorf("trace has only %d events; expected a busy week", len(doc.TraceEvents))
	}
}

func TestObservabilityDoesNotPerturbResults(t *testing.T) {
	plain, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(7)
	cfg.Observe = Observe{Recorder: obs.NewBuffer(), SamplePeriod: des.Hour, Profile: true}
	observed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Finished != observed.Finished {
		t.Errorf("Finished: plain %d, observed %d", plain.Finished, observed.Finished)
	}
	if plain.Central.TotalNUs() != observed.Central.TotalNUs() {
		t.Errorf("TotalNUs: plain %v, observed %v",
			plain.Central.TotalNUs(), observed.Central.TotalNUs())
	}
	if plain.Central.DistinctUsers() != observed.Central.DistinctUsers() {
		t.Errorf("DistinctUsers: plain %d, observed %d",
			plain.Central.DistinctUsers(), observed.Central.DistinctUsers())
	}
}

func TestSamplerAndProfilerWiredIntoRun(t *testing.T) {
	res, _ := observedRun(t, 3)
	if res.Sampler == nil {
		t.Fatal("Result.Sampler is nil with SamplePeriod set")
	}
	groups := res.Sampler.Groups()
	want := map[string]bool{"queue_depth": false, "utilization": false, "federation": false}
	for _, g := range groups {
		if _, ok := want[g]; ok {
			want[g] = true
		}
	}
	for g, seen := range want {
		if !seen {
			t.Errorf("sampler missing group %q (have %v)", g, groups)
		}
	}
	for _, m := range res.Federation.Machines() {
		if res.Sampler.Series("queue_depth", m.ID) == nil {
			t.Errorf("no queue_depth series for machine %s", m.ID)
		}
		if res.Sampler.Series("utilization", m.ID) == nil {
			t.Errorf("no utilization series for machine %s", m.ID)
		}
	}
	var csv bytes.Buffer
	if err := res.Sampler.WriteCSV("federation", &csv); err != nil {
		t.Fatal(err)
	}
	if csv.Len() == 0 {
		t.Error("federation CSV is empty")
	}
	if res.Profiler == nil {
		t.Fatal("Result.Profiler is nil with Profile set")
	}
	if res.Profiler.Events() == 0 {
		t.Error("profiler recorded no events")
	}
	if res.Profiler.Events() != res.Kernel.Executed() {
		t.Errorf("profiler saw %d events, kernel executed %d",
			res.Profiler.Events(), res.Kernel.Executed())
	}
}
