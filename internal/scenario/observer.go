// The consolidated observability seam. Three PRs of observability features
// accreted three separate attachment mechanisms on Config — the obs tracer
// fields, the telemetry registry/snapshot fields, and the slo evaluator
// field. An Observer collapses them into one interface: each observer
// contributes to a single Attachment during assembly, and Run wires
// whatever the merged attachment asks for (folding des.CombineTracers
// behind the seam, so callers never manage tracer composition again).
package scenario

import (
	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/obs"
	"github.com/tgsim/tgmod/internal/perf"
	"github.com/tgsim/tgmod/internal/slo"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// Attachment is the single mount point observers write into. Run builds
// one Attachment per simulation (seeding it from the deprecated
// Config.Observe shim), offers it to every registered Observer in order,
// and then installs exactly what the merged result requests. Scalar slots
// (Recorder, Registry, Snapshots, SLO) follow a last-writer-wins rule;
// Tracers accumulate and are combined with des.CombineTracers internally.
type Attachment struct {
	// Recorder receives job-lifecycle, scheduler-decision, data-transfer,
	// gateway-session, and maintenance spans. Nil disables span tracing.
	Recorder obs.Recorder
	// SamplePeriod, when positive, samples per-machine queue depth and
	// utilization plus federation-wide gauges every period of virtual time.
	SamplePeriod des.Time
	// Profile, when true, installs a wall-clock kernel self-profiler.
	Profile bool
	// Phases, when non-nil, is installed as the kernel's phase-attribution
	// profiler (tracer + step observer + op profiler): per-event-name wall
	// time split across FEL/handler phases, with the scenario's accounting
	// flush charged as PhaseAccounting. Supersedes Profile (which measures
	// per-name totals only); both may be attached, but the phase profiler
	// already embeds the per-name profile.
	Phases *perf.Profiler
	// Registry, when non-nil, receives live labeled metrics.
	Registry *telemetry.Registry
	// Snapshots, when non-nil, receives wall-throttled progress snapshots
	// plus one final snapshot after the run completes.
	Snapshots func(*telemetry.Snapshot)
	// SLO, when non-nil, scores job starts and rejections against
	// virtual-time service-level objectives.
	SLO *slo.Evaluator
	// Tracers are additional raw kernel tracers; Run folds them together
	// with the profiler and snapshot publisher via des.CombineTracers.
	Tracers []des.Tracer
	// Packets receive every accounting packet at the moment a site ledger
	// flushes it to the central database — the live ingest seam the
	// streaming observatory rides. Handlers run on the simulation goroutine
	// after the central ingest, in site order, and must treat the packet as
	// immutable.
	Packets []func(at des.Time, p *accounting.Packet)
	// SnapshotExtras decorate every published progress snapshot (in order,
	// after the deterministic fields are built), letting observers surface
	// their own state in /status without a second publication channel.
	SnapshotExtras []func(*telemetry.Snapshot)
}

// enabled reports whether anything is attached.
func (a *Attachment) enabled() bool {
	return a.Recorder != nil || a.SamplePeriod > 0 || a.Profile || a.Phases != nil ||
		a.Registry != nil || a.Snapshots != nil || a.SLO != nil || len(a.Tracers) > 0 ||
		len(a.Packets) > 0 || len(a.SnapshotExtras) > 0
}

// Observer contributes observability wiring to a run. Implementations
// mutate the offered Attachment; they must not retain it past the call.
type Observer interface {
	Attach(a *Attachment)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(a *Attachment)

// Attach implements Observer.
func (f ObserverFunc) Attach(a *Attachment) { f(a) }

// RecordSpans returns an Observer that installs rec as the run's span
// recorder (job lifecycles, scheduler decisions, transfers, gateway
// sessions, maintenance windows).
func RecordSpans(rec obs.Recorder) Observer {
	return ObserverFunc(func(a *Attachment) { a.Recorder = rec })
}

// SampleEvery returns an Observer that samples machine and federation
// gauges every period of virtual time; the series land in Result.Sampler.
func SampleEvery(period des.Time) Observer {
	return ObserverFunc(func(a *Attachment) { a.SamplePeriod = period })
}

// ProfileKernel returns an Observer that installs the wall-clock kernel
// self-profiler; the profile lands in Result.Profiler.
func ProfileKernel() Observer {
	return ObserverFunc(func(a *Attachment) { a.Profile = true })
}

// ProfilePhases returns an Observer that installs p as the run's
// phase-attribution profiler (see internal/perf): the kernel feeds it FEL
// operation timings, and the scenario charges its accounting flushes to
// PhaseAccounting. The profiler also lands in Result.Phases. The
// constructor lives here rather than in perf because observers are a
// scenario concept; perf stays import-free of scenario.
func ProfilePhases(p *perf.Profiler) Observer {
	return ObserverFunc(func(a *Attachment) {
		if p != nil {
			a.Phases = p
		}
	})
}

// LiveTelemetry returns an Observer that binds reg as the run's live
// metric registry (tg_* families). Fleet replications use one private
// registry per replication and merge them afterwards.
func LiveTelemetry(reg *telemetry.Registry) Observer {
	return ObserverFunc(func(a *Attachment) { a.Registry = reg })
}

// StreamSnapshots returns an Observer that delivers wall-throttled
// progress snapshots to sink during the run (plus one final snapshot).
func StreamSnapshots(sink func(*telemetry.Snapshot)) Observer {
	return ObserverFunc(func(a *Attachment) { a.Snapshots = sink })
}

// EvaluateSLO returns an Observer that scores the run against ev's
// virtual-time objectives; when a registry is also attached the evaluator
// is bound to it as tg_slo_* families.
func EvaluateSLO(ev *slo.Evaluator) Observer {
	return ObserverFunc(func(a *Attachment) { a.SLO = ev })
}

// TraceKernel returns an Observer that adds tr as a raw kernel tracer,
// composed with whatever other tracers the run installs.
func TraceKernel(tr des.Tracer) Observer {
	return ObserverFunc(func(a *Attachment) {
		if tr != nil {
			a.Tracers = append(a.Tracers, tr)
		}
	})
}

// TapPackets returns an Observer that receives every accounting packet as
// a site ledger flushes it centrally — the ordered live record stream a
// streaming consumer (internal/stream) ingests during the run.
func TapPackets(fn func(at des.Time, p *accounting.Packet)) Observer {
	return ObserverFunc(func(a *Attachment) {
		if fn != nil {
			a.Packets = append(a.Packets, fn)
		}
	})
}

// DecorateSnapshots returns an Observer that mutates every published
// progress snapshot after its deterministic fields are built, so streaming
// consumers can surface ingest/backpressure state in /status.
func DecorateSnapshots(fn func(*telemetry.Snapshot)) Observer {
	return ObserverFunc(func(a *Attachment) {
		if fn != nil {
			a.SnapshotExtras = append(a.SnapshotExtras, fn)
		}
	})
}

// attachment merges the deprecated Observe shim with the registered
// observers into the single view Run wires from.
func (cfg *Config) attachment() Attachment {
	a := Attachment{
		Recorder:     cfg.Observe.Recorder,
		SamplePeriod: cfg.Observe.SamplePeriod,
		Profile:      cfg.Observe.Profile,
		Registry:     cfg.Observe.Registry,
		Snapshots:    cfg.Observe.Snapshots,
		SLO:          cfg.Observe.SLO,
	}
	for _, o := range cfg.Observers {
		if o != nil {
			o.Attach(&a)
		}
	}
	return a
}
