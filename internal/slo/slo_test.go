package slo

import (
	"math"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/telemetry"
)

func TestObjectiveValidation(t *testing.T) {
	bad := []Objective{
		{Name: "", Modality: job.ModUrgent, WaitThreshold: 60, Target: 0.9},
		{Name: "x", Modality: "", WaitThreshold: 60, Target: 0.9},
		{Name: "x", Modality: job.ModUrgent, WaitThreshold: -1, Target: 0.9},
		{Name: "x", Modality: job.ModUrgent, WaitThreshold: 60, Target: 0},
		{Name: "x", Modality: job.ModUrgent, WaitThreshold: 60, Target: 1},
	}
	for i, obj := range bad {
		if _, err := New(obj); err == nil {
			t.Errorf("objective %d: expected validation error", i)
		}
	}
	if _, err := New(
		Objective{Name: "a", Modality: job.ModUrgent, WaitThreshold: 60, Target: 0.9},
		Objective{Name: "a", Modality: job.ModGateway, WaitThreshold: 60, Target: 0.9},
	); err == nil {
		t.Error("expected duplicate-name error")
	}
	if _, err := New(DefaultObjectives()...); err != nil {
		t.Errorf("default objectives must validate: %v", err)
	}
}

func TestComplianceAndMet(t *testing.T) {
	e, err := New(Objective{Name: "u", Modality: job.ModUrgent, WaitThreshold: 60, Target: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if !e.MetAll() {
		t.Error("unchallenged objective must count as met")
	}
	// 3 good, 1 bad → 75% exactly meets a 0.75 target.
	e.ObserveStart(100, job.ModUrgent, 10)
	e.ObserveStart(200, job.ModUrgent, 60) // at threshold: good
	e.ObserveStart(300, job.ModUrgent, 61) // over: bad
	e.ObserveStart(400, job.ModUrgent, 0)
	if got := e.states[0].compliance(); got != 0.75 {
		t.Errorf("compliance = %v, want 0.75", got)
	}
	if !e.MetAll() {
		t.Error("75% compliance must meet a 0.75 target")
	}
	e.ObserveReject(500, job.ModUrgent)
	if e.MetAll() {
		t.Error("3/5 good must miss a 0.75 target")
	}
	if f := e.Failed(); len(f) != 1 || f[0] != "u" {
		t.Errorf("Failed() = %v, want [u]", f)
	}
	// Non-matching modalities are ignored.
	e.ObserveStart(600, job.ModBatchCapacity, 1e9)
	if n := e.states[0].good + e.states[0].bad; n != 5 {
		t.Errorf("events = %d, want 5", n)
	}
}

func TestRingExpiry(t *testing.T) {
	r := newRing(60, 10) // 10-minute window, 1-minute buckets
	r.add(0, false)
	if good, bad := r.totals(0); good != 0 || bad != 1 {
		t.Fatalf("totals = %d/%d, want 0/1", good, bad)
	}
	// Still in-window 9 buckets later.
	if _, bad := r.totals(9 * 60); bad != 1 {
		t.Error("observation expired early")
	}
	// Gone once the clock laps its bucket.
	if _, bad := r.totals(10 * 60); bad != 0 {
		t.Error("observation failed to expire")
	}
	// A huge jump clears everything without wrapping trouble.
	r.add(11*60, true)
	r.add(1e9, false)
	if good, bad := r.totals(1e9); good != 0 || bad != 1 {
		t.Errorf("after lap: totals = %d/%d, want 0/1", good, bad)
	}
}

func TestBurnRateWindows(t *testing.T) {
	e, err := New(Objective{Name: "u", Modality: job.ModUrgent, WaitThreshold: 60, Target: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	st := e.states[0]
	// All-bad traffic burns at 1/(1-0.9) = 10× in every window.
	for i := 0; i < 5; i++ {
		e.ObserveStart(des.Time(i*30), job.ModUrgent, 1e6)
	}
	for i := range burnWindows {
		if br := st.burnRate(i, 150); math.Abs(br-10) > 1e-9 {
			t.Errorf("window %s: burn = %v, want 10", burnWindows[i].label, br)
		}
		if math.Abs(st.peak[i]-10) > 1e-9 {
			t.Errorf("window %s: peak = %v, want 10", burnWindows[i].label, st.peak[i])
		}
	}
	// An hour of good traffic later, the 1h window has recovered (bad
	// events expired) while 6h/24h still carry the burn.
	base := des.Time(2 * 3600)
	for i := 0; i < 20; i++ {
		e.ObserveStart(base+des.Time(i*60), job.ModUrgent, 0)
	}
	now := base + 20*60
	if br := st.burnRate(0, now); br != 0 {
		t.Errorf("1h window: burn = %v, want 0 after recovery", br)
	}
	if br := st.burnRate(1, now); br <= 0 {
		t.Errorf("6h window: burn = %v, want > 0", br)
	}
	if br := st.burnRate(2, now); br <= 0 {
		t.Errorf("24h window: burn = %v, want > 0", br)
	}
}

func TestBindExposesFamilies(t *testing.T) {
	reg := telemetry.New()
	e, err := New(DefaultObjectives()...)
	if err != nil {
		t.Fatal(err)
	}
	now := des.Time(0)
	e.Now = func() des.Time { return now }
	e.Bind(reg)

	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	empty := sb.String()
	for _, fam := range []string{"tg_slo_target", "tg_slo_events_total", "tg_slo_compliance", "tg_slo_burn_rate"} {
		if !strings.Contains(empty, fam) {
			t.Errorf("exposition missing family %s", fam)
		}
	}
	// Series exist for every objective before any traffic (deterministic
	// series set), and compliance defaults to 1.
	if !strings.Contains(empty, `tg_slo_events_total{objective="urgent-immediate",result="bad"} 0`) {
		t.Error("bad-result series not pre-created at zero")
	}
	if !strings.Contains(empty, `tg_slo_compliance{objective="urgent-immediate"} 1`) {
		t.Error("unchallenged compliance should expose 1")
	}

	now = 100
	e.ObserveStart(now, job.ModUrgent, 10)
	e.ObserveStart(now, job.ModUrgent, 1e6)
	sb.Reset()
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`tg_slo_events_total{objective="urgent-immediate",result="good"} 1`,
		`tg_slo_events_total{objective="urgent-immediate",result="bad"} 1`,
		`tg_slo_compliance{objective="urgent-immediate"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The burn-rate gauge must be live and non-zero (its exact value is a
	// float quotient; pin the series, not the digits).
	burnLine := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `tg_slo_burn_rate{objective="urgent-immediate",window="1h"} `) {
			burnLine = line
		}
	}
	if burnLine == "" || strings.HasSuffix(burnLine, " 0") {
		t.Errorf("1h burn-rate series missing or zero: %q", burnLine)
	}
}

func TestConformanceTable(t *testing.T) {
	e, err := New(
		Objective{Name: "u", Modality: job.ModUrgent, WaitThreshold: 60, Target: 0.9},
		Objective{Name: "i", Modality: job.ModInteractive, WaitThreshold: 900, Target: 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	e.ObserveStart(10, job.ModUrgent, 1e6) // u: 0% < 90% → NO
	e.ObserveStart(10, job.ModInteractive, 5)
	tab := e.Table()
	if tab.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", tab.Rows())
	}
	if got := tab.Cell(0, 7); got != "NO" {
		t.Errorf("u met = %q, want NO", got)
	}
	if got := tab.Cell(1, 7); got != "yes" {
		t.Errorf("i met = %q, want yes", got)
	}
	out := tab.String()
	if !strings.Contains(out, "SLO conformance") {
		t.Error("table missing title")
	}
}

func TestNilEvaluatorSafe(t *testing.T) {
	var e *Evaluator
	e.ObserveStart(0, job.ModUrgent, 0)
	e.ObserveReject(0, job.ModUrgent)
	e.Bind(telemetry.New())
	if !e.MetAll() {
		t.Error("nil evaluator must report met")
	}
	if e.Failed() != nil {
		t.Error("nil evaluator must report no failures")
	}
	if e.Table() == nil {
		t.Error("nil evaluator must still render an empty table")
	}
}
