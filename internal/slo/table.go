// Telemetry binding and end-of-run conformance reporting for the SLO
// evaluator.
package slo

import (
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// Bind surfaces the evaluator as tg_slo_* telemetry families:
//
//	tg_slo_target{objective}              gauge, the configured target
//	tg_slo_events_total{objective,result} counter, good/bad observations
//	tg_slo_compliance{objective}          gauge, lifetime good fraction
//	tg_slo_burn_rate{objective,window}    gauge, current burn per window
//
// Every series is created eagerly — including zero-valued ones for
// objectives that never fire — so the exposition's series set is a
// function of configuration, not workload, and same-config runs stay
// byte-comparable. Compliance and burn rates are callback gauges read at
// exposition time from the simulation goroutine. Nil-safe on both sides.
func (e *Evaluator) Bind(reg *telemetry.Registry) {
	if e == nil || reg == nil {
		return
	}
	target := reg.Gauge("tg_slo_target",
		"Configured good-fraction target per SLO objective.", "objective")
	events := reg.Counter("tg_slo_events_total",
		"SLO observations by objective and result.", "objective", "result")
	compliance := reg.Gauge("tg_slo_compliance",
		"Lifetime good fraction per SLO objective.", "objective")
	burn := reg.Gauge("tg_slo_burn_rate",
		"Error-budget burn rate per SLO objective and trailing virtual-time window.",
		"objective", "window")
	for _, st := range e.states {
		st := st
		target.With(st.obj.Name).Set(st.obj.Target)
		st.goodC = events.With(st.obj.Name, "good")
		st.badC = events.With(st.obj.Name, "bad")
		compliance.Func(st.compliance, st.obj.Name)
		for i := range burnWindows {
			i := i
			burn.Func(func() float64 { return st.burnRate(i, e.now()) },
				st.obj.Name, burnWindows[i].label)
		}
	}
}

// Table renders the end-of-run conformance report: one row per objective
// with lifetime compliance against target and the worst burn rate each
// window saw during the run.
func (e *Evaluator) Table() *report.Table {
	t := report.NewTable("SLO conformance",
		"objective", "modality", "threshold s", "target", "events", "bad",
		"compliance", "met", "peak burn 1h", "peak burn 6h", "peak burn 24h")
	if e == nil {
		return t
	}
	for _, s := range e.states {
		met := "yes"
		if !s.met() {
			met = "NO"
		}
		t.AddRowf(s.obj.Name, string(s.obj.Modality), s.obj.WaitThreshold,
			report.Percent(s.obj.Target), s.good+s.bad, s.bad,
			report.Percent(s.compliance()), met,
			s.peak[0], s.peak[1], s.peak[2])
	}
	return t
}
