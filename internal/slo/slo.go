// Package slo defines virtual-time service-level objectives for the
// simulated cyberinfrastructure and evaluates them incrementally while a
// run executes. Each objective binds a usage modality to a queue-wait
// threshold and a target good-fraction — "urgent jobs start within a
// minute, 99% of the time" — mirroring the paper's observation that
// different modalities demand categorically different responsiveness, not
// merely more throughput.
//
// Evaluation is event-driven on the scheduler seam (no polling events are
// added to the kernel): every first job start contributes one good or bad
// observation to its matching objectives, and rejections always count bad.
// Besides lifetime compliance, the evaluator maintains multi-window
// burn-rate state over ring buffers bucketed in virtual time, the standard
// SRE construction: a burn rate of 1.0 means the error budget (1 − target)
// is being consumed exactly as fast as it accrues; sustained rates above
// 1.0 over both a long and a short window indicate a real, ongoing breach
// rather than a transient spike.
package slo

import (
	"fmt"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// Objective is one service-level objective: jobs of Modality should begin
// executing within WaitThreshold, at least Target of the time.
type Objective struct {
	// Name identifies the objective in tables and telemetry labels.
	Name string
	// Modality selects which jobs the objective scores.
	Modality job.Modality
	// WaitThreshold is the maximum acceptable queue wait in virtual
	// seconds; a first start at or under it is a good event.
	WaitThreshold float64
	// Target is the required good fraction in [0,1); the error budget is
	// 1 − Target.
	Target float64
}

// Validate reports a malformed objective.
func (o Objective) Validate() error {
	switch {
	case o.Name == "":
		return fmt.Errorf("slo: objective with empty name")
	case o.Modality == "":
		return fmt.Errorf("slo: objective %s: empty modality", o.Name)
	case o.WaitThreshold < 0:
		return fmt.Errorf("slo: objective %s: negative wait threshold", o.Name)
	case o.Target <= 0 || o.Target >= 1:
		return fmt.Errorf("slo: objective %s: target %v outside (0,1)", o.Name, o.Target)
	}
	return nil
}

// DefaultObjectives returns the standard per-modality objectives. The
// thresholds encode the paper's modality taxonomy: urgent computing is
// only urgent if it starts near-immediately; interactive sessions are only
// interactive if the wait is bounded in minutes; batch tolerates hours but
// not unbounded waits.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "urgent-immediate", Modality: job.ModUrgent, WaitThreshold: 60, Target: 0.99},
		{Name: "interactive-p95-wait", Modality: job.ModInteractive, WaitThreshold: 900, Target: 0.95},
		{Name: "gateway-latency", Modality: job.ModGateway, WaitThreshold: 600, Target: 0.90},
		{Name: "capacity-wait", Modality: job.ModBatchCapacity, WaitThreshold: 4 * 3600, Target: 0.85},
		{Name: "capability-wait", Modality: job.ModBatchCapability, WaitThreshold: 24 * 3600, Target: 0.80},
	}
}

// burnWindows are the burn-rate evaluation horizons in virtual time. The
// multi-window pairing (short detects, long confirms) follows standard
// burn-rate alerting practice.
var burnWindows = []struct {
	label string
	width des.Time // bucket width; window = width × burnBuckets
}{
	{"1h", 5 * 60},
	{"6h", 30 * 60},
	{"24h", 2 * 3600},
}

// burnBuckets is the ring length for every window.
const burnBuckets = 12

// objState is the accumulated evaluation state of one objective.
type objState struct {
	obj   Objective
	good  int64
	bad   int64
	rings []*ring
	// peak tracks the worst burn rate seen per window, for the conformance
	// table (the lifetime compliance can look fine while a 6h window
	// burned hard mid-run).
	peak []float64
	// goodC/badC mirror observations into telemetry when Bind was called;
	// nil (and so no-ops) otherwise.
	goodC, badC *telemetry.Counter
}

// observe scores one event at time now.
func (s *objState) observe(now des.Time, good bool) {
	if good {
		s.good++
		s.goodC.Inc()
	} else {
		s.bad++
		s.badC.Inc()
	}
	for i, r := range s.rings {
		r.add(now, good)
		if br := s.burnRate(i, now); br > s.peak[i] {
			s.peak[i] = br
		}
	}
}

// compliance returns the lifetime good fraction (1.0 with no events: an
// objective that was never challenged was never violated).
func (s *objState) compliance() float64 {
	total := s.good + s.bad
	if total == 0 {
		return 1
	}
	return float64(s.good) / float64(total)
}

// burnRate returns window i's current burn rate at time now: the in-window
// bad fraction divided by the error budget.
func (s *objState) burnRate(i int, now des.Time) float64 {
	good, bad := s.rings[i].totals(now)
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - s.obj.Target)
}

// met reports whether lifetime compliance reached target.
func (s *objState) met() bool { return s.compliance() >= s.obj.Target }

// Evaluator scores a run's jobs against a set of objectives.
type Evaluator struct {
	states []*objState
	byMod  map[job.Modality][]*objState
	// Now supplies current virtual time for burn-rate exposition; the
	// scenario sets it to the kernel clock when installing the evaluator.
	// Nil falls back to the latest observation time.
	Now     func() des.Time
	lastObs des.Time
}

// New builds an evaluator over the given objectives (DefaultObjectives
// when none are passed).
func New(objectives ...Objective) (*Evaluator, error) {
	if len(objectives) == 0 {
		objectives = DefaultObjectives()
	}
	e := &Evaluator{byMod: make(map[job.Modality][]*objState)}
	seen := make(map[string]bool)
	for _, obj := range objectives {
		if err := obj.Validate(); err != nil {
			return nil, err
		}
		if seen[obj.Name] {
			return nil, fmt.Errorf("slo: duplicate objective name %s", obj.Name)
		}
		seen[obj.Name] = true
		st := &objState{obj: obj, peak: make([]float64, len(burnWindows))}
		for _, w := range burnWindows {
			st.rings = append(st.rings, newRing(w.width, burnBuckets))
		}
		e.states = append(e.states, st)
		e.byMod[obj.Modality] = append(e.byMod[obj.Modality], st)
	}
	return e, nil
}

// Objectives returns the evaluated objectives in declaration order.
func (e *Evaluator) Objectives() []Objective {
	out := make([]Objective, len(e.states))
	for i, s := range e.states {
		out[i] = s.obj
	}
	return out
}

// ObserveStart scores a job's first start: wait at or under each matching
// objective's threshold is good, over is bad. Restarts after preemption
// are not re-scored — the user-visible promise is about time to first
// execution. Nil-safe.
func (e *Evaluator) ObserveStart(now des.Time, mod job.Modality, waitSeconds float64) {
	if e == nil {
		return
	}
	e.lastObs = now
	for _, s := range e.byMod[mod] {
		s.observe(now, waitSeconds <= s.obj.WaitThreshold)
	}
}

// ObserveReject scores a rejection as a bad event for every matching
// objective: a job turned away never meets any wait promise. Nil-safe.
func (e *Evaluator) ObserveReject(now des.Time, mod job.Modality) {
	if e == nil {
		return
	}
	e.lastObs = now
	for _, s := range e.byMod[mod] {
		s.observe(now, false)
	}
}

// now returns the exposition clock.
func (e *Evaluator) now() des.Time {
	if e.Now != nil {
		return e.Now()
	}
	return e.lastObs
}

// MetAll reports whether every objective met its target. Nil-safe (an
// absent evaluator has nothing to violate).
func (e *Evaluator) MetAll() bool {
	if e == nil {
		return true
	}
	for _, s := range e.states {
		if !s.met() {
			return false
		}
	}
	return true
}

// Failed returns the names of objectives that missed target, in
// declaration order.
func (e *Evaluator) Failed() []string {
	if e == nil {
		return nil
	}
	var out []string
	for _, s := range e.states {
		if !s.met() {
			out = append(out, s.obj.Name)
		}
	}
	return out
}
