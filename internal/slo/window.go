package slo

import "github.com/tgsim/tgmod/internal/des"

// ring is a fixed-size ring of good/bad buckets over virtual time. Buckets
// are absolute-indexed — bucket i covers [i·width, (i+1)·width) — so the
// ring always represents the trailing len(buckets)·width of virtual time
// and advancing is just zeroing the buckets the clock skipped over. State
// is O(buckets) regardless of event rate.
type ring struct {
	width   des.Time
	buckets []bucket
	lastIdx int64 // absolute index of the bucket holding lastObs
	primed  bool  // false until the first add
}

type bucket struct{ good, bad int64 }

func newRing(width des.Time, n int) *ring {
	return &ring{width: width, buckets: make([]bucket, n)}
}

// idx maps a time to its absolute bucket index.
func (r *ring) idx(t des.Time) int64 { return int64(t / r.width) }

// advance rolls the ring forward to now, clearing buckets whose time span
// has rotated out. A full lap clears everything.
func (r *ring) advance(now des.Time) {
	i := r.idx(now)
	if !r.primed {
		r.primed = true
		r.lastIdx = i
		return
	}
	if i <= r.lastIdx {
		return // same bucket, or an out-of-order observation: nothing expires
	}
	steps := i - r.lastIdx
	if steps > int64(len(r.buckets)) {
		steps = int64(len(r.buckets))
	}
	for s := int64(1); s <= steps; s++ {
		r.buckets[(r.lastIdx+s)%int64(len(r.buckets))] = bucket{}
	}
	r.lastIdx = i
}

// add records one observation at time now.
func (r *ring) add(now des.Time, good bool) {
	r.advance(now)
	b := &r.buckets[r.idx(now)%int64(len(r.buckets))]
	if good {
		b.good++
	} else {
		b.bad++
	}
}

// totals returns the in-window good/bad counts as of now.
func (r *ring) totals(now des.Time) (good, bad int64) {
	r.advance(now)
	for _, b := range r.buckets {
		good += b.good
		bad += b.bad
	}
	return good, bad
}
