// Series derivation: flattening a loaded run into comparable name→value
// pairs. Three sources feed the set, each namespaced by a prefix so a
// shift is attributable at a glance: raw OpenMetrics series keep their
// exposed identity, accounting aggregates get "acct:", and the wait
// decomposition reconstructed from the event stream gets "decomp:".
package regress

import (
	"fmt"

	"github.com/tgsim/tgmod/internal/analysis"
)

// Series flattens the run into its full comparable series set.
func (r *Run) Series() (map[string]float64, error) {
	out := make(map[string]float64, len(r.Metrics))
	for k, v := range r.Metrics {
		out[k] = v
	}
	if r.Central != nil {
		acctSeries(r, out)
	}
	if r.Events != nil {
		if err := decompSeries(r, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// acctSeries derives aggregates from the accounting database.
func acctSeries(r *Run, out map[string]float64) {
	c := r.Central
	out["acct:jobs_total"] = float64(len(c.Jobs()))
	out["acct:transfers_total"] = float64(len(c.Transfers()))
	out["acct:nus_total"] = c.TotalNUs()
	out["acct:distinct_users"] = float64(c.DistinctUsers())
	type agg struct {
		jobs int
		nus  float64
		wait float64
	}
	byMod := make(map[string]*agg)
	jobs := c.Jobs()
	for i := range jobs {
		rec := &jobs[i]
		mod := rec.TruthModality
		if mod == "" {
			mod = "unknown"
		}
		a := byMod[mod]
		if a == nil {
			a = &agg{}
			byMod[mod] = a
		}
		a.jobs++
		a.nus += rec.NUs
		a.wait += rec.WaitSeconds()
	}
	for mod, a := range byMod {
		out[fmt.Sprintf("acct:jobs{mod=%s}", mod)] = float64(a.jobs)
		out[fmt.Sprintf("acct:nus{mod=%s}", mod)] = a.nus
		out[fmt.Sprintf("acct:wait_s{mod=%s}", mod)] = a.wait
	}
}

// decompSeries reconstructs timelines from the event stream and flattens
// the per-modality wait decomposition, so a diff names exactly which
// latency component of which modality moved.
func decompSeries(r *Run, out map[string]float64) error {
	ts, err := analysis.Reconstruct(r.Events)
	if err != nil {
		return fmt.Errorf("regress: reconstructing %s: %w", r.Dir, err)
	}
	out["decomp:jobs_seen"] = float64(len(ts.Jobs))
	out["decomp:rejected"] = float64(ts.Rejected)
	out["decomp:incomplete"] = float64(ts.Incomplete)
	for _, d := range analysis.Decompose(ts) {
		p := func(component string) string {
			return fmt.Sprintf("decomp:%s{mod=%s}", component, d.Modality)
		}
		out[p("jobs")] = float64(d.Jobs)
		out[p("preempted")] = float64(d.Preempted)
		out[p("wait_s")] = d.WaitSeconds
		out[p("requeue_s")] = d.RequeueWaitSeconds
		out[p("lost_run_s")] = d.LostRunSeconds
		out[p("run_s")] = d.RunSeconds
		out[p("end_to_end_s")] = d.EndToEndSeconds
		out[p("transfer_s")] = d.TransferSeconds
	}
	return nil
}
