// Diffing and reporting. The report is deterministic — series sorted by
// name, values formatted with %v — so identical inputs produce
// byte-identical text, which is itself part of the self-test contract.
package regress

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// runtimePrefix marks the wall-clock-only runtime telemetry family
// (internal/perf). Those series describe the host process, not the
// simulation — two correct same-seed runs will always disagree on them —
// so the differ skips them wholesale. They should never reach an exported
// exposition in the first place (they live in a perf-owned registry); the
// skip is defense in depth against a future consumer splicing them in.
const runtimePrefix = "tg_runtime_"

// Tolerance bounds how far a series may move before it counts as changed:
// |a−b| > Abs + Rel·max(|a|,|b|). The zero value demands exact equality,
// the right default for a deterministic simulator.
type Tolerance struct {
	Abs float64
	Rel float64
}

// exceeded reports whether the a→b move is out of tolerance.
func (t Tolerance) exceeded(a, b float64) bool {
	return math.Abs(a-b) > t.Abs+t.Rel*math.Max(math.Abs(a), math.Abs(b))
}

// Delta is one out-of-tolerance series.
type Delta struct {
	Series string
	A, B   float64
}

// Report is the outcome of comparing two runs.
type Report struct {
	// Added/Removed list series present in only one run, sorted.
	Added   []string
	Removed []string
	// Changed lists series that moved beyond tolerance, sorted by name.
	Changed []Delta
	// ASeries/BSeries count the compared series sets.
	ASeries, BSeries int
}

// Empty reports a clean diff: same series, same values (within tolerance).
func (r *Report) Empty() bool {
	return len(r.Added) == 0 && len(r.Removed) == 0 && len(r.Changed) == 0
}

// Diff compares run A (the baseline) with run B (the candidate).
// Wall-clock-only series (the tg_runtime_ family) are excluded from both
// sides before any comparison.
func Diff(a, b map[string]float64, tol Tolerance) *Report {
	rep := &Report{}
	for k, av := range a {
		if strings.HasPrefix(k, runtimePrefix) {
			continue
		}
		rep.ASeries++
		bv, ok := b[k]
		if !ok {
			rep.Removed = append(rep.Removed, k)
			continue
		}
		if tol.exceeded(av, bv) {
			rep.Changed = append(rep.Changed, Delta{Series: k, A: av, B: bv})
		}
	}
	for k := range b {
		if strings.HasPrefix(k, runtimePrefix) {
			continue
		}
		rep.BSeries++
		if _, ok := a[k]; !ok {
			rep.Added = append(rep.Added, k)
		}
	}
	sort.Strings(rep.Added)
	sort.Strings(rep.Removed)
	sort.Slice(rep.Changed, func(i, j int) bool { return rep.Changed[i].Series < rep.Changed[j].Series })
	return rep
}

// WriteText renders the report. An empty report is a single line, so the
// clean case is trivially byte-comparable in CI.
func (r *Report) WriteText(w io.Writer) error {
	if r.Empty() {
		_, err := fmt.Fprintf(w, "no regressions: %d series identical\n", r.ASeries)
		return err
	}
	if _, err := fmt.Fprintf(w, "REGRESSIONS: %d changed, %d added, %d removed (%d vs %d series)\n",
		len(r.Changed), len(r.Added), len(r.Removed), r.ASeries, r.BSeries); err != nil {
		return err
	}
	for _, d := range r.Changed {
		delta := d.B - d.A
		sign := "+"
		if delta < 0 {
			sign = ""
		}
		if _, err := fmt.Fprintf(w, "  changed %s: %v -> %v (%s%v)\n",
			d.Series, d.A, d.B, sign, delta); err != nil {
			return err
		}
	}
	for _, k := range r.Added {
		if _, err := fmt.Fprintf(w, "  added   %s\n", k); err != nil {
			return err
		}
	}
	for _, k := range r.Removed {
		if _, err := fmt.Fprintf(w, "  removed %s\n", k); err != nil {
			return err
		}
	}
	return nil
}
