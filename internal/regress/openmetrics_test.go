package regress

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/telemetry"
)

// TestParseOpenMetricsGolden pins the parser against a checked-in
// exposition: exact series identities (name + label set, as exposed) and
// exact values.
func TestParseOpenMetricsGolden(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "golden.om"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ParseOpenMetrics(f)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		`tg_jobs_finished_total{modality="batch-capacity"}`: 2258,
		`tg_jobs_finished_total{modality="gateway"}`:        1072,
		`tg_nus_charged`: 2.1020939e+07,
		`tg_queue_wait_seconds{machine="ridge-xt",quantile="0.5"}`: 431.25,
		`tg_drift_rate{window="1h"}`:                               0,
		`tg_drift_rate{window="24h"}`:                              0.0413,
		`tg_label_with_space{app="my app"}`:                        -17.5,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parsed golden exposition:\n got %v\nwant %v", got, want)
	}
}

// TestParseOpenMetricsEncodeParseEncode: render a rich registry, parse it,
// re-render the parsed samples, and parse again — the two parses must be
// identical, and every sample line of the original exposition must be
// accounted for (nothing silently skipped or aliased).
func TestParseOpenMetricsEncodeParseEncode(t *testing.T) {
	reg := telemetry.New()
	cv := reg.Counter("tg_c_total", "Counter.", "mod", "src")
	cv.With("ensemble", "inference").Add(7)
	cv.With("gateway", "attribute").Add(11)
	reg.Gauge("tg_neg", "Negative gauge.").With().Set(-2.25)
	reg.Gauge("tg_tiny", "Sub-epsilon gauge.").With().Set(4e-12)
	reg.Gauge("tg_spaced", "Label value with spaces.", "app").With("a b c").Set(1)
	reg.HistogramVec("tg_h_seconds", "Histogram.", "m").With("x").Observe(0.5)

	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	exposition := sb.String()
	first, err := ParseOpenMetrics(strings.NewReader(exposition))
	if err != nil {
		t.Fatal(err)
	}
	// Every non-comment line is one sample; the parse must keep them all.
	samples := 0
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		samples++
	}
	if len(first) != samples {
		t.Fatalf("parsed %d series from %d sample lines", len(first), samples)
	}

	// Re-encode from the parsed map and parse again.
	keys := make([]string, 0, len(first))
	for k := range first {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var re strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&re, "%s %g\n", k, first[k])
	}
	re.WriteString("# EOF\n")
	second, err := ParseOpenMetrics(strings.NewReader(re.String()))
	if err != nil {
		t.Fatalf("re-encoded exposition failed to parse: %v\n%s", err, re.String())
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("encode→parse→encode→parse drifted:\nfirst  %v\nsecond %v", first, second)
	}
}

// TestParseOpenMetricsMalformed: each malformed input names its own error;
// none of them parse silently.
func TestParseOpenMetricsMalformed(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"no value", "tg_x\n", "no value"},
		{"trailing space", "tg_x 1 \n", "no value"},
		{"value only", " 1\n", "no value"},
		{"non-numeric", "tg_x one\n", "bad value"},
		{"duplicate series", "tg_x 1\ntg_x 2\n", "duplicate series"},
		{"duplicate labeled", "tg_x{a=\"b\"} 1\ntg_x{a=\"b\"} 2\n", "duplicate series"},
	}
	for _, c := range cases {
		_, err := ParseOpenMetrics(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: %q parsed without error", c.name, c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not name %q", c.name, err, c.wantErr)
		}
	}
	// Errors carry the offending line number.
	_, err := ParseOpenMetrics(strings.NewReader("tg_ok 1\n# c\ntg_bad x\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v does not locate line 3", err)
	}
}

// FuzzParseOpenMetrics: arbitrary input never panics, and accepted input
// reparses to the same series after re-encoding (parser self-consistency).
func FuzzParseOpenMetrics(f *testing.F) {
	f.Add("# HELP tg_x help\n# TYPE tg_x gauge\ntg_x 1\n# EOF\n")
	f.Add(`tg_c_total{mod="ensemble",src="inference"} 7` + "\n")
	f.Add(`tg_spaced{app="a b c"} -2.5e-3` + "\n")
	f.Add("tg_a 1\ntg_b 2\n\n# comment\n")
	f.Add("tg_x\n")
	f.Add("tg_x 1 \n")
	f.Add("tg_x NaN\ntg_y +Inf\n")
	f.Add("{} 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		series, err := ParseOpenMetrics(strings.NewReader(in))
		if err != nil {
			return
		}
		keys := make([]string, 0, len(series))
		for k := range series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var re strings.Builder
		for _, k := range keys {
			// Keys containing newlines could smuggle extra lines into the
			// re-encoding; the scanner splits on newlines so a key never
			// contains one. (A bare carriage return inside a key is legal:
			// only line-terminal \r is stripped, so it round-trips.)
			if strings.Contains(k, "\n") {
				t.Fatalf("accepted key with newline: %q", k)
			}
			fmt.Fprintf(&re, "%s %g\n", k, series[k])
		}
		again, err := ParseOpenMetrics(strings.NewReader(re.String()))
		if err != nil {
			t.Fatalf("re-encoded accepted input failed to parse: %v\nfrom %q", err, in)
		}
		for k, v := range series {
			got, ok := again[k]
			// NaN never equals itself; compare representations.
			if !ok || fmt.Sprint(got) != fmt.Sprint(v) {
				t.Fatalf("series %q: %v -> %v after round trip", k, v, got)
			}
		}
	})
}
