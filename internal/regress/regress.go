// Package regress compares two simulation runs' exports and reports what
// changed. It is the cross-run half of the trace-analysis layer: tgsim
// -export writes a run directory (OpenMetrics exposition, obs event
// JSONL, accounting trace), and cmd/tgdiff loads two such directories,
// derives a flat series set from each — raw metrics plus
// accounting-derived aggregates plus the per-modality wait decomposition
// reconstructed from the event stream — and diffs them under configurable
// tolerances.
//
// Because the simulator is deterministic, the expected diff between two
// same-seed runs is exactly empty; anything else is a regression (or an
// intended behavior change that a reviewer should see named, series by
// series). The report is deterministic: same inputs, byte-identical text.
package regress

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/obs"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// Run-directory file names. Every file is optional on load (a run may
// have been exported with only some observability enabled), but at least
// one must be present.
const (
	MetricsFile  = "metrics.om"
	ObsFile      = "obs.jsonl"
	AcctFile     = "acct.jsonl"
	ManifestFile = "manifest.json"
)

// Manifest carries the run parameters a consumer needs to reproduce the
// exporting run's analysis without re-deriving them — most importantly
// the classifier's largest-machine size and the final clock position the
// streaming replay advances to.
type Manifest struct {
	Schema       int     `json:"schema"`
	Seed         uint64  `json:"seed"`
	LargestCores int     `json:"largest_cores"`
	EndTimeS     float64 `json:"end_time_s"` // horizon + drain, virtual seconds
}

// ManifestSchema is the current manifest schema version.
const ManifestSchema = 1

// Run is one loaded run directory.
type Run struct {
	Dir string
	// Metrics holds the parsed OpenMetrics exposition (nil when absent).
	Metrics map[string]float64
	// Events holds the decoded obs event stream (nil when absent).
	Events []obs.Event
	// Central holds the imported accounting database (nil when absent).
	Central *accounting.Central
	// Manifest holds the run parameters (nil when absent; older exports
	// have no manifest).
	Manifest *Manifest
}

// LoadRunDir reads a run directory written by WriteRunDir (tgsim -export).
func LoadRunDir(dir string) (*Run, error) {
	return LoadRunDirSelect(dir, MetricsFile, ObsFile, AcctFile)
}

// LoadRunDirSelect reads only the named run-directory files (from
// MetricsFile, ObsFile, AcctFile), so two runs exported with different
// observability can still be diffed over their common files. The
// manifest is always loaded when present.
func LoadRunDirSelect(dir string, files ...string) (*Run, error) {
	want := make(map[string]bool, len(files))
	for _, f := range files {
		switch f {
		case MetricsFile, ObsFile, AcctFile:
			want[f] = true
		default:
			return nil, fmt.Errorf("regress: unknown run-dir file %q", f)
		}
	}
	r := &Run{Dir: dir}
	found := 0

	if f, err := os.Open(filepath.Join(dir, ManifestFile)); err == nil {
		err = json.NewDecoder(f).Decode(&r.Manifest)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("regress: %s/%s: %w", dir, ManifestFile, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	if want[MetricsFile] {
		if f, err := os.Open(filepath.Join(dir, MetricsFile)); err == nil {
			r.Metrics, err = ParseOpenMetrics(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("regress: %s/%s: %w", dir, MetricsFile, err)
			}
			found++
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}

	if want[ObsFile] {
		if f, err := os.Open(filepath.Join(dir, ObsFile)); err == nil {
			r.Events, err = obs.ReadJSONL(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("regress: %s/%s: %w", dir, ObsFile, err)
			}
			found++
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}

	if want[AcctFile] {
		if f, err := os.Open(filepath.Join(dir, AcctFile)); err == nil {
			c := accounting.NewCentral()
			err = c.Import(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("regress: %s/%s: %w", dir, AcctFile, err)
			}
			r.Central = c
			found++
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}

	if found == 0 {
		return nil, fmt.Errorf("regress: %s: no %s, %s, or %s", dir, MetricsFile, ObsFile, AcctFile)
	}
	return r, nil
}

// WriteRunDir exports a run directory: the single definition of the
// on-disk format both tgsim (writer) and tgdiff/replay (readers) share.
// Nil sources are skipped; their files are not created.
func WriteRunDir(dir string, reg *telemetry.Registry, buf *obs.Buffer, central *accounting.Central, man *Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writeTo := func(name string, write func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return fmt.Errorf("regress: writing %s/%s: %w", dir, name, err)
		}
		return f.Close()
	}
	if reg != nil {
		if err := writeTo(MetricsFile, func(f *os.File) error { return reg.WriteOpenMetrics(f) }); err != nil {
			return err
		}
	}
	if buf != nil {
		if err := writeTo(ObsFile, func(f *os.File) error { return buf.WriteJSONL(f) }); err != nil {
			return err
		}
	}
	if central != nil {
		if err := writeTo(AcctFile, func(f *os.File) error { return central.Export(f) }); err != nil {
			return err
		}
	}
	if man != nil {
		m := *man
		if m.Schema == 0 {
			m.Schema = ManifestSchema
		}
		if err := writeTo(ManifestFile, func(f *os.File) error {
			enc := json.NewEncoder(f)
			enc.SetIndent("", " ")
			return enc.Encode(&m)
		}); err != nil {
			return err
		}
	}
	return nil
}
