package regress

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/obs"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/slo"
	"github.com/tgsim/tgmod/internal/telemetry"
	"github.com/tgsim/tgmod/internal/users"
	"github.com/tgsim/tgmod/internal/workload"
)

func TestParseOpenMetricsRoundTrip(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("tg_x_total", "Help with spaces.", "mod").With("a b").Add(3)
	reg.Gauge("tg_y", "", "k").With("v").Set(-1.5)
	reg.HistogramVec("tg_h", "h", "m").With("z").Observe(42)

	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ParseOpenMetrics(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got[`tg_x_total{mod="a b"}`] != 3 {
		t.Errorf("counter with spaced label value: %v", got)
	}
	if got[`tg_y{k="v"}`] != -1.5 {
		t.Errorf("gauge: %v", got)
	}
	// Histogram series (buckets, sum, count) all parse as plain samples.
	if got[`tg_h_count{m="z"}`] != 1 {
		t.Errorf("histogram count: %v", got)
	}
}

func TestParseOpenMetricsRejectsGarbage(t *testing.T) {
	for _, in := range []string{"tg_x\n", "tg_x notanumber\n", "tg_x 1\ntg_x 2\n"} {
		if _, err := ParseOpenMetrics(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestDiffAndTolerance(t *testing.T) {
	a := map[string]float64{"x": 1, "y": 2, "gone": 5}
	b := map[string]float64{"x": 1, "y": 2.1, "new": 7}
	rep := Diff(a, b, Tolerance{})
	if rep.Empty() {
		t.Fatal("diff should not be empty")
	}
	if len(rep.Changed) != 1 || rep.Changed[0].Series != "y" {
		t.Errorf("Changed = %+v", rep.Changed)
	}
	if len(rep.Added) != 1 || rep.Added[0] != "new" {
		t.Errorf("Added = %v", rep.Added)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "gone" {
		t.Errorf("Removed = %v", rep.Removed)
	}
	// Within relative tolerance the value change disappears; series
	// membership changes never do.
	rep = Diff(a, b, Tolerance{Rel: 0.1})
	if len(rep.Changed) != 0 || len(rep.Added) != 1 || len(rep.Removed) != 1 {
		t.Errorf("tolerant diff = %+v", rep)
	}
	if rep.Empty() {
		t.Error("membership changes must keep the report non-empty")
	}
	if eq := Diff(a, a, Tolerance{}); !eq.Empty() {
		t.Errorf("self-diff not empty: %+v", eq)
	}
}

func TestReportTextDeterministic(t *testing.T) {
	a := map[string]float64{"m": 1, "n": 2}
	b := map[string]float64{"m": 3, "o": 4}
	var w1, w2 bytes.Buffer
	if err := Diff(a, b, Tolerance{}).WriteText(&w1); err != nil {
		t.Fatal(err)
	}
	if err := Diff(a, b, Tolerance{}).WriteText(&w2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Error("report text differs across renders")
	}
	out := w1.String()
	for _, want := range []string{"changed m: 1 -> 3 (+2)", "added   o", "removed n"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// exportRun runs a small scenario with full observability and writes its
// run directory.
func exportRun(t *testing.T, dir string, seed uint64) {
	t.Helper()
	cfg := scenario.DefaultConfig(seed)
	cfg.Horizon = 3 * des.Day
	cfg.DrainTime = des.Day
	cfg.Users = users.Config{Projects: 20, UsersPerProjMu: 0.7, UsersPerProjSd: 0.6, ActivityAlpha: 1.5}
	cfg.Generators = []workload.Generator{
		&workload.BatchGen{JobsPerDay: 60, CapabilityFrac: 0.02, MedianRuntime: 3600},
		&workload.UrgentGen{EventsPerWeek: 3, MedianRuntime: 1800},
		&workload.InteractiveGen{SessionsPerDay: 8, MedianSession: 1200},
		&workload.GatewayGen{Gateway: "nanohub", RequestsPerDay: 40, EndUsers: 100, MedianRuntime: 300},
	}
	buf := obs.NewBuffer()
	reg := telemetry.New()
	ev, err := slo.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observe = scenario.Observe{Recorder: buf, Registry: reg, SLO: ev}
	res, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteRunDir(dir, reg, buf, res.Central, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSelfDiffIsEmpty is the tgdiff self-test: a run diffed against itself
// (and against a same-seed re-run) must report zero regressions, and the
// clean report must render byte-identically.
func TestSelfDiffIsEmpty(t *testing.T) {
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")
	exportRun(t, dirA, 7)
	exportRun(t, dirB, 7)

	// The exports themselves are byte-identical across same-seed runs.
	for _, name := range []string{MetricsFile, ObsFile, AcctFile} {
		ba, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba, bb) {
			t.Errorf("%s differs between same-seed runs", name)
		}
	}

	ra, err := LoadRunDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := LoadRunDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := ra.Series()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := rb.Series()
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) < 50 {
		t.Fatalf("only %d series derived; export too thin", len(sa))
	}
	rep := Diff(sa, sb, Tolerance{})
	if !rep.Empty() {
		var w bytes.Buffer
		_ = rep.WriteText(&w)
		t.Fatalf("same-seed diff not empty:\n%s", w.String())
	}
	var w1, w2 bytes.Buffer
	if err := rep.WriteText(&w1); err != nil {
		t.Fatal(err)
	}
	if err := Diff(sb, sa, Tolerance{}).WriteText(&w2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Error("clean report not byte-identical across directions")
	}
}

// TestPerturbedDiffNamesChanges: a different seed must produce a non-empty
// report that names shifted series, including wait-decomposition ones.
func TestPerturbedDiffNamesChanges(t *testing.T) {
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")
	exportRun(t, dirA, 7)
	exportRun(t, dirB, 8)

	ra, err := LoadRunDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := LoadRunDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := ra.Series()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := rb.Series()
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(sa, sb, Tolerance{})
	if rep.Empty() {
		t.Fatal("different seeds produced an empty diff")
	}
	var w bytes.Buffer
	if err := rep.WriteText(&w); err != nil {
		t.Fatal(err)
	}
	out := w.String()
	if !strings.Contains(out, "REGRESSIONS:") {
		t.Error("report missing REGRESSIONS header")
	}
	if !strings.Contains(out, "decomp:") {
		t.Error("report names no wait-decomposition series")
	}
	if !strings.Contains(out, "acct:") {
		t.Error("report names no accounting series")
	}
}

func TestLoadRunDirPartialAndMissing(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadRunDir(dir); err == nil {
		t.Error("empty dir must fail to load")
	}
	reg := telemetry.New()
	reg.Gauge("tg_only", "").With().Set(1)
	if err := WriteRunDir(dir, reg, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	r, err := LoadRunDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events != nil || r.Central != nil {
		t.Error("absent sources must stay nil")
	}
	s, err := r.Series()
	if err != nil {
		t.Fatal(err)
	}
	if s["tg_only"] != 1 {
		t.Errorf("series = %v", s)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.New()
	reg.Gauge("tg_only", "").With().Set(1)
	man := &Manifest{Seed: 42, LargestCores: 12288, EndTimeS: 864000}
	if err := WriteRunDir(dir, reg, nil, nil, man); err != nil {
		t.Fatal(err)
	}
	r, err := LoadRunDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Manifest == nil {
		t.Fatal("manifest not loaded")
	}
	// The schema version defaults on write; everything else round-trips.
	want := Manifest{Schema: ManifestSchema, Seed: 42, LargestCores: 12288, EndTimeS: 864000}
	if *r.Manifest != want {
		t.Errorf("manifest = %+v, want %+v", *r.Manifest, want)
	}
	// A corrupt manifest is a load error, not a silent nil.
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRunDir(dir); err == nil {
		t.Error("corrupt manifest loaded without error")
	}
}

func TestLoadRunDirSelect(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.New()
	reg.Gauge("tg_only", "").With().Set(1)
	buf := obs.NewBuffer()
	buf.Record(obs.Event{At: 1, Phase: obs.PhaseInstant, Cat: "job", Name: "x"})
	if err := WriteRunDir(dir, reg, buf, nil, &Manifest{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	// Selecting only obs skips the metrics but still loads the manifest.
	r, err := LoadRunDirSelect(dir, ObsFile)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics != nil {
		t.Error("metrics loaded despite not being selected")
	}
	if len(r.Events) != 1 {
		t.Errorf("events = %d, want 1", len(r.Events))
	}
	if r.Manifest == nil || r.Manifest.Seed != 9 {
		t.Errorf("manifest = %+v", r.Manifest)
	}
	// Selecting only an absent file finds nothing and errors.
	if _, err := LoadRunDirSelect(dir, AcctFile); err == nil {
		t.Error("selecting only an absent file must fail")
	}
	// Unknown selections are a usage error.
	if _, err := LoadRunDirSelect(dir, "nope.txt"); err == nil {
		t.Error("unknown file name accepted")
	}
}

// TestDiffSkipsRuntimeSeries: the wall-clock-only tg_runtime_ family never
// participates in a determinism diff — not as a change, not as an
// add/remove, not even in the series counts.
func TestDiffSkipsRuntimeSeries(t *testing.T) {
	a := map[string]float64{
		"tg_jobs_total{machine=\"abe\"}": 5,
		"tg_runtime_heap_alloc_bytes":    1e6,
	}
	b := map[string]float64{
		"tg_jobs_total{machine=\"abe\"}": 5,
		"tg_runtime_heap_alloc_bytes":    2e6,
		"tg_runtime_goroutines":          8,
	}
	rep := Diff(a, b, Tolerance{})
	if !rep.Empty() {
		var buf bytes.Buffer
		rep.WriteText(&buf)
		t.Errorf("runtime series leaked into the diff:\n%s", buf.String())
	}
	if rep.ASeries != 1 || rep.BSeries != 1 {
		t.Errorf("series counts include runtime series: %d vs %d, want 1 vs 1",
			rep.ASeries, rep.BSeries)
	}
}
