// A minimal OpenMetrics text parser — just enough to reload the
// simulator's own deterministic exposition. Sample lines are
// "name{labels} value" or "name value"; the full series identity
// (name plus label set, exactly as exposed) is the map key, so label
// ordering differences would register as added/removed series rather
// than silently aliasing.
package regress

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseOpenMetrics reads a text exposition into series → value. Comment
// lines (# HELP/# TYPE/# EOF) are skipped.
func ParseOpenMetrics(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value follows the last space. Label values may contain spaces,
		// but those all precede the closing brace, so the last space always
		// separates the float value.
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 || cut == len(line)-1 {
			return nil, fmt.Errorf("openmetrics line %d: no value in %q", lineNo, line)
		}
		key, valStr := line[:cut], line[cut+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("openmetrics line %d: bad value %q: %v", lineNo, valStr, err)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("openmetrics line %d: duplicate series %s", lineNo, key)
		}
		out[key] = v
	}
	return out, sc.Err()
}
