// Package metasched implements the grid-level resource broker: it accepts
// jobs without a destination, chooses a machine under a selection policy
// (random, least-loaded, or best-estimated-start, mirroring the resource
// selection tools users had), tags the job as broker-routed, and supports
// cross-site co-allocation via synchronized advance reservations.
package metasched

import (
	"fmt"
	"sort"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/simrand"
)

// SelectPolicy chooses among candidate machines.
type SelectPolicy int

// Resource selection policies.
const (
	Random        SelectPolicy = iota // uniform choice among feasible machines
	LeastLoaded                       // fewest queued jobs, ties by free cores
	BestEstimated                     // earliest predicted start (queue prediction)
	DataAware                         // earliest predicted completion including input staging
)

// String returns the policy name.
func (p SelectPolicy) String() string {
	switch p {
	case Random:
		return "random"
	case LeastLoaded:
		return "least-loaded"
	case BestEstimated:
		return "best-estimated"
	case DataAware:
		return "data-aware"
	default:
		return fmt.Sprintf("select(%d)", int(p))
	}
}

// StageCost estimates seconds to move bytes from the data's home site to a
// destination site. The scenario layer backs this with the network model;
// tests can stub it.
type StageCost func(fromSite, toSite string, bytes int64) float64

// Broker is the metascheduler.
type Broker struct {
	K      *des.Kernel
	policy SelectPolicy
	rng    *simrand.Stream
	scheds []*sched.Scheduler
	// TagCoverage is the probability a routed job carries its broker
	// attribute (models partially deployed instrumentation).
	TagCoverage float64
	// DataHome maps a project to the site where its input data lives;
	// used by the DataAware policy. Empty means no staging needed.
	DataHome map[string]string
	// Stage estimates staging cost for DataAware; nil disables the term.
	Stage StageCost

	// OnFailover, when non-nil, observes every job the broker re-places
	// after a machine failure (see Failover).
	OnFailover func(j *job.Job, to string)

	routed    uint64
	coallocs  uint64
	failovers uint64
	nextCoID  int64
	perTarget map[string]uint64
	// unhealthyUntil marks machines the broker avoids until the given
	// virtual time (crash repair + cooldown). Lazily allocated so brokers
	// in fault-free runs carry no extra state.
	unhealthyUntil map[string]des.Time
}

// New returns a broker over the given schedulers.
func New(k *des.Kernel, policy SelectPolicy, rng *simrand.Stream, scheds []*sched.Scheduler) *Broker {
	return &Broker{
		K: k, policy: policy, rng: rng, scheds: scheds,
		TagCoverage: 1.0,
		DataHome:    make(map[string]string),
		perTarget:   make(map[string]uint64),
	}
}

// Policy returns the selection policy.
func (b *Broker) Policy() SelectPolicy { return b.policy }

// Routed returns the number of jobs placed.
func (b *Broker) Routed() uint64 { return b.routed }

// RoutedTo returns how many jobs were placed on a machine.
func (b *Broker) RoutedTo(machine string) uint64 { return b.perTarget[machine] }

// CoAllocations returns the number of co-allocation groups placed.
func (b *Broker) CoAllocations() uint64 { return b.coallocs }

// Failovers returns the number of jobs re-placed after machine failures.
func (b *Broker) Failovers() uint64 { return b.failovers }

// MarkUnhealthy excludes a machine from routing until the given virtual
// time. Repeated marks keep the latest horizon.
func (b *Broker) MarkUnhealthy(machine string, until des.Time) {
	if b.unhealthyUntil == nil {
		b.unhealthyUntil = make(map[string]des.Time)
	}
	if until > b.unhealthyUntil[machine] {
		b.unhealthyUntil[machine] = until
	}
}

// Unhealthy reports whether a machine is currently excluded from routing.
func (b *Broker) Unhealthy(machine string) bool {
	return b.unhealthyUntil[machine] > b.K.Now()
}

// feasible returns schedulers that could ever run the job, in deterministic
// (machine-ID) order.
func (b *Broker) feasible(j *job.Job) []*sched.Scheduler {
	var out []*sched.Scheduler
	for _, s := range b.scheds {
		if j.Cores <= s.M.BatchCores() && (j.QOS != job.QOSUrgent || s.M.UrgentCapable) &&
			!b.Unhealthy(s.M.ID) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].M.ID < out[k].M.ID })
	return out
}

// Submit routes a job to a machine under the selection policy. Jobs that
// fit nowhere are marked failed.
func (b *Broker) Submit(j *job.Job) {
	cands := b.feasible(j)
	if len(cands) == 0 {
		j.State = job.StateFailed
		return
	}
	b.route(j, b.selectFrom(cands, j))
}

// selectFrom applies the selection policy to a non-empty candidate list.
func (b *Broker) selectFrom(cands []*sched.Scheduler, j *job.Job) *sched.Scheduler {
	var pick *sched.Scheduler
	switch b.policy {
	case Random:
		pick = cands[b.rng.Intn(len(cands))]
	case LeastLoaded:
		pick = cands[0]
		for _, s := range cands[1:] {
			if s.QueueLen() < pick.QueueLen() ||
				(s.QueueLen() == pick.QueueLen() && s.FreeBatchCores() > pick.FreeBatchCores()) {
				pick = s
			}
		}
	case BestEstimated:
		pick = b.bestBy(cands, j, func(s *sched.Scheduler, start des.Time) float64 {
			return float64(start)
		})
	case DataAware:
		pick = b.bestBy(cands, j, func(s *sched.Scheduler, start des.Time) float64 {
			cost := float64(start)
			if home, ok := b.DataHome[j.Project]; ok && b.Stage != nil && j.InputBytes > 0 {
				stage := b.Stage(home, s.M.Site, j.InputBytes)
				// Staging overlaps the queue wait; the binding term is
				// whichever finishes later.
				if stage > cost {
					cost = stage
				}
			}
			return cost
		})
	default:
		pick = cands[0]
	}
	return pick
}

// Failover re-places a job whose machine failed. The selection policy runs
// over the currently healthy feasible machines, but unlike Submit the job
// keeps its original attribution (no broker tag draw — failover is an
// infrastructure action, not a user modality choice). Returns false when no
// healthy machine fits; the caller decides what to do with the stranded job.
func (b *Broker) Failover(j *job.Job) bool {
	cands := b.feasible(j)
	if len(cands) == 0 {
		return false
	}
	pick := b.selectFrom(cands, j)
	b.failovers++
	if b.OnFailover != nil {
		b.OnFailover(j, pick.M.ID)
	}
	pick.Submit(j)
	return true
}

func (b *Broker) bestBy(cands []*sched.Scheduler, j *job.Job,
	score func(*sched.Scheduler, des.Time) float64) *sched.Scheduler {
	best := cands[0]
	bestScore := 0.0
	first := true
	for _, s := range cands {
		start, ok := s.EstimateStart(j.Cores, j.ReqWalltime)
		if !ok {
			continue
		}
		sc := score(s, start)
		if first || sc < bestScore {
			best, bestScore, first = s, sc, false
		}
	}
	return best
}

func (b *Broker) route(j *job.Job, s *sched.Scheduler) {
	if b.rng.Bool(b.TagCoverage) {
		j.Attr.BrokerJobID = fmt.Sprintf("broker-%d", j.ID)
		if j.Attr.SubmitVia == "" {
			j.Attr.SubmitVia = "metasched"
		}
	}
	b.routed++
	b.perTarget[s.M.ID]++
	s.Submit(j)
}

// CoAllocate places a group of jobs that must start simultaneously on
// distinct machines. The broker polls each machine's estimated start for
// its part, takes the latest, adds a safety margin, and books synchronized
// advance reservations. Returns the agreed start time.
func (b *Broker) CoAllocate(parts []*job.Job) (des.Time, error) {
	if len(parts) < 2 {
		return 0, fmt.Errorf("metasched: co-allocation needs ≥2 parts")
	}
	// Choose machines: greedily assign each part to a distinct feasible
	// machine with the earliest estimate.
	type assignment struct {
		s *sched.Scheduler
		j *job.Job
	}
	used := make(map[string]bool)
	assigns := make([]assignment, 0, len(parts))
	latest := b.K.Now()
	for _, j := range parts {
		var best *sched.Scheduler
		bestStart := des.Forever
		for _, s := range b.feasible(j) {
			if used[s.M.ID] {
				continue
			}
			start, ok := s.EstimateStart(j.Cores, j.ReqWalltime)
			if ok && start < bestStart {
				best, bestStart = s, start
			}
		}
		if best == nil {
			return 0, fmt.Errorf("metasched: no machine for co-allocation part needing %d cores", j.Cores)
		}
		used[best.M.ID] = true
		assigns = append(assigns, assignment{best, j})
		if bestStart > latest {
			latest = bestStart
		}
	}
	// Safety margin absorbs estimate error; reservations are firm.
	start := latest + 10*des.Minute
	b.nextCoID++
	coID := fmt.Sprintf("coalloc-%d", b.nextCoID)
	booked := make([]*sched.Scheduler, 0, len(assigns))
	for _, a := range assigns {
		if err := a.s.Reserve(coID, a.j.Cores, start, start+a.j.ReqWalltime); err != nil {
			for _, s := range booked {
				s.CancelReservation(coID)
			}
			return 0, fmt.Errorf("metasched: reservation failed: %w", err)
		}
		booked = append(booked, a.s)
	}
	for _, a := range assigns {
		a.j.Attr.CoAllocID = coID
		a.j.Attr.SubmitVia = "metasched"
		if err := a.s.ClaimReservation(coID, a.j); err != nil {
			return 0, fmt.Errorf("metasched: claim failed: %w", err)
		}
	}
	b.coallocs++
	return start, nil
}
