package metasched

import (
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/simrand"
)

var nextID job.ID

func mkJob(cores int, run, wall des.Time) *job.Job {
	nextID++
	return &job.Job{ID: nextID, Name: "t", User: "u", Project: "p",
		Cores: cores, RunTime: run, ReqWalltime: wall}
}

// twoMachines builds schedulers for a big and a small machine.
func twoMachines(k *des.Kernel) []*sched.Scheduler {
	big := &grid.Machine{ID: "big", Site: "s1", Nodes: 64, CoresPerNode: 8,
		GFlopsPerCore: 4, NUPerCoreHour: 2, UrgentCapable: true} // 512 cores
	small := &grid.Machine{ID: "small", Site: "s2", Nodes: 8, CoresPerNode: 8,
		GFlopsPerCore: 2, NUPerCoreHour: 1} // 64 cores
	return []*sched.Scheduler{
		sched.MustNamed(k, big, "easy"),
		sched.MustNamed(k, small, "easy"),
	}
}

func TestPolicyString(t *testing.T) {
	names := map[SelectPolicy]string{
		Random: "random", LeastLoaded: "least-loaded",
		BestEstimated: "best-estimated", DataAware: "data-aware",
		SelectPolicy(9): "select(9)",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestFeasibilityFiltering(t *testing.T) {
	k := des.New()
	b := New(k, Random, simrand.New(1), twoMachines(k))
	// 100 cores only fits "big".
	j := mkJob(100, 10, 10)
	b.Submit(j)
	k.Run()
	if j.Machine != "big" {
		t.Errorf("100-core job routed to %q, want big", j.Machine)
	}
	// Urgent only fits urgent-capable "big".
	u := mkJob(8, 10, 10)
	u.QOS = job.QOSUrgent
	b.Submit(u)
	k.Run()
	if u.Machine != "big" {
		t.Errorf("urgent job routed to %q, want big", u.Machine)
	}
	// Nothing fits 10000 cores.
	imp := mkJob(10000, 10, 10)
	b.Submit(imp)
	if imp.State != job.StateFailed {
		t.Errorf("impossible job state = %v, want failed", imp.State)
	}
}

func TestLeastLoadedSpreads(t *testing.T) {
	k := des.New()
	scheds := twoMachines(k)
	b := New(k, LeastLoaded, simrand.New(1), scheds)
	// Saturate big with queued jobs so small becomes least loaded.
	for i := 0; i < 3; i++ {
		b.Submit(mkJob(512, 1000, 1000)) // only fits big; queue grows there
	}
	j := mkJob(32, 10, 10)
	b.Submit(j)
	if j.Machine != "small" {
		t.Errorf("least-loaded routed to %q, want small", j.Machine)
	}
	k.Run()
}

func TestBestEstimatedPicksIdleMachine(t *testing.T) {
	k := des.New()
	scheds := twoMachines(k)
	b := New(k, BestEstimated, simrand.New(1), scheds)
	// Occupy big entirely for a long time.
	b.Submit(mkJob(512, 5000, 5000))
	b.Submit(mkJob(512, 5000, 5000))
	j := mkJob(32, 10, 10)
	b.Submit(j)
	if j.Machine != "small" {
		t.Errorf("best-estimated routed to %q, want idle small", j.Machine)
	}
	k.Run()
	if b.Routed() != 3 {
		t.Errorf("Routed = %d, want 3", b.Routed())
	}
	if b.RoutedTo("small") != 1 {
		t.Errorf("RoutedTo(small) = %d, want 1", b.RoutedTo("small"))
	}
}

func TestDataAwarePrefersDataLocality(t *testing.T) {
	k := des.New()
	scheds := twoMachines(k)
	b := New(k, DataAware, simrand.New(1), scheds)
	b.DataHome["p"] = "s2"
	// Staging to s1 is expensive, to s2 free.
	b.Stage = func(from, to string, bytes int64) float64 {
		if from == to {
			return 0
		}
		return 10000
	}
	j := mkJob(32, 10, 10)
	j.InputBytes = 1 << 30
	b.Submit(j)
	if j.Machine != "small" { // small is at site s2, next to the data
		t.Errorf("data-aware routed to %q, want small (co-located with data)", j.Machine)
	}
	k.Run()
}

func TestBrokerTagging(t *testing.T) {
	k := des.New()
	b := New(k, Random, simrand.New(1), twoMachines(k))
	j := mkJob(8, 10, 10)
	b.Submit(j)
	if j.Attr.BrokerJobID == "" || j.Attr.SubmitVia != "metasched" {
		t.Errorf("broker attributes missing: %+v", j.Attr)
	}
	// Partial coverage.
	b2 := New(k, Random, simrand.New(7), twoMachines(k))
	b2.TagCoverage = 0
	j2 := mkJob(8, 10, 10)
	b2.Submit(j2)
	if j2.Attr.BrokerJobID != "" {
		t.Errorf("broker tag leaked at zero coverage: %+v", j2.Attr)
	}
	k.Run()
}

func TestCoAllocate(t *testing.T) {
	k := des.New()
	scheds := twoMachines(k)
	b := New(k, BestEstimated, simrand.New(1), scheds)
	p1 := mkJob(256, 100, 200)
	p2 := mkJob(32, 100, 200)
	start, err := b.CoAllocate([]*job.Job{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if p1.StartTime != start || p2.StartTime != start {
		t.Errorf("parts started at %v and %v, want synchronized %v",
			p1.StartTime, p2.StartTime, start)
	}
	if p1.Machine == p2.Machine {
		t.Error("co-allocation placed both parts on one machine")
	}
	if p1.Attr.CoAllocID == "" || p1.Attr.CoAllocID != p2.Attr.CoAllocID {
		t.Errorf("co-allocation ids wrong: %q vs %q", p1.Attr.CoAllocID, p2.Attr.CoAllocID)
	}
	if b.CoAllocations() != 1 {
		t.Errorf("CoAllocations = %d, want 1", b.CoAllocations())
	}
	if p1.State != job.StateCompleted || p2.State != job.StateCompleted {
		t.Errorf("parts did not complete: %v %v", p1.State, p2.State)
	}
}

func TestCoAllocateErrors(t *testing.T) {
	k := des.New()
	b := New(k, Random, simrand.New(1), twoMachines(k))
	if _, err := b.CoAllocate([]*job.Job{mkJob(1, 1, 1)}); err == nil {
		t.Error("single-part co-allocation accepted")
	}
	// Three parts but only two machines → no distinct machine for part 3.
	parts := []*job.Job{mkJob(8, 10, 10), mkJob(8, 10, 10), mkJob(8, 10, 10)}
	_, err := b.CoAllocate(parts)
	if err == nil || !strings.Contains(err.Error(), "no machine") {
		t.Errorf("expected distinct-machine failure, got %v", err)
	}
}
