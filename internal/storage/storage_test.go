package storage

import (
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/network"
)

func TestArchiveStoreRetrieveDelete(t *testing.T) {
	a := NewArchive("s1", 0.001) // 1 TB
	f := &File{Name: "run1.h5", Bytes: 1 << 30, Owner: "alice", Project: "p1"}
	if err := a.Store(f); err != nil {
		t.Fatal(err)
	}
	if a.Used() != 1<<30 || a.Files() != 1 || a.Ingests() != 1 {
		t.Errorf("Used/Files/Ingests = %d/%d/%d", a.Used(), a.Files(), a.Ingests())
	}
	got, ok := a.Retrieve("run1.h5")
	if !ok || got != f || a.Retrievals() != 1 {
		t.Error("Retrieve failed")
	}
	if _, ok := a.Retrieve("none"); ok {
		t.Error("retrieved non-existent file")
	}
	if !a.Delete("run1.h5") {
		t.Error("Delete failed")
	}
	if a.Delete("run1.h5") {
		t.Error("double delete succeeded")
	}
	if a.Used() != 0 {
		t.Errorf("Used after delete = %d", a.Used())
	}
}

func TestArchiveErrors(t *testing.T) {
	a := NewArchive("s1", 5e-15) // 5 bytes
	if err := a.Store(&File{Name: "x", Bytes: 0}); err == nil {
		t.Error("zero-byte store accepted")
	}
	if err := a.Store(&File{Name: "big", Bytes: 10}); err == nil || !strings.Contains(err.Error(), "quota") {
		t.Errorf("quota not enforced: %v", err)
	}
	a2 := NewArchive("s1", 1)
	if err := a2.Store(&File{Name: "f", Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	if err := a2.Store(&File{Name: "f", Bytes: 10}); err == nil {
		t.Error("duplicate store accepted")
	}
}

func TestWideAreaCreateQuota(t *testing.T) {
	w := NewWideArea("iu", 100)
	if _, err := w.Create("a", 60, "u", "p1", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Create("b", 60, "u", "p1", 0); err == nil {
		t.Error("quota not enforced")
	}
	if _, err := w.Create("c", 60, "u", "p2", 0); err != nil {
		t.Errorf("independent project hit quota: %v", err)
	}
	if _, err := w.Create("a", 1, "u", "p2", 0); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := w.Create("z", 0, "u", "p2", 0); err == nil {
		t.Error("zero-byte file accepted")
	}
	if w.Used("p1") != 60 {
		t.Errorf("Used(p1) = %d, want 60", w.Used("p1"))
	}
}

func TestWideAreaReplicas(t *testing.T) {
	w := NewWideArea("iu", 0)
	if _, err := w.Create("data", 10, "u", "p", 0); err != nil {
		t.Fatal(err)
	}
	if err := w.AddReplica("data", "sdsc"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddReplica("data", "sdsc"); err != nil {
		t.Errorf("idempotent replica add failed: %v", err)
	}
	if err := w.AddReplica("none", "x"); err == nil {
		t.Error("replica of missing file accepted")
	}
	// Reads from the replica site are local.
	if site, err := w.NearestReplica("data", "sdsc"); err != nil || site != "sdsc" {
		t.Errorf("NearestReplica from sdsc = %v,%v", site, err)
	}
	// Other sites read from the primary.
	if site, err := w.NearestReplica("data", "ncsa"); err != nil || site != "iu" {
		t.Errorf("NearestReplica from ncsa = %v,%v", site, err)
	}
	if _, err := w.NearestReplica("none", "x"); err == nil {
		t.Error("NearestReplica of missing file accepted")
	}
	f, ok := w.Lookup("data")
	if !ok || len(f.Replicas) != 2 || f.Replicas[0] != "iu" {
		t.Errorf("Lookup/replica order wrong: %+v", f)
	}
}

func newStager(t *testing.T) (*des.Kernel, *Stager) {
	t.Helper()
	k := des.New()
	tp := network.NewTopology()
	for _, s := range []string{"a", "b"} {
		if err := tp.AddSite(s, 10); err != nil {
			t.Fatal(err)
		}
	}
	tp.SetRTT("a", "b", 0)
	return k, NewStager(k, network.NewFabric(k, tp))
}

func TestStagerMovesAndNotifies(t *testing.T) {
	k, s := newStager(t)
	var seen *network.Transfer
	s.OnTransfer = func(tr *network.Transfer) { seen = tr }
	var done bool
	if err := s.Stage("a", "b", 1_250_000_000, "alice", "p1", 42, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !done || s.Staged() != 1 {
		t.Fatal("stage did not complete")
	}
	if seen == nil || seen.User != "alice" || seen.Project != "p1" || seen.JobID != 42 {
		t.Errorf("transfer metadata wrong: %+v", seen)
	}
}

func TestStagerZeroBytes(t *testing.T) {
	k, s := newStager(t)
	var done bool
	if err := s.Stage("a", "b", 0, "u", "p", 0, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !done {
		t.Error("zero-byte stage did not call done")
	}
	if s.Staged() != 0 {
		t.Error("zero-byte stage should not count as a transfer")
	}
}

func TestStagerError(t *testing.T) {
	_, s := newStager(t)
	if err := s.Stage("nowhere", "b", 10, "u", "p", 0, nil); err == nil {
		t.Error("stage from unknown site accepted")
	}
}
