// Package storage models the federation's persistent data systems: per-site
// archival storage (the HPSS-class tape systems behind data-centric usage)
// and a centralized wide-area filesystem mounted at every site (the
// Data-Capacitor/GPFS-WAN style resource). It also provides the staging
// helper that moves a job's input and output between sites via the network
// fabric.
package storage

import (
	"fmt"
	"sort"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/network"
)

// File is an entry in a catalog.
type File struct {
	Name    string
	Bytes   int64
	Owner   string
	Project string
	Created des.Time
	// Replicas lists the sites holding a copy, sorted; the first entry is
	// the primary.
	Replicas []string
}

// Archive is a site's archival store with a capacity quota.
type Archive struct {
	Site       string
	CapacityPB float64
	used       int64
	files      map[string]*File
	ingests    uint64
	retrievals uint64
}

// NewArchive returns an empty archive for the given site.
func NewArchive(site string, capacityPB float64) *Archive {
	return &Archive{Site: site, CapacityPB: capacityPB, files: make(map[string]*File)}
}

// Used returns bytes currently stored.
func (a *Archive) Used() int64 { return a.used }

// Files returns the number of stored files.
func (a *Archive) Files() int { return len(a.files) }

// Ingests and Retrievals return lifetime operation counts.
func (a *Archive) Ingests() uint64    { return a.ingests }
func (a *Archive) Retrievals() uint64 { return a.retrievals }

// Store catalogs a file; it fails when the quota would be exceeded or the
// name already exists.
func (a *Archive) Store(f *File) error {
	if f.Bytes <= 0 {
		return fmt.Errorf("storage: archive %s: non-positive size for %s", a.Site, f.Name)
	}
	if _, dup := a.files[f.Name]; dup {
		return fmt.Errorf("storage: archive %s: duplicate file %s", a.Site, f.Name)
	}
	capacity := int64(a.CapacityPB * 1e15)
	if a.used+f.Bytes > capacity {
		return fmt.Errorf("storage: archive %s: quota exceeded (%d + %d > %d)",
			a.Site, a.used, f.Bytes, capacity)
	}
	a.files[f.Name] = f
	a.used += f.Bytes
	a.ingests++
	return nil
}

// Retrieve looks a file up, counting the access.
func (a *Archive) Retrieve(name string) (*File, bool) {
	f, ok := a.files[name]
	if ok {
		a.retrievals++
	}
	return f, ok
}

// Delete removes a file, returning whether it existed.
func (a *Archive) Delete(name string) bool {
	f, ok := a.files[name]
	if !ok {
		return false
	}
	delete(a.files, name)
	a.used -= f.Bytes
	return true
}

// WideArea is the centralized wide-area filesystem: a single catalog whose
// files can be replicated to multiple sites, with reads served from the
// nearest replica. It models the "centralized filesystem on the TeraGrid"
// usage pattern that lets the same dataset be produced at one site and
// analyzed at another without explicit staging.
type WideArea struct {
	Home  string // site hosting the primary storage
	files map[string]*File
	// QuotaBytes per project; 0 means unlimited.
	QuotaBytes int64
	usedBy     map[string]int64
}

// NewWideArea returns an empty wide-area filesystem homed at the site.
func NewWideArea(home string, quotaBytes int64) *WideArea {
	return &WideArea{Home: home, files: make(map[string]*File), QuotaBytes: quotaBytes,
		usedBy: make(map[string]int64)}
}

// Create adds a file with its primary replica at the home site.
func (w *WideArea) Create(name string, bytes int64, owner, project string, now des.Time) (*File, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("storage: widearea: non-positive size for %s", name)
	}
	if _, dup := w.files[name]; dup {
		return nil, fmt.Errorf("storage: widearea: duplicate file %s", name)
	}
	if w.QuotaBytes > 0 && w.usedBy[project]+bytes > w.QuotaBytes {
		return nil, fmt.Errorf("storage: widearea: project %s over quota", project)
	}
	f := &File{Name: name, Bytes: bytes, Owner: owner, Project: project,
		Created: now, Replicas: []string{w.Home}}
	w.files[name] = f
	w.usedBy[project] += bytes
	return f, nil
}

// Lookup returns the file entry.
func (w *WideArea) Lookup(name string) (*File, bool) {
	f, ok := w.files[name]
	return f, ok
}

// Used returns the bytes attributed to a project.
func (w *WideArea) Used(project string) int64 { return w.usedBy[project] }

// AddReplica records that site now holds a copy of the file.
func (w *WideArea) AddReplica(name, site string) error {
	f, ok := w.files[name]
	if !ok {
		return fmt.Errorf("storage: widearea: no file %s", name)
	}
	for _, r := range f.Replicas {
		if r == site {
			return nil
		}
	}
	f.Replicas = append(f.Replicas, site)
	sort.Strings(f.Replicas[1:]) // keep primary first, rest sorted
	return nil
}

// NearestReplica returns the replica site to read from: the requesting site
// itself when it holds a copy, otherwise the primary.
func (w *WideArea) NearestReplica(name, from string) (string, error) {
	f, ok := w.files[name]
	if !ok {
		return "", fmt.Errorf("storage: widearea: no file %s", name)
	}
	for _, r := range f.Replicas {
		if r == from {
			return r, nil
		}
	}
	return f.Replicas[0], nil
}

// Stager moves job inputs and outputs over the network fabric and invokes a
// completion callback, recording per-transfer metadata for accounting.
type Stager struct {
	K      *des.Kernel
	Fabric *network.Fabric
	// OnTransfer, if set, receives every completed staging transfer.
	OnTransfer func(*network.Transfer)
	staged     uint64
}

// NewStager returns a stager over the given fabric.
func NewStager(k *des.Kernel, f *network.Fabric) *Stager {
	return &Stager{K: k, Fabric: f}
}

// Staged returns the number of completed staging transfers.
func (s *Stager) Staged() uint64 { return s.staged }

// Stage moves bytes from src to dst and calls done when finished. Zero-byte
// stages complete immediately (no transfer record).
func (s *Stager) Stage(src, dst string, bytes int64, user, project string, jobID int64, done func()) error {
	if bytes <= 0 {
		if done != nil {
			s.K.ScheduleNamed(0, "stage-empty", func(*des.Kernel) { done() })
		}
		return nil
	}
	// Bulk staging uses 4-way striping, the common GridFTP default.
	// Ownership rides in on the transfer itself so start-of-life observers
	// already see the user/project/job binding.
	own := network.Ownership{User: user, Project: project, JobID: jobID}
	_, err := s.Fabric.StartOwned(src, dst, bytes, 4, own, func(tr *network.Transfer) {
		s.staged++
		if s.OnTransfer != nil {
			s.OnTransfer(tr)
		}
		if done != nil {
			done()
		}
	})
	return err
}
