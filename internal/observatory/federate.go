package observatory

import (
	"encoding/json"
	"fmt"

	"github.com/tgsim/tgmod/internal/stream"
)

// ParseModalities decodes an exported per-run /modalities document (what
// the daemon writes to FinalDir as <id>.modalities.json) for offline
// federation with tgobsd -merge.
func ParseModalities(data []byte) (*stream.ModalitiesPayload, error) {
	p := &stream.ModalitiesPayload{}
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("observatory: parse modalities: %w", err)
	}
	return p, nil
}

// Federation: fleet-wide /modalities and /drift are deterministic merges
// of the per-run payloads, computed at request time over runs sorted by
// ID. Jobs and NUs sum; confidence is weighted by each run's job count
// (a run that classified more jobs speaks with more weight); drift peaks
// take the max. Merging the same set of per-run payloads always yields
// the same document, which is what the CI determinism gate checks by
// re-merging exported per-run payloads offline with tgobsd -merge.

// FleetModalities is the fleet-level /modalities document: the merged
// windowed usage across every run the daemon knows about.
type FleetModalities struct {
	Runs     []string                `json:"runs"`
	At       float64                 `json:"at"` // max per-run stream clock
	Ingested uint64                  `json:"ingested"`
	Dropped  uint64                  `json:"dropped"`
	Windows  []stream.ModalityWindow `json:"windows"`
	Lifetime stream.ModalityWindow   `json:"lifetime"`
}

// FleetDrift is the fleet-level /drift document.
type FleetDrift struct {
	Runs     []string             `json:"runs"`
	At       float64              `json:"at"`
	Events   int64                `json:"events"`
	Disagree int64                `json:"disagree"`
	Rate     float64              `json:"rate"`
	Windows  []stream.DriftWindow `json:"windows"`
}

// MergeModalities federates per-run modality payloads (paired with their
// run IDs, already in the canonical sorted order). Rows are unioned in
// first-appearance order across runs — per-run payloads list modalities
// in the canonical taxonomy order, so the union is canonical too — and
// windows are matched by label.
func MergeModalities(ids []string, payloads []*stream.ModalitiesPayload) *FleetModalities {
	out := &FleetModalities{Runs: ids}
	if out.Runs == nil {
		out.Runs = []string{}
	}
	type acc struct {
		jobs    int64
		nus     float64
		confW   float64 // confidence weighted by jobs
		confden int64
	}
	// window label → modality → accumulator, plus ordered label/modality
	// lists to keep the output deterministic.
	wins := map[string]map[string]*acc{}
	var winOrder []string
	modOrder := map[string][]string{}
	fold := func(w *stream.ModalityWindow) {
		byMod, ok := wins[w.Window]
		if !ok {
			byMod = map[string]*acc{}
			wins[w.Window] = byMod
			winOrder = append(winOrder, w.Window)
		}
		for _, r := range w.Rows {
			a, ok := byMod[r.Modality]
			if !ok {
				a = &acc{}
				byMod[r.Modality] = a
				modOrder[w.Window] = append(modOrder[w.Window], r.Modality)
			}
			a.jobs += r.Jobs
			a.nus += r.NUs
			a.confW += r.Confidence * float64(r.Jobs)
			a.confden += r.Jobs
		}
	}
	for _, p := range payloads {
		if p == nil {
			continue
		}
		if p.At > out.At {
			out.At = p.At
		}
		out.Ingested += p.Ingested
		out.Dropped += p.Dropped
		for i := range p.Windows {
			fold(&p.Windows[i])
		}
		fold(&p.Lifetime)
	}
	render := func(label string) stream.ModalityWindow {
		win := stream.ModalityWindow{Window: label}
		for _, m := range modOrder[label] {
			a := wins[label][m]
			row := stream.ModalityRow{Modality: m, Jobs: a.jobs, NUs: a.nus}
			if a.confden > 0 {
				row.Confidence = a.confW / float64(a.confden)
			}
			win.TotalJobs += a.jobs
			win.TotalNUs += a.nus
			win.Rows = append(win.Rows, row)
		}
		return win
	}
	for _, label := range winOrder {
		if label == "lifetime" {
			continue
		}
		out.Windows = append(out.Windows, render(label))
	}
	if _, ok := wins["lifetime"]; ok {
		out.Lifetime = render("lifetime")
	} else {
		out.Lifetime = stream.ModalityWindow{Window: "lifetime"}
	}
	return out
}

// MergeDrift federates per-run drift payloads.
func MergeDrift(ids []string, payloads []*stream.DriftPayload) *FleetDrift {
	out := &FleetDrift{Runs: ids}
	if out.Runs == nil {
		out.Runs = []string{}
	}
	type acc struct {
		events, disagree int64
		peak             float64
	}
	wins := map[string]*acc{}
	var winOrder []string
	for _, p := range payloads {
		if p == nil {
			continue
		}
		if p.At > out.At {
			out.At = p.At
		}
		out.Events += p.Events
		out.Disagree += p.Disagree
		for _, w := range p.Windows {
			a, ok := wins[w.Window]
			if !ok {
				a = &acc{}
				wins[w.Window] = a
				winOrder = append(winOrder, w.Window)
			}
			a.events += w.Events
			a.disagree += w.Disagree
			if w.Peak > a.peak {
				a.peak = w.Peak
			}
		}
	}
	if out.Events > 0 {
		out.Rate = float64(out.Disagree) / float64(out.Events)
	}
	for _, label := range winOrder {
		a := wins[label]
		w := stream.DriftWindow{Window: label, Events: a.events, Disagree: a.disagree, Peak: a.peak}
		if a.events > 0 {
			w.Rate = float64(a.disagree) / float64(a.events)
		}
		out.Windows = append(out.Windows, w)
	}
	return out
}

// fleetPayloads gathers the per-run modality payloads in run-ID order.
func (d *Daemon) fleetPayloads() (ids []string, mods []*stream.ModalitiesPayload, dfts []*stream.DriftPayload) {
	for _, rs := range d.runList() {
		mp := rs.modPayload.Load()
		dp := rs.dftPayload.Load()
		if mp == nil && dp == nil {
			continue // nothing published for this run yet
		}
		ids = append(ids, rs.ID)
		mods = append(mods, mp)
		dfts = append(dfts, dp)
	}
	return ids, mods, dfts
}

// FleetModalitiesJSON renders the federated /modalities document.
func (d *Daemon) FleetModalitiesJSON() []byte {
	ids, mods, _ := d.fleetPayloads()
	return stream.MarshalPayload(MergeModalities(ids, mods))
}

// FleetDriftJSON renders the federated /drift document.
func (d *Daemon) FleetDriftJSON() []byte {
	ids, _, dfts := d.fleetPayloads()
	return stream.MarshalPayload(MergeDrift(ids, dfts))
}
