package observatory

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/faults"
	"github.com/tgsim/tgmod/internal/scenario"
)

// testRetry is a fast retry policy for loopback tests: tight delays, a
// budget generous enough to ride out a daemon restart.
func testRetry() faults.RetryPolicy {
	return faults.RetryPolicy{MaxAttempts: 60, Base: 0.01, MaxDelay: 0.1, Multiplier: 1.5, Jitter: 0.2}
}

// TestWALTornTail: a WAL cut mid-frame by a crash parses up to the tear,
// and goodLen points at the last whole frame so recovery can truncate.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	meta := walMeta{ID: "torn", Seed: 7, LargestCores: 4096, EndTimeS: 100, Source: "test"}
	w, err := openRunWAL(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if err := w.append(framePacket, sealSeq(seq, []byte{byte(seq)})); err != nil {
			t.Fatal(err)
		}
	}
	w.close(true)
	path := walPath(dir, "torn")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	wholeLen := st.Size()

	// Simulate the crash: a frame header promising 200 payload bytes, with
	// only 3 present.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{framePacket, 0, 0, 0, 200, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	gotMeta, recs, goodLen, err := readWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}
	if len(recs) != 10 {
		t.Fatalf("recovered %d frames, want 10", len(recs))
	}
	if goodLen != wholeLen {
		t.Fatalf("goodLen = %d, want %d (size before the torn tail)", goodLen, wholeLen)
	}
	for i, rec := range recs {
		seq, body, err := splitSeq(rec.payload)
		if err != nil || seq != uint64(i+1) || len(body) != 1 || body[0] != byte(i+1) {
			t.Fatalf("frame %d did not round-trip: seq=%d body=%v err=%v", i, seq, body, err)
		}
	}

	// A WAL reopened after truncation keeps appending where the good
	// prefix ended.
	if err := os.Truncate(path, goodLen); err != nil {
		t.Fatal(err)
	}
	w2, err := openRunWAL(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.append(framePacket, sealSeq(11, []byte{11})); err != nil {
		t.Fatal(err)
	}
	w2.close(true)
	if _, recs, _, err = readWAL(path); err != nil || len(recs) != 11 {
		t.Fatalf("after truncate+append: %d frames, err %v; want 11, nil", len(recs), err)
	}
}

// TestDaemonCrashRecoveryResume is the tentpole end-to-end: a daemon is
// killed mid-run (losing its unsynced WAL tail), a replacement recovers
// from the WAL directory and rebinds the same address, the producer
// reconnects and replays the gap, and the finished run byte-matches the
// producer's local state with zero packets lost.
func TestDaemonCrashRecoveryResume(t *testing.T) {
	walDir := t.TempDir()
	d1 := NewDaemon(Config{WALDir: walDir})
	addr, err := d1.ListenIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	largest := largestCores(t)

	cfg := smallConfig(13)
	end := float64(cfg.Horizon + cfg.DrainTime)
	opts := DefaultPushOptions()
	opts.Retry = testRetry()
	p, err := DialPush(addr, Hello{
		Run: "crash", Seed: 13, LargestCores: largest, EndTimeS: end, Source: "test",
	}, opts)
	if err != nil {
		t.Fatal(err)
	}

	// A gate observer blocks the simulation after the 10th packet until
	// the replacement daemon is up, making the kill deterministically
	// mid-run: frames 1..10 straddle the crash, everything after lands on
	// the recovered daemon.
	killAt := make(chan struct{})
	restarted := make(chan struct{})
	var once sync.Once
	packetCount := 0
	gate := scenario.ObserverFunc(func(a *scenario.Attachment) {
		a.Packets = append(a.Packets, func(at des.Time, pkt *accounting.Packet) {
			packetCount++
			if packetCount == 10 {
				once.Do(func() { close(killAt) })
				<-restarted
			}
		})
	})
	cfg.Observers = append(cfg.Observers, p.Observer(nil), gate)

	type runOut struct {
		res *scenario.Result
		err error
	}
	resCh := make(chan runOut, 1)
	go func() {
		res, err := scenario.Run(cfg)
		if err == nil {
			err = p.Finish(end)
		} else {
			p.Abort()
		}
		resCh <- runOut{res, err}
	}()

	select {
	case <-killAt:
	case <-time.After(30 * time.Second):
		t.Fatal("producer never reached the kill point")
	}
	d1.Kill()

	d2 := NewDaemon(Config{WALDir: walDir})
	t.Cleanup(func() { d2.Close() })
	n, err := d2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if n != 1 || d2.Recoveries() != 1 {
		t.Fatalf("recovered %d run(s) (counter %d), want 1", n, d2.Recoveries())
	}
	if _, err := d2.ListenIngest(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	close(restarted)

	out := <-resCh
	if out.err != nil {
		t.Fatalf("pushed run across the crash: %v", out.err)
	}
	st := p.Stats()
	if st.PacketsLost != 0 {
		t.Fatalf("lost %d packets across the crash, want 0 (%+v)", st.PacketsLost, st)
	}
	if st.Reconnects == 0 {
		t.Fatal("producer never reconnected — the kill did not interrupt the session")
	}
	if p.RunID() != "crash" {
		t.Fatalf("resumed run renamed to %q", p.RunID())
	}

	// The recovered daemon's report and accounting export byte-match the
	// producer's local computation, exactly as in the no-fault path.
	cl := core.NewClassifier(core.Config{LargestCores: largest})
	rep := core.BuildReport(out.res.Central, cl.Classify(out.res.Central))
	var want bytes.Buffer
	if err := core.ModalityTable(rep).WriteText(&want); err != nil {
		t.Fatal(err)
	}
	got := d2.RunReport("crash")
	if got == nil {
		t.Fatal("recovered daemon has no final report after Finish")
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("recovered daemon report differs from producer's:\n--- daemon ---\n%s\n--- producer ---\n%s", got, want.Bytes())
	}
	var dExport, pExport bytes.Buffer
	if err := d2.RunCentralExport("crash", &dExport); err != nil {
		t.Fatal(err)
	}
	if err := out.res.Central.Export(&pExport); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dExport.Bytes(), pExport.Bytes()) {
		t.Fatal("recovered daemon's accounting export differs from the producer's")
	}
}

// TestRecoveredFinalizedRun: recovery of a WAL holding a complete run
// (final frame included) re-finalizes it and re-writes final artifacts.
func TestRecoveredFinalizedRun(t *testing.T) {
	walDir := t.TempDir()
	finalDir := t.TempDir()
	d1 := NewDaemon(Config{WALDir: walDir, FinalDir: finalDir})
	addr, err := d1.ListenIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_, p, _ := pushRun(t, addr, 17, "done")
	wantReport := append([]byte(nil), d1.RunReport(p.RunID())...)
	d1.Kill()
	txt := filepath.Join(finalDir, "done.modality.txt")
	if err := os.Remove(txt); err != nil {
		t.Fatal(err)
	}

	d2 := NewDaemon(Config{WALDir: walDir, FinalDir: finalDir})
	t.Cleanup(func() { d2.Close() })
	if n, err := d2.Recover(); err != nil || n != 1 {
		t.Fatalf("recover = (%d, %v), want (1, nil)", n, err)
	}
	got := d2.RunReport("done")
	if !bytes.Equal(got, wantReport) {
		t.Fatal("recovered report differs from the pre-crash report")
	}
	onDisk, err := os.ReadFile(txt)
	if err != nil {
		t.Fatalf("recovery did not re-write final artifacts: %v", err)
	}
	if !bytes.Equal(onDisk, wantReport) {
		t.Fatal("re-written final artifact differs from the pre-crash report")
	}
}

// TestGracefulShutdownDrains: Shutdown with a grace window lets an
// in-flight session finish, then returns cleanly; the daemon refuses new
// work afterwards.
func TestGracefulShutdownDrains(t *testing.T) {
	finalDir := t.TempDir()
	d := NewDaemon(Config{FinalDir: finalDir})
	addr, err := d.ListenIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_, p, _ := pushRun(t, addr, 19, "drain")
	if err := d.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := os.Stat(filepath.Join(finalDir, p.RunID()+".modality.txt")); err != nil {
		t.Fatalf("final artifact missing after shutdown: %v", err)
	}
	noRetry := DefaultPushOptions()
	noRetry.Retry.MaxAttempts = -1
	if _, err := DialPush(addr, Hello{Run: "late", Seed: 1}, noRetry); err == nil {
		t.Fatal("daemon accepted a session after Shutdown")
	}
}
