package observatory

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/perf"
	"github.com/tgsim/tgmod/internal/stream"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// Config parameterizes a Daemon.
type Config struct {
	// InboxCap bounds each run's streaming ingest inbox (0 = unbounded).
	// Overflow is dropped and counted per run (tg_obsd_dropped_total).
	InboxCap int
	// FinalDir, when set, receives per-run final artifacts as each run
	// finalizes: <id>.modality.txt (the byte-exact usage-by-modality
	// table) and <id>.modalities.json (the final /modalities payload).
	FinalDir string
	// WALDir, when set, enables per-run write-ahead journaling: every
	// record frame is appended to <id>.wal before it is applied, and
	// Recover rebuilds run state from the directory after a crash.
	WALDir string
	// Pprof mounts the net/http/pprof endpoints on the console at
	// /debug/pprof/. Off by default: they expose process internals.
	Pprof bool
	// Log receives connection lifecycle lines; nil silences them.
	Log *log.Logger
}

// Daemon is the multi-run observatory: it accepts pushed telemetry on any
// number of listeners, maintains one streaming processor and one
// accounting database per connected run, and serves the federated console
// (see ServeHTTP in http.go).
//
// Concurrency model: each connection is one run and is handled by one
// goroutine, which owns that run's processor, registry, and accounting
// database outright — the same single-writer discipline the in-process
// observatory uses. Everything the HTTP side serves is an immutable
// payload published through an atomic pointer by the owning goroutine.
// The daemon's own bookkeeping is plain atomics folded into a fresh
// registry at scrape time, so ingest and scrape never contend.
type Daemon struct {
	cfg Config

	mu   sync.Mutex
	runs map[string]*runState
	seq  int

	listeners []net.Listener
	lnWG      sync.WaitGroup
	closed    atomic.Bool

	// Live connections (d.mu) and their handler goroutines, so Shutdown
	// can drain and Kill can sever. killed tells exiting handlers to skip
	// the WAL sync a real kill -9 would never perform.
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup
	killed atomic.Bool

	httpSrv *http.Server // console server lifecycle; see http.go

	// Meta-observability counters (tg_obsd_*).
	connections  atomic.Uint64
	disconnects  atomic.Uint64
	reconnects   atomic.Uint64
	decodeErrors atomic.Uint64
	bytesIn      atomic.Uint64
	framePackets atomic.Uint64
	frameSnaps   atomic.Uint64
	frameMetrics atomic.Uint64
	frameFinals  atomic.Uint64
	recoveries   atomic.Uint64
	dupFrames    atomic.Uint64

	// runtime samples the daemon's own Go runtime state (tg_runtime_*),
	// spliced into the meta-metrics exposition at scrape time. The sampler
	// is internally locked, so concurrent scrapes are safe.
	runtime *perf.RuntimeSampler
}

// runState is one run's slice of the daemon. The fields below the
// "owned" marker are touched only by the run's connection goroutine;
// the atomic publications are what the HTTP side reads.
type runState struct {
	ID       string
	Seed     uint64
	Largest  int
	Source   string
	EndTimeS float64

	// Owned by the connection goroutine (ownMu holds the ownership: a
	// handler locks it for its whole tenure, so a resume takeover waits
	// for the evicted handler to finish its in-flight frame).
	ownMu   sync.Mutex
	proc    *stream.Processor
	central *accounting.Central
	reg     *telemetry.Registry
	wal     *runWAL // nil when journaling is off or the disk failed

	// curConn lets a resume takeover force-close a half-open previous
	// connection so its handler releases ownership.
	curConn atomic.Pointer[net.Conn]

	// haveSeq is the record-frame high-water mark: the highest sequence
	// number applied (and, when journaling, logged). It is the resume
	// offset reported in the hello ack.
	haveSeq atomic.Uint64
	dups    atomic.Uint64 // replayed frames deduplicated away

	// Published (immutable payloads; HTTP loads the pointers).
	lastSnap   atomic.Pointer[telemetry.Snapshot]
	modalities atomic.Pointer[[]byte]
	drift      atomic.Pointer[[]byte]
	metricsOM  atomic.Pointer[[]byte] // producer-pushed exposition
	streamOM   atomic.Pointer[[]byte] // daemon-side per-run tg_stream_*/tg_drift_*
	report     atomic.Pointer[[]byte] // final usage-by-modality table text
	modPayload atomic.Pointer[stream.ModalitiesPayload]
	dftPayload atomic.Pointer[stream.DriftPayload]
	streamSnap atomic.Pointer[telemetry.StreamSnap]

	// Shared bookkeeping.
	connected    atomic.Bool
	finalized    atomic.Bool
	reconnects   atomic.Uint64
	frames       atomic.Uint64
	bytes        atomic.Uint64
	packets      atomic.Uint64
	lastFrameUNS atomic.Int64 // unix nanos of the last frame received

	lastPublish time.Time // owned by the connection goroutine
}

// NewDaemon returns a daemon ready to accept listeners.
func NewDaemon(cfg Config) *Daemon {
	return &Daemon{
		cfg:     cfg,
		runs:    make(map[string]*runState),
		conns:   make(map[net.Conn]struct{}),
		runtime: perf.NewRuntimeSampler(),
	}
}

// logf writes a lifecycle line when logging is configured.
func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Log != nil {
		d.cfg.Log.Printf(format, args...)
	}
}

// ListenIngest starts accepting push connections on addr ("host:port" for
// TCP, "unix:PATH" or a path containing "/" for a Unix socket) and
// returns the bound address. Call Close to stop every listener.
func (d *Daemon) ListenIngest(addr string) (string, error) {
	network, target := splitPushAddr(addr)
	if network == "unix" {
		// A stale socket file from a previous daemon blocks the bind.
		os.Remove(target)
	}
	ln, err := net.Listen(network, target)
	if err != nil {
		return "", err
	}
	d.mu.Lock()
	d.listeners = append(d.listeners, ln)
	d.mu.Unlock()
	d.lnWG.Add(1)
	go d.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (d *Daemon) acceptLoop(ln net.Listener) {
	defer d.lnWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		d.connWG.Add(1)
		go func() {
			defer d.connWG.Done()
			d.handleConn(conn)
		}()
	}
}

// Close stops all listeners and the HTTP console. In-flight runs keep
// their published state; their connections are closed by their peers.
func (d *Daemon) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	d.mu.Lock()
	lns := d.listeners
	d.listeners = nil
	srv := d.httpSrv
	d.httpSrv = nil
	d.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
		if ua, ok := ln.Addr().(*net.UnixAddr); ok {
			os.Remove(ua.Name)
		}
	}
	d.lnWG.Wait()
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return srv.Close()
		}
	}
	return nil
}

// Shutdown stops the daemon gracefully: listeners close first (no new
// producers), every in-flight connection gets until the grace deadline to
// drain (its reads are deadline-capped, so a silent peer cannot stall the
// exit), handler exits sync and close the per-run WALs, and the console
// goes down last. Finalized runs already wrote their -final-out
// artifacts at finalize time; a graceful exit therefore loses nothing
// that was ever acked.
func (d *Daemon) Shutdown(grace time.Duration) error {
	if d.closed.Swap(true) {
		return nil
	}
	d.mu.Lock()
	lns := d.listeners
	d.listeners = nil
	d.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
		if ua, ok := ln.Addr().(*net.UnixAddr); ok {
			os.Remove(ua.Name)
		}
	}
	d.lnWG.Wait()
	deadline := time.Now().Add(grace)
	d.mu.Lock()
	for c := range d.conns {
		c.SetReadDeadline(deadline)
	}
	srv := d.httpSrv
	d.httpSrv = nil
	d.mu.Unlock()
	d.connWG.Wait()
	// No handlers left: WAL ownership is free.
	for _, rs := range d.runList() {
		if rs.wal != nil {
			rs.wal.close(true)
			rs.wal = nil
		}
	}
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return srv.Close()
		}
	}
	return nil
}

// Kill simulates a hard crash for tests: listeners and live connections
// are severed instantly and buffered WAL bytes are deliberately not
// flushed — what kill -9 leaves on disk. The daemon object is dead
// afterwards; recovery happens in a fresh daemon over the same WAL
// directory.
func (d *Daemon) Kill() {
	d.killed.Store(true)
	if d.closed.Swap(true) {
		return
	}
	d.mu.Lock()
	lns := d.listeners
	d.listeners = nil
	conns := make([]net.Conn, 0, len(d.conns))
	for c := range d.conns {
		conns = append(conns, c)
	}
	srv := d.httpSrv
	d.httpSrv = nil
	d.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
		if ua, ok := ln.Addr().(*net.UnixAddr); ok {
			os.Remove(ua.Name)
		}
	}
	for _, c := range conns {
		c.Close()
	}
	d.lnWG.Wait()
	d.connWG.Wait()
	for _, rs := range d.runList() {
		if rs.wal != nil {
			rs.wal.close(false) // close without flushing: the crash loses the tail
			rs.wal = nil
		}
	}
	if srv != nil {
		srv.Close()
	}
}

// Recover rebuilds run state from the WAL directory after a crash: each
// journal's torn tail (a frame cut mid-write by the crash) is truncated
// away, the surviving record frames are replayed through the same apply
// path live ingest uses, and runs whose journal holds a final frame are
// re-finalized — including their -final-out artifacts. Call before
// ListenIngest; returns the number of recovered runs.
func (d *Daemon) Recover() (int, error) {
	if d.cfg.WALDir == "" {
		return 0, nil
	}
	paths, err := listWALs(d.cfg.WALDir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, path := range paths {
		meta, recs, goodLen, err := readWAL(path)
		if err != nil {
			d.logf("tgobsd: recovery: skipping %s: %v", path, err)
			continue
		}
		if st, err := os.Stat(path); err == nil && st.Size() > goodLen {
			if err := os.Truncate(path, goodLen); err != nil {
				d.logf("tgobsd: recovery: truncate %s: %v", path, err)
			}
		}
		rs := d.newRunState(meta.ID, meta.Seed, meta.LargestCores, meta.EndTimeS, meta.Source)
		for _, rec := range recs {
			if err := d.applyRecovered(rs, rec); err != nil {
				d.logf("tgobsd: recovery: run %s: stopping replay at seq %d: %v",
					rs.ID, rs.haveSeq.Load(), err)
				break
			}
		}
		rs.frames.Add(uint64(len(recs)))
		rs.publish(true)
		d.mu.Lock()
		if _, taken := d.runs[rs.ID]; taken {
			d.mu.Unlock()
			d.logf("tgobsd: recovery: run %s already registered, skipping %s", rs.ID, path)
			continue
		}
		d.runs[rs.ID] = rs
		d.mu.Unlock()
		d.recoveries.Add(1)
		n++
		d.logf("tgobsd: recovered run %s from WAL (seq %d, %d packets, finalized %v)",
			rs.ID, rs.haveSeq.Load(), rs.packets.Load(), rs.finalized.Load())
	}
	return n, nil
}

// applyRecovered replays one WAL record through the live apply path.
func (d *Daemon) applyRecovered(rs *runState, rec walRecord) error {
	seq, body, err := splitSeq(rec.payload)
	if err != nil {
		return err
	}
	if seq <= rs.haveSeq.Load() {
		return nil // duplicate landed in the journal; harmless
	}
	switch rec.typ {
	case framePacket:
		return rs.applyPacket(seq, body)
	case frameFinal:
		end, err := decodeFinalFrame(body)
		if err != nil {
			return err
		}
		rs.haveSeq.Store(seq)
		return d.finalizeRun(rs, end)
	default:
		return fmt.Errorf("%w: unexpected WAL frame %q", ErrBadFrame, rec.typ)
	}
}

// Recoveries reports how many runs were rebuilt from WALs at startup.
func (d *Daemon) Recoveries() uint64 { return d.recoveries.Load() }

// newRunState builds a fresh run slice (processor, registry, accounting
// database) for the given identity.
func (d *Daemon) newRunState(id string, seed uint64, largest int, endTimeS float64, source string) *runState {
	rs := &runState{
		ID: id, Seed: seed, Largest: largest,
		Source: source, EndTimeS: endTimeS,
		central: accounting.NewCentral(),
		reg:     telemetry.New(),
	}
	rs.proc = stream.New(stream.Config{
		LargestCores: largest,
		InboxCap:     d.cfg.InboxCap,
		Registry:     rs.reg,
	})
	return rs
}

// register resolves a hello into a run state. A resume hello (seed must
// match) gets its run back — taking over from a half-open previous
// connection, or recreating the run at offset zero when this daemon has
// never seen it (restart without a WAL; the producer's journal replays
// everything). A non-resume hello whose requested ID collides gets a
// uniquified ID; a resume with the wrong seed gets nil (the handler
// rejects it — replaying one run into another would corrupt both).
func (d *Daemon) register(h *Hello) (*runState, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	id := h.Run
	if id == "" {
		id = fmt.Sprintf("run-%d", d.seq)
	}
	if rs, ok := d.runs[id]; ok {
		if h.Resume {
			if rs.Seed != h.Seed {
				return nil, false
			}
			rs.reconnects.Add(1)
			d.reconnects.Add(1)
			if c := rs.curConn.Load(); c != nil {
				(*c).Close()
			}
			return rs, true
		}
		base := id
		for n := 2; ; n++ {
			id = fmt.Sprintf("%s#%d", base, n)
			if _, taken := d.runs[id]; !taken {
				break
			}
		}
	}
	rs := d.newRunState(id, h.Seed, h.LargestCores, h.EndTimeS, h.Source)
	d.runs[id] = rs
	return rs, false
}

// reject answers a hopeless handshake with a typed error frame; Dial
// surfaces the reason wrapped in ErrBadHello.
func (d *Daemon) reject(conn net.Conn, msg string) {
	d.decodeErrors.Add(1)
	writeFrame(conn, frameError, []byte(msg))
	d.logf("tgobsd: %s: rejected: %s", conn.RemoteAddr(), msg)
}

// handleConn services one push connection end to end.
func (d *Daemon) handleConn(conn net.Conn) {
	defer conn.Close()
	d.mu.Lock()
	d.conns[conn] = struct{}{}
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
	}()
	d.connections.Add(1)
	br := newCountingReader(conn, &d.bytesIn)

	if err := readMagic(br); err != nil {
		d.decodeErrors.Add(1)
		d.logf("tgobsd: %s: %v", conn.RemoteAddr(), err)
		return
	}
	// The hello is read under a much tighter payload cap than the general
	// wire limit: no 64 MiB allocation for a peer that has not even
	// identified itself yet.
	typ, payload, err := readFrameLimited(br, maxHelloPayload)
	if err != nil {
		d.reject(conn, fmt.Sprintf("bad hello frame: %v", err))
		return
	}
	if typ != frameHello {
		d.reject(conn, fmt.Sprintf("want hello, got frame %q", typ))
		return
	}
	var h Hello
	if err := unmarshalStrictless(payload, &h); err != nil {
		d.reject(conn, fmt.Sprintf("bad hello: %v", err))
		return
	}
	if err := validateRunID(h.Run); err != nil {
		d.reject(conn, err.Error())
		return
	}
	rs, resumed := d.register(&h)
	if rs == nil {
		d.reject(conn, fmt.Sprintf("resume refused: seed mismatch for run %q", h.Run))
		return
	}
	// Take ownership of the run. On a resume takeover, register already
	// closed the previous connection; this blocks until its handler
	// finishes the in-flight frame and releases.
	rs.ownMu.Lock()
	rs.curConn.Store(&conn)
	rs.connected.Store(true)
	if d.cfg.WALDir != "" && rs.wal == nil && !rs.finalized.Load() {
		wal, err := openRunWAL(d.cfg.WALDir, walMeta{
			ID: rs.ID, Seed: rs.Seed, LargestCores: rs.Largest,
			EndTimeS: rs.EndTimeS, Source: rs.Source,
		})
		if err != nil {
			d.logf("tgobsd: run %s: WAL open failed, journaling off: %v", rs.ID, err)
		} else {
			rs.wal = wal
		}
	}
	defer func() {
		if rs.wal != nil && !d.killed.Load() {
			rs.wal.sync()
		}
		rs.connected.Store(false)
		rs.curConn.Store(nil)
		rs.ownMu.Unlock()
		d.disconnects.Add(1)
		d.logf("tgobsd: run %s disconnected (%d frames, %d bytes)",
			rs.ID, rs.frames.Load(), rs.bytes.Load())
	}()
	ack := helloAck{Run: rs.ID, HaveSeq: rs.haveSeq.Load(), Finalized: rs.finalized.Load()}
	if err := writeFrame(conn, frameHelloAck, marshalJSON(&ack)); err != nil {
		return
	}
	verb := "connected"
	if resumed {
		verb = fmt.Sprintf("resumed at seq %d", ack.HaveSeq)
	}
	d.logf("tgobsd: run %s %s from %s (seed %d, source %q)",
		rs.ID, verb, conn.RemoteAddr(), rs.Seed, rs.Source)

	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			if err != io.EOF {
				d.decodeErrors.Add(1)
				d.logf("tgobsd: run %s: %v", rs.ID, err)
			}
			rs.publish(true)
			return
		}
		rs.frames.Add(1)
		rs.bytes.Add(uint64(len(payload)))
		rs.lastFrameUNS.Store(time.Now().UnixNano())
		if err := d.applyFrame(rs, conn, typ, payload); err != nil {
			d.decodeErrors.Add(1)
			d.logf("tgobsd: run %s: %v", rs.ID, err)
			rs.publish(true)
			return
		}
	}
}

// applyFrame applies one decoded frame to the run. It runs on the run's
// connection goroutine, the sole owner of the run's mutable state.
//
// Record frames (packet, final) carry sequence numbers: anything at or
// below the high-water mark is a replayed duplicate and is dropped (a
// duplicate final gets its ack re-sent — the original ack may have died
// with the connection), a gap is a protocol violation, and the next
// frame in order is journaled to the WAL *before* it is applied.
func (d *Daemon) applyFrame(rs *runState, conn net.Conn, typ byte, payload []byte) error {
	switch typ {
	case framePacket:
		d.framePackets.Add(1)
		seq, body, err := splitSeq(payload)
		if err != nil {
			return err
		}
		have := rs.haveSeq.Load()
		if seq <= have {
			rs.dups.Add(1)
			d.dupFrames.Add(1)
			return nil
		}
		if seq != have+1 {
			return fmt.Errorf("%w: run %s: sequence gap (got %d, want %d)", ErrBadFrame, rs.ID, seq, have+1)
		}
		if rs.finalized.Load() {
			return fmt.Errorf("%w: run %s: packet seq %d after final", ErrBadFrame, rs.ID, seq)
		}
		d.walAppend(rs, framePacket, payload)
		if err := rs.applyPacket(seq, body); err != nil {
			return err
		}
		rs.publish(false)
	case frameSnapshot:
		d.frameSnaps.Add(1)
		s := &telemetry.Snapshot{}
		if err := unmarshalStrictless(payload, s); err != nil {
			return err
		}
		rs.lastSnap.Store(s)
	case frameMetrics:
		d.frameMetrics.Add(1)
		om := append([]byte(nil), payload...)
		rs.metricsOM.Store(&om)
	case frameFinal:
		d.frameFinals.Add(1)
		seq, body, err := splitSeq(payload)
		if err != nil {
			return err
		}
		have := rs.haveSeq.Load()
		if seq <= have {
			rs.dups.Add(1)
			d.dupFrames.Add(1)
			return writeFrame(conn, frameFinalAck, nil)
		}
		if seq != have+1 {
			return fmt.Errorf("%w: run %s: sequence gap (got %d, want %d)", ErrBadFrame, rs.ID, seq, have+1)
		}
		end, err := decodeFinalFrame(body)
		if err != nil {
			return err
		}
		d.walAppend(rs, frameFinal, payload)
		if rs.wal != nil {
			// The final must be durable before the ack releases the
			// producer from its delivery obligation.
			rs.wal.sync()
		}
		rs.haveSeq.Store(seq)
		if err := d.finalizeRun(rs, end); err != nil {
			return err
		}
		return writeFrame(conn, frameFinalAck, nil)
	default:
		return fmt.Errorf("%w: unknown frame type %q", ErrBadFrame, typ)
	}
	return nil
}

// walAppend journals one record frame ahead of processing. A disk
// failure degrades the run to non-journaled (logged once) rather than
// killing the connection: availability over durability, and the
// producer's journal still covers the replay.
func (d *Daemon) walAppend(rs *runState, typ byte, payload []byte) {
	if rs.wal == nil {
		return
	}
	if err := rs.wal.append(typ, payload); err != nil {
		d.logf("tgobsd: run %s: WAL append failed, journaling off: %v", rs.ID, err)
		rs.wal.close(false)
		rs.wal = nil
	}
}

// applyPacket ingests one in-order sequenced packet body. Ingest is in
// arrival order — exactly the producer's flush order — so the final
// classification walks the same records in the same sequence the
// producer's own database holds.
func (rs *runState) applyPacket(seq uint64, body []byte) error {
	at, pkt, err := decodePacketFrame(body)
	if err != nil {
		return err
	}
	if err := rs.central.Ingest(pkt); err != nil {
		return err
	}
	rs.proc.OfferPacket(des.Time(at), pkt)
	rs.haveSeq.Store(seq)
	rs.packets.Add(1)
	return nil
}

// publishMinWall throttles mid-run payload publication; finals always
// publish.
const publishMinWall = 100 * time.Millisecond

// publish renders and publishes the run's live payloads. Runs on the
// connection goroutine.
func (rs *runState) publish(force bool) {
	now := time.Now()
	if !force && now.Sub(rs.lastPublish) < publishMinWall {
		return
	}
	rs.lastPublish = now
	mp := rs.proc.Modalities()
	dp := rs.proc.Drift()
	mj := stream.MarshalPayload(mp)
	dj := stream.MarshalPayload(dp)
	rs.modalities.Store(&mj)
	rs.drift.Store(&dj)
	rs.modPayload.Store(mp)
	rs.dftPayload.Store(dp)
	snap := rs.proc.Snap()
	rs.streamSnap.Store(&snap)
	var buf bytes.Buffer
	if err := rs.reg.WriteOpenMetrics(&buf); err == nil {
		om := buf.Bytes()
		rs.streamOM.Store(&om)
	}
}

// finalizeRun closes a run: the stream clock advances to the announced
// end (expiring trailing windows exactly where the producer's run ended),
// the final payloads are published, and the byte-exact usage-by-modality
// report is built by classifying the arrival-order accounting database
// with the unchanged batch classifier — the same code path, over the same
// records in the same order, as the producer's own report.
func (d *Daemon) finalizeRun(rs *runState, end float64) error {
	if end <= 0 {
		end = rs.EndTimeS
	}
	if end > 0 {
		rs.proc.Advance(des.Time(end))
	}
	cl := core.NewClassifier(core.Config{LargestCores: rs.Largest})
	rep := core.BuildReport(rs.central, cl.Classify(rs.central))
	var buf bytes.Buffer
	if err := core.ModalityTable(rep).WriteText(&buf); err != nil {
		return err
	}
	report := buf.Bytes()
	rs.report.Store(&report)
	rs.publish(true)
	rs.finalized.Store(true)
	d.logf("tgobsd: run %s finalized (%d jobs, %d packets)",
		rs.ID, len(rs.central.Jobs()), rs.packets.Load())
	if d.cfg.FinalDir != "" {
		if err := os.MkdirAll(d.cfg.FinalDir, 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(d.cfg.FinalDir, rs.ID+".modality.txt"), report, 0o644); err != nil {
			return err
		}
		if mj := rs.modalities.Load(); mj != nil {
			if err := os.WriteFile(filepath.Join(d.cfg.FinalDir, rs.ID+".modalities.json"), *mj, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// runList returns the run states sorted by ID — the deterministic order
// every federated view and listing uses.
func (d *Daemon) runList() []*runState {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*runState, 0, len(d.runs))
	for _, rs := range d.runs {
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run returns the state for one run ID (nil when unknown).
func (d *Daemon) run(id string) *runState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.runs[id]
}

// RunReport returns a finalized run's usage-by-modality table text
// (nil until the run's final frame has been processed).
func (d *Daemon) RunReport(id string) []byte {
	rs := d.run(id)
	if rs == nil {
		return nil
	}
	if p := rs.report.Load(); p != nil {
		return *p
	}
	return nil
}

// RunCentralExport writes a run's arrival-order accounting database in
// the JSON-lines export format (what tgsim -export writes as acct.jsonl),
// so daemon-side records can be diffed against producer exports.
func (d *Daemon) RunCentralExport(id string, w io.Writer) error {
	rs := d.run(id)
	if rs == nil {
		return fmt.Errorf("observatory: unknown run %q", id)
	}
	if !rs.finalized.Load() {
		return fmt.Errorf("observatory: run %q not finalized", id)
	}
	// Safe: after finalize the owning goroutine no longer mutates the
	// database (applyFrame rejects record frames past the final, and a
	// resumed connection to a finalized run only ever re-acks).
	return rs.central.Export(w)
}

// RunIDs returns the known run IDs, sorted.
func (d *Daemon) RunIDs() []string {
	runs := d.runList()
	out := make([]string, len(runs))
	for i, rs := range runs {
		out[i] = rs.ID
	}
	return out
}

// countingReader counts bytes into an atomic as they are read.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func newCountingReader(r io.Reader, n *atomic.Uint64) *countingReader {
	return &countingReader{r: r, n: n}
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}
