package observatory

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/perf"
	"github.com/tgsim/tgmod/internal/stream"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// Config parameterizes a Daemon.
type Config struct {
	// InboxCap bounds each run's streaming ingest inbox (0 = unbounded).
	// Overflow is dropped and counted per run (tg_obsd_dropped_total).
	InboxCap int
	// FinalDir, when set, receives per-run final artifacts as each run
	// finalizes: <id>.modality.txt (the byte-exact usage-by-modality
	// table) and <id>.modalities.json (the final /modalities payload).
	FinalDir string
	// Pprof mounts the net/http/pprof endpoints on the console at
	// /debug/pprof/. Off by default: they expose process internals.
	Pprof bool
	// Log receives connection lifecycle lines; nil silences them.
	Log *log.Logger
}

// Daemon is the multi-run observatory: it accepts pushed telemetry on any
// number of listeners, maintains one streaming processor and one
// accounting database per connected run, and serves the federated console
// (see ServeHTTP in http.go).
//
// Concurrency model: each connection is one run and is handled by one
// goroutine, which owns that run's processor, registry, and accounting
// database outright — the same single-writer discipline the in-process
// observatory uses. Everything the HTTP side serves is an immutable
// payload published through an atomic pointer by the owning goroutine.
// The daemon's own bookkeeping is plain atomics folded into a fresh
// registry at scrape time, so ingest and scrape never contend.
type Daemon struct {
	cfg Config

	mu   sync.Mutex
	runs map[string]*runState
	seq  int

	listeners []net.Listener
	lnWG      sync.WaitGroup
	closed    atomic.Bool

	httpSrv *http.Server // console server lifecycle; see http.go

	// Meta-observability counters (tg_obsd_*).
	connections  atomic.Uint64
	disconnects  atomic.Uint64
	reconnects   atomic.Uint64
	decodeErrors atomic.Uint64
	bytesIn      atomic.Uint64
	framePackets atomic.Uint64
	frameSnaps   atomic.Uint64
	frameMetrics atomic.Uint64
	frameFinals  atomic.Uint64

	// runtime samples the daemon's own Go runtime state (tg_runtime_*),
	// spliced into the meta-metrics exposition at scrape time. The sampler
	// is internally locked, so concurrent scrapes are safe.
	runtime *perf.RuntimeSampler
}

// runState is one run's slice of the daemon. The fields below the
// "owned" marker are touched only by the run's connection goroutine;
// the atomic publications are what the HTTP side reads.
type runState struct {
	ID       string
	Seed     uint64
	Largest  int
	Source   string
	EndTimeS float64

	// Owned by the connection goroutine.
	proc    *stream.Processor
	central *accounting.Central
	reg     *telemetry.Registry

	// Published (immutable payloads; HTTP loads the pointers).
	lastSnap   atomic.Pointer[telemetry.Snapshot]
	modalities atomic.Pointer[[]byte]
	drift      atomic.Pointer[[]byte]
	metricsOM  atomic.Pointer[[]byte] // producer-pushed exposition
	streamOM   atomic.Pointer[[]byte] // daemon-side per-run tg_stream_*/tg_drift_*
	report     atomic.Pointer[[]byte] // final usage-by-modality table text
	modPayload atomic.Pointer[stream.ModalitiesPayload]
	dftPayload atomic.Pointer[stream.DriftPayload]
	streamSnap atomic.Pointer[telemetry.StreamSnap]

	// Shared bookkeeping.
	connected    atomic.Bool
	finalized    atomic.Bool
	reconnects   atomic.Uint64
	frames       atomic.Uint64
	bytes        atomic.Uint64
	packets      atomic.Uint64
	lastFrameUNS atomic.Int64 // unix nanos of the last frame received

	lastPublish time.Time // owned by the connection goroutine
}

// NewDaemon returns a daemon ready to accept listeners.
func NewDaemon(cfg Config) *Daemon {
	return &Daemon{
		cfg:     cfg,
		runs:    make(map[string]*runState),
		runtime: perf.NewRuntimeSampler(),
	}
}

// logf writes a lifecycle line when logging is configured.
func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Log != nil {
		d.cfg.Log.Printf(format, args...)
	}
}

// ListenIngest starts accepting push connections on addr ("host:port" for
// TCP, "unix:PATH" or a path containing "/" for a Unix socket) and
// returns the bound address. Call Close to stop every listener.
func (d *Daemon) ListenIngest(addr string) (string, error) {
	network, target := splitPushAddr(addr)
	if network == "unix" {
		// A stale socket file from a previous daemon blocks the bind.
		os.Remove(target)
	}
	ln, err := net.Listen(network, target)
	if err != nil {
		return "", err
	}
	d.mu.Lock()
	d.listeners = append(d.listeners, ln)
	d.mu.Unlock()
	d.lnWG.Add(1)
	go d.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (d *Daemon) acceptLoop(ln net.Listener) {
	defer d.lnWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go d.handleConn(conn)
	}
}

// Close stops all listeners and the HTTP console. In-flight runs keep
// their published state; their connections are closed by their peers.
func (d *Daemon) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	d.mu.Lock()
	lns := d.listeners
	d.listeners = nil
	srv := d.httpSrv
	d.httpSrv = nil
	d.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
		if ua, ok := ln.Addr().(*net.UnixAddr); ok {
			os.Remove(ua.Name)
		}
	}
	d.lnWG.Wait()
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return srv.Close()
		}
	}
	return nil
}

// register resolves a hello into a run state: a fresh run, a reconnect to
// a disconnected run of the same ID, or a uniquified ID when the
// requested one is still live.
func (d *Daemon) register(h *Hello) (*runState, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	id := h.Run
	if id == "" {
		id = fmt.Sprintf("run-%d", d.seq)
	}
	if rs, ok := d.runs[id]; ok {
		if !rs.connected.Load() && !rs.finalized.Load() && rs.Seed == h.Seed {
			// Same run coming back after a broken connection: resume its
			// processor and database where they left off.
			rs.connected.Store(true)
			rs.reconnects.Add(1)
			d.reconnects.Add(1)
			return rs, true
		}
		base := id
		for n := 2; ; n++ {
			id = fmt.Sprintf("%s#%d", base, n)
			if _, taken := d.runs[id]; !taken {
				break
			}
		}
	}
	rs := &runState{
		ID: id, Seed: h.Seed, Largest: h.LargestCores,
		Source: h.Source, EndTimeS: h.EndTimeS,
		central: accounting.NewCentral(),
		reg:     telemetry.New(),
	}
	rs.proc = stream.New(stream.Config{
		LargestCores: h.LargestCores,
		InboxCap:     d.cfg.InboxCap,
		Registry:     rs.reg,
	})
	rs.connected.Store(true)
	d.runs[id] = rs
	return rs, false
}

// handleConn services one push connection end to end.
func (d *Daemon) handleConn(conn net.Conn) {
	defer conn.Close()
	d.connections.Add(1)
	br := newCountingReader(conn, &d.bytesIn)

	if err := readMagic(br); err != nil {
		d.decodeErrors.Add(1)
		d.logf("tgobsd: %s: %v", conn.RemoteAddr(), err)
		return
	}
	typ, payload, err := readFrame(br)
	if err != nil || typ != frameHello {
		d.decodeErrors.Add(1)
		d.logf("tgobsd: %s: want hello, got %v", conn.RemoteAddr(), err)
		return
	}
	var h Hello
	if err := unmarshalStrictless(payload, &h); err != nil {
		d.decodeErrors.Add(1)
		d.logf("tgobsd: %s: %v", conn.RemoteAddr(), err)
		return
	}
	rs, resumed := d.register(&h)
	defer func() {
		rs.connected.Store(false)
		d.disconnects.Add(1)
		d.logf("tgobsd: run %s disconnected (%d frames, %d bytes)",
			rs.ID, rs.frames.Load(), rs.bytes.Load())
	}()
	if err := writeFrame(conn, frameHelloAck, marshalJSON(&helloAck{Run: rs.ID})); err != nil {
		return
	}
	verb := "connected"
	if resumed {
		verb = "reconnected"
	}
	d.logf("tgobsd: run %s %s from %s (seed %d, source %q)",
		rs.ID, verb, conn.RemoteAddr(), rs.Seed, rs.Source)

	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			if err != io.EOF {
				d.decodeErrors.Add(1)
				d.logf("tgobsd: run %s: %v", rs.ID, err)
			}
			rs.publish(true)
			return
		}
		rs.frames.Add(1)
		rs.bytes.Add(uint64(len(payload)))
		rs.lastFrameUNS.Store(time.Now().UnixNano())
		if err := d.applyFrame(rs, conn, typ, payload); err != nil {
			d.decodeErrors.Add(1)
			d.logf("tgobsd: run %s: %v", rs.ID, err)
			rs.publish(true)
			return
		}
	}
}

// applyFrame applies one decoded frame to the run. It runs on the run's
// connection goroutine, the sole owner of the run's mutable state.
func (d *Daemon) applyFrame(rs *runState, conn net.Conn, typ byte, payload []byte) error {
	switch typ {
	case framePacket:
		d.framePackets.Add(1)
		rs.packets.Add(1)
		at, pkt, err := decodePacketFrame(payload)
		if err != nil {
			return err
		}
		// Ingest in arrival order — exactly the producer's flush order —
		// so the final classification walks the same records in the same
		// sequence the producer's own database holds.
		if err := rs.central.Ingest(pkt); err != nil {
			return err
		}
		rs.proc.OfferPacket(des.Time(at), pkt)
		rs.publish(false)
	case frameSnapshot:
		d.frameSnaps.Add(1)
		s := &telemetry.Snapshot{}
		if err := unmarshalStrictless(payload, s); err != nil {
			return err
		}
		rs.lastSnap.Store(s)
	case frameMetrics:
		d.frameMetrics.Add(1)
		om := append([]byte(nil), payload...)
		rs.metricsOM.Store(&om)
	case frameFinal:
		d.frameFinals.Add(1)
		end, err := decodeFinalFrame(payload)
		if err != nil {
			return err
		}
		if err := d.finalizeRun(rs, end); err != nil {
			return err
		}
		return writeFrame(conn, frameFinalAck, nil)
	default:
		return fmt.Errorf("%w: unknown frame type %q", ErrBadFrame, typ)
	}
	return nil
}

// publishMinWall throttles mid-run payload publication; finals always
// publish.
const publishMinWall = 100 * time.Millisecond

// publish renders and publishes the run's live payloads. Runs on the
// connection goroutine.
func (rs *runState) publish(force bool) {
	now := time.Now()
	if !force && now.Sub(rs.lastPublish) < publishMinWall {
		return
	}
	rs.lastPublish = now
	mp := rs.proc.Modalities()
	dp := rs.proc.Drift()
	mj := stream.MarshalPayload(mp)
	dj := stream.MarshalPayload(dp)
	rs.modalities.Store(&mj)
	rs.drift.Store(&dj)
	rs.modPayload.Store(mp)
	rs.dftPayload.Store(dp)
	snap := rs.proc.Snap()
	rs.streamSnap.Store(&snap)
	var buf bytes.Buffer
	if err := rs.reg.WriteOpenMetrics(&buf); err == nil {
		om := buf.Bytes()
		rs.streamOM.Store(&om)
	}
}

// finalizeRun closes a run: the stream clock advances to the announced
// end (expiring trailing windows exactly where the producer's run ended),
// the final payloads are published, and the byte-exact usage-by-modality
// report is built by classifying the arrival-order accounting database
// with the unchanged batch classifier — the same code path, over the same
// records in the same order, as the producer's own report.
func (d *Daemon) finalizeRun(rs *runState, end float64) error {
	if end <= 0 {
		end = rs.EndTimeS
	}
	if end > 0 {
		rs.proc.Advance(des.Time(end))
	}
	cl := core.NewClassifier(core.Config{LargestCores: rs.Largest})
	rep := core.BuildReport(rs.central, cl.Classify(rs.central))
	var buf bytes.Buffer
	if err := core.ModalityTable(rep).WriteText(&buf); err != nil {
		return err
	}
	report := buf.Bytes()
	rs.report.Store(&report)
	rs.publish(true)
	rs.finalized.Store(true)
	d.logf("tgobsd: run %s finalized (%d jobs, %d packets)",
		rs.ID, len(rs.central.Jobs()), rs.packets.Load())
	if d.cfg.FinalDir != "" {
		if err := os.MkdirAll(d.cfg.FinalDir, 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(d.cfg.FinalDir, rs.ID+".modality.txt"), report, 0o644); err != nil {
			return err
		}
		if mj := rs.modalities.Load(); mj != nil {
			if err := os.WriteFile(filepath.Join(d.cfg.FinalDir, rs.ID+".modalities.json"), *mj, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// runList returns the run states sorted by ID — the deterministic order
// every federated view and listing uses.
func (d *Daemon) runList() []*runState {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*runState, 0, len(d.runs))
	for _, rs := range d.runs {
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run returns the state for one run ID (nil when unknown).
func (d *Daemon) run(id string) *runState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.runs[id]
}

// RunReport returns a finalized run's usage-by-modality table text
// (nil until the run's final frame has been processed).
func (d *Daemon) RunReport(id string) []byte {
	rs := d.run(id)
	if rs == nil {
		return nil
	}
	if p := rs.report.Load(); p != nil {
		return *p
	}
	return nil
}

// RunCentralExport writes a run's arrival-order accounting database in
// the JSON-lines export format (what tgsim -export writes as acct.jsonl),
// so daemon-side records can be diffed against producer exports.
func (d *Daemon) RunCentralExport(id string, w io.Writer) error {
	rs := d.run(id)
	if rs == nil {
		return fmt.Errorf("observatory: unknown run %q", id)
	}
	if !rs.finalized.Load() {
		return fmt.Errorf("observatory: run %q not finalized", id)
	}
	// Safe: after finalize the owning goroutine no longer mutates the
	// database (any reconnect with the same ID is uniquified away).
	return rs.central.Export(w)
}

// RunIDs returns the known run IDs, sorted.
func (d *Daemon) RunIDs() []string {
	runs := d.runList()
	out := make([]string, len(runs))
	for i, rs := range runs {
		out[i] = rs.ID
	}
	return out
}

// countingReader counts bytes into an atomic as they are read.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func newCountingReader(r io.Reader, n *atomic.Uint64) *countingReader {
	return &countingReader{r: r, n: n}
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}
