package observatory

import (
	"bytes"
	"testing"
	"time"

	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/scenario"
)

// runThroughChaos drives one pushed run through a chaos proxy with the
// given fault schedule and requires lossless completion.
func runThroughChaos(t *testing.T, seed uint64, id string, cc ChaosConfig) (*scenario.Result, *Pusher, *chaosProxy, *Daemon) {
	t.Helper()
	d, addr := startDaemon(t)
	proxy, err := newChaosProxy(addr, cc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)

	cfg := smallConfig(seed)
	end := float64(cfg.Horizon + cfg.DrainTime)
	opts := DefaultPushOptions()
	opts.Retry = testRetry()
	p, err := DialPush(proxy.Addr(), Hello{
		Run: id, Seed: seed, LargestCores: largestCores(t), EndTimeS: end, Source: "test",
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observers = append(cfg.Observers, p.Observer(nil))
	res, err := scenario.Run(cfg)
	if err != nil {
		p.Abort()
		t.Fatal(err)
	}
	if err := p.Finish(end); err != nil {
		t.Fatalf("finish under chaos: %v", err)
	}
	if st := p.Stats(); st.PacketsLost != 0 {
		t.Fatalf("lost %d packets under chaos, want 0 (%+v)", st.PacketsLost, st)
	}
	return res, p, proxy, d
}

// assertDaemonMatchesProducer re-runs the byte-match contract from the
// fault-free path: the daemon's report and accounting export must equal
// the producer's local computation exactly.
func assertDaemonMatchesProducer(t *testing.T, d *Daemon, p *Pusher, res *scenario.Result) {
	t.Helper()
	cl := core.NewClassifier(core.Config{LargestCores: largestCores(t)})
	rep := core.BuildReport(res.Central, cl.Classify(res.Central))
	var want bytes.Buffer
	if err := core.ModalityTable(rep).WriteText(&want); err != nil {
		t.Fatal(err)
	}
	got := d.RunReport(p.RunID())
	if got == nil {
		t.Fatalf("daemon has no final report for %q", p.RunID())
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("daemon report differs from producer's under chaos:\n--- daemon ---\n%s\n--- producer ---\n%s", got, want.Bytes())
	}
	var dExport, pExport bytes.Buffer
	if err := d.RunCentralExport(p.RunID(), &dExport); err != nil {
		t.Fatal(err)
	}
	if err := res.Central.Export(&pExport); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dExport.Bytes(), pExport.Bytes()) {
		t.Fatal("daemon accounting export differs from the producer's under chaos")
	}
}

// TestChaosDropHeavy: repeated mid-frame disconnects force multiple
// reconnect+replay cycles; the run still lands byte-exact, and the pushed
// run itself stays byte-identical to a plain same-seed run.
func TestChaosDropHeavy(t *testing.T) {
	res, p, proxy, d := runThroughChaos(t, 31, "chaos-drop", ChaosConfig{
		Seed:         1001,
		CutAfterMean: 8 * 1024,
		MaxCuts:      6,
	})
	if proxy.Cuts() == 0 {
		t.Fatal("chaos proxy injected no cuts — the schedule exercised nothing")
	}
	if p.Stats().Reconnects == 0 {
		t.Fatalf("no reconnects despite %d cuts (%+v)", proxy.Cuts(), p.Stats())
	}
	assertDaemonMatchesProducer(t, d, p, res)

	plain, err := scenario.Run(smallConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := res.Central.Export(&a); err != nil {
		t.Fatal(err)
	}
	if err := plain.Central.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chaos-pushed run's accounting export differs from the plain same-seed run")
	}
}

// TestChaosStallPartialWrite: heavy re-segmentation plus injected stalls
// tears every frame across many small writes; framing must reassemble it
// all without loss.
func TestChaosStallPartialWrite(t *testing.T) {
	res, p, _, d := runThroughChaos(t, 32, "chaos-stall", ChaosConfig{
		Seed:        1002,
		SegmentMean: 7,
		StallProb:   0.002,
		Stall:       time.Millisecond,
	})
	assertDaemonMatchesProducer(t, d, p, res)
}

// TestChaosTornMixed: cuts, partial writes, and stalls together — the
// closest schedule to a genuinely bad network.
func TestChaosTornMixed(t *testing.T) {
	res, p, proxy, d := runThroughChaos(t, 33, "chaos-mixed", ChaosConfig{
		Seed:         1003,
		CutAfterMean: 16 * 1024,
		MaxCuts:      4,
		SegmentMean:  64,
		StallProb:    0.001,
		Stall:        time.Millisecond,
	})
	if proxy.Cuts() == 0 {
		t.Fatal("mixed schedule injected no cuts")
	}
	assertDaemonMatchesProducer(t, d, p, res)
}
