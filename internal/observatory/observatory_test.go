package observatory

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/stream"
	"github.com/tgsim/tgmod/internal/users"
	"github.com/tgsim/tgmod/internal/workload"
)

// smallConfig is a fast mixed-modality scenario, the same shape the
// stream package's tests use.
func smallConfig(seed uint64) scenario.Config {
	return scenario.New(seed,
		scenario.WithHorizon(4*des.Day),
		scenario.WithDrain(des.Day),
		scenario.WithUsers(users.Config{Projects: 30, UsersPerProjMu: 0.7, UsersPerProjSd: 0.6, ActivityAlpha: 1.5}),
		scenario.WithGenerators(
			&workload.BatchGen{JobsPerDay: 100, CapabilityFrac: 0.02, MedianRuntime: 3600},
			&workload.EnsembleGen{CampaignsPerDay: 4, JobsPerCampaign: 10, TagCoverage: 0.5, MedianRuntime: 900},
			&workload.WorkflowGen{CampaignsPerDay: 3, TaggedFrac: 0.5, Workers: 4, MedianTask: 600},
			&workload.GatewayGen{Gateway: "nanohub", RequestsPerDay: 60, EndUsers: 200, MedianRuntime: 300},
			&workload.UrgentGen{EventsPerWeek: 3, MedianRuntime: 1800},
			&workload.InteractiveGen{SessionsPerDay: 10, MedianSession: 1200},
			&workload.DataCentricGen{JobsPerDay: 6, MedianInputGB: 20, MedianRuntime: 1800},
			&workload.MetaschedGen{JobsPerDay: 10, CoAllocFrac: 0.05, MedianRuntime: 1800},
		),
	)
}

func largestCores(t *testing.T) int {
	t.Helper()
	fed, err := scenario.TG9()
	if err != nil {
		t.Fatal(err)
	}
	largest := 0
	for _, m := range fed.Machines() {
		if m.BatchCores() > largest {
			largest = m.BatchCores()
		}
	}
	return largest
}

// startDaemon spins an in-process daemon listening on loopback.
func startDaemon(t *testing.T) (*Daemon, string) {
	t.Helper()
	d := NewDaemon(Config{})
	addr, err := d.ListenIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, addr
}

// pushRun runs one small scenario pushed to addr and returns the local
// result plus the pusher (already finished).
func pushRun(t *testing.T, addr string, seed uint64, id string) (*scenario.Result, *Pusher, scenario.Config) {
	t.Helper()
	cfg := smallConfig(seed)
	end := float64(cfg.Horizon + cfg.DrainTime)
	p, err := Dial(addr, Hello{
		Run: id, Seed: seed, LargestCores: largestCores(t),
		EndTimeS: end, Source: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observers = append(cfg.Observers, p.Observer(nil))
	res, err := scenario.Run(cfg)
	if err != nil {
		p.Abort()
		t.Fatal(err)
	}
	if err := p.Finish(end); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if p.Lossy() {
		t.Fatalf("push lossy: %+v", p.Stats())
	}
	return res, p, cfg
}

// TestPushDoesNotPerturbRun: the determinism contract — a pushed run's
// accounting database is byte-identical to the same seed without push.
func TestPushDoesNotPerturbRun(t *testing.T) {
	_, addr := startDaemon(t)
	pushed, _, _ := pushRun(t, addr, 7, "det")
	plain, err := scenario.Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := pushed.Central.Export(&a); err != nil {
		t.Fatal(err)
	}
	if err := plain.Central.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("pushed run's accounting export differs from the plain same-seed run")
	}
}

// TestDaemonReportByteMatch: the daemon's per-run final report and
// accounting export byte-match what the producer computes locally.
func TestDaemonReportByteMatch(t *testing.T) {
	d, addr := startDaemon(t)
	res, p, _ := pushRun(t, addr, 11, "bytematch")

	// The producer's own report path.
	cl := core.NewClassifier(core.Config{LargestCores: largestCores(t)})
	rep := core.BuildReport(res.Central, cl.Classify(res.Central))
	var want bytes.Buffer
	if err := core.ModalityTable(rep).WriteText(&want); err != nil {
		t.Fatal(err)
	}

	got := d.RunReport(p.RunID())
	if got == nil {
		t.Fatal("daemon has no final report after Finish")
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("daemon report differs from producer's:\n--- daemon ---\n%s\n--- producer ---\n%s", got, want.Bytes())
	}

	var dExport, pExport bytes.Buffer
	if err := d.RunCentralExport(p.RunID(), &dExport); err != nil {
		t.Fatal(err)
	}
	if err := res.Central.Export(&pExport); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dExport.Bytes(), pExport.Bytes()) {
		t.Fatal("daemon-side accounting export differs from the producer's")
	}
}

// TestConcurrentRunsAndFederation: two concurrent pushed runs; the daemon
// serves both drill-downs, and the fleet /modalities document equals the
// deterministic merge of the per-run payloads.
func TestConcurrentRunsAndFederation(t *testing.T) {
	d, addr := startDaemon(t)
	var wg sync.WaitGroup
	seeds := []uint64{21, 22}
	ids := []string{"fed-a", "fed-b"}
	for i := range seeds {
		wg.Add(1)
		go func(seed uint64, id string) {
			defer wg.Done()
			cfg := smallConfig(seed)
			end := float64(cfg.Horizon + cfg.DrainTime)
			p, err := Dial(addr, Hello{Run: id, Seed: seed, LargestCores: 4096, EndTimeS: end})
			if err != nil {
				t.Error(err)
				return
			}
			cfg.Observers = append(cfg.Observers, p.Observer(nil))
			if _, err := scenario.Run(cfg); err != nil {
				p.Abort()
				t.Error(err)
				return
			}
			if err := p.Finish(end); err != nil {
				t.Error(err)
			}
		}(seeds[i], ids[i])
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if got := d.RunIDs(); len(got) != 2 || got[0] != "fed-a" || got[1] != "fed-b" {
		t.Fatalf("RunIDs = %v, want [fed-a fed-b]", got)
	}

	// Drill-down endpoints serve per-run payloads.
	for _, id := range ids {
		for _, sub := range []string{"status", "modalities", "drift", "stream", "report"} {
			rec := httptest.NewRecorder()
			d.ServeHTTP(rec, httptest.NewRequest("GET", "/runs/"+id+"/"+sub, nil))
			if rec.Code != http.StatusOK {
				t.Errorf("GET /runs/%s/%s = %d", id, sub, rec.Code)
			}
		}
	}

	// /runs lists both, finalized.
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest("GET", "/runs", nil))
	var infos []RunInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatalf("parse /runs: %v", err)
	}
	if len(infos) != 2 || !infos[0].Finalized || !infos[1].Finalized {
		t.Fatalf("/runs = %+v", infos)
	}

	// Fleet /modalities equals the deterministic merge of the per-run
	// payloads (served bytes vs a re-merge of the drill-down documents).
	perRun := make([]*stream.ModalitiesPayload, len(ids))
	for i, id := range ids {
		rec := httptest.NewRecorder()
		d.ServeHTTP(rec, httptest.NewRequest("GET", "/runs/"+id+"/modalities", nil))
		p, err := ParseModalities(rec.Body.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		perRun[i] = p
	}
	want := stream.MarshalPayload(MergeModalities(ids, perRun))
	rec = httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest("GET", "/modalities", nil))
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatal("fleet /modalities differs from the deterministic merge of per-run payloads")
	}

	// Sums federate: fleet lifetime jobs = sum of per-run lifetime jobs.
	var fleet FleetModalities
	if err := json.Unmarshal(rec.Body.Bytes(), &fleet); err != nil {
		t.Fatal(err)
	}
	var wantJobs int64
	for _, p := range perRun {
		wantJobs += p.Lifetime.TotalJobs
	}
	if fleet.Lifetime.TotalJobs != wantJobs {
		t.Fatalf("fleet lifetime jobs = %d, want %d", fleet.Lifetime.TotalJobs, wantJobs)
	}

	// The daemon's own /metrics exposes the tg_obsd_* families.
	rec = httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	om := rec.Body.String()
	for _, want := range []string{
		"tg_obsd_connections_total 2",
		"tg_obsd_frames_total{kind=\"packet\"}",
		"tg_obsd_runs{state=\"finalized\"} 2",
		"tg_obsd_ingest_lag_seconds{run=\"fed-a\"}",
		"tg_obsd_backlog{run=\"fed-b\"}",
		"tg_obsd_dropped_total{run=\"fed-a\"} 0",
	} {
		if !strings.Contains(om, want) {
			t.Errorf("/metrics missing %q:\n%s", want, om)
		}
	}
}

// TestRunIDUniquified: a second live connection requesting a taken ID
// gets a #2-suffixed identity instead of corrupting the first run.
func TestRunIDUniquified(t *testing.T) {
	_, addr := startDaemon(t)
	a, err := Dial(addr, Hello{Run: "dup", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Abort()
	b, err := Dial(addr, Hello{Run: "dup", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Abort()
	if a.RunID() != "dup" {
		t.Fatalf("first run got %q, want dup", a.RunID())
	}
	if b.RunID() != "dup#2" {
		t.Fatalf("second run got %q, want dup#2", b.RunID())
	}
}

// TestMergeModalitiesDeterministic: merging the same payload set twice
// yields byte-identical documents, and the fold sums correctly.
func TestMergeModalitiesDeterministic(t *testing.T) {
	mk := func(jobs int64, nus, conf float64) *stream.ModalitiesPayload {
		return &stream.ModalitiesPayload{
			At:       100,
			Ingested: uint64(jobs),
			Windows: []stream.ModalityWindow{{
				Window: "24h", TotalJobs: jobs, TotalNUs: nus,
				Rows: []stream.ModalityRow{{Modality: "batch", Jobs: jobs, NUs: nus, Confidence: conf}},
			}},
			Lifetime: stream.ModalityWindow{
				Window: "lifetime", TotalJobs: jobs, TotalNUs: nus,
				Rows: []stream.ModalityRow{{Modality: "batch", Jobs: jobs, NUs: nus, Confidence: conf}},
			},
		}
	}
	ids := []string{"a", "b"}
	ps := []*stream.ModalitiesPayload{mk(10, 100, 0.8), mk(30, 50, 0.6)}
	m1 := stream.MarshalPayload(MergeModalities(ids, ps))
	m2 := stream.MarshalPayload(MergeModalities(ids, ps))
	if !bytes.Equal(m1, m2) {
		t.Fatal("merge is not deterministic")
	}
	merged := MergeModalities(ids, ps)
	if merged.Lifetime.TotalJobs != 40 || merged.Lifetime.TotalNUs != 150 {
		t.Fatalf("lifetime totals = %d jobs / %v NUs, want 40 / 150", merged.Lifetime.TotalJobs, merged.Lifetime.TotalNUs)
	}
	// Confidence is jobs-weighted: (0.8*10 + 0.6*30) / 40 = 0.65.
	got := merged.Lifetime.Rows[0].Confidence
	if fmt.Sprintf("%.4f", got) != "0.6500" {
		t.Fatalf("weighted confidence = %v, want 0.65", got)
	}
	if merged.Ingested != 40 {
		t.Fatalf("ingested = %d, want 40", merged.Ingested)
	}
}

// TestMergeDrift: events and disagreements sum; rate recomputes; peak is
// the max.
func TestMergeDrift(t *testing.T) {
	mk := func(events, disagree int64, peak float64) *stream.DriftPayload {
		return &stream.DriftPayload{
			At: 50, Events: events, Disagree: disagree,
			Rate:    float64(disagree) / float64(events),
			Windows: []stream.DriftWindow{{Window: "24h", Events: events, Disagree: disagree, Peak: peak}},
		}
	}
	m := MergeDrift([]string{"a", "b"}, []*stream.DriftPayload{mk(100, 10, 0.2), mk(300, 6, 0.5)})
	if m.Events != 400 || m.Disagree != 16 {
		t.Fatalf("merged events/disagree = %d/%d, want 400/16", m.Events, m.Disagree)
	}
	if m.Rate != 0.04 {
		t.Fatalf("merged rate = %v, want 0.04", m.Rate)
	}
	if len(m.Windows) != 1 || m.Windows[0].Peak != 0.5 {
		t.Fatalf("merged windows = %+v", m.Windows)
	}
}
