package observatory

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file holds the two durability layers of the fault-tolerant push
// path.
//
// Producer side: a bounded in-memory replay window backed by a disk
// spill journal. Every record frame (packet, final) is retained until
// the run finishes, because a reconnect may have to replay from any
// point the daemon has not applied — the daemon's resume offset is only
// learned at reconnect time. Recent frames replay from memory; anything
// older than the window is re-read from the spill file.
//
// Daemon side: a per-run write-ahead log. Every record frame is appended
// (fsync batched) *before* it is applied to the run's processor and
// accounting database, so a daemon crash loses at most the unflushed
// tail — and whatever the tail loses, the producer still holds and
// replays, because the recovered resume offset tells it exactly where
// the daemon's durable state ends.

// journalFrame is one retained record frame: the wire type plus the
// sealed payload (sequence number already prepended).
type journalFrame struct {
	typ    byte
	seq    uint64
	sealed []byte
}

// replayWindow keeps the most recent record frames in memory, bounded at
// cap frames; older entries are evicted (the spill journal still has
// them).
type replayWindow struct {
	frames []journalFrame
	limit  int
}

func newReplayWindow(limit int) *replayWindow {
	if limit < 1 {
		limit = 1
	}
	return &replayWindow{limit: limit}
}

func (w *replayWindow) add(f journalFrame) {
	if len(w.frames) >= w.limit {
		// Shift rather than ring-index: the window is small and replay
		// wants the frames in slice order anyway.
		copy(w.frames, w.frames[1:])
		w.frames = w.frames[:len(w.frames)-1]
	}
	w.frames = append(w.frames, f)
}

// covers reports whether every frame with sequence > haveSeq is still in
// memory.
func (w *replayWindow) covers(haveSeq uint64) bool {
	if len(w.frames) == 0 {
		return true
	}
	return w.frames[0].seq <= haveSeq+1
}

// from returns the retained frames with sequence > haveSeq, in order.
func (w *replayWindow) from(haveSeq uint64) []journalFrame {
	for i, f := range w.frames {
		if f.seq > haveSeq {
			return w.frames[i:]
		}
	}
	return nil
}

// spillJournal is the producer's on-disk copy of every record frame of
// the current push session. It is owned by the writer goroutine: appends
// and replays never race. Durability is not the point (a producer crash
// ends the run anyway) — the journal exists so the bounded window can
// evict without losing the ability to replay arbitrarily far back.
type spillJournal struct {
	path    string
	own     bool // created by us (temp file) → removed on close
	f       *os.File
	w       *bufio.Writer
	nBytes  uint64
	nFrames uint64
}

// newSpillJournal opens the spill journal at path, or a private temp
// file when path is empty.
func newSpillJournal(path string) (*spillJournal, error) {
	var f *os.File
	var err error
	own := false
	if path == "" {
		f, err = os.CreateTemp("", "tgpush-*.spill")
		own = true
	} else {
		f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	}
	if err != nil {
		return nil, fmt.Errorf("observatory: spill journal: %w", err)
	}
	return &spillJournal{path: f.Name(), own: own, f: f, w: bufio.NewWriter(f)}, nil
}

func (j *spillJournal) append(f journalFrame) error {
	if err := writeFrame(j.w, f.typ, f.sealed); err != nil {
		return err
	}
	j.nBytes += uint64(5 + len(f.sealed))
	j.nFrames++
	return nil
}

// replay streams every journaled frame with sequence > haveSeq to emit,
// in append order.
func (j *spillJournal) replay(haveSeq uint64, emit func(journalFrame) error) error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	r, err := os.Open(j.path)
	if err != nil {
		return err
	}
	defer r.Close()
	br := bufio.NewReader(r)
	for {
		typ, payload, err := readFrame(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		seq, _, err := splitSeq(payload)
		if err != nil {
			return err
		}
		if seq <= haveSeq {
			continue
		}
		if err := emit(journalFrame{typ: typ, seq: seq, sealed: payload}); err != nil {
			return err
		}
	}
}

// close flushes and removes the journal (the session is over; nothing
// left to replay).
func (j *spillJournal) close() {
	if j == nil {
		return
	}
	j.w.Flush()
	j.f.Close()
	if j.own || j.path != "" {
		os.Remove(j.path)
	}
}

// walMagic brands a daemon write-ahead log file.
const walMagic = "TGOWAL1\n"

// walSyncEvery batches fsyncs: the WAL file is synced after this many
// appended frames (and always at finalize and handler exit). A crash
// loses at most walSyncEvery frames of tail — which the producer's
// journal replays on reconnect.
const walSyncEvery = 256

// walMeta is the run identity persisted in the WAL header frame, enough
// to rebuild the runState on recovery.
type walMeta struct {
	ID           string  `json:"id"`
	Seed         uint64  `json:"seed"`
	LargestCores int     `json:"largest_cores"`
	EndTimeS     float64 `json:"end_time_s"`
	Source       string  `json:"source,omitempty"`
}

// runWAL is one run's write-ahead log: the magic, a hello frame holding
// the run meta, then every record frame exactly as it arrived on the
// wire (sequence numbers included). Owned by the run's connection
// goroutine under the same single-writer discipline as the processor.
type runWAL struct {
	path     string
	f        *os.File
	w        *bufio.Writer
	unsynced int
}

// walPath returns the WAL file for a run ID. IDs are pre-validated
// ([A-Za-z0-9._-] plus daemon-introduced '#'), so the name is safe.
func walPath(dir, id string) string {
	return filepath.Join(dir, id+".wal")
}

// openRunWAL opens (appending) or creates the WAL for a run.
func openRunWAL(dir string, meta walMeta) (*runWAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := walPath(dir, meta.ID)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	wal := &runWAL{path: path, f: f, w: bufio.NewWriter(f)}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := wal.w.WriteString(walMagic); err != nil {
			f.Close()
			return nil, err
		}
		if err := writeFrame(wal.w, frameHello, marshalJSON(&meta)); err != nil {
			f.Close()
			return nil, err
		}
		if err := wal.sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return wal, nil
}

// append logs one record frame ahead of processing, syncing on the batch
// cadence.
func (w *runWAL) append(typ byte, payload []byte) error {
	if err := writeFrame(w.w, typ, payload); err != nil {
		return err
	}
	w.unsynced++
	if w.unsynced >= walSyncEvery {
		return w.sync()
	}
	return nil
}

// sync flushes the buffer and fsyncs the file.
func (w *runWAL) sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	w.unsynced = 0
	return w.f.Sync()
}

// close syncs (unless crashing is being simulated) and closes the file.
func (w *runWAL) close(sync bool) {
	if w == nil {
		return
	}
	if sync {
		w.sync()
	}
	w.f.Close()
}

// walRecord is one recovered frame.
type walRecord struct {
	typ     byte
	payload []byte
}

// readWAL parses one WAL file, tolerating a torn tail: a crash can cut
// the file mid-frame, so parsing stops at the first malformed frame and
// reports how many bytes were good. Everything before the tear is valid
// by construction (frames are appended whole before processing).
func readWAL(path string) (meta walMeta, recs []walRecord, goodLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return meta, nil, 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != walMagic {
		return meta, nil, 0, fmt.Errorf("%w: not a WAL file: %s", ErrBadFrame, path)
	}
	typ, payload, err := readFrame(br)
	if err != nil || typ != frameHello {
		return meta, nil, 0, fmt.Errorf("%w: WAL %s missing meta header", ErrBadFrame, path)
	}
	if err := unmarshalStrictless(payload, &meta); err != nil {
		return meta, nil, 0, err
	}
	goodLen = int64(len(walMagic) + 5 + len(payload))
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			// io.EOF is a clean end; anything else is the torn tail of a
			// crash — recovery keeps what parsed and truncates the rest.
			return meta, recs, goodLen, nil
		}
		recs = append(recs, walRecord{typ: typ, payload: payload})
		goodLen += int64(5 + len(payload))
	}
}

// listWALs returns the WAL files under dir, sorted by name so recovery
// order (and therefore run registration order) is deterministic.
func listWALs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".wal") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}
