package observatory

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tgsim/tgmod/internal/simrand"
)

// ChaosConfig parameterizes a chaosProxy's fault schedule. Every decision
// — where a connection is severed, how reads are re-segmented, when a
// stall is inserted — is drawn from named simrand streams derived from
// Seed and the connection ordinal, and all triggers are byte-count
// driven, so the same seed over the same byte stream injects the same
// faults regardless of wall-clock timing.
type ChaosConfig struct {
	// Seed roots the per-connection decision streams.
	Seed uint64
	// CutAfterMean, when positive, severs each connection after an
	// exponentially distributed number of forwarded bytes (mean, per
	// direction). Cuts land mid-frame as often as between frames, so the
	// survivor sees torn frames, not clean EOFs.
	CutAfterMean float64
	// MaxCuts bounds the total number of injected disconnects across the
	// proxy's lifetime (0 = unlimited). Once spent, connections pass
	// through unharmed — the knob that guarantees a session eventually
	// completes under a drop-heavy schedule.
	MaxCuts int
	// SegmentMean, when positive, re-segments forwarded data into
	// exponentially sized partial writes (mean bytes, minimum 1) instead
	// of forwarding each read whole.
	SegmentMean float64
	// StallProb inserts a Stall-long pause before a forwarded segment
	// with this probability.
	StallProb float64
	// Stall is the pause duration for injected stalls.
	Stall time.Duration
}

// chaosProxy is an in-process TCP proxy that forwards pusher traffic to
// an upstream daemon while injecting a deterministic schedule of
// disconnects, stalls, partial writes, and torn frames. Producers dial
// Addr() instead of the daemon; reconnects arrive as fresh connections
// and draw fresh budgets.
type chaosProxy struct {
	upstream string
	cfg      ChaosConfig

	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	connSeq atomic.Uint64
	cuts    atomic.Uint64
}

// newChaosProxy starts a proxy in front of upstream (any address
// splitPushAddr accepts) listening on an ephemeral TCP port.
func newChaosProxy(upstream string, cfg ChaosConfig) (*chaosProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &chaosProxy{upstream: upstream, cfg: cfg, ln: ln, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address producers should dial.
func (p *chaosProxy) Addr() string { return p.ln.Addr().String() }

// Cuts reports how many connection cuts were injected.
func (p *chaosProxy) Cuts() uint64 { return p.cuts.Load() }

// Close stops the proxy and severs anything still flowing through it.
func (p *chaosProxy) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *chaosProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		idx := p.connSeq.Add(1)
		network, target := splitPushAddr(p.upstream)
		up, err := net.DialTimeout(network, target, DialTimeout)
		if err != nil {
			conn.Close()
			continue
		}
		p.track(conn, true)
		p.track(up, true)
		p.wg.Add(2)
		go p.pump(up, conn, idx, "c2s")
		go p.pump(conn, up, idx, "s2c")
	}
}

func (p *chaosProxy) track(c net.Conn, add bool) {
	p.mu.Lock()
	if add {
		p.conns[c] = struct{}{}
	} else {
		delete(p.conns, c)
	}
	p.mu.Unlock()
}

// pump forwards one direction of one connection, applying the chaos
// schedule. Closing both ends on a cut (or on natural EOF) collapses the
// whole proxied session, exactly like a mid-stream network failure.
func (p *chaosProxy) pump(dst, src net.Conn, idx uint64, dir string) {
	defer p.wg.Done()
	defer func() {
		dst.Close()
		src.Close()
		p.track(dst, false)
		p.track(src, false)
	}()
	rng := simrand.Derive(p.cfg.Seed, fmt.Sprintf("chaos/conn%d/%s", idx, dir))
	budget := -1 // bytes left before the cut; -1 = never
	if p.cfg.CutAfterMean > 0 {
		budget = int(rng.Exp(1/p.cfg.CutAfterMean)) + 1
	}
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			data := buf[:n]
			for len(data) > 0 {
				seg := len(data)
				if p.cfg.SegmentMean > 0 {
					if s := int(rng.Exp(1 / p.cfg.SegmentMean)); s < seg {
						seg = max(s, 1)
					}
				}
				cut := false
				if budget >= 0 && seg >= budget {
					// The cut lands inside this segment: forward the
					// prefix (tearing whatever frame is in flight), then
					// sever — unless the proxy-wide cut allowance is
					// already spent.
					if p.cfg.MaxCuts <= 0 || p.cuts.Load() < uint64(p.cfg.MaxCuts) {
						seg = max(budget, 1)
						cut = true
					} else {
						budget = -1
					}
				}
				if p.cfg.StallProb > 0 && p.cfg.Stall > 0 && rng.Bool(p.cfg.StallProb) {
					time.Sleep(p.cfg.Stall)
				}
				if _, err := dst.Write(data[:seg]); err != nil {
					return
				}
				if cut {
					p.cuts.Add(1)
					return
				}
				if budget > 0 {
					budget -= seg
				}
				data = data[seg:]
			}
		}
		if err != nil {
			return
		}
	}
}
