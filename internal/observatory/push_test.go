package observatory

import (
	"errors"
	"net"
	"os"
	"strings"
	"testing"
	"time"
)

// TestFinishAbortIdempotence: Finish and Abort are safe in either order
// and on repeat — the error paths that call them cannot know what already
// ran.
func TestFinishAbortIdempotence(t *testing.T) {
	_, addr := startDaemon(t)

	// Finish, then Abort twice: the pusher is already torn down.
	p, err := Dial(addr, Hello{Run: "idem-a", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Finish(100); err != nil {
		t.Fatalf("finish: %v", err)
	}
	p.Abort()
	p.Abort()

	// Abort, then Finish: Finish must not re-drive the session, only
	// report its (absent) error.
	q, err := Dial(addr, Hello{Run: "idem-b", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q.Abort()
	if err := q.Finish(100); err != nil {
		t.Fatalf("finish after abort: %v", err)
	}
	q.Abort()
}

// TestHelloRejectsBadRunID: a malformed run identity is refused with the
// typed hello error (no retries, no uniquified garbage).
func TestHelloRejectsBadRunID(t *testing.T) {
	d, addr := startDaemon(t)
	start := time.Now()
	_, err := Dial(addr, Hello{Run: "../etc/evil", Seed: 1})
	if !errors.Is(err, ErrBadHello) {
		t.Fatalf("bad run ID: want ErrBadHello, got %v", err)
	}
	if !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("rejection reason missing from %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("rejection was retried (%v elapsed); hello errors must be permanent", elapsed)
	}
	if ids := d.RunIDs(); len(ids) != 0 {
		t.Fatalf("rejected hello registered a run: %v", ids)
	}
}

// TestHelloRejectsOversize: a hello frame above the dedicated cap is
// answered with an error frame before the daemon allocates for it.
func TestHelloRejectsOversize(t *testing.T) {
	d, addr := startDaemon(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(wireMagicStr)); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, frameHello, make([]byte, maxHelloPayload+1)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := readFrame(conn)
	if err != nil {
		t.Fatalf("want error frame, got read failure: %v", err)
	}
	if typ != frameError {
		t.Fatalf("want frame %q, got %q (%q)", frameError, typ, payload)
	}
	if ids := d.RunIDs(); len(ids) != 0 {
		t.Fatalf("oversized hello registered a run: %v", ids)
	}
}

// TestResumeSeedMismatchRejected: resuming an existing run with the wrong
// seed is refused — replaying one run's frames into another would corrupt
// both.
func TestResumeSeedMismatchRejected(t *testing.T) {
	_, addr := startDaemon(t)
	p, err := Dial(addr, Hello{Run: "owner", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Abort()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(wireMagicStr)); err != nil {
		t.Fatal(err)
	}
	h := Hello{Schema: helloSchema, Run: "owner", Seed: 8, Resume: true}
	if err := writeFrame(conn, frameHello, marshalJSON(&h)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := readFrame(conn)
	if err != nil {
		t.Fatalf("want error frame, got read failure: %v", err)
	}
	if typ != frameError || !strings.Contains(string(payload), "seed mismatch") {
		t.Fatalf("want seed-mismatch error frame, got %q (%q)", typ, payload)
	}
}

// TestReplayWindow: eviction keeps the newest frames and coverage
// reports exactly when replay can stay in memory.
func TestReplayWindow(t *testing.T) {
	w := newReplayWindow(3)
	if !w.covers(0) {
		t.Fatal("empty window must cover everything")
	}
	for seq := uint64(1); seq <= 5; seq++ {
		w.add(journalFrame{typ: framePacket, seq: seq, sealed: sealSeq(seq, nil)})
	}
	if w.covers(1) {
		t.Fatal("window holding 3..5 claims to cover a resume at 1")
	}
	if !w.covers(2) {
		t.Fatal("window holding 3..5 must cover a resume at 2")
	}
	got := w.from(3)
	if len(got) != 2 || got[0].seq != 4 || got[1].seq != 5 {
		t.Fatalf("from(3) = %v, want seqs [4 5]", got)
	}
}

// TestSpillJournalReplay: the journal replays exactly the frames above
// the resume offset, in order, and removes its file on close.
func TestSpillJournalReplay(t *testing.T) {
	j, err := newSpillJournal("")
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 6; seq++ {
		if err := j.append(journalFrame{typ: framePacket, seq: seq, sealed: sealSeq(seq, []byte{byte(seq)})}); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	if err := j.replay(4, func(f journalFrame) error {
		got = append(got, f.seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("replay(4) visited %v, want [5 6]", got)
	}
	path := j.path
	j.close()
	if _, err := os.Stat(path); err == nil {
		t.Fatalf("spill journal %s still exists after close", path)
	}
}
