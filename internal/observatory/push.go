package observatory

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// Pusher streams a run's telemetry to an observatory daemon. It mounts on
// the same zero-perturbation seams the in-process observatory uses — the
// accounting packet tap and the snapshot sink — so attaching it never
// schedules a kernel event and same-seed runs stay byte-identical with or
// without -push.
//
// Flow control: frames pass through a bounded outbox drained by a writer
// goroutine. Packet frames are never dropped — when the outbox is full
// the simulation goroutine blocks until the writer catches up (wall-clock
// backpressure only; virtual time is untouched), which is what lets the
// daemon's rebuilt accounting database byte-match the producer's.
// Snapshot and metrics frames are progress conflation: when the outbox is
// full they are dropped and counted, never blocking the run.
//
// A wire error marks the pusher broken: subsequent packet frames are
// counted as lost (PacketsLost) instead of blocking forever, and Finish
// reports the error. tgsim -strict-obs turns a broken push into a
// non-zero exit, because the daemon-side record is then incomplete.
type Pusher struct {
	conn net.Conn
	run  string // daemon-assigned run ID

	out    chan outFrame
	wg     sync.WaitGroup
	errVal atomic.Pointer[pushErr]

	packets      atomic.Uint64
	packetsLost  atomic.Uint64
	snaps        atomic.Uint64
	snapsDropped atomic.Uint64
	metrics      atomic.Uint64
	bytes        atomic.Uint64
	finished     bool
}

type outFrame struct {
	typ     byte
	payload []byte
}

// pushErr boxes the first wire error (atomic.Pointer needs a concrete type).
type pushErr struct{ err error }

// PushStats summarizes what a pusher shipped (and lost).
type PushStats struct {
	Packets      uint64 // packet frames delivered to the writer
	PacketsLost  uint64 // packet frames discarded after a wire error
	Snapshots    uint64 // snapshot frames enqueued
	SnapsDropped uint64 // snapshot/metrics frames conflated away (outbox full)
	Metrics      uint64 // metrics frames enqueued
	Bytes        uint64 // payload bytes written to the wire
}

// pushOutbox is the outbox depth. Packet frames block (never drop) when
// it fills, so it only bounds memory, not fidelity.
const pushOutbox = 256

// handshakeTimeout bounds the hello and final acks so a wedged daemon
// cannot hang a producer forever.
const handshakeTimeout = 30 * time.Second

// DialTimeout is the connect timeout for Dial.
const DialTimeout = 10 * time.Second

// splitPushAddr resolves an observatory address: "unix:PATH" or a path
// containing a slash dials a Unix socket, anything else TCP.
func splitPushAddr(addr string) (network, target string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	if strings.Contains(addr, "/") {
		return "unix", addr
	}
	return "tcp", addr
}

// Dial connects to an observatory daemon, performs the hello handshake,
// and returns a pusher ready to attach to a run. The returned pusher's
// RunID is the daemon-assigned (possibly uniquified) identity.
func Dial(addr string, h Hello) (*Pusher, error) {
	network, target := splitPushAddr(addr)
	conn, err := net.DialTimeout(network, target, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("observatory: dial %s: %w", addr, err)
	}
	h.Schema = helloSchema
	deadline := time.Now().Add(handshakeTimeout)
	conn.SetDeadline(deadline)
	if _, err := conn.Write([]byte(wireMagicStr)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("observatory: handshake: %w", err)
	}
	if err := writeFrame(conn, frameHello, marshalJSON(&h)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("observatory: handshake: %w", err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("observatory: hello ack: %w", err)
	}
	if typ != frameHelloAck {
		conn.Close()
		return nil, fmt.Errorf("%w: want hello ack, got frame %q", ErrBadFrame, typ)
	}
	var ack helloAck
	if err := unmarshalStrictless(payload, &ack); err != nil {
		conn.Close()
		return nil, fmt.Errorf("observatory: hello ack: %w", err)
	}
	conn.SetDeadline(time.Time{})

	p := &Pusher{conn: conn, run: ack.Run, out: make(chan outFrame, pushOutbox)}
	p.wg.Add(1)
	go p.writer()
	return p, nil
}

// RunID returns the daemon-assigned run identity.
func (p *Pusher) RunID() string { return p.run }

// Err returns the first wire error, if any.
func (p *Pusher) Err() error {
	if e := p.errVal.Load(); e != nil {
		return e.err
	}
	return nil
}

// Stats returns delivery counters.
func (p *Pusher) Stats() PushStats {
	return PushStats{
		Packets:      p.packets.Load(),
		PacketsLost:  p.packetsLost.Load(),
		Snapshots:    p.snaps.Load(),
		SnapsDropped: p.snapsDropped.Load(),
		Metrics:      p.metrics.Load(),
		Bytes:        p.bytes.Load(),
	}
}

// Lossy reports whether the daemon-side view of this run is incomplete:
// the wire broke, or packet frames were discarded.
func (p *Pusher) Lossy() bool {
	return p.Err() != nil || p.packetsLost.Load() > 0
}

// writer drains the outbox onto the wire. After the first error it keeps
// draining (so blocking senders never deadlock) but discards frames.
func (p *Pusher) writer() {
	defer p.wg.Done()
	for f := range p.out {
		if p.Err() != nil {
			if f.typ == framePacket {
				p.packetsLost.Add(1)
			}
			continue
		}
		if err := writeFrame(p.conn, f.typ, f.payload); err != nil {
			p.errVal.CompareAndSwap(nil, &pushErr{err: err})
			if f.typ == framePacket {
				p.packetsLost.Add(1)
			}
			continue
		}
		p.bytes.Add(uint64(len(f.payload)))
	}
}

// Observer returns the scenario observer that mounts the pusher on a run:
// every flushed accounting packet is re-encoded with the accounting wire
// codec and shipped, and every progress snapshot is shipped (conflated
// under backpressure) together with the registry's OpenMetrics exposition
// when reg is non-nil. The observer composes with any snapshot sink that
// is already attached instead of replacing it.
func (p *Pusher) Observer(reg *telemetry.Registry) scenario.Observer {
	return scenario.ObserverFunc(func(a *scenario.Attachment) {
		a.Packets = append(a.Packets, func(at des.Time, pkt *accounting.Packet) {
			payload, err := encodePacketFrame(float64(at), pkt)
			if err != nil {
				p.errVal.CompareAndSwap(nil, &pushErr{err: err})
				p.packetsLost.Add(1)
				return
			}
			p.sendBlocking(framePacket, payload)
		})
		prev := a.Snapshots
		a.Snapshots = func(s *telemetry.Snapshot) {
			if prev != nil {
				prev(s)
			}
			p.snaps.Add(1)
			p.sendDroppable(frameSnapshot, marshalJSON(s))
			if reg != nil {
				var buf bytes.Buffer
				if err := reg.WriteOpenMetrics(&buf); err == nil {
					p.metrics.Add(1)
					p.sendDroppable(frameMetrics, buf.Bytes())
				}
			}
		}
	})
}

// sendBlocking enqueues a frame, waiting for outbox space. Packet frames
// use it: fidelity over wall-clock speed. Once broken, frames are counted
// as lost instead of enqueued.
func (p *Pusher) sendBlocking(typ byte, payload []byte) {
	if p.Err() != nil {
		if typ == framePacket {
			p.packetsLost.Add(1)
		}
		return
	}
	if typ == framePacket {
		p.packets.Add(1)
	}
	p.out <- outFrame{typ: typ, payload: payload}
}

// sendDroppable enqueues a frame if there is room, dropping (and
// counting) it otherwise. Snapshots and metrics use it: they are
// progress conflation, not records.
func (p *Pusher) sendDroppable(typ byte, payload []byte) {
	select {
	case p.out <- outFrame{typ: typ, payload: payload}:
	default:
		p.snapsDropped.Add(1)
	}
}

// Finish ends the push: it ships the final frame (end is the virtual time
// the daemon advances the stream clock to — pass horizon + drain), waits
// for the writer to drain, waits for the daemon's final ack (the signal
// that the daemon-side report is built and published), and closes the
// connection. Call after scenario.Run returns, from the same goroutine
// that drove the run. Safe to call once.
func (p *Pusher) Finish(end float64) error {
	if p.finished {
		return p.Err()
	}
	p.finished = true
	p.sendBlocking(frameFinal, encodeFinalFrame(end))
	close(p.out)
	p.wg.Wait()
	defer p.conn.Close()
	if err := p.Err(); err != nil {
		return fmt.Errorf("observatory: push: %w", err)
	}
	p.conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	typ, _, err := readFrame(p.conn)
	if err != nil {
		return fmt.Errorf("observatory: final ack: %w", err)
	}
	if typ != frameFinalAck {
		return fmt.Errorf("%w: want final ack, got frame %q", ErrBadFrame, typ)
	}
	return nil
}

// Abort closes the connection without the final handshake (for error
// paths where the run never completed).
func (p *Pusher) Abort() {
	if !p.finished {
		p.finished = true
		close(p.out)
		p.wg.Wait()
	}
	p.conn.Close()
}
