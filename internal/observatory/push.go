package observatory

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/faults"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/simrand"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// Pusher streams a run's telemetry to an observatory daemon. It mounts on
// the same zero-perturbation seams the in-process observatory uses — the
// accounting packet tap and the snapshot sink — so attaching it never
// schedules a kernel event and same-seed runs stay byte-identical with or
// without -push.
//
// Flow control: frames pass through a bounded outbox drained by a writer
// goroutine. Packet frames are never dropped — when the outbox is full
// the simulation goroutine blocks until the writer catches up (wall-clock
// backpressure only; virtual time is untouched), which is what lets the
// daemon's rebuilt accounting database byte-match the producer's.
// Snapshot and metrics frames are progress conflation: when the outbox is
// full they are dropped and counted, never blocking the run.
//
// Fault tolerance: the writer goroutine owns the connection end to end.
// Record frames (packets, final) are sequence-numbered, retained in a
// bounded in-memory replay window, and spilled to a disk journal before
// they ever touch the wire. On a wire error the writer reconnects with
// exponential backoff and deterministic jitter (faults.RetryPolicy
// semantics on the wall clock), re-handshakes with Resume set, learns the
// daemon's resume offset from the hello ack, and replays exactly the
// frames the daemon never applied. Only after the retry budget is
// exhausted does the pusher break: subsequent packet frames are counted
// in PacketsLost instead of blocking forever, and Finish reports the
// error. tgsim -strict-obs turns a broken push into a non-zero exit,
// because the daemon-side record is then incomplete.
type Pusher struct {
	addr  string
	hello Hello // as negotiated (Run holds the daemon-assigned identity)
	opts  PushOptions
	rng   *simrand.Stream // backoff jitter; confined to the dial/writer path

	conn net.Conn // owned by the writer goroutine once it starts
	run  string   // daemon-assigned run ID

	out    chan outFrame
	wg     sync.WaitGroup
	errVal atomic.Pointer[pushErr]

	// Writer-owned delivery state.
	journal *spillJournal
	jbroken bool // spill append failed; window-only replay from here on
	window  *replayWindow
	nextSeq uint64

	finalAcked atomic.Bool

	packets      atomic.Uint64
	packetsLost  atomic.Uint64
	snaps        atomic.Uint64
	snapsDropped atomic.Uint64
	metrics      atomic.Uint64
	bytes        atomic.Uint64
	reconnects   atomic.Uint64
	replayed     atomic.Uint64
	spilled      atomic.Uint64
	finished     bool
}

type outFrame struct {
	typ     byte
	payload []byte
}

// pushErr boxes the first wire error (atomic.Pointer needs a concrete type).
type pushErr struct{ err error }

// PushStats summarizes what a pusher shipped (and lost).
type PushStats struct {
	Packets      uint64 // packet frames delivered to the writer
	PacketsLost  uint64 // packet frames discarded after the retry budget gave up
	Snapshots    uint64 // snapshot frames enqueued
	SnapsDropped uint64 // snapshot/metrics frames conflated away (outbox full)
	Metrics      uint64 // metrics frames enqueued
	Bytes        uint64 // payload bytes written to the wire
	Reconnects   uint64 // successful reconnect+resume handshakes
	Replayed     uint64 // record frames re-sent from the window/journal
	SpilledBytes uint64 // bytes appended to the disk spill journal
}

// PushOptions tunes the fault-tolerance layer of a push session.
type PushOptions struct {
	// Retry is the reconnect backoff policy, interpreted on the wall
	// clock (des.Time fields are seconds). MaxAttempts bounds
	// *consecutive* failed attempts — the budget resets on every
	// successful handshake. A negative MaxAttempts disables
	// reconnection entirely: the first wire error breaks the pusher
	// (the pre-resilience behavior).
	Retry faults.RetryPolicy
	// SpillPath places the disk spill journal; empty uses a private
	// temp file. The journal is removed when the session ends.
	SpillPath string
	// JitterSeed seeds the deterministic backoff jitter stream; zero
	// falls back to the hello seed.
	JitterSeed uint64
}

// DefaultPushOptions is the default reconnect profile: a dozen attempts
// from 50 ms doubling to a 2 s cap (±20 % jitter) rides out roughly
// fifteen seconds of daemon outage — a restart, not a decommission.
func DefaultPushOptions() PushOptions {
	return PushOptions{
		Retry: faults.RetryPolicy{
			MaxAttempts: 12,
			Base:        0.05,
			MaxDelay:    2,
			Multiplier:  2,
			Jitter:      0.2,
		},
	}
}

// pushOutbox is the outbox depth. Packet frames block (never drop) when
// it fills, so it only bounds memory, not fidelity.
const pushOutbox = 256

// pushWindowFrames bounds the in-memory replay window; reconnects that
// must reach further back replay from the spill journal.
const pushWindowFrames = 1024

// handshakeTimeout bounds the hello and final acks so a wedged daemon
// cannot hang a producer forever.
const handshakeTimeout = 30 * time.Second

// DialTimeout is the connect timeout for Dial.
const DialTimeout = 10 * time.Second

// splitPushAddr resolves an observatory address: "unix:PATH" or a path
// containing a slash dials a Unix socket, anything else TCP.
func splitPushAddr(addr string) (network, target string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	if strings.Contains(addr, "/") {
		return "unix", addr
	}
	return "tcp", addr
}

// Dial connects with the default fault-tolerance options.
func Dial(addr string, h Hello) (*Pusher, error) {
	return DialPush(addr, h, DefaultPushOptions())
}

// DialPush connects to an observatory daemon, performs the hello
// handshake, and returns a pusher ready to attach to a run. The initial
// dial uses the same retry budget as mid-run reconnects (a producer may
// start while the daemon is restarting); hello rejections (ErrBadHello)
// are permanent and never retried. The returned pusher's RunID is the
// daemon-assigned (possibly uniquified) identity.
func DialPush(addr string, h Hello, opts PushOptions) (*Pusher, error) {
	h.Schema = helloSchema
	h.Resume = false
	p := &Pusher{
		addr:   addr,
		hello:  h,
		opts:   opts,
		out:    make(chan outFrame, pushOutbox),
		window: newReplayWindow(pushWindowFrames),
	}
	seed := opts.JitterSeed
	if seed == 0 {
		seed = h.Seed
	}
	p.rng = simrand.Derive(seed, "observatory/push-retry")
	for attempt := 1; ; attempt++ {
		conn, ack, err := p.dialAndHello(false)
		if err == nil {
			p.conn, p.run = conn, ack.Run
			p.hello.Run = ack.Run
			break
		}
		if errors.Is(err, ErrBadHello) {
			return nil, err
		}
		d, ok := p.retryDelay(attempt)
		if !ok {
			return nil, fmt.Errorf("observatory: dial %s: %w", addr, err)
		}
		time.Sleep(d)
	}
	journal, err := newSpillJournal(opts.SpillPath)
	if err != nil {
		p.conn.Close()
		return nil, err
	}
	p.journal = journal
	p.wg.Add(1)
	go p.writer()
	return p, nil
}

// dialAndHello performs one connect + handshake attempt.
func (p *Pusher) dialAndHello(resume bool) (net.Conn, helloAck, error) {
	network, target := splitPushAddr(p.addr)
	conn, err := net.DialTimeout(network, target, DialTimeout)
	if err != nil {
		return nil, helloAck{}, err
	}
	h := p.hello
	h.Resume = resume
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if _, err := conn.Write([]byte(wireMagicStr)); err != nil {
		conn.Close()
		return nil, helloAck{}, fmt.Errorf("observatory: handshake: %w", err)
	}
	if err := writeFrame(conn, frameHello, marshalJSON(&h)); err != nil {
		conn.Close()
		return nil, helloAck{}, fmt.Errorf("observatory: handshake: %w", err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, helloAck{}, fmt.Errorf("observatory: hello ack: %w", err)
	}
	if typ == frameError {
		conn.Close()
		return nil, helloAck{}, fmt.Errorf("%w: daemon rejected hello: %s", ErrBadHello, payload)
	}
	if typ != frameHelloAck {
		conn.Close()
		return nil, helloAck{}, fmt.Errorf("%w: want hello ack, got frame %q", ErrBadFrame, typ)
	}
	var ack helloAck
	if err := unmarshalStrictless(payload, &ack); err != nil {
		conn.Close()
		return nil, helloAck{}, fmt.Errorf("observatory: hello ack: %w", err)
	}
	conn.SetDeadline(time.Time{})
	return conn, ack, nil
}

// retryDelay maps an attempt number to a wall-clock backoff, or reports
// that the budget is spent.
func (p *Pusher) retryDelay(attempt int) (time.Duration, bool) {
	if p.opts.Retry.MaxAttempts < 0 {
		return 0, false
	}
	return p.opts.Retry.WallDelay(attempt, p.rng)
}

// RunID returns the daemon-assigned run identity.
func (p *Pusher) RunID() string { return p.run }

// Err returns the permanent push error, if any (set only after the
// reconnect budget gave up, or on an encode failure).
func (p *Pusher) Err() error {
	if e := p.errVal.Load(); e != nil {
		return e.err
	}
	return nil
}

// fail records the permanent push error (first one wins).
func (p *Pusher) fail(err error) {
	p.errVal.CompareAndSwap(nil, &pushErr{err: err})
}

// Stats returns delivery counters.
func (p *Pusher) Stats() PushStats {
	return PushStats{
		Packets:      p.packets.Load(),
		PacketsLost:  p.packetsLost.Load(),
		Snapshots:    p.snaps.Load(),
		SnapsDropped: p.snapsDropped.Load(),
		Metrics:      p.metrics.Load(),
		Bytes:        p.bytes.Load(),
		Reconnects:   p.reconnects.Load(),
		Replayed:     p.replayed.Load(),
		SpilledBytes: p.spilled.Load(),
	}
}

// Lossy reports whether the daemon-side view of this run is incomplete:
// the push broke permanently, or packet frames were discarded.
func (p *Pusher) Lossy() bool {
	return p.Err() != nil || p.packetsLost.Load() > 0
}

// AppendOpenMetrics renders the pusher's wall-clock delivery counters as
// tg_push_* OpenMetrics families (no # EOF terminator — the caller owns
// the page). These counters are wall-clock artifacts of the transport, so
// they live outside the deterministic run registry: exports and tgdiff
// never see them.
func (p *Pusher) AppendOpenMetrics(b []byte) []byte {
	st := p.Stats()
	add := func(name, help string, v uint64) {
		b = append(b, "# HELP "+name+" "+help+"\n"...)
		b = append(b, "# TYPE "+name+" counter\n"...)
		b = fmt.Appendf(b, "%s %d\n", name, v)
	}
	add("tg_push_packets_total", "Accounting packet frames handed to the push writer.", st.Packets)
	add("tg_push_packets_lost_total", "Packet frames abandoned after the reconnect budget gave up.", st.PacketsLost)
	add("tg_push_reconnects_total", "Successful reconnect+resume handshakes.", st.Reconnects)
	add("tg_push_replayed_frames_total", "Record frames re-sent from the replay window or spill journal.", st.Replayed)
	add("tg_push_spilled_bytes_total", "Bytes appended to the disk spill journal.", st.SpilledBytes)
	add("tg_push_bytes_total", "Payload bytes written to the wire.", st.Bytes)
	return b
}

// writer drains the outbox onto the wire. It is the sole owner of the
// connection, the sequence counter, the replay window, and the spill
// journal. Record frames are sealed with the next sequence number and
// journaled *before* the first write attempt, so a failed write (or a
// whole daemon restart) is recoverable by replay. After the pusher
// breaks permanently it keeps draining (so blocking senders never
// deadlock) but discards frames.
func (p *Pusher) writer() {
	defer p.wg.Done()
	for f := range p.out {
		switch f.typ {
		case framePacket, frameFinal:
			p.nextSeq++
			jf := journalFrame{typ: f.typ, seq: p.nextSeq, sealed: sealSeq(p.nextSeq, f.payload)}
			if p.journal != nil && !p.jbroken {
				if err := p.journal.append(jf); err != nil {
					// Disk trouble degrades replay reach to the in-memory
					// window; the push itself continues.
					p.jbroken = true
				} else {
					p.spilled.Add(uint64(5 + 8 + len(f.payload)))
				}
			}
			p.window.add(jf)
			if p.Err() != nil {
				if f.typ == framePacket {
					p.packetsLost.Add(1)
				}
				continue
			}
			if err := writeFrame(p.conn, f.typ, jf.sealed); err != nil {
				if !p.reconnect() {
					p.fail(fmt.Errorf("observatory: write: %w", err))
					if f.typ == framePacket {
						p.packetsLost.Add(1)
					}
					continue
				}
				// The reconnect replayed every unapplied frame, jf
				// included — this frame is delivered.
			}
			p.bytes.Add(uint64(len(jf.sealed)))
			if f.typ == frameFinal {
				p.awaitFinalAck()
			}
		default:
			// Conflatable progress frames: never sequenced, never
			// replayed — on trouble, drop the frame and let the
			// reconnect restore the pipe for the record stream.
			if p.Err() != nil {
				continue
			}
			if err := writeFrame(p.conn, f.typ, f.payload); err != nil {
				p.snapsDropped.Add(1)
				if !p.reconnect() {
					p.fail(fmt.Errorf("observatory: write: %w", err))
				}
				continue
			}
			p.bytes.Add(uint64(len(f.payload)))
		}
	}
}

// reconnect re-establishes the session after a wire error: close the dead
// connection, back off per the retry policy (deterministic jitter), dial
// and re-handshake with Resume set, then replay every record frame above
// the daemon's resume offset. Returns false when the budget is exhausted
// or resume is impossible (identity lost, seed mismatch).
func (p *Pusher) reconnect() bool {
	p.conn.Close()
	for attempt := 1; ; attempt++ {
		d, ok := p.retryDelay(attempt)
		if !ok {
			return false
		}
		time.Sleep(d)
		conn, ack, err := p.dialAndHello(true)
		if err != nil {
			if errors.Is(err, ErrBadHello) {
				return false // daemon rejected the resume; no point retrying
			}
			continue
		}
		if ack.Run != p.run {
			// The daemon handed out a different identity — our run is
			// gone and replaying into a stranger would corrupt it.
			conn.Close()
			return false
		}
		p.conn = conn
		p.reconnects.Add(1)
		if ack.Finalized {
			// The daemon already applied our final frame in a previous
			// life; the pending final ack is answered by the handshake.
			p.finalAcked.Store(true)
			return true
		}
		if err := p.replayFrom(ack.HaveSeq); err != nil {
			p.conn.Close()
			continue
		}
		return true
	}
}

// replayFrom re-sends every record frame with sequence > haveSeq, from
// the in-memory window when it reaches back far enough, otherwise from
// the spill journal.
func (p *Pusher) replayFrom(haveSeq uint64) error {
	emit := func(f journalFrame) error {
		if err := writeFrame(p.conn, f.typ, f.sealed); err != nil {
			return err
		}
		p.replayed.Add(1)
		p.bytes.Add(uint64(len(f.sealed)))
		return nil
	}
	if p.window.covers(haveSeq) {
		for _, f := range p.window.from(haveSeq) {
			if err := emit(f); err != nil {
				return err
			}
		}
		return nil
	}
	if p.journal == nil || p.jbroken {
		return fmt.Errorf("observatory: replay window evicted seq %d and spill journal is unavailable", haveSeq+1)
	}
	return p.journal.replay(haveSeq, emit)
}

// awaitFinalAck reads the daemon's final ack after the final frame went
// out. A connection loss here reconnects like any other: either the
// resume handshake reports Finalized (the daemon got our final before
// dying or the ack was merely lost), or the replay re-delivers the final
// frame and a fresh ack follows.
func (p *Pusher) awaitFinalAck() {
	for {
		if p.finalAcked.Load() {
			return
		}
		p.conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
		typ, _, err := readFrame(p.conn)
		if err == nil && typ == frameFinalAck {
			p.conn.SetReadDeadline(time.Time{})
			p.finalAcked.Store(true)
			return
		}
		if err == nil {
			err = fmt.Errorf("%w: want final ack, got frame %q", ErrBadFrame, typ)
		}
		if !p.reconnect() {
			p.fail(fmt.Errorf("observatory: final ack: %w", err))
			return
		}
	}
}

// Observer returns the scenario observer that mounts the pusher on a run:
// every flushed accounting packet is re-encoded with the accounting wire
// codec and shipped, and every progress snapshot is shipped (conflated
// under backpressure) together with the registry's OpenMetrics exposition
// when reg is non-nil. The observer composes with any snapshot sink that
// is already attached instead of replacing it.
func (p *Pusher) Observer(reg *telemetry.Registry) scenario.Observer {
	return scenario.ObserverFunc(func(a *scenario.Attachment) {
		a.Packets = append(a.Packets, func(at des.Time, pkt *accounting.Packet) {
			payload, err := encodePacketFrame(float64(at), pkt)
			if err != nil {
				p.fail(err)
				p.packetsLost.Add(1)
				return
			}
			p.sendBlocking(framePacket, payload)
		})
		prev := a.Snapshots
		a.Snapshots = func(s *telemetry.Snapshot) {
			if prev != nil {
				prev(s)
			}
			p.snaps.Add(1)
			p.sendDroppable(frameSnapshot, marshalJSON(s))
			if reg != nil {
				var buf bytes.Buffer
				if err := reg.WriteOpenMetrics(&buf); err == nil {
					p.metrics.Add(1)
					p.sendDroppable(frameMetrics, buf.Bytes())
				}
			}
		}
	})
}

// sendBlocking enqueues a frame, waiting for outbox space. Packet frames
// use it: fidelity over wall-clock speed. Once broken, frames are counted
// as lost instead of enqueued.
func (p *Pusher) sendBlocking(typ byte, payload []byte) {
	if p.Err() != nil {
		if typ == framePacket {
			p.packetsLost.Add(1)
		}
		return
	}
	if typ == framePacket {
		p.packets.Add(1)
	}
	p.out <- outFrame{typ: typ, payload: payload}
}

// sendDroppable enqueues a frame if there is room, dropping (and
// counting) it otherwise. Snapshots and metrics use it: they are
// progress conflation, not records.
func (p *Pusher) sendDroppable(typ byte, payload []byte) {
	select {
	case p.out <- outFrame{typ: typ, payload: payload}:
	default:
		p.snapsDropped.Add(1)
	}
}

// Finish ends the push: it ships the final frame (end is the virtual time
// the daemon advances the stream clock to — pass horizon + drain), waits
// for the writer to drain the outbox and collect the daemon's final ack
// (the signal that the daemon-side report is built and published —
// surviving reconnects along the way), closes the connection, and removes
// the spill journal. Call after scenario.Run returns, from the same
// goroutine that drove the run. Safe to call once; after Abort it only
// reports the session error.
func (p *Pusher) Finish(end float64) error {
	if p.finished {
		return p.Err()
	}
	p.finished = true
	p.sendBlocking(frameFinal, encodeFinalFrame(end))
	close(p.out)
	p.wg.Wait()
	defer func() {
		p.conn.Close()
		p.journal.close()
	}()
	if err := p.Err(); err != nil {
		return fmt.Errorf("observatory: push: %w", err)
	}
	if !p.finalAcked.Load() {
		return fmt.Errorf("observatory: final ack never arrived")
	}
	return nil
}

// Abort closes the connection without the final handshake (for error
// paths where the run never completed) and removes the spill journal.
// Idempotent, in either order with Finish.
func (p *Pusher) Abort() {
	if !p.finished {
		p.finished = true
		close(p.out)
		p.wg.Wait()
	}
	p.conn.Close()
	p.journal.close()
}
