package observatory

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"
)

// RunInfo is one row of the /runs listing: identity, liveness, ingest
// totals, and the producer's latest progress snapshot fields.
type RunInfo struct {
	ID        string `json:"id"`
	Seed      uint64 `json:"seed"`
	Source    string `json:"source,omitempty"`
	Connected bool   `json:"connected"`
	Finalized bool   `json:"finalized"`
	// LagSeconds is wall time since the last frame (-1 before the first).
	LagSeconds float64 `json:"lag_seconds"`
	Frames     uint64  `json:"frames"`
	Packets    uint64  `json:"packets"`
	Bytes      uint64  `json:"bytes"`
	Reconnects uint64  `json:"reconnects"`
	// Backlog / HighWater / Dropped mirror the run's stream inbox.
	Backlog   int    `json:"backlog"`
	HighWater int    `json:"high_water"`
	Dropped   uint64 `json:"dropped"`
	// Progress / SimTime / Done come from the producer's latest snapshot
	// (absent until one arrives).
	Progress float64 `json:"progress,omitempty"`
	SimTime  string  `json:"sim_time,omitempty"`
	Done     bool    `json:"done,omitempty"`
}

// info assembles a run's listing row at request time.
func (rs *runState) info(now time.Time) RunInfo {
	ri := RunInfo{
		ID: rs.ID, Seed: rs.Seed, Source: rs.Source,
		Connected:  rs.connected.Load(),
		Finalized:  rs.finalized.Load(),
		LagSeconds: -1,
		Frames:     rs.frames.Load(),
		Packets:    rs.packets.Load(),
		Bytes:      rs.bytes.Load(),
		Reconnects: rs.reconnects.Load(),
	}
	if uns := rs.lastFrameUNS.Load(); uns > 0 {
		ri.LagSeconds = now.Sub(time.Unix(0, uns)).Seconds()
	}
	if ss := rs.streamSnap.Load(); ss != nil {
		ri.Backlog = ss.Depth
		ri.HighWater = ss.HighWater
		ri.Dropped = ss.Dropped
	}
	if s := rs.lastSnap.Load(); s != nil {
		ri.Progress = s.Progress
		ri.SimTime = s.SimTimeHuman
		ri.Done = s.Done
	}
	return ri
}

// ServeHTTP routes the daemon console:
//
//	/                 HTML fleet overview
//	/runs             JSON run listing (sorted by run ID)
//	/runs/{id}/status     producer's latest snapshot (as pushed)
//	/runs/{id}/modalities daemon-side streaming usage payload
//	/runs/{id}/drift      daemon-side drift payload
//	/runs/{id}/metrics    producer's pushed OpenMetrics exposition
//	/runs/{id}/stream     daemon-side tg_stream_*/tg_drift_* exposition
//	/runs/{id}/report     final usage-by-modality table (after finalize)
//	/modalities       fleet-federated usage payload across all runs
//	/drift            fleet-federated drift payload across all runs
//	/metrics          the daemon's own tg_obsd_* + tg_runtime_* exposition
//	/debug/pprof/     net/http/pprof (only with Config.Pprof)
func (d *Daemon) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	if strings.HasPrefix(path, "/debug/pprof/") {
		if !d.cfg.Pprof {
			http.NotFound(w, r)
			return
		}
		switch path {
		case "/debug/pprof/cmdline":
			pprof.Cmdline(w, r)
		case "/debug/pprof/profile":
			pprof.Profile(w, r)
		case "/debug/pprof/symbol":
			pprof.Symbol(w, r)
		case "/debug/pprof/trace":
			pprof.Trace(w, r)
		default:
			pprof.Index(w, r)
		}
		return
	}
	switch path {
	case "/", "/index.html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(obsdHTML))
		return
	case "/runs":
		now := time.Now()
		runs := d.runList()
		infos := make([]RunInfo, len(runs))
		for i, rs := range runs {
			infos[i] = rs.info(now)
		}
		writeJSON(w, infos)
		return
	case "/modalities":
		writePayload(w, d.FleetModalitiesJSON())
		return
	case "/drift":
		writePayload(w, d.FleetDriftJSON())
		return
	case "/metrics":
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		d.writeMetaMetrics(w)
		return
	}
	if rest, ok := strings.CutPrefix(path, "/runs/"); ok {
		id, sub, _ := strings.Cut(rest, "/")
		rs := d.run(id)
		if rs == nil {
			http.NotFound(w, r)
			return
		}
		switch sub {
		case "status":
			if s := rs.lastSnap.Load(); s != nil {
				writeJSON(w, s)
			} else {
				writeJSON(w, struct{}{})
			}
		case "modalities":
			writePayload(w, loadBytes(&rs.modalities))
		case "drift":
			writePayload(w, loadBytes(&rs.drift))
		case "metrics":
			om := loadBytes(&rs.metricsOM)
			if om == nil {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			w.Write(om)
		case "stream":
			om := loadBytes(&rs.streamOM)
			if om == nil {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			w.Write(om)
		case "report":
			rep := loadBytes(&rs.report)
			if rep == nil {
				http.Error(w, "run not finalized", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write(rep)
		case "":
			writeJSON(w, rs.info(time.Now()))
		default:
			http.NotFound(w, r)
		}
		return
	}
	http.NotFound(w, r)
}

// ServeConsole starts the console HTTP server on addr (":0" picks a free
// port) and returns the bound address. Close shuts it down.
func (d *Daemon) ServeConsole(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: d}
	d.mu.Lock()
	d.httpSrv = srv
	d.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

func loadBytes(p *atomic.Pointer[[]byte]) []byte {
	if b := p.Load(); b != nil {
		return *b
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// writePayload serves a pre-rendered JSON document, or an empty object
// when nothing has been published yet.
func writePayload(w http.ResponseWriter, payload []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if payload == nil {
		payload = []byte("{}\n")
	}
	w.Write(payload)
}

// writeMetaMetrics renders the daemon's own tg_obsd_* exposition. The
// counters are plain atomics folded into text at scrape time, so the
// ingest path never touches a registry and scrapes never contend with
// connections.
func (d *Daemon) writeMetaMetrics(w http.ResponseWriter) {
	now := time.Now()
	runs := d.runList()
	var live, done, idle int
	for _, rs := range runs {
		switch {
		case rs.finalized.Load():
			done++
		case rs.connected.Load():
			live++
		default:
			idle++
		}
	}
	fmt.Fprintf(w, "# TYPE tg_obsd_connections counter\n")
	fmt.Fprintf(w, "# HELP tg_obsd_connections Push connections accepted since start.\n")
	fmt.Fprintf(w, "tg_obsd_connections_total %d\n", d.connections.Load())
	fmt.Fprintf(w, "# TYPE tg_obsd_disconnects counter\n")
	fmt.Fprintf(w, "# HELP tg_obsd_disconnects Push connections that ended.\n")
	fmt.Fprintf(w, "tg_obsd_disconnects_total %d\n", d.disconnects.Load())
	fmt.Fprintf(w, "# TYPE tg_obsd_reconnects counter\n")
	fmt.Fprintf(w, "# HELP tg_obsd_reconnects Runs that resumed after a broken connection.\n")
	fmt.Fprintf(w, "tg_obsd_reconnects_total %d\n", d.reconnects.Load())
	fmt.Fprintf(w, "# TYPE tg_obsd_recoveries counter\n")
	fmt.Fprintf(w, "# HELP tg_obsd_recoveries Runs rebuilt from write-ahead journals at startup.\n")
	fmt.Fprintf(w, "tg_obsd_recoveries_total %d\n", d.recoveries.Load())
	fmt.Fprintf(w, "# TYPE tg_obsd_dup_frames counter\n")
	fmt.Fprintf(w, "# HELP tg_obsd_dup_frames Replayed record frames deduplicated by sequence number.\n")
	fmt.Fprintf(w, "tg_obsd_dup_frames_total %d\n", d.dupFrames.Load())
	fmt.Fprintf(w, "# TYPE tg_obsd_decode_errors counter\n")
	fmt.Fprintf(w, "# HELP tg_obsd_decode_errors Frames or handshakes the daemon could not decode.\n")
	fmt.Fprintf(w, "tg_obsd_decode_errors_total %d\n", d.decodeErrors.Load())
	fmt.Fprintf(w, "# TYPE tg_obsd_bytes counter\n")
	fmt.Fprintf(w, "# HELP tg_obsd_bytes Raw bytes read off push connections.\n")
	fmt.Fprintf(w, "tg_obsd_bytes_total %d\n", d.bytesIn.Load())
	fmt.Fprintf(w, "# TYPE tg_obsd_frames counter\n")
	fmt.Fprintf(w, "# HELP tg_obsd_frames Frames ingested, by kind.\n")
	fmt.Fprintf(w, "tg_obsd_frames_total{kind=\"packet\"} %d\n", d.framePackets.Load())
	fmt.Fprintf(w, "tg_obsd_frames_total{kind=\"snapshot\"} %d\n", d.frameSnaps.Load())
	fmt.Fprintf(w, "tg_obsd_frames_total{kind=\"metrics\"} %d\n", d.frameMetrics.Load())
	fmt.Fprintf(w, "tg_obsd_frames_total{kind=\"final\"} %d\n", d.frameFinals.Load())
	fmt.Fprintf(w, "# TYPE tg_obsd_runs gauge\n")
	fmt.Fprintf(w, "# HELP tg_obsd_runs Known runs by state.\n")
	fmt.Fprintf(w, "tg_obsd_runs{state=\"live\"} %d\n", live)
	fmt.Fprintf(w, "tg_obsd_runs{state=\"finalized\"} %d\n", done)
	fmt.Fprintf(w, "tg_obsd_runs{state=\"disconnected\"} %d\n", idle)
	fmt.Fprintf(w, "# TYPE tg_obsd_ingest_lag_seconds gauge\n")
	fmt.Fprintf(w, "# HELP tg_obsd_ingest_lag_seconds Wall seconds since each run's last frame.\n")
	for _, rs := range runs {
		if uns := rs.lastFrameUNS.Load(); uns > 0 {
			fmt.Fprintf(w, "tg_obsd_ingest_lag_seconds{run=%q} %.3f\n",
				rs.ID, now.Sub(time.Unix(0, uns)).Seconds())
		}
	}
	fmt.Fprintf(w, "# TYPE tg_obsd_backlog gauge\n")
	fmt.Fprintf(w, "# HELP tg_obsd_backlog Records spooled in each run's stream inbox.\n")
	fmt.Fprintf(w, "# TYPE tg_obsd_backlog_high_water gauge\n")
	fmt.Fprintf(w, "# HELP tg_obsd_backlog_high_water Maximum spool depth seen per run.\n")
	fmt.Fprintf(w, "# TYPE tg_obsd_dropped counter\n")
	fmt.Fprintf(w, "# HELP tg_obsd_dropped Records lost to inbox overflow per run.\n")
	for _, rs := range runs {
		if ss := rs.streamSnap.Load(); ss != nil {
			fmt.Fprintf(w, "tg_obsd_backlog{run=%q} %d\n", rs.ID, ss.Depth)
			fmt.Fprintf(w, "tg_obsd_backlog_high_water{run=%q} %d\n", rs.ID, ss.HighWater)
			fmt.Fprintf(w, "tg_obsd_dropped_total{run=%q} %d\n", rs.ID, ss.Dropped)
		}
	}
	// Splice the daemon's own Go runtime families (tg_runtime_*) in before
	// the terminator. The daemon's "event" analog for the throughput gauge
	// is frames ingested across all runs. Meta-metrics are wall-clock-only
	// by nature, so unlike a run console there is no deterministic
	// exposition here to protect.
	frames := d.framePackets.Load() + d.frameSnaps.Load() +
		d.frameMetrics.Load() + d.frameFinals.Load()
	w.Write(d.runtime.AppendOpenMetrics(nil, frames))
	fmt.Fprintf(w, "# EOF\n")
}

// obsdHTML is the self-contained fleet overview: it polls /runs and the
// federated /modalities, linking through to per-run drill-down.
const obsdHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>tgobsd fleet console</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 64rem; color: #1a1a2e; }
h1 { font-size: 1.2rem; } code { background: #f0f0f5; padding: 0 .3em; }
table { border-collapse: collapse; margin-top: 1rem; width: 100%; }
th, td { text-align: left; padding: .25rem .75rem; border-bottom: 1px solid #e0e0e8; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.dead { color: #a33; } .done { color: #3c8c5a; }
</style>
</head>
<body>
<h1>tgobsd fleet console</h1>
<table id="runs"><thead>
<tr><th>run</th><th class="num">seed</th><th>state</th><th class="num">progress</th>
<th class="num">packets</th><th class="num">lag</th><th class="num">backlog</th><th class="num">dropped</th></tr>
</thead><tbody></tbody></table>
<h1>Fleet modalities (lifetime)</h1>
<table id="fleet"><thead>
<tr><th>modality</th><th class="num">jobs</th><th class="num">NUs</th><th class="num">NU share</th></tr>
</thead><tbody></tbody></table>
<p>Raw endpoints: <a href="/runs"><code>/runs</code></a>,
<a href="/modalities"><code>/modalities</code></a>,
<a href="/drift"><code>/drift</code></a>,
<a href="/metrics"><code>/metrics</code></a>; per-run:
<code>/runs/{id}/status|modalities|drift|metrics|stream|report</code>.</p>
<script>
async function tick() {
  try {
    const rs = await (await fetch('/runs')).json();
    const tb = document.querySelector('#runs tbody');
    tb.innerHTML = '';
    for (const r of rs) {
      const tr = document.createElement('tr');
      const state = r.finalized ? 'finalized' : (r.connected ? 'live' : 'disconnected');
      const link = '<a href="/runs/' + r.id + '/modalities"><code>' + r.id + '</code></a>';
      const cells = [link, r.seed, state, (100 * (r.progress || 0)).toFixed(1) + '%',
        r.packets, r.lag_seconds >= 0 ? r.lag_seconds.toFixed(1) + 's' : '—',
        r.backlog, r.dropped];
      cells.forEach((v, i) => {
        const td = document.createElement('td');
        if (i === 0) td.innerHTML = v; else td.textContent = v;
        if (typeof v === 'number' || String(v).endsWith('%') || String(v).endsWith('s')) td.className = 'num';
        if (i === 2) td.className = state === 'finalized' ? 'done' : (state === 'disconnected' ? 'dead' : '');
        tr.appendChild(td);
      });
      tb.appendChild(tr);
    }
    const m = await (await fetch('/modalities')).json();
    const life = m.lifetime || {rows: []};
    const fb = document.querySelector('#fleet tbody');
    fb.innerHTML = '';
    for (const x of (life.rows || [])) {
      const tr = document.createElement('tr');
      for (const v of [x.modality, x.jobs, Math.round(x.nus).toLocaleString(),
          life.total_nus > 0 ? (100 * x.nus / life.total_nus).toFixed(1) + '%' : '0.0%']) {
        const td = document.createElement('td');
        td.textContent = v;
        if (typeof v === 'number' || String(v).endsWith('%')) td.className = 'num';
        tr.appendChild(td);
      }
      fb.appendChild(tr);
    }
  } catch (e) { /* retry */ }
  setTimeout(tick, 2000);
}
tick();
</script>
</body>
</html>
`
