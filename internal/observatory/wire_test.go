package observatory

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/accounting"
)

// TestFrameRoundTrip: every frame type survives write → read unchanged.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := map[byte][]byte{
		frameHello:    []byte(`{"schema":1,"run":"a","seed":7}`),
		framePacket:   {1, 2, 3, 4, 5, 6, 7, 8, 9},
		frameSnapshot: []byte(`{"progress":0.5}`),
		frameMetrics:  []byte("# EOF\n"),
		frameFinal:    encodeFinalFrame(432000),
		frameHelloAck: []byte(`{"run":"a"}`),
		frameFinalAck: nil,
	}
	order := []byte{frameHello, framePacket, frameSnapshot, frameMetrics, frameFinal, frameHelloAck, frameFinalAck}
	for _, typ := range order {
		if err := writeFrame(&buf, typ, payloads[typ]); err != nil {
			t.Fatalf("write %q: %v", typ, err)
		}
	}
	for _, want := range order {
		typ, payload, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("read %q: %v", want, err)
		}
		if typ != want {
			t.Fatalf("read type %q, want %q", typ, want)
		}
		if !bytes.Equal(payload, payloads[want]) {
			t.Fatalf("frame %q payload mismatch", want)
		}
	}
	if _, _, err := readFrame(&buf); err != io.EOF {
		t.Fatalf("drained stream: want io.EOF, got %v", err)
	}
}

// TestReadFrameRejectsOversize: a corrupt length prefix cannot drive an
// unbounded allocation.
func TestReadFrameRejectsOversize(t *testing.T) {
	var hdr [5]byte
	hdr[0] = framePacket
	binary.BigEndian.PutUint32(hdr[1:], maxFramePayload+1)
	_, _, err := readFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversize frame: want ErrBadFrame, got %v", err)
	}
}

// TestReadFrameTruncated: a partial payload is a bad frame, not EOF.
func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameSnapshot, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, _, err := readFrame(bytes.NewReader(trunc)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated frame: want ErrBadFrame, got %v", err)
	}
}

// TestReadMagic: wrong preambles are rejected.
func TestReadMagic(t *testing.T) {
	if err := readMagic(bytes.NewReader([]byte(wireMagicStr))); err != nil {
		t.Fatalf("good magic rejected: %v", err)
	}
	if err := readMagic(bytes.NewReader([]byte("NOPE"))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad magic: want ErrBadFrame, got %v", err)
	}
	if err := readMagic(bytes.NewReader([]byte("TG"))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short magic: want ErrBadFrame, got %v", err)
	}
}

// TestPacketFrameRoundTrip: the packet frame preserves both the flush
// time and the accounting wire bytes exactly.
func TestPacketFrameRoundTrip(t *testing.T) {
	pkt := &accounting.Packet{Site: "ncsa-abe", Seq: 42}
	pkt.Jobs = append(pkt.Jobs, accounting.JobRecord{
		JobID: 1, User: "u1", Project: "TG-1", Site: "ncsa-abe",
		Cores: 64, WallSeconds: 3600, NUs: 12.5,
	})
	payload, err := encodePacketFrame(86400.5, pkt)
	if err != nil {
		t.Fatal(err)
	}
	at, got, err := decodePacketFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if at != 86400.5 {
		t.Fatalf("at = %v, want 86400.5", at)
	}
	if got.Site != pkt.Site || got.Seq != pkt.Seq || len(got.Jobs) != 1 || got.Jobs[0].JobID != 1 {
		t.Fatalf("packet did not round-trip: %+v", got)
	}
	if _, _, err := decodePacketFrame([]byte{1, 2, 3}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short packet frame: want ErrBadFrame, got %v", err)
	}
}

// TestFinalFrameRoundTrip: the end-of-run clock survives the frame.
func TestFinalFrameRoundTrip(t *testing.T) {
	end, err := decodeFinalFrame(encodeFinalFrame(432000))
	if err != nil || end != 432000 {
		t.Fatalf("final frame: got (%v, %v), want (432000, nil)", end, err)
	}
	if _, err := decodeFinalFrame([]byte{1}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short final frame: want ErrBadFrame, got %v", err)
	}
}

// TestSeqSeal: record-frame sequencing round-trips, and short sequenced
// payloads are typed bad frames.
func TestSeqSeal(t *testing.T) {
	inner := []byte("record-body")
	sealed := sealSeq(987654321, inner)
	seq, body, err := splitSeq(sealed)
	if err != nil || seq != 987654321 || !bytes.Equal(body, inner) {
		t.Fatalf("splitSeq = (%d, %q, %v), want (987654321, %q, nil)", seq, body, err, inner)
	}
	if _, _, err := splitSeq([]byte{1, 2, 3}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short sequenced frame: want ErrBadFrame, got %v", err)
	}
}

// TestValidateRunID: the daemon admits only file- and label-safe run
// identities, rejecting the rest with the typed hello error.
func TestValidateRunID(t *testing.T) {
	for _, ok := range []string{"", "a", "fleet-r02", "A.b_c-9"} {
		if err := validateRunID(ok); err != nil {
			t.Errorf("validateRunID(%q) = %v, want nil", ok, err)
		}
	}
	long := strings.Repeat("x", maxRunIDLen+1)
	for _, bad := range []string{"a b", "../etc/passwd", "run#2", "naïve", long} {
		if err := validateRunID(bad); !errors.Is(err, ErrBadHello) {
			t.Errorf("validateRunID(%q) = %v, want ErrBadHello", bad, err)
		}
	}
}

// TestReadFrameLimited: the hello cap rejects before allocating.
func TestReadFrameLimited(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameHello, make([]byte, maxHelloPayload+1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readFrameLimited(&buf, maxHelloPayload); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized hello: want ErrBadFrame, got %v", err)
	}
}

// FuzzReadFrame: torn, short-read, and corrupt-length inputs must never
// panic and must always yield a clean EOF or a typed ErrBadFrame; frames
// that do parse must re-encode to a prefix of the input.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	writeFrame(&seed, framePacket, sealSeq(1, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}))
	f.Add(seed.Bytes())
	writeFrame(&seed, frameFinal, sealSeq(2, encodeFinalFrame(432000)))
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:seed.Len()-3]) // torn mid-payload
	f.Add([]byte{})
	f.Add([]byte{framePacket})                         // torn mid-header
	f.Add([]byte{framePacket, 0xff, 0xff, 0xff, 0xff}) // oversize length
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, payload, err := readFrame(r)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("readFrame error is neither io.EOF nor ErrBadFrame: %v", err)
				}
				return
			}
			var re bytes.Buffer
			if werr := writeFrame(&re, typ, payload); werr != nil {
				t.Fatalf("parsed frame does not re-encode: %v", werr)
			}
		}
	})
}
