package observatory

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"github.com/tgsim/tgmod/internal/accounting"
)

// TestFrameRoundTrip: every frame type survives write → read unchanged.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := map[byte][]byte{
		frameHello:    []byte(`{"schema":1,"run":"a","seed":7}`),
		framePacket:   {1, 2, 3, 4, 5, 6, 7, 8, 9},
		frameSnapshot: []byte(`{"progress":0.5}`),
		frameMetrics:  []byte("# EOF\n"),
		frameFinal:    encodeFinalFrame(432000),
		frameHelloAck: []byte(`{"run":"a"}`),
		frameFinalAck: nil,
	}
	order := []byte{frameHello, framePacket, frameSnapshot, frameMetrics, frameFinal, frameHelloAck, frameFinalAck}
	for _, typ := range order {
		if err := writeFrame(&buf, typ, payloads[typ]); err != nil {
			t.Fatalf("write %q: %v", typ, err)
		}
	}
	for _, want := range order {
		typ, payload, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("read %q: %v", want, err)
		}
		if typ != want {
			t.Fatalf("read type %q, want %q", typ, want)
		}
		if !bytes.Equal(payload, payloads[want]) {
			t.Fatalf("frame %q payload mismatch", want)
		}
	}
	if _, _, err := readFrame(&buf); err != io.EOF {
		t.Fatalf("drained stream: want io.EOF, got %v", err)
	}
}

// TestReadFrameRejectsOversize: a corrupt length prefix cannot drive an
// unbounded allocation.
func TestReadFrameRejectsOversize(t *testing.T) {
	var hdr [5]byte
	hdr[0] = framePacket
	binary.BigEndian.PutUint32(hdr[1:], maxFramePayload+1)
	_, _, err := readFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversize frame: want ErrBadFrame, got %v", err)
	}
}

// TestReadFrameTruncated: a partial payload is a bad frame, not EOF.
func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameSnapshot, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, _, err := readFrame(bytes.NewReader(trunc)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated frame: want ErrBadFrame, got %v", err)
	}
}

// TestReadMagic: wrong preambles are rejected.
func TestReadMagic(t *testing.T) {
	if err := readMagic(bytes.NewReader([]byte(wireMagicStr))); err != nil {
		t.Fatalf("good magic rejected: %v", err)
	}
	if err := readMagic(bytes.NewReader([]byte("NOPE"))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad magic: want ErrBadFrame, got %v", err)
	}
	if err := readMagic(bytes.NewReader([]byte("TG"))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short magic: want ErrBadFrame, got %v", err)
	}
}

// TestPacketFrameRoundTrip: the packet frame preserves both the flush
// time and the accounting wire bytes exactly.
func TestPacketFrameRoundTrip(t *testing.T) {
	pkt := &accounting.Packet{Site: "ncsa-abe", Seq: 42}
	pkt.Jobs = append(pkt.Jobs, accounting.JobRecord{
		JobID: 1, User: "u1", Project: "TG-1", Site: "ncsa-abe",
		Cores: 64, WallSeconds: 3600, NUs: 12.5,
	})
	payload, err := encodePacketFrame(86400.5, pkt)
	if err != nil {
		t.Fatal(err)
	}
	at, got, err := decodePacketFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if at != 86400.5 {
		t.Fatalf("at = %v, want 86400.5", at)
	}
	if got.Site != pkt.Site || got.Seq != pkt.Seq || len(got.Jobs) != 1 || got.Jobs[0].JobID != 1 {
		t.Fatalf("packet did not round-trip: %+v", got)
	}
	if _, _, err := decodePacketFrame([]byte{1, 2, 3}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short packet frame: want ErrBadFrame, got %v", err)
	}
}

// TestFinalFrameRoundTrip: the end-of-run clock survives the frame.
func TestFinalFrameRoundTrip(t *testing.T) {
	end, err := decodeFinalFrame(encodeFinalFrame(432000))
	if err != nil || end != 432000 {
		t.Fatalf("final frame: got (%v, %v), want (432000, nil)", end, err)
	}
	if _, err := decodeFinalFrame([]byte{1}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short final frame: want ErrBadFrame, got %v", err)
	}
}
