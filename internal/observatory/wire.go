// Package observatory is the fleet-wide telemetry plane: a long-lived
// daemon (cmd/tgobsd) that ingests telemetry pushed over TCP or Unix
// sockets from any number of concurrent producers — single tgsim runs,
// replication fleets, replays — and serves a unified multi-run console
// with per-run drill-down and cross-run federation.
//
// The wire protocol is deliberately thin: one magic preamble per
// connection, then length-prefixed frames. Accounting packets reuse the
// binary accounting wire codec unchanged (the daemon decodes exactly the
// bytes a site ledger flushes), progress snapshots and the hello handshake
// are framed JSON, and metric expositions are framed OpenMetrics text.
// Producer → daemon frames are hello, packet, snapshot, metrics, and
// final; the daemon answers hello and final with acks so producers know
// their assigned run ID and that the final report has been built.
//
// Determinism contract: the push client (Pusher) taps only the existing
// zero-perturbation observer seams — the accounting packet tap and the
// snapshot sink — and schedules no kernel events, so a run with -push
// attached is byte-identical to the same seed without it. The daemon
// rebuilds each run's accounting database by ingesting pushed packets in
// arrival order (TCP preserves the producer's flush order), so its final
// per-run modality report byte-matches the producer's own.
package observatory

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/tgsim/tgmod/internal/accounting"
)

// ErrBadFrame is the typed error every malformed-frame failure wraps:
// bad magic, unknown frame type, oversized or truncated payloads.
// Match with errors.Is(err, ErrBadFrame).
var ErrBadFrame = errors.New("observatory: bad frame")

// ErrBadHello is the typed error for handshake rejections: oversized
// hello frames and malformed run IDs. The daemon answers such hellos
// with an error frame instead of uniquifying garbage into a run ID, and
// Dial surfaces the rejection wrapping this error.
var ErrBadHello = errors.New("observatory: bad hello")

// wireMagicStr brands a push connection; the four bytes arrive before the
// first frame. The trailing digit is the protocol revision.
const wireMagicStr = "TGO1"

// Frame types. Producer → daemon: hello, packet, snapshot, metrics,
// final. Daemon → producer: helloAck (assigned run ID plus resume
// offset), finalAck (final report built), error (handshake rejected;
// payload is a human-readable reason).
const (
	frameHello    = byte('H')
	framePacket   = byte('P')
	frameSnapshot = byte('S')
	frameMetrics  = byte('M')
	frameFinal    = byte('F')
	frameHelloAck = byte('A')
	frameFinalAck = byte('D')
	frameError    = byte('E')
)

// maxFramePayload bounds a single frame so a corrupt length prefix cannot
// drive an unbounded allocation on either side of the wire.
const maxFramePayload = 64 << 20

// maxHelloPayload bounds the hello frame far below the general wire cap:
// a handshake is a small JSON document, and an attacker-sized hello must
// not buy a 64 MiB allocation before the daemon has even admitted the
// connection.
const maxHelloPayload = 64 << 10

// maxRunIDLen bounds a requested run identity. Run IDs become file names
// (-final-out artifacts, WAL segments) and metric label values.
const maxRunIDLen = 120

// helloSchema is the handshake schema revision. Revision 2 added frame
// sequencing and the reconnect/resume negotiation (Resume, HaveSeq,
// Finalized).
const helloSchema = 2

// Hello is the handshake a producer sends as its first frame: who the run
// is, its seed, the classifier threshold, and where virtual time will end
// (so the daemon can expire trailing windows exactly at finalize).
type Hello struct {
	Schema int `json:"schema"`
	// Run is the requested run ID; the daemon uniquifies collisions and
	// returns the assigned ID in the hello ack. Empty gets a generated ID.
	Run string `json:"run"`
	// Seed is the producer's scenario seed (shown on /runs).
	Seed uint64 `json:"seed"`
	// LargestCores is the classifier's capability threshold.
	LargestCores int `json:"largest_cores"`
	// EndTimeS is horizon + drain in virtual seconds (0 = unknown).
	EndTimeS float64 `json:"end_time_s"`
	// Source labels the producer kind: "tgsim", "fleet", "replay", ...
	Source string `json:"source,omitempty"`
	// Resume marks a reconnect: the producer already holds a
	// daemon-assigned identity in Run and wants its run back, taking over
	// from a half-open previous connection if one lingers. The daemon
	// answers with the resume offset (HaveSeq) so the producer replays
	// exactly the frames the daemon never applied.
	Resume bool `json:"resume,omitempty"`
}

// helloAck is the daemon's answer to a hello.
type helloAck struct {
	Run string `json:"run"` // the assigned (possibly uniquified) run ID
	// HaveSeq is the highest record-frame sequence number the daemon has
	// applied for this run (0 for a fresh run). The producer must resume
	// sending at HaveSeq+1; the daemon drops anything at or below it.
	HaveSeq uint64 `json:"have_seq"`
	// Finalized reports that the run's final frame was already applied —
	// a producer reconnecting mid-Finish learns its final ack outcome
	// here instead of re-driving the run.
	Finalized bool `json:"finalized,omitempty"`
}

// validateRunID vets a producer-requested run identity. Run IDs become
// artifact file names and metric labels, so only a conservative charset
// is admitted; empty is fine (the daemon assigns one).
func validateRunID(id string) error {
	if id == "" {
		return nil
	}
	if len(id) > maxRunIDLen {
		return fmt.Errorf("%w: run ID length %d exceeds %d", ErrBadHello, len(id), maxRunIDLen)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return fmt.Errorf("%w: run ID %q contains %q (want [A-Za-z0-9._-])", ErrBadHello, id, c)
		}
	}
	return nil
}

// writeFrame writes one framed message: type byte, 4-byte big-endian
// payload length, payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("%w: %d-byte payload exceeds limit", ErrBadFrame, len(payload))
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one framed message. io.EOF is returned clean (not
// wrapped) when the connection closes between frames.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	return readFrameLimited(r, maxFramePayload)
}

// readFrameLimited is readFrame with a tighter payload cap, enforced
// before any allocation — used for the hello, where even the general
// wire limit is too generous for a peer that has not identified itself.
func readFrameLimited(r io.Reader, limit uint32) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: truncated header: %v", ErrBadFrame, err)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > limit {
		return 0, nil, fmt.Errorf("%w: %d-byte payload exceeds limit", ErrBadFrame, n)
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
		}
	}
	return hdr[0], payload, nil
}

// readMagic consumes and checks the connection preamble.
func readMagic(r io.Reader) error {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return fmt.Errorf("%w: missing magic: %v", ErrBadFrame, err)
	}
	if string(m[:]) != wireMagicStr {
		return fmt.Errorf("%w: bad magic %q", ErrBadFrame, m)
	}
	return nil
}

// Record frames (packet and final) are *sequenced*: their payloads open
// with an 8-byte little-endian sequence number assigned contiguously
// from 1 by the producer's writer. The sequence is the delivery
// guarantee — the daemon applies seq n+1 only after n, dedups replays at
// or below its high-water mark, and reports that mark as the resume
// offset in the hello ack.

// sealSeq prepends the sequence number to a record-frame payload.
func sealSeq(seq uint64, inner []byte) []byte {
	out := make([]byte, 8, 8+len(inner))
	binary.LittleEndian.PutUint64(out, seq)
	return append(out, inner...)
}

// splitSeq peels the sequence number off a record-frame payload.
func splitSeq(payload []byte) (seq uint64, inner []byte, err error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("%w: short sequenced frame", ErrBadFrame)
	}
	return binary.LittleEndian.Uint64(payload), payload[8:], nil
}

// encodePacketFrame builds a packet-frame payload body: the flush virtual
// time (8 bytes, little-endian float64 bits) followed by the accounting
// wire encoding — the same bytes the simulated AMIE wire carries. The
// writer seals the sequence number on when the frame is dequeued.
func encodePacketFrame(at float64, pkt *accounting.Packet) ([]byte, error) {
	wire, err := pkt.Encode()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8, 8+len(wire))
	binary.LittleEndian.PutUint64(out, math.Float64bits(at))
	return append(out, wire...), nil
}

// decodePacketFrame parses a packet-frame payload.
func decodePacketFrame(payload []byte) (at float64, pkt *accounting.Packet, err error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("%w: short packet frame", ErrBadFrame)
	}
	at = math.Float64frombits(binary.LittleEndian.Uint64(payload))
	pkt, err = accounting.DecodePacket(payload[8:])
	if err != nil {
		return 0, nil, err
	}
	return at, pkt, nil
}

// encodeFinalFrame builds a final-frame payload: the end-of-run virtual
// time the daemon advances the stream clock to before finalizing.
func encodeFinalFrame(end float64) []byte {
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], math.Float64bits(end))
	return out[:]
}

// decodeFinalFrame parses a final-frame payload.
func decodeFinalFrame(payload []byte) (float64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("%w: final frame wants 8 bytes, got %d", ErrBadFrame, len(payload))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(payload)), nil
}

// marshalJSON marshals a handshake or snapshot value; the types involved
// contain no unmarshalable values, so failure is a programming error.
func marshalJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic("observatory: marshal: " + err.Error())
	}
	return data
}

// unmarshalStrictless decodes a JSON frame payload, wrapping failures as
// bad frames (unknown fields are tolerated for forward compatibility).
func unmarshalStrictless(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return nil
}
