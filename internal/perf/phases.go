// Package perf is the simulator's performance observatory: where does the
// *simulator's own* wall-clock time go, and how is that trajectory moving
// across commits?
//
// The package has three legs. Phase attribution (this file) extends the
// obs.KernelProfiler seam into a per-event-name cost split across kernel
// phases — future-event-list operations, handler execution, accounting
// flush/encode/ingest, and post-run classification. Runtime sampling
// (runtime.go) publishes Go runtime state (heap, GC, goroutines,
// throughput) as the wall-clock-only tg_runtime_* telemetry family, kept in
// a registry separate from the deterministic tg_* families so it can never
// reach exported run artifacts or determinism diffs. Trajectory analysis
// (history.go) parses committed BENCH_*.json records across schema versions
// into one normalized table with noise-aware regression detection — the
// contract the CI perf gate enforces.
//
// Everything here is wall-clock measurement of the host process. Nothing
// consumes simulation randomness, schedules kernel events, or mutates
// simulation state, so a profiled run stays byte-identical to a plain run
// with the same seed.
package perf

import (
	"fmt"
	"sort"
	"time"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/obs"
	"github.com/tgsim/tgmod/internal/report"
)

// Phase identifies one bucket of the simulator's own wall-clock cost.
type Phase int

// The kernel cost phases, in reporting order.
const (
	// PhaseSetup is work outside the event loop proper: future-event-list
	// operations performed before the first event fires (scenario assembly
	// schedules thousands of initial events) or between runs.
	PhaseSetup Phase = iota
	// PhaseFEL is future-event-list cost: heap pops leading into each event
	// (including tracer dispatch on the way) plus every timed heap push or
	// remove a handler performs.
	PhaseFEL
	// PhaseHandler is event-handler execution with FEL operations
	// subtracted — the simulation model's own cost.
	PhaseHandler
	// PhaseAccounting is the accounting pipeline: ledger flush, wire
	// encode, and central ingest, marked as regions by the scenario.
	PhaseAccounting
	// PhaseClassify is post-run modality classification and report
	// assembly, marked as regions by the callers that run them.
	PhaseClassify
	numPhases
)

// String returns the phase's report label.
func (p Phase) String() string {
	switch p {
	case PhaseSetup:
		return "setup"
	case PhaseFEL:
		return "fel"
	case PhaseHandler:
		return "handler"
	case PhaseAccounting:
		return "accounting"
	case PhaseClassify:
		return "classify"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// phaseStat accumulates one event name's split cost.
type phaseStat struct {
	count   uint64
	fel     time.Duration
	handler time.Duration
}

// Profiler is the phase-attribution profiler. It embeds obs.KernelProfiler
// (whose per-name totals, throughput, and FEL high-water reporting it
// keeps) and additionally implements des.OpProfiler, so the kernel feeds it
// the timing of its own heap operations. Install it on the tracer seam
// (scenario.ProfilePhases, or Install for a bare kernel).
//
// The attribution model: for event i, the window from the previous
// AfterEvent to this Event is FEL/dispatch cost (heap pop plus tracer
// fan-out); the Event→AfterEvent window minus any timed in-handler heap
// operations is handler cost; the in-handler heap operations themselves are
// FEL cost. Summing fel+handler over all events therefore telescopes to
// exactly the first-event→last-event wall span — WallSeconds() — which the
// phase tests assert within tolerance. Heap operations outside any handler
// are Setup and excluded from that identity (they precede the first event).
//
// Like the kernel itself, a Profiler is single-goroutine: it must only be
// touched from the goroutine running the kernel.
type Profiler struct {
	*obs.KernelProfiler
	k      *des.Kernel
	phases [numPhases]time.Duration
	byName map[string]*phaseStat

	evStart    time.Time     // this event's Event-callback stamp
	lastAfter  time.Time     // previous event's AfterEvent stamp
	felPop     time.Duration // pop/dispatch window leading into this event
	handlerFEL time.Duration // timed heap ops inside the current handler
	inHandler  bool
	curStat    *phaseStat
	curName    string
}

// New returns a phase profiler for kernel k. A nil kernel is allowed —
// scenario observers are built before the kernel exists; scenario.Run
// binds it (Bind) during assembly.
func New(k *des.Kernel) *Profiler {
	return &Profiler{
		KernelProfiler: obs.NewKernelProfiler(k),
		k:              k,
		byName:         make(map[string]*phaseStat),
	}
}

// Bind attaches (or replaces) the kernel, for profilers constructed before
// the kernel existed.
func (p *Profiler) Bind(k *des.Kernel) {
	p.k = k
	p.KernelProfiler.Bind(k)
}

// Install makes the profiler the kernel's tracer (shadowing the embedded
// Install, which would install only the KernelProfiler half).
func (p *Profiler) Install() { p.k.SetTracer(p) }

// BeforeStep implements des.OpProfiler. The FEL window is measured from the
// previous AfterEvent (so kernel loop overhead lands in PhaseFEL too);
// BeforeStep only seeds the window when no event has completed yet.
func (p *Profiler) BeforeStep() {
	if p.lastAfter.IsZero() {
		p.lastAfter = time.Now()
	}
}

// FELOp implements des.OpProfiler: a timed heap push or remove. Inside a
// handler it is deferred handler-window rent (subtracted in AfterEvent);
// outside any handler it is setup cost.
func (p *Profiler) FELOp(d time.Duration) {
	if p.inHandler {
		p.handlerFEL += d
		return
	}
	p.phases[PhaseSetup] += d
}

// Event implements des.Tracer: close the FEL window, open the handler one.
func (p *Profiler) Event(at des.Time, name string) {
	now := time.Now()
	if p.Events() > 0 && !p.lastAfter.IsZero() {
		p.felPop = now.Sub(p.lastAfter)
	} else {
		p.felPop = 0
	}
	p.handlerFEL = 0
	p.inHandler = true
	if p.curStat == nil || p.curName != name {
		st := p.byName[name]
		if st == nil {
			st = &phaseStat{}
			p.byName[name] = st
		}
		p.curStat, p.curName = st, name
	}
	p.KernelProfiler.Event(at, name)
	p.evStart = now
}

// AfterEvent implements des.StepObserver: charge the closed windows.
func (p *Profiler) AfterEvent(at des.Time, name string, pending int) {
	p.KernelProfiler.AfterEvent(at, name, pending)
	now := time.Now()
	h := now.Sub(p.evStart) - p.handlerFEL
	if h < 0 {
		h = 0
	}
	fel := p.felPop + p.handlerFEL
	p.curStat.count++
	p.curStat.handler += h
	p.curStat.fel += fel
	p.phases[PhaseHandler] += h
	p.phases[PhaseFEL] += fel
	p.inHandler = false
	p.lastAfter = now
}

// Region opens a wall-clock region charged to ph and returns its closer:
//
//	defer p.Region(perf.PhaseAccounting)()
//
// Nil-safe: on a nil profiler both the call and the closer are no-ops, so
// un-instrumented call sites need no guards.
func (p *Profiler) Region(ph Phase) func() {
	if p == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { p.phases[ph] += time.Since(t0) }
}

// PhaseSeconds returns the accumulated wall seconds charged to ph (0 on a
// nil profiler).
func (p *Profiler) PhaseSeconds(ph Phase) float64 {
	if p == nil || ph < 0 || ph >= numPhases {
		return 0
	}
	return p.phases[ph].Seconds()
}

// LoopSeconds returns the event-loop phase sum (FEL + handler) — the
// quantity that matches WallSeconds() within measurement tolerance.
func (p *Profiler) LoopSeconds() float64 {
	return (p.phases[PhaseFEL] + p.phases[PhaseHandler]).Seconds()
}

// PhaseTable renders the phase totals, with each phase's share of the
// total attributed wall time.
func (p *Profiler) PhaseTable() *report.Table {
	t := report.NewTable("Kernel phase attribution (wall clock)",
		"phase", "wall ms", "share")
	var total time.Duration
	for _, d := range p.phases {
		total += d
	}
	for ph := Phase(0); ph < numPhases; ph++ {
		share := 0.0
		if total > 0 {
			share = float64(p.phases[ph]) / float64(total)
		}
		t.AddRowf(ph.String(), fmt.Sprintf("%.2f", float64(p.phases[ph])/1e6),
			report.Percent(share))
	}
	t.AddRowf("TOTAL", fmt.Sprintf("%.2f", float64(total)/1e6), "")
	return t
}

// BreakdownTable renders the per-event-name handler/FEL split, heaviest
// first, with a trailing TOTAL row.
func (p *Profiler) BreakdownTable() *report.Table {
	t := report.NewTable("Per-event phase breakdown (wall clock)",
		"event", "count", "handler ms", "fel ms", "share")
	names := make([]string, 0, len(p.byName))
	var total time.Duration
	for n, st := range p.byName {
		names = append(names, n)
		total += st.handler + st.fel
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := p.byName[names[i]], p.byName[names[j]]
		wa, wb := a.handler+a.fel, b.handler+b.fel
		if wa != wb {
			return wa > wb
		}
		return names[i] < names[j]
	})
	var events uint64
	for _, n := range names {
		st := p.byName[n]
		events += st.count
		label := n
		if label == "" {
			label = "(anonymous)"
		}
		share := 0.0
		if total > 0 {
			share = float64(st.handler+st.fel) / float64(total)
		}
		t.AddRowf(label, int64(st.count),
			fmt.Sprintf("%.2f", float64(st.handler)/1e6),
			fmt.Sprintf("%.2f", float64(st.fel)/1e6),
			report.Percent(share))
	}
	t.AddRowf("TOTAL", int64(events),
		fmt.Sprintf("%.2f", float64(p.phases[PhaseHandler])/1e6),
		fmt.Sprintf("%.2f", float64(p.phases[PhaseFEL])/1e6), "")
	return t
}
