package perf

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeRecord drops a minimal BENCH record into dir.
func writeRecord(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

const v2Record = `{
  "schema": 2, "generated_at": "2026-08-06T01:14:23Z",
  "git_describe": "aaa1111", "go_version": "go1.24.0",
  "seed": 7, "scale": "quick",
  "kernel": {"events": 14210, "wall_s": 0.036, "events_per_sec": 389229, "peak_fel": 74, "jobs_finished": 5129},
  "fleet": {"reps": 8, "workers": 1, "wall_seq_s": 0.36, "wall_par_s": 0.36, "speedup": 1, "events_per_sec_aggregate": 311911},
  "experiments_wall_s": {"T1": 0.00001}
}`

const v5Record = `{
  "schema": 5, "generated_at": "2026-08-08T20:00:00Z",
  "git_describe": "ccc3333", "go_version": "go1.24.0",
  "seed": 7, "scale": "quick",
  "kernel": {"events": 14210, "wall_s": 0.037, "events_per_sec": 384000, "peak_fel": 74, "jobs_finished": 5129, "alloc_bytes": 52000000, "gc_cycles": 9},
  "fleet": {"reps": 8, "workers": 4, "workers_seq": 1, "wall_seq_s": 0.33, "wall_par_s": 0.12, "speedup": 2.75, "events_per_sec_aggregate": 900000},
  "push": {"events_per_sec_plain": 500000, "events_per_sec_push": 400000, "overhead_pct": 20, "packet_frames": 130, "pushed_bytes": 940146},
  "experiments_wall_s": {"T1": 0.00001}
}`

// TestLoadBenchDirAcrossSchemas: one decoder reads v2 and v5 records and
// orders them by generation time.
func TestLoadBenchDirAcrossSchemas(t *testing.T) {
	dir := t.TempDir()
	writeRecord(t, dir, "BENCH_b.json", v5Record)
	writeRecord(t, dir, "BENCH_a.json", v2Record)
	pts, err := LoadBenchDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("loaded %d points, want 2", len(pts))
	}
	if pts[0].Schema != 2 || pts[1].Schema != 5 {
		t.Fatalf("order wrong: schemas %d,%d", pts[0].Schema, pts[1].Schema)
	}
	if pts[0].FleetWorkersSeq != 1 {
		t.Errorf("pre-v5 record must default workers_seq to 1, got %d", pts[0].FleetWorkersSeq)
	}
	if pts[1].AllocBytes != 52000000 || pts[1].GCCycles != 9 {
		t.Errorf("v5 kernel alloc/GC fields not parsed: %+v", pts[1])
	}
	if pts[1].PushOverheadPct != 20 {
		t.Errorf("v4+ push overhead not parsed: %+v", pts[1])
	}
	table := TrajectoryTable(pts).String()
	for _, want := range []string{"BENCH_a.json", "BENCH_b.json", "aaa1111", "ccc3333"} {
		if !strings.Contains(table, want) {
			t.Errorf("trajectory table missing %q:\n%s", want, table)
		}
	}
}

// TestLoadCommittedRecords is the acceptance contract: every BENCH_*.json
// committed at the repository root (schemas v2 through v5) parses into the
// trajectory.
func TestLoadCommittedRecords(t *testing.T) {
	pts, err := LoadBenchDir(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("expected at least the three committed records, got %d", len(pts))
	}
	seen := map[int]bool{}
	for _, p := range pts {
		seen[p.Schema] = true
		if p.EventsPS <= 0 {
			t.Errorf("%s: no kernel throughput parsed", p.File)
		}
	}
	for _, schema := range []int{2, 3, 4} {
		if !seen[schema] {
			t.Errorf("committed records no longer cover schema v%d", schema)
		}
	}
}

// TestDetectRegressions: a point far below the trailing median flags; the
// median baseline shields successors from one noisy record.
func TestDetectRegressions(t *testing.T) {
	mk := func(file string, eps float64) *BenchPoint {
		return &BenchPoint{File: file, Scale: "quick", EventsPS: eps, GeneratedAt: file}
	}
	pts := []*BenchPoint{
		mk("BENCH_1.json", 380_000),
		mk("BENCH_2.json", 390_000),
		mk("BENCH_3.json", 150_000), // regression
		mk("BENCH_4.json", 385_000), // recovery must not flag
	}
	regs := DetectRegressions(pts, 0.30)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	if regs[0].File != "BENCH_3.json" {
		t.Errorf("flagged %s, want BENCH_3.json", regs[0].File)
	}
	if !strings.Contains(regs[0].String(), "kernel events/s") {
		t.Errorf("regression string lacks metric: %s", regs[0])
	}
	if got := DetectRegressions(pts[:2], 0.30); len(got) != 0 {
		t.Errorf("steady trajectory flagged: %v", got)
	}
}

// TestCompareGate: the baseline/candidate comparison enforces like-for-like
// anchors and tolerant throughput floors.
func TestCompareGate(t *testing.T) {
	base := &BenchPoint{Seed: 7, Scale: "quick", Events: 14210, Jobs: 5129,
		EventsPS: 380_000, FleetWorkers: 4, FleetSpeedup: 3.0}
	tol := Tolerance{EventsPSFrac: 0.25, SpeedupFrac: 0.25}

	cases := []struct {
		name string
		cand BenchPoint
		want string // substring of a violation; "" = pass
	}{
		{"pass-identical", *base, ""},
		{"pass-within-tolerance", BenchPoint{Seed: 7, Scale: "quick", Events: 14210,
			Jobs: 5129, EventsPS: 300_000, FleetWorkers: 4, FleetSpeedup: 2.4}, ""},
		{"fail-throughput", BenchPoint{Seed: 7, Scale: "quick", Events: 14210,
			Jobs: 5129, EventsPS: 200_000, FleetWorkers: 4, FleetSpeedup: 3.0},
			"kernel events/s regressed"},
		{"fail-speedup", BenchPoint{Seed: 7, Scale: "quick", Events: 14210,
			Jobs: 5129, EventsPS: 380_000, FleetWorkers: 4, FleetSpeedup: 1.0},
			"fleet speedup regressed"},
		{"fail-anchors", BenchPoint{Seed: 7, Scale: "quick", Events: 99, Jobs: 5129,
			EventsPS: 380_000}, "determinism anchor mismatch"},
		{"fail-not-like-for-like", BenchPoint{Seed: 8, Scale: "quick", Events: 14210,
			Jobs: 5129, EventsPS: 380_000}, "not like-for-like"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := Compare(base, &tc.cand, tol)
			if tc.want == "" {
				if len(bad) != 0 {
					t.Fatalf("want pass, got violations: %v", bad)
				}
				return
			}
			if len(bad) == 0 {
				t.Fatalf("want violation containing %q, gate passed", tc.want)
			}
			found := false
			for _, v := range bad {
				if strings.Contains(v, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("violations %v lack %q", bad, tc.want)
			}
		})
	}
}

// TestSingleWorkerFleetSkipsSpeedupGate: on a single-core host the parallel
// leg runs at width 1 and its speedup is pure noise — the gate must not
// fail on it.
func TestSingleWorkerFleetSkipsSpeedupGate(t *testing.T) {
	base := &BenchPoint{Seed: 7, Scale: "quick", Events: 14210, Jobs: 5129,
		EventsPS: 380_000, FleetWorkers: 1, FleetSpeedup: 1.0}
	cand := &BenchPoint{Seed: 7, Scale: "quick", Events: 14210, Jobs: 5129,
		EventsPS: 380_000, FleetWorkers: 1, FleetSpeedup: 0.78}
	if bad := Compare(base, cand, Tolerance{EventsPSFrac: 0.25, SpeedupFrac: 0.1}); len(bad) != 0 {
		t.Fatalf("width-1 speedup noise failed the gate: %v", bad)
	}
}
