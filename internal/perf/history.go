// Bench-trajectory analysis: parse the committed BENCH_*.json records —
// every schema version since the first baseline — into one normalized
// table, detect noise-aware regressions along it, and compare a candidate
// record against a committed baseline for the CI perf gate.
//
// BENCH schemas are additive: v2 introduced the fleet section, v3 made the
// fleet walls dedicated runs, v4 added the push-overhead section, and v5
// (this package's sibling change in cmd/benchtab) added dual fleet worker
// counts plus kernel allocation/GC deltas. A single decoder therefore
// reads them all; fields a version lacks stay zero and render as "-".
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/tgsim/tgmod/internal/report"
)

// BenchPoint is one normalized point on the performance trajectory.
type BenchPoint struct {
	File        string  `json:"file"`
	Schema      int     `json:"schema"`
	GeneratedAt string  `json:"generated_at"`
	GitDescribe string  `json:"git_describe"`
	GoVersion   string  `json:"go_version"`
	Seed        uint64  `json:"seed"`
	Scale       string  `json:"scale"`
	Events      uint64  `json:"events"`
	EventsPS    float64 `json:"events_per_sec"`
	PeakFEL     int     `json:"peak_fel"`
	Jobs        int     `json:"jobs_finished"`
	AllocBytes  uint64  `json:"alloc_bytes,omitempty"` // v5+
	GCCycles    uint32  `json:"gc_cycles,omitempty"`   // v5+

	FleetReps       int     `json:"fleet_reps,omitempty"`
	FleetWorkers    int     `json:"fleet_workers,omitempty"`
	FleetWorkersSeq int     `json:"fleet_workers_seq,omitempty"` // v5+; 1 before
	FleetSpeedup    float64 `json:"fleet_speedup,omitempty"`
	FleetEPS        float64 `json:"fleet_events_per_sec,omitempty"`

	PushOverheadPct float64 `json:"push_overhead_pct,omitempty"` // v4+

	Experiments map[string]float64 `json:"experiments_wall_s,omitempty"`
}

// benchFile mirrors the BENCH_*.json layout across schemas v2–v5; absent
// sections decode to nil/zero.
type benchFile struct {
	Schema      int    `json:"schema"`
	GeneratedAt string `json:"generated_at"`
	GitDescribe string `json:"git_describe"`
	GoVersion   string `json:"go_version"`
	Seed        uint64 `json:"seed"`
	Scale       string `json:"scale"`
	Kernel      struct {
		Events       uint64  `json:"events"`
		WallSeconds  float64 `json:"wall_s"`
		EventsPerSec float64 `json:"events_per_sec"`
		PeakFEL      int     `json:"peak_fel"`
		JobsFinished int     `json:"jobs_finished"`
		AllocBytes   uint64  `json:"alloc_bytes"`
		GCCycles     uint32  `json:"gc_cycles"`
	} `json:"kernel"`
	Fleet *struct {
		Reps           int     `json:"reps"`
		Workers        int     `json:"workers"`
		WorkersSeq     int     `json:"workers_seq"`
		WallSeqSeconds float64 `json:"wall_seq_s"`
		WallParSeconds float64 `json:"wall_par_s"`
		Speedup        float64 `json:"speedup"`
		EventsPerSec   float64 `json:"events_per_sec_aggregate"`
	} `json:"fleet"`
	Push *struct {
		OverheadPct float64 `json:"overhead_pct"`
	} `json:"push"`
	Experiments map[string]float64 `json:"experiments_wall_s"`
}

// LoadBenchFile parses one BENCH_*.json record of any known schema.
func LoadBenchFile(path string) (*BenchPoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if bf.Schema < 2 || bf.Kernel.Events == 0 {
		return nil, fmt.Errorf("%s: not a BENCH record (schema %d, %d events)",
			path, bf.Schema, bf.Kernel.Events)
	}
	p := &BenchPoint{
		File:        filepath.Base(path),
		Schema:      bf.Schema,
		GeneratedAt: bf.GeneratedAt,
		GitDescribe: bf.GitDescribe,
		GoVersion:   bf.GoVersion,
		Seed:        bf.Seed,
		Scale:       bf.Scale,
		Events:      bf.Kernel.Events,
		EventsPS:    bf.Kernel.EventsPerSec,
		PeakFEL:     bf.Kernel.PeakFEL,
		Jobs:        bf.Kernel.JobsFinished,
		AllocBytes:  bf.Kernel.AllocBytes,
		GCCycles:    bf.Kernel.GCCycles,
		Experiments: bf.Experiments,
	}
	if bf.Fleet != nil {
		p.FleetReps = bf.Fleet.Reps
		p.FleetWorkers = bf.Fleet.Workers
		p.FleetWorkersSeq = bf.Fleet.WorkersSeq
		if p.FleetWorkersSeq == 0 {
			p.FleetWorkersSeq = 1 // pre-v5 records: the sequential leg was implicit
		}
		p.FleetSpeedup = bf.Fleet.Speedup
		p.FleetEPS = bf.Fleet.EventsPerSec
	}
	if bf.Push != nil {
		p.PushOverheadPct = bf.Push.OverheadPct
	}
	return p, nil
}

// LoadBenchDir loads every BENCH_*.json in dir, ordered by generation
// timestamp (RFC 3339 sorts lexically) with filename as tiebreak. An empty
// directory is an error: a trajectory needs at least one point.
func LoadBenchDir(dir string) ([]*BenchPoint, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json records in %s", dir)
	}
	points := make([]*BenchPoint, 0, len(paths))
	for _, p := range paths {
		pt, err := LoadBenchFile(p)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	sort.SliceStable(points, func(i, j int) bool {
		if points[i].GeneratedAt != points[j].GeneratedAt {
			return points[i].GeneratedAt < points[j].GeneratedAt
		}
		return points[i].File < points[j].File
	})
	return points, nil
}

// TrajectoryTable renders the normalized trajectory, oldest first.
func TrajectoryTable(points []*BenchPoint) *report.Table {
	t := report.NewTable("Performance trajectory (committed BENCH records)",
		"record", "schema", "commit", "scale", "events/s", "fleet speedup", "workers", "push ovh")
	for _, p := range points {
		speedup, workers, push := "-", "-", "-"
		if p.FleetWorkers > 0 {
			speedup = fmt.Sprintf("%.2f", p.FleetSpeedup)
			workers = fmt.Sprintf("%d→%d", p.FleetWorkersSeq, p.FleetWorkers)
		}
		if p.PushOverheadPct != 0 {
			push = fmt.Sprintf("%.1f%%", p.PushOverheadPct)
		}
		t.AddRowf(p.File, int64(p.Schema), p.GitDescribe, p.Scale,
			report.FormatFloat(float64(int64(p.EventsPS))), speedup, workers, push)
	}
	return t
}

// Regression is one trajectory point that fell below its noise-aware
// baseline.
type Regression struct {
	File     string  `json:"file"`
	Metric   string  `json:"metric"`
	Value    float64 `json:"value"`
	Baseline float64 `json:"baseline"`
	DropFrac float64 `json:"drop_frac"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.0f is %.1f%% below trailing baseline %.0f",
		r.File, r.Metric, r.Value, 100*r.DropFrac, r.Baseline)
}

// DetectRegressions walks the trajectory in order and flags points whose
// kernel events/s fall more than tolFrac below the median of up to three
// prior same-scale points. The median baseline absorbs single-run noise
// (single-core hosts jitter ±10–20% leg to leg; see EXPERIMENTS.md), so
// one slow record flags once rather than poisoning the baseline for its
// successors.
func DetectRegressions(points []*BenchPoint, tolFrac float64) []Regression {
	var regs []Regression
	byScale := make(map[string][]float64)
	for _, p := range points {
		prior := byScale[p.Scale]
		if len(prior) > 0 {
			base := median(prior)
			if base > 0 && p.EventsPS < base*(1-tolFrac) {
				regs = append(regs, Regression{
					File: p.File, Metric: "kernel events/s",
					Value: p.EventsPS, Baseline: base,
					DropFrac: 1 - p.EventsPS/base,
				})
			}
		}
		prior = append(prior, p.EventsPS)
		if len(prior) > 3 {
			prior = prior[len(prior)-3:]
		}
		byScale[p.Scale] = prior
	}
	return regs
}

// median returns the median of vs (which must be non-empty).
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Tolerance bounds how far a candidate record may fall below its baseline
// before the CI gate fails.
type Tolerance struct {
	// EventsPSFrac is the allowed fractional drop in kernel events/s
	// (0.25 = a quarter slower still passes — wall-clock benches on shared
	// CI runners are noisy).
	EventsPSFrac float64
	// SpeedupFrac is the allowed fractional drop in fleet speedup.
	SpeedupFrac float64
}

// Compare gates candidate cand against baseline base. It returns the list
// of violations (empty = pass). Determinism anchors — seed, scale, kernel
// event count, jobs finished — must match exactly: if they differ the
// records are not like-for-like and every violation says so rather than
// reporting a bogus throughput delta.
func Compare(base, cand *BenchPoint, tol Tolerance) []string {
	var bad []string
	if base.Seed != cand.Seed || base.Scale != cand.Scale {
		return []string{fmt.Sprintf(
			"not like-for-like: baseline seed=%d scale=%s vs candidate seed=%d scale=%s",
			base.Seed, base.Scale, cand.Seed, cand.Scale)}
	}
	if base.Events != cand.Events || base.Jobs != cand.Jobs {
		return []string{fmt.Sprintf(
			"determinism anchor mismatch: baseline %d events/%d jobs vs candidate %d events/%d jobs — simulated results diverged; fix that before gating performance",
			base.Events, base.Jobs, cand.Events, cand.Jobs)}
	}
	if base.EventsPS > 0 {
		floor := base.EventsPS * (1 - tol.EventsPSFrac)
		if cand.EventsPS < floor {
			bad = append(bad, fmt.Sprintf(
				"kernel events/s regressed: %.0f < %.0f (baseline %.0f − %.0f%% tolerance)",
				cand.EventsPS, floor, base.EventsPS, 100*tol.EventsPSFrac))
		}
	}
	if base.FleetWorkers > 1 && cand.FleetWorkers > 1 && base.FleetSpeedup > 0 {
		floor := base.FleetSpeedup * (1 - tol.SpeedupFrac)
		if cand.FleetSpeedup < floor {
			bad = append(bad, fmt.Sprintf(
				"fleet speedup regressed: %.2f < %.2f (baseline %.2f − %.0f%% tolerance)",
				cand.FleetSpeedup, floor, base.FleetSpeedup, 100*tol.SpeedupFrac))
		}
	}
	return bad
}
