package perf

import (
	"strings"
	"testing"
	"time"

	"github.com/tgsim/tgmod/internal/des"
)

// spin busy-waits for roughly d of wall time, so handler cost is real work
// the profiler must attribute, not sleep the scheduler could elide.
func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// TestPhaseSumMatchesWallSeconds is the attribution identity: over a
// scripted run, fel+handler must telescope to the first-event→last-event
// wall span within measurement tolerance.
func TestPhaseSumMatchesWallSeconds(t *testing.T) {
	cases := []struct {
		name   string
		script func(k *des.Kernel)
	}{
		{"chain", func(k *des.Kernel) {
			// Sequential chain: each event schedules its successor, so
			// in-handler FEL pushes are exercised on every step.
			var step func(n int) des.Handler
			step = func(n int) des.Handler {
				return func(k *des.Kernel) {
					spin(100 * time.Microsecond)
					if n > 0 {
						k.ScheduleNamed(1, "chain", step(n-1))
					}
				}
			}
			k.ScheduleNamed(1, "chain", step(40))
		}},
		{"fanout", func(k *des.Kernel) {
			// Wide fan-out scheduled up front: FEL cost lands in setup, the
			// run itself is pop-heavy.
			for i := 0; i < 60; i++ {
				k.ScheduleNamed(des.Time(i), "work", func(k *des.Kernel) {
					spin(50 * time.Microsecond)
				})
			}
		}},
		{"mixed-cancel", func(k *des.Kernel) {
			// Handlers that schedule and cancel: timed heap removes must be
			// charged as FEL, not handler, cost.
			for i := 0; i < 30; i++ {
				k.ScheduleNamed(des.Time(i), "mix", func(k *des.Kernel) {
					tm := k.ScheduleNamed(1000, "never", func(*des.Kernel) {})
					spin(80 * time.Microsecond)
					k.Cancel(tm)
				})
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := des.New()
			p := New(k)
			p.Install()
			tc.script(k)
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			wall := p.WallSeconds()
			loop := p.LoopSeconds()
			if wall <= 0 {
				t.Fatalf("no wall span measured (events=%d)", p.Events())
			}
			// 20% + 2ms absorbs clock-read skew between the embedded
			// profiler's stamps and the phase stamps.
			tol := 0.20*wall + 0.002
			if diff := loop - wall; diff > tol || diff < -tol {
				t.Errorf("phase sum %.6fs vs wall %.6fs: |diff| %.6fs exceeds tolerance %.6fs\nfel=%.6fs handler=%.6fs",
					loop, wall, diff, tol,
					p.PhaseSeconds(PhaseFEL), p.PhaseSeconds(PhaseHandler))
			}
			if p.PhaseSeconds(PhaseHandler) <= 0 {
				t.Error("handler phase accumulated no time despite spinning handlers")
			}
			if p.PhaseSeconds(PhaseFEL) <= 0 {
				t.Error("fel phase accumulated no time despite heap operations")
			}
		})
	}
}

// TestSetupPhaseExcludedFromLoop: heap pushes before the first event are
// setup, and must not be counted in the loop identity.
func TestSetupPhaseExcludedFromLoop(t *testing.T) {
	k := des.New()
	p := New(k)
	p.Install()
	for i := 0; i < 5000; i++ {
		k.ScheduleNamed(des.Time(i), "pre", func(*des.Kernel) {})
	}
	if p.PhaseSeconds(PhaseSetup) <= 0 {
		t.Fatal("pre-run scheduling charged no setup time")
	}
	if p.PhaseSeconds(PhaseFEL) != 0 || p.PhaseSeconds(PhaseHandler) != 0 {
		t.Fatalf("loop phases charged before any event ran: fel=%v handler=%v",
			p.PhaseSeconds(PhaseFEL), p.PhaseSeconds(PhaseHandler))
	}
}

// TestRegions: explicit regions accumulate into their phase and are
// nil-safe on a nil profiler.
func TestRegions(t *testing.T) {
	k := des.New()
	p := New(k)
	done := p.Region(PhaseAccounting)
	spin(200 * time.Microsecond)
	done()
	if got := p.PhaseSeconds(PhaseAccounting); got < 100e-6 {
		t.Errorf("accounting region recorded %.6fs, want >= 100µs", got)
	}
	done = p.Region(PhaseClassify)
	done()
	var nilP *Profiler
	nilP.Region(PhaseAccounting)() // must not panic
	if nilP.PhaseSeconds(PhaseClassify) != 0 {
		t.Error("nil profiler reported non-zero phase time")
	}
}

// TestTablesRender: the report tables include every phase and event name.
func TestTablesRender(t *testing.T) {
	k := des.New()
	p := New(k)
	p.Install()
	k.ScheduleNamed(1, "alpha", func(k *des.Kernel) { spin(50 * time.Microsecond) })
	k.ScheduleNamed(2, "beta", func(k *des.Kernel) { spin(50 * time.Microsecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	pt := p.PhaseTable().String()
	for _, want := range []string{"setup", "fel", "handler", "accounting", "classify", "TOTAL"} {
		if !strings.Contains(pt, want) {
			t.Errorf("phase table missing %q:\n%s", want, pt)
		}
	}
	bt := p.BreakdownTable().String()
	for _, want := range []string{"alpha", "beta", "TOTAL"} {
		if !strings.Contains(bt, want) {
			t.Errorf("breakdown table missing %q:\n%s", want, bt)
		}
	}
}
