// Go runtime sampling: the wall-clock-only tg_runtime_* telemetry family.
//
// These families describe the host process (heap, GC, goroutines, event
// throughput), not the simulation — two same-seed runs will legitimately
// disagree on every one of them. They therefore live in a private registry
// owned by the sampler, never the run's deterministic registry: the
// exported metrics.om and the console's /metrics endpoint cannot contain
// them by construction, and tgdiff additionally skips the tg_runtime_
// prefix as defense in depth. Consoles expose them separately, at
// /metrics/runtime.
package perf

import (
	"bytes"
	"runtime"
	"sync"
	"time"

	"github.com/tgsim/tgmod/internal/telemetry"
)

// RuntimeSampler reads Go runtime state into tg_runtime_* gauges and
// counters and renders them as an OpenMetrics exposition. Unlike the
// simulation registry it is internally locked, so daemons may sample at
// scrape time from concurrent HTTP goroutines; in tgsim the sim goroutine
// samples on the snapshot cadence and consoles serve pre-rendered bytes.
type RuntimeSampler struct {
	mu  sync.Mutex
	reg *telemetry.Registry

	heapAlloc   *telemetry.Gauge
	heapSys     *telemetry.Gauge
	heapObjects *telemetry.Gauge
	goroutines  *telemetry.Gauge
	eventsPS    *telemetry.Gauge
	gcCycles    *telemetry.Counter
	gcPause     *telemetry.Counter
	allocBytes  *telemetry.Counter

	lastNumGC      uint32
	lastPauseNs    uint64
	lastTotalAlloc uint64

	lastSample time.Time
	lastEvents uint64

	snap telemetry.RuntimeSnap
}

// NewRuntimeSampler returns a sampler with all tg_runtime_* families
// registered at zero.
func NewRuntimeSampler() *RuntimeSampler {
	reg := telemetry.New()
	s := &RuntimeSampler{
		reg: reg,
		heapAlloc: reg.Gauge("tg_runtime_heap_alloc_bytes",
			"Bytes of allocated heap objects (wall-clock-only; excluded from determinism diffs).").With(),
		heapSys: reg.Gauge("tg_runtime_heap_sys_bytes",
			"Bytes of heap obtained from the OS (wall-clock-only).").With(),
		heapObjects: reg.Gauge("tg_runtime_heap_objects",
			"Live heap objects (wall-clock-only).").With(),
		goroutines: reg.Gauge("tg_runtime_goroutines",
			"Goroutines in the process (wall-clock-only).").With(),
		eventsPS: reg.Gauge("tg_runtime_events_per_sec",
			"Kernel event throughput over the last sample interval (wall-clock-only).").With(),
		gcCycles: reg.Counter("tg_runtime_gc_cycles_total",
			"Completed GC cycles (wall-clock-only).").With(),
		gcPause: reg.Counter("tg_runtime_gc_pause_seconds_total",
			"Cumulative GC stop-the-world pause time (wall-clock-only).").With(),
		allocBytes: reg.Counter("tg_runtime_alloc_bytes_total",
			"Cumulative bytes allocated (wall-clock-only).").With(),
	}
	return s
}

// Sample reads the runtime and updates every family. events is the kernel
// event count at the time of the call (0 when unknown — the throughput
// gauge then stays at its previous value). Safe for concurrent use.
func (s *RuntimeSampler) Sample(events uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	now := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.heapAlloc.Set(float64(ms.HeapAlloc))
	s.heapSys.Set(float64(ms.HeapSys))
	s.heapObjects.Set(float64(ms.HeapObjects))
	s.goroutines.Set(float64(runtime.NumGoroutine()))
	s.gcCycles.Add(float64(ms.NumGC - s.lastNumGC))
	s.gcPause.Add(float64(ms.PauseTotalNs-s.lastPauseNs) / 1e9)
	s.allocBytes.Add(float64(ms.TotalAlloc - s.lastTotalAlloc))
	s.lastNumGC = ms.NumGC
	s.lastPauseNs = ms.PauseTotalNs
	s.lastTotalAlloc = ms.TotalAlloc

	if events > s.lastEvents && !s.lastSample.IsZero() {
		if dt := now.Sub(s.lastSample).Seconds(); dt > 0 {
			s.eventsPS.Set(float64(events-s.lastEvents) / dt)
		}
	}
	if events > 0 {
		s.lastEvents = events
	}
	s.lastSample = now

	s.snap = telemetry.RuntimeSnap{
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		HeapObjects:    ms.HeapObjects,
		GCCycles:       ms.NumGC,
		GCPauseMS:      float64(ms.PauseTotalNs) / 1e6,
		Goroutines:     runtime.NumGoroutine(),
		EventsPerSec:   s.eventsPS.Value(),
	}
}

// Snap returns the most recent sample as the snapshot slice consoles embed
// in /status. The returned value is a copy.
func (s *RuntimeSampler) Snap() telemetry.RuntimeSnap {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

// OpenMetrics renders the current tg_runtime_* state as a complete
// OpenMetrics exposition (terminated by "# EOF"). The returned slice is
// freshly allocated — safe to publish to a console page.
func (s *RuntimeSampler) OpenMetrics() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	if err := s.reg.WriteOpenMetrics(&buf); err != nil {
		return []byte("# EOF\n")
	}
	return buf.Bytes()
}

var eofLine = []byte("# EOF\n")

// AppendOpenMetrics samples the runtime and appends the tg_runtime_*
// families — without the "# EOF" terminator — to dst. Daemons that expose
// their own meta-metrics endpoint use it to splice runtime families into an
// existing exposition just before the terminator.
func (s *RuntimeSampler) AppendOpenMetrics(dst []byte, events uint64) []byte {
	s.Sample(events)
	return append(dst, bytes.TrimSuffix(s.OpenMetrics(), eofLine)...)
}
