package perf

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/tgsim/tgmod/internal/telemetry"
)

// TestRuntimeSamplerFamilies: every tg_runtime_* family is present in the
// exposition and carries plausible values after a sample.
func TestRuntimeSamplerFamilies(t *testing.T) {
	s := NewRuntimeSampler()
	s.Sample(1000)
	om := string(s.OpenMetrics())
	for _, fam := range []string{
		"tg_runtime_heap_alloc_bytes",
		"tg_runtime_heap_sys_bytes",
		"tg_runtime_heap_objects",
		"tg_runtime_goroutines",
		"tg_runtime_events_per_sec",
		"tg_runtime_gc_cycles_total",
		"tg_runtime_gc_pause_seconds_total",
		"tg_runtime_alloc_bytes_total",
	} {
		if !strings.Contains(om, fam) {
			t.Errorf("exposition missing family %s:\n%s", fam, om)
		}
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Error("exposition not terminated by # EOF")
	}
	snap := s.Snap()
	if snap.HeapAllocBytes == 0 || snap.Goroutines == 0 {
		t.Errorf("snapshot has zero heap/goroutines: %+v", snap)
	}
}

// TestRuntimeSamplerThroughput: the events/s gauge reflects the delta
// between consecutive samples.
func TestRuntimeSamplerThroughput(t *testing.T) {
	s := NewRuntimeSampler()
	s.Sample(0)
	s.Sample(10_000)
	s.Sample(20_000)
	if s.Snap().EventsPerSec <= 0 {
		t.Errorf("events/s gauge not set after increasing samples: %+v", s.Snap())
	}
}

// TestAppendOpenMetrics: the spliced form carries the families but not the
// terminator, so daemons can append it mid-exposition.
func TestAppendOpenMetrics(t *testing.T) {
	s := NewRuntimeSampler()
	out := s.AppendOpenMetrics([]byte("tg_obsd_runs 1\n"), 500)
	body := string(out)
	if !strings.Contains(body, "tg_runtime_heap_alloc_bytes") {
		t.Fatalf("spliced exposition missing runtime families:\n%s", body)
	}
	if strings.Contains(body, "# EOF") {
		t.Fatalf("spliced exposition must not contain the EOF terminator:\n%s", body)
	}
	if !strings.HasPrefix(body, "tg_obsd_runs 1\n") {
		t.Fatalf("splice lost the destination prefix:\n%s", body)
	}
}

// TestConcurrentRuntimeScrapes is the -race test for the console path: one
// goroutine plays the simulation loop (sampling the runtime and publishing
// /metrics/runtime pages) while many goroutines scrape the console. Run
// with -race this proves scrapes of tg_runtime_* gauges during ingest are
// data-race-free and never observe a torn payload.
func TestConcurrentRuntimeScrapes(t *testing.T) {
	s := NewRuntimeSampler()
	console := telemetry.NewConsole()
	srv := httptest.NewServer(console)
	defer srv.Close()

	const rounds = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/metrics/runtime")
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode == http.StatusOK {
					if !strings.HasSuffix(string(body), "# EOF\n") {
						t.Errorf("torn runtime exposition: %q", body)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < rounds; i++ {
		s.Sample(uint64(i) * 100)
		console.PublishPage("/metrics/runtime",
			"application/openmetrics-text; version=1.0.0; charset=utf-8",
			s.OpenMetrics())
	}
	close(stop)
	wg.Wait()

	resp, err := http.Get(srv.URL + "/metrics/runtime")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final scrape: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics") {
		t.Errorf("runtime page served with content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "tg_runtime_heap_alloc_bytes") {
		t.Errorf("final scrape missing runtime families:\n%s", body)
	}
}

// TestRuntimeFamiliesStayOffMainRegistry: the deterministic registry and
// the runtime registry are disjoint — rendering a run registry after heavy
// runtime sampling must not contain a single tg_runtime_ series.
func TestRuntimeFamiliesStayOffMainRegistry(t *testing.T) {
	main := telemetry.New()
	main.Counter("tg_jobs_total", "jobs").With().Inc()
	s := NewRuntimeSampler()
	for i := 0; i < 10; i++ {
		s.Sample(uint64(i))
	}
	var b strings.Builder
	if err := main.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "tg_runtime_") {
		t.Fatalf("deterministic registry leaked runtime families:\n%s", b.String())
	}
}
