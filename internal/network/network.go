// Package network models the federation's wide-area network: sites attach
// to a backbone through access links, and bulk data transfers (the
// GridFTP-style movement that data-centric usage depends on) share link
// bandwidth using max-min fair progressive filling.
//
// The model is flow-level rather than packet-level: each transfer is a
// fluid flow whose instantaneous rate is recomputed whenever the set of
// active flows changes. This is the standard fidelity/performance tradeoff
// for grid simulators; it captures contention, bottlenecks, and transfer
// completion times without simulating packets.
package network

import (
	"fmt"
	"math"
	"sort"

	"github.com/tgsim/tgmod/internal/des"
)

// Link is a directed capacity constraint, in bytes/second.
type Link struct {
	ID   string
	Bps  float64
	used float64
}

// Topology is a star WAN: every site has an ingress and egress access link
// to an over-provisioned backbone, which matches how TeraGrid sites hung
// off dedicated 10–30 Gb/s connections. A transfer from A to B traverses
// A's egress link and B's ingress link.
type Topology struct {
	egress  map[string]*Link
	ingress map[string]*Link
	// backbone, when non-nil, is a shared capacity every inter-site flow
	// also traverses; nil models an over-provisioned core.
	backbone *Link
	// RTT between each pair of sites, seconds; used as a fixed startup
	// latency per transfer.
	rtt map[[2]string]float64
}

// NewTopology returns an empty topology with an over-provisioned backbone.
func NewTopology() *Topology {
	return &Topology{
		egress:  make(map[string]*Link),
		ingress: make(map[string]*Link),
		rtt:     make(map[[2]string]float64),
	}
}

// SetBackbone constrains the shared core to gbps gigabits/s. All inter-site
// flows contend for it in addition to their access links; pass 0 to remove
// the constraint.
func (t *Topology) SetBackbone(gbps float64) {
	if gbps <= 0 {
		t.backbone = nil
		return
	}
	t.backbone = &Link{ID: "backbone", Bps: gbps * 1e9 / 8}
}

// AddSite attaches a site with symmetric access bandwidth gbps (gigabits/s)
// to the backbone.
func (t *Topology) AddSite(site string, gbps float64) error {
	if gbps <= 0 {
		return fmt.Errorf("network: site %s: non-positive bandwidth", site)
	}
	if _, dup := t.egress[site]; dup {
		return fmt.Errorf("network: duplicate site %s", site)
	}
	bps := gbps * 1e9 / 8
	t.egress[site] = &Link{ID: site + "-out", Bps: bps}
	t.ingress[site] = &Link{ID: site + "-in", Bps: bps}
	return nil
}

// SetRTT records the round-trip time between two sites (symmetric).
func (t *Topology) SetRTT(a, b string, seconds float64) {
	t.rtt[[2]string{a, b}] = seconds
	t.rtt[[2]string{b, a}] = seconds
}

// RTT returns the round-trip time between two sites, defaulting to 40 ms
// for unspecified pairs and 0 for intra-site movement.
func (t *Topology) RTT(a, b string) float64 {
	if a == b {
		return 0
	}
	if v, ok := t.rtt[[2]string{a, b}]; ok {
		return v
	}
	return 0.04
}

// Transfer is a bulk data movement between two sites.
type Transfer struct {
	ID        int64
	Src, Dst  string
	Bytes     int64
	Streams   int // parallel TCP streams (striping); ≥1
	StartedAt des.Time
	EndedAt   des.Time
	// Campaign/ownership attributes carried into accounting.
	User    string
	Project string
	JobID   int64 // staging transfers reference the job they serve; 0 if none

	// Retries counts how many failed attempts preceded this one (set by
	// Restart). Aborted marks a transfer killed by a network partition; an
	// aborted transfer's done hook never fires — the resilience layer
	// decides whether to Restart it.
	Retries int
	Aborted bool

	remaining float64
	rate      float64 // current fluid rate, bytes/s
	done      func(*Transfer)
	links     []*Link
}

// Duration returns the wall-clock time the transfer took (valid once done).
func (tr *Transfer) Duration() des.Time { return tr.EndedAt - tr.StartedAt }

// EffectiveBps returns the achieved mean throughput (valid once done).
func (tr *Transfer) EffectiveBps() float64 {
	d := float64(tr.Duration())
	if d <= 0 {
		return 0
	}
	return float64(tr.Bytes) / d
}

// Fabric executes transfers over a topology under max-min fair sharing.
type Fabric struct {
	K *des.Kernel
	T *Topology
	// OnStart and OnComplete, when non-nil, observe transfer lifecycle:
	// OnStart fires when a transfer is accepted (before any data moves),
	// OnComplete when the last byte lands, before the caller's done hook.
	OnStart    func(*Transfer)
	OnComplete func(*Transfer)
	// OnAbort, when non-nil, observes transfers killed by a partition
	// (see AbortSite), after Aborted/EndedAt are set.
	OnAbort func(*Transfer)
	active  map[int64]*Transfer
	nextID  int64
	// linkScale maps a link to its current capacity factor during a fault
	// window: (0,1) degraded, 0 partitioned. Absent means full capacity.
	// Lazily allocated so fault-free fabrics carry no extra state.
	linkScale map[*Link]float64
	// recompute event bookkeeping: at most one pending completion event;
	// when rates change the event is re-derived.
	wake des.Timer
	// Statistics.
	completed     uint64
	aborted       uint64
	bytesMoved    float64
	intraSite     uint64
	lastAccumAt   des.Time
	lastAdvance   des.Time           // last instant flow progress was integrated
	busyIntegrals map[string]float64 // per egress link: byte-seconds of use
}

// NewFabric returns a fabric over topology t driven by kernel k.
func NewFabric(k *des.Kernel, t *Topology) *Fabric {
	return &Fabric{
		K:             k,
		T:             t,
		active:        make(map[int64]*Transfer),
		busyIntegrals: make(map[string]float64),
	}
}

// Active returns the number of in-flight transfers.
func (f *Fabric) Active() int { return len(f.active) }

// Completed returns the number of finished transfers.
func (f *Fabric) Completed() uint64 { return f.completed }

// Aborted returns the number of transfers killed by partitions.
func (f *Fabric) Aborted() uint64 { return f.aborted }

// BytesMoved returns total bytes delivered across all finished and
// in-flight transfers.
func (f *Fabric) BytesMoved() float64 { return f.bytesMoved }

// LinkUtilization returns the time-averaged utilization of a site's egress
// link since simulation start.
func (f *Fabric) LinkUtilization(site string) float64 {
	l, ok := f.T.egress[site]
	if !ok {
		return 0
	}
	f.accumulate()
	total := l.Bps * float64(f.K.Now())
	if total == 0 {
		return 0
	}
	return f.busyIntegrals[site] / total
}

func (f *Fabric) accumulate() {
	now := f.K.Now()
	dt := float64(now - f.lastAccumAt)
	if dt > 0 {
		for site, l := range f.T.egress {
			f.busyIntegrals[site] += l.used * dt
		}
	}
	f.lastAccumAt = now
}

// Start begins a transfer; done (may be nil) is invoked at completion.
// Intra-site transfers complete after a fixed local-copy time derived from
// an assumed 2 GB/s filesystem-to-filesystem path.
func (f *Fabric) Start(src, dst string, bytes int64, streams int, done func(*Transfer)) (*Transfer, error) {
	return f.StartOwned(src, dst, bytes, streams, Ownership{}, done)
}

// Ownership attributes a transfer to the work it serves.
type Ownership struct {
	User    string
	Project string
	JobID   int64
}

// StartOwned is Start with ownership attribution applied before the
// OnStart hook fires, so lifecycle observers (span recorders, telemetry)
// see the user/project/job binding from the first instant instead of a
// post-hoc assignment racing the hook.
func (f *Fabric) StartOwned(src, dst string, bytes int64, streams int, own Ownership, done func(*Transfer)) (*Transfer, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("network: non-positive transfer size %d", bytes)
	}
	if streams < 1 {
		streams = 1
	}
	f.nextID++
	tr := &Transfer{
		ID: f.nextID, Src: src, Dst: dst, Bytes: bytes, Streams: streams,
		StartedAt: f.K.Now(), remaining: float64(bytes), done: done,
		User: own.User, Project: own.Project, JobID: own.JobID,
	}
	if src == dst {
		f.intraSite++
		if f.OnStart != nil {
			f.OnStart(tr)
		}
		const localBps = 2e9
		dur := des.Time(float64(bytes) / localBps)
		f.K.ScheduleNamed(dur, "xfer-local", func(*des.Kernel) {
			tr.EndedAt = f.K.Now()
			f.completed++
			f.bytesMoved += float64(bytes)
			if f.OnComplete != nil {
				f.OnComplete(tr)
			}
			if tr.done != nil {
				tr.done(tr)
			}
		})
		return tr, nil
	}
	out, ok := f.T.egress[src]
	if !ok {
		return nil, fmt.Errorf("network: unknown source site %s", src)
	}
	in, ok := f.T.ingress[dst]
	if !ok {
		return nil, fmt.Errorf("network: unknown destination site %s", dst)
	}
	tr.links = []*Link{out, in}
	if f.T.backbone != nil {
		tr.links = append(tr.links, f.T.backbone)
	}
	if f.OnStart != nil {
		f.OnStart(tr)
	}
	// Startup latency: control-channel setup plus striping negotiation,
	// a few RTTs. After it elapses the flow joins the fluid model.
	setup := des.Time(3 * f.T.RTT(src, dst))
	f.K.ScheduleNamed(setup, "xfer-start", func(*des.Kernel) {
		f.advance()
		f.active[tr.ID] = tr
		f.reshare()
	})
	return tr, nil
}

// streamCap returns the per-flow throughput ceiling implied by TCP over a
// long fat pipe: striped flows get a higher ceiling. The constants model a
// well-tuned host pair achieving ~0.5 Gb/s per stream on a 40 ms path.
func (f *Fabric) streamCap(tr *Transfer) float64 {
	rtt := f.T.RTT(tr.Src, tr.Dst)
	if rtt <= 0 {
		return math.Inf(1)
	}
	const windowBytes = 4 << 20 // 4 MiB effective window per stream
	return float64(tr.Streams) * windowBytes / rtt
}

// reshare recomputes all flow rates (max-min fair progressive filling) and
// re-arms the next-completion event.
func (f *Fabric) reshare() {
	// Reset link loads.
	for _, l := range f.T.egress {
		l.used = 0
	}
	for _, l := range f.T.ingress {
		l.used = 0
	}
	if f.T.backbone != nil {
		f.T.backbone.used = 0
	}
	unfixed := make([]*Transfer, 0, len(f.active))
	for _, tr := range f.active {
		tr.rate = 0
		unfixed = append(unfixed, tr)
	}
	sort.Slice(unfixed, func(i, j int) bool { return unfixed[i].ID < unfixed[j].ID })

	// Progressive filling: repeatedly find the bottleneck link (smallest
	// fair share), fix its flows at that share, remove the link, repeat.
	// Flows may also be fixed at their per-stream TCP ceiling.
	remCap := make(map[*Link]float64)
	flowsOn := make(map[*Link][]*Transfer)
	for _, tr := range unfixed {
		for _, l := range tr.links {
			flowsOn[l] = append(flowsOn[l], tr)
			remCap[l] = l.Bps * f.scaleOf(l)
		}
	}
	fixed := make(map[*Transfer]bool)
	for len(fixed) < len(unfixed) {
		// Fair share per link over its unfixed flows.
		var bottleneck *Link
		share := math.Inf(1)
		for l, flows := range flowsOn {
			n := 0
			for _, tr := range flows {
				if !fixed[tr] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			s := remCap[l] / float64(n)
			if s < share || (s == share && (bottleneck == nil || l.ID < bottleneck.ID)) {
				share = s
				bottleneck = l
			}
		}
		if bottleneck == nil {
			break
		}
		// Any unfixed flow whose TCP ceiling is below the share is capped
		// there instead; handle those first (they free capacity).
		capped := false
		for _, tr := range unfixed {
			if fixed[tr] {
				continue
			}
			if c := f.streamCap(tr); c < share {
				tr.rate = c
				fixed[tr] = true
				for _, l := range tr.links {
					remCap[l] -= c
				}
				capped = true
			}
		}
		if capped {
			continue // shares changed; recompute
		}
		for _, tr := range flowsOn[bottleneck] {
			if fixed[tr] {
				continue
			}
			tr.rate = share
			fixed[tr] = true
			for _, l := range tr.links {
				remCap[l] -= share
			}
		}
	}
	for _, tr := range unfixed {
		for _, l := range tr.links {
			l.used += tr.rate
		}
	}
	// De-duplicate: each flow uses one egress and one ingress; "used" on
	// each is the sum of its flows' rates — computed above by adding each
	// flow to both links, which double-counts per link set but not per
	// link. (Each link sees each of its flows once.)
	f.rearm()
}

// advance progresses all active flows to the current instant.
func (f *Fabric) advance() {
	f.accumulate()
	now := f.K.Now()
	dt := float64(now - f.lastAdvance)
	if dt <= 0 {
		f.lastAdvance = now
		return
	}
	// Integrate progress first, then fire completions in transfer-ID order:
	// two flows finishing in the same advance must invoke their callbacks
	// (which can submit jobs and consume random draws) in a deterministic
	// order, not map order.
	var finished []*Transfer
	for id, tr := range f.active {
		tr.remaining -= tr.rate * dt
		f.bytesMoved += tr.rate * dt
		// Sub-byte residues are float rounding, not data: complete them.
		if tr.remaining < 0.5 {
			delete(f.active, id)
			finished = append(finished, tr)
		}
	}
	f.lastAdvance = now
	sort.Slice(finished, func(i, j int) bool { return finished[i].ID < finished[j].ID })
	for _, tr := range finished {
		tr.EndedAt = now
		f.completed++
		if f.OnComplete != nil {
			f.OnComplete(tr)
		}
		if tr.done != nil {
			tr.done(tr)
		}
	}
}

// ---- Fault windows (injection interface) ----

// scaleOf returns a link's current capacity factor.
func (f *Fabric) scaleOf(l *Link) float64 {
	if f.linkScale == nil {
		return 1
	}
	if s, ok := f.linkScale[l]; ok {
		return s
	}
	return 1
}

// SetSiteDegraded scales a site's access links (both directions) by factor:
// 1 restores full capacity, (0,1) degrades, 0 partitions the site (flows
// stall at zero rate until restored). In-flight progress is integrated
// before the change so rates switch exactly at the current instant.
func (f *Fabric) SetSiteDegraded(site string, factor float64) error {
	out, ok := f.T.egress[site]
	if !ok {
		return fmt.Errorf("network: unknown site %s", site)
	}
	in := f.T.ingress[site]
	f.advance()
	if factor >= 1 {
		if f.linkScale != nil {
			delete(f.linkScale, out)
			delete(f.linkScale, in)
		}
	} else {
		if factor < 0 {
			factor = 0
		}
		if f.linkScale == nil {
			f.linkScale = make(map[*Link]float64)
		}
		f.linkScale[out] = factor
		f.linkScale[in] = factor
	}
	f.reshare()
	return nil
}

// AbortSite kills every in-flight inter-site transfer touching site,
// returning the victims in ID order. Victims get Aborted/EndedAt set and
// are reported through OnAbort; their done hooks do NOT fire — the caller
// owns the decision to Restart. Transfers still in connection setup are
// not yet active and simply stall once they join a partitioned link.
func (f *Fabric) AbortSite(site string) []*Transfer {
	f.advance()
	var victims []*Transfer
	for _, tr := range f.active {
		if tr.Src == site || tr.Dst == site {
			victims = append(victims, tr)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].ID < victims[j].ID })
	now := f.K.Now()
	for _, tr := range victims {
		delete(f.active, tr.ID)
		tr.Aborted = true
		tr.EndedAt = now
		f.aborted++
		if f.OnAbort != nil {
			f.OnAbort(tr)
		}
	}
	if len(victims) > 0 {
		f.reshare()
	}
	return victims
}

// Restart re-submits an aborted transfer from byte zero with the same
// endpoints, size, striping, and ownership, carrying the retry count
// forward. The original's done hook transfers to the new attempt.
func (f *Fabric) Restart(tr *Transfer) (*Transfer, error) {
	nt, err := f.StartOwned(tr.Src, tr.Dst, tr.Bytes, tr.Streams,
		Ownership{User: tr.User, Project: tr.Project, JobID: tr.JobID}, tr.done)
	if err != nil {
		return nil, err
	}
	nt.Retries = tr.Retries + 1
	return nt, nil
}

// rearm schedules the wake event at the earliest projected completion.
func (f *Fabric) rearm() {
	if f.wake.Pending() {
		f.K.Cancel(f.wake)
	}
	f.wake = des.Timer{}
	if len(f.active) == 0 {
		return
	}
	soonest := des.Forever
	for _, tr := range f.active {
		if tr.rate <= 0 {
			continue
		}
		eta := des.Time(tr.remaining / tr.rate)
		if eta < 0 {
			eta = 0
		}
		if f.K.Now()+eta < soonest {
			soonest = f.K.Now() + eta
		}
	}
	if soonest == des.Forever {
		return
	}
	// Guarantee forward progress: a wake at (or rounding to) the current
	// instant would integrate zero elapsed time and re-arm forever.
	now := f.K.Now()
	minStep := des.Time(1e-6)
	if eps := now * 1e-9; eps > minStep {
		minStep = eps
	}
	if soonest <= now+minStep {
		soonest = now + minStep
	}
	f.wake = f.K.AtNamed(soonest, "xfer-complete", func(*des.Kernel) {
		f.wake = des.Timer{}
		f.advance()
		f.reshare()
	})
}
