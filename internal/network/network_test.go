package network

import (
	"math"
	"testing"

	"github.com/tgsim/tgmod/internal/des"
)

// topo builds a 3-site star with generous 10 Gb/s access links and zero
// latency (so transfer times are pure bandwidth effects in tests).
func topo(t *testing.T) *Topology {
	t.Helper()
	tp := NewTopology()
	for _, s := range []string{"a", "b", "c"} {
		if err := tp.AddSite(s, 10); err != nil {
			t.Fatal(err)
		}
	}
	tp.SetRTT("a", "b", 0)
	tp.SetRTT("a", "c", 0)
	tp.SetRTT("b", "c", 0)
	return tp
}

func TestAddSiteErrors(t *testing.T) {
	tp := NewTopology()
	if err := tp.AddSite("a", 0); err == nil {
		t.Error("zero-bandwidth site accepted")
	}
	if err := tp.AddSite("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddSite("a", 10); err == nil {
		t.Error("duplicate site accepted")
	}
}

func TestRTTDefaults(t *testing.T) {
	tp := NewTopology()
	if got := tp.RTT("x", "x"); got != 0 {
		t.Errorf("intra-site RTT = %v, want 0", got)
	}
	if got := tp.RTT("x", "y"); got != 0.04 {
		t.Errorf("default RTT = %v, want 0.04", got)
	}
	tp.SetRTT("x", "y", 0.1)
	if tp.RTT("y", "x") != 0.1 {
		t.Error("RTT not symmetric")
	}
}

func TestSingleTransferSaturatesLink(t *testing.T) {
	k := des.New()
	f := NewFabric(k, topo(t))
	// 10 Gb/s = 1.25e9 B/s. 1.25 GB should take 1 s at link speed, but the
	// per-stream TCP cap is infinite at RTT 0, so the link is the limit.
	var done *Transfer
	_, err := f.Start("a", "b", 1_250_000_000, 4, func(tr *Transfer) { done = tr })
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if done == nil {
		t.Fatal("transfer did not complete")
	}
	if math.Abs(float64(done.Duration())-1) > 1e-6 {
		t.Errorf("duration = %v, want 1s", done.Duration())
	}
	if f.Completed() != 1 {
		t.Errorf("Completed = %d, want 1", f.Completed())
	}
}

func TestFairSharing(t *testing.T) {
	k := des.New()
	f := NewFabric(k, topo(t))
	// Two equal flows leaving site a: each gets half the egress link, so
	// each 1.25 GB transfer takes 2 s.
	var ends []des.Time
	for i := 0; i < 2; i++ {
		if _, err := f.Start("a", "b", 1_250_000_000, 1, func(tr *Transfer) {
			ends = append(ends, tr.EndedAt)
		}); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if len(ends) != 2 {
		t.Fatal("transfers did not complete")
	}
	for _, e := range ends {
		if math.Abs(float64(e)-2) > 1e-6 {
			t.Errorf("end = %v, want 2s under fair sharing", e)
		}
	}
}

func TestDistinctDestinationsShareEgressOnly(t *testing.T) {
	k := des.New()
	f := NewFabric(k, topo(t))
	// a→b and a→c share a's egress; ingress links are uncontended. Each
	// gets half of a's egress.
	var ends []des.Time
	for _, dst := range []string{"b", "c"} {
		if _, err := f.Start("a", dst, 625_000_000, 1, func(tr *Transfer) {
			ends = append(ends, tr.EndedAt)
		}); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	for _, e := range ends {
		if math.Abs(float64(e)-1) > 1e-6 {
			t.Errorf("end = %v, want 1s (half of 10 Gb/s each)", e)
		}
	}
}

func TestEarlyFinisherReleasesBandwidth(t *testing.T) {
	k := des.New()
	f := NewFabric(k, topo(t))
	// Flow 1: 0.625 GB, flow 2: 1.25 GB, both a→b. Phase 1: both at
	// 0.625 GB/s; flow 1 done at t=1 having moved 0.625. Flow 2 has 0.625
	// left, now at full 1.25 GB/s → finishes at 1.5.
	var end2 des.Time
	if _, err := f.Start("a", "b", 625_000_000, 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Start("a", "b", 1_250_000_000, 1, func(tr *Transfer) { end2 = tr.EndedAt }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if math.Abs(float64(end2)-1.5) > 1e-6 {
		t.Errorf("large flow end = %v, want 1.5s", end2)
	}
}

func TestStreamCapLimits(t *testing.T) {
	k := des.New()
	tp := topo(t)
	tp.SetRTT("a", "b", 0.04) // 1 stream cap = 4MiB/0.04 = 104.86 MB/s
	f := NewFabric(k, tp)
	var tr1 *Transfer
	if _, err := f.Start("a", "b", 104_857_600, 1, func(tr *Transfer) { tr1 = tr }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if tr1 == nil {
		t.Fatal("no completion")
	}
	// 100 MiB at 104.86 MB/s ≈ 1 s (plus 3*RTT setup).
	want := 104_857_600.0/(4*1024*1024/0.04) + 3*0.04
	if math.Abs(float64(tr1.Duration())-want) > 0.01 {
		t.Errorf("duration = %v, want ~%v (stream-capped)", tr1.Duration(), want)
	}
	// Striping with 8 streams should be ~8x faster (still under link cap).
	k2 := des.New()
	f2 := NewFabric(k2, tp)
	var tr8 *Transfer
	if _, err := f2.Start("a", "b", 104_857_600, 8, func(tr *Transfer) { tr8 = tr }); err != nil {
		t.Fatal(err)
	}
	k2.Run()
	if tr8.Duration() >= tr1.Duration() {
		t.Errorf("striped duration %v not faster than single-stream %v", tr8.Duration(), tr1.Duration())
	}
}

func TestIntraSiteTransfer(t *testing.T) {
	k := des.New()
	f := NewFabric(k, topo(t))
	var done bool
	if _, err := f.Start("a", "a", 2_000_000_000, 1, func(*Transfer) { done = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !done {
		t.Fatal("intra-site transfer did not complete")
	}
	if k.Now() != 1 { // 2 GB at 2 GB/s
		t.Errorf("intra-site copy took %v, want 1s", k.Now())
	}
}

func TestStartErrors(t *testing.T) {
	k := des.New()
	f := NewFabric(k, topo(t))
	if _, err := f.Start("a", "b", 0, 1, nil); err == nil {
		t.Error("zero-byte transfer accepted")
	}
	if _, err := f.Start("nowhere", "b", 1, 1, nil); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := f.Start("a", "nowhere", 1, 1, nil); err == nil {
		t.Error("unknown destination accepted")
	}
}

func TestLinkUtilization(t *testing.T) {
	k := des.New()
	f := NewFabric(k, topo(t))
	if _, err := f.Start("a", "b", 1_250_000_000, 1, nil); err != nil {
		t.Fatal(err)
	}
	k.Run()       // busy 1 s at 100%
	k.RunUntil(2) // idle 1 s
	got := f.LinkUtilization("a")
	if math.Abs(got-0.5) > 0.01 {
		t.Errorf("egress utilization = %v, want 0.5", got)
	}
	if f.LinkUtilization("nope") != 0 {
		t.Error("unknown site utilization should be 0")
	}
}

func TestManyFlowsConservation(t *testing.T) {
	k := des.New()
	f := NewFabric(k, topo(t))
	const n = 20
	const each = 100_000_000
	var completed int
	for i := 0; i < n; i++ {
		src, dst := "a", "b"
		if i%3 == 1 {
			src, dst = "b", "c"
		} else if i%3 == 2 {
			src, dst = "c", "a"
		}
		at := des.Time(i) * 0.1
		k.At(at, func(*des.Kernel) {
			if _, err := f.Start(src, dst, each, 2, func(*Transfer) { completed++ }); err != nil {
				t.Error(err)
			}
		})
	}
	k.Run()
	if completed != n {
		t.Fatalf("completed %d of %d transfers", completed, n)
	}
	if math.Abs(f.BytesMoved()-n*each) > n {
		t.Errorf("BytesMoved = %v, want %v", f.BytesMoved(), n*each)
	}
	if f.Active() != 0 {
		t.Errorf("Active = %d at end, want 0", f.Active())
	}
}

func TestBackboneBottleneck(t *testing.T) {
	k := des.New()
	tp := topo(t)
	tp.SetBackbone(10) // backbone equals one access link
	f := NewFabric(k, tp)
	// Two flows on disjoint site pairs: a→b and b→c. Without a backbone
	// they would each run at 10 Gb/s; sharing a 10 Gb/s core halves them.
	var ends []des.Time
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}} {
		if _, err := f.Start(pair[0], pair[1], 1_250_000_000, 1, func(tr *Transfer) {
			ends = append(ends, tr.EndedAt)
		}); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if len(ends) != 2 {
		t.Fatal("transfers did not complete")
	}
	for _, e := range ends {
		if math.Abs(float64(e)-2) > 1e-6 {
			t.Errorf("end = %v, want 2s (backbone-shared)", e)
		}
	}
	// Removing the backbone restores full speed.
	tp.SetBackbone(0)
	k2 := des.New()
	f2 := NewFabric(k2, tp)
	var end des.Time
	if _, err := f2.Start("a", "b", 1_250_000_000, 1, func(tr *Transfer) { end = tr.EndedAt }); err != nil {
		t.Fatal(err)
	}
	k2.Run()
	if math.Abs(float64(end)-1) > 1e-6 {
		t.Errorf("end = %v, want 1s without backbone", end)
	}
}
