package workload

import (
	"testing"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/gateway"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/metasched"
	"github.com/tgsim/tgmod/internal/network"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/simrand"
	"github.com/tgsim/tgmod/internal/storage"
	"github.com/tgsim/tgmod/internal/trace"
	"github.com/tgsim/tgmod/internal/users"
	"github.com/tgsim/tgmod/internal/workflow"
)

func TestDrawRuntimeBounds(t *testing.T) {
	rng := simrand.New(1)
	for i := 0; i < 20000; i++ {
		v := DrawRuntime(rng, 3600, 1.5)
		if v < 30 || v > 5*24*3600 {
			t.Fatalf("runtime out of bounds: %v", v)
		}
	}
}

func TestDrawWalltimePadsAndRounds(t *testing.T) {
	rng := simrand.New(2)
	for i := 0; i < 10000; i++ {
		run := DrawRuntime(rng, 3600, 1)
		w := DrawWalltime(rng, run)
		if w < run {
			t.Fatalf("walltime %v below runtime %v", w, run)
		}
		if int64(w)%900 != 0 {
			t.Fatalf("walltime %v not on 15-minute granularity", w)
		}
		if w > 7*24*3600 {
			t.Fatalf("walltime %v above 7-day cap", w)
		}
	}
}

func TestDrawCores(t *testing.T) {
	rng := simrand.New(3)
	p2 := 0
	for i := 0; i < 20000; i++ {
		c := DrawCores(rng, 0, 8, 1024)
		if c < 1 || c > 1024 {
			t.Fatalf("cores out of range: %d", c)
		}
		if c&(c-1) == 0 {
			p2++
		}
	}
	if frac := float64(p2) / 20000; frac < 0.7 {
		t.Errorf("power-of-two fraction = %v, want > 0.7", frac)
	}
	// Clamping respects max.
	for i := 0; i < 1000; i++ {
		if c := DrawCores(rng, 5, 10, 100); c > 100 || c < 1 {
			t.Fatalf("clamped cores out of range: %d", c)
		}
	}
}

func TestDiurnalRate(t *testing.T) {
	base := 100.0
	// Tuesday noon (day 1, hour 12): full rate.
	noon := des.Time(1*86400 + 12*3600)
	if got := DiurnalRate(noon, base); got != 100 {
		t.Errorf("weekday noon rate = %v, want 100", got)
	}
	// Tuesday 3am: 40%.
	night := des.Time(1*86400 + 3*3600)
	if got := DiurnalRate(night, base); got != 40 {
		t.Errorf("weekday night rate = %v, want 40", got)
	}
	near := func(got, want float64) bool { return got > want-1e-9 && got < want+1e-9 }
	// Saturday noon (day 5): 55%.
	satNoon := des.Time(5*86400 + 12*3600)
	if got := DiurnalRate(satNoon, base); !near(got, 55) {
		t.Errorf("weekend noon rate = %v, want 55", got)
	}
	// Saturday night: both factors.
	satNight := des.Time(5*86400 + 2*3600)
	if got := DiurnalRate(satNight, base); !near(got, 22) {
		t.Errorf("weekend night rate = %v, want 22", got)
	}
}

func TestPoissonArrivalsStopAtHorizon(t *testing.T) {
	k := des.New()
	e := &Env{K: k, Horizon: 1000}
	rng := simrand.New(4)
	count := 0
	last := des.Time(0)
	PoissonArrivals(e, rng, 0.1, "arrival-test", func() {
		count++
		last = k.Now()
	})
	k.Run()
	if count == 0 {
		t.Fatal("no arrivals")
	}
	if last >= 1000 {
		t.Errorf("arrival at %v, after horizon", last)
	}
}

func TestPoissonArrivalsPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero rate accepted")
		}
	}()
	k := des.New()
	PoissonArrivals(&Env{K: k, Horizon: 10}, simrand.New(1), 0, "arrival-test", func() {})
}

func TestTracker(t *testing.T) {
	k := des.New()
	tr := NewTracker()
	sub := &nullSubmitter{}
	w, err := workflow.Chain("wf", "e", true, k, sub, []*job.Job{
		{ID: 1, Name: "a", User: "u", Project: "p", Cores: 1, RunTime: 10, ReqWalltime: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	j := sub.grab(t, w)
	tr.Watch(j, w)
	if tr.Tracked() != 1 {
		t.Errorf("Tracked = %d", tr.Tracked())
	}
	j.State = job.StateCompleted
	tr.JobFinished(j)
	if w.Completed() != 1 {
		t.Error("tracker did not route finish to workflow")
	}
	// Unknown jobs are ignored.
	tr.JobFinished(&job.Job{ID: 99})
}

type nullSubmitter struct{ jobs []*job.Job }

func (n *nullSubmitter) SubmitJob(j *job.Job) { n.jobs = append(n.jobs, j) }

func (n *nullSubmitter) grab(t *testing.T, w *workflow.Instance) *job.Job {
	t.Helper()
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	if len(n.jobs) == 0 {
		t.Fatal("no job released")
	}
	return n.jobs[0]
}

// testEnv builds a two-machine environment with all substrates.
func testEnv(t *testing.T, seed uint64) *Env {
	t.Helper()
	k := des.New()
	big := &grid.Machine{ID: "big", Site: "s1", Nodes: 128, CoresPerNode: 8,
		GFlopsPerCore: 4, NUPerCoreHour: 2, UrgentCapable: true, VizNodes: 8}
	small := &grid.Machine{ID: "small", Site: "s2", Nodes: 32, CoresPerNode: 8,
		GFlopsPerCore: 2, NUPerCoreHour: 1}
	scheds := map[string]*sched.Scheduler{
		"big":   sched.MustNamed(k, big, "easy"),
		"small": sched.MustNamed(k, small, "easy"),
	}
	pop, err := users.Synthesize(users.Config{Projects: 10, UsersPerProjMu: 0.5,
		UsersPerProjSd: 0.5, ActivityAlpha: 1.5}, simrand.Derive(seed, "pop"))
	if err != nil {
		t.Fatal(err)
	}
	brk := metasched.New(k, metasched.LeastLoaded, simrand.Derive(seed, "brk"),
		[]*sched.Scheduler{scheds["big"], scheds["small"]})
	ledger := accounting.NewLedger("s2")
	gw, err := gateway.New("nanohub", "nano-comm", "TG-GW", "nano", 0.9,
		k, simrand.Derive(seed, "gw"), submitTo(scheds["small"]), ledger)
	if err != nil {
		t.Fatal(err)
	}
	return &Env{
		K: k, Seed: seed, Horizon: 7 * des.Day,
		Pop:   pop,
		Sched: scheds, Broker: brk,
		Gateways: map[string]*gateway.Gateway{"nanohub": gw},
		Tracker:  NewTracker(),
	}
}

type schedSub struct{ s *sched.Scheduler }

func (ss schedSub) SubmitJob(j *job.Job) { ss.s.Submit(j) }

func submitTo(s *sched.Scheduler) gateway.Submitter { return schedSub{s} }

// drain runs the kernel and collects all finished jobs per machine.
func drain(e *Env) map[job.Modality][]*job.Job {
	byMod := make(map[job.Modality][]*job.Job)
	for _, s := range e.Sched {
		s.Subscribe(func(ev sched.Event) {
			if ev.Kind == sched.EventFinished {
				byMod[ev.Job.Truth.Modality] = append(byMod[ev.Job.Truth.Modality], ev.Job)
				e.Tracker.JobFinished(ev.Job)
			}
		})
	}
	e.K.Run()
	return byMod
}

func TestBatchGen(t *testing.T) {
	e := testEnv(t, 1)
	(&BatchGen{JobsPerDay: 80, CapabilityFrac: 0.05, MedianRuntime: 1800}).Start(e)
	byMod := drain(e)
	if len(byMod[job.ModBatchCapacity]) < 50 {
		t.Errorf("capacity jobs = %d, want many", len(byMod[job.ModBatchCapacity]))
	}
	if len(byMod[job.ModBatchCapability]) == 0 {
		t.Error("no capability jobs at 5% fraction over a week")
	}
	for _, j := range byMod[job.ModBatchCapability] {
		if j.Cores < e.Sched["big"].M.BatchCores()/2 {
			t.Errorf("capability job with %d cores; too small", j.Cores)
		}
		if j.Machine != "big" {
			t.Errorf("capability job on %s, want the largest machine", j.Machine)
		}
	}
	for _, j := range byMod[job.ModBatchCapacity] {
		if j.Attr.SubmitVia != "login" && j.Attr.SubmitVia != "gram" {
			t.Errorf("batch job via %q", j.Attr.SubmitVia)
		}
		if j.Attr.ScienceField == "" {
			t.Error("batch job missing science field")
		}
	}
}

func TestEnsembleGenBurstsAndCoverage(t *testing.T) {
	e := testEnv(t, 2)
	(&EnsembleGen{CampaignsPerDay: 3, JobsPerCampaign: 10, TagCoverage: 0.5,
		MedianRuntime: 600}).Start(e)
	byMod := drain(e)
	members := byMod[job.ModEnsemble]
	if len(members) < 30 {
		t.Fatalf("ensemble members = %d, want many", len(members))
	}
	campaigns := map[string][]*job.Job{}
	tagged := 0
	for _, j := range members {
		campaigns[j.Truth.CampaignID] = append(campaigns[j.Truth.CampaignID], j)
		if j.Attr.EnsembleID != "" {
			if j.Attr.EnsembleID != j.Truth.CampaignID {
				t.Error("tag does not match campaign")
			}
			tagged++
		}
	}
	frac := float64(tagged) / float64(len(members))
	if frac < 0.2 || frac > 0.8 {
		t.Errorf("tagged fraction = %v, want ~0.5", frac)
	}
	for id, js := range campaigns {
		if len(js) < 2 {
			t.Errorf("campaign %s has %d members", id, len(js))
		}
		// All members share name and cores (the inference signature).
		for _, j := range js[1:] {
			if j.Name != js[0].Name || j.Cores != js[0].Cores {
				t.Errorf("campaign %s members differ in name/cores", id)
			}
		}
	}
}

func TestWorkflowGenRunsToCompletion(t *testing.T) {
	e := testEnv(t, 3)
	(&WorkflowGen{CampaignsPerDay: 2, TaggedFrac: 0.5, Workers: 4, MedianTask: 600}).Start(e)
	byMod := drain(e)
	wf := byMod[job.ModWorkflow]
	if len(wf) < 10 {
		t.Fatalf("workflow tasks = %d, want many", len(wf))
	}
	taggedSeen, untaggedSeen := false, false
	for _, j := range wf {
		if j.Attr.WorkflowID != "" {
			taggedSeen = true
		} else {
			untaggedSeen = true
		}
		if j.Truth.CampaignID == "" {
			t.Error("workflow task missing campaign truth")
		}
	}
	if !taggedSeen || !untaggedSeen {
		t.Errorf("coverage mix wrong: tagged=%v untagged=%v", taggedSeen, untaggedSeen)
	}
}

func TestGatewayGen(t *testing.T) {
	e := testEnv(t, 4)
	(&GatewayGen{Gateway: "nanohub", RequestsPerDay: 60, EndUsers: 50, MedianRuntime: 300}).Start(e)
	byMod := drain(e)
	gwj := byMod[job.ModGateway]
	if len(gwj) < 30 {
		t.Fatalf("gateway jobs = %d, want many", len(gwj))
	}
	for _, j := range gwj {
		if j.User != "nano-comm" || j.Project != "TG-GW" {
			t.Fatalf("gateway job has identity %s/%s, want community account", j.User, j.Project)
		}
		if j.Attr.GatewayID != "nanohub" {
			t.Fatal("gateway job missing gateway attribute")
		}
	}
	if e.Gateways["nanohub"].Users() < 5 {
		t.Errorf("distinct end users = %d, want several", e.Gateways["nanohub"].Users())
	}
}

func TestUrgentAndInteractiveGens(t *testing.T) {
	e := testEnv(t, 5)
	(&UrgentGen{EventsPerWeek: 10, MedianRuntime: 900}).Start(e)
	(&InteractiveGen{SessionsPerDay: 10, MedianSession: 900}).Start(e)
	byMod := drain(e)
	if len(byMod[job.ModUrgent]) == 0 {
		t.Error("no urgent jobs")
	}
	for _, j := range byMod[job.ModUrgent] {
		if j.QOS != job.QOSUrgent || j.Machine != "big" {
			t.Errorf("urgent job misrouted: qos=%v machine=%s", j.QOS, j.Machine)
		}
	}
	if len(byMod[job.ModInteractive]) == 0 {
		t.Error("no interactive sessions")
	}
	for _, j := range byMod[job.ModInteractive] {
		if j.QOS != job.QOSInteractive {
			t.Error("interactive session with wrong QOS")
		}
		if j.Machine != "big" { // only machine with viz nodes
			t.Errorf("viz session on %s", j.Machine)
		}
	}
}

func TestMetaschedGen(t *testing.T) {
	e := testEnv(t, 6)
	(&MetaschedGen{JobsPerDay: 20, CoAllocFrac: 0.2, MedianRuntime: 900}).Start(e)
	byMod := drain(e)
	ms := byMod[job.ModMetascheduled]
	if len(ms) < 20 {
		t.Fatalf("metascheduled jobs = %d, want many", len(ms))
	}
	coalloc := 0
	for _, j := range ms {
		if j.Attr.CoAllocID != "" {
			coalloc++
		} else if j.Attr.BrokerJobID == "" {
			t.Error("metascheduled job carries no broker evidence at full coverage")
		}
	}
	if e.Broker.Routed() == 0 {
		t.Error("broker routed nothing")
	}
}

func TestDataCentricGenStages(t *testing.T) {
	e := testEnv(t, 7)
	// Wire a stager over a 2-site fabric.
	topo := networkTopo(t)
	fabric := networkFabric(e.K, topo)
	e.Stager = storage.NewStager(e.K, fabric)
	e.DataHomeSite = map[string]string{}
	for _, p := range e.Pop.Projects {
		e.DataHomeSite[p] = "s1"
	}
	(&DataCentricGen{JobsPerDay: 10, MedianInputGB: 5, MedianRuntime: 600}).Start(e)
	byMod := drain(e)
	dc := byMod[job.ModDataCentric]
	if len(dc) < 10 {
		t.Fatalf("data-centric jobs = %d, want many", len(dc))
	}
	if e.Stager.Staged() == 0 {
		t.Error("no staging transfers happened")
	}
	for _, j := range dc {
		if j.InputBytes <= 0 || j.OutputBytes <= 0 {
			t.Error("data-centric job without data")
		}
	}
}

func networkTopo(t *testing.T) *network.Topology {
	t.Helper()
	topo := network.NewTopology()
	for _, s := range []string{"s1", "s2"} {
		if err := topo.AddSite(s, 10); err != nil {
			t.Fatal(err)
		}
	}
	return topo
}

func networkFabric(k *des.Kernel, topo *network.Topology) *network.Fabric {
	return network.NewFabric(k, topo)
}

func TestEnvHelpers(t *testing.T) {
	e := testEnv(t, 8)
	ms := e.Machines()
	if len(ms) != 2 || ms[0] != "big" || ms[1] != "small" {
		t.Errorf("Machines = %v", ms)
	}
	id1, id2 := e.NewJobID(), e.NewJobID()
	if id2 != id1+1 || e.JobsCreated() != 2 {
		t.Error("job ID allocation wrong")
	}
	j := &job.Job{ID: 1, Name: "x", User: "u", Project: "p", Cores: 1,
		RunTime: 10, ReqWalltime: 20}
	if err := e.SubmitDirect("nope", "login", j); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := e.SubmitDirect("big", "login", j); err != nil {
		t.Error(err)
	}
	e.K.Run()
}

func TestReplayGen(t *testing.T) {
	e := testEnv(t, 10)
	jobs := []trace.Job{
		{Number: 1, Submit: 0, Run: 100, Procs: 8, ReqProcs: 8, ReqTime: 200,
			Status: 1, UserID: 1, GroupID: 1, ExecID: 1, Queue: 1, Partition: 1},
		{Number: 2, Submit: 50, Run: 60, Procs: 4, ReqProcs: 4, ReqTime: -1,
			Status: 1, UserID: 2, GroupID: 1, ExecID: 2, Queue: 2, Partition: 1},
		{Number: 3, Submit: 100, Run: 0, Procs: 4}, // cancelled entry: skipped
		{Number: 4, Submit: 120, Run: 30, Procs: 1000000, ReqProcs: 1000000,
			ReqTime: 60, Status: 1, Queue: 1}, // clamped to machine size
	}
	(&ReplayGen{Jobs: jobs, Machine: "big"}).Start(e)
	byMod := drain(e)
	total := 0
	for _, js := range byMod {
		total += len(js)
	}
	if total != 3 {
		t.Fatalf("replayed %d jobs, want 3 (one skipped)", total)
	}
	if len(byMod[job.ModUrgent]) != 1 {
		t.Errorf("urgent queue mapping lost: %v", byMod)
	}
	for _, js := range byMod {
		for _, j := range js {
			if j.Cores > 1024 {
				t.Errorf("job not clamped: %d cores", j.Cores)
			}
			if !j.State.Terminal() {
				t.Errorf("replayed job not finished: %v", j.State)
			}
		}
	}
}

func TestReplayGenTimeScaleAndHorizon(t *testing.T) {
	e := testEnv(t, 11)
	e.Horizon = 100
	jobs := []trace.Job{
		{Number: 1, Submit: 40, Run: 10, Procs: 1, ReqTime: 20, Queue: 1},
		{Number: 2, Submit: 90, Run: 10, Procs: 1, ReqTime: 20, Queue: 1},
	}
	// TimeScale 2: submits at 80 and 180; the second is past the horizon.
	(&ReplayGen{Jobs: jobs, Machine: "small", TimeScale: 2}).Start(e)
	byMod := drain(e)
	total := 0
	for _, js := range byMod {
		total += len(js)
	}
	if total != 1 {
		t.Fatalf("replayed %d jobs, want 1 (horizon cut)", total)
	}
}

func TestDelayedGen(t *testing.T) {
	e := testEnv(t, 9)
	after := 3 * des.Day
	(&DelayedGen{After: after,
		Gen: &BatchGen{JobsPerDay: 80, MedianRuntime: 1800}}).Start(e)
	byMod := drain(e)
	total := 0
	for _, jobs := range byMod {
		for _, j := range jobs {
			total++
			if j.SubmitTime < after {
				t.Fatalf("job %d submitted at %v, before the %v delay", j.ID, j.SubmitTime, after)
			}
		}
	}
	if total == 0 {
		t.Fatal("delayed generator produced nothing in the remaining horizon")
	}

	// A delay at/past the horizon generates nothing at all.
	e2 := testEnv(t, 9)
	(&DelayedGen{After: e2.Horizon,
		Gen: &BatchGen{JobsPerDay: 80, MedianRuntime: 1800}}).Start(e2)
	if byMod := drain(e2); len(byMod) != 0 {
		t.Errorf("past-horizon delay still generated %d modalities", len(byMod))
	}

	// Zero delay is transparent.
	e3 := testEnv(t, 9)
	(&DelayedGen{Gen: &BatchGen{JobsPerDay: 80, MedianRuntime: 1800}}).Start(e3)
	if byMod := drain(e3); len(byMod) == 0 {
		t.Error("zero-delay wrapper generated nothing")
	}
}
