// Package workload synthesizes the federation's job streams. One generator
// per usage modality drives the substrate (schedulers, broker, gateways,
// workflow engine, stager) and stamps every job with its ground-truth
// modality label, giving the measurement framework a labeled corpus to be
// validated against — the thing production TeraGrid never had.
//
// Distributional choices follow standard parallel-workload modeling
// practice: lognormal runtimes, power-of-two-biased core counts, Poisson or
// bursty arrivals with diurnal modulation, heavy-tailed per-user activity.
package workload

import (
	"fmt"
	"math"
	"sort"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/gateway"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/metasched"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/simrand"
	"github.com/tgsim/tgmod/internal/storage"
	"github.com/tgsim/tgmod/internal/users"
	"github.com/tgsim/tgmod/internal/workflow"
)

// Env is the wiring generators run against. The scenario layer constructs
// it; tests stub the parts they need.
type Env struct {
	K        *des.Kernel
	Seed     uint64
	Horizon  des.Time // generators stop creating new work at the horizon
	Pop      *users.Population
	Sched    map[string]*sched.Scheduler // by machine ID
	Broker   *metasched.Broker
	Gateways map[string]*gateway.Gateway
	Stager   *storage.Stager
	Archives map[string]*storage.Archive
	// DataHomeSite maps projects to where their reference data lives.
	DataHomeSite map[string]string

	// Tracker routes terminal job events to workflow instances.
	Tracker *Tracker

	nextJobID job.ID
}

// NewJobID allocates the next unique job ID.
func (e *Env) NewJobID() job.ID {
	e.nextJobID++
	return e.nextJobID
}

// JobsCreated returns how many IDs have been allocated.
func (e *Env) JobsCreated() int64 { return int64(e.nextJobID) }

// Machines returns machine IDs sorted, for deterministic iteration.
func (e *Env) Machines() []string {
	out := make([]string, 0, len(e.Sched))
	for id := range e.Sched {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SubmitDirect submits to a specific machine with the given submission
// mechanism attribute ("login" for interactive shells, "gram" for remote
// grid submission).
func (e *Env) SubmitDirect(machine, via string, j *job.Job) error {
	s, ok := e.Sched[machine]
	if !ok {
		return fmt.Errorf("workload: unknown machine %s", machine)
	}
	j.Attr.SubmitVia = via
	s.Submit(j)
	return nil
}

// Generator is a workload source. Start schedules the generator's events;
// generators stop creating work once Env.Horizon passes.
type Generator interface {
	Name() string
	Start(e *Env)
}

// Tracker routes finished jobs back to the workflow instances that own
// them, and records campaign completion statistics.
type Tracker struct {
	byJob map[job.ID]*workflow.Instance
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{byJob: make(map[job.ID]*workflow.Instance)}
}

// Watch associates every job of a workflow instance as it is released.
// Generators call this for each task's job before starting the instance.
func (t *Tracker) Watch(j *job.Job, w *workflow.Instance) { t.byJob[j.ID] = w }

// JobFinished forwards a terminal job to its workflow, if any.
func (t *Tracker) JobFinished(j *job.Job) {
	if w, ok := t.byJob[j.ID]; ok {
		w.TaskFinished(j)
	}
}

// Tracked returns the number of tracked jobs.
func (t *Tracker) Tracked() int { return len(t.byJob) }

// ---- Shared distribution helpers ----

// DrawRuntime draws a job runtime from a lognormal with the given median
// (seconds) and shape, clamped to [30s, 5d].
func DrawRuntime(rng *simrand.Stream, medianSeconds, sigma float64) des.Time {
	v := rng.LogNormal(math.Log(medianSeconds), sigma)
	if v < 30 {
		v = 30
	}
	if v > 5*24*3600 {
		v = 5 * 24 * 3600
	}
	return des.Time(v)
}

// DrawWalltime draws the user's requested walltime: actual runtime padded
// by the well-documented overestimation habit (uniform 1.1–5x), rounded up
// to a 15-minute granularity, clamped to 7 days.
func DrawWalltime(rng *simrand.Stream, run des.Time) des.Time {
	factor := 1.1 + 3.9*rng.Float64()
	w := float64(run) * factor
	const gran = 900
	w = math.Ceil(w/gran) * gran
	if w > 7*24*3600 {
		w = 7 * 24 * 3600
	}
	return des.Time(w)
}

// DrawCores draws a parallel job size: power of two with probability 0.75
// (the dominant habit), otherwise uniform in range; always clamped to
// [1, max].
func DrawCores(rng *simrand.Stream, loExp, hiExp, max int) int {
	var c int
	if rng.Bool(0.75) {
		c = rng.PowerOfTwo(loExp, hiExp)
	} else {
		c = rng.IntRange(1<<uint(loExp), 1<<uint(hiExp))
	}
	if c > max {
		c = max
	}
	if c < 1 {
		c = 1
	}
	return c
}

// DiurnalRate modulates a base rate by hour-of-day and day-of-week: nights
// run at 40% and weekends at 55% of the weekday-daytime rate, matching the
// submission cycles in production traces.
func DiurnalRate(at des.Time, base float64) float64 {
	sec := float64(at)
	day := int(sec/86400) % 7
	hour := int(sec/3600) % 24
	rate := base
	if hour < 8 || hour >= 20 {
		rate *= 0.4
	}
	if day >= 5 {
		rate *= 0.55
	}
	return rate
}

// PoissonArrivals schedules fn at exponentially spaced times with a
// diurnally modulated rate (events/second at weekday peak) until the
// horizon. It uses thinning: draws at the peak rate and accepts with
// probability rate(t)/peak. The name labels every arrival event in kernel
// traces and the self-profiler (generators pass "arrival-<name>"), so the
// hottest event class in any simulation is attributable per generator.
func PoissonArrivals(e *Env, rng *simrand.Stream, peakRate float64, name string, fn func()) {
	if peakRate <= 0 {
		panic("workload: non-positive arrival rate")
	}
	// Arrival events dominate every simulation's event population; intern
	// the name once at generator setup so tracer and profiler maps across
	// all replications of a fleet share one backing string.
	name = des.Intern(name)
	var arm func()
	arm = func() {
		dt := des.Time(rng.Exp(peakRate))
		e.K.ScheduleNamed(dt, name, func(k *des.Kernel) {
			if k.Now() >= e.Horizon {
				return
			}
			if rng.Bool(DiurnalRate(k.Now(), peakRate) / peakRate) {
				fn()
			}
			arm()
		})
	}
	arm()
}
