package workload

import (
	"fmt"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/simrand"
	"github.com/tgsim/tgmod/internal/users"
)

// BatchGen produces ordinary batch HPC usage — the bulk of NUs. It covers
// two modalities with one mechanism: capacity jobs (small/medium parallel
// work) and capability jobs (hero-scale runs on the largest machine).
type BatchGen struct {
	// JobsPerDay is the weekday-peak submission rate across the cohort.
	JobsPerDay float64
	// CapabilityFrac is the fraction of submissions that are hero-scale.
	CapabilityFrac float64
	// MedianRuntime of capacity jobs in seconds; capability runs are 4x.
	MedianRuntime float64
}

// Name implements Generator.
func (g *BatchGen) Name() string { return "batch" }

// Start implements Generator.
func (g *BatchGen) Start(e *Env) {
	rng := simrand.Derive(e.Seed, "gen-batch")
	pick, err := users.NewWeightedPick(e.Pop.Users)
	if err != nil {
		panic("workload: batch generator needs a population: " + err.Error())
	}
	machines := e.Machines()
	// Per-user favorite machine: direct submitters overwhelmingly stick
	// to one or two resources.
	favorite := make(map[string]string)
	rate := g.JobsPerDay / 86400
	PoissonArrivals(e, rng, rate, "arrival-batch", func() {
		u := pick.Pick(rng)
		m, ok := favorite[u.Name]
		if !ok {
			m = machines[rng.Intn(len(machines))]
			favorite[u.Name] = m
		}
		s := e.Sched[m]
		maxCores := s.M.BatchCores()
		j := &job.Job{
			ID:      e.NewJobID(),
			User:    u.Name,
			Project: u.Project,
			Attr:    job.Attributes{ScienceField: u.Field},
		}
		if rng.Bool(g.CapabilityFrac) {
			// Hero run: ≥ half of the largest machine in the federation.
			m = g.largest(e)
			s = e.Sched[m]
			maxCores = s.M.BatchCores()
			j.Cores = maxCores / 2
			if rng.Bool(0.3) {
				j.Cores = maxCores // full-machine run
			}
			j.RunTime = DrawRuntime(rng, 4*g.MedianRuntime, 0.8)
			j.Name = fmt.Sprintf("hero-%s", u.Project)
			j.Truth.Modality = job.ModBatchCapability
		} else {
			j.Cores = DrawCores(rng, 0, 8, maxCores)
			j.RunTime = DrawRuntime(rng, g.MedianRuntime, 1.2)
			j.Name = fmt.Sprintf("run-%s-%02d", u.Name, rng.Intn(20))
			j.Truth.Modality = job.ModBatchCapacity
		}
		j.ReqWalltime = DrawWalltime(rng, j.RunTime)
		// 5% of users underestimate and get walltime-killed.
		if rng.Bool(0.05) {
			j.ReqWalltime = des.Time(float64(j.RunTime) * 0.8)
			if j.ReqWalltime < 30 {
				j.ReqWalltime = 30
			}
		}
		via := "login"
		if rng.Bool(0.25) {
			via = "gram" // remote grid submission
		}
		if err := e.SubmitDirect(m, via, j); err != nil {
			panic(err)
		}
	})
}

// largest returns the machine with the most batch cores.
func (g *BatchGen) largest(e *Env) string {
	best := ""
	bestCores := -1
	for _, id := range e.Machines() {
		if c := e.Sched[id].M.BatchCores(); c > bestCores {
			best, bestCores = id, c
		}
	}
	return best
}

// EnsembleGen produces high-throughput campaigns: bursts of many similar
// single- or few-core jobs (parameter sweeps, uncertainty quantification).
// Instrumentation: campaigns carry an ensemble tag with TagCoverage
// probability — untagged campaigns must be inferred by the measurement
// framework from name/size/burst similarity.
type EnsembleGen struct {
	CampaignsPerDay float64
	// JobsPerCampaign is the mean sweep width (geometric-ish spread).
	JobsPerCampaign int
	// TagCoverage is the probability a campaign's jobs carry EnsembleID.
	TagCoverage float64
	// MedianRuntime of sweep members, seconds.
	MedianRuntime float64
}

// Name implements Generator.
func (g *EnsembleGen) Name() string { return "ensemble" }

// Start implements Generator.
func (g *EnsembleGen) Start(e *Env) {
	rng := simrand.Derive(e.Seed, "gen-ensemble")
	pick, err := users.NewWeightedPick(e.Pop.Users)
	if err != nil {
		panic("workload: ensemble generator needs a population: " + err.Error())
	}
	machines := e.Machines()
	campaignN := 0
	rate := g.CampaignsPerDay / 86400
	PoissonArrivals(e, rng, rate, "arrival-ensemble", func() {
		u := pick.Pick(rng)
		m := machines[rng.Intn(len(machines))]
		maxCores := e.Sched[m].M.BatchCores()
		campaignN++
		campaign := fmt.Sprintf("ens-%05d", campaignN)
		tagged := rng.Bool(g.TagCoverage)
		n := 2 + rng.Intn(2*g.JobsPerCampaign) // width ∈ [2, 2·mean]
		cores := DrawCores(rng, 0, 4, maxCores)
		median := g.MedianRuntime
		name := fmt.Sprintf("sweep-%s-%02d", u.Name, rng.Intn(10))
		wall := DrawWalltime(rng, DrawRuntime(rng, median, 0.3)*2)
		for i := 0; i < n; i++ {
			j := &job.Job{
				ID:          e.NewJobID(),
				Name:        name,
				User:        u.Name,
				Project:     u.Project,
				Cores:       cores,
				RunTime:     DrawRuntime(rng, median, 0.3),
				ReqWalltime: wall,
				Attr:        job.Attributes{ScienceField: u.Field},
				Truth:       job.Truth{Modality: job.ModEnsemble, CampaignID: campaign},
			}
			if tagged {
				j.Attr.EnsembleID = campaign
			}
			// Members land in a tight burst, seconds apart.
			delay := des.Time(float64(i) * (1 + rng.Float64()*10))
			jj := j
			mm := m
			e.K.ScheduleNamed(delay, "ens-submit", func(*des.Kernel) {
				if err := e.SubmitDirect(mm, "login", jj); err != nil {
					panic(err)
				}
			})
		}
	})
}

// InteractiveGen produces interactive/visualization sessions: short,
// business-hours, small-core sessions on viz-capable machines.
type InteractiveGen struct {
	SessionsPerDay float64
	MedianSession  float64 // seconds
}

// Name implements Generator.
func (g *InteractiveGen) Name() string { return "interactive" }

// Start implements Generator.
func (g *InteractiveGen) Start(e *Env) {
	rng := simrand.Derive(e.Seed, "gen-interactive")
	pick, err := users.NewWeightedPick(e.Pop.Users)
	if err != nil {
		panic("workload: interactive generator needs a population: " + err.Error())
	}
	// Only machines with a viz partition qualify.
	var vizMachines []string
	for _, id := range e.Machines() {
		if e.Sched[id].M.VizCores() > 0 {
			vizMachines = append(vizMachines, id)
		}
	}
	if len(vizMachines) == 0 {
		return
	}
	rate := g.SessionsPerDay / 86400
	PoissonArrivals(e, rng, rate, "arrival-interactive", func() {
		u := pick.Pick(rng)
		m := vizMachines[rng.Intn(len(vizMachines))]
		run := DrawRuntime(rng, g.MedianSession, 0.7)
		if run > 8*des.Hour {
			run = 8 * des.Hour
		}
		j := &job.Job{
			ID:          e.NewJobID(),
			Name:        fmt.Sprintf("viz-%s", u.Name),
			User:        u.Name,
			Project:     u.Project,
			Cores:       DrawCores(rng, 0, 3, e.Sched[m].M.VizCores()),
			RunTime:     run,
			ReqWalltime: run + des.Hour, // sessions reserve generous time
			QOS:         job.QOSInteractive,
			Attr:        job.Attributes{ScienceField: u.Field},
			Truth:       job.Truth{Modality: job.ModInteractive},
		}
		if err := e.SubmitDirect(m, "login", j); err != nil {
			panic(err)
		}
	})
}

// UrgentGen produces on-demand/urgent computing: rare external events
// (storm forecasts, aftershock models) that must run immediately on an
// urgent-capable machine.
type UrgentGen struct {
	EventsPerWeek float64
	MedianRuntime float64
}

// Name implements Generator.
func (g *UrgentGen) Name() string { return "urgent" }

// Start implements Generator.
func (g *UrgentGen) Start(e *Env) {
	rng := simrand.Derive(e.Seed, "gen-urgent")
	pick, err := users.NewWeightedPick(e.Pop.Users)
	if err != nil {
		panic("workload: urgent generator needs a population: " + err.Error())
	}
	var capable []string
	for _, id := range e.Machines() {
		if e.Sched[id].M.UrgentCapable {
			capable = append(capable, id)
		}
	}
	if len(capable) == 0 {
		return
	}
	rate := g.EventsPerWeek / float64(des.Week)
	PoissonArrivals(e, rng, rate, "arrival-urgent", func() {
		u := pick.Pick(rng)
		m := capable[rng.Intn(len(capable))]
		run := DrawRuntime(rng, g.MedianRuntime, 0.5)
		j := &job.Job{
			ID:          e.NewJobID(),
			Name:        "urgent-response",
			User:        u.Name,
			Project:     u.Project,
			Cores:       DrawCores(rng, 5, 9, e.Sched[m].M.BatchCores()),
			RunTime:     run,
			ReqWalltime: DrawWalltime(rng, run),
			QOS:         job.QOSUrgent,
			Attr:        job.Attributes{ScienceField: u.Field},
			Truth:       job.Truth{Modality: job.ModUrgent},
		}
		if err := e.SubmitDirect(m, "gram", j); err != nil {
			panic(err)
		}
	})
}
