package workload

import "github.com/tgsim/tgmod/internal/des"

// DelayedGen defers a wrapped generator's stream until a virtual-time
// offset: nothing is generated before After, and from After on the inner
// generator runs unchanged (its own arrival process, its own horizon
// check). This is the workload-shift primitive the drift experiment uses
// to inject a mid-run change of mix that an online classifier must notice.
type DelayedGen struct {
	// After is the virtual time the wrapped stream switches on. Zero or
	// negative starts it immediately (the wrapper disappears).
	After des.Time
	// Gen is the wrapped workload source.
	Gen Generator
}

// Name implements Generator.
func (g *DelayedGen) Name() string { return g.Gen.Name() + "-delayed" }

// Start implements Generator. The inner Start runs at After, so every
// derived RNG stream and arrival chain begins there; a delayed generator
// shares no state with an undelayed twin started at time zero.
func (g *DelayedGen) Start(e *Env) {
	if g.After <= 0 {
		g.Gen.Start(e)
		return
	}
	if g.After >= e.Horizon {
		return // would wake only to find the horizon passed
	}
	e.K.AtNamed(g.After, des.Intern("delayed-start-"+g.Gen.Name()),
		func(*des.Kernel) { g.Gen.Start(e) })
}
