package workload

import (
	"fmt"
	"math"

	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/simrand"
	"github.com/tgsim/tgmod/internal/users"
	"github.com/tgsim/tgmod/internal/workflow"
)

// WorkflowGen produces DAG workflow campaigns executed through the
// workflow engine. A fraction of instances use a "well-behaved" engine
// that tags released jobs with workflow attributes; the rest are homegrown
// scripts the measurement framework must infer.
type WorkflowGen struct {
	CampaignsPerDay float64
	// TaggedFrac is the fraction of instances run by an instrumented engine.
	TaggedFrac float64
	// Workers is the mean fan-out width.
	Workers int
	// MedianTask is the median task runtime, seconds.
	MedianTask float64
}

// Name implements Generator.
func (g *WorkflowGen) Name() string { return "workflow" }

// Start implements Generator.
func (g *WorkflowGen) Start(e *Env) {
	rng := simrand.Derive(e.Seed, "gen-workflow")
	pick, err := users.NewWeightedPick(e.Pop.Users)
	if err != nil {
		panic("workload: workflow generator needs a population: " + err.Error())
	}
	machines := e.Machines()
	n := 0
	rate := g.CampaignsPerDay / 86400
	PoissonArrivals(e, rng, rate, "arrival-workflow", func() {
		u := pick.Pick(rng)
		m := machines[rng.Intn(len(machines))]
		s := e.Sched[m]
		maxCores := s.M.BatchCores()
		n++
		id := fmt.Sprintf("wf-%05d", n)
		tagged := rng.Bool(g.TaggedFrac)
		engine := "homegrown-script"
		if tagged {
			engine = "pegasus"
		}
		mkTask := func(sigma float64, coresHi int) *job.Job {
			run := DrawRuntime(rng, g.MedianTask, sigma)
			return &job.Job{
				ID:          e.NewJobID(),
				Name:        fmt.Sprintf("wf-task-%s", u.Name),
				User:        u.Name,
				Project:     u.Project,
				Cores:       DrawCores(rng, 0, coresHi, maxCores),
				RunTime:     run,
				ReqWalltime: DrawWalltime(rng, run),
				Attr:        job.Attributes{ScienceField: u.Field},
			}
		}
		submitter := &directSubmitter{e: e, machine: m, via: "gram"}
		var w *workflow.Instance
		if rng.Bool(0.5) {
			// Linear chain of 3–8 stages.
			stages := 3 + rng.Intn(6)
			jobs := make([]*job.Job, stages)
			for i := range jobs {
				jobs[i] = mkTask(0.6, 5)
			}
			w, err = workflow.Chain(id, engine, tagged, e.K, submitter, jobs)
		} else {
			// Fan-out/fan-in with 2·Workers max width.
			width := 2 + rng.Intn(2*g.Workers)
			workers := make([]*job.Job, width)
			for i := range workers {
				workers[i] = mkTask(0.4, 3)
			}
			w, err = workflow.FanOutFanIn(id, engine, tagged, e.K, submitter,
				mkTask(0.3, 2), workers, mkTask(0.3, 2))
		}
		if err != nil {
			panic("workload: building workflow: " + err.Error())
		}
		// Register all tasks with the tracker before starting, so terminal
		// events route back to the engine.
		submitter.watch(w)
		if err := w.Start(); err != nil {
			panic("workload: starting workflow: " + err.Error())
		}
	})
}

// directSubmitter adapts direct machine submission to the workflow
// engine's Submitter interface, registering each job with the tracker on
// the way through.
type directSubmitter struct {
	e       *Env
	machine string
	via     string
	w       *workflow.Instance
}

func (d *directSubmitter) SubmitJob(j *job.Job) {
	if d.w != nil && d.e.Tracker != nil {
		d.e.Tracker.Watch(j, d.w)
	}
	if err := d.e.SubmitDirect(d.machine, d.via, j); err != nil {
		panic(err)
	}
}

// watch closes the submitter over its instance after construction:
// workflow construction needs the submitter, and tracking needs the
// instance, so the binding happens between construction and Start.
func (d *directSubmitter) watch(w *workflow.Instance) { d.w = w }

// GatewayGen produces science-gateway usage: a large, growing end-user
// population submitting many small jobs through community accounts. The
// population grows linearly over the horizon — the adoption trend gateway
// programs reported. Routing happens inside the gateway object, whose
// submitter the scenario layer wired at construction.
type GatewayGen struct {
	// Gateway is the gateway ID this generator feeds (must exist in Env).
	Gateway string
	// RequestsPerDay is the weekday-peak request rate at full ramp.
	RequestsPerDay float64
	// EndUsers is the eventual distinct end-user population.
	EndUsers int
	// MedianRuntime of gateway jobs (they are small and short).
	MedianRuntime float64
}

// Name implements Generator.
func (g *GatewayGen) Name() string { return "gateway-" + g.Gateway }

// Start implements Generator.
func (g *GatewayGen) Start(e *Env) {
	rng := simrand.Derive(e.Seed, "gen-"+g.Name())
	gw, ok := e.Gateways[g.Gateway]
	if !ok {
		panic("workload: unknown gateway " + g.Gateway)
	}
	// Zipf over the end-user population: a few power users, a long tail.
	zipf := simrand.NewZipf(g.EndUsers, 1.1)
	peak := g.RequestsPerDay / 86400
	PoissonArrivals(e, rng, peak, "arrival-"+g.Name(), func() {
		// Linear ramp: early in the horizon most arrivals are thinned out,
		// modeling community adoption growth.
		frac := 0.1 + 0.9*float64(e.K.Now())/float64(e.Horizon)
		if !rng.Bool(frac) {
			return
		}
		// The reachable user pool also grows over time.
		pool := int(float64(g.EndUsers) * frac)
		if pool < 1 {
			pool = 1
		}
		endUser := fmt.Sprintf("%s-user-%05d", g.Gateway, 1+zipf.Sample(rng)%pool)
		run := DrawRuntime(rng, g.MedianRuntime, 0.8)
		j := &job.Job{
			ID:          e.NewJobID(),
			Name:        fmt.Sprintf("%s-app", g.Gateway),
			Cores:       DrawCores(rng, 0, 3, 64),
			RunTime:     run,
			ReqWalltime: DrawWalltime(rng, run),
			Truth:       job.Truth{Modality: job.ModGateway},
			// User/Project are set by the gateway (community account).
		}
		gw.Request(endUser, j)
	})
}

// DataCentricGen produces data-dominated usage: jobs whose inputs are
// staged from the project's data home site, and whose large outputs are
// archived after completion. Compute is modest; the WAN and archive do the
// work.
type DataCentricGen struct {
	JobsPerDay    float64
	MedianInputGB float64
	MedianRuntime float64
	// ArchiveSite receives outputs ("" = job's own site).
	ArchiveSite string
}

// Name implements Generator.
func (g *DataCentricGen) Name() string { return "data-centric" }

// Start implements Generator.
func (g *DataCentricGen) Start(e *Env) {
	rng := simrand.Derive(e.Seed, "gen-data")
	pick, err := users.NewWeightedPick(e.Pop.Users)
	if err != nil {
		panic("workload: data generator needs a population: " + err.Error())
	}
	machines := e.Machines()
	rate := g.JobsPerDay / 86400
	PoissonArrivals(e, rng, rate, "arrival-data", func() {
		u := pick.Pick(rng)
		m := machines[rng.Intn(len(machines))]
		s := e.Sched[m]
		run := DrawRuntime(rng, g.MedianRuntime, 0.6)
		inBytes := int64(rng.LogNormal(logOf(g.MedianInputGB*1e9), 1.0))
		outBytes := inBytes / 2
		j := &job.Job{
			ID:          e.NewJobID(),
			Name:        fmt.Sprintf("analysis-%s", u.Name),
			User:        u.Name,
			Project:     u.Project,
			Cores:       DrawCores(rng, 2, 6, s.M.BatchCores()),
			RunTime:     run,
			ReqWalltime: DrawWalltime(rng, run),
			InputBytes:  inBytes,
			OutputBytes: outBytes,
			Attr:        job.Attributes{ScienceField: u.Field},
			Truth:       job.Truth{Modality: job.ModDataCentric},
		}
		home := e.DataHomeSite[u.Project]
		if home == "" {
			home = s.M.Site
		}
		// Stage input, then submit; archive output on completion is wired
		// by the scenario layer via scheduler events.
		if e.Stager != nil {
			if err := e.Stager.Stage(home, s.M.Site, inBytes, u.Name, u.Project,
				int64(j.ID), func() {
					if err := e.SubmitDirect(m, "gram", j); err != nil {
						panic(err)
					}
				}); err != nil {
				panic(err)
			}
		} else {
			if err := e.SubmitDirect(m, "gram", j); err != nil {
				panic(err)
			}
		}
	})
}

func logOf(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Log(v)
}

// MetaschedGen produces broker-routed usage: users who let the
// metascheduler pick the machine, plus occasional multi-site
// co-allocations.
type MetaschedGen struct {
	JobsPerDay    float64
	CoAllocFrac   float64 // fraction of submissions that are 2-part co-allocations
	MedianRuntime float64
}

// Name implements Generator.
func (g *MetaschedGen) Name() string { return "metasched" }

// Start implements Generator.
func (g *MetaschedGen) Start(e *Env) {
	rng := simrand.Derive(e.Seed, "gen-metasched")
	pick, err := users.NewWeightedPick(e.Pop.Users)
	if err != nil {
		panic("workload: metasched generator needs a population: " + err.Error())
	}
	if e.Broker == nil {
		return
	}
	rate := g.JobsPerDay / 86400
	PoissonArrivals(e, rng, rate, "arrival-metasched", func() {
		u := pick.Pick(rng)
		mk := func(coresHi int) *job.Job {
			run := DrawRuntime(rng, g.MedianRuntime, 0.8)
			return &job.Job{
				ID:          e.NewJobID(),
				Name:        fmt.Sprintf("grid-%s", u.Name),
				User:        u.Name,
				Project:     u.Project,
				Cores:       DrawCores(rng, 2, coresHi, 1<<14),
				RunTime:     run,
				ReqWalltime: DrawWalltime(rng, run),
				Attr:        job.Attributes{ScienceField: u.Field},
				Truth:       job.Truth{Modality: job.ModMetascheduled},
			}
		}
		if rng.Bool(g.CoAllocFrac) {
			parts := []*job.Job{mk(6), mk(6)}
			// Co-allocation may legitimately fail when machines are busy;
			// fall back to routing the parts independently.
			if _, err := e.Broker.CoAllocate(parts); err != nil {
				for _, p := range parts {
					e.Broker.Submit(p)
				}
			}
			return
		}
		e.Broker.Submit(mk(8))
	})
}
