package workload

import (
	"fmt"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/trace"
)

// ReplayGen drives the simulator from a parsed SWF trace instead of a
// synthetic model: each trace entry is submitted at its recorded submit
// time with its recorded size and runtime. Wait times and placements are
// then produced by the simulated scheduler, so replay answers "what would
// this recorded workload have experienced on this machine/policy" — the
// classic trace-driven evaluation loop.
type ReplayGen struct {
	// Jobs is the parsed trace (see trace.ReadSWF).
	Jobs []trace.Job
	// Machine receives every job ("" = round-robin across machines).
	Machine string
	// TimeScale stretches (>1) or compresses (<1) inter-arrival times;
	// 0 means 1.
	TimeScale float64
}

// Name implements Generator.
func (g *ReplayGen) Name() string { return "replay" }

// Start implements Generator.
func (g *ReplayGen) Start(e *Env) {
	scale := g.TimeScale
	if scale <= 0 {
		scale = 1
	}
	machines := e.Machines()
	if len(machines) == 0 {
		panic("workload: replay needs at least one machine")
	}
	for i, tj := range g.Jobs {
		if tj.Procs <= 0 || tj.Run <= 0 {
			continue // SWF traces carry cancelled entries; skip them
		}
		at := des.Time(tj.Submit * scale)
		if at >= e.Horizon {
			continue
		}
		run := des.Time(tj.Run)
		wall := des.Time(tj.ReqTime)
		if wall < run {
			wall = run // records with unknown requests get exact walltime
		}
		j := &job.Job{
			ID:          e.NewJobID(),
			Name:        fmt.Sprintf("exec%d", tj.ExecID),
			User:        fmt.Sprintf("u%d", tj.UserID),
			Project:     fmt.Sprintf("g%d", tj.GroupID),
			Cores:       tj.Procs,
			RunTime:     run,
			ReqWalltime: wall,
			Truth:       job.Truth{Modality: job.ModBatchCapacity},
		}
		switch tj.Queue {
		case 2:
			j.QOS = job.QOSUrgent
			j.Truth.Modality = job.ModUrgent
		case 3:
			j.QOS = job.QOSInteractive
			j.Truth.Modality = job.ModInteractive
		}
		m := g.Machine
		if m == "" {
			m = machines[i%len(machines)]
		}
		// Oversized entries are clamped to the target machine rather than
		// silently dropped: replaying a big-machine trace on a small
		// simulated machine is a common (intentional) experiment.
		if s := e.Sched[m]; s != nil {
			limit := s.M.BatchCores()
			if j.QOS == job.QOSInteractive {
				limit = s.M.VizCores()
				if limit == 0 {
					j.QOS = job.QOSNormal
					limit = s.M.BatchCores()
				}
			}
			if j.Cores > limit {
				j.Cores = limit
			}
		}
		jj, mm := j, m
		e.K.AtNamed(at, "replay-submit", func(*des.Kernel) {
			if err := e.SubmitDirect(mm, "login", jj); err != nil {
				panic(err)
			}
		})
	}
}
