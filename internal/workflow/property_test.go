package workflow

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/simrand"
)

// delayRunner simulates each submitted job with its RunTime on the kernel,
// then reports completion back to the instance — a minimal stand-in for
// the batch scheduler with unlimited capacity.
type delayRunner struct {
	k *des.Kernel
	w *Instance
	// released counts distinct jobs; double releases would break it.
	released map[job.ID]int
}

func (d *delayRunner) SubmitJob(j *job.Job) {
	d.released[j.ID]++
	jj := j
	d.k.Schedule(jj.RunTime, func(*des.Kernel) {
		jj.State = job.StateCompleted
		jj.EndTime = d.k.Now()
		d.w.TaskFinished(jj)
	})
}

// TestRandomDAGProperty builds random layered DAGs and checks:
// every task released exactly once, the instance completes, and the
// makespan on an unlimited machine equals the critical path.
func TestRandomDAGProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := simrand.New(seed)
		k := des.New()
		runner := &delayRunner{k: k, released: make(map[job.ID]int)}
		w := NewInstance("prop", "engine", rng.Bool(0.5), k, runner)
		runner.w = w

		layers := 2 + rng.Intn(4)
		var prevLayer []string
		id := job.ID(0)
		total := 0
		for l := 0; l < layers; l++ {
			width := 1 + rng.Intn(5)
			var thisLayer []string
			for n := 0; n < width; n++ {
				id++
				total++
				name := fmt.Sprintf("t%d-%d", l, n)
				jb := &job.Job{
					ID: id, Name: name, User: "u", Project: "p", Cores: 1,
					RunTime:     des.Time(1 + rng.Intn(100)),
					ReqWalltime: des.Time(200),
				}
				// Depend on a random nonempty subset of the previous layer.
				var deps []string
				for _, p := range prevLayer {
					if rng.Bool(0.6) {
						deps = append(deps, p)
					}
				}
				if len(prevLayer) > 0 && len(deps) == 0 {
					deps = append(deps, prevLayer[rng.Intn(len(prevLayer))])
				}
				if err := w.AddTask(name, jb, deps...); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				thisLayer = append(thisLayer, name)
			}
			prevLayer = thisLayer
		}
		done := false
		w.OnComplete = func(*Instance) { done = true }
		if err := w.Start(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		k.Run()
		if !done {
			t.Fatalf("seed %d: workflow did not complete (%d/%d)", seed, w.Completed(), total)
		}
		if w.Completed() != total || w.Released() != total {
			return false
		}
		for jid, n := range runner.released {
			if n != 1 {
				t.Fatalf("seed %d: job %d released %d times", seed, jid, n)
			}
		}
		// Unlimited capacity: makespan equals the critical path exactly.
		return w.Makespan() == w.CriticalPathLength()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
