// Package workflow implements a DAG workflow engine: campaigns of dependent
// tasks released to the grid as their predecessors complete. The engine
// tags each released job with the workflow instance and engine name when
// instrumentation coverage allows, which is the signal the modality
// framework uses to measure workflow usage directly; untagged workflows
// must be inferred.
package workflow

import (
	"fmt"
	"sort"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
)

// Submitter is where released tasks are sent.
type Submitter interface {
	SubmitJob(j *job.Job)
}

// Task is a node in the DAG.
type Task struct {
	Name string
	Job  *job.Job
	deps []*Task
	// bookkeeping
	remaining int // unfinished dependencies
	released  bool
	done      bool
}

// Instance is one executing workflow.
type Instance struct {
	ID     string
	Engine string
	// TagCoverage: probability-free, deterministic toggle — the scenario
	// layer decides per-instance whether instrumentation tags are applied
	// (modeling engines that do or do not emit workflow attributes).
	Tagged bool

	k      *des.Kernel
	submit Submitter
	tasks  map[string]*Task
	order  []string // insertion order for deterministic release
	// OnComplete fires when every task has finished.
	OnComplete func(*Instance)

	released  int
	completed int
	startedAt des.Time
	endedAt   des.Time
	running   bool
}

// NewInstance creates an empty workflow instance.
func NewInstance(id, engine string, tagged bool, k *des.Kernel, s Submitter) *Instance {
	return &Instance{
		ID: id, Engine: engine, Tagged: tagged,
		k: k, submit: s, tasks: make(map[string]*Task),
	}
}

// AddTask registers a task with dependencies (by task name, which must
// already exist — add tasks in topological order).
func (w *Instance) AddTask(name string, j *job.Job, deps ...string) error {
	if w.running {
		return fmt.Errorf("workflow %s: cannot add tasks after start", w.ID)
	}
	if name == "" {
		return fmt.Errorf("workflow %s: task needs a name", w.ID)
	}
	if _, dup := w.tasks[name]; dup {
		return fmt.Errorf("workflow %s: duplicate task %s", w.ID, name)
	}
	t := &Task{Name: name, Job: j}
	for _, d := range deps {
		dep, ok := w.tasks[d]
		if !ok {
			return fmt.Errorf("workflow %s: task %s depends on unknown %s (add tasks in topological order)", w.ID, name, d)
		}
		t.deps = append(t.deps, dep)
	}
	t.remaining = len(t.deps)
	w.tasks[name] = t
	w.order = append(w.order, name)
	return nil
}

// Tasks returns the number of tasks.
func (w *Instance) Tasks() int { return len(w.tasks) }

// Released and Completed return progress counters.
func (w *Instance) Released() int  { return w.released }
func (w *Instance) Completed() int { return w.completed }

// Makespan returns the end-to-end duration once complete.
func (w *Instance) Makespan() des.Time { return w.endedAt - w.startedAt }

// Start releases all ready tasks. The caller must invoke TaskFinished as
// released jobs reach a terminal state (the scenario layer wires scheduler
// events to this).
func (w *Instance) Start() error {
	if w.running {
		return fmt.Errorf("workflow %s: already started", w.ID)
	}
	if len(w.tasks) == 0 {
		return fmt.Errorf("workflow %s: no tasks", w.ID)
	}
	w.running = true
	w.startedAt = w.k.Now()
	w.releaseReady()
	return nil
}

func (w *Instance) releaseReady() {
	for _, name := range w.order {
		t := w.tasks[name]
		if t.released || t.remaining > 0 {
			continue
		}
		t.released = true
		w.released++
		if w.Tagged {
			t.Job.Attr.WorkflowID = w.ID
			t.Job.Attr.WorkflowEngine = w.Engine
		}
		t.Job.Truth.Modality = job.ModWorkflow
		t.Job.Truth.CampaignID = w.ID
		w.submit.SubmitJob(t.Job)
	}
}

// TaskFinished informs the engine that a released job reached a terminal
// state. Successor tasks whose dependencies are all complete are released.
// Failed tasks abort the workflow (no further releases).
func (w *Instance) TaskFinished(j *job.Job) {
	var t *Task
	for _, name := range w.order {
		if w.tasks[name].Job == j {
			t = w.tasks[name]
			break
		}
	}
	if t == nil || t.done {
		return
	}
	t.done = true
	w.completed++
	if j.State != job.StateCompleted {
		// Task failed or was killed: abort (release nothing further).
		w.finishIfDone(true)
		return
	}
	for _, name := range w.order {
		cand := w.tasks[name]
		for _, d := range cand.deps {
			if d == t {
				cand.remaining--
			}
		}
	}
	w.releaseReady()
	w.finishIfDone(false)
}

func (w *Instance) finishIfDone(aborted bool) {
	if aborted || w.completed == len(w.tasks) {
		if w.endedAt == 0 {
			w.endedAt = w.k.Now()
			if w.OnComplete != nil {
				w.OnComplete(w)
			}
		}
	}
}

// CriticalPathLength returns the sum of task runtimes along the longest
// dependency chain — the theoretical minimum makespan on an unloaded,
// infinitely wide machine.
func (w *Instance) CriticalPathLength() des.Time {
	memo := make(map[*Task]des.Time)
	var longest func(t *Task) des.Time
	longest = func(t *Task) des.Time {
		if v, ok := memo[t]; ok {
			return v
		}
		best := des.Time(0)
		for _, d := range t.deps {
			if l := longest(d); l > best {
				best = l
			}
		}
		v := best + t.Job.RunTime
		memo[t] = v
		return v
	}
	best := des.Time(0)
	for _, name := range w.order {
		if l := longest(w.tasks[name]); l > best {
			best = l
		}
	}
	return best
}

// Chain builds a linear workflow: each stage depends on the previous one.
func Chain(id, engine string, tagged bool, k *des.Kernel, s Submitter, jobs []*job.Job) (*Instance, error) {
	w := NewInstance(id, engine, tagged, k, s)
	prev := ""
	for i, j := range jobs {
		// Stage names repeat across every chain campaign in a run; intern
		// so each distinct index is stored once, not once per campaign.
		name := des.Intern(fmt.Sprintf("stage-%03d", i))
		var deps []string
		if prev != "" {
			deps = append(deps, prev)
		}
		if err := w.AddTask(name, j, deps...); err != nil {
			return nil, err
		}
		prev = name
	}
	return w, nil
}

// FanOutFanIn builds the common split-process-merge shape: a setup task, n
// parallel workers, and a merge task depending on all workers.
func FanOutFanIn(id, engine string, tagged bool, k *des.Kernel, s Submitter,
	setup *job.Job, workers []*job.Job, merge *job.Job) (*Instance, error) {
	w := NewInstance(id, engine, tagged, k, s)
	if err := w.AddTask("setup", setup); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(workers))
	for i, wj := range workers {
		name := des.Intern(fmt.Sprintf("worker-%03d", i))
		if err := w.AddTask(name, wj, "setup"); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if err := w.AddTask("merge", merge, names...); err != nil {
		return nil, err
	}
	return w, nil
}
