package workflow

import (
	"testing"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
)

// instantRunner submits jobs and "runs" them to completion when told.
type instantRunner struct {
	k       *des.Kernel
	pending []*job.Job
}

func (r *instantRunner) SubmitJob(j *job.Job) {
	j.State = job.StateQueued
	r.pending = append(r.pending, j)
}

// completeNext finishes the oldest pending job after dur and returns it.
func (r *instantRunner) completeNext(w *Instance, state job.State) *job.Job {
	if len(r.pending) == 0 {
		return nil
	}
	j := r.pending[0]
	r.pending = r.pending[1:]
	j.State = state
	w.TaskFinished(j)
	return j
}

func mkJob(id int64, run des.Time) *job.Job {
	return &job.Job{ID: job.ID(id), Name: "t", User: "u", Project: "p",
		Cores: 8, ReqWalltime: run + 10, RunTime: run}
}

func TestAddTaskValidation(t *testing.T) {
	k := des.New()
	r := &instantRunner{k: k}
	w := NewInstance("wf1", "engine", true, k, r)
	if err := w.AddTask("", mkJob(1, 10)); err == nil {
		t.Error("empty name accepted")
	}
	if err := w.AddTask("a", mkJob(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := w.AddTask("a", mkJob(2, 10)); err == nil {
		t.Error("duplicate task accepted")
	}
	if err := w.AddTask("b", mkJob(3, 10), "missing"); err == nil {
		t.Error("unknown dependency accepted")
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w.AddTask("late", mkJob(4, 10)); err == nil {
		t.Error("task added after start")
	}
	if err := w.Start(); err == nil {
		t.Error("double start accepted")
	}
}

func TestEmptyWorkflowCannotStart(t *testing.T) {
	k := des.New()
	w := NewInstance("wf", "e", true, k, &instantRunner{k: k})
	if err := w.Start(); err == nil {
		t.Error("empty workflow started")
	}
}

func TestDependencyOrderAndTagging(t *testing.T) {
	k := des.New()
	r := &instantRunner{k: k}
	w := NewInstance("wf1", "pegasus", true, k, r)
	a, b, c := mkJob(1, 10), mkJob(2, 10), mkJob(3, 10)
	if err := w.AddTask("a", a); err != nil {
		t.Fatal(err)
	}
	if err := w.AddTask("b", b, "a"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddTask("c", c, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	if len(r.pending) != 1 || r.pending[0] != a {
		t.Fatalf("only the root should be released; pending=%d", len(r.pending))
	}
	if a.Attr.WorkflowID != "wf1" || a.Attr.WorkflowEngine != "pegasus" {
		t.Errorf("tags missing: %+v", a.Attr)
	}
	if a.Truth.Modality != job.ModWorkflow || a.Truth.CampaignID != "wf1" {
		t.Errorf("ground truth missing: %+v", a.Truth)
	}
	r.completeNext(w, job.StateCompleted) // a done → b released
	if len(r.pending) != 1 || r.pending[0] != b {
		t.Fatalf("b should be released next")
	}
	r.completeNext(w, job.StateCompleted) // b done → c released
	if len(r.pending) != 1 || r.pending[0] != c {
		t.Fatalf("c should be released last")
	}
	var completed bool
	w.OnComplete = func(*Instance) { completed = true }
	r.completeNext(w, job.StateCompleted)
	if !completed || w.Completed() != 3 || w.Released() != 3 {
		t.Errorf("completion bookkeeping wrong: done=%v released=%d completed=%d",
			completed, w.Released(), w.Completed())
	}
}

func TestUntaggedWorkflowCarriesNoAttributes(t *testing.T) {
	k := des.New()
	r := &instantRunner{k: k}
	w := NewInstance("wf2", "homegrown", false, k, r)
	a := mkJob(1, 10)
	if err := w.AddTask("a", a); err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	if a.Attr.WorkflowID != "" || a.Attr.WorkflowEngine != "" {
		t.Errorf("untagged workflow leaked attributes: %+v", a.Attr)
	}
	// Ground truth is always present regardless of tagging.
	if a.Truth.Modality != job.ModWorkflow {
		t.Error("ground truth missing on untagged workflow")
	}
}

func TestFailureAborts(t *testing.T) {
	k := des.New()
	r := &instantRunner{k: k}
	w := NewInstance("wf3", "e", true, k, r)
	a, b := mkJob(1, 10), mkJob(2, 10)
	if err := w.AddTask("a", a); err != nil {
		t.Fatal(err)
	}
	if err := w.AddTask("b", b, "a"); err != nil {
		t.Fatal(err)
	}
	var completed bool
	w.OnComplete = func(*Instance) { completed = true }
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	r.completeNext(w, job.StateKilled) // a killed at walltime
	if len(r.pending) != 0 {
		t.Error("successor released after failure")
	}
	if !completed {
		t.Error("aborted workflow did not signal completion")
	}
}

func TestFanOutFanIn(t *testing.T) {
	k := des.New()
	r := &instantRunner{k: k}
	setup := mkJob(1, 5)
	workers := []*job.Job{mkJob(2, 20), mkJob(3, 30), mkJob(4, 10)}
	merge := mkJob(5, 5)
	w, err := FanOutFanIn("wf4", "e", true, k, r, setup, workers, merge)
	if err != nil {
		t.Fatal(err)
	}
	if w.Tasks() != 5 {
		t.Errorf("Tasks = %d, want 5", w.Tasks())
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	r.completeNext(w, job.StateCompleted) // setup
	if len(r.pending) != 3 {
		t.Fatalf("fan-out released %d, want 3", len(r.pending))
	}
	for i := 0; i < 3; i++ {
		r.completeNext(w, job.StateCompleted)
	}
	if len(r.pending) != 1 || r.pending[0] != merge {
		t.Fatal("merge not released after all workers")
	}
	r.completeNext(w, job.StateCompleted)
	if w.Completed() != 5 {
		t.Errorf("Completed = %d, want 5", w.Completed())
	}
	// Critical path: setup(5) + slowest worker(30) + merge(5) = 40.
	if got := w.CriticalPathLength(); got != 40 {
		t.Errorf("CriticalPathLength = %v, want 40", got)
	}
}

func TestChain(t *testing.T) {
	k := des.New()
	r := &instantRunner{k: k}
	jobs := []*job.Job{mkJob(1, 10), mkJob(2, 20), mkJob(3, 30)}
	w, err := Chain("wf5", "e", true, k, r, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if len(r.pending) != 1 {
			t.Fatalf("chain stage %d: %d pending, want 1", i, len(r.pending))
		}
		r.completeNext(w, job.StateCompleted)
	}
	if got := w.CriticalPathLength(); got != 60 {
		t.Errorf("chain critical path = %v, want 60", got)
	}
}

func TestMakespan(t *testing.T) {
	k := des.New()
	r := &instantRunner{k: k}
	w, err := Chain("wf6", "e", true, k, r, []*job.Job{mkJob(1, 10)})
	if err != nil {
		t.Fatal(err)
	}
	k.Schedule(100, func(*des.Kernel) {
		if err := w.Start(); err != nil {
			t.Error(err)
		}
	})
	k.Schedule(250, func(*des.Kernel) { r.completeNext(w, job.StateCompleted) })
	k.Run()
	if got := w.Makespan(); got != 150 {
		t.Errorf("Makespan = %v, want 150", got)
	}
}

func TestTaskFinishedUnknownJobIgnored(t *testing.T) {
	k := des.New()
	r := &instantRunner{k: k}
	w, err := Chain("wf7", "e", true, k, r, []*job.Job{mkJob(1, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	w.TaskFinished(mkJob(99, 1)) // not part of the workflow
	if w.Completed() != 0 {
		t.Error("unknown job counted as completed task")
	}
	// Double-finish of the same task is also ignored.
	j := r.completeNext(w, job.StateCompleted)
	w.TaskFinished(j)
	if w.Completed() != 1 {
		t.Errorf("Completed = %d after double finish, want 1", w.Completed())
	}
}
