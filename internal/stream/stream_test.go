package stream

import (
	"fmt"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/simrand"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// randomRecords builds a random but internally consistent record set with
// a mix of attribute evidence, bursts, and plain batch jobs (the core
// property-test generator, duplicated to keep the packages decoupled).
func randomRecords(rng *simrand.Stream, n int) []accounting.JobRecord {
	recs := make([]accounting.JobRecord, 0, n)
	tm := 0.0
	for i := 0; i < n; i++ {
		r := accounting.JobRecord{
			JobID:   int64(i + 1),
			Name:    fmt.Sprintf("app-%d", rng.Intn(5)),
			User:    fmt.Sprintf("u%d", rng.Intn(8)),
			Project: "p", Site: "s", Machine: "m",
			Cores:      1 << uint(rng.Intn(10)),
			SubmitTime: tm,
			QOS:        "normal",
			ExitStatus: "completed",
			NUs:        float64(rng.Intn(100)),
		}
		r.StartTime = r.SubmitTime + float64(rng.Intn(500))
		r.EndTime = r.StartTime + float64(60+rng.Intn(5000))
		r.WallSeconds = r.EndTime - r.StartTime
		switch rng.Intn(8) {
		case 0:
			r.QOS = "urgent"
		case 1:
			r.GatewayID = "gw"
		case 2:
			r.EnsembleID = fmt.Sprintf("ens-%d", rng.Intn(3))
		case 3:
			r.WorkflowID = fmt.Sprintf("wf-%d", rng.Intn(3))
		case 4:
			r.BrokerJobID = "b"
		}
		tm += float64(rng.Intn(600))
		recs = append(recs, r)
	}
	return recs
}

func TestInboxBackpressure(t *testing.T) {
	p := New(Config{LargestCores: 512, InboxCap: 3})
	for i := 1; i <= 5; i++ {
		p.OfferJob(accounting.JobRecord{JobID: int64(i), Cores: 1, NUs: 1,
			EndTime: float64(i), ExitStatus: "completed"})
	}
	if got := p.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2 (cap 3, offered 5)", got)
	}
	if got := p.Ingested(); got != 3 {
		t.Errorf("ingested = %d, want 3", got)
	}
	if hw := p.inbox.highWater; hw != 3 {
		t.Errorf("high water = %d, want 3", hw)
	}
	p.Advance(10)
	if d := p.inbox.depth(); d != 0 {
		t.Errorf("depth after drain = %d, want 0", d)
	}
	// Only the accepted records survive, in FIFO order.
	if len(p.jobs) != 3 || p.jobs[0].JobID != 1 || p.jobs[2].JobID != 3 {
		t.Errorf("accepted jobs = %+v, want IDs 1..3", p.jobs)
	}
	// Drained capacity is reusable.
	p.OfferJob(accounting.JobRecord{JobID: 6, Cores: 1, EndTime: 11})
	if p.Dropped() != 2 {
		t.Errorf("post-drain offer dropped; dropped = %d", p.Dropped())
	}
}

func TestOnlineDirectEvidence(t *testing.T) {
	o := newOnline(core.Config{LargestCores: 1000})
	cases := []struct {
		rec  accounting.JobRecord
		want job.Modality
		conf float64
	}{
		{accounting.JobRecord{JobID: 1, QOS: "urgent"}, job.ModUrgent, confQOS},
		{accounting.JobRecord{JobID: 2, QOS: "interactive"}, job.ModInteractive, confQOS},
		{accounting.JobRecord{JobID: 3, GatewayID: "nanohub"}, job.ModGateway, confAttribute},
		{accounting.JobRecord{JobID: 4, SubmitVia: "gateway"}, job.ModGateway, confAttribute},
		{accounting.JobRecord{JobID: 5, CoAllocID: "co"}, job.ModMetascheduled, confAttribute},
		{accounting.JobRecord{JobID: 6, BrokerJobID: "b"}, job.ModMetascheduled, confAttribute},
		{accounting.JobRecord{JobID: 7, WorkflowID: "wf"}, job.ModWorkflow, confAttribute},
		{accounting.JobRecord{JobID: 8, EnsembleID: "e"}, job.ModEnsemble, confAttribute},
		{accounting.JobRecord{JobID: 9, Cores: 600}, job.ModBatchCapability, confSizeCap},
		{accounting.JobRecord{JobID: 10, Cores: 4}, job.ModBatchCapacity, confSizeDef},
	}
	for _, c := range cases {
		d := o.classify(&c.rec)
		if d.Modality != c.want || d.Confidence != c.conf {
			t.Errorf("job %d: got (%s, %.2f), want (%s, %.2f)",
				c.rec.JobID, d.Modality, d.Confidence, c.want, c.conf)
		}
	}
	// Gateway attribute records reclassify later jobs by the same ID.
	o.noteGatewayAttr(&accounting.GatewayAttrRecord{JobID: 11})
	if d := o.classify(&accounting.JobRecord{JobID: 11, Cores: 4}); d.Modality != job.ModGateway {
		t.Errorf("attr-evidenced job: %s, want gateway", d.Modality)
	}
	// Staged bytes past the threshold mark data-centric.
	o.noteTransfer(&accounting.TransferRecord{JobID: 12, Bytes: 6 << 30})
	if d := o.classify(&accounting.JobRecord{JobID: 12, Cores: 4}); d.Modality != job.ModDataCentric {
		t.Errorf("staged job: %s, want data-centric", d.Modality)
	}
}

func TestOnlineBurstAndChain(t *testing.T) {
	o := newOnline(core.Config{LargestCores: 100000})
	// Five same-shape submissions inside the window: the fifth classifies
	// as ensemble, the first four lag as batch (no retroactive relabel).
	var got []job.Modality
	for i := 0; i < 6; i++ {
		// Overlapping members (end long after the next submit) so the
		// chain detector never sees a dependent-submission gap.
		d := o.classify(&accounting.JobRecord{
			JobID: int64(i + 1), User: "alice", Name: "sweep", Cores: 8,
			SubmitTime: float64(i * 60), EndTime: float64(i*60 + 5000),
		})
		got = append(got, d.Modality)
	}
	for i := 0; i < 4; i++ {
		if got[i] != job.ModBatchCapacity {
			t.Errorf("burst member %d = %s, want batch-capacity (inference lag)", i, got[i])
		}
	}
	if got[4] != job.ModEnsemble || got[5] != job.ModEnsemble {
		t.Errorf("burst members 5,6 = %s,%s, want ensemble", got[4], got[5])
	}

	// Back-to-back dependent jobs (submit just after the previous end)
	// chain into workflow at the configured link count.
	o2 := newOnline(core.Config{LargestCores: 100000})
	end := 0.0
	got = got[:0]
	for i := 0; i < 4; i++ {
		sub := end + 10  // within ChainSlack
		end = sub + 7200 // long stages: never inside one ensemble burst run
		d := o2.classify(&accounting.JobRecord{
			JobID: int64(i + 1), User: "bob", Name: fmt.Sprintf("stage-%d", i),
			Cores: 4, SubmitTime: sub, EndTime: end,
		})
		got = append(got, d.Modality)
	}
	if got[0] != job.ModBatchCapacity || got[1] != job.ModBatchCapacity {
		t.Errorf("chain heads = %s,%s, want batch-capacity", got[0], got[1])
	}
	if got[2] != job.ModWorkflow || got[3] != job.ModWorkflow {
		t.Errorf("chain links 3,4 = %s,%s, want workflow", got[2], got[3])
	}
}

// TestOnlineNeverReadsTruth: two records differing only in their
// ground-truth labels must classify identically.
func TestOnlineNeverReadsTruth(t *testing.T) {
	a := newOnline(core.Config{LargestCores: 512})
	b := newOnline(core.Config{LargestCores: 512})
	rng := simrand.New(5)
	for _, r := range randomRecords(rng, 120) {
		labeled := r
		labeled.TruthModality = "gateway"
		labeled.TruthCampaign = "c"
		da, db := a.classify(&r), b.classify(&labeled)
		if da != db {
			t.Fatalf("job %d: truth labels changed the decision: %+v vs %+v", r.JobID, da, db)
		}
	}
}

// TestFinalizeMatchesBatch: no matter what order records stream in, the
// end-of-stream batch view classifies every job exactly as a post-run
// Classify over the live accounting database does.
func TestFinalizeMatchesBatch(t *testing.T) {
	rng := simrand.New(42)
	recs := randomRecords(rng, 250)

	// The live database ingests in record order.
	live := accounting.NewCentral()
	if err := live.Ingest(&accounting.Packet{Site: "s", Seq: 1, Jobs: recs}); err != nil {
		t.Fatal(err)
	}
	want := core.NewClassifier(core.Config{LargestCores: 512}).Classify(live)

	// The stream sees them in completion order (shuffled relative to
	// submission), as the live tap would.
	p := New(Config{LargestCores: 512})
	perm := rng.Perm(len(recs))
	for _, i := range perm {
		p.OfferJob(recs[i])
	}
	p.Advance(des.Time(1 << 30))
	fin, err := p.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(fin.Results) != len(want) {
		t.Fatalf("finalize classified %d jobs, want %d", len(fin.Results), len(want))
	}
	byID := make(map[int64]job.Modality, len(want))
	for _, r := range want {
		byID[r.JobID] = r.Modality
	}
	for _, r := range fin.Results {
		if byID[r.JobID] != r.Modality {
			t.Errorf("job %d: stream finalize %s, batch %s", r.JobID, r.Modality, byID[r.JobID])
		}
	}
	if fin.Report.TotalNUs != live.TotalNUs() {
		t.Errorf("finalize total NUs %.3f, live %.3f", fin.Report.TotalNUs, live.TotalNUs())
	}
}

// TestDriftDetectsDisagreement: a surge of truth-labeled records the
// online rules cannot recognize pushes the trailing drift windows up.
func TestDriftDetectsDisagreement(t *testing.T) {
	p := New(Config{LargestCores: 100000})
	at := des.Time(0)
	// Phase 1: a day of plain capacity jobs, correctly labeled.
	for i := 0; i < 200; i++ {
		at += 6 * des.Minute
		p.OfferJob(accounting.JobRecord{
			JobID: int64(i + 1), User: fmt.Sprintf("u%d", i%20), Name: fmt.Sprintf("a%d", i%17),
			Cores: 4, SubmitTime: float64(at), EndTime: float64(at) + 60,
			NUs: 1, TruthModality: string(job.ModBatchCapacity),
		})
		p.Advance(at)
	}
	if r := p.drift.windowRate(0, at); r != 0 {
		t.Fatalf("agreeing phase drift = %.3f, want 0", r)
	}
	// Phase 2: untagged gateway-truth jobs with no attribute evidence —
	// the online classifier cannot see their modality.
	for i := 0; i < 100; i++ {
		at += 2 * des.Minute
		p.OfferJob(accounting.JobRecord{
			JobID: int64(1000 + i), User: fmt.Sprintf("g%d", i%30), Name: fmt.Sprintf("t%d", i%23),
			Cores: 2, SubmitTime: float64(at), EndTime: float64(at) + 30,
			NUs: 1, TruthModality: string(job.ModGateway),
		})
		p.Advance(at)
	}
	if r := p.drift.windowRate(0, at); r < 0.5 {
		t.Errorf("1h drift after shift = %.3f, want > 0.5", r)
	}
	if p.drift.peaks[0] < 0.5 {
		t.Errorf("1h peak = %.3f, want > 0.5", p.drift.peaks[0])
	}
	if lr := p.drift.lifetimeRate(); lr < 0.2 || lr > 0.5 {
		t.Errorf("lifetime drift = %.3f, want ~1/3", lr)
	}
	// The hourly history localizes the shift: early hours clean, late dirty.
	hist := p.DriftHistory()
	if len(hist) < 2 {
		t.Fatalf("history has %d cells", len(hist))
	}
	if hist[0].Disagree != 0 {
		t.Errorf("first history hour has %d disagreements", hist[0].Disagree)
	}
	last := hist[len(hist)-1]
	if last.Disagree == 0 {
		t.Error("last history hour shows no disagreement")
	}
}

// TestWindowExpiry: usage and drift counted in a trailing window vanish
// once the clock moves a full span past it.
func TestWindowExpiry(t *testing.T) {
	p := New(Config{LargestCores: 512})
	p.OfferJob(accounting.JobRecord{JobID: 1, Cores: 4, EndTime: 60, NUs: 5,
		TruthModality: string(job.ModBatchCapacity)})
	p.Advance(des.Minute)
	if jobs, _ := p.usage.windowTotals(0, job.ModBatchCapacity, des.Minute); jobs != 1 {
		t.Fatalf("fresh 1h window jobs = %d, want 1", jobs)
	}
	p.Advance(3 * des.Hour)
	if jobs, _ := p.usage.windowTotals(0, job.ModBatchCapacity, 3*des.Hour); jobs != 0 {
		t.Errorf("expired 1h window jobs = %d, want 0", jobs)
	}
	// The 24h window still holds it; lifetime always does.
	if jobs, _ := p.usage.windowTotals(2, job.ModBatchCapacity, 3*des.Hour); jobs != 1 {
		t.Errorf("24h window jobs = %d, want 1", jobs)
	}
	if p.usage.lifeJobs[job.ModBatchCapacity] != 1 {
		t.Errorf("lifetime jobs = %d, want 1", p.usage.lifeJobs[job.ModBatchCapacity])
	}
}

// TestStreamMetricsExposed: the processor's registry families appear in
// the OpenMetrics exposition with deterministic values.
func TestStreamMetricsExposed(t *testing.T) {
	reg := telemetry.New()
	p := New(Config{LargestCores: 512, InboxCap: 2, Registry: reg})
	for i := 0; i < 4; i++ {
		p.OfferJob(accounting.JobRecord{JobID: int64(i + 1), Cores: 4,
			EndTime: float64(i + 1), NUs: 1, TruthModality: string(job.ModBatchCapacity)})
	}
	p.Advance(10)
	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	om := sb.String()
	for _, want := range []string{
		`tg_stream_ingested_total{kind="job"} 2`,
		`tg_stream_dropped_total 2`,
		`tg_stream_inbox_depth 0`,
		`tg_stream_inbox_high_water 2`,
		`tg_stream_classified_total{modality="batch-capacity",source="accounting"} 2`,
		`tg_drift_events_total{result="agree"} 2`,
		`tg_drift_rate{window="1h"} 0`,
	} {
		if !strings.Contains(om, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
