package stream

import (
	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// Tap returns an Observer that mounts the processor on a live run: every
// accounting packet a site ledger flushes is offered to the stream right
// after central ingest (same records, same deterministic order), and
// every progress snapshot is decorated with the stream's ingest state so
// /status surfaces backpressure and drops.
//
// The tap rides existing kernel events only — it schedules nothing and
// perturbs nothing, so same-seed runs stay byte-identical with or
// without the stream attached.
func Tap(p *Processor) scenario.Observer {
	return scenario.ObserverFunc(func(a *scenario.Attachment) {
		a.Packets = append(a.Packets, func(at des.Time, pkt *accounting.Packet) {
			p.OfferPacket(at, pkt)
		})
		a.SnapshotExtras = append(a.SnapshotExtras, func(s *telemetry.Snapshot) {
			snap := p.Snap()
			s.Stream = &snap
		})
	})
}
