package stream

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/obs"
	"github.com/tgsim/tgmod/internal/regress"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/users"
	"github.com/tgsim/tgmod/internal/workload"
)

// smallConfig is a fast mixed-modality scenario (a few simulated days at
// reduced rates) with a processor tapped in.
func smallConfig(seed uint64, proc *Processor) scenario.Config {
	cfg := scenario.New(seed,
		scenario.WithHorizon(4*des.Day),
		scenario.WithDrain(des.Day),
		scenario.WithUsers(users.Config{Projects: 30, UsersPerProjMu: 0.7, UsersPerProjSd: 0.6, ActivityAlpha: 1.5}),
		scenario.WithGenerators(
			&workload.BatchGen{JobsPerDay: 100, CapabilityFrac: 0.02, MedianRuntime: 3600},
			&workload.EnsembleGen{CampaignsPerDay: 4, JobsPerCampaign: 10, TagCoverage: 0.5, MedianRuntime: 900},
			&workload.WorkflowGen{CampaignsPerDay: 3, TaggedFrac: 0.5, Workers: 4, MedianTask: 600},
			&workload.GatewayGen{Gateway: "nanohub", RequestsPerDay: 60, EndUsers: 200, MedianRuntime: 300},
			&workload.UrgentGen{EventsPerWeek: 3, MedianRuntime: 1800},
			&workload.InteractiveGen{SessionsPerDay: 10, MedianSession: 1200},
			&workload.DataCentricGen{JobsPerDay: 6, MedianInputGB: 20, MedianRuntime: 1800},
			&workload.MetaschedGen{JobsPerDay: 10, CoAllocFrac: 0.05, MedianRuntime: 1800},
		),
	)
	if proc != nil {
		cfg.Observers = append(cfg.Observers, Tap(proc))
	}
	return cfg
}

// runTapped runs the small scenario with a fresh processor attached and
// returns both, with the processor advanced to the end of the run.
func runTapped(t *testing.T, seed uint64) (*scenario.Result, *Processor, scenario.Config) {
	t.Helper()
	cfg := smallConfig(seed, nil)
	largest := 0
	// Build the processor with the federation the run will use.
	fed, err := scenario.TG9()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range fed.Machines() {
		if m.BatchCores() > largest {
			largest = m.BatchCores()
		}
	}
	proc := New(Config{LargestCores: largest})
	cfg.Observers = append(cfg.Observers, Tap(proc))
	res, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	proc.Advance(cfg.Horizon + cfg.DrainTime)
	return res, proc, cfg
}

// TestTapSeesEveryRecord: the live tap ingests exactly the records the
// central database holds.
func TestTapSeesEveryRecord(t *testing.T) {
	res, proc, _ := runTapped(t, 11)
	c := res.Central
	wantRecords := len(c.Jobs()) + len(c.Transfers()) + len(c.GatewayAttrs()) + len(c.StorageRecords())
	if int(proc.Ingested()) != wantRecords {
		t.Errorf("stream ingested %d records, central holds %d", proc.Ingested(), wantRecords)
	}
	if proc.Dropped() != 0 {
		t.Errorf("unbounded inbox dropped %d", proc.Dropped())
	}
	if len(proc.jobs) != len(c.Jobs()) {
		t.Errorf("stream accepted %d jobs, central %d", len(proc.jobs), len(c.Jobs()))
	}
}

// TestTapDoesNotPerturbRun: attaching the observatory must not change a
// same-seed run (the determinism contract for every observer).
func TestTapDoesNotPerturbRun(t *testing.T) {
	plain, err := scenario.Run(smallConfig(7, nil))
	if err != nil {
		t.Fatal(err)
	}
	tapped, err := scenario.Run(smallConfig(7, New(Config{LargestCores: 512})))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := plain.Central.Export(&a); err != nil {
		t.Fatal(err)
	}
	if err := tapped.Central.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("accounting export differs with the stream tap attached")
	}
	if plain.Kernel.Executed() != tapped.Kernel.Executed() {
		t.Errorf("kernel events %d vs %d with tap", plain.Kernel.Executed(), tapped.Kernel.Executed())
	}
}

// TestReplayEquivalence is the tentpole contract: replaying an export
// reproduces the live run's post-run modality report exactly, and the
// replayed stream's own view matches the live stream's.
func TestReplayEquivalence(t *testing.T) {
	res, liveProc, cfg := runTapped(t, 3)

	// Export and re-import the accounting trace (the acct.jsonl round trip).
	var buf bytes.Buffer
	if err := res.Central.Export(&buf); err != nil {
		t.Fatal(err)
	}
	imported := accounting.NewCentral()
	if err := imported.Import(&buf); err != nil {
		t.Fatal(err)
	}

	// The byte-identical path: classify the imported central with the
	// live run's parameters and compare the built reports field-for-field.
	ccfg := core.Config{LargestCores: res.LargestCores}
	liveRep := core.BuildReport(res.Central, core.NewClassifier(ccfg).Classify(res.Central))
	replayRep := core.BuildReport(imported, core.NewClassifier(ccfg).Classify(imported))
	if !reflect.DeepEqual(liveRep, replayRep) {
		t.Errorf("replayed modality report differs:\nlive   %+v\nreplay %+v", liveRep, replayRep)
	}

	// The streaming path: the replayed stream's end-of-run batch view
	// equals the live stream's (the online windows are approximate and
	// order-sensitive — Finalize is the order-free contract).
	feed := func() *Processor {
		p := New(Config{LargestCores: res.LargestCores})
		rp := &Replay{
			Run:     &regress.Run{Central: imported},
			EndTime: cfg.Horizon + cfg.DrainTime,
		}
		records, spans, err := rp.Feed(p)
		if err != nil {
			t.Fatal(err)
		}
		if spans != 0 {
			t.Errorf("replay without obs fed %d span events", spans)
		}
		if uint64(records) != liveProc.Ingested() {
			t.Errorf("replay fed %d records, live ingested %d", records, liveProc.Ingested())
		}
		return p
	}
	replayProc := feed()
	liveFin, err := liveProc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	replayFin, err := replayProc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(liveFin.Report, replayFin.Report) {
		t.Errorf("stream finalize reports differ:\nlive   %+v\nreplay %+v",
			liveFin.Report, replayFin.Report)
	}

	// Replay is itself deterministic: two replays of one export render
	// byte-identical console documents.
	again := feed()
	if !bytes.Equal(replayProc.ModalitiesJSON(), again.ModalitiesJSON()) {
		t.Error("two replays of the same export render different /modalities")
	}
	if !bytes.Equal(replayProc.DriftJSON(), again.DriftJSON()) {
		t.Error("two replays of the same export render different /drift")
	}
}

// TestPayloadsDeterministic: same-seed runs render byte-identical console
// documents (the golden-JSON acceptance gate).
func TestPayloadsDeterministic(t *testing.T) {
	_, a, _ := runTapped(t, 21)
	_, b, _ := runTapped(t, 21)
	if !bytes.Equal(a.ModalitiesJSON(), b.ModalitiesJSON()) {
		t.Error("same-seed /modalities payloads differ")
	}
	if !bytes.Equal(a.DriftJSON(), b.DriftJSON()) {
		t.Error("same-seed /drift payloads differ")
	}
	// And the documents carry the expected shape.
	m := a.Modalities()
	if len(m.Windows) != numWindows || m.Windows[0].Window != "1h" {
		t.Fatalf("modalities windows = %+v", m.Windows)
	}
	if m.Lifetime.TotalJobs == 0 || m.Ingested == 0 {
		t.Errorf("empty lifetime usage: %+v", m.Lifetime)
	}
	d := a.Drift()
	if d.Events == 0 || len(d.Windows) != numWindows || len(d.History) == 0 {
		t.Errorf("drift payload: events=%d windows=%d history=%d",
			d.Events, len(d.Windows), len(d.History))
	}
}

// TestFinalizeMatchesLiveBatch: the stream's end-of-run batch view over a
// real scenario matches the post-run classification.
func TestFinalizeMatchesLiveBatch(t *testing.T) {
	res, proc, _ := runTapped(t, 13)
	fin, err := proc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	want := core.NewClassifier(core.Config{LargestCores: res.LargestCores}).Classify(res.Central)
	got := make(map[int64]string, len(fin.Results))
	for _, r := range fin.Results {
		got[r.JobID] = string(r.Modality)
	}
	mismatch := 0
	for _, r := range want {
		if got[r.JobID] != string(r.Modality) {
			mismatch++
		}
	}
	if mismatch != 0 {
		t.Errorf("%d/%d per-job classifications differ between stream finalize and post-run batch",
			mismatch, len(want))
	}
}

// TestReplayPacing: -replay-speed sleeps in proportion to virtual time.
func TestReplayPacing(t *testing.T) {
	c := accounting.NewCentral()
	if err := c.Ingest(&accounting.Packet{Site: "s", Seq: 1, Jobs: []accounting.JobRecord{
		{JobID: 1, Cores: 1, SubmitTime: 0, EndTime: 600, ExitStatus: "completed"},
		{JobID: 2, Cores: 1, SubmitTime: 0, EndTime: 1800, ExitStatus: "completed"},
		{JobID: 3, Cores: 1, SubmitTime: 0, EndTime: 3600, ExitStatus: "completed"},
	}}); err != nil {
		t.Fatal(err)
	}
	var slept time.Duration
	rp := &Replay{
		Run:   &regress.Run{Central: c},
		Speed: 600, // 10 virtual minutes per wall second
		Sleep: func(d time.Duration) { slept += d },
	}
	p := New(Config{LargestCores: 512})
	if _, _, err := rp.Feed(p); err != nil {
		t.Fatal(err)
	}
	// 3000 virtual seconds elapse after the first record: 5s of wall.
	if want := 5 * time.Second; slept != want {
		t.Errorf("slept %v, want %v", slept, want)
	}
	// Unpaced replay never sleeps.
	slept = 0
	rp.Speed = 0
	if _, _, err := rp.Feed(New(Config{LargestCores: 512})); err != nil {
		t.Fatal(err)
	}
	if slept != 0 {
		t.Errorf("unpaced replay slept %v", slept)
	}
}

// TestReplayNeedsAccounting: a run dir without acct.jsonl cannot replay.
func TestReplayNeedsAccounting(t *testing.T) {
	rp := &Replay{Run: &regress.Run{}}
	if _, _, err := rp.Feed(New(Config{})); err == nil {
		t.Error("replay without accounting succeeded")
	}
}

// TestRebuildObsBuffer: decoded events re-encode byte-identically.
func TestRebuildObsBuffer(t *testing.T) {
	src := obs.NewBuffer()
	src.Record(obs.Event{At: 1, Phase: obs.PhaseBegin, Cat: "job", Name: "run", ID: 7,
		Args: []obs.KV{{Key: "user", Value: "u1"}, {Key: "cores", Value: 8}}})
	src.Record(obs.Event{At: 2, Phase: obs.PhaseEnd, Cat: "job", Name: "run", ID: 7})
	var a bytes.Buffer
	if err := src.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJSONL(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := RebuildObsBuffer(events).WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("obs round trip differs:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}
