package stream

import "encoding/json"

// The console payloads. Field order is fixed by the struct definitions,
// row order by the canonical taxonomy, and every number is a pure
// function of deterministic simulation state, so same-seed runs produce
// byte-identical documents (golden-tested).

// ModalityRow is one modality's slice of a windowed usage payload.
type ModalityRow struct {
	Modality   string  `json:"modality"`
	Jobs       int64   `json:"jobs"`
	NUs        float64 `json:"nus"`
	Confidence float64 `json:"confidence"` // mean online decision confidence
}

// ModalityWindow is the per-modality usage over one trailing window.
type ModalityWindow struct {
	Window    string        `json:"window"`
	TotalJobs int64         `json:"total_jobs"`
	TotalNUs  float64       `json:"total_nus"`
	Rows      []ModalityRow `json:"rows"`
}

// ModalitiesPayload is the /modalities document.
type ModalitiesPayload struct {
	At       float64          `json:"at"` // stream clock, virtual seconds
	Ingested uint64           `json:"ingested"`
	Dropped  uint64           `json:"dropped"`
	Windows  []ModalityWindow `json:"windows"`
	Lifetime ModalityWindow   `json:"lifetime"`
}

// Modalities builds the windowed per-modality usage view as of the
// stream clock.
func (p *Processor) Modalities() *ModalitiesPayload {
	now := p.now
	mods := p.usage.modalities()
	out := &ModalitiesPayload{
		At:       float64(now),
		Ingested: p.ingested,
		Dropped:  p.inbox.dropped,
	}
	for w := range streamWindows {
		win := ModalityWindow{Window: streamWindows[w].label}
		for _, m := range mods {
			jobs, nus := p.usage.windowTotals(w, m, now)
			win.TotalJobs += jobs
			win.TotalNUs += nus
			win.Rows = append(win.Rows, ModalityRow{
				Modality:   string(m),
				Jobs:       jobs,
				NUs:        nus,
				Confidence: p.online.meanConfidence(m),
			})
		}
		out.Windows = append(out.Windows, win)
	}
	life := ModalityWindow{Window: "lifetime"}
	for _, m := range mods {
		life.TotalJobs += p.usage.lifeJobs[m]
		life.TotalNUs += p.usage.lifeNUs[m]
		life.Rows = append(life.Rows, ModalityRow{
			Modality:   string(m),
			Jobs:       p.usage.lifeJobs[m],
			NUs:        p.usage.lifeNUs[m],
			Confidence: p.online.meanConfidence(m),
		})
	}
	out.Lifetime = life
	return out
}

// ModalitiesJSON renders the /modalities document.
func (p *Processor) ModalitiesJSON() []byte {
	return marshalPayload(p.Modalities())
}

// DriftWindow is the drift summary over one trailing window.
type DriftWindow struct {
	Window   string  `json:"window"`
	Events   int64   `json:"events"`
	Disagree int64   `json:"disagree"`
	Rate     float64 `json:"rate"`
	Peak     float64 `json:"peak"`
}

// DriftPayload is the /drift document.
type DriftPayload struct {
	At       float64       `json:"at"`
	Events   int64         `json:"events"`
	Disagree int64         `json:"disagree"`
	Rate     float64       `json:"rate"`
	Windows  []DriftWindow `json:"windows"`
	// History is the hourly agreement record (absolute virtual hours);
	// the drift experiment reads it back to localize a workload shift.
	History []driftCell `json:"history,omitempty"`
}

// Drift builds the drift view as of the stream clock.
func (p *Processor) Drift() *DriftPayload {
	now := p.now
	d := p.drift
	out := &DriftPayload{
		At:       float64(now),
		Events:   d.agree + d.disagree,
		Disagree: d.disagree,
		Rate:     d.lifetimeRate(),
	}
	for w := range streamWindows {
		good, bad := d.rings[w].totals(now)
		out.Windows = append(out.Windows, DriftWindow{
			Window:   streamWindows[w].label,
			Events:   good + bad,
			Disagree: bad,
			Rate:     d.windowRate(w, now),
			Peak:     d.peaks[w],
		})
	}
	out.History = d.history
	return out
}

// DriftJSON renders the /drift document.
func (p *Processor) DriftJSON() []byte {
	return marshalPayload(p.Drift())
}

// DriftHistory exposes the hourly agreement history (shared slice;
// callers must not modify).
func (p *Processor) DriftHistory() []DriftHistoryCell {
	h := p.drift.History()
	out := make([]DriftHistoryCell, len(h))
	for i, c := range h {
		out[i] = DriftHistoryCell{Hour: c.Hour, Agree: c.Agree, Disagree: c.Disagree}
	}
	return out
}

// DriftHistoryCell is one hour of classifier-agreement history.
type DriftHistoryCell struct {
	Hour     int64
	Agree    int64
	Disagree int64
}

// MarshalPayload renders a console payload (ModalitiesPayload,
// DriftPayload, or a federated aggregate of them) with the console's
// indentation style. Exported so the observatory daemon's per-run and
// fleet documents are byte-compatible with the in-process console's.
func MarshalPayload(v any) []byte {
	return marshalPayload(v)
}

// marshalPayload renders a payload with the console's indentation style;
// encoding/json output is deterministic for struct types.
func marshalPayload(v any) []byte {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		// Payload types contain no unmarshalable values; a failure here is
		// a programming error.
		panic("stream: marshal payload: " + err.Error())
	}
	return append(data, '\n')
}
