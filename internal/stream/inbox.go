package stream

import (
	"sort"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/des"
)

// itemKind tags the record variants flowing through the inbox.
type itemKind uint8

const (
	kindJob itemKind = iota
	kindTransfer
	kindGateway
	kindStorage
)

// item is one spooled record plus its intrinsic visibility time (job end,
// transfer end, attribute timestamp) — the time the online windows bucket
// it under, independent of when the site ledger happened to flush it.
type item struct {
	kind     itemKind
	at       des.Time
	job      accounting.JobRecord
	transfer accounting.TransferRecord
	gateway  accounting.GatewayAttrRecord
	storage  accounting.StorageRecord
}

// inbox is the bounded ingest spool: the pipeline's backpressure model.
// Offers push, Advance pops in FIFO order; pushing past cap drops the
// record and counts it. The high-water mark records the worst spool depth
// the run saw, so capacity tuning has a number to look at.
type inbox struct {
	cap       int // 0 = unbounded
	items     []item
	head      int
	dropped   uint64
	highWater int
}

// push spools an item, reporting false (and counting) when the cap is hit.
func (b *inbox) push(it item) bool {
	if b.cap > 0 && b.depth() >= b.cap {
		b.dropped++
		return false
	}
	b.items = append(b.items, it)
	if d := b.depth(); d > b.highWater {
		b.highWater = d
	}
	return true
}

// pop removes the oldest spooled item.
func (b *inbox) pop() (item, bool) {
	if b.head >= len(b.items) {
		// Fully drained: reset the backing slice so memory is reclaimed
		// between flush intervals instead of growing for the whole run.
		b.items = b.items[:0]
		b.head = 0
		return item{}, false
	}
	it := b.items[b.head]
	b.items[b.head] = item{}
	b.head++
	return it, true
}

// depth is the number of records currently spooled.
func (b *inbox) depth() int { return len(b.items) - b.head }

// Canonical record orders for Finalize: sorts keyed on record identity so
// the rebuilt database is independent of arrival order.

func canonicalJobs(in []accounting.JobRecord) []accounting.JobRecord {
	out := append([]accounting.JobRecord(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

func canonicalTransfers(in []accounting.TransferRecord) []accounting.TransferRecord {
	out := append([]accounting.TransferRecord(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i].TransferID < out[j].TransferID })
	return out
}

func canonicalGatewayAttrs(in []accounting.GatewayAttrRecord) []accounting.GatewayAttrRecord {
	out := append([]accounting.GatewayAttrRecord(nil), in...)
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.JobID != b.JobID {
			return a.JobID < b.JobID
		}
		if a.GatewayID != b.GatewayID {
			return a.GatewayID < b.GatewayID
		}
		return a.GatewayUser < b.GatewayUser
	})
	return out
}

func canonicalStorage(in []accounting.StorageRecord) []accounting.StorageRecord {
	out := append([]accounting.StorageRecord(nil), in...)
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Project < b.Project
	})
	return out
}
