package stream

import (
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
)

// numWindows is the count of trailing windows below (array sizing).
const numWindows = 3

// streamWindows are the trailing virtual-time windows the observatory
// reports over, mirroring the SLO layer's burn-rate windows: each window
// is covered by twelve absolute-indexed buckets so state stays O(buckets)
// at any event rate.
var streamWindows = [numWindows]struct {
	label  string
	span   des.Time
	bucket des.Time
}{
	{"1h", des.Hour, 5 * des.Minute},
	{"6h", 6 * des.Hour, 30 * des.Minute},
	{"24h", 24 * des.Hour, 2 * des.Hour},
}

// usageCell is one bucket of one modality's usage ring.
type usageCell struct {
	jobs int64
	nus  float64
}

// usageRing tracks one modality's job/NU totals over one trailing window.
// Buckets are absolute-indexed (bucket i covers [i·width, (i+1)·width)),
// so advancing just zeroes the buckets the clock skipped.
type usageRing struct {
	width   des.Time
	buckets []usageCell
	lastIdx int64
	primed  bool
}

func newUsageRing(width des.Time, n int) *usageRing {
	return &usageRing{width: width, buckets: make([]usageCell, n)}
}

func (r *usageRing) idx(t des.Time) int64 { return int64(t / r.width) }

func (r *usageRing) advance(now des.Time) {
	i := r.idx(now)
	if !r.primed {
		r.primed = true
		r.lastIdx = i
		return
	}
	if i <= r.lastIdx {
		return
	}
	steps := i - r.lastIdx
	if steps > int64(len(r.buckets)) {
		steps = int64(len(r.buckets))
	}
	for s := int64(1); s <= steps; s++ {
		r.buckets[(r.lastIdx+s)%int64(len(r.buckets))] = usageCell{}
	}
	r.lastIdx = i
}

func (r *usageRing) add(now des.Time, nus float64) {
	r.advance(now)
	b := &r.buckets[r.idx(now)%int64(len(r.buckets))]
	b.jobs++
	b.nus += nus
}

func (r *usageRing) totals(now des.Time) (jobs int64, nus float64) {
	r.advance(now)
	for _, b := range r.buckets {
		jobs += b.jobs
		nus += b.nus
	}
	return jobs, nus
}

// usageWindows maintains the windowed per-modality usage view: one ring
// per (window, modality), created lazily, plus lifetime totals.
type usageWindows struct {
	rings [numWindows]map[job.Modality]*usageRing
	// Lifetime totals, for the report denominators and the modality list.
	lifeJobs map[job.Modality]int64
	lifeNUs  map[job.Modality]float64
}

func newUsageWindows() *usageWindows {
	u := &usageWindows{
		lifeJobs: make(map[job.Modality]int64),
		lifeNUs:  make(map[job.Modality]float64),
	}
	for i := range u.rings {
		u.rings[i] = make(map[job.Modality]*usageRing)
	}
	return u
}

// observe accounts one classified job at its visibility time.
func (u *usageWindows) observe(at des.Time, m job.Modality, nus, confidence float64) {
	_ = confidence // tracked per modality by the online classifier
	u.lifeJobs[m]++
	u.lifeNUs[m] += nus
	for i, w := range streamWindows {
		ring := u.rings[i][m]
		if ring == nil {
			ring = newUsageRing(w.bucket, int(w.span/w.bucket))
			u.rings[i][m] = ring
		}
		ring.add(at, nus)
	}
}

// modalities returns every modality with lifetime usage, in canonical
// taxonomy order (then lexical for anything outside the taxonomy).
func (u *usageWindows) modalities() []job.Modality {
	out := make([]job.Modality, 0, len(u.lifeJobs))
	seen := make(map[job.Modality]bool, len(u.lifeJobs))
	for _, m := range job.AllModalities {
		if u.lifeJobs[m] > 0 {
			out = append(out, m)
			seen[m] = true
		}
	}
	rest := make([]job.Modality, 0)
	for m := range u.lifeJobs {
		if !seen[m] {
			rest = append(rest, m)
		}
	}
	// Deterministic tail order.
	for i := 1; i < len(rest); i++ {
		for j := i; j > 0 && rest[j] < rest[j-1]; j-- {
			rest[j], rest[j-1] = rest[j-1], rest[j]
		}
	}
	return append(out, rest...)
}

// windowTotals returns the (jobs, nus) totals for one modality in one
// trailing window as of now.
func (u *usageWindows) windowTotals(w int, m job.Modality, now des.Time) (int64, float64) {
	ring := u.rings[w][m]
	if ring == nil {
		return 0, 0
	}
	return ring.totals(now)
}
