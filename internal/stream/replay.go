package stream

import (
	"fmt"
	"sort"
	"time"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/obs"
	"github.com/tgsim/tgmod/internal/regress"
)

// Replay feeds a processor from an exported run directory, reproducing
// the live pipeline's view from cold storage: accounting records and obs
// span events are merged into one virtual-time-ordered stream and
// offered in sequence, optionally paced against the wall clock.
type Replay struct {
	// Run is the loaded export (regress.LoadRunDir). At least the
	// accounting trace must be present.
	Run *regress.Run
	// Speed is the replay rate in virtual seconds per wall second;
	// 0 replays as fast as possible. (Speed 3600 plays an hour of
	// simulation per second.)
	Speed float64
	// EndTime, when positive, is the final stream-clock position —
	// normally the exported run's horizon+drain from the manifest, so
	// trailing windows expire exactly as they had live. Zero leaves the
	// clock at the last record.
	EndTime des.Time
	// Sleep replaces time.Sleep for pacing (tests inject a recorder).
	Sleep func(time.Duration)
}

// replayItem is one merged timeline entry.
type replayItem struct {
	at   des.Time
	prio int // kind priority at equal times: evidence before jobs
	seq  int // original index, for a stable merge
	feed func(p *Processor)
}

// Feed streams the export through the processor in virtual-time order
// and returns the number of records and span events offered. The caller
// finalizes (or queries) the processor afterwards.
func (rp *Replay) Feed(p *Processor) (records, spans int, err error) {
	if rp.Run == nil || rp.Run.Central == nil {
		return 0, 0, fmt.Errorf("stream: replay needs an export with %s", regress.AcctFile)
	}
	items := rp.merge()
	sleep := rp.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var clock des.Time
	var owed time.Duration
	primed := false
	for _, it := range items {
		if primed && rp.Speed > 0 && it.at > clock {
			owed += time.Duration(float64(it.at-clock) / rp.Speed * float64(time.Second))
			// Batch sub-millisecond debts so a dense stream doesn't issue
			// millions of no-op sleeps.
			if owed >= time.Millisecond {
				sleep(owed)
				owed = 0
			}
		}
		if it.at > clock || !primed {
			clock = it.at
			primed = true
		}
		it.feed(p)
	}
	if owed > 0 {
		sleep(owed)
	}
	end := rp.EndTime
	if end < clock {
		end = clock
	}
	p.Advance(end)
	return len(items) - len(rp.Run.Events), len(rp.Run.Events), nil
}

// merge builds the unified timeline: gateway attributes, transfers and
// storage snapshots at their record timestamps ahead of jobs at their
// completion times, interleaved with obs span events, stably ordered by
// (time, kind, original index) so the stream is deterministic for a
// given export.
func (rp *Replay) merge() []replayItem {
	c := rp.Run.Central
	items := make([]replayItem, 0,
		len(c.Jobs())+len(c.Transfers())+len(c.GatewayAttrs())+len(c.StorageRecords())+len(rp.Run.Events))
	for i := range c.GatewayAttrs() {
		r := c.GatewayAttrs()[i]
		items = append(items, replayItem{at: des.Time(r.At), prio: 0, seq: i,
			feed: func(p *Processor) { p.OfferGatewayAttr(r) }})
	}
	for i := range c.Transfers() {
		r := c.Transfers()[i]
		items = append(items, replayItem{at: des.Time(r.End), prio: 1, seq: i,
			feed: func(p *Processor) { p.OfferTransfer(r) }})
	}
	for i := range c.StorageRecords() {
		r := c.StorageRecords()[i]
		items = append(items, replayItem{at: des.Time(r.At), prio: 2, seq: i,
			feed: func(p *Processor) { p.OfferStorage(r) }})
	}
	for i := range c.Jobs() {
		r := c.Jobs()[i]
		items = append(items, replayItem{at: des.Time(r.EndTime), prio: 3, seq: i,
			feed: func(p *Processor) {
				p.OfferJob(r)
				p.Advance(p.now) // drain immediately: replay depth mirrors live per-flush drains
			}})
	}
	for i := range rp.Run.Events {
		ev := rp.Run.Events[i]
		items = append(items, replayItem{at: ev.At, prio: 4, seq: i,
			feed: func(p *Processor) { p.OfferObs(ev) }})
	}
	sort.SliceStable(items, func(i, j int) bool {
		a, b := &items[i], &items[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.prio != b.prio {
			return a.prio < b.prio
		}
		return a.seq < b.seq
	})
	return items
}

// RebuildObsBuffer reassembles an obs buffer from decoded events, so a
// replayed run can re-export obs.jsonl byte-identically (the JSONL codec
// round-trips exactly).
func RebuildObsBuffer(events []obs.Event) *obs.Buffer {
	b := obs.NewBuffer()
	for _, ev := range events {
		b.Record(ev)
	}
	return b
}
