package stream

import (
	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// Decision is one online classification: the modality the stream assigns
// a record the moment it arrives, with the evidence tag and a heuristic
// confidence for how reliable that tier of evidence is.
type Decision struct {
	Modality   job.Modality
	Source     core.Source
	Evidence   string
	Confidence float64
}

// Evidence-tier confidences. Direct accounting fields and deployed
// attributes are near-certain; behavioral inference and the size-based
// default split are progressively weaker. The values are heuristic
// weights for dashboards, not calibrated probabilities — drift against
// trailing ground truth (driftMonitor) is the calibrated signal.
const (
	confQOS       = 0.99
	confAttribute = 0.97
	confStaged    = 0.90
	confBurst     = 0.75
	confChain     = 0.70
	confSizeCap   = 0.60
	confSizeDef   = 0.55
)

// online is the incremental classifier. It applies the same direct-
// evidence rules as the batch classifier's first pass, then approximates
// the behavioral-inference pass with running burst/chain state instead of
// global sorts. The approximation is one-sided: the first records of a
// burst or chain classify as batch before the pattern is established and
// are never retroactively relabeled — that lag is real classifier error
// and shows up honestly in the drift windows.
type online struct {
	cfg core.Config

	// Evidence indexes, built as attribute/transfer records stream in.
	gwAttr map[int64]bool
	staged map[int64]int64

	// Burst state for ensemble inference: per (user, name, cores), the
	// submit time of the last undecided member and the current run length.
	bursts map[burstKey]*burstState
	// Chain state for workflow inference: per user, the end time of the
	// last undecided job and the current link count.
	chains map[string]*chainState

	// Per-modality decision tallies: count and confidence sum, for the
	// mean-confidence column of the /modalities payload.
	count   map[job.Modality]int64
	confSum map[job.Modality]float64

	decided *telemetry.CounterVec
}

type burstKey struct {
	user, name string
	cores      int
}

type burstState struct {
	lastSubmit float64
	run        int
}

type chainState struct {
	lastEnd float64
	links   int
}

func newOnline(cfg core.Config) *online {
	return &online{
		cfg:     withClassifierDefaults(cfg),
		gwAttr:  make(map[int64]bool),
		staged:  make(map[int64]int64),
		bursts:  make(map[burstKey]*burstState),
		chains:  make(map[string]*chainState),
		count:   make(map[job.Modality]int64),
		confSum: make(map[job.Modality]float64),
	}
}

// withClassifierDefaults mirrors core.Config's zero-value defaults so the
// online rules and the batch classifier always agree on thresholds.
func withClassifierDefaults(c core.Config) core.Config {
	if c.CapabilityFrac == 0 {
		c.CapabilityFrac = 0.5
	}
	if c.EnsembleMinJobs == 0 {
		c.EnsembleMinJobs = 5
	}
	if c.EnsembleWindow == 0 {
		c.EnsembleWindow = 3600
	}
	if c.ChainMinLinks == 0 {
		c.ChainMinLinks = 3
	}
	if c.ChainSlack == 0 {
		c.ChainSlack = 300
	}
	if c.DataBytesThreshold == 0 {
		c.DataBytesThreshold = 5 << 30
	}
	return c
}

func (o *online) bind(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	o.decided = reg.Counter("tg_stream_classified_total",
		"Online classification decisions by modality and evidence tier.",
		"modality", "source")
}

// noteGatewayAttr indexes a gateway end-user attribute record.
func (o *online) noteGatewayAttr(r *accounting.GatewayAttrRecord) {
	o.gwAttr[r.JobID] = true
}

// noteTransfer accumulates staged bytes per referenced job.
func (o *online) noteTransfer(r *accounting.TransferRecord) {
	if r.JobID != 0 {
		o.staged[r.JobID] += r.Bytes
	}
}

// classify decides one job record online. It never reads the record's
// ground-truth fields; the measurement/truth separation the batch
// classifier enforces holds on the streaming path too (tested).
func (o *online) classify(r *accounting.JobRecord) Decision {
	d := o.decide(r)
	o.count[d.Modality]++
	o.confSum[d.Modality] += d.Confidence
	if o.decided != nil {
		o.decided.With(string(d.Modality), d.Source.String()).Inc()
	}
	return d
}

func (o *online) decide(r *accounting.JobRecord) Decision {
	// Tier 1: direct evidence, rule-for-rule the batch classifier's
	// first pass.
	switch {
	case r.QOS == "urgent":
		return Decision{job.ModUrgent, core.SourceAccounting, core.EvQOSUrgent, confQOS}
	case r.QOS == "interactive":
		return Decision{job.ModInteractive, core.SourceAccounting, core.EvQOSInteractive, confQOS}
	case r.GatewayID != "":
		return Decision{job.ModGateway, core.SourceAttribute, core.EvGatewayID, confAttribute}
	case r.SubmitVia == "gateway":
		return Decision{job.ModGateway, core.SourceAttribute, core.EvSubmitVia, confAttribute}
	case o.gwAttr[r.JobID]:
		return Decision{job.ModGateway, core.SourceAttribute, core.EvGatewayUserRec, confAttribute}
	case r.CoAllocID != "":
		return Decision{job.ModMetascheduled, core.SourceAttribute, core.EvCoAllocID, confAttribute}
	case r.BrokerJobID != "":
		return Decision{job.ModMetascheduled, core.SourceAttribute, core.EvBrokerID, confAttribute}
	case r.SubmitVia == "metasched":
		return Decision{job.ModMetascheduled, core.SourceAttribute, core.EvSubmitVia, confAttribute}
	case r.WorkflowID != "":
		return Decision{job.ModWorkflow, core.SourceAttribute, core.EvWorkflowID, confAttribute}
	case r.EnsembleID != "":
		return Decision{job.ModEnsemble, core.SourceAttribute, core.EvEnsembleID, confAttribute}
	case o.staged[r.JobID] >= o.cfg.DataBytesThreshold:
		return Decision{job.ModDataCentric, core.SourceAccounting, core.EvStagedBytes, confStaged}
	}

	// Tier 2: behavioral inference over running state. Records arrive in
	// completion order, not submission order, so gaps are measured as
	// magnitudes — close enough for burst detection, and the residual
	// error is exactly what the drift monitor measures.
	bk := burstKey{r.User, r.Name, r.Cores}
	bs := o.bursts[bk]
	if bs == nil {
		bs = &burstState{lastSubmit: r.SubmitTime}
		o.bursts[bk] = bs
		bs.run = 1
	} else {
		gap := r.SubmitTime - bs.lastSubmit
		if gap < 0 {
			gap = -gap
		}
		if gap <= o.cfg.EnsembleWindow {
			bs.run++
		} else {
			bs.run = 1
		}
		bs.lastSubmit = r.SubmitTime
	}
	if bs.run >= o.cfg.EnsembleMinJobs {
		return Decision{job.ModEnsemble, core.SourceInference, core.EvBurst, confBurst}
	}

	cs := o.chains[r.User]
	if cs == nil {
		cs = &chainState{lastEnd: r.EndTime, links: 1}
		o.chains[r.User] = cs
	} else {
		gap := r.SubmitTime - cs.lastEnd
		if gap >= 0 && gap <= o.cfg.ChainSlack {
			cs.links++
		} else {
			cs.links = 1
		}
		cs.lastEnd = r.EndTime
	}
	if cs.links >= o.cfg.ChainMinLinks {
		return Decision{job.ModWorkflow, core.SourceInference, core.EvChain, confChain}
	}

	// Tier 3: size-based batch split.
	if o.cfg.LargestCores > 0 &&
		float64(r.Cores) >= o.cfg.CapabilityFrac*float64(o.cfg.LargestCores) {
		return Decision{job.ModBatchCapability, core.SourceAccounting, core.EvCapabilitySize, confSizeCap}
	}
	return Decision{job.ModBatchCapacity, core.SourceAccounting, core.EvDefaultCapacity, confSizeDef}
}

// meanConfidence returns the running mean decision confidence for a
// modality (0 when it has no decisions yet).
func (o *online) meanConfidence(m job.Modality) float64 {
	n := o.count[m]
	if n == 0 {
		return 0
	}
	return o.confSum[m] / float64(n)
}
