// Package stream is the streaming modality observatory: a long-running
// ingest pipeline that consumes accounting packets and gateway attribute
// records as an ordered event stream and maintains, online, what the
// batch analysis in internal/core computes post-run — windowed
// per-modality usage, an incremental classifier with per-decision
// confidence, and drift of the classifier against the trailing
// ground-truth labels carried in the records.
//
// The pipeline has two mounts:
//
//   - Live: Tap(p) attaches the processor to a scenario run through the
//     Observer seam. Every site-ledger flush hands the processor the
//     packet after central ingest, so the stream sees exactly the records
//     the accounting database sees, in the same deterministic order, and
//     adds zero kernel events (same-seed runs stay byte-identical).
//   - Replay: Replay feeds the processor from an exported run directory
//     (acct.jsonl + obs.jsonl) at configurable speed, reproducing the
//     live pipeline's view from cold storage.
//
// Records pass through a bounded inbox (the backpressure model): offers
// spool, Advance drains. When the inbox cap is exceeded the record is
// dropped and counted — surfaced as tg_stream_dropped_total, in the
// console /status payload, and by tgsim -strict-obs.
//
// Replay equivalence: the online layer is windowed and approximate by
// design, but the end-of-stream report is not. Finalize rebuilds an
// accounting database from the accepted records in canonical order and
// runs the unchanged batch classifier, which is record-order-invariant;
// cmd/tgsim's -replay path goes one step further and classifies the
// loaded export directly (imports preserve ingestion order), so a
// replayed run reproduces the live post-run modality report
// byte-identically.
package stream

import (
	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/obs"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// Config parameterizes a Processor.
type Config struct {
	// LargestCores is the batch-core count of the federation's largest
	// machine, required by the capability/capacity size split (same role
	// as core.Config.LargestCores).
	LargestCores int
	// Classifier tunes the online rules; zero values take the same
	// defaults as the batch classifier. LargestCores above wins over
	// Classifier.LargestCores when both are set.
	Classifier core.Config
	// InboxCap bounds the ingest spool (0 = unbounded). Records offered
	// past the cap are dropped and counted, never silently lost.
	InboxCap int
	// Registry, when non-nil, receives the tg_stream_* and tg_drift_*
	// families. Only ever touched from the goroutine driving the offers.
	Registry *telemetry.Registry
}

// Processor is the streaming pipeline state. It is single-goroutine by
// construction (offers and queries both run on the simulation or replay
// goroutine); concurrent HTTP consumers only ever see payloads it has
// already rendered and published elsewhere.
type Processor struct {
	cfg    Config
	inbox  inbox
	now    des.Time
	online *online
	usage  *usageWindows
	drift  *driftMonitor

	// Accepted records, in arrival order, for the end-of-stream report.
	jobs         []accounting.JobRecord
	transfers    []accounting.TransferRecord
	gatewayAttrs []accounting.GatewayAttrRecord
	storage      []accounting.StorageRecord

	ingested  uint64 // records accepted into the inbox
	obsEvents uint64 // obs events counted past the pipeline (not spooled)

	// Pre-resolved instruments (nil without a registry; all nil-safe).
	cIngested map[itemKind]*telemetry.Counter
	cObs      *telemetry.Counter
	cDropped  *telemetry.Counter
}

// New returns a processor for the given configuration.
func New(cfg Config) *Processor {
	ccfg := cfg.Classifier
	if cfg.LargestCores > 0 {
		ccfg.LargestCores = cfg.LargestCores
	}
	p := &Processor{
		cfg:    cfg,
		inbox:  inbox{cap: cfg.InboxCap},
		online: newOnline(ccfg),
		usage:  newUsageWindows(),
		drift:  newDriftMonitor(),
	}
	p.bind(cfg.Registry)
	return p
}

// bind registers the tg_stream_* and tg_drift_* families.
func (p *Processor) bind(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	ing := reg.Counter("tg_stream_ingested_total",
		"Records accepted into the streaming ingest pipeline by kind.", "kind")
	p.cIngested = map[itemKind]*telemetry.Counter{
		kindJob:      ing.With("job"),
		kindTransfer: ing.With("transfer"),
		kindGateway:  ing.With("gateway_attr"),
		kindStorage:  ing.With("storage"),
	}
	p.cObs = ing.With("obs")
	p.cDropped = reg.Counter("tg_stream_dropped_total",
		"Records dropped by the streaming inbox under backpressure.").With()
	depth := reg.Gauge("tg_stream_inbox_depth",
		"Records currently spooled in the streaming inbox.")
	depth.Func(func() float64 { return float64(p.inbox.depth()) })
	hw := reg.Gauge("tg_stream_inbox_high_water",
		"Maximum streaming inbox depth observed.")
	hw.Func(func() float64 { return float64(p.inbox.highWater) })
	p.drift.bind(reg, func() des.Time { return p.now })
	p.online.bind(reg)
}

// OfferPacket spools every record of a freshly flushed accounting packet
// and drains the inbox at the flush time. Attribute and transfer records
// are offered before the job records they evidence, so an online decision
// never misses same-packet evidence.
func (p *Processor) OfferPacket(at des.Time, pkt *accounting.Packet) {
	if pkt == nil {
		return
	}
	for i := range pkt.GatewayAttrs {
		p.OfferGatewayAttr(pkt.GatewayAttrs[i])
	}
	for i := range pkt.Transfers {
		p.OfferTransfer(pkt.Transfers[i])
	}
	for i := range pkt.Storage {
		p.OfferStorage(pkt.Storage[i])
	}
	for i := range pkt.Jobs {
		p.OfferJob(pkt.Jobs[i])
	}
	p.Advance(at)
}

// OfferJob spools one job usage record.
func (p *Processor) OfferJob(r accounting.JobRecord) {
	p.offer(item{kind: kindJob, at: des.Time(r.EndTime), job: r})
}

// OfferTransfer spools one data-transfer record.
func (p *Processor) OfferTransfer(r accounting.TransferRecord) {
	p.offer(item{kind: kindTransfer, at: des.Time(r.End), transfer: r})
}

// OfferGatewayAttr spools one gateway end-user attribute record.
func (p *Processor) OfferGatewayAttr(r accounting.GatewayAttrRecord) {
	p.offer(item{kind: kindGateway, at: des.Time(r.At), gateway: r})
}

// OfferStorage spools one storage snapshot record.
func (p *Processor) OfferStorage(r accounting.StorageRecord) {
	p.offer(item{kind: kindStorage, at: des.Time(r.At), storage: r})
}

// OfferObs counts one obs span event through the pipeline. Span events
// carry no accounting state, so they advance the stream clock and the
// ingest counters without touching the classifier.
func (p *Processor) OfferObs(ev obs.Event) {
	p.obsEvents++
	p.cObs.Inc()
	if ev.At > p.now {
		p.now = ev.At
	}
}

func (p *Processor) offer(it item) {
	if !p.inbox.push(it) {
		p.cDropped.Inc()
		return
	}
	p.ingested++
	if c := p.cIngested[it.kind]; c != nil {
		c.Inc()
	}
}

// Advance moves the stream clock to now and drains the inbox: every
// spooled record is classified, windowed, and scored for drift. Time
// never moves backwards (late offers land in the current bucket).
func (p *Processor) Advance(now des.Time) {
	if now > p.now {
		p.now = now
	}
	for {
		it, ok := p.inbox.pop()
		if !ok {
			return
		}
		p.process(it)
	}
}

// process applies one accepted record to every online layer.
func (p *Processor) process(it item) {
	at := it.at
	if at > p.now {
		p.now = at
	}
	switch it.kind {
	case kindJob:
		r := it.job
		p.jobs = append(p.jobs, r)
		d := p.online.classify(&r)
		p.usage.observe(at, d.Modality, r.NUs, d.Confidence)
		p.drift.observe(at, d.Modality, r.TruthModality)
	case kindTransfer:
		p.transfers = append(p.transfers, it.transfer)
		p.online.noteTransfer(&it.transfer)
	case kindGateway:
		p.gatewayAttrs = append(p.gatewayAttrs, it.gateway)
		p.online.noteGatewayAttr(&it.gateway)
	case kindStorage:
		p.storage = append(p.storage, it.storage)
	}
}

// Now returns the stream clock: the latest virtual time offered or
// advanced to. Deterministic — the processor never reads the wall clock.
func (p *Processor) Now() des.Time { return p.now }

// Ingested returns how many records the pipeline accepted.
func (p *Processor) Ingested() uint64 { return p.ingested }

// Dropped returns how many records the inbox dropped under backpressure.
func (p *Processor) Dropped() uint64 { return p.inbox.dropped }

// Snap returns the ingest-state slice of a progress snapshot.
func (p *Processor) Snap() telemetry.StreamSnap {
	return telemetry.StreamSnap{
		Ingested:  p.ingested,
		Dropped:   p.inbox.dropped,
		Depth:     p.inbox.depth(),
		HighWater: p.inbox.highWater,
	}
}

// Final is the end-of-stream batch view: the accepted records as an
// accounting database, the batch classifier's results over them, and the
// aggregated usage report.
type Final struct {
	Central *accounting.Central
	Results []core.Result
	Report  *core.Report
}

// Finalize closes the stream (draining anything still spooled) and runs
// the unchanged batch classifier over every accepted record, rebuilt as
// an accounting database in canonical record order. Because the batch
// classifier is record-order-invariant, the per-job classifications equal
// what a post-run Classify over the live database produces, no matter
// what order the stream saw the records in.
func (p *Processor) Finalize() (*Final, error) {
	p.Advance(p.now)
	c := accounting.NewCentral()
	pkt := &accounting.Packet{
		Site: "stream", Seq: 1, SentAt: float64(p.now),
		Jobs:         canonicalJobs(p.jobs),
		Transfers:    canonicalTransfers(p.transfers),
		GatewayAttrs: canonicalGatewayAttrs(p.gatewayAttrs),
		Storage:      canonicalStorage(p.storage),
	}
	if err := c.Ingest(pkt); err != nil {
		return nil, err
	}
	ccfg := p.cfg.Classifier
	if p.cfg.LargestCores > 0 {
		ccfg.LargestCores = p.cfg.LargestCores
	}
	results := core.NewClassifier(ccfg).Classify(c)
	return &Final{Central: c, Results: results, Report: core.BuildReport(c, results)}, nil
}
