package stream

import (
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// driftMonitor scores the online classifier against the trailing
// ground-truth labels carried in the records (the generator's
// TruthModality, which classifiers themselves never read). Agreement is
// tracked over the same burn-style trailing windows as usage, plus
// lifetime totals, peak in-window drift, and an append-only hourly
// history the drift experiment reads back to localize a workload shift.
//
// "Drift" here is the disagreement rate: the fraction of recent
// classifications that contradict their trailing truth label. A workload
// shift the online rules don't capture (e.g. a surge of untagged
// campaigns) pushes the short windows up first — exactly the burn-rate
// alerting shape the SLO layer uses.
type driftMonitor struct {
	rings [numWindows]*driftRing
	peaks [numWindows]float64

	agree    int64
	disagree int64

	// history accumulates per-hour agreement cells in virtual-time order.
	history    []driftCell
	histIdx    int64 // absolute hour index of the open cell
	histPrimed bool

	cAgree    *telemetry.Counter
	cDisagree *telemetry.Counter
}

// driftCell is one closed hour of agreement history.
type driftCell struct {
	Hour     int64 `json:"hour"` // absolute virtual hour index
	Agree    int64 `json:"agree"`
	Disagree int64 `json:"disagree"`
}

// driftRing is a good/bad ring over one trailing window (the slo ring
// shape, duplicated here to keep the packages decoupled).
type driftRing struct {
	width   des.Time
	buckets []struct{ good, bad int64 }
	lastIdx int64
	primed  bool
}

func newDriftRing(width des.Time, n int) *driftRing {
	return &driftRing{width: width, buckets: make([]struct{ good, bad int64 }, n)}
}

func (r *driftRing) idx(t des.Time) int64 { return int64(t / r.width) }

func (r *driftRing) advance(now des.Time) {
	i := r.idx(now)
	if !r.primed {
		r.primed = true
		r.lastIdx = i
		return
	}
	if i <= r.lastIdx {
		return
	}
	steps := i - r.lastIdx
	if steps > int64(len(r.buckets)) {
		steps = int64(len(r.buckets))
	}
	for s := int64(1); s <= steps; s++ {
		r.buckets[(r.lastIdx+s)%int64(len(r.buckets))] = struct{ good, bad int64 }{}
	}
	r.lastIdx = i
}

func (r *driftRing) add(now des.Time, good bool) {
	r.advance(now)
	b := &r.buckets[r.idx(now)%int64(len(r.buckets))]
	if good {
		b.good++
	} else {
		b.bad++
	}
}

func (r *driftRing) totals(now des.Time) (good, bad int64) {
	r.advance(now)
	for _, b := range r.buckets {
		good += b.good
		bad += b.bad
	}
	return good, bad
}

func newDriftMonitor() *driftMonitor {
	d := &driftMonitor{}
	for i, w := range streamWindows {
		d.rings[i] = newDriftRing(w.bucket, int(w.span/w.bucket))
	}
	return d
}

func (d *driftMonitor) bind(reg *telemetry.Registry, now func() des.Time) {
	if reg == nil {
		return
	}
	events := reg.Counter("tg_drift_events_total",
		"Online classifications scored against trailing ground truth, by result.", "result")
	d.cAgree = events.With("agree")
	d.cDisagree = events.With("disagree")
	rate := reg.Gauge("tg_drift_rate",
		"Classifier drift (disagreement fraction) per trailing virtual-time window.", "window")
	peak := reg.Gauge("tg_drift_peak",
		"Worst in-window classifier drift observed so far.", "window")
	for i := range streamWindows {
		i := i
		rate.Func(func() float64 { return d.windowRate(i, now()) }, streamWindows[i].label)
		peak.Func(func() float64 { return d.peaks[i] }, streamWindows[i].label)
	}
}

// observe scores one classification against its trailing truth label.
// Records without a truth label (operationally: real deployments) score
// as agreement-unknown and are skipped rather than counted either way.
func (d *driftMonitor) observe(at des.Time, measured job.Modality, truth string) {
	if truth == "" {
		return
	}
	good := string(measured) == truth
	if good {
		d.agree++
		d.cAgree.Inc()
	} else {
		d.disagree++
		d.cDisagree.Inc()
	}
	for i := range d.rings {
		d.rings[i].add(at, good)
		if r := d.windowRate(i, at); r > d.peaks[i] {
			d.peaks[i] = r
		}
	}
	d.recordHistory(at, good)
}

// recordHistory rolls the append-only hourly history forward.
func (d *driftMonitor) recordHistory(at des.Time, good bool) {
	hour := int64(at / des.Hour)
	if !d.histPrimed || hour != d.histIdx {
		d.history = append(d.history, driftCell{Hour: hour})
		d.histIdx = hour
		d.histPrimed = true
	}
	cell := &d.history[len(d.history)-1]
	if good {
		cell.Agree++
	} else {
		cell.Disagree++
	}
}

// windowRate returns the disagreement fraction in window w as of now
// (0 when the window is empty).
func (d *driftMonitor) windowRate(w int, now des.Time) float64 {
	good, bad := d.rings[w].totals(now)
	if good+bad == 0 {
		return 0
	}
	return float64(bad) / float64(good+bad)
}

// lifetimeRate returns the run-wide disagreement fraction.
func (d *driftMonitor) lifetimeRate() float64 {
	if d.agree+d.disagree == 0 {
		return 0
	}
	return float64(d.disagree) / float64(d.agree+d.disagree)
}

// History returns the closed-plus-open hourly agreement cells in
// virtual-time order. Callers must not modify the slice.
func (d *driftMonitor) History() []driftCell { return d.history }
