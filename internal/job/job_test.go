package job

import (
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/des"
)

func valid() *Job {
	return &Job{
		ID: 1, Name: "run.sh", User: "alice", Project: "TG-MCA001",
		Cores: 64, ReqWalltime: 4 * des.Hour, RunTime: 3 * des.Hour,
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		StatePending:   "pending",
		StateQueued:    "queued",
		StateRunning:   "running",
		StateCompleted: "completed",
		StateKilled:    "killed",
		StatePreempted: "preempted",
		StateFailed:    "failed",
		State(99):      "state(99)",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestStateTerminal(t *testing.T) {
	terminal := map[State]bool{
		StatePending: false, StateQueued: false, StateRunning: false,
		StateCompleted: true, StateKilled: true, StatePreempted: false,
		StateFailed: true,
	}
	for s, want := range terminal {
		if got := s.Terminal(); got != want {
			t.Errorf("State %v Terminal() = %v, want %v", s, got, want)
		}
	}
}

func TestQOSString(t *testing.T) {
	if QOSNormal.String() != "normal" || QOSUrgent.String() != "urgent" ||
		QOSInteractive.String() != "interactive" || QOS(9).String() != "qos(9)" {
		t.Error("QOS string names wrong")
	}
}

func TestTimings(t *testing.T) {
	j := valid()
	j.SubmitTime = 100
	j.StartTime = 400
	j.EndTime = 1000
	if got := j.WaitTime(); got != 300 {
		t.Errorf("WaitTime = %v, want 300", got)
	}
	if got := j.Elapsed(); got != 600 {
		t.Errorf("Elapsed = %v, want 600", got)
	}
	if got := j.CoreSeconds(); got != 600*64 {
		t.Errorf("CoreSeconds = %v, want %v", got, 600*64)
	}
}

func TestTimingsBeforeStart(t *testing.T) {
	j := valid()
	j.SubmitTime = 100
	if j.WaitTime() != 0 || j.Elapsed() != 0 || j.CoreSeconds() != 0 {
		t.Error("unstarted job should report zero wait/elapsed/core-seconds")
	}
}

func TestBoundedSlowdown(t *testing.T) {
	j := valid()
	j.SubmitTime = 0
	j.StartTime = 100
	j.EndTime = 200 // run=100, wait=100 → slowdown 2
	if got := j.BoundedSlowdown(); got != 2 {
		t.Errorf("BoundedSlowdown = %v, want 2", got)
	}
	// Very short job: bound kicks in. run=1, wait=99 → (99+1)/10 = 10
	j.StartTime = 99
	j.EndTime = 100
	if got := j.BoundedSlowdown(); got != 10 {
		t.Errorf("BoundedSlowdown short job = %v, want 10", got)
	}
	// No wait, long run → exactly 1.
	j.SubmitTime = 0
	j.StartTime = 0
	j.EndTime = 1000
	if got := j.BoundedSlowdown(); got != 1 {
		t.Errorf("BoundedSlowdown no-wait = %v, want 1", got)
	}
}

func TestValidate(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []struct {
		mutate func(*Job)
		want   string
	}{
		{func(j *Job) { j.Cores = 0 }, "cores"},
		{func(j *Job) { j.ReqWalltime = 0 }, "walltime"},
		{func(j *Job) { j.RunTime = 0 }, "runtime"},
		{func(j *Job) { j.User = "" }, "user"},
		{func(j *Job) { j.Project = "" }, "project"},
	}
	for _, c := range cases {
		j := valid()
		c.mutate(j)
		err := j.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("expected %q error, got %v", c.want, err)
		}
	}
}

func TestAllModalitiesDistinct(t *testing.T) {
	seen := map[Modality]bool{}
	for _, m := range AllModalities {
		if seen[m] {
			t.Errorf("duplicate modality %q", m)
		}
		seen[m] = true
	}
	if len(AllModalities) != 9 {
		t.Errorf("taxonomy has %d modalities, want 9", len(AllModalities))
	}
}

func TestJobString(t *testing.T) {
	s := valid().String()
	for _, part := range []string{"job 1", "alice", "TG-MCA001", "cores=64", "qos=normal"} {
		if !strings.Contains(s, part) {
			t.Errorf("String() = %q missing %q", s, part)
		}
	}
}
