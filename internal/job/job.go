// Package job defines the shared domain model for work submitted to the
// simulated cyberinfrastructure: batch jobs, their lifecycle states, the
// instrumentation attributes they may carry, and the ground-truth modality
// labels attached by the workload generators.
//
// The package is a leaf in the dependency graph so that schedulers,
// accounting, gateways, workflow engines, and the modality-measurement core
// can all speak about the same Job without import cycles.
package job

import (
	"fmt"

	"github.com/tgsim/tgmod/internal/des"
)

// ID identifies a job uniquely within a simulation run.
type ID int64

// State is the lifecycle state of a job.
type State int

// Job lifecycle states.
const (
	StatePending   State = iota // created, not yet submitted to a machine
	StateQueued                 // waiting in a batch queue
	StateRunning                // executing on allocated cores
	StateCompleted              // finished within its walltime
	StateKilled                 // killed at the walltime limit
	StatePreempted              // preempted by an urgent job, requeued
	StateFailed                 // failed (allocation exhausted, no resources)
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateKilled:
		return "killed"
	case StatePreempted:
		return "preempted"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateKilled || s == StateFailed
}

// QOS is the quality-of-service class of a job.
type QOS int

// Quality-of-service classes.
const (
	QOSNormal      QOS = iota // standard batch
	QOSUrgent                 // on-demand/urgent computing: may preempt
	QOSInteractive            // interactive or visualization session
)

// String returns the lowercase QOS name.
func (q QOS) String() string {
	switch q {
	case QOSNormal:
		return "normal"
	case QOSUrgent:
		return "urgent"
	case QOSInteractive:
		return "interactive"
	default:
		return fmt.Sprintf("qos(%d)", int(q))
	}
}

// Modality is a usage-modality identifier. The taxonomy (descriptions,
// measurement sources) lives in the core package; the raw identifiers live
// here so workload generators can label ground truth without importing the
// measurement framework.
type Modality string

// The usage-modality taxonomy (DESIGN.md table).
const (
	ModBatchCapability Modality = "batch-capability" // M1: hero-scale single jobs
	ModBatchCapacity   Modality = "batch-capacity"   // M2: small/medium parallel batch
	ModEnsemble        Modality = "ensemble"         // M3: high-throughput / parameter sweep
	ModWorkflow        Modality = "workflow"         // M4: DAG campaigns
	ModGateway         Modality = "gateway"          // M5: science-gateway submissions
	ModUrgent          Modality = "urgent"           // M6: on-demand / urgent computing
	ModInteractive     Modality = "interactive"      // M7: interactive / visualization
	ModDataCentric     Modality = "data-centric"     // M8: data staging/archive dominated
	ModMetascheduled   Modality = "metascheduled"    // M9: broker-routed / co-allocated
	ModUnknown         Modality = "unknown"          // classifier output when undecidable
)

// AllModalities lists every ground-truth modality in canonical order.
var AllModalities = []Modality{
	ModBatchCapability, ModBatchCapacity, ModEnsemble, ModWorkflow,
	ModGateway, ModUrgent, ModInteractive, ModDataCentric, ModMetascheduled,
}

// Attributes is the instrumentation a job carries through the CI. These are
// the measurable signals available to the modality framework; depending on
// deployment coverage, the workload generator may leave fields empty even
// when the ground truth would warrant them (modeling partially deployed
// instrumentation — the paper's "beginning to measure" state).
type Attributes struct {
	SubmitVia      string // "login", "gram", "gateway", "metasched"
	GatewayID      string // community-account gateway identifier
	GatewayUser    string // per-request end-user attribute (AAAA model)
	WorkflowID     string // workflow-instance tag
	WorkflowEngine string // engine name when tagged
	EnsembleID     string // parameter-sweep campaign tag
	BrokerJobID    string // metascheduler job tag
	CoAllocID      string // co-allocation group tag
	ScienceField   string // field-of-science code from the allocation
}

// Truth is the generator-assigned ground truth, invisible to classifiers.
type Truth struct {
	Modality   Modality
	CampaignID string // ensemble/workflow campaign this job belongs to, if any
}

// Job is a unit of computational work. Fields are written by the layer that
// owns the corresponding phase of the lifecycle: the generator fills the
// request, the scheduler fills the execution record.
type Job struct {
	ID      ID
	Name    string // user-chosen job name (script name); ensembles reuse names
	User    string // account the job is charged to (community account for gateways)
	Project string // allocation/project charged

	// Placement (set at submission or by the metascheduler).
	Site    string
	Machine string
	Queue   string

	// Request.
	Cores       int
	ReqWalltime des.Time
	QOS         QOS
	InputBytes  int64 // data staged in before the job can start
	OutputBytes int64 // data produced (archived for data-centric usage)

	// Execution (set by the scheduler).
	RunTime     des.Time // actual execution need; capped at ReqWalltime
	SubmitTime  des.Time
	StartTime   des.Time
	EndTime     des.Time
	State       State
	Preemptions int
	// WastedCoreSeconds accumulates execution lost to unplanned failures:
	// work done beyond the last checkpoint (or the whole run without
	// checkpointing) that must be redone. Zero in fault-free runs.
	WastedCoreSeconds float64

	Attr  Attributes
	Truth Truth
}

// WaitTime returns the queue wait (start - submit); zero until started.
func (j *Job) WaitTime() des.Time {
	if j.StartTime < j.SubmitTime {
		return 0
	}
	return j.StartTime - j.SubmitTime
}

// Elapsed returns the execution duration for finished jobs.
func (j *Job) Elapsed() des.Time {
	if j.EndTime < j.StartTime {
		return 0
	}
	return j.EndTime - j.StartTime
}

// CoreSeconds returns consumed core-seconds for finished jobs.
func (j *Job) CoreSeconds() float64 {
	return float64(j.Elapsed()) * float64(j.Cores)
}

// BoundedSlowdown returns the bounded slowdown metric
// max(1, (wait+run)/max(run, bound)) with the conventional 10-second bound,
// a standard scheduler-quality measure robust to very short jobs.
func (j *Job) BoundedSlowdown() float64 {
	const bound = 10 // seconds
	run := float64(j.Elapsed())
	denom := run
	if denom < bound {
		denom = bound
	}
	s := (float64(j.WaitTime()) + run) / denom
	if s < 1 {
		return 1
	}
	return s
}

// Validate reports an error when the job request is malformed. Schedulers
// call this at submission so generator bugs surface immediately.
func (j *Job) Validate() error {
	switch {
	case j.Cores <= 0:
		return fmt.Errorf("job %d: non-positive cores %d", j.ID, j.Cores)
	case j.ReqWalltime <= 0:
		return fmt.Errorf("job %d: non-positive walltime %v", j.ID, float64(j.ReqWalltime))
	case j.RunTime <= 0:
		return fmt.Errorf("job %d: non-positive runtime %v", j.ID, float64(j.RunTime))
	case j.User == "":
		return fmt.Errorf("job %d: missing user", j.ID)
	case j.Project == "":
		return fmt.Errorf("job %d: missing project", j.ID)
	}
	return nil
}

// String renders a short human-readable description for traces.
func (j *Job) String() string {
	return fmt.Sprintf("job %d %s/%s cores=%d wall=%s qos=%s state=%s",
		j.ID, j.User, j.Project, j.Cores, j.ReqWalltime, j.QOS, j.State)
}
