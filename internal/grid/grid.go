// Package grid defines the federation topology: sites, machines, and their
// capacity and charging characteristics. It is a pure data model; dynamics
// (scheduling, transfers) live in the sched and network packages.
package grid

import (
	"fmt"
	"sort"
)

// Machine is a compute resource at a site: a homogeneous cluster of nodes.
// NUPerCoreHour is the normalized-unit charging factor that converts
// consumed core-hours on this machine into federation-wide normalized units
// (faster machines charge more NUs per core-hour), which is how the
// TeraGrid accounting system made usage comparable across heterogeneous
// resources.
type Machine struct {
	ID            string
	Site          string
	Nodes         int
	CoresPerNode  int
	GFlopsPerCore float64
	NUPerCoreHour float64
	VizNodes      int  // nodes reserved for interactive/visualization use
	UrgentCapable bool // supports preemptive on-demand computing
}

// TotalCores returns the machine's core count including viz nodes.
func (m *Machine) TotalCores() int { return m.Nodes * m.CoresPerNode }

// BatchCores returns the cores available to the batch partition.
func (m *Machine) BatchCores() int { return (m.Nodes - m.VizNodes) * m.CoresPerNode }

// VizCores returns cores in the interactive/visualization partition.
func (m *Machine) VizCores() int { return m.VizNodes * m.CoresPerNode }

// PeakGFlops returns the machine's peak performance.
func (m *Machine) PeakGFlops() float64 { return float64(m.TotalCores()) * m.GFlopsPerCore }

// NUs converts core-seconds consumed on this machine to normalized units.
func (m *Machine) NUs(coreSeconds float64) float64 {
	return coreSeconds / 3600 * m.NUPerCoreHour
}

// Validate reports configuration errors.
func (m *Machine) Validate() error {
	switch {
	case m.ID == "":
		return fmt.Errorf("machine: missing id")
	case m.Site == "":
		return fmt.Errorf("machine %s: missing site", m.ID)
	case m.Nodes <= 0 || m.CoresPerNode <= 0:
		return fmt.Errorf("machine %s: non-positive size %dx%d", m.ID, m.Nodes, m.CoresPerNode)
	case m.VizNodes < 0 || m.VizNodes >= m.Nodes:
		return fmt.Errorf("machine %s: viz nodes %d out of range", m.ID, m.VizNodes)
	case m.GFlopsPerCore <= 0:
		return fmt.Errorf("machine %s: non-positive GFlops", m.ID)
	case m.NUPerCoreHour <= 0:
		return fmt.Errorf("machine %s: non-positive NU factor", m.ID)
	}
	return nil
}

// Site is a resource-provider site: one or more machines, an archive, and a
// WAN attachment point.
type Site struct {
	ID       string
	Machines []*Machine
	// ArchivePB is the capacity of the site's archival storage in petabytes
	// (0 if the site offers no archive).
	ArchivePB float64
	// WANGbps is the site's wide-area attachment bandwidth in gigabits/s.
	WANGbps float64
}

// TotalCores sums cores across the site's machines.
func (s *Site) TotalCores() int {
	total := 0
	for _, m := range s.Machines {
		total += m.TotalCores()
	}
	return total
}

// Validate reports configuration errors, including machine errors.
func (s *Site) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("site: missing id")
	}
	if len(s.Machines) == 0 {
		return fmt.Errorf("site %s: no machines", s.ID)
	}
	if s.WANGbps <= 0 {
		return fmt.Errorf("site %s: non-positive WAN bandwidth", s.ID)
	}
	for _, m := range s.Machines {
		if err := m.Validate(); err != nil {
			return err
		}
		if m.Site != s.ID {
			return fmt.Errorf("machine %s: site field %q does not match site %s", m.ID, m.Site, s.ID)
		}
	}
	return nil
}

// Federation is the full simulated cyberinfrastructure topology.
type Federation struct {
	Name     string
	Sites    []*Site
	machines map[string]*Machine
	sites    map[string]*Site
}

// NewFederation assembles and validates a federation from sites. Machine
// IDs must be globally unique.
func NewFederation(name string, sites ...*Site) (*Federation, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("federation %s: no sites", name)
	}
	f := &Federation{
		Name:     name,
		Sites:    sites,
		machines: make(map[string]*Machine),
		sites:    make(map[string]*Site),
	}
	for _, s := range sites {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if _, dup := f.sites[s.ID]; dup {
			return nil, fmt.Errorf("federation %s: duplicate site %s", name, s.ID)
		}
		f.sites[s.ID] = s
		for _, m := range s.Machines {
			if _, dup := f.machines[m.ID]; dup {
				return nil, fmt.Errorf("federation %s: duplicate machine %s", name, m.ID)
			}
			f.machines[m.ID] = m
		}
	}
	return f, nil
}

// Machine looks up a machine by ID.
func (f *Federation) Machine(id string) (*Machine, bool) {
	m, ok := f.machines[id]
	return m, ok
}

// Site looks up a site by ID.
func (f *Federation) Site(id string) (*Site, bool) {
	s, ok := f.sites[id]
	return s, ok
}

// Machines returns all machines sorted by ID (deterministic iteration).
func (f *Federation) Machines() []*Machine {
	out := make([]*Machine, 0, len(f.machines))
	for _, m := range f.machines {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TotalCores sums cores across the federation.
func (f *Federation) TotalCores() int {
	total := 0
	for _, s := range f.Sites {
		total += s.TotalCores()
	}
	return total
}

// PeakTFlops returns the federation's aggregate peak performance in TFlops.
func (f *Federation) PeakTFlops() float64 {
	total := 0.0
	for _, m := range f.machines {
		total += m.PeakGFlops()
	}
	return total / 1000
}

// LargestMachine returns the machine with the most cores (ties broken by
// lexically smaller ID, for determinism).
func (f *Federation) LargestMachine() *Machine {
	var best *Machine
	for _, m := range f.Machines() {
		if best == nil || m.TotalCores() > best.TotalCores() {
			best = m
		}
	}
	return best
}
