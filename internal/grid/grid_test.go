package grid

import (
	"strings"
	"testing"
)

func machine(id, site string) *Machine {
	return &Machine{
		ID: id, Site: site, Nodes: 100, CoresPerNode: 8,
		GFlopsPerCore: 4, NUPerCoreHour: 1.5,
	}
}

func TestMachineDerived(t *testing.T) {
	m := machine("m1", "s1")
	m.VizNodes = 10
	if got := m.TotalCores(); got != 800 {
		t.Errorf("TotalCores = %d, want 800", got)
	}
	if got := m.BatchCores(); got != 720 {
		t.Errorf("BatchCores = %d, want 720", got)
	}
	if got := m.VizCores(); got != 80 {
		t.Errorf("VizCores = %d, want 80", got)
	}
	if got := m.PeakGFlops(); got != 3200 {
		t.Errorf("PeakGFlops = %v, want 3200", got)
	}
	// 3600 core-seconds = 1 core-hour = 1.5 NU on this machine.
	if got := m.NUs(3600); got != 1.5 {
		t.Errorf("NUs(3600) = %v, want 1.5", got)
	}
}

func TestMachineValidate(t *testing.T) {
	bad := []*Machine{
		{},
		{ID: "x"},
		{ID: "x", Site: "s", Nodes: 0, CoresPerNode: 8},
		{ID: "x", Site: "s", Nodes: 4, CoresPerNode: 8, VizNodes: 4, GFlopsPerCore: 1, NUPerCoreHour: 1},
		{ID: "x", Site: "s", Nodes: 4, CoresPerNode: 8, GFlopsPerCore: 0, NUPerCoreHour: 1},
		{ID: "x", Site: "s", Nodes: 4, CoresPerNode: 8, GFlopsPerCore: 1, NUPerCoreHour: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid machine %+v", i, m)
		}
	}
	if err := machine("ok", "s").Validate(); err != nil {
		t.Errorf("valid machine rejected: %v", err)
	}
}

func TestSiteValidate(t *testing.T) {
	s := &Site{ID: "s1", WANGbps: 10, Machines: []*Machine{machine("m1", "s1")}}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid site rejected: %v", err)
	}
	s2 := &Site{ID: "s2", WANGbps: 10, Machines: []*Machine{machine("m1", "other")}}
	if err := s2.Validate(); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Errorf("site/machine mismatch not caught: %v", err)
	}
	s3 := &Site{ID: "s3", WANGbps: 10}
	if err := s3.Validate(); err == nil {
		t.Error("empty site accepted")
	}
	s4 := &Site{ID: "s4", Machines: []*Machine{machine("m2", "s4")}}
	if err := s4.Validate(); err == nil {
		t.Error("site without WAN bandwidth accepted")
	}
}

func TestFederation(t *testing.T) {
	s1 := &Site{ID: "s1", WANGbps: 10, Machines: []*Machine{machine("big", "s1")}}
	s2 := &Site{ID: "s2", WANGbps: 10, Machines: []*Machine{machine("alpha", "s2"), machine("beta", "s2")}}
	f, err := NewFederation("test", s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if f.TotalCores() != 2400 {
		t.Errorf("TotalCores = %d, want 2400", f.TotalCores())
	}
	if m, ok := f.Machine("alpha"); !ok || m.Site != "s2" {
		t.Errorf("Machine lookup failed: %v %v", m, ok)
	}
	if _, ok := f.Machine("nope"); ok {
		t.Error("lookup of unknown machine succeeded")
	}
	if s, ok := f.Site("s1"); !ok || s != s1 {
		t.Error("Site lookup failed")
	}
	ms := f.Machines()
	if len(ms) != 3 || ms[0].ID != "alpha" || ms[1].ID != "beta" || ms[2].ID != "big" {
		t.Errorf("Machines not sorted deterministically: %v", ids(ms))
	}
	if got := f.PeakTFlops(); got != 9.6 {
		t.Errorf("PeakTFlops = %v, want 9.6", got)
	}
}

func ids(ms []*Machine) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.ID
	}
	return out
}

func TestFederationDuplicates(t *testing.T) {
	s1 := &Site{ID: "s1", WANGbps: 10, Machines: []*Machine{machine("m", "s1")}}
	s2 := &Site{ID: "s2", WANGbps: 10, Machines: []*Machine{machine("m", "s2")}}
	if _, err := NewFederation("dup", s1, s2); err == nil {
		t.Error("duplicate machine IDs accepted")
	}
	s3 := &Site{ID: "s1", WANGbps: 10, Machines: []*Machine{machine("m2", "s1")}}
	if _, err := NewFederation("dup2", s1, s3); err == nil {
		t.Error("duplicate site IDs accepted")
	}
	if _, err := NewFederation("empty"); err == nil {
		t.Error("empty federation accepted")
	}
}

func TestLargestMachine(t *testing.T) {
	big := &Machine{ID: "kraken", Site: "s1", Nodes: 1000, CoresPerNode: 12, GFlopsPerCore: 4, NUPerCoreHour: 2}
	small := machine("small", "s1")
	s := &Site{ID: "s1", WANGbps: 10, Machines: []*Machine{small, big}}
	f, err := NewFederation("t", s)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.LargestMachine(); got != big {
		t.Errorf("LargestMachine = %v, want kraken", got.ID)
	}
}
