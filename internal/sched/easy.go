package sched

import "github.com/tgsim/tgmod/internal/job"

func init() { RegisterEngine("easy", func() PolicyEngine { return &easyEngine{} }) }

// easyEngine implements aggressive (EASY) backfill: jobs start in order
// while they fit; when the head blocks, it gets the earliest feasible
// reservation and later jobs may jump ahead as long as they cannot delay it.
type easyEngine struct {
	fifoQueue
}

func (e *easyEngine) Name() string { return "easy" }

func (e *easyEngine) Schedule(s *Scheduler) { easyPass(s, &e.q) }

// easyPass is the EASY scheduling pass over queue q, shared by the easy and
// fairshare engines (fairshare is purely an ordering refinement on top).
func easyPass(s *Scheduler, q *[]*job.Job) {
	now := s.K.Now()
	p := s.buildProfile()
	// Start jobs in order while they fit.
	for len(*q) > 0 {
		head := (*q)[0]
		if !s.startableNow(p, head) {
			break
		}
		*q = (*q)[1:]
		s.startBatch(head, "")
		p.subtract(now, now+head.ReqWalltime, head.Cores)
	}
	if len(*q) == 0 {
		return
	}
	if s.freeBatch == 0 {
		return // nothing can backfill into zero free cores
	}
	// Reserve the earliest feasible slot for the head job, then backfill
	// any later job that can start now without disturbing that slot. The
	// scan depth is capped as production backfill schedulers do: deep
	// queue positions almost never fit, and bounding the scan keeps
	// reschedule cost flat under heavy backlog.
	const maxBackfillScan = 256
	head := (*q)[0]
	shadow, ok := p.earliestFit(now, head.Cores, head.ReqWalltime)
	if ok {
		p.subtract(shadow, shadow+head.ReqWalltime, head.Cores)
	}
	i := 1
	scanned := 0
	for i < len(*q) && scanned < maxBackfillScan {
		scanned++
		cand := (*q)[i]
		// Cheap rejection before the profile query.
		if cand.Cores > s.freeBatch {
			i++
			continue
		}
		if s.startableNow(p, cand) {
			*q = append((*q)[:i], (*q)[i+1:]...)
			s.probe(ProbeBackfill, cand)
			s.startBatch(cand, "")
			p.subtract(now, now+cand.ReqWalltime, cand.Cores)
			if s.freeBatch == 0 {
				return
			}
			continue
		}
		i++
	}
}
