package sched

import (
	"sort"

	"github.com/tgsim/tgmod/internal/job"
)

func init() { RegisterEngine("priority", func() PolicyEngine { return &priorityEngine{} }) }

// DefaultMaxSkips is the starvation bound of the priority engine: after
// being jumped by this many backfilled jobs, a queued job escalates and
// receives a blocking reservation (kube-batch's max-skip aging).
const DefaultMaxSkips = 8

// maxEscalatedPlans bounds how many escalated jobs get committed
// reservations per pass; beyond it the plan horizon is too distant to
// matter and the bookkeeping would grow with the backlog.
const maxEscalatedPlans = 32

// priorityEngine orders the queue by size-derived priority class —
// capability jobs (large core counts) outrank capacity jobs, mirroring how
// TeraGrid sites boosted full-machine runs — and backfills EASY-style
// underneath. Every backfill start charges one "skip" to each job still
// queued ahead of the backfilled one; a job whose skips cross MaxSkips
// escalates: it sorts ahead of its class and receives a committed
// reservation each pass (conservative-style) that backfill cannot delay.
// The skip bound turns EASY's unbounded worst-case wait into a bounded one,
// per the kube-batch backfill/starvation design.
type priorityEngine struct {
	fifoQueue
	// MaxSkips overrides DefaultMaxSkips when positive.
	MaxSkips  int
	skips     map[job.ID]int
	escalated map[job.ID]bool
	stats     EngineStats
}

func (e *priorityEngine) Name() string { return "priority" }

func (e *priorityEngine) EngineStats() EngineStats { return e.stats }

func (e *priorityEngine) maxSkips() int {
	if e.MaxSkips > 0 {
		return e.MaxSkips
	}
	return DefaultMaxSkips
}

// class buckets a job's core request into a priority class: half the
// machine and up is capability (2), an eighth and up is mid-range (1),
// the rest capacity (0). Bigger runs first.
func (e *priorityEngine) class(s *Scheduler, j *job.Job) int {
	switch cores := s.M.BatchCores(); {
	case j.Cores*2 >= cores:
		return 2
	case j.Cores*8 >= cores:
		return 1
	default:
		return 0
	}
}

// sortQueue realizes the priority order: escalated jobs first (oldest
// submit first), then descending class, then submit order, then ID.
func (e *priorityEngine) sortQueue(s *Scheduler) {
	sort.SliceStable(e.q, func(a, b int) bool {
		ja, jb := e.q[a], e.q[b]
		ea, eb := e.escalated[ja.ID], e.escalated[jb.ID]
		if ea != eb {
			return ea
		}
		ca, cb := e.class(s, ja), e.class(s, jb)
		if ca != cb {
			return ca > cb
		}
		if ja.SubmitTime != jb.SubmitTime {
			return ja.SubmitTime < jb.SubmitTime
		}
		return ja.ID < jb.ID
	})
}

// forget drops a started job's aging state.
func (e *priorityEngine) forget(j *job.Job) {
	delete(e.skips, j.ID)
	delete(e.escalated, j.ID)
}

func (e *priorityEngine) Schedule(s *Scheduler) {
	now := s.K.Now()
	e.sortQueue(s)
	p := s.buildProfile()
	// Start jobs in priority order while they fit.
	for len(e.q) > 0 {
		head := e.q[0]
		if !s.startableNow(p, head) {
			break
		}
		e.q = e.q[1:]
		e.forget(head)
		s.startBatch(head, "")
		p.subtract(now, now+head.ReqWalltime, head.Cores)
	}
	if len(e.q) == 0 || s.freeBatch == 0 {
		return
	}
	// Commit reservations for the head and every escalated job, in queue
	// order: those slots are the bound backfill must honor. Reserved jobs
	// are not chargeable for skips — their slot is protected, so backfill
	// passing them is not starvation.
	reserved := make(map[job.ID]bool)
	planned := 0
	for i, j := range e.q {
		if i != 0 && !e.escalated[j.ID] {
			continue
		}
		if at, ok := p.earliestFit(now, j.Cores, j.ReqWalltime); ok {
			p.subtract(at, at+j.ReqWalltime, j.Cores)
		}
		reserved[j.ID] = true
		planned++
		if planned >= maxEscalatedPlans {
			break
		}
	}
	// Backfill underneath the reservations, charging skips to everything
	// the backfilled job jumped.
	const maxBackfillScan = 256
	i := 1
	scanned := 0
	for i < len(e.q) && scanned < maxBackfillScan {
		scanned++
		cand := e.q[i]
		if cand.Cores > s.freeBatch {
			i++
			continue
		}
		if s.startableNow(p, cand) {
			e.chargeSkips(s, e.q[:i], reserved)
			e.q = append(e.q[:i], e.q[i+1:]...)
			e.forget(cand)
			s.probe(ProbeBackfill, cand)
			s.startBatch(cand, "")
			p.subtract(now, now+cand.ReqWalltime, cand.Cores)
			if s.freeBatch == 0 {
				return
			}
			continue
		}
		i++
	}
}

// chargeSkips ages every job a backfill jumped over; crossing the bound
// escalates the job starting with the next pass.
func (e *priorityEngine) chargeSkips(s *Scheduler, jumped []*job.Job, reserved map[job.ID]bool) {
	if e.skips == nil {
		e.skips = make(map[job.ID]int)
	}
	if e.escalated == nil {
		e.escalated = make(map[job.ID]bool)
	}
	for _, j := range jumped {
		if reserved[j.ID] {
			continue
		}
		e.skips[j.ID]++
		e.stats.Skips++
		if !e.escalated[j.ID] && e.skips[j.ID] >= e.maxSkips() {
			e.escalated[j.ID] = true
			e.stats.Escalations++
			s.probe(ProbeAgeEscalate, j)
		}
	}
}
