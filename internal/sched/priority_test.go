package sched

import (
	"testing"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
)

// TestPriorityCapabilityFirst: a capability-class job outranks earlier
// capacity submissions once the machine frees up.
func TestPriorityCapabilityFirst(t *testing.T) {
	k := des.New()
	s, err := NewNamed(k, testMachine(), "priority")
	if err != nil {
		t.Fatal(err)
	}
	blocker := mkJob(112, 100, 100)
	s.Submit(blocker)
	small := mkJob(8, 100, 100) // class 0, submitted first
	s.Submit(small)
	big := mkJob(112, 100, 100) // class 2, submitted later
	s.Submit(big)
	k.Run()
	if big.StartTime != 100 {
		t.Errorf("capability job start = %v, want 100 (ahead of earlier capacity job)", big.StartTime)
	}
	if small.StartTime != 200 {
		t.Errorf("capacity job start = %v, want 200", small.StartTime)
	}
}

// TestPriorityAgingEscalation: a job jumped by backfill more than MaxSkips
// times escalates and stops being starved — the kube-batch max-skip bound.
func TestPriorityAgingEscalation(t *testing.T) {
	k := des.New()
	e := &priorityEngine{MaxSkips: 2}
	s := NewWith(k, testMachine(), e)
	var escalated []*job.Job
	s.Probe = func(kind string, j *job.Job) {
		if kind == ProbeAgeEscalate {
			escalated = append(escalated, j)
		}
	}
	blocker := mkJob(82, 500, 500) // leaves 30 free until t=500
	s.Submit(blocker)
	head := mkJob(112, 100, 100) // class 2: heads the queue, reserved at 500
	s.Submit(head)
	// starving's 600s rectangle overlaps the head's reservation, so only an
	// escalation can start it before the head runs.
	starving := mkJob(25, 600, 600)
	s.Submit(starving)
	var fillers []*job.Job
	for i := 0; i < 4; i++ {
		f := mkJob(10, 50, 50)
		fillers = append(fillers, f)
		at := des.Time(10 + 10*i)
		k.At(at, func(*des.Kernel) { s.Submit(f) })
	}
	k.Run()
	st := s.Stats().Engine
	if st.Escalations != 1 {
		t.Fatalf("escalations = %d, want 1", st.Escalations)
	}
	if len(escalated) != 1 || escalated[0] != starving {
		t.Fatalf("age-escalate probe fired for %v, want the starving job", escalated)
	}
	if st.Skips < 2 {
		t.Errorf("skips = %d, want >= 2", st.Skips)
	}
	// Escalation lifts the job ahead of the capability head: it starts off
	// the free cores long before the head's reservation at t=500.
	if starving.StartTime >= 500 {
		t.Errorf("starving job start = %v, want < 500 (escalated past the head)", starving.StartTime)
	}
	if starving.State != job.StateCompleted {
		t.Errorf("starving job state = %v, want completed", starving.State)
	}
}

// TestPriorityBackfillStillWorks: capacity jobs keep backfilling around a
// blocked capability head like EASY.
func TestPriorityBackfillStillWorks(t *testing.T) {
	k := des.New()
	s, err := NewNamed(k, testMachine(), "priority")
	if err != nil {
		t.Fatal(err)
	}
	big := mkJob(100, 100, 100)
	s.Submit(big)
	head := mkJob(112, 100, 100) // waits for whole machine
	s.Submit(head)
	filler := mkJob(12, 50, 50) // fits the hole and ends before 100
	s.Submit(filler)
	k.Run()
	if filler.StartTime != 0 {
		t.Errorf("filler start = %v, want 0 (backfilled)", filler.StartTime)
	}
	if head.StartTime != 100 {
		t.Errorf("head start = %v, want 100 (reservation honored)", head.StartTime)
	}
}

// TestEngineRegistry: all six engines resolve by name, unknown names fail,
// and the legacy shims keep working.
func TestEngineRegistry(t *testing.T) {
	want := []string{"conservative", "easy", "fairshare", "fcfs", "gang", "priority"}
	got := EngineNames()
	if len(got) != len(want) {
		t.Fatalf("EngineNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EngineNames = %v, want %v", got, want)
		}
	}
	for _, n := range want {
		e, err := NewEngine(n)
		if err != nil {
			t.Fatalf("NewEngine(%q): %v", n, err)
		}
		if e.Name() != n {
			t.Errorf("engine %q reports name %q", n, e.Name())
		}
	}
	if _, err := NewEngine("nope"); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := NewNamed(des.New(), testMachine(), "nope"); err == nil {
		t.Error("NewNamed accepted unknown engine")
	}
	// Legacy enum shims.
	for _, p := range []Policy{FCFS, EASY, Conservative, FairShare} {
		back, err := PolicyByName(p.String())
		if err != nil || back != p {
			t.Errorf("PolicyByName(%q) = %v,%v", p.String(), back, err)
		}
		s := New(des.New(), testMachine(), p)
		if s.EngineName() != p.String() {
			t.Errorf("New(%v) engine = %q", p, s.EngineName())
		}
	}
	if _, err := PolicyByName("gang"); err == nil {
		t.Error("PolicyByName must not mint enum values for new engines")
	}
}

// TestOldestQueuedAge tracks the longest-waiting queued job.
func TestOldestQueuedAge(t *testing.T) {
	k := des.New()
	s, err := NewNamed(k, testMachine(), "easy")
	if err != nil {
		t.Fatal(err)
	}
	if s.OldestQueuedAge() != 0 {
		t.Error("empty queue should have zero age")
	}
	s.Submit(mkJob(112, 1000, 1000))
	s.Submit(mkJob(112, 100, 100)) // queued behind the first
	k.RunUntil(500)
	if got := s.OldestQueuedAge(); got != 500 {
		t.Errorf("OldestQueuedAge = %v, want 500", got)
	}
}
