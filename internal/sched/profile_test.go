package sched

import (
	"testing"
	"testing/quick"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/simrand"
)

func TestProfileBasics(t *testing.T) {
	p := newProfile(0, 100)
	if got := p.freeAt(0); got != 100 {
		t.Errorf("freeAt(0) = %d, want 100", got)
	}
	if got := p.freeAt(1e9); got != 100 {
		t.Errorf("freeAt(inf) = %d, want 100", got)
	}
	p.subtract(10, 20, 40)
	if got := p.freeAt(9); got != 100 {
		t.Errorf("freeAt(9) = %d, want 100", got)
	}
	if got := p.freeAt(10); got != 60 {
		t.Errorf("freeAt(10) = %d, want 60", got)
	}
	if got := p.freeAt(19.5); got != 60 {
		t.Errorf("freeAt(19.5) = %d, want 60", got)
	}
	if got := p.freeAt(20); got != 100 {
		t.Errorf("freeAt(20) = %d, want 100", got)
	}
}

func TestProfileMinFree(t *testing.T) {
	p := newProfile(0, 100)
	p.subtract(10, 20, 40) // 60 free in [10,20)
	p.subtract(15, 30, 30) // 30 free in [15,20), 70 in [20,30)
	cases := []struct {
		lo, hi des.Time
		want   int
	}{
		{0, 10, 100},
		{0, 12, 60},
		{12, 18, 30},
		{20, 30, 70},
		{25, 100, 70},
		{30, 40, 100},
		{0, 100, 30},
	}
	for _, c := range cases {
		if got := p.minFree(c.lo, c.hi); got != c.want {
			t.Errorf("minFree(%v,%v) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestProfileSubtractForever(t *testing.T) {
	p := newProfile(0, 10)
	p.subtract(5, des.Forever, 4)
	if got := p.freeAt(1e12); got != 6 {
		t.Errorf("freeAt far future = %d, want 6", got)
	}
	if got := p.freeAt(0); got != 10 {
		t.Errorf("freeAt(0) = %d, want 10", got)
	}
}

func TestProfileOvercommitPanics(t *testing.T) {
	p := newProfile(0, 10)
	defer func() {
		if recover() == nil {
			t.Error("overcommit did not panic")
		}
	}()
	p.subtract(0, 10, 11)
}

func TestEarliestFit(t *testing.T) {
	p := newProfile(0, 100)
	p.subtract(0, 50, 90) // only 10 free until t=50
	at, ok := p.earliestFit(0, 10, 100)
	if !ok || at != 0 {
		t.Errorf("fit 10 cores: got %v,%v want 0,true", at, ok)
	}
	at, ok = p.earliestFit(0, 50, 100)
	if !ok || at != 50 {
		t.Errorf("fit 50 cores: got %v,%v want 50,true", at, ok)
	}
	// More cores than capacity never fits.
	if _, ok = p.earliestFit(0, 200, 1); ok {
		t.Error("fit beyond capacity reported success")
	}
	// From parameter respected.
	at, ok = p.earliestFit(70, 100, 5)
	if !ok || at != 70 {
		t.Errorf("fit from=70: got %v,%v want 70,true", at, ok)
	}
}

func TestEarliestFitBetweenHoles(t *testing.T) {
	p := newProfile(0, 10)
	p.subtract(5, 10, 10)  // blocked in [5,10)
	p.subtract(20, 25, 10) // blocked in [20,25)
	// A 6-long job fits at 10 (gap [10,20) is 10 long).
	at, ok := p.earliestFit(0, 10, 6)
	if !ok || at != 10 {
		t.Errorf("gap fit: got %v,%v want 10,true", at, ok)
	}
	// A 4-long job fits at 0.
	at, ok = p.earliestFit(0, 10, 4)
	if !ok || at != 0 {
		t.Errorf("head fit: got %v,%v want 0,true", at, ok)
	}
	// An 11-long job must wait until 25.
	at, ok = p.earliestFit(0, 10, 11)
	if !ok || at != 25 {
		t.Errorf("tail fit: got %v,%v want 25,true", at, ok)
	}
}

// TestEarliestFitProperty: the returned slot actually has enough capacity,
// and no earlier step point does.
func TestEarliestFitProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := simrand.New(seed)
		capacity := 16 + r.Intn(64)
		p := newProfile(0, capacity)
		for i := 0; i < 20; i++ {
			start := des.Time(r.Intn(200))
			end := start + des.Time(1+r.Intn(50))
			cores := 1 + r.Intn(capacity/4)
			if p.minFree(start, end) >= cores {
				p.subtract(start, end, cores)
			}
		}
		cores := 1 + r.Intn(capacity)
		dur := des.Time(1 + r.Intn(60))
		at, ok := p.earliestFit(0, cores, dur)
		if !ok {
			return cores > capacity
		}
		if p.minFree(at, at+dur) < cores {
			return false // reported slot does not fit
		}
		// No earlier candidate (origin or step) fits.
		for _, pt := range p.points {
			if pt.t < at && p.minFree(pt.t, pt.t+dur) >= cores {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
