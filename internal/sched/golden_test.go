package sched

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/simrand"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite sched golden trace files")

// goldenTrace drives one scheduler through a fixed synthetic campaign —
// batch/urgent/viz submissions, a claimed and a cancelled reservation,
// estimator probes, and (on the faults leg) crashes, node failures, and a
// maintenance window with a crash merging into it — and renders every
// lifecycle event, probe decision, and final job outcome as one text trace.
// The trace is the refactor contract: re-expressing a policy as an engine
// must leave these bytes untouched.
func goldenTrace(t *testing.T, engineName string, faults bool) string {
	t.Helper()
	k := des.New()
	s := newGoldenSched(t, k, engineName)

	var b strings.Builder
	stamp := func(format string, args ...any) {
		fmt.Fprintf(&b, "t=%v ", float64(k.Now()))
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}
	s.Subscribe(func(e Event) { stamp("event=%s job=%d", e.Kind, e.Job.ID) })
	s.Probe = func(kind string, j *job.Job) {
		if j != nil {
			stamp("probe=%s job=%d", kind, j.ID)
		} else {
			stamp("probe=%s", kind)
		}
	}

	// Local ID space so traces do not depend on what other tests allocate
	// from the package-level counter.
	id := job.ID(90000)
	var jobs []*job.Job
	mk := func(cores int, run, wall des.Time, user string) *job.Job {
		id++
		j := &job.Job{
			ID: id, Name: "g", User: user, Project: "p",
			Cores: cores, RunTime: run, ReqWalltime: wall,
		}
		jobs = append(jobs, j)
		return j
	}

	r := simrand.New(0x901d)
	users := []string{"ua", "ub", "uc", "ud", "ue"}
	for i := 0; i < 140; i++ {
		cores := 1 + r.Intn(112)
		run := des.Time(1 + r.Intn(4000))
		wall := run + des.Time(r.Intn(1200))
		if r.Bool(0.06) {
			wall = run / 2 // walltime-kill leg
			if wall <= 0 {
				wall = 1
			}
		}
		j := mk(cores, run, wall, users[r.Intn(len(users))])
		switch {
		case r.Bool(0.05):
			j.QOS = job.QOSUrgent
		case r.Bool(0.05):
			j.QOS = job.QOSInteractive
			if j.Cores > 16 {
				j.Cores = 1 + r.Intn(16)
			}
		}
		at := des.Time(r.Intn(30000))
		k.At(at, func(*des.Kernel) { s.Submit(j) })
	}

	// One claimed and one cancelled advance reservation.
	if err := s.Reserve("gold-rsv", 64, 8000, 9000); err != nil {
		t.Fatal(err)
	}
	claim := mk(48, 600, 900, "ua")
	if err := s.ClaimReservation("gold-rsv", claim); err != nil {
		t.Fatal(err)
	}
	if err := s.Reserve("gold-cxl", 32, 15000, 16000); err != nil {
		t.Fatal(err)
	}
	k.AtNamed(14000, "g-cancel", func(*des.Kernel) { s.CancelReservation("gold-cxl") })

	// Estimator probes pin the queue order the planner sees (fairshare
	// permutes the queue in place; that visibility is part of the contract).
	for _, at := range []des.Time{1000, 6000, 16000, 25000} {
		at := at
		k.AtNamed(at, "g-estimate", func(*des.Kernel) {
			for _, req := range [][2]des.Time{{32, 3600}, {112, 600}} {
				est, ok := s.EstimateStart(int(req[0]), req[1])
				stamp("estimate cores=%d wall=%v at=%v ok=%v", int(req[0]), float64(req[1]), float64(est), ok)
			}
		})
	}

	if faults {
		k.AtNamed(5000, "g-crash", func(*des.Kernel) {
			for _, v := range s.Crash(5600) {
				s.Requeue(v)
			}
		})
		k.AtNamed(12000, "g-nodefail", func(*des.Kernel) { s.FailNodes(40, 13000) })
		if err := s.ScheduleOutage(20000, 21000); err != nil {
			t.Fatal(err)
		}
		// A crash inside the maintenance window whose repair outlasts it:
		// exercises the window-merge path under every engine.
		k.AtNamed(20500, "g-crash2", func(*des.Kernel) {
			for _, v := range s.Crash(22000) {
				s.Requeue(v)
			}
		})
	}

	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	sort.Slice(jobs, func(a, bb int) bool { return jobs[a].ID < jobs[bb].ID })
	for _, j := range jobs {
		fmt.Fprintf(&b, "job=%d state=%s start=%v end=%v preempt=%d wasted=%v\n",
			j.ID, j.State, float64(j.StartTime), float64(j.EndTime), j.Preemptions, j.WastedCoreSeconds)
	}
	fmt.Fprintf(&b, "counters %s\n", goldenCounters(s))
	return b.String()
}

// TestGoldenTraces locks the four legacy policies to their pre-refactor
// behavior — and the gang and priority engines to their introduced
// behavior — byte for byte, with and without fault injection. Regenerate
// with -update-golden ONLY for an intentional behavior change.
func TestGoldenTraces(t *testing.T) {
	for _, name := range []string{"fcfs", "easy", "conservative", "fairshare", "gang", "priority"} {
		for _, faults := range []bool{false, true} {
			label := name
			if faults {
				label += "_faults"
			}
			name, faults := name, faults
			t.Run(label, func(t *testing.T) {
				got := goldenTrace(t, name, faults)
				// Same-seed determinism first: a flaky trace must never
				// be committed as a golden.
				if again := goldenTrace(t, name, faults); again != got {
					t.Fatal("trace not deterministic across same-seed runs")
				}
				path := filepath.Join("testdata", label+".trace")
				if *updateGolden {
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run with -update-golden): %v", err)
				}
				if got != string(want) {
					t.Fatalf("trace drifted from golden %s:\n%s", path, firstDiff(got, string(want)))
				}
			})
		}
	}
}

// newGoldenSched builds the scheduler under test from an engine name.
func newGoldenSched(t *testing.T, k *des.Kernel, name string) *Scheduler {
	t.Helper()
	s, err := NewNamed(k, testMachine(), name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// goldenCounters renders the scheduler's lifetime counters.
func goldenCounters(s *Scheduler) string {
	st := s.Stats()
	return fmt.Sprintf("started=%d finished=%d preemptions=%d crashes=%d crashkills=%d nodefails=%d nodekills=%d",
		st.Started, st.Finished, st.Preemptions, st.Crashes, st.CrashKills, st.NodeFailures, st.NodeKills)
}

// firstDiff renders the first divergent line between two traces.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	n := len(g)
	if len(w) < n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d", len(g), len(w))
}
