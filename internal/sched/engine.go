package sched

import (
	"fmt"
	"sort"

	"github.com/tgsim/tgmod/internal/job"
)

// PolicyEngine is the pluggable policy seam of a Scheduler. The engine owns
// the normal-QOS batch queue — its ordering, its start decisions, its
// backfill window, and any reservation plan it builds on top of the
// availability profile — while the Scheduler core owns everything physical:
// partitions, running jobs, outages, crashes, node losses, advance
// reservations, and accounting.
//
// Engines run inside the simulation kernel and must be deterministic: no
// wall-clock time, no map-iteration order, no randomness outside streams
// derived from the run seed (see DESIGN.md "Scheduling policy engine" for
// the full contract an engine author must honor).
type PolicyEngine interface {
	// Name returns the registry name of the engine ("easy", "gang", ...).
	Name() string
	// Push appends a newly submitted job to the engine's queue.
	Push(j *job.Job)
	// PushFront re-inserts a preempted, crashed, or urgent-overflow job
	// with its accumulated wait intact. Engines may refine the insertion
	// point (a campaign-aware engine groups the job with its peers) but
	// must keep the job ahead of unrelated later arrivals.
	PushFront(j *job.Job)
	// Len returns the number of queued jobs.
	Len() int
	// Queued exposes the queue in the engine's current priority order for
	// read-only planning (the start estimator). Callers must not mutate.
	Queued() []*job.Job
	// Schedule runs one scheduling pass at the current instant: the engine
	// inspects the availability profile (s.buildProfile) and starts, via
	// s.startBatch, every queued job that should begin now.
	Schedule(s *Scheduler)
	// JobFinished observes a batch job leaving the machine (completed or
	// walltime-killed) before the post-finish scheduling pass — the
	// accounting seam fair-share usage charging hangs off.
	JobFinished(s *Scheduler, j *job.Job)
	// Disrupted fires when machine availability collapses out from under
	// the engine — a crash, a maintenance window opening, or a node
	// failure. Any engine-held claims on future capacity (gang assembly
	// holds) must be released here, atomically: a surviving partial hold
	// would pin cores for a campaign the disruption already broke up.
	Disrupted(s *Scheduler)
}

// EngineStats are engine-specific lifetime counters, all zero for engines
// that lack the corresponding mechanisms.
type EngineStats struct {
	// Skips counts jobs passed over by a backfilled lower-priority job
	// (priority engine).
	Skips uint64
	// Escalations counts starvation-bound escalations: a job whose skip
	// count crossed the aging limit and received a blocking reservation.
	Escalations uint64
	// GangHolds counts member holds placed while assembling a gang.
	GangHolds uint64
	// GangStarts counts all-or-nothing gang launches (of 2+ members).
	GangStarts uint64
}

// statsReporter is implemented by engines that maintain EngineStats.
type statsReporter interface {
	EngineStats() EngineStats
}

// EngineFactory builds a fresh engine instance.
type EngineFactory func() PolicyEngine

var engineRegistry = map[string]EngineFactory{}

// RegisterEngine adds an engine to the registry under its name. Engines in
// this package register themselves; external packages may add their own
// before building schedulers. Duplicate names panic.
func RegisterEngine(name string, f EngineFactory) {
	if _, dup := engineRegistry[name]; dup {
		panic("sched: duplicate engine " + name)
	}
	engineRegistry[name] = f
}

// NewEngine returns a fresh instance of the named engine.
func NewEngine(name string) (PolicyEngine, error) {
	f, ok := engineRegistry[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown engine %q (have %v)", name, EngineNames())
	}
	return f(), nil
}

// EngineNames returns the registered engine names, sorted.
func EngineNames() []string {
	names := make([]string, 0, len(engineRegistry))
	for n := range engineRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// fifoQueue is the queue base engines embed: a plain FIFO slice with no-op
// accounting and disruption hooks. Embedders override what they refine.
type fifoQueue struct {
	q []*job.Job
}

func (f *fifoQueue) Push(j *job.Job)      { f.q = append(f.q, j) }
func (f *fifoQueue) PushFront(j *job.Job) { f.q = append([]*job.Job{j}, f.q...) }
func (f *fifoQueue) Len() int             { return len(f.q) }
func (f *fifoQueue) Queued() []*job.Job   { return f.q }

func (f *fifoQueue) JobFinished(*Scheduler, *job.Job) {}
func (f *fifoQueue) Disrupted(*Scheduler)             {}
