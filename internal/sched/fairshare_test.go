package sched

import (
	"testing"

	"github.com/tgsim/tgmod/internal/des"
)

// TestFairShareFavorsLightUsers: after a heavy user consumes the machine,
// a light user's queued job jumps ahead of the heavy user's next job even
// though it was submitted later.
func TestFairShareFavorsLightUsers(t *testing.T) {
	k, s := newTestSched(FairShare)
	// Heavy usage history for "hog": one full-machine run.
	first := mkJob(112, 1000, 1000)
	first.User = "hog"
	s.Submit(first)
	// While it runs, hog queues another full-machine job...
	second := mkJob(112, 100, 100)
	second.User = "hog"
	k.Schedule(10, func(*des.Kernel) { s.Submit(second) })
	// ...and later a light user queues one too.
	light := mkJob(112, 100, 100)
	light.User = "newcomer"
	k.Schedule(20, func(*des.Kernel) { s.Submit(light) })
	k.Run()
	if light.StartTime != 1000 {
		t.Errorf("light user start = %v, want 1000 (ahead of hog's second job)", light.StartTime)
	}
	if second.StartTime != 1100 {
		t.Errorf("hog's second job start = %v, want 1100", second.StartTime)
	}
}

// TestFairShareDecay: usage fades over time; after several half-lives the
// hog is effectively a fresh user again and FIFO order prevails.
func TestFairShareDecay(t *testing.T) {
	k, s := newTestSched(FairShare)
	s.FairShareHalfLife = des.Hour
	first := mkJob(112, 1000, 1000)
	first.User = "hog"
	s.Submit(first)
	// A long time later (many half-lives), hog submits before newcomer;
	// with decayed usage, submit order decides.
	second := mkJob(112, 100, 100)
	second.User = "hog"
	light := mkJob(112, 100, 100)
	light.User = "newcomer"
	// Busy job occupies machine so both queue.
	blocker := mkJob(112, 1000, 1000)
	blocker.User = "other"
	at := des.Time(100 * 3600)
	k.At(at, func(*des.Kernel) { s.Submit(blocker) })
	k.At(at+1, func(*des.Kernel) { s.Submit(second) })
	k.At(at+2, func(*des.Kernel) { s.Submit(light) })
	k.Run()
	if !(second.StartTime < light.StartTime) {
		t.Errorf("after decay, submit order should win: hog=%v newcomer=%v",
			second.StartTime, light.StartTime)
	}
}

// TestFairShareStillBackfills: the fairness ordering must not disable
// backfilling.
func TestFairShareStillBackfills(t *testing.T) {
	k, s := newTestSched(FairShare)
	big := mkJob(100, 100, 100)
	s.Submit(big)
	head := mkJob(112, 100, 100) // waits for whole machine
	s.Submit(head)
	filler := mkJob(12, 50, 50) // fits in the 12-core hole, ends before 100
	s.Submit(filler)
	k.Run()
	if filler.StartTime != 0 {
		t.Errorf("filler start = %v, want 0 (backfilled)", filler.StartTime)
	}
}

func TestFairShareString(t *testing.T) {
	if FairShare.String() != "fairshare" {
		t.Error("FairShare policy name wrong")
	}
}
