// Package sched implements the local resource managers that run each
// machine's batch system behind a pluggable PolicyEngine seam: FCFS, EASY
// backfill, conservative backfill, fair-share, all-or-nothing gang, and
// starvation-bounded priority engines; a separate interactive/visualization
// partition; preemptive on-demand (urgent) computing; and advance
// reservations used by the metascheduler for cross-site co-allocation.
//
// The engine owns the batch queue and every start decision; the Scheduler
// core owns the physical machine — partitions, running jobs, outages,
// crashes, node losses, reservations, and accounting. All engines honor two
// hard guarantees that make planning sound: jobs are killed at their
// requested walltime, so a running job's cores are certainly free by
// start+walltime; and no engine starts a job whose (cores, walltime)
// rectangle would overlap a committed reservation.
package sched

import (
	"fmt"
	"math"
	"sort"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/job"
)

// Policy selects a batch scheduling algorithm by enum value.
//
// Deprecated: the enum is frozen at the four original policies and exists
// only for source compatibility. Use engine names with NewNamed (or
// NewEngine) instead; new engines are registered by name and never get
// enum values.
type Policy int

// Batch scheduling policies.
//
// Deprecated: use engine names ("fcfs", "easy", "conservative",
// "fairshare", "gang", "priority") with NewNamed.
const (
	FCFS         Policy = iota // strict first-come first-served
	EASY                       // aggressive backfill with one reservation (head job)
	Conservative               // backfill with reservations for every queued job
	FairShare                  // EASY ordered by decayed per-user usage
)

// String returns the policy's engine name.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case EASY:
		return "easy"
	case Conservative:
		return "conservative"
	case FairShare:
		return "fairshare"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// PolicyByName maps a legacy engine name to its enum value.
//
// Deprecated: compat shim for callers still carrying Policy values. Only
// the four original policies have enum values; "gang" and "priority" (and
// any externally registered engine) are reachable only through NewNamed.
func PolicyByName(name string) (Policy, error) {
	for _, p := range []Policy{FCFS, EASY, Conservative, FairShare} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: no legacy Policy value for engine %q", name)
}

// Event is a job lifecycle notification delivered to listeners.
type Event struct {
	Kind EventKind
	Job  *job.Job
}

// EventKind enumerates job lifecycle notifications.
type EventKind int

// Lifecycle notification kinds.
const (
	EventQueued EventKind = iota
	EventStarted
	EventFinished  // completed or killed at walltime
	EventPreempted // urgent preemption; job was requeued
	EventRejected  // impossible request (exceeds machine capacity)
	// EventKilled is an unplanned kill (machine crash or node failure). The
	// job is NOT requeued by the scheduler: the fault layer routes it next
	// (Requeue here or metasched failover), and that re-entry emits its own
	// EventQueued — which is what keeps the span stream well-formed (a kill
	// only closes the run span; the next queue entry opens the wait span).
	EventKilled
)

// String returns the event-kind name.
func (k EventKind) String() string {
	switch k {
	case EventQueued:
		return "queued"
	case EventStarted:
		return "started"
	case EventFinished:
		return "finished"
	case EventPreempted:
		return "preempted"
	case EventRejected:
		return "rejected"
	case EventKilled:
		return "killed"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Listener receives job lifecycle events.
type Listener func(Event)

// Probe receives scheduler-internal decision notifications that the
// lifecycle Listener seam cannot express: backfill placements, urgent
// preemption victim selection, reservation activations, maintenance
// window boundaries, and engine-specific decisions (gang holds, aging
// escalations). The job is nil for machine-level events. A nil probe
// costs one comparison per decision.
type Probe func(kind string, j *job.Job)

// Probe decision kinds.
const (
	ProbeBackfill      = "backfill"       // job started ahead of the queue head
	ProbePreemptVictim = "preempt-victim" // job preempted for an urgent arrival
	ProbeReservation   = "reservation"    // advance reservation activated
	ProbeOutageBegin   = "outage-begin"   // maintenance window opened
	ProbeOutageEnd     = "outage-end"     // maintenance window closed
	ProbeCrash         = "crash"          // unplanned machine crash began
	ProbeCrashKill     = "crash-kill"     // running job killed by a crash
	ProbeNodeFail      = "node-fail"      // partial node failure began
	ProbeNodeKill      = "node-kill"      // running job killed by node loss
	ProbeNodeRestore   = "node-restore"   // failed nodes returned to service
	ProbeGangHold      = "gang-hold"      // gang member granted an assembly hold
	ProbeGangStart     = "gang-start"     // all-or-nothing gang launch
	ProbeAgeEscalate   = "age-escalate"   // starved job escalated past the skip bound
)

// outage is an unavailability window — planned maintenance or unplanned
// crash repair — during which no batch work may execute. Overlapping
// windows are merged into one canonical window (see addOutage); absorbed
// windows stay reachable from their already-armed kernel events with
// merged set, which turns those events into no-ops.
type outage struct {
	start, end des.Time
	merged     bool
}

// capLoss is a partial-capacity window: cores batch cores are out of
// service over [start, end) while the rest of the machine keeps running.
type capLoss struct {
	start, end des.Time
	cores      int
}

// reservation is a committed block of cores over a future interval.
type reservation struct {
	id    string
	cores int
	start des.Time
	end   des.Time
	// claim, if non-nil, is started inside the reservation at its start.
	claim *job.Job
}

// running tracks an executing job.
type running struct {
	j         *job.Job
	endTimer  des.Timer
	endsBy    des.Time // guaranteed end: start + requested walltime
	fromResID string   // non-empty if the job runs inside a reservation
}

// Scheduler is the batch system of one machine.
type Scheduler struct {
	K      *des.Kernel
	M      *grid.Machine
	engine PolicyEngine
	// CheckpointRestart, when true, lets preempted jobs resume from a
	// checkpoint: only work since the last checkpoint interval boundary is
	// lost, instead of the whole run. Production urgent-computing
	// deployments differed exactly in whether victims checkpointed.
	CheckpointRestart bool
	// CheckpointInterval is the checkpoint cadence (default 15 min).
	CheckpointInterval des.Time
	// CheckpointOverhead, when positive (and CheckpointRestart is on), adds
	// this much walltime per completed checkpoint interval to every run —
	// the cost of writing the checkpoint. Zero models free checkpoints.
	CheckpointOverhead des.Time
	// FairShareHalfLife controls usage decay under the fairshare engine
	// (default 7 days): a user's past consumption halves every half-life,
	// so a usage burst stops penalizing its owner after a few periods.
	FairShareHalfLife des.Time
	// fsUsage tracks decayed per-user core-seconds for fairshare ordering.
	fsUsage map[string]*fsEntry

	freeBatch int
	freeViz   int

	vizQueue   []*job.Job // interactive partition queue
	running    map[job.ID]*running
	resvs      []*reservation
	outages    []*outage
	nodeLosses []*capLoss

	listeners []Listener
	// Probe, when non-nil, observes scheduler-internal decisions.
	Probe Probe

	// Statistics.
	busyIntegral float64  // core-seconds of batch occupancy
	lastAccum    des.Time // last time busyIntegral was updated
	stats        Stats
	// reschedule guard: a listener reacting to a lifecycle event may submit
	// more work synchronously; instead of recursing, the outer reschedule
	// loops again.
	rescheduling   bool
	needReschedule bool

	// Estimate cache. The conservative queue plan EstimateStart builds is
	// a pure function of scheduler state, and the metascheduler polls
	// every machine for every brokered arrival — profiling shows that
	// replanning dominating large runs. stateVersion fingerprints every
	// queue/running/reservation/outage mutation; a matching version means
	// the cached planned profile (which earliestFit reads without
	// mutating) is still exact.
	stateVersion uint64
	estVersion   uint64
	estProfile   *profile
	estTail      des.Time
}

// Stats is a point-in-time snapshot of a scheduler's lifetime counters.
type Stats struct {
	Started      uint64 // jobs started (batch + viz)
	Finished     uint64 // jobs finished (completed or walltime-killed)
	Preemptions  uint64 // urgent preemptions plus unplanned kills
	Crashes      uint64 // whole-machine crash events
	CrashKills   uint64 // running jobs killed by crashes
	NodeFailures uint64 // partial node-failure events
	NodeKills    uint64 // running jobs killed by node losses
	// Engine holds engine-specific counters (gang holds, aging
	// escalations); zero-valued for engines without those mechanisms.
	Engine EngineStats
}

// fsEntry is one user's decayed usage accumulator.
type fsEntry struct {
	usage float64
	at    des.Time
}

// New returns a scheduler for machine m using a legacy enum policy.
//
// Deprecated: use NewNamed with an engine name, which reaches every
// registered engine instead of only the four enum values.
func New(k *des.Kernel, m *grid.Machine, policy Policy) *Scheduler {
	s, err := NewNamed(k, m, policy.String())
	if err != nil {
		panic("sched: " + err.Error())
	}
	return s
}

// NewNamed returns a scheduler for machine m driven by kernel k, running
// the named policy engine from the registry.
func NewNamed(k *des.Kernel, m *grid.Machine, engine string) (*Scheduler, error) {
	e, err := NewEngine(engine)
	if err != nil {
		return nil, err
	}
	return NewWith(k, m, e), nil
}

// MustNamed is NewNamed for compile-time-literal engine names; it panics
// on an unknown name. Meant for examples and tests.
func MustNamed(k *des.Kernel, m *grid.Machine, engine string) *Scheduler {
	s, err := NewNamed(k, m, engine)
	if err != nil {
		panic("sched: " + err.Error())
	}
	return s
}

// NewWith returns a scheduler for machine m around a caller-built engine
// instance (registered or not). The engine must not be shared between
// schedulers.
func NewWith(k *des.Kernel, m *grid.Machine, e PolicyEngine) *Scheduler {
	return &Scheduler{
		K:         k,
		M:         m,
		engine:    e,
		freeBatch: m.BatchCores(),
		freeViz:   m.VizCores(),
		running:   make(map[job.ID]*running),
		fsUsage:   make(map[string]*fsEntry),
	}
}

// EngineName returns the active policy engine's registry name.
func (s *Scheduler) EngineName() string { return s.engine.Name() }

// Subscribe registers a lifecycle listener.
func (s *Scheduler) Subscribe(l Listener) { s.listeners = append(s.listeners, l) }

func (s *Scheduler) emit(kind EventKind, j *job.Job) {
	// Every lifecycle transition changes the availability picture.
	s.stateVersion++
	for _, l := range s.listeners {
		l(Event{Kind: kind, Job: j})
	}
}

func (s *Scheduler) probe(kind string, j *job.Job) {
	// Decisions without a lifecycle event (reservations, outages) still
	// move the profile; over-invalidating the estimate cache is harmless.
	s.stateVersion++
	if s.Probe != nil {
		s.Probe(kind, j)
	}
}

// FreeBatchCores returns the currently idle batch cores.
func (s *Scheduler) FreeBatchCores() int { return s.freeBatch }

// QueueLen returns the number of jobs waiting in the batch queue.
func (s *Scheduler) QueueLen() int { return s.engine.Len() }

// RunningCount returns the number of executing jobs.
func (s *Scheduler) RunningCount() int { return len(s.running) }

// Stats returns a snapshot of the scheduler's lifetime counters,
// including engine-specific ones.
func (s *Scheduler) Stats() Stats {
	st := s.stats
	if r, ok := s.engine.(statsReporter); ok {
		st.Engine = r.EngineStats()
	}
	return st
}

// OldestQueuedAge returns how long the longest-waiting queued batch job
// has been in the queue, or zero when the queue is empty.
func (s *Scheduler) OldestQueuedAge() des.Time {
	queued := s.engine.Queued()
	if len(queued) == 0 {
		return 0
	}
	oldest := queued[0].SubmitTime
	for _, j := range queued[1:] {
		if j.SubmitTime < oldest {
			oldest = j.SubmitTime
		}
	}
	return s.K.Now() - oldest
}

// Utilization returns the time-averaged fraction of batch cores busy since
// simulation start.
func (s *Scheduler) Utilization() float64 {
	s.accumulate()
	total := float64(s.M.BatchCores()) * float64(s.K.Now())
	if total == 0 {
		return 0
	}
	return s.busyIntegral / total
}

func (s *Scheduler) accumulate() {
	now := s.K.Now()
	busy := float64(s.M.BatchCores() - s.freeBatch)
	s.busyIntegral += busy * float64(now-s.lastAccum)
	s.lastAccum = now
}

// Submit places a job in the appropriate queue. Jobs whose core request can
// never fit the machine are rejected (state Failed). Urgent jobs may
// trigger preemption immediately.
func (s *Scheduler) Submit(j *job.Job) {
	if err := j.Validate(); err != nil {
		panic("sched: " + err.Error())
	}
	j.Site = s.M.Site
	j.Machine = s.M.ID
	j.SubmitTime = s.K.Now()

	switch j.QOS {
	case job.QOSInteractive:
		if j.Cores > s.M.VizCores() {
			s.reject(j)
			return
		}
		j.State = job.StateQueued
		s.vizQueue = append(s.vizQueue, j)
		s.emit(EventQueued, j)
		s.dispatchViz()
	case job.QOSUrgent:
		if j.Cores > s.M.BatchCores() || !s.M.UrgentCapable {
			s.reject(j)
			return
		}
		j.State = job.StateQueued
		s.emit(EventQueued, j)
		s.startUrgent(j)
	default:
		if j.Cores > s.M.BatchCores() {
			s.reject(j)
			return
		}
		j.State = job.StateQueued
		s.engine.Push(j)
		s.emit(EventQueued, j)
		s.reschedule()
	}
}

func (s *Scheduler) reject(j *job.Job) {
	j.State = job.StateFailed
	s.emit(EventRejected, j)
}

// ---- Batch partition ----

// buildProfile constructs the availability profile from running batch jobs'
// guaranteed ends plus all committed reservations. Claimed-and-running
// reservation jobs are already accounted as running jobs.
func (s *Scheduler) buildProfile() *profile {
	now := s.K.Now()
	p := newProfile(now, s.M.BatchCores())
	// Running jobs hold cores until their guaranteed end. A job whose
	// guaranteed end equals the current instant may still be running —
	// its finish event fires later within this timestamp — so hold its
	// cores for an infinitesimal sliver to keep profile and partition
	// state consistent; the finish event triggers a fresh reschedule at
	// the same virtual time.
	for _, r := range s.running {
		if r.j.QOS == job.QOSInteractive {
			continue
		}
		end := r.endsBy
		if end <= now {
			end = now + 1e-9
		}
		p.subtract(now, end, r.j.Cores)
	}
	for _, rv := range s.resvs {
		start := rv.start
		if start < now {
			start = now
		}
		if rv.end > start {
			p.subtract(start, rv.end, rv.cores)
		}
	}
	// Partial node failures remove cores from the free pool. deduct (not
	// capTo) because lost cores stack with occupancy: a machine running 78
	// of 128 cores that loses 50 has zero schedulable headroom, not 50.
	for _, l := range s.nodeLosses {
		start := l.start
		if start < now {
			start = now
		}
		if l.end > start {
			p.deduct(start, l.end, l.cores)
		}
	}
	// Maintenance outages blank the machine regardless of other state.
	for _, o := range s.outages {
		start := o.start
		if start < now {
			start = now
		}
		if o.end > start {
			p.capTo(start, o.end, 0)
		}
	}
	return p
}

// ---- Maintenance outages ----

// ScheduleOutage declares a maintenance window [start, end): no batch job
// may be executing during it. Jobs whose walltime would cross into the
// window are not started (the machine drains), and any job still running
// when the outage begins is preempted and requeued. Interactive/viz
// sessions are unaffected (viz partitions were typically serviced
// separately).
func (s *Scheduler) ScheduleOutage(start, end des.Time) error {
	now := s.K.Now()
	if start < now || end <= start {
		return fmt.Errorf("sched %s: invalid outage window [%v,%v)", s.M.ID, start, end)
	}
	s.addOutage(start, end)
	s.reschedule()
	return nil
}

// addOutage records an unavailability window and arms its boundary events.
// Overlapping windows merge into one canonical window covering the union —
// a crash landing inside an already-scheduled maintenance window must not
// re-release cores or fire a second begin/end pair. Absorbed windows are
// removed from the active list and flagged merged so their already-armed
// kernel events no-op. Abutting windows (one's end equal to the other's
// start) stay separate: there is an instant between them where the machine
// is up, and each pair of boundary events is a real transition.
func (s *Scheduler) addOutage(start, end des.Time) *outage {
	// An existing live window that already covers the request absorbs it:
	// no new state, no new events.
	for _, o := range s.outages {
		if o.start <= start && end <= o.end {
			return o
		}
	}
	// Otherwise take the union with every strictly overlapping window.
	for {
		absorbed := false
		for i, o := range s.outages {
			if start < o.end && o.start < end {
				if o.start < start {
					start = o.start
				}
				if o.end > end {
					end = o.end
				}
				o.merged = true
				s.outages = append(s.outages[:i], s.outages[i+1:]...)
				absorbed = true
				break
			}
		}
		if !absorbed {
			break
		}
	}
	o := &outage{start: start, end: end}
	s.outages = append(s.outages, o)
	s.stateVersion++
	now := s.K.Now()
	if start >= now {
		s.K.AtNamed(start, "outage-start", func(*des.Kernel) {
			if o.merged {
				return
			}
			s.probe(ProbeOutageBegin, nil)
			// The window just blanked the machine: engine-held claims on
			// future capacity are void, all at once.
			s.engine.Disrupted(s)
			// Preempt stragglers (only possible when the outage was
			// announced with less lead time than running walltimes).
			var victims []*running
			for _, r := range s.running {
				if r.j.QOS != job.QOSInteractive {
					victims = append(victims, r)
				}
			}
			sort.Slice(victims, func(a, b int) bool { return victims[a].j.ID < victims[b].j.ID })
			for _, v := range victims {
				s.preempt(v)
			}
		})
	}
	// When start < now the window extends one already in progress (a crash
	// merged into an active maintenance window): the begin transition
	// already fired, only the close moves.
	s.K.AtNamed(end, "outage-end", func(*des.Kernel) {
		if o.merged {
			return
		}
		s.probe(ProbeOutageEnd, nil)
		for i, oo := range s.outages {
			if oo == o {
				s.outages = append(s.outages[:i], s.outages[i+1:]...)
				break
			}
		}
		s.reschedule()
	})
	return o
}

// reschedule runs the active policy engine over the batch queue.
func (s *Scheduler) reschedule() {
	if s.rescheduling {
		s.needReschedule = true
		return
	}
	s.rescheduling = true
	s.stateVersion++
	defer func() { s.rescheduling = false }()
	for {
		s.needReschedule = false
		s.engine.Schedule(s)
		if !s.needReschedule {
			return
		}
	}
}

// ---- Fair share ----

// fsDecayed returns a user's usage decayed to the current instant.
func (s *Scheduler) fsDecayed(user string) float64 {
	e, ok := s.fsUsage[user]
	if !ok {
		return 0
	}
	half := s.FairShareHalfLife
	if half <= 0 {
		half = 7 * des.Day
	}
	dt := float64(s.K.Now() - e.at)
	u := e.usage * math.Exp(-math.Ln2*dt/float64(half))
	// Below one core-second the history is noise; treating it as zero
	// keeps long-dormant users indistinguishable from new ones.
	if u < 1 {
		return 0
	}
	return u
}

// fsCharge folds finished usage into the user's decayed accumulator.
func (s *Scheduler) fsCharge(user string, coreSeconds float64) {
	e := s.fsUsage[user]
	if e == nil {
		s.fsUsage[user] = &fsEntry{usage: coreSeconds, at: s.K.Now()}
		return
	}
	e.usage = s.fsDecayed(user) + coreSeconds
	e.at = s.K.Now()
}

// startableNow reports whether j can start immediately under profile p
// (which must already reflect running jobs and reservations).
func (s *Scheduler) startableNow(p *profile, j *job.Job) bool {
	now := s.K.Now()
	return p.minFree(now, now+j.ReqWalltime) >= j.Cores
}

// startBatch begins execution of a batch job immediately.
func (s *Scheduler) startBatch(j *job.Job, fromResID string) {
	s.accumulate()
	s.freeBatch -= j.Cores
	if s.freeBatch < 0 {
		panic(fmt.Sprintf("sched %s: batch partition overcommitted by %d cores", s.M.ID, -s.freeBatch))
	}
	now := s.K.Now()
	j.State = job.StateRunning
	j.StartTime = now
	dur := j.RunTime
	if s.CheckpointRestart && s.CheckpointOverhead > 0 {
		// Each completed checkpoint interval costs its write time.
		interval := s.CheckpointInterval
		if interval <= 0 {
			interval = 15 * des.Minute
		}
		dur += des.Time(int64(dur/interval)) * s.CheckpointOverhead
	}
	killed := false
	if dur > j.ReqWalltime {
		dur = j.ReqWalltime
		killed = true
	}
	r := &running{j: j, endsBy: now + j.ReqWalltime, fromResID: fromResID}
	r.endTimer = s.K.ScheduleNamed(dur, "job-end", func(*des.Kernel) {
		s.finish(r, killed)
	})
	s.running[j.ID] = r
	s.stats.Started++
	s.emit(EventStarted, j)
}

// finish completes a running batch or viz job.
func (s *Scheduler) finish(r *running, killed bool) {
	j := r.j
	delete(s.running, j.ID)
	j.EndTime = s.K.Now()
	if killed {
		j.State = job.StateKilled
	} else {
		j.State = job.StateCompleted
	}
	if j.QOS == job.QOSInteractive {
		s.freeViz += j.Cores
	} else {
		s.accumulate()
		s.freeBatch += j.Cores
		s.engine.JobFinished(s, j)
	}
	s.stats.Finished++
	s.emit(EventFinished, j)
	if j.QOS == job.QOSInteractive {
		s.dispatchViz()
	} else {
		s.reschedule()
	}
}

// ---- Urgent computing ----

// startUrgent starts an urgent job immediately, preempting the most
// recently started normal jobs if needed. Preempted jobs are requeued at
// the head of the batch queue and restart from scratch.
func (s *Scheduler) startUrgent(j *job.Job) {
	need := j.Cores - s.freeBatch
	if need > 0 {
		// Victims: running normal-QOS jobs, most recently started first
		// (minimizes lost work), deterministic tie-break by job ID.
		var victims []*running
		for _, r := range s.running {
			if r.j.QOS == job.QOSNormal && r.fromResID == "" {
				victims = append(victims, r)
			}
		}
		sort.Slice(victims, func(a, b int) bool {
			if victims[a].j.StartTime != victims[b].j.StartTime {
				return victims[a].j.StartTime > victims[b].j.StartTime
			}
			return victims[a].j.ID > victims[b].j.ID
		})
		for _, v := range victims {
			if need <= 0 {
				break
			}
			s.preempt(v)
			need -= v.j.Cores
		}
	}
	if j.Cores > s.freeBatch {
		// Even preempting everything normal was not enough (urgent jobs or
		// reservation claims hold the rest). Queue at the head.
		s.engine.PushFront(j)
		return
	}
	s.startBatch(j, "")
}

// preempt stops a running job and requeues it at the head of the queue.
// Without checkpointing the job restarts from scratch; with it, completed
// checkpoint intervals are credited and only the tail is redone.
func (s *Scheduler) preempt(r *running) {
	j := r.j
	s.K.Cancel(r.endTimer)
	delete(s.running, j.ID)
	s.accumulate()
	s.freeBatch += j.Cores
	if s.CheckpointRestart {
		s.checkpointCredit(j)
	}
	j.State = job.StatePreempted
	j.Preemptions++
	s.stats.Preemptions++
	s.probe(ProbePreemptVictim, j)
	s.emit(EventPreempted, j)
	// Requeue at the head, preserving the original submit time so
	// accumulated wait is reflected in metrics.
	j.State = job.StateQueued
	s.engine.PushFront(j)
}

// checkpointCredit credits completed checkpoint intervals against a stopped
// job's remaining work and walltime request, returning the amount of run
// time credited. With CheckpointOverhead, each completed interval cost
// extra walltime that yields no credit.
func (s *Scheduler) checkpointCredit(j *job.Job) des.Time {
	interval := s.CheckpointInterval
	if interval <= 0 {
		interval = 15 * des.Minute
	}
	ran := s.K.Now() - j.StartTime
	completed := int64(ran / (interval + s.CheckpointOverhead))
	checkpointed := des.Time(completed) * interval
	j.RunTime -= checkpointed
	if j.RunTime < 1 {
		j.RunTime = 1
	}
	// The walltime request shrinks with the remaining work, keeping
	// the request honest for backfill planning.
	if j.ReqWalltime > j.RunTime {
		remaining := j.ReqWalltime - checkpointed
		if remaining < j.RunTime {
			remaining = j.RunTime
		}
		j.ReqWalltime = remaining
	}
	return checkpointed
}

// ---- Unplanned failures (fault-injection interface) ----

// killRunning stops a running batch job because its hardware failed. Unlike
// preempt it does not requeue — the caller routes the victim (failover to
// another machine, or Requeue here) — and it charges the work lost since
// the last checkpoint (or the whole run) to the job's wasted-work account.
func (s *Scheduler) killRunning(r *running, kind string) {
	j := r.j
	s.K.Cancel(r.endTimer)
	delete(s.running, j.ID)
	s.accumulate()
	s.freeBatch += j.Cores
	ran := s.K.Now() - j.StartTime
	var checkpointed des.Time
	if s.CheckpointRestart {
		checkpointed = s.checkpointCredit(j)
	}
	if lost := float64(ran-checkpointed) * float64(j.Cores); lost > 0 {
		j.WastedCoreSeconds += lost
	}
	j.State = job.StatePreempted
	j.Preemptions++
	s.stats.Preemptions++
	s.probe(kind, j)
	s.emit(EventKilled, j)
}

// Crash takes the whole machine down until the given repair time: every
// running batch job (including reservation claims; the viz partition rides
// out crashes like it does maintenance) is killed with its lost work
// charged, and an unavailability window blocks new starts until repair.
// The window merges with any overlapping maintenance window rather than
// double-releasing cores. Engine-held assembly claims are released
// atomically before victims are routed. Victims are returned in job-ID
// order, in state Preempted, for the caller to re-route. until must be in
// the future; past-or-now values are clamped to an instant after now.
func (s *Scheduler) Crash(until des.Time) []*job.Job {
	now := s.K.Now()
	if until <= now {
		until = now + 1e-9
	}
	s.stats.Crashes++
	s.probe(ProbeCrash, nil)
	s.engine.Disrupted(s)
	var victims []*running
	for _, r := range s.running {
		if r.j.QOS != job.QOSInteractive {
			victims = append(victims, r)
		}
	}
	sort.Slice(victims, func(a, b int) bool { return victims[a].j.ID < victims[b].j.ID })
	out := make([]*job.Job, 0, len(victims))
	for _, v := range victims {
		s.killRunning(v, ProbeCrashKill)
		s.stats.CrashKills++
		out = append(out, v.j)
	}
	s.addOutage(now, until)
	s.reschedule()
	return out
}

// Requeue puts a crash or node-failure victim back at the head of this
// machine's batch queue, preserving its original submit time, and kicks the
// scheduler. The complement of metasched failover: what stays, stays here.
func (s *Scheduler) Requeue(j *job.Job) {
	j.State = job.StateQueued
	s.engine.PushFront(j)
	s.stateVersion++
	s.emit(EventQueued, j)
	s.reschedule()
}

// FailNodes takes cores batch cores out of service until the given time.
// The machine keeps running; if the surviving capacity cannot hold the
// current load, the most recently started batch jobs are killed (least lost
// work) and requeued locally. Returns the victims (already requeued), in
// job-ID order.
func (s *Scheduler) FailNodes(cores int, until des.Time) []*job.Job {
	now := s.K.Now()
	if cores <= 0 || until <= now {
		return nil
	}
	if cores > s.M.BatchCores() {
		cores = s.M.BatchCores()
	}
	s.stats.NodeFailures++
	s.probe(ProbeNodeFail, nil)
	// Capacity shrank under the engine: assembly holds sized for the old
	// machine are void, all at once.
	s.engine.Disrupted(s)
	loss := &capLoss{start: now, end: until, cores: cores}
	s.nodeLosses = append(s.nodeLosses, loss)
	s.stateVersion++
	s.K.AtNamed(until, "nodes-restore", func(*des.Kernel) {
		for i, l := range s.nodeLosses {
			if l == loss {
				s.nodeLosses = append(s.nodeLosses[:i], s.nodeLosses[i+1:]...)
				break
			}
		}
		s.probe(ProbeNodeRestore, nil)
		s.reschedule()
	})
	// Survivors must fit the remaining capacity: kill most recently started
	// first, deterministic tie-break by job ID (same order startUrgent uses).
	totalLoss := 0
	for _, l := range s.nodeLosses {
		if l.end > now {
			totalLoss += l.cores
		}
	}
	if totalLoss > s.M.BatchCores() {
		totalLoss = s.M.BatchCores()
	}
	surviving := s.M.BatchCores() - totalLoss
	busy := s.M.BatchCores() - s.freeBatch
	var victims []*job.Job
	if busy > surviving {
		var cands []*running
		for _, r := range s.running {
			if r.j.QOS != job.QOSInteractive {
				cands = append(cands, r)
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].j.StartTime != cands[b].j.StartTime {
				return cands[a].j.StartTime > cands[b].j.StartTime
			}
			return cands[a].j.ID > cands[b].j.ID
		})
		for _, v := range cands {
			if busy <= surviving {
				break
			}
			s.killRunning(v, ProbeNodeKill)
			s.stats.NodeKills++
			busy -= v.j.Cores
			victims = append(victims, v.j)
		}
		sort.Slice(victims, func(a, b int) bool { return victims[a].ID < victims[b].ID })
		// Push front in reverse so the lowest job ID ends up at the head.
		for i := len(victims) - 1; i >= 0; i-- {
			victims[i].State = job.StateQueued
			s.engine.PushFront(victims[i])
		}
		for _, v := range victims {
			s.emit(EventQueued, v)
		}
	}
	s.reschedule()
	return victims
}

// ---- Interactive / visualization partition ----

func (s *Scheduler) dispatchViz() {
	for len(s.vizQueue) > 0 {
		head := s.vizQueue[0]
		if head.Cores > s.freeViz {
			return
		}
		s.vizQueue = s.vizQueue[1:]
		s.freeViz -= head.Cores
		now := s.K.Now()
		head.State = job.StateRunning
		head.StartTime = now
		dur := head.RunTime
		killed := false
		if dur > head.ReqWalltime {
			dur = head.ReqWalltime
			killed = true
		}
		r := &running{j: head, endsBy: now + head.ReqWalltime}
		r.endTimer = s.K.ScheduleNamed(dur, "viz-end", func(*des.Kernel) {
			s.finish(r, killed)
		})
		s.running[head.ID] = r
		s.stats.Started++
		s.emit(EventStarted, head)
	}
}

// ---- Advance reservations ----

// Reserve commits cores over [start, end). The reservation is honored by
// all engines: no job may be started whose execution rectangle would
// overlap it. Returns an error when the request is infeasible against
// currently running jobs and existing reservations.
func (s *Scheduler) Reserve(id string, cores int, start, end des.Time) error {
	now := s.K.Now()
	if cores <= 0 || cores > s.M.BatchCores() {
		return fmt.Errorf("sched %s: reservation %s: invalid cores %d", s.M.ID, id, cores)
	}
	if start < now || end <= start {
		return fmt.Errorf("sched %s: reservation %s: invalid window [%v,%v)", s.M.ID, id, start, end)
	}
	for _, rv := range s.resvs {
		if rv.id == id {
			return fmt.Errorf("sched %s: duplicate reservation %s", s.M.ID, id)
		}
	}
	p := s.buildProfile()
	if p.minFree(start, end) < cores {
		return fmt.Errorf("sched %s: reservation %s: %d cores not free over [%v,%v)",
			s.M.ID, id, cores, start, end)
	}
	rv := &reservation{id: id, cores: cores, start: start, end: end}
	s.resvs = append(s.resvs, rv)
	s.stateVersion++
	s.K.AtNamed(start, "resv-start", func(*des.Kernel) { s.activateReservation(rv) })
	return nil
}

// ClaimReservation attaches job j to reservation id; j starts at the
// reservation's start time on the reserved cores.
func (s *Scheduler) ClaimReservation(id string, j *job.Job) error {
	for _, rv := range s.resvs {
		if rv.id == id {
			if rv.claim != nil {
				return fmt.Errorf("sched %s: reservation %s already claimed", s.M.ID, id)
			}
			if j.Cores > rv.cores {
				return fmt.Errorf("sched %s: job needs %d cores, reservation %s has %d",
					s.M.ID, j.Cores, id, rv.cores)
			}
			j.Site = s.M.Site
			j.Machine = s.M.ID
			j.SubmitTime = s.K.Now()
			j.State = job.StateQueued
			rv.claim = j
			s.emit(EventQueued, j)
			return nil
		}
	}
	return fmt.Errorf("sched %s: no reservation %s", s.M.ID, id)
}

// CancelReservation drops an unclaimed reservation, releasing its window.
func (s *Scheduler) CancelReservation(id string) bool {
	for i, rv := range s.resvs {
		if rv.id == id && rv.claim == nil {
			s.resvs = append(s.resvs[:i], s.resvs[i+1:]...)
			s.reschedule()
			return true
		}
	}
	return false
}

// activateReservation fires at a reservation's start time: the claimed job
// begins executing; the reservation window shrinks to the claim (or is
// dropped when unclaimed), then normal scheduling resumes.
func (s *Scheduler) activateReservation(rv *reservation) {
	for i, r := range s.resvs {
		if r == rv {
			s.resvs = append(s.resvs[:i], s.resvs[i+1:]...)
			break
		}
	}
	if rv.claim != nil {
		// Cap the claimed job's walltime at the reservation window so the
		// profile guarantee stays sound.
		if rv.claim.ReqWalltime > rv.end-rv.start {
			rv.claim.ReqWalltime = rv.end - rv.start
		}
		s.probe(ProbeReservation, rv.claim)
		s.startBatch(rv.claim, rv.id)
	}
	s.reschedule()
}

// ---- Queue estimation (metascheduler interface) ----

// EstimateStart predicts the earliest start time of a hypothetical
// (cores, walltime) request submitted now, assuming conservative planning
// of everything currently queued. The estimate is what TeraGrid's
// batch-queue-prediction tools exposed to resource selectors.
func (s *Scheduler) EstimateStart(cores int, walltime des.Time) (des.Time, bool) {
	if cores <= 0 || cores > s.M.BatchCores() {
		return 0, false
	}
	// The planned profile is cached across calls keyed on stateVersion:
	// until some lifecycle event, reservation, or outage changes the
	// availability picture, the plan below stays exact, and the common
	// metascheduler pattern — estimate every machine, then estimate again
	// for co-allocation — reuses it instead of replanning the whole queue.
	if s.estProfile == nil || s.estVersion != s.stateVersion {
		p := s.buildProfile()
		// The estimator plans the queue in detail up to a depth bound, then
		// folds anything beyond it into an aggregate backlog term (total
		// requested core-seconds divided by machine capacity). Detailed
		// planning keeps estimates honest at normal depths — a truncated
		// plan would bias optimistic exactly when predictions matter —
		// while the aggregate tail keeps the call linear when a queue has
		// blown up. The queue is planned in the engine's priority order.
		const maxDetailed = 1000
		queued := s.engine.Queued()
		detail := len(queued)
		if detail > maxDetailed {
			detail = maxDetailed
		}
		for _, q := range queued[:detail] {
			at, ok := p.earliestFit(s.K.Now(), q.Cores, q.ReqWalltime)
			if ok {
				p.subtract(at, at+q.ReqWalltime, q.Cores)
			}
		}
		var tail des.Time
		if len(queued) > detail {
			var tailCS float64
			for _, q := range queued[detail:] {
				tailCS += float64(q.ReqWalltime) * float64(q.Cores)
			}
			tail = des.Time(tailCS / float64(s.M.BatchCores()))
		}
		s.estProfile = p
		s.estTail = tail
		s.estVersion = s.stateVersion
	}
	at, ok := s.estProfile.earliestFit(s.K.Now(), cores, walltime)
	if !ok {
		return 0, false
	}
	return at + s.estTail, true
}
