package sched

import (
	"sort"

	"github.com/tgsim/tgmod/internal/job"
)

func init() { RegisterEngine("fairshare", func() PolicyEngine { return &fairshareEngine{} }) }

// fairshareEngine runs EASY over the queue re-ordered by decayed per-user
// usage (lightest consumers first; ties by submit order). The priority
// order is realized by permuting the queue, then delegating to the EASY
// pass — the fairness policy is purely an ordering policy. Usage history
// lives on the Scheduler (fsUsage) so tests and callers can tune the
// half-life without reaching into the engine.
type fairshareEngine struct {
	fifoQueue
}

func (e *fairshareEngine) Name() string { return "fairshare" }

func (e *fairshareEngine) Schedule(s *Scheduler) {
	sort.SliceStable(e.q, func(a, b int) bool {
		ua, ub := s.fsDecayed(e.q[a].User), s.fsDecayed(e.q[b].User)
		if ua != ub {
			return ua < ub
		}
		return e.q[a].SubmitTime < e.q[b].SubmitTime
	})
	easyPass(s, &e.q)
}

func (e *fairshareEngine) JobFinished(s *Scheduler, j *job.Job) {
	s.fsCharge(j.User, j.CoreSeconds())
}
