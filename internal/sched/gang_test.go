package sched

import (
	"testing"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
)

// mkGangJob tags a job as a member of ensemble campaign key.
func mkGangJob(key string, cores int, run, wall des.Time) *job.Job {
	j := mkJob(cores, run, wall)
	j.Attr.EnsembleID = key
	return j
}

func newGangSched() (*des.Kernel, *Scheduler, *gangEngine) {
	k := des.New()
	e := &gangEngine{}
	return k, NewWith(k, testMachine(), e), e
}

// TestGangAllOrNothing: once any member of a campaign is blocked, queued
// members wait for each other and launch together; untagged work still
// backfills around the assembling gang.
func TestGangAllOrNothing(t *testing.T) {
	k, s, _ := newGangSched()
	b1 := mkJob(60, 150, 150) // [0,150)
	b2 := mkJob(40, 50, 50)   // [0,50): 12 of 112 free while both run
	s.Submit(b1)
	s.Submit(b2)
	g1 := mkGangJob("ens-A", 30, 200, 200)
	g2 := mkGangJob("ens-A", 30, 200, 200)
	g3 := mkGangJob("ens-A", 30, 200, 200)
	s.Submit(g1) // 30 > 12 free: blocked, gang assembles
	s.Submit(g2)
	s.Submit(g3)
	filler := mkJob(20, 50, 50)
	k.AtNamed(60, "test-filler", func(*des.Kernel) { s.Submit(filler) })
	k.Run()
	// At t=50 b2 ends (52 free): one member is held but the gang (90 cores)
	// must wait for b1; everyone launches together at 150.
	for _, g := range []*job.Job{g1, g2, g3} {
		if g.StartTime != 150 {
			t.Errorf("gang member %d start = %v, want 150 (all-or-nothing)", g.ID, g.StartTime)
		}
	}
	if filler.StartTime != 60 {
		t.Errorf("filler start = %v, want 60 (backfilled around assembly)", filler.StartTime)
	}
	st := s.Stats().Engine
	if st.GangStarts != 1 {
		t.Errorf("gang starts = %d, want 1", st.GangStarts)
	}
	if st.GangHolds == 0 {
		t.Error("no assembly holds were placed")
	}
}

// TestGangHoldsBlockBackfill: a hold placed for an assembling gang keeps
// backfill from stealing the held cores even when a candidate would fit.
func TestGangHoldsBlockBackfill(t *testing.T) {
	k, s, _ := newGangSched()
	b1 := mkJob(60, 150, 150)
	b2 := mkJob(40, 50, 50)
	s.Submit(b1)
	s.Submit(b2)
	g1 := mkGangJob("ens-B", 30, 200, 200) // held once b2 ends (30 <= 52 free)
	g2 := mkGangJob("ens-B", 60, 200, 200) // needs b1 gone
	s.Submit(g1)
	s.Submit(g2)
	thief := mkJob(30, 80, 80) // would fit in the 52 free cores at t=60
	k.AtNamed(60, "test-thief", func(*des.Kernel) { s.Submit(thief) })
	k.Run()
	if g1.StartTime != 150 || g2.StartTime != 150 {
		t.Errorf("gang started [%v,%v], want both at 150", g1.StartTime, g2.StartTime)
	}
	if thief.StartTime < 150 {
		t.Errorf("backfill stole held cores: thief started at %v", thief.StartTime)
	}
}

// TestGangCrashMidAssemblyReleasesHoldsAtomically is the satellite
// regression: a crash landing while a gang is assembling must void every
// member hold at once. The requeued work reassembles after repair; no
// stale hold pins cores or corrupts the planning profile.
func TestGangCrashMidAssemblyReleasesHoldsAtomically(t *testing.T) {
	k, s, e := newGangSched()
	b1 := mkJob(60, 200, 200)
	b2 := mkJob(40, 50, 50)
	s.Submit(b1)
	s.Submit(b2)
	g1 := mkGangJob("ens-C", 30, 150, 150)
	g2 := mkGangJob("ens-C", 30, 150, 150)
	g3 := mkGangJob("ens-C", 30, 150, 150)
	s.Submit(g1)
	s.Submit(g2)
	s.Submit(g3)
	// b2 ends at 50 → a member hold exists when the crash lands at 60.
	k.AtNamed(60, "test-crash", func(*des.Kernel) {
		if len(e.held) == 0 {
			t.Fatal("expected assembly holds before the crash")
		}
		victims := s.Crash(100)
		if len(e.held) != 0 {
			t.Errorf("%d holds survived the crash (atomic release violated)", len(e.held))
		}
		if len(victims) != 1 || victims[0] != b1 {
			t.Fatalf("victims = %v, want the running blocker", victims)
		}
		for _, v := range victims {
			s.Requeue(v)
		}
	})
	// Backfill must still work around the reassembling gang after repair.
	late := mkJob(10, 20, 20)
	k.AtNamed(280, "test-late", func(*des.Kernel) { s.Submit(late) })
	if err := k.RunUntil(des.Forever); err != nil {
		t.Fatal(err)
	}
	// Repair at 100: the requeued blocker restarts and runs to 300; the
	// gang reassembles (fresh holds) and co-starts when it ends.
	if b1.StartTime != 100 {
		t.Errorf("blocker restarted at %v, want 100 (repair)", b1.StartTime)
	}
	if g1.StartTime != 300 || g2.StartTime != 300 || g3.StartTime != 300 {
		t.Errorf("gang restarted [%v,%v,%v], want all at 300",
			g1.StartTime, g2.StartTime, g3.StartTime)
	}
	if late.StartTime != 280 {
		t.Errorf("late job start = %v, want 280 (backfilled, no stale hold)", late.StartTime)
	}
	for _, j := range []*job.Job{b1, g1, g2, g3, late} {
		if j.State != job.StateCompleted {
			t.Errorf("job %d state = %v, want completed", j.ID, j.State)
		}
	}
}

// TestGangRequeueKeepsCampaignContiguous: a requeued member re-enters next
// to its queued gang peers rather than at the absolute front.
func TestGangRequeueKeepsCampaignContiguous(t *testing.T) {
	_, _, e := newGangSched()
	solo := mkJob(8, 10, 10)
	p1 := mkGangJob("ens-D", 8, 10, 10)
	p2 := mkGangJob("ens-D", 8, 10, 10)
	e.Push(solo)
	e.Push(p1)
	e.Push(p2)
	back := mkGangJob("ens-D", 8, 10, 10)
	e.PushFront(back)
	want := []*job.Job{solo, back, p1, p2}
	for i, j := range e.Queued() {
		if j != want[i] {
			t.Fatalf("queue[%d] = job %d, want job %d (campaign-aware requeue)", i, j.ID, want[i].ID)
		}
	}
	// Untagged requeues go to the true front.
	urgentBack := mkJob(4, 5, 5)
	e.PushFront(urgentBack)
	if e.Queued()[0] != urgentBack {
		t.Error("untagged requeue not at queue head")
	}
}

// TestGangOversizedDegeneratesToFCFS: a gang wider than the machine can
// never co-start; its members run FCFS-style instead of deadlocking.
func TestGangOversizedDegeneratesToFCFS(t *testing.T) {
	k, s, _ := newGangSched()
	blocker := mkJob(112, 50, 50)
	s.Submit(blocker)
	g1 := mkGangJob("ens-E", 60, 100, 100)
	g2 := mkGangJob("ens-E", 60, 100, 100) // 120 > 112 batch cores
	s.Submit(g1)
	s.Submit(g2)
	k.Run()
	if g1.StartTime != 50 {
		t.Errorf("first member start = %v, want 50", g1.StartTime)
	}
	if g2.StartTime != 150 {
		t.Errorf("second member start = %v, want 150 (serialized)", g2.StartTime)
	}
	for _, g := range []*job.Job{g1, g2} {
		if g.State != job.StateCompleted {
			t.Errorf("member %d state = %v", g.ID, g.State)
		}
	}
}
