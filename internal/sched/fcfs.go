package sched

func init() { RegisterEngine("fcfs", func() PolicyEngine { return &fcfsEngine{} }) }

// fcfsEngine runs the queue in strict first-come first-served order: the
// head either starts or blocks everything behind it.
type fcfsEngine struct {
	fifoQueue
}

func (e *fcfsEngine) Name() string { return "fcfs" }

func (e *fcfsEngine) Schedule(s *Scheduler) {
	p := s.buildProfile()
	for len(e.q) > 0 {
		head := e.q[0]
		if !s.startableNow(p, head) {
			return
		}
		e.q = e.q[1:]
		s.startBatch(head, "")
		p.subtract(s.K.Now(), s.K.Now()+head.ReqWalltime, head.Cores)
	}
}
