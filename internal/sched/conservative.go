package sched

func init() {
	RegisterEngine("conservative", func() PolicyEngine { return &conservativeEngine{} })
}

// conservativeEngine backfills with a reservation for every queued job:
// each job is planned into the profile in FIFO order, so nothing that
// starts now can delay anything queued ahead of it.
type conservativeEngine struct {
	fifoQueue
}

func (e *conservativeEngine) Name() string { return "conservative" }

func (e *conservativeEngine) Schedule(s *Scheduler) {
	now := s.K.Now()
	p := s.buildProfile()
	// Plan queued jobs in FIFO order; start the ones whose planned start
	// is now. Each plan is committed into the profile so later jobs cannot
	// delay earlier ones. Planning depth is capped: beyond the cap the
	// plan horizon is so distant that a deep job could not start now
	// anyway without jumping earlier jobs, so skipping the bookkeeping
	// preserves behavior while bounding reschedule cost under backlog.
	const maxPlan = 128
	var started []int
	for idx, j := range e.q {
		if idx >= maxPlan {
			break
		}
		at, ok := p.earliestFit(now, j.Cores, j.ReqWalltime)
		if !ok {
			continue
		}
		p.subtract(at, at+j.ReqWalltime, j.Cores)
		if at == now {
			started = append(started, idx)
		}
	}
	// Remove started jobs from the queue back-to-front to keep indexes valid.
	for i := len(started) - 1; i >= 0; i-- {
		idx := started[i]
		j := e.q[idx]
		e.q = append(e.q[:idx], e.q[idx+1:]...)
		s.startBatch(j, "")
	}
}
