package sched

import (
	"testing"
	"testing/quick"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/simrand"
)

var nextID job.ID

func mkJob(cores int, run, wall des.Time) *job.Job {
	nextID++
	return &job.Job{
		ID: nextID, Name: "t", User: "u", Project: "p",
		Cores: cores, RunTime: run, ReqWalltime: wall,
	}
}

func testMachine() *grid.Machine {
	return &grid.Machine{
		ID: "m", Site: "s", Nodes: 16, CoresPerNode: 8, // 128 cores
		GFlopsPerCore: 4, NUPerCoreHour: 1, UrgentCapable: true, VizNodes: 2,
	}
}

func newTestSched(p Policy) (*des.Kernel, *Scheduler) {
	k := des.New()
	return k, New(k, testMachine(), p)
}

func TestPolicyString(t *testing.T) {
	if FCFS.String() != "fcfs" || EASY.String() != "easy" || Conservative.String() != "conservative" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "policy(9)" {
		t.Error("unknown policy name wrong")
	}
}

func TestEventKindString(t *testing.T) {
	kinds := map[EventKind]string{
		EventQueued: "queued", EventStarted: "started", EventFinished: "finished",
		EventPreempted: "preempted", EventRejected: "rejected", EventKind(9): "event(9)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("EventKind %d = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestFCFSRunsInOrder(t *testing.T) {
	k, s := newTestSched(FCFS)
	var order []job.ID
	s.Subscribe(func(e Event) {
		if e.Kind == EventStarted {
			order = append(order, e.Job.ID)
		}
	})
	// Machine has 112 batch cores (14 nodes * 8). Submit 3 jobs of 60
	// cores: only one can run at a time.
	j1 := mkJob(60, 100, 100)
	j2 := mkJob(60, 100, 100)
	j3 := mkJob(60, 100, 100)
	s.Submit(j1)
	s.Submit(j2)
	s.Submit(j3)
	k.Run()
	if len(order) != 3 || order[0] != j1.ID || order[1] != j2.ID || order[2] != j3.ID {
		t.Fatalf("start order = %v", order)
	}
	if j2.StartTime != 100 || j3.StartTime != 200 {
		t.Errorf("start times = %v, %v; want 100, 200", j2.StartTime, j3.StartTime)
	}
	for _, j := range []*job.Job{j1, j2, j3} {
		if j.State != job.StateCompleted {
			t.Errorf("%v not completed", j)
		}
	}
}

func TestFCFSHeadOfLineBlocks(t *testing.T) {
	k, s := newTestSched(FCFS)
	big := mkJob(112, 100, 100)
	blocked := mkJob(100, 10, 10)
	tiny := mkJob(1, 10, 10)
	s.Submit(big)
	s.Submit(blocked)
	s.Submit(tiny) // would fit alongside big, but FCFS must not backfill
	k.Run()
	if tiny.StartTime < 100 {
		t.Errorf("FCFS backfilled: tiny started at %v", tiny.StartTime)
	}
}

func TestEASYBackfills(t *testing.T) {
	k, s := newTestSched(EASY)
	big := mkJob(112, 100, 100)  // occupies whole batch partition until 100
	waiter := mkJob(112, 50, 50) // head of queue, reserved at t=100
	filler := mkJob(8, 90, 90)   // fits before the reservation? no cores free
	s.Submit(big)
	s.Submit(waiter)
	s.Submit(filler)
	k.Run()
	// filler cannot run before 100 (no free cores at all), and after big
	// ends the waiter's reservation at t=100 takes the whole machine, so
	// filler runs after waiter.
	if waiter.StartTime != 100 {
		t.Errorf("waiter start = %v, want 100", waiter.StartTime)
	}
	if filler.StartTime != 150 {
		t.Errorf("filler start = %v, want 150", filler.StartTime)
	}
}

func TestEASYBackfillUsesHoles(t *testing.T) {
	k, s := newTestSched(EASY)
	// 112 batch cores. big leaves 12 free until t=100.
	big := mkJob(100, 100, 100)
	head := mkJob(112, 100, 100) // must wait for whole machine at t=100
	shortSmall := mkJob(12, 50, 50)
	longSmall := mkJob(12, 200, 200)
	s.Submit(big)
	s.Submit(head)
	s.Submit(shortSmall) // fits in the hole and ends by 100 → backfilled
	s.Submit(longSmall)  // would run past head's reservation → not backfilled
	k.Run()
	if shortSmall.StartTime != 0 {
		t.Errorf("short small job start = %v, want 0 (backfilled)", shortSmall.StartTime)
	}
	if head.StartTime != 100 {
		t.Errorf("head start = %v, want exactly its reservation at 100", head.StartTime)
	}
	if longSmall.StartTime < 100 {
		t.Errorf("long small job start = %v; backfill delayed the head", longSmall.StartTime)
	}
}

func TestConservativeDoesNotDelayAnyEarlier(t *testing.T) {
	k, s := newTestSched(Conservative)
	// Construct: j1 uses all cores [0,100). j2 (head of queue) wants all
	// cores → planned [100,200). j3 wants 12 cores for 150 → planned at
	// 200 under conservative (would overlap j2's plan otherwise).
	j1 := mkJob(112, 100, 100)
	j2 := mkJob(112, 100, 100)
	j3 := mkJob(12, 150, 150)
	s.Submit(j1)
	s.Submit(j2)
	s.Submit(j3)
	k.Run()
	if j2.StartTime != 100 {
		t.Errorf("j2 start = %v, want 100", j2.StartTime)
	}
	if j3.StartTime != 200 {
		t.Errorf("j3 start = %v, want 200 (no overlap with j2 plan)", j3.StartTime)
	}
}

func TestConservativeBackfillsWhenHarmless(t *testing.T) {
	k, s := newTestSched(Conservative)
	j1 := mkJob(100, 100, 100) // leaves 12 cores idle
	j2 := mkJob(112, 100, 100) // planned at 100
	j3 := mkJob(12, 80, 80)    // fits in [0,80) without delaying j2
	s.Submit(j1)
	s.Submit(j2)
	s.Submit(j3)
	k.Run()
	if j3.StartTime != 0 {
		t.Errorf("harmless backfill start = %v, want 0", j3.StartTime)
	}
	if j2.StartTime != 100 {
		t.Errorf("j2 start = %v, want 100", j2.StartTime)
	}
}

func TestWalltimeKill(t *testing.T) {
	k, s := newTestSched(EASY)
	j := mkJob(8, 500, 100) // needs 500s but only requested 100
	s.Submit(j)
	k.Run()
	if j.State != job.StateKilled {
		t.Errorf("state = %v, want killed", j.State)
	}
	if j.EndTime != 100 {
		t.Errorf("killed at %v, want 100", j.EndTime)
	}
}

func TestRejectOversize(t *testing.T) {
	k, s := newTestSched(EASY)
	var rejected []*job.Job
	s.Subscribe(func(e Event) {
		if e.Kind == EventRejected {
			rejected = append(rejected, e.Job)
		}
	})
	j := mkJob(10000, 10, 10)
	s.Submit(j)
	k.Run()
	if j.State != job.StateFailed || len(rejected) != 1 {
		t.Errorf("oversize job not rejected: state=%v", j.State)
	}
}

func TestUrgentPreempts(t *testing.T) {
	k, s := newTestSched(EASY)
	victim := mkJob(112, 1000, 1000)
	s.Submit(victim)
	urgent := mkJob(50, 100, 100)
	urgent.QOS = job.QOSUrgent
	k.Schedule(10, func(*des.Kernel) { s.Submit(urgent) })
	k.Run()
	if urgent.StartTime != 10 {
		t.Errorf("urgent start = %v, want 10 (immediate)", urgent.StartTime)
	}
	if victim.Preemptions != 1 {
		t.Errorf("victim preemptions = %d, want 1", victim.Preemptions)
	}
	if victim.State != job.StateCompleted {
		t.Errorf("victim final state = %v, want completed after restart", victim.State)
	}
	// Victim restarted after urgent finished: 10 (preempt) → urgent runs
	// [10,110) → victim restarts at 110 and runs 1000 → ends 1110.
	if victim.EndTime != 1110 {
		t.Errorf("victim end = %v, want 1110", victim.EndTime)
	}
	if got := s.Stats().Preemptions; got != 1 {
		t.Errorf("scheduler preemption count = %d, want 1", got)
	}
}

func TestUrgentPrefersFreeCores(t *testing.T) {
	k, s := newTestSched(EASY)
	small := mkJob(10, 1000, 1000)
	s.Submit(small)
	urgent := mkJob(50, 10, 10)
	urgent.QOS = job.QOSUrgent
	k.Schedule(5, func(*des.Kernel) { s.Submit(urgent) })
	k.Run()
	if small.Preemptions != 0 {
		t.Error("urgent preempted although free cores sufficed")
	}
	if urgent.StartTime != 5 {
		t.Errorf("urgent start = %v, want 5", urgent.StartTime)
	}
}

func TestUrgentOnNonCapableMachineRejected(t *testing.T) {
	k := des.New()
	m := testMachine()
	m.UrgentCapable = false
	s := New(k, m, EASY)
	u := mkJob(8, 10, 10)
	u.QOS = job.QOSUrgent
	s.Submit(u)
	k.Run()
	if u.State != job.StateFailed {
		t.Errorf("urgent on non-capable machine: state = %v, want failed", u.State)
	}
}

func TestInteractivePartition(t *testing.T) {
	k, s := newTestSched(EASY) // 2 viz nodes = 16 cores
	batch := mkJob(112, 1000, 1000)
	s.Submit(batch) // batch partition fully busy
	viz := mkJob(8, 60, 120)
	viz.QOS = job.QOSInteractive
	k.Schedule(1, func(*des.Kernel) { s.Submit(viz) })
	k.Run()
	if viz.StartTime != 1 {
		t.Errorf("viz session start = %v, want 1 (own partition)", viz.StartTime)
	}
	if viz.State != job.StateCompleted {
		t.Errorf("viz state = %v", viz.State)
	}
}

func TestInteractiveQueuesWhenVizFull(t *testing.T) {
	k, s := newTestSched(EASY)
	v1 := mkJob(16, 100, 100)
	v1.QOS = job.QOSInteractive
	v2 := mkJob(8, 50, 50)
	v2.QOS = job.QOSInteractive
	s.Submit(v1)
	s.Submit(v2)
	k.Run()
	if v2.StartTime != 100 {
		t.Errorf("second viz session start = %v, want 100", v2.StartTime)
	}
}

func TestReservationBlocksBackfillAndRuns(t *testing.T) {
	k, s := newTestSched(EASY)
	if err := s.Reserve("co-1", 112, 100, 200); err != nil {
		t.Fatal(err)
	}
	// A job that would run into the reservation must not start.
	long := mkJob(8, 150, 150)
	s.Submit(long)
	claimed := mkJob(112, 50, 100)
	if err := s.ClaimReservation("co-1", claimed); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if claimed.StartTime != 100 {
		t.Errorf("claimed job start = %v, want reservation start 100", claimed.StartTime)
	}
	// Before t=100 the reservation blocks the 150s job; after activation
	// the claim holds every core until it finishes at 150.
	if long.StartTime != 150 {
		t.Errorf("long job start = %v, want 150 (after the claimed job ends)", long.StartTime)
	}
}

func TestReservationErrors(t *testing.T) {
	k, s := newTestSched(EASY)
	if err := s.Reserve("r1", 112, 10, 20); err != nil {
		t.Fatal(err)
	}
	if err := s.Reserve("r1", 1, 30, 40); err == nil {
		t.Error("duplicate reservation id accepted")
	}
	if err := s.Reserve("r2", 112, 15, 25); err == nil {
		t.Error("overlapping full-machine reservation accepted")
	}
	if err := s.Reserve("r3", 0, 30, 40); err == nil {
		t.Error("zero-core reservation accepted")
	}
	if err := s.Reserve("r4", 8, 50, 50); err == nil {
		t.Error("empty-window reservation accepted")
	}
	if err := s.ClaimReservation("nope", mkJob(1, 1, 1)); err == nil {
		t.Error("claim of unknown reservation accepted")
	}
	big := mkJob(113, 1, 1)
	if err := s.ClaimReservation("r1", big); err == nil {
		t.Error("claim larger than reservation accepted")
	}
	ok := mkJob(8, 5, 5)
	if err := s.ClaimReservation("r1", ok); err != nil {
		t.Fatal(err)
	}
	if err := s.ClaimReservation("r1", mkJob(1, 1, 1)); err == nil {
		t.Error("double claim accepted")
	}
	k.Run()
	if ok.State != job.StateCompleted {
		t.Errorf("claimed job state = %v", ok.State)
	}
}

func TestCancelReservation(t *testing.T) {
	k, s := newTestSched(EASY)
	if err := s.Reserve("r1", 112, 100, 200); err != nil {
		t.Fatal(err)
	}
	long := mkJob(8, 150, 150)
	s.Submit(long)
	if !s.CancelReservation("r1") {
		t.Fatal("cancel failed")
	}
	if s.CancelReservation("r1") {
		t.Fatal("double cancel succeeded")
	}
	k.Run()
	if long.StartTime != 0 {
		t.Errorf("job start = %v after cancel, want 0", long.StartTime)
	}
}

func TestEstimateStart(t *testing.T) {
	k, s := newTestSched(EASY)
	s.Submit(mkJob(112, 100, 100))
	s.Submit(mkJob(112, 100, 100))
	// Estimate for a full-machine job: after both queued jobs → 200.
	at, ok := s.EstimateStart(112, 50)
	if !ok || at != 200 {
		t.Errorf("EstimateStart = %v,%v, want 200,true", at, ok)
	}
	if _, ok := s.EstimateStart(0, 10); ok {
		t.Error("EstimateStart accepted zero cores")
	}
	if _, ok := s.EstimateStart(100000, 10); ok {
		t.Error("EstimateStart accepted impossible cores")
	}
	k.Run()
}

func TestUtilization(t *testing.T) {
	k, s := newTestSched(EASY)
	s.Submit(mkJob(56, 100, 100)) // half the batch partition for 100s
	k.Run()
	k.RunUntil(200) // idle for another 100s
	got := s.Utilization()
	if got < 0.24 || got > 0.26 {
		t.Errorf("Utilization = %v, want 0.25", got)
	}
}

func TestSubmitInvalidPanics(t *testing.T) {
	_, s := newTestSched(EASY)
	defer func() {
		if recover() == nil {
			t.Error("invalid job submission did not panic")
		}
	}()
	s.Submit(&job.Job{})
}

// TestNoOvercommitProperty drives random workloads through every policy and
// checks the fundamental invariants: cores are never overcommitted, every
// job eventually reaches a terminal state, and started+queue counts add up.
func TestNoOvercommitProperty(t *testing.T) {
	for _, pol := range []Policy{FCFS, EASY, Conservative} {
		pol := pol
		f := func(seed uint64) bool {
			r := simrand.New(seed)
			k := des.New()
			s := New(k, testMachine(), pol)
			minFree := 0
			s.Subscribe(func(e Event) {
				if s.FreeBatchCores() < minFree {
					minFree = s.FreeBatchCores()
				}
			})
			n := 50 + r.Intn(100)
			jobs := make([]*job.Job, 0, n)
			for i := 0; i < n; i++ {
				j := mkJob(1+r.Intn(112), des.Time(1+r.Intn(500)), 0)
				j.ReqWalltime = j.RunTime + des.Time(r.Intn(100))
				if r.Bool(0.05) {
					j.ReqWalltime = j.RunTime / 2 // will be walltime-killed
					if j.ReqWalltime <= 0 {
						j.ReqWalltime = 1
					}
				}
				if r.Bool(0.1) {
					j.QOS = job.QOSUrgent
				}
				jobs = append(jobs, j)
				at := des.Time(r.Intn(2000))
				k.At(at, func(*des.Kernel) { s.Submit(j) })
			}
			k.Run()
			if minFree < 0 {
				t.Fatalf("policy %v: batch cores overcommitted (%d)", pol, minFree)
			}
			for _, j := range jobs {
				if !j.State.Terminal() {
					t.Fatalf("policy %v: job %d stuck in state %v", pol, j.ID, j.State)
				}
			}
			return s.FreeBatchCores() == s.M.BatchCores() && s.QueueLen() == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
			t.Errorf("policy %v: %v", pol, err)
		}
	}
}

// TestBackfillNeverDelaysHead verifies the EASY guarantee: the head job's
// start is never later than the shadow time computed when it reached the
// head of the queue.
func TestBackfillNeverDelaysHead(t *testing.T) {
	f := func(seed uint64) bool {
		r := simrand.New(seed)
		k := des.New()
		s := New(k, testMachine(), EASY)
		// Fill the machine, then submit a known head job and random filler.
		base := mkJob(112, 100, 100)
		s.Submit(base)
		head := mkJob(112, 50, 50)
		s.Submit(head)
		// Shadow: head must start at exactly t=100.
		for i := 0; i < 30; i++ {
			j := mkJob(1+r.Intn(56), des.Time(1+r.Intn(400)), 0)
			j.ReqWalltime = j.RunTime
			k.At(des.Time(r.Intn(90)), func(*des.Kernel) { s.Submit(j) })
		}
		k.Run()
		return head.StartTime == 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
