package sched

import (
	"testing"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
)

func TestOutageDrainsBeforeWindow(t *testing.T) {
	k, s := newTestSched(EASY)
	if err := s.ScheduleOutage(100, 200); err != nil {
		t.Fatal(err)
	}
	// A job that would cross into the window must wait until it ends.
	crosses := mkJob(8, 150, 150)
	s.Submit(crosses)
	// A job that finishes before the window starts immediately.
	fits := mkJob(8, 50, 50)
	s.Submit(fits)
	k.Run()
	if fits.StartTime != 0 {
		t.Errorf("short job start = %v, want 0 (fits before outage)", fits.StartTime)
	}
	if crosses.StartTime != 200 {
		t.Errorf("crossing job start = %v, want 200 (after outage)", crosses.StartTime)
	}
}

func TestOutagePreemptsStragglers(t *testing.T) {
	k, s := newTestSched(EASY)
	long := mkJob(8, 500, 500)
	s.Submit(long) // starts at 0, would run to 500
	// Outage announced at t=50 for [100,200): the running job is a
	// straggler and is preempted at 100, restarting at 200.
	k.Schedule(50, func(*des.Kernel) {
		if err := s.ScheduleOutage(100, 200); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if long.Preemptions != 1 {
		t.Errorf("straggler preemptions = %d, want 1", long.Preemptions)
	}
	if long.StartTime != 200 {
		t.Errorf("restart at %v, want 200", long.StartTime)
	}
	if long.State != job.StateCompleted || long.EndTime != 700 {
		t.Errorf("final state %v end %v, want completed at 700", long.State, long.EndTime)
	}
}

func TestOutageValidation(t *testing.T) {
	k, s := newTestSched(EASY)
	k.RunUntil(50)
	if err := s.ScheduleOutage(10, 20); err == nil {
		t.Error("outage in the past accepted")
	}
	if err := s.ScheduleOutage(100, 100); err == nil {
		t.Error("empty outage window accepted")
	}
}

func TestOutageDoesNotBlockViz(t *testing.T) {
	k, s := newTestSched(EASY)
	if err := s.ScheduleOutage(10, 1000); err != nil {
		t.Fatal(err)
	}
	viz := mkJob(8, 60, 120)
	viz.QOS = job.QOSInteractive
	k.Schedule(20, func(*des.Kernel) { s.Submit(viz) })
	k.Run()
	if viz.StartTime != 20 {
		t.Errorf("viz session start = %v, want 20 (outage must not block viz)", viz.StartTime)
	}
}

func TestEstimateStartSeesOutage(t *testing.T) {
	_, s := newTestSched(EASY)
	if err := s.ScheduleOutage(100, 5000); err != nil {
		t.Fatal(err)
	}
	at, ok := s.EstimateStart(8, 200)
	if !ok || at != 5000 {
		t.Errorf("EstimateStart = %v,%v, want 5000,true", at, ok)
	}
}

func TestBackToBackOutages(t *testing.T) {
	k, s := newTestSched(EASY)
	if err := s.ScheduleOutage(100, 200); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleOutage(300, 400); err != nil {
		t.Fatal(err)
	}
	j := mkJob(8, 150, 150)
	k.Schedule(50, func(*des.Kernel) { s.Submit(j) })
	k.Run()
	// [200,300) gap is only 100 long; the 150s job must wait until 400.
	if j.StartTime != 400 {
		t.Errorf("job start = %v, want 400 (gap too short)", j.StartTime)
	}
}

func TestCheckpointRestartPreemption(t *testing.T) {
	k, s := newTestSched(EASY)
	s.CheckpointRestart = true
	s.CheckpointInterval = 100
	victim := mkJob(112, 1000, 2000)
	s.Submit(victim) // starts at 0
	urgent := mkJob(112, 100, 100)
	urgent.QOS = job.QOSUrgent
	// Preempt at t=450: 4 checkpoint intervals (400s) are safe; 50s lost.
	k.Schedule(450, func(*des.Kernel) { s.Submit(urgent) })
	k.Run()
	// Victim resumes at 550 with 600s remaining → ends at 1150.
	if victim.EndTime != 1150 {
		t.Errorf("victim end = %v, want 1150 (checkpointed restart)", victim.EndTime)
	}
	if victim.State != job.StateCompleted || victim.Preemptions != 1 {
		t.Errorf("victim state=%v preemptions=%d", victim.State, victim.Preemptions)
	}
}

func TestRestartFromScratchByDefault(t *testing.T) {
	k, s := newTestSched(EASY)
	victim := mkJob(112, 1000, 2000)
	s.Submit(victim)
	urgent := mkJob(112, 100, 100)
	urgent.QOS = job.QOSUrgent
	k.Schedule(450, func(*des.Kernel) { s.Submit(urgent) })
	k.Run()
	// Without checkpointing: resumes at 550, full 1000s again → ends 1550.
	if victim.EndTime != 1550 {
		t.Errorf("victim end = %v, want 1550 (full restart)", victim.EndTime)
	}
}
