package sched

import (
	"testing"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
)

// The test machine has (16-2)*8 = 112 batch cores.

func TestCrashKillsRunningAndBlocksRestarts(t *testing.T) {
	k, s := newTestSched(FCFS)
	j := mkJob(64, 500, 1000)
	s.Submit(j)

	var victims []*job.Job
	k.AtNamed(100, "test-crash", func(*des.Kernel) {
		victims = s.Crash(600)
		for _, v := range victims {
			s.Requeue(v)
		}
	})
	if err := k.RunUntil(des.Forever); err != nil {
		t.Fatal(err)
	}

	if len(victims) != 1 || victims[0] != j {
		t.Fatalf("victims = %v, want the running job", victims)
	}
	if st := s.Stats(); st.Crashes != 1 || st.CrashKills != 1 {
		t.Errorf("crash counters = %d/%d, want 1/1", st.Crashes, st.CrashKills)
	}
	// 100 s of execution on 64 cores was lost (no checkpointing).
	if got := j.WastedCoreSeconds; got != 100*64 {
		t.Errorf("WastedCoreSeconds = %v, want %v", got, 100*64)
	}
	// The requeued job cannot restart before repair at 600; it then runs
	// its full 500 s from scratch.
	if j.State != job.StateCompleted {
		t.Fatalf("job state = %v, want completed", j.State)
	}
	if j.StartTime != 600 || j.EndTime != 1100 {
		t.Errorf("restarted [%v,%v], want [600,1100]", j.StartTime, j.EndTime)
	}
}

// Satellite regression: a crash landing inside an already-scheduled
// maintenance window must merge with it — one window, one outage-end, no
// double-released cores — instead of stacking an independent window.
func TestCrashInsideMaintenanceWindowMerges(t *testing.T) {
	k, s := newTestSched(FCFS)
	if err := s.ScheduleOutage(200, 400); err != nil {
		t.Fatal(err)
	}
	j := mkJob(112, 50, 100)
	var begins, ends int
	s.Probe = func(kind string, _ *job.Job) {
		switch kind {
		case ProbeOutageBegin:
			begins++
		case ProbeOutageEnd:
			ends++
		}
	}

	// Crash at 250, mid-maintenance, with repair at 300 — still inside the
	// window. The window must absorb it entirely.
	k.AtNamed(250, "test-crash", func(*des.Kernel) {
		if got := s.Crash(300); len(got) != 0 {
			t.Errorf("victims during maintenance = %d, want 0 (machine was drained)", len(got))
		}
		if len(s.outages) != 1 {
			t.Errorf("outage windows after contained crash = %d, want 1", len(s.outages))
		}
	})
	// Submit work mid-outage; it must wait for the (single) window to end.
	k.AtNamed(260, "test-submit", func(*des.Kernel) { s.Submit(j) })
	if err := k.RunUntil(des.Forever); err != nil {
		t.Fatal(err)
	}

	if j.StartTime != 400 {
		t.Errorf("job started at %v, want 400 (maintenance end)", j.StartTime)
	}
	if begins != 1 || ends != 1 {
		t.Errorf("outage begin/end probes = %d/%d, want 1/1", begins, ends)
	}
}

func TestCrashExtendingMaintenanceWindow(t *testing.T) {
	k, s := newTestSched(FCFS)
	if err := s.ScheduleOutage(200, 400); err != nil {
		t.Fatal(err)
	}
	j := mkJob(112, 50, 100)
	var ends int
	s.Probe = func(kind string, _ *job.Job) {
		if kind == ProbeOutageEnd {
			ends++
		}
	}

	// Crash at 250 whose repair outlasts the maintenance window: the two
	// merge into [200, 500) and the old end at 400 must NOT release cores.
	k.AtNamed(250, "test-crash", func(*des.Kernel) {
		s.Crash(500)
		if len(s.outages) != 1 {
			t.Errorf("outage windows after merge = %d, want 1", len(s.outages))
		}
	})
	k.AtNamed(260, "test-submit", func(*des.Kernel) { s.Submit(j) })
	if err := k.RunUntil(des.Forever); err != nil {
		t.Fatal(err)
	}

	if j.StartTime != 500 {
		t.Errorf("job started at %v, want 500 (merged window end, not 400)", j.StartTime)
	}
	if ends != 1 {
		t.Errorf("outage-end probes = %d, want 1 (absorbed window must not fire)", ends)
	}
}

func TestOverlappingMaintenanceWindowsMerge(t *testing.T) {
	k, s := newTestSched(FCFS)
	if err := s.ScheduleOutage(100, 300); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleOutage(200, 450); err != nil {
		t.Fatal(err)
	}
	if len(s.outages) != 1 {
		t.Fatalf("overlapping windows not merged: %d windows", len(s.outages))
	}
	var begins, ends int
	s.Probe = func(kind string, _ *job.Job) {
		switch kind {
		case ProbeOutageBegin:
			begins++
		case ProbeOutageEnd:
			ends++
		}
	}
	j := mkJob(112, 50, 100)
	k.AtNamed(150, "test-submit", func(*des.Kernel) { s.Submit(j) })
	if err := k.RunUntil(des.Forever); err != nil {
		t.Fatal(err)
	}
	if j.StartTime != 450 {
		t.Errorf("job started at %v, want 450 (union end)", j.StartTime)
	}
	if begins != 1 || ends != 1 {
		t.Errorf("begin/end probes = %d/%d, want 1/1", begins, ends)
	}
}

func TestNodeFailureShrinksCapacityAndKills(t *testing.T) {
	k, s := newTestSched(FCFS)
	a := mkJob(60, 1000, 2000)
	b := mkJob(52, 1000, 2000)
	s.Submit(a)
	s.Submit(b) // machine full: 112/112 busy

	k.AtNamed(100, "test-nodefail", func(*des.Kernel) {
		victims := s.FailNodes(50, 600)
		// Survivors must fit 112-50 = 62 cores: the most recently started
		// job (b, by ID tie-break) dies; a (60 cores) survives.
		if len(victims) != 1 || victims[0] != b {
			t.Fatalf("victims = %v, want job b", victims)
		}
	})
	if err := k.RunUntil(des.Forever); err != nil {
		t.Fatal(err)
	}

	if st := s.Stats(); st.NodeFailures != 1 || st.NodeKills != 1 {
		t.Errorf("node-failure counters = %d/%d, want 1/1", st.NodeFailures, st.NodeKills)
	}
	if a.State != job.StateCompleted || a.EndTime != 1000 {
		t.Errorf("survivor a ended %v in state %v, want 1000/completed", a.EndTime, a.State)
	}
	if b.WastedCoreSeconds != 100*52 {
		t.Errorf("b wasted = %v, want %v", b.WastedCoreSeconds, 100*52)
	}
	// b (52 cores) cannot restart while only 62-60 = 2 cores survive; the
	// nodes return at 600 and it restarts then.
	if b.StartTime != 600 || b.EndTime != 1600 {
		t.Errorf("b restarted [%v,%v], want [600,1600]", b.StartTime, b.EndTime)
	}
}

func TestCrashCheckpointCreditAndWaste(t *testing.T) {
	k, s := newTestSched(FCFS)
	s.CheckpointRestart = true
	s.CheckpointInterval = 100
	j := mkJob(64, 1000, 2000)
	s.Submit(j)

	k.AtNamed(450, "test-crash", func(*des.Kernel) {
		for _, v := range s.Crash(500) {
			s.Requeue(v)
		}
	})
	if err := k.RunUntil(des.Forever); err != nil {
		t.Fatal(err)
	}

	// 4 completed checkpoint intervals at crash time: 400 s credited, 50 s
	// of execution on 64 cores lost.
	if j.WastedCoreSeconds != 50*64 {
		t.Errorf("wasted = %v, want %v", j.WastedCoreSeconds, 50*64)
	}
	// Restart at repair (500) with 600 s of work left.
	if j.StartTime != 500 || j.EndTime != 1100 {
		t.Errorf("restart window [%v,%v], want [500,1100]", j.StartTime, j.EndTime)
	}
}

func TestCheckpointOverheadDilatesRuns(t *testing.T) {
	k, s := newTestSched(FCFS)
	s.CheckpointRestart = true
	s.CheckpointInterval = 100
	s.CheckpointOverhead = 10
	j := mkJob(8, 500, 2000)
	s.Submit(j)
	if err := k.RunUntil(des.Forever); err != nil {
		t.Fatal(err)
	}
	// 5 completed intervals cost 10 s each on top of the 500 s of work.
	if j.EndTime != 550 {
		t.Errorf("job ended at %v, want 550", j.EndTime)
	}
	if j.State != job.StateCompleted {
		t.Errorf("state = %v, want completed", j.State)
	}
}

func TestProfileDeductFloorsAtZero(t *testing.T) {
	p := newProfile(0, 100)
	p.deduct(10, 20, 80)
	p.deduct(15, 25, 80) // overlaps: would go negative under subtract
	if got := p.minFree(15, 20); got != 0 {
		t.Errorf("minFree over double-deducted window = %d, want 0", got)
	}
	if got := p.freeAt(22); got != 20 {
		t.Errorf("freeAt(22) = %d, want 20", got)
	}
	if got := p.freeAt(30); got != 100 {
		t.Errorf("freeAt(30) = %d, want 100", got)
	}
}
