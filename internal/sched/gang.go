package sched

import "github.com/tgsim/tgmod/internal/job"

func init() { RegisterEngine("gang", func() PolicyEngine { return &gangEngine{} }) }

// gangEngine starts campaigns all-or-nothing, after kube-batch's gang
// scheduling: jobs sharing a co-allocation, ensemble, or workflow tag form
// a gang, and no member starts until every queued member can start
// together. While the head gang assembles, members that individually fit
// receive holds — capacity claims that block backfill from stealing the
// cores kube-batch-style — so assembly always makes progress as running
// work drains. Later gangs (and untagged singletons) backfill as whole
// units into whatever the holds leave free.
//
// Disruption semantics: a crash, node failure, or opening maintenance
// window voids every hold atomically (see PolicyEngine.Disrupted). Holds
// are planning constructs, not core allocations, so releasing them never
// frees partition state; the next pass re-derives them from whatever
// members remain queued. Requeued members re-enter next to their gang
// peers, keeping the campaign contiguous for reassembly.
type gangEngine struct {
	fifoQueue
	// asmKey tags the gang currently assembling at the head ("" = none);
	// held marks its members holding capacity claims.
	asmKey string
	held   map[job.ID]bool
	stats  EngineStats
}

func (e *gangEngine) Name() string { return "gang" }

func (e *gangEngine) EngineStats() EngineStats { return e.stats }

// gangKey returns the campaign tag jobs gang on: explicit co-allocation
// first, then ensemble, then workflow. Untagged jobs are singletons.
func gangKey(j *job.Job) string {
	if j.Attr.CoAllocID != "" {
		return j.Attr.CoAllocID
	}
	if j.Attr.EnsembleID != "" {
		return j.Attr.EnsembleID
	}
	return j.Attr.WorkflowID
}

// PushFront re-inserts a requeued job next to its queued gang peers when it
// has any (campaign-aware requeue: the gang stays contiguous and reassembles
// at its queue position), and at the true front otherwise.
func (e *gangEngine) PushFront(j *job.Job) {
	if key := gangKey(j); key != "" {
		for i, q := range e.q {
			if gangKey(q) == key {
				e.q = append(e.q[:i], append([]*job.Job{j}, e.q[i:]...)...)
				return
			}
		}
	}
	e.q = append([]*job.Job{j}, e.q...)
}

// Disrupted releases every assembly hold atomically: after a crash or
// outage the machine the holds were sized for no longer exists, and a
// surviving partial hold would pin cores for a gang the disruption broke
// up (or panic planning against an outage-blanked profile).
func (e *gangEngine) Disrupted(*Scheduler) {
	e.asmKey = ""
	e.held = nil
}

// gangs groups the queue into gangs ordered by each gang's earliest queued
// member, preserving member queue order within each gang.
func (e *gangEngine) gangs() [][]*job.Job {
	var out [][]*job.Job
	idx := make(map[string]int)
	for _, j := range e.q {
		k := gangKey(j)
		if k == "" {
			out = append(out, []*job.Job{j})
			continue
		}
		if i, ok := idx[k]; ok {
			out[i] = append(out[i], j)
			continue
		}
		idx[k] = len(out)
		out = append(out, []*job.Job{j})
	}
	return out
}

// gangCores sums a gang's core request.
func gangCores(g []*job.Job) int {
	total := 0
	for _, j := range g {
		total += j.Cores
	}
	return total
}

// fitsTogether reports whether every member of g can start now
// simultaneously under p (checked against a scratch copy).
func (e *gangEngine) fitsTogether(s *Scheduler, p *profile, g []*job.Job) bool {
	now := s.K.Now()
	scratch := p.clone()
	for _, j := range g {
		if !s.startableNow(scratch, j) {
			return false
		}
		scratch.subtract(now, now+j.ReqWalltime, j.Cores)
	}
	return true
}

// startGang launches every member of g and commits their rectangles to p.
// backfilled marks starts ahead of the head gang.
func (e *gangEngine) startGang(s *Scheduler, p *profile, g []*job.Job, backfilled bool) {
	now := s.K.Now()
	if len(g) > 1 {
		e.stats.GangStarts++
		s.probe(ProbeGangStart, g[0])
	}
	for _, j := range g {
		e.remove(j)
		if backfilled {
			s.probe(ProbeBackfill, j)
		}
		s.startBatch(j, "")
		p.subtract(now, now+j.ReqWalltime, j.Cores)
	}
}

// remove drops one job from the queue.
func (e *gangEngine) remove(j *job.Job) {
	for i, q := range e.q {
		if q == j {
			e.q = append(e.q[:i], e.q[i+1:]...)
			return
		}
	}
}

func (e *gangEngine) Schedule(s *Scheduler) {
	now := s.K.Now()
	p := s.buildProfile()
	// Launch whole gangs from the front while they fit together.
	for {
		gangs := e.gangs()
		if len(gangs) == 0 {
			e.asmKey, e.held = "", nil
			return
		}
		head := gangs[0]
		if gangCores(head) > s.M.BatchCores() {
			// A gang that can never co-start (bigger than the machine)
			// degenerates to FCFS over its members: start the prefix that
			// fits, block on the rest.
			started := false
			for _, j := range head {
				if !s.startableNow(p, j) {
					break
				}
				e.remove(j)
				s.startBatch(j, "")
				p.subtract(now, now+j.ReqWalltime, j.Cores)
				started = true
			}
			if started {
				continue
			}
			e.holdAndBackfill(s, p, e.gangs())
			return
		}
		if !e.fitsTogether(s, p, head) {
			e.holdAndBackfill(s, p, gangs)
			return
		}
		e.startGang(s, p, head, false)
		e.asmKey, e.held = "", nil
	}
}

// holdAndBackfill handles a blocked head gang: refresh its assembly holds,
// deduct them from the working profile, then backfill later whole gangs
// into what remains.
func (e *gangEngine) holdAndBackfill(s *Scheduler, p *profile, gangs [][]*job.Job) {
	now := s.K.Now()
	head := gangs[0]
	key := gangKey(head[0])
	if key != e.asmKey {
		// A different gang reached the head: prior holds are void.
		e.asmKey, e.held = key, nil
	}
	if key != "" && gangCores(head) <= s.M.BatchCores() {
		if e.held == nil {
			e.held = make(map[job.ID]bool)
		}
		// Existing holds claim their rectangles first; then new holds are
		// granted against what remains, so concurrent members never hold
		// the same cores twice. deduct, not subtract: urgent starts and
		// reservation claims bypass the engine, so a held core may have
		// been legitimately taken.
		for _, j := range head {
			if e.held[j.ID] {
				p.deduct(now, now+j.ReqWalltime, j.Cores)
			}
		}
		for _, j := range head {
			if !e.held[j.ID] && s.startableNow(p, j) {
				e.held[j.ID] = true
				e.stats.GangHolds++
				s.probe(ProbeGangHold, j)
				p.deduct(now, now+j.ReqWalltime, j.Cores)
			}
		}
	}
	// Shadow-plan the unheld head members: each gets its earliest feasible
	// slot committed into the working profile (EASY's shadow, per member),
	// so backfill below cannot push the gang's assembly into the future.
	for _, j := range head {
		if !e.held[j.ID] {
			if at, ok := p.earliestFit(now, j.Cores, j.ReqWalltime); ok {
				p.subtract(at, at+j.ReqWalltime, j.Cores)
			}
		}
	}
	// Backfill later gangs, whole or not at all, bounded like EASY's scan.
	const maxGangScan = 256
	for i := 1; i < len(gangs) && i <= maxGangScan; i++ {
		if s.freeBatch == 0 {
			return
		}
		g := gangs[i]
		if gangCores(g) > s.freeBatch {
			continue
		}
		if e.fitsTogether(s, p, g) {
			e.startGang(s, p, g, true)
		}
	}
}
