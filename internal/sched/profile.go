package sched

import (
	"fmt"

	"github.com/tgsim/tgmod/internal/des"
)

// profile is a step function of free cores over future virtual time. It is
// the planning structure behind backfilling and advance reservations: the
// scheduler builds a profile from the guaranteed end times of running jobs
// (start + requested walltime; jobs are killed at the limit, so the
// guarantee is hard) and from committed reservations, then asks where a
// (cores, duration) rectangle first fits.
//
// The representation is a sorted slice of points; points[i].free holds from
// points[i].t (inclusive) until points[i+1].t (exclusive). The last point
// extends to infinity. Invariant: times strictly increase.
type profile struct {
	points []profilePoint
}

type profilePoint struct {
	t    des.Time
	free int
}

// newProfile returns a profile with free cores everywhere from time origin.
func newProfile(origin des.Time, free int) *profile {
	return &profile{points: []profilePoint{{t: origin, free: free}}}
}

// clone returns a deep copy, used for tentative planning.
func (p *profile) clone() *profile {
	cp := make([]profilePoint, len(p.points))
	copy(cp, p.points)
	return &profile{points: cp}
}

// splitAt ensures a point exists exactly at time t (within the profile's
// domain) and returns its index. Times before the origin are clamped.
func (p *profile) splitAt(t des.Time) int {
	if t <= p.points[0].t {
		return 0
	}
	// Binary search for the segment containing t.
	lo, hi := 0, len(p.points)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.points[mid].t <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if p.points[lo].t == t {
		return lo
	}
	p.points = append(p.points, profilePoint{})
	copy(p.points[lo+2:], p.points[lo+1:])
	p.points[lo+1] = profilePoint{t: t, free: p.points[lo].free}
	return lo + 1
}

// subtract removes cores from the interval [start, end). It panics if the
// subtraction would drive any segment negative — that is a planning bug.
func (p *profile) subtract(start, end des.Time, cores int) {
	if end <= start || cores <= 0 {
		return
	}
	i := p.splitAt(start)
	var j int
	if end == des.Forever {
		j = len(p.points)
	} else {
		j = p.splitAt(end)
	}
	for k := i; k < j; k++ {
		p.points[k].free -= cores
		if p.points[k].free < 0 {
			panic(fmt.Sprintf("sched: profile overcommitted at %v: %d cores short",
				p.points[k].t, -p.points[k].free))
		}
	}
}

// capTo limits free cores to at most limit over [start, end). Unlike
// subtract it never panics: it is used for maintenance outages, which
// override whatever was planned.
func (p *profile) capTo(start, end des.Time, limit int) {
	if end <= start {
		return
	}
	i := p.splitAt(start)
	var j int
	if end == des.Forever {
		j = len(p.points)
	} else {
		j = p.splitAt(end)
	}
	for k := i; k < j; k++ {
		if p.points[k].free > limit {
			p.points[k].free = limit
		}
	}
}

// deduct removes cores from [start, end) like subtract but floors each
// segment at zero instead of panicking. It models partial node failures:
// failed nodes may transiently overlap windows the profile already blanked
// (an outage, another loss), and losing already-unavailable capacity is not
// a planning bug.
func (p *profile) deduct(start, end des.Time, cores int) {
	if end <= start || cores <= 0 {
		return
	}
	i := p.splitAt(start)
	var j int
	if end == des.Forever {
		j = len(p.points)
	} else {
		j = p.splitAt(end)
	}
	for k := i; k < j; k++ {
		p.points[k].free -= cores
		if p.points[k].free < 0 {
			p.points[k].free = 0
		}
	}
}

// segmentIndex returns the index of the segment containing t (the last
// point with time ≤ t; 0 when t precedes the origin).
func (p *profile) segmentIndex(t des.Time) int {
	if t <= p.points[0].t {
		return 0
	}
	lo, hi := 0, len(p.points)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.points[mid].t <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// firstViolation returns the index of the first segment overlapping
// [start, end) whose free cores are below cores, or -1 when the rectangle
// fits. It scans only overlapping segments, starting from a binary search.
func (p *profile) firstViolation(start, end des.Time, cores int) int {
	for i := p.segmentIndex(start); i < len(p.points); i++ {
		if p.points[i].t >= end {
			break
		}
		if p.points[i].free < cores {
			return i
		}
	}
	return -1
}

// minFree returns the minimum free cores over [start, end).
func (p *profile) minFree(start, end des.Time) int {
	if end <= start {
		return p.freeAt(start)
	}
	min := int(^uint(0) >> 1)
	for i := p.segmentIndex(start); i < len(p.points); i++ {
		if p.points[i].t >= end {
			break
		}
		if p.points[i].free < min {
			min = p.points[i].free
		}
	}
	return min
}

// freeAt returns the free cores at time t.
func (p *profile) freeAt(t des.Time) int {
	return p.points[p.segmentIndex(t)].free
}

// earliestFit returns the earliest time ≥ from at which a (cores, duration)
// rectangle fits entirely within the profile. Candidate start times are the
// profile's step points (free cores only increase at job completions, so
// checking steps is sufficient); on a violation the candidate jumps past
// the violating segment, so the scan is near-linear in the number of
// segments. The search always terminates because the final segment extends
// to infinity; if cores never fit there the capacity is simply too small
// and the caller must reject the job beforehand.
func (p *profile) earliestFit(from des.Time, cores int, duration des.Time) (des.Time, bool) {
	if duration <= 0 {
		duration = 1
	}
	cand := from
	if cand < p.points[0].t {
		cand = p.points[0].t
	}
	for {
		v := p.firstViolation(cand, cand+duration, cores)
		if v < 0 {
			return cand, true
		}
		if v+1 >= len(p.points) {
			// The violating segment extends to infinity.
			return 0, false
		}
		cand = p.points[v+1].t
	}
}
