package faults

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/gateway"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/metasched"
	"github.com/tgsim/tgmod/internal/network"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/simrand"
)

func TestRetryPolicyDelays(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, Base: 10, MaxDelay: 45, Multiplier: 2}
	want := []des.Time{10, 20, 40, 45}
	for i, w := range want {
		d, ok := p.Delay(i+1, nil)
		if !ok {
			t.Fatalf("attempt %d disallowed", i+1)
		}
		if d != w {
			t.Errorf("attempt %d delay = %v, want %v", i+1, d, w)
		}
	}
	if _, ok := p.Delay(5, nil); ok {
		t.Error("attempt beyond MaxAttempts allowed")
	}
}

func TestRetryPolicyJitterIsBounded(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 100, Base: 100, Multiplier: 1, Jitter: 0.2}
	rng := simrand.Derive(1, "test/jitter")
	for i := 1; i <= 50; i++ {
		d, ok := p.Delay(i, rng)
		if !ok {
			t.Fatalf("attempt %d disallowed", i)
		}
		if d < 80 || d > 120 {
			t.Fatalf("attempt %d delay %v outside [80,120]", i, d)
		}
	}
}

func TestRetryPolicyWallDelay(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, Base: 0.05, MaxDelay: 2, Multiplier: 2}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	for i, w := range want {
		d, ok := p.WallDelay(i+1, nil)
		if !ok {
			t.Fatalf("attempt %d disallowed", i+1)
		}
		if d != w {
			t.Errorf("attempt %d wall delay = %v, want %v", i+1, d, w)
		}
	}
	if _, ok := p.WallDelay(4, nil); ok {
		t.Error("attempt beyond MaxAttempts allowed")
	}
}

func TestGiveUpErrorWrapsErrGiveUp(t *testing.T) {
	var err error = &GiveUpError{Op: "transfer", Attempts: 6}
	if !errors.Is(err, ErrGiveUp) {
		t.Error("GiveUpError does not match ErrGiveUp")
	}
	if err.Error() != "faults: transfer gave up after 6 attempts" {
		t.Errorf("unexpected message %q", err.Error())
	}
}

// ---- Injector harness ----

type brokerSub struct{ b *metasched.Broker }

func (s brokerSub) SubmitJob(j *job.Job) { s.b.Submit(j) }

type rig struct {
	k      *des.Kernel
	scheds []*sched.Scheduler
	broker *metasched.Broker
	fabric *network.Fabric
	gw     *gateway.Gateway
	inj    *Injector
	events []Event
}

func newRig(t *testing.T, seed uint64, cfg Config) *rig {
	t.Helper()
	k := des.New()
	m1 := &grid.Machine{ID: "m1", Site: "sA", Nodes: 8, CoresPerNode: 8,
		GFlopsPerCore: 4, NUPerCoreHour: 1, UrgentCapable: true}
	m2 := &grid.Machine{ID: "m2", Site: "sB", Nodes: 8, CoresPerNode: 8,
		GFlopsPerCore: 4, NUPerCoreHour: 1}
	s1 := sched.MustNamed(k, m1, "easy")
	s2 := sched.MustNamed(k, m2, "easy")
	broker := metasched.New(k, metasched.LeastLoaded, simrand.Derive(seed, "broker"),
		[]*sched.Scheduler{s1, s2})
	topo := network.NewTopology()
	if err := topo.AddSite("sA", 1); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSite("sB", 1); err != nil {
		t.Fatal(err)
	}
	fabric := network.NewFabric(k, topo)
	gw, err := gateway.New("gw1", "community", "proj-gw", "bio", 1.0,
		k, simrand.Derive(seed, "gateway/gw1"), brokerSub{broker}, accounting.NewLedger("sA"))
	if err != nil {
		t.Fatal(err)
	}

	r := &rig{k: k, scheds: []*sched.Scheduler{s1, s2}, broker: broker, fabric: fabric, gw: gw}
	r.inj = New(k, cfg, seed)
	r.inj.AddMachines(s1, s2)
	r.inj.SetBroker(broker)
	r.inj.SetFabric(fabric)
	r.inj.AddGateways(gw)
	r.inj.OnEvent = func(ev Event) { r.events = append(r.events, ev) }
	r.inj.Start()
	return r
}

func crashOnlyConfig() Config {
	cfg := DefaultConfig()
	cfg.MachineMTBF = 2000
	cfg.MachineRepair = 500
	cfg.NodeMTBF = 0
	cfg.LinkMTBF = 0
	cfg.GatewayMTBF = 0
	cfg.Cooldown = 100
	return cfg
}

// loadUntil keeps both machines saturated with long jobs so crashes always
// find victims.
func loadUntil(r *rig, horizon des.Time) {
	var nextID job.ID = 1000
	for at := des.Time(0); at < horizon; at += 500 {
		r.k.AtNamed(at, "test-submit", func(*des.Kernel) {
			nextID++
			r.broker.Submit(&job.Job{
				ID: nextID, Name: "t", User: "u", Project: "p",
				Cores: 32, RunTime: 3000, ReqWalltime: 4000,
			})
		})
	}
}

func TestInjectorCrashesFailoverVictims(t *testing.T) {
	r := newRig(t, 7, crashOnlyConfig())
	loadUntil(r, 20000)
	if err := r.k.RunUntil(40000); err != nil {
		t.Fatal(err)
	}
	st := r.inj.Stats()
	if st.MachineCrashes == 0 {
		t.Fatal("no machine crashes over 10 MTBFs of virtual time")
	}
	if st.CrashKills == 0 {
		t.Fatal("crashes never killed a running job despite saturation")
	}
	if st.Failovers+st.Requeues != st.CrashKills {
		t.Errorf("failovers (%d) + requeues (%d) != kills (%d)",
			st.Failovers, st.Requeues, st.CrashKills)
	}
	if st.Failovers == 0 {
		t.Error("no victim was ever failed over with a healthy second machine")
	}
	if r.broker.Failovers() != st.Failovers {
		t.Errorf("broker failover counter %d != injector %d", r.broker.Failovers(), st.Failovers)
	}
	if r.scheds[0].Stats().Crashes+r.scheds[1].Stats().Crashes != st.MachineCrashes {
		t.Error("scheduler crash counters disagree with injector")
	}
	// Kills charge wasted work somewhere.
	for _, ev := range r.events {
		if ev.Kind == EvMachineCrash && ev.Until <= 0 {
			t.Error("crash event without a repair horizon")
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func() ([]Event, Stats) {
		r := newRig(t, 11, crashOnlyConfig())
		loadUntil(r, 20000)
		if err := r.k.RunUntil(40000); err != nil {
			t.Fatal(err)
		}
		return r.events, r.inj.Stats()
	}
	ev1, st1 := run()
	ev2, st2 := run()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("stats differ across same-seed runs:\n%+v\n%+v", st1, st2)
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("event sequences differ across same-seed runs (%d vs %d events)",
			len(ev1), len(ev2))
	}
	if len(ev1) == 0 {
		t.Fatal("determinism test vacuous: no events fired")
	}
}

func TestInjectorDisabledSchedulesNothing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Enabled = false
	r := newRig(t, 7, cfg)
	if err := r.k.RunUntil(des.Forever); err != nil {
		t.Fatal(err)
	}
	if r.k.Executed() != 0 {
		t.Errorf("disabled injector executed %d events, want 0", r.k.Executed())
	}
	if len(r.events) != 0 {
		t.Errorf("disabled injector emitted %d events", len(r.events))
	}
}

func TestGatewayFlapRetriesSubmissions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MachineMTBF = 0
	cfg.NodeMTBF = 0
	cfg.LinkMTBF = 0
	cfg.GatewayMTBF = 1000
	cfg.GatewayRepair = 300
	cfg.Retry = RetryPolicy{MaxAttempts: 8, Base: 50, MaxDelay: 400, Multiplier: 2, Jitter: 0.2}
	r := newRig(t, 3, cfg)
	var nextID job.ID = 2000
	for at := des.Time(0); at < 20000; at += 100 {
		r.k.AtNamed(at, "test-request", func(*des.Kernel) {
			nextID++
			r.gw.Request(fmt.Sprintf("user%d", nextID%7), &job.Job{
				ID: nextID, Name: "g", User: "u", Project: "p",
				Cores: 4, RunTime: 50, ReqWalltime: 100,
			})
		})
	}
	if err := r.k.RunUntil(40000); err != nil {
		t.Fatal(err)
	}
	st := r.inj.Stats()
	if st.GatewayFlaps == 0 {
		t.Fatal("gateway never flapped over 20 MTBFs")
	}
	if r.gw.RejectedDown() == 0 {
		t.Fatal("down gateway never rejected a request")
	}
	if st.GatewayRetries == 0 {
		t.Fatal("rejections never scheduled retries")
	}
	// Retried requests must eventually get through: total accepted requests
	// exceed what raw rejections would allow if retries were dropped.
	if r.gw.Requests() == 0 {
		t.Fatal("no request ever succeeded")
	}
}

func TestLinkPartitionAbortsAndRestartsTransfers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MachineMTBF = 0
	cfg.NodeMTBF = 0
	cfg.GatewayMTBF = 0
	cfg.LinkMTBF = 300
	cfg.LinkRepair = 100
	cfg.PartitionProb = 1 // every link event is a partition
	cfg.Retry = RetryPolicy{MaxAttempts: 10, Base: 20, MaxDelay: 200, Multiplier: 2, Jitter: 0.2}
	r := newRig(t, 5, cfg)

	// A transfer that takes ~8000 s at full 1 Gb/s rate: partitions with a
	// 300 s MTBF will interrupt it many times.
	done := 0
	start := func(*des.Kernel) {
		_, err := r.fabric.StartOwned("sA", "sB", int64(1e12), 4,
			network.Ownership{User: "u", Project: "p"}, func(*network.Transfer) { done++ })
		if err != nil {
			t.Error(err)
		}
	}
	r.k.AtNamed(0, "test-xfer", start)
	if err := r.k.RunUntil(200000); err != nil {
		t.Fatal(err)
	}
	st := r.inj.Stats()
	if st.LinkPartitions == 0 {
		t.Fatal("no partitions over many MTBFs")
	}
	if st.TransferAborts == 0 {
		t.Fatal("partition never aborted the in-flight transfer")
	}
	if st.TransferRestarts == 0 && st.GiveUps == 0 {
		t.Fatal("aborted transfer neither restarted nor gave up")
	}
	if done > 1 {
		t.Errorf("done hook fired %d times, want at most once", done)
	}
}

func TestCrashVictimRequeuedWhenNoHealthyMachine(t *testing.T) {
	// Single machine, no broker alternatives: victims must requeue locally.
	k := des.New()
	m := &grid.Machine{ID: "solo", Site: "sA", Nodes: 8, CoresPerNode: 8,
		GFlopsPerCore: 4, NUPerCoreHour: 1}
	s := sched.MustNamed(k, m, "fcfs")
	broker := metasched.New(k, metasched.LeastLoaded, simrand.Derive(1, "broker"),
		[]*sched.Scheduler{s})
	inj := New(k, crashOnlyConfig(), 1)
	inj.AddMachines(s)
	inj.SetBroker(broker)
	inj.Start()
	var nextID job.ID = 3000
	for at := des.Time(0); at < 20000; at += 400 {
		k.AtNamed(at, "test-submit", func(*des.Kernel) {
			nextID++
			s.Submit(&job.Job{ID: nextID, Name: "t", User: "u", Project: "p",
				Cores: 32, RunTime: 3000, ReqWalltime: 4000})
		})
	}
	if err := k.RunUntil(60000); err != nil {
		t.Fatal(err)
	}
	st := inj.Stats()
	if st.CrashKills == 0 {
		t.Fatal("no kills on a saturated solo machine")
	}
	if st.Failovers != 0 {
		t.Errorf("failovers = %d on a one-machine grid (cooldown should forbid)", st.Failovers)
	}
	if st.Requeues != st.CrashKills {
		t.Errorf("requeues = %d, want all %d kills", st.Requeues, st.CrashKills)
	}
}
