// Package faults is the deterministic fault injector and the resilience
// policies that cope with what it injects. It drives unplanned events
// through the existing DES kernel: machine crashes with repair times
// (killing running jobs and routing the victims), partial node failures
// that shrink a machine's batch capacity, network link degradation and
// partition windows that slow or stall WAN transfers, and gateway endpoint
// flaps that reject submissions until the endpoint recovers.
//
// Determinism is the package's load-bearing property. Every fault process
// draws from its own named simrand stream (faults/crash/<machine>,
// faults/nodes/<machine>, faults/link/<site>, faults/gateway/<id>,
// faults/retry), targets are armed in sorted order, and no fault state is
// consulted unless injection is enabled — so same-seed runs with faults
// are byte-identical, and runs without faults consume zero extra draws and
// schedule zero extra events.
package faults

import (
	"errors"
	"fmt"
	"time"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/simrand"
)

// ErrGiveUp marks work abandoned after a retry policy exhausted its
// attempts. Wrap sites use GiveUpError; match with errors.Is(err, ErrGiveUp).
var ErrGiveUp = errors.New("faults: retries exhausted")

// GiveUpError reports what gave up and after how many attempts.
type GiveUpError struct {
	Op       string // what was being retried ("gateway-request", "transfer")
	Attempts int
}

func (e *GiveUpError) Error() string {
	return fmt.Sprintf("faults: %s gave up after %d attempts", e.Op, e.Attempts)
}

// Unwrap makes errors.Is(err, ErrGiveUp) hold for every GiveUpError.
func (e *GiveUpError) Unwrap() error { return ErrGiveUp }

// RetryPolicy is exponential backoff with deterministic jitter: delay for
// attempt n (1-based) is Base·Multiplier^(n-1), clamped to MaxDelay, then
// spread by ±Jitter drawn from the caller's stream. The zero value retries
// forever with zero delay; real uses come from DefaultConfig.
type RetryPolicy struct {
	// MaxAttempts bounds retries; attempts beyond it give up. Zero or
	// negative means unbounded.
	MaxAttempts int
	// Base is the first retry's delay.
	Base des.Time
	// MaxDelay caps the exponential growth; zero means uncapped.
	MaxDelay des.Time
	// Multiplier is the per-attempt growth factor; values below 1 are
	// treated as 1 (constant backoff).
	Multiplier float64
	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter] so
	// synchronized failures do not retry in lockstep. Zero draws nothing
	// from the stream.
	Jitter float64
}

// Delay returns the backoff before retry attempt n (1-based) and whether
// the policy allows that attempt at all. The jitter draw comes from rng,
// so callers with a dedicated stream stay deterministic.
func (p RetryPolicy) Delay(attempt int, rng *simrand.Stream) (des.Time, bool) {
	if attempt < 1 {
		attempt = 1
	}
	if p.MaxAttempts > 0 && attempt > p.MaxAttempts {
		return 0, false
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 1
	}
	d := float64(p.Base)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return des.Time(d), true
}

// WallDelay is Delay for real-world retry loops: it interprets the
// policy's des.Time fields (virtual seconds) as wall-clock seconds and
// returns a time.Duration. The observatory push client reuses the
// injector's backoff semantics — exponential growth, cap, deterministic
// jitter from a named simrand stream — against the wall clock when
// reconnecting to a daemon.
func (p RetryPolicy) WallDelay(attempt int, rng *simrand.Stream) (time.Duration, bool) {
	d, ok := p.Delay(attempt, rng)
	if !ok {
		return 0, false
	}
	return time.Duration(float64(d) * float64(time.Second)), true
}

// Config parameterizes the injector. All fault processes are renewal
// processes: exponential time-to-failure at the configured MTBF, then a
// lognormally spread repair window around the configured mean (grid
// incident reports show heavy-tailed repairs), then the next failure clock
// starts after repair. A zero MTBF disables that fault class. Intensity
// scales every failure rate at once — the knob the FT chaos experiment
// sweeps.
type Config struct {
	// Enabled gates the whole injector; false means no streams are derived
	// and no events are scheduled.
	Enabled bool
	// Intensity multiplies every failure rate (divides every MTBF).
	// Zero or negative is treated as 1.
	Intensity float64

	// Machine crashes: the whole machine goes dark and running batch jobs
	// are killed.
	MachineMTBF   des.Time
	MachineRepair des.Time // mean repair duration

	// Partial node failures: a fraction of batch cores drops out.
	NodeMTBF     des.Time
	NodeRepair   des.Time
	NodeFailFrac float64 // fraction of batch cores lost per event

	// WAN link faults per site: degradation scales access-link capacity by
	// DegradeFactor; with probability PartitionProb the event is a full
	// partition instead (capacity 0, in-flight transfers aborted).
	LinkMTBF      des.Time
	LinkRepair    des.Time
	DegradeFactor float64
	PartitionProb float64

	// Gateway endpoint flaps: the portal rejects submissions until it
	// recovers.
	GatewayMTBF   des.Time
	GatewayRepair des.Time

	// Cooldown keeps a crashed machine marked unhealthy at the
	// metascheduler beyond its repair time, modeling conservative
	// re-admission after incidents.
	Cooldown des.Time

	// Retry is the backoff policy shared by gateway submission retries and
	// transfer restarts.
	Retry RetryPolicy
}

// DefaultConfig returns the nominal chaos profile at intensity 1: machine
// crashes every couple of weeks per machine, node failures every few days,
// link events every several days, gateway flaps every other day — the
// background failure texture production-grid year-in-the-life reports
// describe, scaled to a quarter-long simulation.
func DefaultConfig() Config {
	return Config{
		Enabled:       true,
		Intensity:     1,
		MachineMTBF:   14 * des.Day,
		MachineRepair: 6 * des.Hour,
		NodeMTBF:      4 * des.Day,
		NodeRepair:    4 * des.Hour,
		NodeFailFrac:  0.05,
		LinkMTBF:      6 * des.Day,
		LinkRepair:    2 * des.Hour,
		DegradeFactor: 0.25,
		PartitionProb: 0.3,
		GatewayMTBF:   2 * des.Day,
		GatewayRepair: 30 * des.Minute,
		Cooldown:      des.Hour,
		Retry: RetryPolicy{
			MaxAttempts: 6,
			Base:        30,
			MaxDelay:    des.Hour,
			Multiplier:  2,
			Jitter:      0.2,
		},
	}
}

// intensity returns the effective rate multiplier.
func (c Config) intensity() float64 {
	if c.Intensity <= 0 {
		return 1
	}
	return c.Intensity
}

// Event kinds reported through Injector.OnEvent.
const (
	EvMachineCrash  = "machine-crash"
	EvNodeFail      = "node-fail"
	EvLinkDegrade   = "link-degrade"
	EvLinkPartition = "link-partition"
	EvLinkRepair    = "link-repair"
	EvGatewayDown   = "gateway-down"
	EvGatewayUp     = "gateway-up"
	EvRetry         = "retry"
	EvGiveUp        = "give-up"
	EvFailover      = "failover"
	EvRequeue       = "requeue"
	EvTransferAbort = "transfer-abort"
)

// Event is one injected fault or resilience action, reported through
// Injector.OnEvent for telemetry and span recording.
type Event struct {
	Kind   string
	Target string   // machine, site, or gateway the event concerns
	Until  des.Time // repair/recovery instant for window events; 0 otherwise
	JobID  int64    // job concerned, for retry/give-up/failover/requeue
	Class  string   // retry class for EvRetry/EvGiveUp: "gateway" or "transfer"
}

// Stats are the injector's lifetime counters.
type Stats struct {
	MachineCrashes   uint64
	CrashKills       uint64 // running jobs killed by machine crashes
	NodeFailures     uint64
	NodeKills        uint64 // running jobs killed by node failures
	LinkDegrades     uint64
	LinkPartitions   uint64
	GatewayFlaps     uint64
	Failovers        uint64 // crash victims re-placed by the metascheduler
	Requeues         uint64 // crash victims requeued locally (no failover)
	TransferAborts   uint64
	TransferRestarts uint64
	GatewayRetries   uint64
	GiveUps          uint64 // work abandoned after exhausting retries
}
