package faults

import (
	"sort"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/gateway"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/metasched"
	"github.com/tgsim/tgmod/internal/network"
	"github.com/tgsim/tgmod/internal/sched"
	"github.com/tgsim/tgmod/internal/simrand"
)

// repairSigma is the lognormal spread of repair durations around their
// configured mean (heavy-tailed: most repairs are quick, a few run long).
const repairSigma = 0.6

// Injector drives unplanned failures through the kernel and wires the
// resilience responses. Build one with New, attach targets, then Start.
//
// Determinism: every fault process owns a named stream derived from the run
// seed, targets are armed in sorted order at Start, and retry jitter comes
// from one dedicated stream whose draws happen in event order — so a
// faults-enabled run is a pure function of (seed, config).
type Injector struct {
	k   *des.Kernel
	cfg Config
	// OnEvent, when non-nil, observes every injected fault and resilience
	// action (telemetry counters, span instants).
	OnEvent func(Event)

	seed     uint64
	scheds   []*sched.Scheduler
	gateways []*gateway.Gateway
	broker   *metasched.Broker
	fabric   *network.Fabric
	sites    []string

	retryRNG *simrand.Stream
	// gwAttempts tracks per-job gateway retry counts. Keyed lookups only —
	// never iterated — so map order cannot leak into event order.
	gwAttempts map[job.ID]int

	stats Stats
}

// New returns an injector for the given kernel, config, and run seed.
// Attach targets (AddMachines, SetBroker, SetFabric, AddGateways), then
// call Start once.
func New(k *des.Kernel, cfg Config, seed uint64) *Injector {
	return &Injector{k: k, cfg: cfg, seed: seed, gwAttempts: make(map[job.ID]int)}
}

// Config returns the injector's configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// Stats returns the lifetime fault and resilience counters.
func (inj *Injector) Stats() Stats { return inj.stats }

// AddMachines registers machine schedulers as crash and node-failure
// targets. Their sites become link-fault targets when a fabric is set.
func (inj *Injector) AddMachines(scheds ...*sched.Scheduler) {
	inj.scheds = append(inj.scheds, scheds...)
}

// SetBroker enables failover routing for crash victims and unhealthy
// marking of crashed machines.
func (inj *Injector) SetBroker(b *metasched.Broker) { inj.broker = b }

// SetFabric registers the WAN fabric as a link-fault target.
func (inj *Injector) SetFabric(f *network.Fabric) { inj.fabric = f }

// AddGateways registers gateways as endpoint-flap targets and wires their
// submission retry loop.
func (inj *Injector) AddGateways(gws ...*gateway.Gateway) {
	inj.gateways = append(inj.gateways, gws...)
}

func (inj *Injector) emit(ev Event) {
	if inj.OnEvent != nil {
		inj.OnEvent(ev)
	}
}

// ttf draws a time-to-failure with mean mtbf/intensity.
func (inj *Injector) ttf(rng *simrand.Stream, mtbf des.Time) des.Time {
	return des.Time(rng.Exp(inj.cfg.intensity() / float64(mtbf)))
}

// repairDur draws a lognormally spread repair duration with the given mean.
func (inj *Injector) repairDur(rng *simrand.Stream, mean des.Time) des.Time {
	// exp(mu + sigma^2/2) = 1 when mu = -sigma^2/2, so the multiplier has
	// mean 1 and the draw has mean `mean`.
	d := des.Time(float64(mean) * rng.LogNormal(-repairSigma*repairSigma/2, repairSigma))
	if d < 1 {
		d = 1
	}
	return d
}

// Start derives all fault streams and arms the first failure of every
// process. Call exactly once, before the kernel runs. Disabled configs
// (Enabled false) derive nothing and schedule nothing.
func (inj *Injector) Start() {
	if !inj.cfg.Enabled {
		return
	}
	// Deterministic arming order: machines, then gateways, then sites —
	// each sorted by ID. Stream derivation is order-independent (named
	// streams), but event-queue insertion order is not.
	sort.Slice(inj.scheds, func(i, j int) bool { return inj.scheds[i].M.ID < inj.scheds[j].M.ID })
	sort.Slice(inj.gateways, func(i, j int) bool { return inj.gateways[i].ID < inj.gateways[j].ID })
	inj.retryRNG = simrand.Derive(inj.seed, "faults/retry")

	for _, s := range inj.scheds {
		inj.armCrash(s)
		inj.armNodeFail(s)
	}
	for _, gw := range inj.gateways {
		inj.wireGatewayRetry(gw)
		inj.armGatewayFlap(gw)
	}
	if inj.fabric != nil {
		seen := make(map[string]bool)
		for _, s := range inj.scheds {
			if !seen[s.M.Site] {
				seen[s.M.Site] = true
				inj.sites = append(inj.sites, s.M.Site)
			}
		}
		sort.Strings(inj.sites)
		for _, site := range inj.sites {
			inj.armLinkFault(site)
		}
	}
}

// ---- Machine crashes ----

func (inj *Injector) armCrash(s *sched.Scheduler) {
	if inj.cfg.MachineMTBF <= 0 {
		return
	}
	rng := simrand.Derive(inj.seed, "faults/crash/"+s.M.ID)
	var arm func(delay des.Time)
	arm = func(delay des.Time) {
		inj.k.ScheduleNamed(delay, "fault-crash", func(*des.Kernel) {
			now := inj.k.Now()
			repair := inj.repairDur(rng, inj.cfg.MachineRepair)
			inj.stats.MachineCrashes++
			inj.emit(Event{Kind: EvMachineCrash, Target: s.M.ID, Until: now + repair})
			if inj.broker != nil {
				// Mark unhealthy before failover so the broker cannot
				// route victims back onto the machine that just died.
				inj.broker.MarkUnhealthy(s.M.ID, now+repair+inj.cfg.Cooldown)
			}
			victims := s.Crash(now + repair)
			inj.stats.CrashKills += uint64(len(victims))
			for _, j := range victims {
				if inj.broker != nil && inj.broker.Failover(j) {
					inj.stats.Failovers++
					inj.emit(Event{Kind: EvFailover, Target: j.Machine, JobID: int64(j.ID)})
					continue
				}
				s.Requeue(j)
				inj.stats.Requeues++
				inj.emit(Event{Kind: EvRequeue, Target: s.M.ID, JobID: int64(j.ID)})
			}
			arm(repair + inj.ttf(rng, inj.cfg.MachineMTBF))
		})
	}
	arm(inj.ttf(rng, inj.cfg.MachineMTBF))
}

// ---- Partial node failures ----

func (inj *Injector) armNodeFail(s *sched.Scheduler) {
	if inj.cfg.NodeMTBF <= 0 || inj.cfg.NodeFailFrac <= 0 {
		return
	}
	rng := simrand.Derive(inj.seed, "faults/nodes/"+s.M.ID)
	cores := int(inj.cfg.NodeFailFrac * float64(s.M.BatchCores()))
	if cores < 1 {
		cores = 1
	}
	var arm func(delay des.Time)
	arm = func(delay des.Time) {
		inj.k.ScheduleNamed(delay, "fault-nodes", func(*des.Kernel) {
			now := inj.k.Now()
			repair := inj.repairDur(rng, inj.cfg.NodeRepair)
			inj.stats.NodeFailures++
			inj.emit(Event{Kind: EvNodeFail, Target: s.M.ID, Until: now + repair})
			victims := s.FailNodes(cores, now+repair)
			inj.stats.NodeKills += uint64(len(victims))
			arm(repair + inj.ttf(rng, inj.cfg.NodeMTBF))
		})
	}
	arm(inj.ttf(rng, inj.cfg.NodeMTBF))
}

// ---- Link degradation and partitions ----

func (inj *Injector) armLinkFault(site string) {
	if inj.cfg.LinkMTBF <= 0 {
		return
	}
	rng := simrand.Derive(inj.seed, "faults/link/"+site)
	var arm func(delay des.Time)
	arm = func(delay des.Time) {
		inj.k.ScheduleNamed(delay, "fault-link", func(*des.Kernel) {
			now := inj.k.Now()
			repair := inj.repairDur(rng, inj.cfg.LinkRepair)
			partition := rng.Bool(inj.cfg.PartitionProb)
			if partition {
				inj.stats.LinkPartitions++
				inj.emit(Event{Kind: EvLinkPartition, Target: site, Until: now + repair})
				_ = inj.fabric.SetSiteDegraded(site, 0)
				for _, tr := range inj.fabric.AbortSite(site) {
					inj.stats.TransferAborts++
					inj.emit(Event{Kind: EvTransferAbort, Target: site, JobID: tr.JobID})
					inj.retryTransfer(tr)
				}
			} else {
				inj.stats.LinkDegrades++
				inj.emit(Event{Kind: EvLinkDegrade, Target: site, Until: now + repair})
				_ = inj.fabric.SetSiteDegraded(site, inj.cfg.DegradeFactor)
			}
			inj.k.ScheduleNamed(repair, "fault-link-repair", func(*des.Kernel) {
				_ = inj.fabric.SetSiteDegraded(site, 1)
				inj.emit(Event{Kind: EvLinkRepair, Target: site})
			})
			arm(repair + inj.ttf(rng, inj.cfg.LinkMTBF))
		})
	}
	arm(inj.ttf(rng, inj.cfg.LinkMTBF))
}

// retryTransfer schedules a backed-off restart of an aborted transfer. The
// restarted flow may stall if the partition still holds — it resumes moving
// the instant the link repairs.
func (inj *Injector) retryTransfer(tr *network.Transfer) {
	attempt := tr.Retries + 1
	delay, ok := inj.cfg.Retry.Delay(attempt, inj.retryRNG)
	if !ok {
		inj.stats.GiveUps++
		inj.emit(Event{Kind: EvGiveUp, Class: "transfer", Target: tr.Dst, JobID: tr.JobID})
		return
	}
	inj.emit(Event{Kind: EvRetry, Class: "transfer", Target: tr.Dst, JobID: tr.JobID})
	inj.k.ScheduleNamed(delay, "fault-retry-transfer", func(*des.Kernel) {
		if _, err := inj.fabric.Restart(tr); err == nil {
			inj.stats.TransferRestarts++
		}
	})
}

// ---- Gateway endpoint flaps ----

func (inj *Injector) armGatewayFlap(gw *gateway.Gateway) {
	if inj.cfg.GatewayMTBF <= 0 {
		return
	}
	rng := simrand.Derive(inj.seed, "faults/gateway/"+gw.ID)
	var arm func(delay des.Time)
	arm = func(delay des.Time) {
		inj.k.ScheduleNamed(delay, "fault-gateway-down", func(*des.Kernel) {
			now := inj.k.Now()
			repair := inj.repairDur(rng, inj.cfg.GatewayRepair)
			inj.stats.GatewayFlaps++
			gw.SetAvailable(false)
			inj.emit(Event{Kind: EvGatewayDown, Target: gw.ID, Until: now + repair})
			inj.k.ScheduleNamed(repair, "fault-gateway-up", func(*des.Kernel) {
				gw.SetAvailable(true)
				inj.emit(Event{Kind: EvGatewayUp, Target: gw.ID})
			})
			arm(repair + inj.ttf(rng, inj.cfg.GatewayMTBF))
		})
	}
	arm(inj.ttf(rng, inj.cfg.GatewayMTBF))
}

// wireGatewayRetry chains retry/give-up handling onto the gateway's
// down-rejection and request hooks. Retries re-enter Request, so a request
// that keeps meeting a down endpoint backs off until MaxAttempts, then the
// job fails with its retry state cleared.
func (inj *Injector) wireGatewayRetry(gw *gateway.Gateway) {
	prevDown := gw.OnDown
	gw.OnDown = func(endUser string, j *job.Job) {
		if prevDown != nil {
			prevDown(endUser, j)
		}
		attempt := inj.gwAttempts[j.ID] + 1
		inj.gwAttempts[j.ID] = attempt
		delay, ok := inj.cfg.Retry.Delay(attempt, inj.retryRNG)
		if !ok {
			delete(inj.gwAttempts, j.ID)
			j.State = job.StateFailed
			inj.stats.GiveUps++
			inj.emit(Event{Kind: EvGiveUp, Class: "gateway", Target: gw.ID, JobID: int64(j.ID)})
			return
		}
		inj.stats.GatewayRetries++
		inj.emit(Event{Kind: EvRetry, Class: "gateway", Target: gw.ID, JobID: int64(j.ID)})
		inj.k.ScheduleNamed(delay, "fault-retry-gateway", func(*des.Kernel) {
			gw.Request(endUser, j)
		})
	}
	prevReq := gw.OnRequest
	gw.OnRequest = func(endUser string, j *job.Job, attributed bool) {
		// The request got through; forget its retry history.
		delete(inj.gwAttempts, j.ID)
		if prevReq != nil {
			prevReq(endUser, j, attributed)
		}
	}
}
