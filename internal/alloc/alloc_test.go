package alloc

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/tgsim/tgmod/internal/simrand"
)

func TestAwardAndLookup(t *testing.T) {
	b := NewBank()
	p, err := b.Award("TG-MCA001", "smith", "astronomy", 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Remaining() != 1e6 || p.Exhausted() {
		t.Errorf("fresh project: remaining %v exhausted %v", p.Remaining(), p.Exhausted())
	}
	if got, ok := b.Project("TG-MCA001"); !ok || got != p {
		t.Error("Project lookup failed")
	}
	if _, ok := b.Project("nope"); ok {
		t.Error("lookup of missing project succeeded")
	}
	// PI is automatically authorized.
	if !b.Authorized("TG-MCA001", "smith") {
		t.Error("PI not authorized")
	}
	if b.Authorized("TG-MCA001", "eve") {
		t.Error("stranger authorized")
	}
}

func TestAwardErrors(t *testing.T) {
	b := NewBank()
	if _, err := b.Award("", "pi", "f", 1, 0); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := b.Award("p", "", "f", 1, 0); err == nil {
		t.Error("empty PI accepted")
	}
	if _, err := b.Award("p", "pi", "f", 0, 0); err == nil {
		t.Error("zero award accepted")
	}
	if _, err := b.Award("p", "pi", "f", 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Award("p", "pi", "f", 1, 0); err == nil {
		t.Error("duplicate project accepted")
	}
}

func TestChargeAndExhaustion(t *testing.T) {
	b := NewBank()
	if _, err := b.Award("p", "pi", "f", 100, 0); err != nil {
		t.Fatal(err)
	}
	if !b.CanCharge("p", 60) {
		t.Error("CanCharge(60) = false with balance 100")
	}
	if err := b.Charge("p", 60); err != nil {
		t.Fatal(err)
	}
	if b.CanCharge("p", 60) {
		t.Error("CanCharge(60) = true with balance 40")
	}
	// Overdraft allowed but reported.
	err := b.Charge("p", 60)
	if err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Errorf("overdraft not reported: %v", err)
	}
	p, _ := b.Project("p")
	if !p.Exhausted() {
		t.Error("project should be exhausted")
	}
	if p.Remaining() != -20 {
		t.Errorf("Remaining = %v, want -20", p.Remaining())
	}
	if err := b.Charge("none", 1); err == nil {
		t.Error("charge to missing project accepted")
	}
	if err := b.Charge("p", -1); err == nil {
		t.Error("negative charge accepted")
	}
}

func TestRefund(t *testing.T) {
	b := NewBank()
	if _, err := b.Award("p", "pi", "f", 100, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Charge("p", 50); err != nil {
		t.Fatal(err)
	}
	if err := b.Refund("p", 20); err != nil {
		t.Fatal(err)
	}
	p, _ := b.Project("p")
	if p.Remaining() != 70 {
		t.Errorf("Remaining after refund = %v, want 70", p.Remaining())
	}
	if err := b.Refund("p", 40); err == nil {
		t.Error("refund beyond charges accepted")
	}
	if err := b.Refund("none", 1); err == nil {
		t.Error("refund to missing project accepted")
	}
	if err := b.Refund("p", -1); err == nil {
		t.Error("negative refund accepted")
	}
}

func TestSupplementAndUsers(t *testing.T) {
	b := NewBank()
	if _, err := b.Award("p", "pi", "f", 100, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Supplement("p", 50); err != nil {
		t.Fatal(err)
	}
	p, _ := b.Project("p")
	if p.Remaining() != 150 {
		t.Errorf("Remaining after supplement = %v, want 150", p.Remaining())
	}
	if err := b.Supplement("p", 0); err == nil {
		t.Error("zero supplement accepted")
	}
	if err := b.Supplement("none", 1); err == nil {
		t.Error("supplement to missing project accepted")
	}
	if err := b.AddUser("p", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddUser("none", "bob"); err == nil {
		t.Error("AddUser to missing project accepted")
	}
	users := p.Users()
	if len(users) != 2 || users[0] != "bob" || users[1] != "pi" {
		t.Errorf("Users = %v", users)
	}
}

func TestBankAggregates(t *testing.T) {
	b := NewBank()
	for i, nus := range []float64{100, 200, 300} {
		id := string(rune('a' + i))
		if _, err := b.Award(id, "pi", "f", nus, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Charge("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := b.Charge("c", 30); err != nil {
		t.Fatal(err)
	}
	if b.TotalAwarded() != 600 {
		t.Errorf("TotalAwarded = %v", b.TotalAwarded())
	}
	if b.TotalUsed() != 40 {
		t.Errorf("TotalUsed = %v", b.TotalUsed())
	}
	ps := b.Projects()
	if len(ps) != 3 || ps[0].ID != "a" || ps[2].ID != "c" {
		t.Errorf("Projects not sorted: %v", ps)
	}
}

// TestConservation: for any sequence of awards/charges/refunds the bank
// balances: remaining = awarded - used + refunded, and refunds ≤ charges.
func TestConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := simrand.New(seed)
		b := NewBank()
		const n = 5
		awarded := make([]float64, n)
		for i := 0; i < n; i++ {
			awarded[i] = float64(100 + r.Intn(1000))
			if _, err := b.Award(string(rune('a'+i)), "pi", "f", awarded[i], 0); err != nil {
				return false
			}
		}
		for op := 0; op < 200; op++ {
			id := string(rune('a' + r.Intn(n)))
			amt := float64(r.Intn(50))
			if r.Bool(0.7) {
				_ = b.Charge(id, amt) // overdraft errors are fine
			} else {
				_ = b.Refund(id, amt) // over-refund errors are rejected internally
			}
		}
		for i, p := range b.Projects() {
			if p.AwardedNUs != awarded[i] {
				return false
			}
			if p.Remaining() > p.AwardedNUs {
				return false // refunds exceeded charges
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
