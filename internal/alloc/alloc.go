// Package alloc models the allocations process: projects (grants) led by a
// PI, funded with service units that are charged in machine-normalized
// units (NUs) as jobs consume core-hours. Allocation state gates job
// submission — exhausted projects cannot run — and the charge records feed
// the accounting system.
package alloc

import (
	"fmt"
	"sort"

	"github.com/tgsim/tgmod/internal/des"
)

// Project is an allocation award.
type Project struct {
	ID           string
	PI           string
	ScienceField string
	AwardedNUs   float64
	usedNUs      float64
	refundedNUs  float64
	users        map[string]bool
	Created      des.Time
}

// Remaining returns the unspent balance in NUs.
func (p *Project) Remaining() float64 { return p.AwardedNUs - p.usedNUs + p.refundedNUs }

// Used returns the gross NUs charged.
func (p *Project) Used() float64 { return p.usedNUs }

// Exhausted reports whether the project has no balance left.
func (p *Project) Exhausted() bool { return p.Remaining() <= 0 }

// Users returns the project's authorized users, sorted.
func (p *Project) Users() []string {
	out := make([]string, 0, len(p.users))
	for u := range p.users {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Bank manages all projects and charging.
type Bank struct {
	projects map[string]*Project
	// charges and refunds counters for audit.
	charges uint64
	refunds uint64
}

// NewBank returns an empty allocations bank.
func NewBank() *Bank {
	return &Bank{projects: make(map[string]*Project)}
}

// Award creates a project with the given NU balance.
func (b *Bank) Award(id, pi, field string, nus float64, now des.Time) (*Project, error) {
	if id == "" || pi == "" {
		return nil, fmt.Errorf("alloc: award needs project id and PI")
	}
	if nus <= 0 {
		return nil, fmt.Errorf("alloc: project %s: non-positive award %v", id, nus)
	}
	if _, dup := b.projects[id]; dup {
		return nil, fmt.Errorf("alloc: duplicate project %s", id)
	}
	p := &Project{
		ID: id, PI: pi, ScienceField: field, AwardedNUs: nus,
		users: map[string]bool{pi: true}, Created: now,
	}
	b.projects[id] = p
	return p, nil
}

// Supplement adds NUs to an existing project (a supplemental award).
func (b *Bank) Supplement(id string, nus float64) error {
	p, ok := b.projects[id]
	if !ok {
		return fmt.Errorf("alloc: no project %s", id)
	}
	if nus <= 0 {
		return fmt.Errorf("alloc: project %s: non-positive supplement", id)
	}
	p.AwardedNUs += nus
	return nil
}

// AddUser authorizes a user on a project.
func (b *Bank) AddUser(id, user string) error {
	p, ok := b.projects[id]
	if !ok {
		return fmt.Errorf("alloc: no project %s", id)
	}
	p.users[user] = true
	return nil
}

// Authorized reports whether user may charge project id.
func (b *Bank) Authorized(id, user string) bool {
	p, ok := b.projects[id]
	return ok && p.users[user]
}

// Project looks up a project.
func (b *Bank) Project(id string) (*Project, bool) {
	p, ok := b.projects[id]
	return p, ok
}

// Projects returns all projects sorted by ID.
func (b *Bank) Projects() []*Project {
	out := make([]*Project, 0, len(b.projects))
	for _, p := range b.projects {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CanCharge reports whether the project exists and has balance for the
// estimated NUs. Schedulers consult this before starting work.
func (b *Bank) CanCharge(id string, nus float64) bool {
	p, ok := b.projects[id]
	return ok && p.Remaining() >= nus
}

// Charge debits NUs from a project. Overdraft is permitted for a single
// charge (the job already ran — operational accounting charged the actual
// usage and let the balance go negative), but the error return tells the
// caller the project is now exhausted.
func (b *Bank) Charge(id string, nus float64) error {
	p, ok := b.projects[id]
	if !ok {
		return fmt.Errorf("alloc: no project %s", id)
	}
	if nus < 0 {
		return fmt.Errorf("alloc: negative charge %v to %s", nus, id)
	}
	p.usedNUs += nus
	b.charges++
	if p.Exhausted() {
		return fmt.Errorf("alloc: project %s exhausted (balance %.1f NUs)", id, p.Remaining())
	}
	return nil
}

// Refund credits NUs back (e.g. for jobs lost to preemption or system
// faults), never exceeding what was charged.
func (b *Bank) Refund(id string, nus float64) error {
	p, ok := b.projects[id]
	if !ok {
		return fmt.Errorf("alloc: no project %s", id)
	}
	if nus < 0 {
		return fmt.Errorf("alloc: negative refund %v to %s", nus, id)
	}
	if p.refundedNUs+nus > p.usedNUs {
		return fmt.Errorf("alloc: refund to %s exceeds charges", id)
	}
	p.refundedNUs += nus
	b.refunds++
	return nil
}

// TotalAwarded and TotalUsed aggregate across the bank.
func (b *Bank) TotalAwarded() float64 {
	// Summed in sorted project order: float addition is not associative, so
	// map-order summation makes the low bits (and any exposition built on
	// them) vary from process to process.
	t := 0.0
	for _, p := range b.Projects() {
		t += p.AwardedNUs
	}
	return t
}

// TotalUsed returns gross NUs charged across all projects.
func (b *Bank) TotalUsed() float64 {
	t := 0.0
	for _, p := range b.Projects() {
		t += p.usedNUs
	}
	return t
}
