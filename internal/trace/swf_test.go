package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/accounting"
)

func sampleRecords() []accounting.JobRecord {
	return []accounting.JobRecord{
		{JobID: 2, Name: "b", User: "bob", Project: "p2", Machine: "m2",
			Cores: 64, SubmitTime: 500, StartTime: 600, EndTime: 1600,
			WallSeconds: 1000, QOS: "urgent", ExitStatus: "completed"},
		{JobID: 1, Name: "a", User: "alice", Project: "p1", Machine: "m1",
			Cores: 8, SubmitTime: 100, StartTime: 150, EndTime: 450,
			WallSeconds: 300, QOS: "normal", ExitStatus: "killed"},
		{JobID: 3, Name: "a", User: "alice", Project: "p1", Machine: "m1",
			Cores: 4, SubmitTime: 900, StartTime: 900, EndTime: 950,
			WallSeconds: 50, QOS: "interactive", ExitStatus: "failed"},
	}
}

func TestWriteSWFSortedAndFormatted(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSWF(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "; SWF export") {
		t.Errorf("missing header: %q", out[:40])
	}
	// Data lines sorted by submit time: job 1 (100) before job 2 (500).
	var data []string
	for _, l := range strings.Split(out, "\n") {
		if l != "" && !strings.HasPrefix(l, ";") {
			data = append(data, l)
		}
	}
	if len(data) != 3 {
		t.Fatalf("data lines = %d, want 3", len(data))
	}
	if !strings.HasPrefix(data[0], "1 100 ") || !strings.HasPrefix(data[1], "2 500 ") {
		t.Errorf("not sorted by submit: %v", data)
	}
	// Legends present.
	if !strings.Contains(out, "; User 1 = alice") {
		t.Error("user legend missing")
	}
	if !strings.Contains(out, "; Partition 1 = m1") {
		t.Error("partition legend missing")
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSWF(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	jobs, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("parsed %d jobs, want 3", len(jobs))
	}
	// Job 1: killed normal 8-core job, wait 50, run 300.
	j := jobs[0]
	if j.Number != 1 || j.Wait != 50 || j.Run != 300 || j.Procs != 8 ||
		j.Status != 0 || j.Queue != 1 {
		t.Errorf("job 1 fields wrong: %+v", j)
	}
	// Job 2: urgent queue 2, completed status 1.
	if jobs[1].Queue != 2 || jobs[1].Status != 1 {
		t.Errorf("job 2 fields wrong: %+v", jobs[1])
	}
	// Job 3: interactive queue 3, failed→canceled status 5.
	if jobs[2].Queue != 3 || jobs[2].Status != 5 {
		t.Errorf("job 3 fields wrong: %+v", jobs[2])
	}

	// Convert back to records and check the invertible fields.
	recs := Records(jobs)
	if recs[0].ExitStatus != "killed" || recs[1].ExitStatus != "completed" ||
		recs[2].ExitStatus != "failed" {
		t.Errorf("status mapping wrong: %v %v %v",
			recs[0].ExitStatus, recs[1].ExitStatus, recs[2].ExitStatus)
	}
	if recs[1].QOS != "urgent" || recs[2].QOS != "interactive" {
		t.Error("queue mapping wrong")
	}
	if recs[0].CoreSeconds != 300*8 {
		t.Errorf("core seconds = %v", recs[0].CoreSeconds)
	}
	// Same user → same synthesized identity.
	if recs[0].User != recs[2].User {
		t.Error("dense user ids not stable")
	}
}

func TestReadSWFTolerance(t *testing.T) {
	in := `; comment
; another

1 0 10 100 4 -1 -1 4 200 -1 1 1 1 1 1 1 -1 -1
2 5 0 50 0 -1 -1 8
`
	jobs, err := ReadSWF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("parsed %d jobs", len(jobs))
	}
	// Missing fields become -1; zero procs fall back to requested procs.
	if jobs[1].Procs != 8 || jobs[1].Queue != -1 {
		t.Errorf("tolerant parse wrong: %+v", jobs[1])
	}
	if jobs[0].ReqTime != 200 {
		t.Errorf("ReqTime = %v", jobs[0].ReqTime)
	}
}

func TestReadSWFErrors(t *testing.T) {
	if _, err := ReadSWF(strings.NewReader("1 2 3\n")); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ReadSWF(strings.NewReader("a b c d e\n")); err == nil {
		t.Error("non-numeric accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSWF(&buf, nil); err != nil {
		t.Fatal(err)
	}
	jobs, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Errorf("empty export parsed %d jobs", len(jobs))
	}
}
