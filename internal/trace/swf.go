// Package trace reads and writes batch-job traces in the Standard Workload
// Format (SWF) used by the parallel-workloads archives: one job per line,
// 18 whitespace-separated integer fields, ';' comment header. Exporting
// the simulator's accounting records as SWF lets external scheduler tools
// consume them; importing lets archive traces drive the substrate in place
// of synthetic generators.
//
// Field mapping (1-based SWF field → record):
//
//	 1 job number        ← JobID
//	 2 submit time       ← SubmitTime (s)
//	 3 wait time         ← StartTime-SubmitTime (s)
//	 4 run time          ← EndTime-StartTime (s)
//	 5 allocated procs   ← Cores
//	 6 avg cpu time      ← -1 (unknown)
//	 7 used memory       ← -1
//	 8 requested procs   ← Cores
//	 9 requested time    ← -1 on export of finished jobs is lossy, so the
//	                        requested walltime is preserved when known
//	10 requested memory  ← -1
//	11 status            ← 1 completed, 0 killed/failed, 5 canceled
//	12 user id           ← dense id assigned per distinct user
//	13 group id          ← dense id per project
//	14 executable id     ← dense id per job name
//	15 queue number      ← 1 normal, 2 urgent, 3 interactive
//	16 partition number  ← dense id per machine
//	17 preceding job     ← -1
//	18 think time        ← -1
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/tgsim/tgmod/internal/accounting"
)

// dense assigns stable small integers to strings in first-seen order.
type dense struct {
	ids   map[string]int
	names []string
}

func newDense() *dense { return &dense{ids: make(map[string]int)} }

func (d *dense) id(s string) int {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := len(d.names) + 1
	d.ids[s] = id
	d.names = append(d.names, s)
	return id
}

func queueNumber(qos string) int {
	switch qos {
	case "urgent":
		return 2
	case "interactive":
		return 3
	default:
		return 1
	}
}

func statusCode(exit string) int {
	switch exit {
	case "completed":
		return 1
	case "killed":
		return 0
	default:
		return 5
	}
}

// WriteSWF exports job records (sorted by submit time) as an SWF trace.
// The header records the dense-id legends so the mapping is reversible by
// humans.
func WriteSWF(w io.Writer, jobs []accounting.JobRecord) error {
	sorted := make([]accounting.JobRecord, len(jobs))
	copy(sorted, jobs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].SubmitTime != sorted[j].SubmitTime {
			return sorted[i].SubmitTime < sorted[j].SubmitTime
		}
		return sorted[i].JobID < sorted[j].JobID
	})
	users := newDense()
	groups := newDense()
	execs := newDense()
	parts := newDense()

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; SWF export from tgmod accounting (%d jobs)\n", len(sorted))
	fmt.Fprintf(bw, "; UnixStartTime: 0\n")
	fmt.Fprintf(bw, "; MaxJobs: %d\n", len(sorted))
	for _, r := range sorted {
		wait := int64(r.StartTime - r.SubmitTime)
		if wait < 0 {
			wait = 0
		}
		fmt.Fprintf(bw, "%d %d %d %d %d -1 -1 %d %d -1 %d %d %d %d %d %d -1 -1\n",
			r.JobID,
			int64(r.SubmitTime),
			wait,
			int64(r.WallSeconds),
			r.Cores,
			r.Cores,
			int64(r.WallSeconds), // requested time ≈ used when request unknown
			statusCode(r.ExitStatus),
			users.id(r.User),
			groups.id(r.Project),
			execs.id(r.Name),
			queueNumber(r.QOS),
			parts.id(r.Machine),
		)
	}
	// Legends as trailing comments keep the body parseable by strict SWF
	// readers (comments are only legal at the top in some dialects, so we
	// emit legends before nothing — i.e. flush and append is fine for our
	// own reader, which tolerates comments anywhere).
	writeLegend := func(kind string, d *dense) {
		for i, name := range d.names {
			fmt.Fprintf(bw, "; %s %d = %s\n", kind, i+1, name)
		}
	}
	writeLegend("User", users)
	writeLegend("Group", groups)
	writeLegend("Partition", parts)
	return bw.Flush()
}

// Job is one parsed SWF entry with resolved integer fields.
type Job struct {
	Number    int64
	Submit    float64
	Wait      float64
	Run       float64
	Procs     int
	ReqProcs  int
	ReqTime   float64
	Status    int
	UserID    int
	GroupID   int
	ExecID    int
	Queue     int
	Partition int
}

// ReadSWF parses an SWF trace, tolerating comments anywhere and missing
// trailing fields (filled with -1 per SWF convention).
func ReadSWF(r io.Reader) ([]Job, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Job
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, fmt.Errorf("trace: line %d: only %d fields", lineNo, len(fields))
		}
		get := func(i int) (float64, error) {
			if i >= len(fields) {
				return -1, nil
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return 0, fmt.Errorf("trace: line %d field %d: %w", lineNo, i+1, err)
			}
			return v, nil
		}
		var vals [18]float64
		for i := 0; i < 18; i++ {
			v, err := get(i)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		j := Job{
			Number: int64(vals[0]), Submit: vals[1], Wait: vals[2], Run: vals[3],
			Procs: int(vals[4]), ReqProcs: int(vals[7]), ReqTime: vals[8],
			Status: int(vals[10]), UserID: int(vals[11]), GroupID: int(vals[12]),
			ExecID: int(vals[13]), Queue: int(vals[14]), Partition: int(vals[15]),
		}
		if j.Procs <= 0 && j.ReqProcs > 0 {
			j.Procs = j.ReqProcs
		}
		out = append(out, j)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Records converts parsed SWF jobs back into accounting records with
// synthesized string identities ("u<id>", "g<id>", "m<id>"). Status and
// queue mappings invert WriteSWF's.
func Records(jobs []Job) []accounting.JobRecord {
	out := make([]accounting.JobRecord, 0, len(jobs))
	for _, j := range jobs {
		exit := "failed"
		switch j.Status {
		case 1:
			exit = "completed"
		case 0:
			exit = "killed"
		}
		qos := "normal"
		switch j.Queue {
		case 2:
			qos = "urgent"
		case 3:
			qos = "interactive"
		}
		out = append(out, accounting.JobRecord{
			JobID:       j.Number,
			Name:        fmt.Sprintf("exec%d", j.ExecID),
			User:        fmt.Sprintf("u%d", j.UserID),
			Project:     fmt.Sprintf("g%d", j.GroupID),
			Machine:     fmt.Sprintf("m%d", j.Partition),
			Site:        fmt.Sprintf("site%d", j.Partition),
			Cores:       j.Procs,
			SubmitTime:  j.Submit,
			StartTime:   j.Submit + j.Wait,
			EndTime:     j.Submit + j.Wait + j.Run,
			WallSeconds: j.Run,
			CoreSeconds: j.Run * float64(j.Procs),
			// SWF carries no charging factor; external traces are
			// normalized at 1 NU per core-hour.
			NUs:        j.Run * float64(j.Procs) / 3600,
			QOS:        qos,
			ExitStatus: exit,
		})
	}
	return out
}
