// Package gateway models science gateways: web portals that submit jobs to
// the grid on behalf of large end-user communities through a shared
// community account. Gateways are where the usage-modality problem is most
// acute — the accounting system sees one "user" (the community account),
// so without additional attributes the size and identity of the real user
// population is invisible. The AAAA model fixes this by attaching a
// per-request gateway-user attribute record to every submission; this
// package emits those records with a configurable coverage probability to
// model partial deployment.
package gateway

import (
	"fmt"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/simrand"
)

// Submitter is where a gateway sends jobs (the metascheduler or a specific
// machine's scheduler, wrapped by the scenario layer).
type Submitter interface {
	SubmitJob(j *job.Job)
}

// Gateway is one science gateway.
type Gateway struct {
	ID string
	// CommunityAccount is the shared account all gateway jobs charge.
	CommunityAccount string
	// Project is the community allocation.
	Project string
	// ScienceField tags the gateway's domain.
	ScienceField string
	// AttrCoverage is the probability a submission carries its gateway
	// end-user attribute record (1.0 = fully instrumented AAAA deployment).
	AttrCoverage float64
	// OnRequest, when non-nil, observes every gateway submission just
	// before it is handed to the submitter. attributed reports whether the
	// request carried its end-user attribute record.
	OnRequest func(endUser string, j *job.Job, attributed bool)
	// OnDown, when non-nil, observes every request rejected because the
	// gateway endpoint is unavailable (see SetAvailable). The fault layer
	// hooks this to schedule deterministic retries.
	OnDown func(endUser string, j *job.Job)

	k      *des.Kernel
	rng    *simrand.Stream
	submit Submitter
	ledger *accounting.Ledger

	// Registered end users and activity counters.
	available    bool
	users        map[string]bool
	requests     uint64
	attributed   uint64
	rejectedDown uint64
	firstSeenAt  map[string]des.Time
}

// New returns a gateway that submits through s and spools attribute records
// into ledger.
func New(id, account, project, field string, coverage float64,
	k *des.Kernel, rng *simrand.Stream, s Submitter, ledger *accounting.Ledger) (*Gateway, error) {
	if id == "" || account == "" || project == "" {
		return nil, fmt.Errorf("gateway: id, account, and project are required")
	}
	if coverage < 0 || coverage > 1 {
		return nil, fmt.Errorf("gateway %s: coverage %v out of [0,1]", id, coverage)
	}
	return &Gateway{
		ID: id, CommunityAccount: account, Project: project, ScienceField: field,
		AttrCoverage: coverage, k: k, rng: rng, submit: s, ledger: ledger,
		available: true,
		users:     make(map[string]bool), firstSeenAt: make(map[string]des.Time),
	}, nil
}

// SetAvailable flips the endpoint up or down. While down, Request rejects
// every submission (counted by RejectedDown, observed by OnDown) without
// touching the attribute-coverage stream, so flapping changes no draws for
// requests that do get through.
func (g *Gateway) SetAvailable(up bool) { g.available = up }

// Available reports whether the endpoint currently accepts submissions.
func (g *Gateway) Available() bool { return g.available }

// RejectedDown returns how many requests were turned away while down.
func (g *Gateway) RejectedDown() uint64 { return g.rejectedDown }

// Users returns the number of distinct end users seen so far.
func (g *Gateway) Users() int { return len(g.users) }

// Requests returns the number of jobs submitted.
func (g *Gateway) Requests() uint64 { return g.requests }

// Attributed returns how many submissions carried their end-user attribute.
func (g *Gateway) Attributed() uint64 { return g.attributed }

// FirstSeen returns when an end user first used the gateway.
func (g *Gateway) FirstSeen(user string) (des.Time, bool) {
	t, ok := g.firstSeenAt[user]
	return t, ok
}

// Request submits a job on behalf of end-user endUser. The job is rewritten
// to the community account and tagged as a gateway submission; with
// probability AttrCoverage the end-user attribute record is also emitted.
func (g *Gateway) Request(endUser string, j *job.Job) {
	if !g.available {
		g.rejectedDown++
		if g.OnDown != nil {
			g.OnDown(endUser, j)
		}
		return
	}
	if !g.users[endUser] {
		g.users[endUser] = true
		g.firstSeenAt[endUser] = g.k.Now()
	}
	g.requests++
	j.User = g.CommunityAccount
	j.Project = g.Project
	j.Attr.SubmitVia = "gateway"
	j.Attr.GatewayID = g.ID
	if j.Attr.ScienceField == "" {
		j.Attr.ScienceField = g.ScienceField
	}
	attributed := g.rng.Bool(g.AttrCoverage)
	if attributed {
		j.Attr.GatewayUser = endUser
		g.attributed++
		g.ledger.AddGatewayAttr(accounting.GatewayAttrRecord{
			GatewayID:   g.ID,
			GatewayUser: endUser,
			JobID:       int64(j.ID),
			At:          float64(g.k.Now()),
		})
	}
	if g.OnRequest != nil {
		g.OnRequest(endUser, j, attributed)
	}
	g.submit.SubmitJob(j)
}
