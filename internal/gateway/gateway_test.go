package gateway

import (
	"fmt"
	"testing"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/simrand"
)

type captureSubmitter struct{ jobs []*job.Job }

func (c *captureSubmitter) SubmitJob(j *job.Job) { c.jobs = append(c.jobs, j) }

func mkJob(id int64) *job.Job {
	return &job.Job{ID: job.ID(id), Name: "sim", User: "end", Project: "x",
		Cores: 4, ReqWalltime: 100, RunTime: 50}
}

func TestNewValidation(t *testing.T) {
	k := des.New()
	rng := simrand.New(1)
	sub := &captureSubmitter{}
	l := accounting.NewLedger("s")
	if _, err := New("", "acct", "proj", "f", 1, k, rng, sub, l); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := New("g", "", "proj", "f", 1, k, rng, sub, l); err == nil {
		t.Error("empty account accepted")
	}
	if _, err := New("g", "acct", "", "f", 1, k, rng, sub, l); err == nil {
		t.Error("empty project accepted")
	}
	if _, err := New("g", "acct", "proj", "f", 1.5, k, rng, sub, l); err == nil {
		t.Error("coverage > 1 accepted")
	}
	if _, err := New("g", "acct", "proj", "f", -0.1, k, rng, sub, l); err == nil {
		t.Error("negative coverage accepted")
	}
}

func TestRequestRewritesIdentity(t *testing.T) {
	k := des.New()
	sub := &captureSubmitter{}
	l := accounting.NewLedger("s")
	g, err := New("nanohub", "nanohub-community", "TG-GATEWAY1", "nanoscience",
		1.0, k, simrand.New(1), sub, l)
	if err != nil {
		t.Fatal(err)
	}
	j := mkJob(1)
	g.Request("researcher-7", j)
	if len(sub.jobs) != 1 {
		t.Fatal("job not submitted")
	}
	if j.User != "nanohub-community" || j.Project != "TG-GATEWAY1" {
		t.Errorf("community identity not applied: %s/%s", j.User, j.Project)
	}
	if j.Attr.SubmitVia != "gateway" || j.Attr.GatewayID != "nanohub" {
		t.Errorf("gateway attributes missing: %+v", j.Attr)
	}
	if j.Attr.GatewayUser != "researcher-7" {
		t.Errorf("end-user attribute missing at full coverage: %+v", j.Attr)
	}
	if j.Attr.ScienceField != "nanoscience" {
		t.Errorf("science field not defaulted: %q", j.Attr.ScienceField)
	}
	// Attribute record spooled.
	p := l.Flush(k.Now())
	if p == nil || len(p.GatewayAttrs) != 1 || p.GatewayAttrs[0].GatewayUser != "researcher-7" {
		t.Errorf("attribute record not spooled: %+v", p)
	}
}

func TestCoverageControlsAttribution(t *testing.T) {
	k := des.New()
	sub := &captureSubmitter{}
	l := accounting.NewLedger("s")
	g, err := New("g", "acct", "proj", "f", 0.5, k, simrand.New(42), sub, l)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		g.Request(fmt.Sprintf("user-%d", i%100), mkJob(int64(i)))
	}
	got := float64(g.Attributed()) / n
	if got < 0.45 || got > 0.55 {
		t.Errorf("attribution rate = %v, want ~0.5", got)
	}
	if g.Requests() != n {
		t.Errorf("Requests = %d, want %d", g.Requests(), n)
	}
	if g.Users() != 100 {
		t.Errorf("Users = %d, want 100", g.Users())
	}
}

func TestZeroCoverageEmitsNothing(t *testing.T) {
	k := des.New()
	sub := &captureSubmitter{}
	l := accounting.NewLedger("s")
	g, err := New("g", "acct", "proj", "f", 0, k, simrand.New(1), sub, l)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		g.Request("u", mkJob(int64(i)))
	}
	if g.Attributed() != 0 {
		t.Errorf("Attributed = %d at zero coverage", g.Attributed())
	}
	if l.Pending() != 0 {
		t.Error("attribute records spooled at zero coverage")
	}
	// Jobs still tagged as gateway submissions (that attribute is free).
	if sub.jobs[0].Attr.GatewayID != "g" || sub.jobs[0].Attr.GatewayUser != "" {
		t.Errorf("attribute state wrong: %+v", sub.jobs[0].Attr)
	}
}

func TestFirstSeen(t *testing.T) {
	k := des.New()
	sub := &captureSubmitter{}
	g, err := New("g", "acct", "proj", "f", 1, k, simrand.New(1), sub, accounting.NewLedger("s"))
	if err != nil {
		t.Fatal(err)
	}
	k.Schedule(100, func(*des.Kernel) { g.Request("alice", mkJob(1)) })
	k.Schedule(200, func(*des.Kernel) { g.Request("alice", mkJob(2)) })
	k.Run()
	at, ok := g.FirstSeen("alice")
	if !ok || at != 100 {
		t.Errorf("FirstSeen = %v,%v, want 100,true", at, ok)
	}
	if _, ok := g.FirstSeen("bob"); ok {
		t.Error("FirstSeen for unseen user")
	}
}
