// Package simrand provides deterministic random-number streams and the
// statistical distributions used by the workload and network models.
//
// Every source of randomness in a scenario is a named Stream derived from a
// single scenario seed. Stream derivation hashes the name, so adding a new
// consumer of randomness does not perturb existing streams — a property
// essential for reproducible experiments and meaningful ablations.
//
// The generator is xoshiro256**, seeded via SplitMix64, both implemented
// here so the repository depends only on the standard library and so the
// sequence is stable across Go releases (math/rand's internal algorithm is
// not covered by the compatibility promise).
package simrand

import (
	"math"
)

// splitMix64 advances the state and returns the next value of the SplitMix64
// sequence, used only for seeding.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashName produces a 64-bit FNV-1a hash of s, used to derive independent
// stream seeds from human-readable names.
func hashName(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Stream is a deterministic pseudo-random number generator
// (xoshiro256**, period 2^256-1). Streams are not safe for concurrent use;
// give each concurrent consumer its own named stream.
type Stream struct {
	s [4]uint64
}

// New returns a stream seeded from the given 64-bit seed.
func New(seed uint64) *Stream {
	st := &Stream{}
	sm := seed
	for i := range st.s {
		st.s[i] = splitMix64(&sm)
	}
	return st
}

// Derive returns an independent stream for the given name, deterministically
// derived from seed. Distinct names yield uncorrelated streams.
func Derive(seed uint64, name string) *Stream {
	return New(seed ^ hashName(name))
}

// Fork returns a new stream whose seed derives from the current stream
// state and the given name. Useful for giving every generated entity its
// own private stream.
func (r *Stream) Fork(name string) *Stream {
	return New(r.Uint64() ^ hashName(name))
}

// Uint64 returns the next 64 random bits.
func (r *Stream) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Float64 returns a uniform value in [0,1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + (t >> 32) + (aLo*bHi+t&mask)>>32
	return hi, lo
}

// IntRange returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (r *Stream) IntRange(lo, hi int) int {
	if hi < lo {
		panic("simrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0,n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("simrand: Exp with non-positive rate")
	}
	// -log(1-U) avoids log(0) since Float64 < 1.
	return -math.Log(1-r.Float64()) / rate
}

// Normal returns a normal variate with the given mean and standard
// deviation, via the Marsaglia polar method.
func (r *Stream) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns a lognormal variate where the underlying normal has the
// given mu and sigma.
func (r *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Weibull returns a Weibull variate with the given shape and scale.
func (r *Stream) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("simrand: Weibull with non-positive parameter")
	}
	return scale * math.Pow(-math.Log(1-r.Float64()), 1/shape)
}

// Pareto returns a Pareto variate with the given minimum xm and tail index
// alpha. Heavy-tailed file sizes and run times use this.
func (r *Stream) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("simrand: Pareto with non-positive parameter")
	}
	return xm / math.Pow(1-r.Float64(), 1/alpha)
}

// Gamma returns a gamma variate with the given shape k and scale theta,
// using the Marsaglia–Tsang method (with Ahrens-Dieter boost for k < 1).
func (r *Stream) Gamma(k, theta float64) float64 {
	if k <= 0 || theta <= 0 {
		panic("simrand: Gamma with non-positive parameter")
	}
	if k < 1 {
		// boost: Gamma(k) = Gamma(k+1) * U^(1/k)
		return r.Gamma(k+1, theta) * math.Pow(r.Float64(), 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * theta
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * theta
		}
	}
}

// HyperExp returns a two-phase hyperexponential variate: with probability p
// an exponential of rate r1, otherwise rate r2. Used for the bimodal
// interarrival patterns of mixed interactive/batch workloads.
func (r *Stream) HyperExp(p, r1, r2 float64) float64 {
	if r.Bool(p) {
		return r.Exp(r1)
	}
	return r.Exp(r2)
}

// TruncNormal returns a normal variate clamped by rejection to [lo, hi].
// If the interval is improbable (>64 rejections) it falls back to clamping.
func (r *Stream) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if hi < lo {
		panic("simrand: TruncNormal with hi < lo")
	}
	for i := 0; i < 64; i++ {
		v := r.Normal(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// Zipf samples integers in [1, n] with probability proportional to
// 1/rank^s. It precomputes the CDF, so construction is O(n) and sampling is
// O(log n).
type Zipf struct {
	cdf []float64
}

// NewZipf returns a Zipf sampler over [1,n] with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 || s <= 0 {
		panic("simrand: NewZipf with non-positive parameter")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against FP rounding
	return &Zipf{cdf: cdf}
}

// Sample draws a rank in [1, n].
func (z *Zipf) Sample(r *Stream) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Empirical samples from a discrete distribution given by arbitrary
// non-negative weights. Index i is returned with probability
// weights[i]/sum(weights).
type Empirical struct {
	cdf []float64
}

// NewEmpirical builds a sampler from the given weights. It panics if the
// weights are empty, negative, or all zero.
func NewEmpirical(weights []float64) *Empirical {
	if len(weights) == 0 {
		panic("simrand: NewEmpirical with no weights")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("simrand: NewEmpirical with negative weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum == 0 {
		panic("simrand: NewEmpirical with all-zero weights")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[len(cdf)-1] = 1
	return &Empirical{cdf: cdf}
}

// Sample draws an index according to the weights.
func (e *Empirical) Sample(r *Stream) int {
	u := r.Float64()
	lo, hi := 0, len(e.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if e.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// PowerOfTwo returns 2^k where k is uniform in [loExp, hiExp]. Parallel job
// sizes cluster at powers of two; this models that directly.
func (r *Stream) PowerOfTwo(loExp, hiExp int) int {
	if hiExp < loExp {
		panic("simrand: PowerOfTwo with hiExp < loExp")
	}
	return 1 << uint(r.IntRange(loExp, hiExp))
}
