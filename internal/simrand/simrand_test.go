package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(42, "arrivals")
	b := Derive(42, "sizes")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("derived streams produced %d identical draws; expected none", same)
	}
	// Same name must reproduce.
	c := Derive(42, "arrivals")
	d := Derive(42, "arrivals")
	if c.Uint64() != d.Uint64() {
		t.Error("same-name derivation is not deterministic")
	}
}

func TestForkDeterminism(t *testing.T) {
	a := New(7).Fork("user-1")
	b := New(7).Fork("user-1")
	if a.Uint64() != b.Uint64() {
		t.Error("Fork is not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(2)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates too far from %v", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d", v)
		}
	}
	if v := r.IntRange(4, 4); v != 4 {
		t.Errorf("IntRange(4,4) = %d, want 4", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(100)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// moments draws n samples and returns their mean and variance.
func moments(n int, draw func() float64) (mean, variance float64) {
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := draw()
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

func TestExpMoments(t *testing.T) {
	r := New(4)
	mean, variance := moments(200000, func() float64 { return r.Exp(0.5) })
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("Exp(0.5) mean = %v, want ~2", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Errorf("Exp(0.5) variance = %v, want ~4", variance)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(5)
	mean, variance := moments(200000, func() float64 { return r.Normal(10, 3) })
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal(10,3) mean = %v, want ~10", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("Normal(10,3) variance = %v, want ~9", variance)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(6)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(2, 1)
	}
	below := 0
	for _, v := range vals {
		if v < math.Exp(2) {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("LogNormal(2,1): fraction below e^2 = %v, want ~0.5", frac)
	}
}

func TestWeibullShape1IsExponential(t *testing.T) {
	r := New(7)
	mean, _ := moments(200000, func() float64 { return r.Weibull(1, 3) })
	if math.Abs(mean-3) > 0.07 {
		t.Errorf("Weibull(1,3) mean = %v, want ~3 (exponential)", mean)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(8)
	mean, _ := moments(400000, func() float64 { return r.Pareto(1, 3) })
	// Pareto(xm=1, alpha=3) mean = alpha*xm/(alpha-1) = 1.5
	if math.Abs(mean-1.5) > 0.05 {
		t.Errorf("Pareto(1,3) mean = %v, want ~1.5", mean)
	}
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2, 1.1); v < 2 {
			t.Fatalf("Pareto(2,·) produced %v < xm", v)
		}
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(9)
	// shape 2, scale 3: mean 6, var 18
	mean, variance := moments(200000, func() float64 { return r.Gamma(2, 3) })
	if math.Abs(mean-6) > 0.1 {
		t.Errorf("Gamma(2,3) mean = %v, want ~6", mean)
	}
	if math.Abs(variance-18) > 1 {
		t.Errorf("Gamma(2,3) variance = %v, want ~18", variance)
	}
	// shape < 1 path
	mean, _ = moments(200000, func() float64 { return r.Gamma(0.5, 2) })
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("Gamma(0.5,2) mean = %v, want ~1", mean)
	}
}

func TestHyperExpMean(t *testing.T) {
	r := New(10)
	// mean = p/r1 + (1-p)/r2 = 0.3/1 + 0.7/0.1 = 7.3
	mean, _ := moments(300000, func() float64 { return r.HyperExp(0.3, 1, 0.1) })
	if math.Abs(mean-7.3) > 0.2 {
		t.Errorf("HyperExp mean = %v, want ~7.3", mean)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(11)
	for i := 0; i < 50000; i++ {
		v := r.TruncNormal(0, 10, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
	// Degenerate: interval far in the tail falls back to clamping.
	v := r.TruncNormal(0, 0.001, 5, 6)
	if v < 5 || v > 6 {
		t.Errorf("TruncNormal fallback out of bounds: %v", v)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(12)
	z := NewZipf(100, 1.2)
	counts := make([]int, 101)
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Sample(r)
		if k < 1 || k > 100 {
			t.Fatalf("Zipf sample out of range: %d", k)
		}
		counts[k]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[4] {
		t.Errorf("Zipf not monotone-decreasing: c1=%d c2=%d c4=%d", counts[1], counts[2], counts[4])
	}
	if counts[1] < draws/10 {
		t.Errorf("Zipf rank-1 share too small: %d/%d", counts[1], draws)
	}
}

func TestEmpirical(t *testing.T) {
	r := New(13)
	e := NewEmpirical([]float64{1, 0, 3})
	counts := make([]int, 3)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[e.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestPowerOfTwo(t *testing.T) {
	r := New(14)
	for i := 0; i < 10000; i++ {
		v := r.PowerOfTwo(3, 8)
		if v < 8 || v > 256 || v&(v-1) != 0 {
			t.Fatalf("PowerOfTwo(3,8) = %d", v)
		}
	}
}

func TestPanics(t *testing.T) {
	r := New(15)
	cases := map[string]func(){
		"Intn(0)":        func() { r.Intn(0) },
		"IntRange rev":   func() { r.IntRange(3, 2) },
		"Exp(0)":         func() { r.Exp(0) },
		"Weibull":        func() { r.Weibull(0, 1) },
		"Pareto":         func() { r.Pareto(0, 1) },
		"Gamma":          func() { r.Gamma(-1, 1) },
		"Zipf n=0":       func() { NewZipf(0, 1) },
		"Empirical nil":  func() { NewEmpirical(nil) },
		"Empirical neg":  func() { NewEmpirical([]float64{-1}) },
		"Empirical zero": func() { NewEmpirical([]float64{0, 0}) },
		"TruncNormal":    func() { r.TruncNormal(0, 1, 2, 1) },
		"PowerOfTwo rev": func() { r.PowerOfTwo(5, 4) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(1)
	}
	_ = sink
}
