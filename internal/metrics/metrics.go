// Package metrics provides the small statistics toolkit the analysis and
// experiment layers share: streaming summaries, exact-percentile samples,
// fixed-bin histograms, time series with period bucketing, Gini
// coefficients for usage concentration, and confusion matrices for
// classifier validation.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count/mean/min/max/variance in one pass (Welford).
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// N returns the observation count.
func (s *Summary) N() int { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min and Max return the extremes (0 when empty).
func (s *Summary) Min() float64 { return s.min }
func (s *Summary) Max() float64 { return s.max }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Variance returns the sample variance (0 for fewer than 2 points).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// String formats the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g min=%.3g max=%.3g sd=%.3g",
		s.n, s.Mean(), s.Min(), s.Max(), s.Stddev())
}

// Sample retains every observation for exact percentile queries. For the
// volumes this repository produces (≤ millions of jobs) exact retention is
// affordable and avoids approximation arguments in experiments.
type Sample struct {
	vals   []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation; it returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	rank := p / 100 * float64(len(s.vals)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s.vals) {
		return s.vals[lo]
	}
	return s.vals[lo]*(1-frac) + s.vals[lo+1]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Mean returns the arithmetic mean.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	t := 0.0
	for _, v := range s.vals {
		t += v
	}
	return t / float64(len(s.vals))
}

// Gini returns the Gini coefficient of the sample (0 = perfectly equal,
// →1 = maximally concentrated). Usage concentration across users/projects
// is a standard cyberinfrastructure reporting metric.
func (s *Sample) Gini() float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	var cum, total float64
	for i, v := range s.vals {
		cum += float64(i+1) * v
		total += v
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - float64(n+1)/float64(n)
}

// Histogram counts observations into caller-defined ordered bins.
type Histogram struct {
	labels []string
	assign func(v float64) int
	counts []int
	weight []float64
}

// NewHistogram builds a histogram with the given ordered labels and an
// assignment function mapping a value to a bin index (out-of-range indexes
// are clamped).
func NewHistogram(labels []string, assign func(v float64) int) *Histogram {
	return &Histogram{
		labels: labels,
		assign: assign,
		counts: make([]int, len(labels)),
		weight: make([]float64, len(labels)),
	}
}

// NewLogHistogram builds power-of-two bins covering [1, 2^(n-1)] with
// labels "1","2","4",....
func NewLogHistogram(n int) *Histogram {
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("%d", 1<<uint(i))
	}
	return NewHistogram(labels, func(v float64) int {
		if v < 1 {
			return 0
		}
		return int(math.Log2(v))
	})
}

// Add counts an observation with an associated weight.
func (h *Histogram) Add(v, weight float64) {
	i := h.assign(v)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.weight[i] += weight
}

// Labels returns the bin labels.
func (h *Histogram) Labels() []string { return h.labels }

// Count and Weight return per-bin totals.
func (h *Histogram) Count(i int) int      { return h.counts[i] }
func (h *Histogram) Weight(i int) float64 { return h.weight[i] }

// TotalCount returns the number of observations.
func (h *Histogram) TotalCount() int {
	t := 0
	for _, c := range h.counts {
		t += c
	}
	return t
}

// TotalWeight returns the summed weight.
func (h *Histogram) TotalWeight() float64 {
	t := 0.0
	for _, w := range h.weight {
		t += w
	}
	return t
}

// TimeSeries buckets weighted events into fixed-width periods.
type TimeSeries struct {
	period  float64
	buckets []float64
	counts  []int
}

// NewTimeSeries returns a series with the given bucket width in seconds.
func NewTimeSeries(period float64) *TimeSeries {
	if period <= 0 {
		panic("metrics: non-positive time-series period")
	}
	return &TimeSeries{period: period}
}

// Add records weight at the given timestamp.
func (ts *TimeSeries) Add(at, weight float64) {
	if at < 0 {
		at = 0
	}
	i := int(at / ts.period)
	for len(ts.buckets) <= i {
		ts.buckets = append(ts.buckets, 0)
		ts.counts = append(ts.counts, 0)
	}
	ts.buckets[i] += weight
	ts.counts[i]++
}

// Buckets returns the per-period weights.
func (ts *TimeSeries) Buckets() []float64 { return ts.buckets }

// Counts returns the per-period event counts.
func (ts *TimeSeries) Counts() []int { return ts.counts }

// Len returns the number of periods observed.
func (ts *TimeSeries) Len() int { return len(ts.buckets) }

// Period returns the bucket width in seconds.
func (ts *TimeSeries) Period() float64 { return ts.period }

// Count returns the event count of bucket i (0 when out of range).
func (ts *TimeSeries) Count(i int) int {
	if i < 0 || i >= len(ts.counts) {
		return 0
	}
	return ts.counts[i]
}

// Mean returns the mean weight of bucket i (0 when empty or out of range)
// — the natural read for sampled gauges, where each bucket holds one or
// more point-in-time observations rather than an accumulating total.
func (ts *TimeSeries) Mean(i int) float64 {
	if i < 0 || i >= len(ts.buckets) || ts.counts[i] == 0 {
		return 0
	}
	return ts.buckets[i] / float64(ts.counts[i])
}

// Confusion is a labeled confusion matrix for classifier validation.
type Confusion struct {
	labels []string
	index  map[string]int
	cells  [][]int // cells[truth][predicted]
}

// NewConfusion builds a matrix over the given label set; unknown labels
// encountered later are mapped to an extra "other" row/column.
func NewConfusion(labels []string) *Confusion {
	all := append(append([]string{}, labels...), "other")
	idx := make(map[string]int, len(all))
	for i, l := range all {
		idx[l] = i
	}
	cells := make([][]int, len(all))
	for i := range cells {
		cells[i] = make([]int, len(all))
	}
	return &Confusion{labels: all, index: idx, cells: cells}
}

func (c *Confusion) idx(label string) int {
	if i, ok := c.index[label]; ok {
		return i
	}
	return len(c.labels) - 1
}

// Observe records one (truth, predicted) pair.
func (c *Confusion) Observe(truth, predicted string) {
	c.cells[c.idx(truth)][c.idx(predicted)]++
}

// Count returns a cell value.
func (c *Confusion) Count(truth, predicted string) int {
	return c.cells[c.idx(truth)][c.idx(predicted)]
}

// Total returns all observations.
func (c *Confusion) Total() int {
	t := 0
	for _, row := range c.cells {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Precision returns TP/(TP+FP) for a label (1 when the label was never
// predicted — vacuous precision).
func (c *Confusion) Precision(label string) float64 {
	j := c.idx(label)
	tp := c.cells[j][j]
	pred := 0
	for i := range c.cells {
		pred += c.cells[i][j]
	}
	if pred == 0 {
		return 1
	}
	return float64(tp) / float64(pred)
}

// Recall returns TP/(TP+FN) for a label (1 when the label never occurred).
func (c *Confusion) Recall(label string) float64 {
	i := c.idx(label)
	tp := c.cells[i][i]
	truth := 0
	for j := range c.cells[i] {
		truth += c.cells[i][j]
	}
	if truth == 0 {
		return 1
	}
	return float64(tp) / float64(truth)
}

// F1 returns the harmonic mean of precision and recall.
func (c *Confusion) F1(label string) float64 {
	p, r := c.Precision(label), c.Recall(label)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the overall fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for i := range c.cells {
		correct += c.cells[i][i]
	}
	return float64(correct) / float64(total)
}
