package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/tgsim/tgmod/internal/simrand"
)

func TestSummary(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Error("empty summary not zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 || s.Mean() != 5 || s.Min() != 2 || s.Max() != 9 {
		t.Errorf("summary = %v", s.String())
	}
	if s.Sum() != 40 {
		t.Errorf("Sum = %v, want 40", s.Sum())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if math.Abs(s.Stddev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("Stddev = %v", s.Stddev())
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := simrand.New(seed)
		var s Summary
		n := 1 + r.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Normal(0, 100)
			s.Add(vals[i])
		}
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(n)
		return math.Abs(s.Mean()-mean) < 1e-9*(1+math.Abs(mean))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 {
		t.Error("empty sample not zero")
	}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if s.N() != 100 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("P100 = %v, want 100", got)
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v, want 50.5", got)
	}
	if got := s.Percentile(150); got != 100 {
		t.Errorf("P150 clamp = %v", got)
	}
	if got := s.Percentile(-5); got != 1 {
		t.Errorf("P-5 clamp = %v", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", got)
	}
	// Adding after a query invalidates the sort correctly.
	s.Add(1000)
	if got := s.Percentile(100); got != 1000 {
		t.Errorf("P100 after add = %v, want 1000", got)
	}
}

func TestGini(t *testing.T) {
	var equal Sample
	for i := 0; i < 10; i++ {
		equal.Add(5)
	}
	if g := equal.Gini(); math.Abs(g) > 1e-9 {
		t.Errorf("equal Gini = %v, want 0", g)
	}
	var concentrated Sample
	for i := 0; i < 99; i++ {
		concentrated.Add(0)
	}
	concentrated.Add(1000)
	if g := concentrated.Gini(); g < 0.98 {
		t.Errorf("concentrated Gini = %v, want ~0.99", g)
	}
	var empty Sample
	if empty.Gini() != 0 {
		t.Error("empty Gini not 0")
	}
	var zeros Sample
	zeros.Add(0)
	if zeros.Gini() != 0 {
		t.Error("all-zero Gini not 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]string{"small", "large"}, func(v float64) int {
		if v < 10 {
			return 0
		}
		return 1
	})
	h.Add(1, 100)
	h.Add(5, 200)
	h.Add(50, 1000)
	if h.Count(0) != 2 || h.Count(1) != 1 {
		t.Errorf("counts = %d,%d", h.Count(0), h.Count(1))
	}
	if h.Weight(0) != 300 || h.Weight(1) != 1000 {
		t.Errorf("weights = %v,%v", h.Weight(0), h.Weight(1))
	}
	if h.TotalCount() != 3 || h.TotalWeight() != 1300 {
		t.Errorf("totals = %d,%v", h.TotalCount(), h.TotalWeight())
	}
	if len(h.Labels()) != 2 {
		t.Error("labels wrong")
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram([]string{"a", "b"}, func(v float64) int { return int(v) })
	h.Add(-5, 1) // clamps to 0
	h.Add(99, 1) // clamps to 1
	if h.Count(0) != 1 || h.Count(1) != 1 {
		t.Errorf("clamping failed: %d,%d", h.Count(0), h.Count(1))
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(5) // bins 1,2,4,8,16
	for _, v := range []float64{1, 2, 3, 4, 7, 8, 100} {
		h.Add(v, 1)
	}
	wants := []int{1, 2, 2, 1, 1} // 1→[1]; 2,3→[2]; 4,7→[4]; 8→[8]; 100 clamps →[16]
	for i, want := range wants {
		if h.Count(i) != want {
			t.Errorf("bin %s count = %d, want %d", h.Labels()[i], h.Count(i), want)
		}
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(100)
	ts.Add(0, 1)
	ts.Add(99, 2)
	ts.Add(100, 10)
	ts.Add(550, 5)
	ts.Add(-10, 7) // clamps to bucket 0
	if ts.Len() != 6 {
		t.Fatalf("Len = %d, want 6", ts.Len())
	}
	if ts.Buckets()[0] != 10 || ts.Buckets()[1] != 10 || ts.Buckets()[5] != 5 {
		t.Errorf("buckets = %v", ts.Buckets())
	}
	if ts.Counts()[0] != 3 || ts.Counts()[5] != 1 {
		t.Errorf("counts = %v", ts.Counts())
	}
}

func TestTimeSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period accepted")
		}
	}()
	NewTimeSeries(0)
}

func TestConfusion(t *testing.T) {
	c := NewConfusion([]string{"cat", "dog"})
	c.Observe("cat", "cat")
	c.Observe("cat", "cat")
	c.Observe("cat", "dog")
	c.Observe("dog", "dog")
	c.Observe("bird", "cat") // unknown → other row
	if c.Total() != 5 {
		t.Errorf("Total = %d, want 5", c.Total())
	}
	if c.Count("cat", "dog") != 1 || c.Count("bird", "cat") != 1 {
		t.Error("cell counts wrong")
	}
	// cat precision: predicted cat 3 times (2 true cat + 1 bird), TP=2.
	if got := c.Precision("cat"); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("Precision(cat) = %v, want 2/3", got)
	}
	// cat recall: 3 true cats, 2 correct.
	if got := c.Recall("cat"); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("Recall(cat) = %v, want 2/3", got)
	}
	if got := c.F1("cat"); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("F1(cat) = %v, want 2/3", got)
	}
	// Accuracy: 3 of 5 correct (2 cat + 1 dog).
	if got := c.Accuracy(); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("Accuracy = %v, want 0.6", got)
	}
	// Vacuous cases.
	if c.Precision("never-predicted-label") != 1 {
		t.Error("vacuous precision should be 1")
	}
	empty := NewConfusion([]string{"x"})
	if empty.Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
	if empty.Recall("x") != 1 {
		t.Error("vacuous recall should be 1")
	}
	if empty.F1("x") != 1 {
		t.Error("vacuous F1 should be 1 (p=r=1)")
	}
}

func TestConfusionF1Zero(t *testing.T) {
	c := NewConfusion([]string{"a", "b"})
	c.Observe("a", "b") // a: precision 1 (vacuous... no: predicted-as-a count 0 → precision 1), recall 0
	// F1(a): p=1, r=0 → 0.
	if got := c.F1("a"); got != 0 {
		t.Errorf("F1 = %v, want 0", got)
	}
}
